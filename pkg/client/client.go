// Package client is the typed HTTP client for secmetricd. It speaks the
// pkg/api wire contract, surfaces the daemon's backpressure and deadline
// signals as inspectable errors (IsQueueFull, IsDeadline), and converts
// on-disk source trees with the same loader the CLI uses — so a gate that
// links the library today can switch to the daemon by swapping one call.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// DefaultTimeout bounds a request round-trip when neither the caller's
// context nor the request's timeout_ms sets a tighter one. It sits above
// the daemon's default 2-minute request deadline, so a healthy daemon's
// 504 always beats the client giving up, but a daemon that stops
// responding entirely can no longer pin the caller forever.
const DefaultTimeout = 3 * time.Minute

// DeadlineGrace is how much longer than a request's timeout_ms the client
// waits before abandoning the round-trip. The server trips its deadline
// first and answers 504 with the stable "deadline" code; the grace keeps
// the client listening long enough to receive that richer signal instead
// of racing it with a bare context error.
const DeadlineGrace = 5 * time.Second

// Client talks to one secmetricd instance.
type Client struct {
	base string
	// HTTP is the underlying client; replace it to set transport-level
	// options or test doubles.
	HTTP *http.Client
	// Timeout bounds one request round-trip when the caller's context has
	// no deadline of its own. A request carrying timeout_ms is instead
	// bounded by timeout_ms + DeadlineGrace (the server-side 504 must win
	// the race). Zero disables the client-side bound entirely.
	Timeout time.Duration
}

// New builds a client for a base URL like "http://127.0.0.1:8321".
func New(baseURL string) *Client {
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		HTTP:    &http.Client{},
		Timeout: DefaultTimeout,
	}
}

// deadlineCtx applies the client-side time bound: the caller's own
// deadline always wins; otherwise timeout_ms (plus grace) or the
// configured default. The returned cancel must run when the round-trip
// finishes.
func (c *Client) deadlineCtx(ctx context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	d := c.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS)*time.Millisecond + DeadlineGrace
	}
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// APIError is a non-2xx daemon response: the HTTP status plus the wire
// envelope's stable code and message.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's Retry-After hint in seconds (zero when the
	// response carried none). On 429 the daemon derives it from live queue
	// depth and recent service latency; Retry and RetryDo honor it.
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("secmetricd: %s (http %d, code %s)", e.Message, e.StatusCode, e.Code)
}

// IsQueueFull reports whether err is the daemon's 429 backpressure signal;
// the request was never admitted and is safe to retry after a pause.
func IsQueueFull(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusTooManyRequests
}

// IsDeadline reports whether err is the daemon's 504 deadline signal: the
// request exceeded its (or the server's) time budget.
func IsDeadline(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusGatewayTimeout
}

// IsStaleSession reports whether err is the daemon's 409 signal that a
// delta changeset contradicts the server-side session (first contact,
// eviction, or a diverged client picture). Recovery is re-seeding: send
// the full current tree as an Added-only changeset.
func IsStaleSession(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusConflict && ae.Code == api.CodeStaleSession
}

// IsNoHistory reports whether err is the daemon's 404 signal that it was
// started without -db and therefore records and serves no findings history.
func IsNoHistory(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound && ae.Code == api.CodeNoHistory
}

// Score asks the daemon to analyze and score one tree.
func (c *Client) Score(ctx context.Context, req api.ScoreRequest) (*api.ScoreResponse, error) {
	var out api.ScoreResponse
	if err := c.post(ctx, "/v1/score", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Analyze asks for the raw code-property vector of one tree.
func (c *Client) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
	var out api.AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Findings asks for the CWE-mapped findings stream of one tree.
func (c *Client) Findings(ctx context.Context, req api.FindingsRequest) (*api.FindingsResponse, error) {
	var out api.FindingsResponse
	if err := c.post(ctx, "/v1/findings", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Compare asks for the risk delta between two versions.
func (c *Client) Compare(ctx context.Context, req api.CompareRequest) (*api.CompareResponse, error) {
	var out api.CompareResponse
	if err := c.post(ctx, "/v1/compare", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delta pushes one changeset to the repository's server-side session and
// returns the incremental evaluation. On IsStaleSession errors the caller
// should re-seed with a full Added-only changeset and retry.
func (c *Client) Delta(ctx context.Context, req api.DeltaRequest) (*api.DeltaResponse, error) {
	var out api.DeltaResponse
	if err := c.post(ctx, "/v1/delta", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Rank asks for the function-level risk ranking of one tree.
func (c *Client) Rank(ctx context.Context, req api.RankRequest) (*api.RankResponse, error) {
	var out api.RankResponse
	if err := c.post(ctx, "/v1/rank", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query runs one findings-history query against the daemon's -db store.
// IsNoHistory distinguishes "daemon keeps no history" from other failures.
func (c *Client) Query(ctx context.Context, req api.QueryRequest) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if err := c.post(ctx, "/v1/query", req.TimeoutMS, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reload asks the daemon to re-read its model sources and swap the
// registry snapshot.
func (c *Client) Reload(ctx context.Context) (*api.ReloadResponse, error) {
	var out api.ReloadResponse
	if err := c.post(ctx, "/v1/models/reload", 0, struct{}{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches GET /healthz.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var out api.Health
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RawMetrics fetches the GET /metrics text exposition.
func (c *Client) RawMetrics(ctx context.Context) (string, error) {
	ctx, cancel := c.deadlineCtx(ctx, 0)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Code: api.CodeInternal, Message: string(body)}
	}
	return string(body), nil
}

func (c *Client) post(ctx context.Context, path string, timeoutMS int64, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: encode request: %w", err)
	}
	ctx, cancel := c.deadlineCtx(ctx, timeoutMS)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	ctx, cancel := c.deadlineCtx(ctx, 0)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var we api.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Error == "" {
			we = api.Error{Code: api.CodeInternal, Error: fmt.Sprintf("http %d", resp.StatusCode)}
		}
		return &APIError{
			StatusCode: resp.StatusCode,
			Code:       we.Code,
			Message:    we.Error,
			RetryAfter: retryAfterSeconds(resp),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode response: %w", err)
	}
	return nil
}

// TreeFromDir loads a source tree from disk into wire form using the same
// loader as `secmetric score <dir>` (recognized extensions only, hidden
// entries skipped, path-sorted). The tree's Name is the dir argument as
// given, so a daemon score of the result is byte-identical to the CLI
// score of the same directory with the same model.
func TreeFromDir(dir string) (api.Tree, error) {
	t, err := metrics.LoadTree(dir)
	if err != nil {
		return api.Tree{}, err
	}
	out := api.Tree{Name: dir}
	for _, f := range t.Files {
		out.Files = append(out.Files, api.File{Path: f.Path, Content: f.Content})
	}
	return out, nil
}
