package client

import (
	"context"
	"errors"
	"time"
)

// RetryConfig tunes Retry. The zero value means up to 3 attempts with
// pauses capped at 30 seconds.
type RetryConfig struct {
	// Attempts is the total number of tries (the first call included);
	// <= 0 means 3.
	Attempts int
	// MaxWait caps one pause regardless of the server's hint; <= 0 means
	// 30 seconds.
	MaxWait time.Duration
}

// Retry runs fn, retrying only the daemon's 429 backpressure signal
// (IsQueueFull) and pausing for the server's Retry-After hint between
// tries — the daemon derives that hint from its live queue depth, so
// honoring it is what keeps a rejected burst from re-forming. Every other
// error (and success) returns immediately: a 504 ate its time budget, a
// 4xx will not improve, and retrying non-idempotent failures is the
// caller's call, not this helper's.
func Retry[T any](ctx context.Context, cfg RetryConfig, fn func(ctx context.Context) (T, error)) (T, error) {
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = 30 * time.Second
	}
	var zero T
	for attempt := 1; ; attempt++ {
		out, err := fn(ctx)
		if err == nil || !IsQueueFull(err) || attempt >= attempts {
			return out, err
		}
		wait := time.Second
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			wait = time.Duration(ae.RetryAfter) * time.Second
		}
		if wait > maxWait {
			wait = maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return zero, ctx.Err()
		}
	}
}
