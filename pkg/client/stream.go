package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/pkg/api"
)

// maxStreamLine bounds one NDJSON record; the summary record carries a
// whole batch response, so the ceiling matches the daemon's request-body
// cap rather than bufio's 64 KiB default.
const maxStreamLine = 64 << 20

// retryAfterSeconds parses the integer form of a Retry-After header,
// zero when absent or unparseable (the HTTP-date form is not something
// the daemon emits).
func retryAfterSeconds(resp *http.Response) int {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return secs
}

// AnalyzeStream posts one tree to POST /v1/analyze/stream and invokes
// onFile for every per-file completion record in arrival order (which is
// scheduling order, not path order). It returns the summary record's
// body — exactly what Analyze would have returned for the same tree.
// Heartbeat records are consumed silently; a trailing error record is
// surfaced as an *APIError just as a batch failure would be.
func (c *Client) AnalyzeStream(ctx context.Context, req api.AnalyzeRequest, onFile func(api.StreamFile)) (*api.AnalyzeResponse, error) {
	rec, err := c.stream(ctx, "/v1/analyze/stream", req.TimeoutMS, req, onFile)
	if err != nil {
		return nil, err
	}
	if rec.Analyze == nil {
		return nil, fmt.Errorf("client: summary record carries no analyze body")
	}
	return rec.Analyze, nil
}

// FindingsStream posts one tree to POST /v1/findings/stream. Each file
// record carries that file's filtered, sorted findings; the returned
// summary is exactly the batch Findings response.
func (c *Client) FindingsStream(ctx context.Context, req api.FindingsRequest, onFile func(api.StreamFile)) (*api.FindingsResponse, error) {
	rec, err := c.stream(ctx, "/v1/findings/stream", req.TimeoutMS, req, onFile)
	if err != nil {
		return nil, err
	}
	if rec.Findings == nil {
		return nil, fmt.Errorf("client: summary record carries no findings body")
	}
	return rec.Findings, nil
}

// stream runs one NDJSON request and walks the record sequence until the
// summary. An on-stream error record is converted to an *APIError with a
// synthesized status (the wire status was already 200 when the failure
// happened), so IsDeadline keeps working for mid-stream deadline trips.
func (c *Client) stream(ctx context.Context, path string, timeoutMS int64, in any, onFile func(api.StreamFile)) (*api.StreamRecord, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, fmt.Errorf("client: encode request: %w", err)
	}
	ctx, cancel := c.deadlineCtx(ctx, timeoutMS)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Rejected before the stream began: a plain JSON error envelope.
		var we api.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Error == "" {
			we = api.Error{Code: api.CodeInternal, Error: fmt.Sprintf("http %d", resp.StatusCode)}
		}
		return nil, &APIError{
			StatusCode: resp.StatusCode,
			Code:       we.Code,
			Message:    we.Error,
			RetryAfter: retryAfterSeconds(resp),
		}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxStreamLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec api.StreamRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("client: decode stream record: %w", err)
		}
		switch rec.Type {
		case api.StreamTypeHeartbeat:
		case api.StreamTypeFile:
			if onFile != nil && rec.File != nil {
				onFile(*rec.File)
			}
		case api.StreamTypeSummary:
			return &rec, nil
		case api.StreamTypeError:
			we := rec.Err
			if we == nil {
				we = &api.Error{Code: api.CodeInternal, Error: "stream failed with an empty error record"}
			}
			status := http.StatusInternalServerError
			if we.Code == api.CodeDeadline {
				status = http.StatusGatewayTimeout
			}
			return nil, &APIError{StatusCode: status, Code: we.Code, Message: we.Error}
		default:
			return nil, fmt.Errorf("client: unknown stream record type %q", rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: read stream: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a summary record")
}
