package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// newBackoffServer answers 429 (with the given Retry-After) until the
// fail count is spent, then 200.
func newBackoffServer(t *testing.T, fails int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= int64(fails) {
			w.Header().Set("Retry-After", retryAfter)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Code: api.CodeQueueFull, Error: "queue full"})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestRetryHonorsRetryAfter: 429s are retried, the server's hint is
// parsed into APIError.RetryAfter, and the pause respects it (capped by
// MaxWait so the test stays fast).
func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, calls := newBackoffServer(t, 2, "1")
	c := New(ts.URL)

	// A bare call surfaces the parsed hint.
	_, err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || !IsQueueFull(err) {
		t.Fatalf("err = %v, want queue-full APIError", err)
	}
	if ae.RetryAfter != 1 {
		t.Fatalf("RetryAfter = %d, want 1", ae.RetryAfter)
	}

	// Retry eats the remaining 429 and succeeds on the third server call.
	h, err := Retry(context.Background(), RetryConfig{Attempts: 3, MaxWait: 10 * time.Millisecond},
		func(ctx context.Context) (*api.Health, error) { return c.Health(ctx) })
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

// TestRetryGivesUpAfterAttempts: a daemon that never admits returns the
// last 429 rather than spinning.
func TestRetryGivesUpAfterAttempts(t *testing.T) {
	ts, calls := newBackoffServer(t, 1000, "1")
	c := New(ts.URL)
	_, err := Retry(context.Background(), RetryConfig{Attempts: 2, MaxWait: time.Millisecond},
		func(ctx context.Context) (*api.Health, error) { return c.Health(ctx) })
	if !IsQueueFull(err) {
		t.Fatalf("err = %v, want queue-full", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestRetryDoesNotRetryOtherErrors: only the admission 429 is safe to
// blindly retry; everything else returns immediately.
func TestRetryDoesNotRetryOtherErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(api.Error{Code: api.CodeDeadline, Error: "deadline exceeded"})
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	_, err := Retry(context.Background(), RetryConfig{Attempts: 5, MaxWait: time.Millisecond},
		func(ctx context.Context) (*api.Health, error) { return c.Health(ctx) })
	if !IsDeadline(err) {
		t.Fatalf("err = %v, want deadline", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 504)", got)
	}
}
