// Package api defines the JSON wire contract of secmetricd, the
// clairvoyance-as-a-service scoring daemon: request and response envelopes
// for the analyzing endpoints (/v1/score, /v1/analyze, /v1/findings,
// /v1/compare, /v1/delta, /v1/rank), the history endpoint (/v1/query,
// served when the daemon persists runs with -db), the operational
// endpoints (/healthz, /v1/models/reload),
// and the error envelope every non-2xx response carries. Both the server
// (internal/server) and the typed client (pkg/client) build against these
// types, so the contract lives in exactly one place.
package api

import (
	secmetric "repro"
)

// File is one source file of a tree shipped for analysis. The language is
// inferred server-side from the path extension, exactly as the CLI's
// directory loader infers it; files with unrecognized extensions and
// dot-files are skipped the same way.
type File struct {
	Path    string `json:"path"`
	Content string `json:"content"`
}

// Tree is a JSON-encoded source tree, the unit every analyzing endpoint
// accepts. Name becomes the report's subject line.
type Tree struct {
	Name  string `json:"name"`
	Files []File `json:"files"`
}

// ScoreRequest asks POST /v1/score for the security report of one tree.
type ScoreRequest struct {
	// Model names a registry entry; empty selects the daemon's default.
	Model string `json:"model,omitempty"`
	Tree  Tree   `json:"tree"`
	// TimeoutMS optionally tightens this request's deadline below the
	// server's configured maximum; it can never extend it. A request that
	// exceeds its deadline fails with status 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace asks the daemon to join a span summary (wall time, per-phase
	// busy totals) onto the response diagnostics. Leaving it unset yields
	// a response byte-identical to one from a daemon without tracing.
	Trace bool `json:"trace,omitempty"`
}

// ScoreResponse carries the evaluation plus the per-file account of how the
// analysis went (degraded files, cache traffic).
type ScoreResponse struct {
	// Model is the resolved registry name the report was scored with.
	Model       string                         `json:"model"`
	Report      *secmetric.Report              `json:"report"`
	Diagnostics *secmetric.AnalysisDiagnostics `json:"diagnostics,omitempty"`
}

// AnalyzeRequest asks POST /v1/analyze for the raw code-property vector,
// with no model involved.
type AnalyzeRequest struct {
	Tree      Tree  `json:"tree"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace joins a span summary onto the response diagnostics.
	Trace bool `json:"trace,omitempty"`
}

// AnalyzeResponse is the extracted feature vector.
type AnalyzeResponse struct {
	Features    secmetric.FeatureVector        `json:"features"`
	Diagnostics *secmetric.AnalysisDiagnostics `json:"diagnostics,omitempty"`
}

// FindingsRequest asks POST /v1/findings for the CWE-mapped findings
// stream of one tree.
type FindingsRequest struct {
	Tree Tree `json:"tree"`
	// MinSeverity filters the stream ("info", "low", "medium", "high",
	// "critical"); empty reports everything.
	MinSeverity string `json:"min_severity,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
}

// FindingsResponse is the filtered findings stream.
type FindingsResponse struct {
	Report *secmetric.FindingsReport `json:"report"`
}

// CompareRequest asks POST /v1/compare for the risk delta between two
// versions of a codebase — the paper's per-change CI gate, served. Both
// versions are analyzed against the daemon's shared feature cache, so only
// the files that differ are deep-analyzed twice.
type CompareRequest struct {
	Model     string `json:"model,omitempty"`
	Old       Tree   `json:"old"`
	New       Tree   `json:"new"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
	// Trace joins one span summary covering both analyses onto the new
	// version's diagnostics.
	Trace bool `json:"trace,omitempty"`
}

// CompareResponse is the comparison plus both analyses' diagnostics.
type CompareResponse struct {
	Model          string                         `json:"model"`
	Comparison     *secmetric.Comparison          `json:"comparison"`
	OldDiagnostics *secmetric.AnalysisDiagnostics `json:"old_diagnostics,omitempty"`
	NewDiagnostics *secmetric.AnalysisDiagnostics `json:"new_diagnostics,omitempty"`
}

// Changeset is one edit step against a repository session: files added,
// files whose content changed, and paths removed. Paths obey the same
// filtering as Tree files (dot-files and unrecognized extensions are
// ignored), and the same uniqueness rule: one path may appear at most once
// across the three lists.
type Changeset struct {
	Added    []File   `json:"added,omitempty"`
	Modified []File   `json:"modified,omitempty"`
	Removed  []string `json:"removed,omitempty"`
}

// DeltaRequest asks POST /v1/delta for the risk delta of one changeset
// against the repository's server-side session — the per-change CI gate
// without re-shipping or re-analyzing the whole tree. The first request
// for a repo_id (or the first after an eviction) must seed the session
// with an Added-only changeset carrying the full tree; the server answers
// 409 with code "stale_session" when the changeset contradicts its
// current picture, and the client recovers by re-seeding.
type DeltaRequest struct {
	// RepoID keys the server-side session registry. Sessions are evicted
	// LRU beyond the daemon's capacity and after its idle TTL.
	RepoID string `json:"repo_id"`
	// Model names a registry entry; empty selects the daemon's default.
	Model     string    `json:"model,omitempty"`
	Changeset Changeset `json:"changeset"`
	TimeoutMS int64     `json:"timeout_ms,omitempty"`
	// Trace joins a span summary onto the response diagnostics.
	Trace bool `json:"trace,omitempty"`
}

// DeltaResponse carries the post-changeset evaluation. Features is
// byte-identical to what /v1/analyze would report for the full current
// tree; Comparison is present from the second changeset on.
type DeltaResponse struct {
	Model  string `json:"model"`
	RepoID string `json:"repo_id"`
	// Seq counts the changesets applied to this session, starting at 1.
	// A jump the client did not expect means the session was rebuilt.
	Seq uint64 `json:"seq"`
	// Files is the session's file count after the changeset.
	Files int `json:"files"`
	// Report scores the tree as it stands after the changeset.
	Report *secmetric.Report `json:"report"`
	// Comparison is the risk delta against the session's previous state;
	// absent on the seeding changeset, which has nothing to diff against.
	Comparison *secmetric.Comparison `json:"comparison,omitempty"`
	// ElapsedMS is the server-side wall time of the apply + score, the
	// number the incremental path exists to shrink.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Diagnostics covers only the re-analyzed (added + modified) files.
	Diagnostics *secmetric.AnalysisDiagnostics `json:"diagnostics,omitempty"`
}

// RankRequest asks POST /v1/rank for the function-level risk ranking of one
// tree — the LEOPARD-style bin-then-rank ordering the `secmetric rank` CLI
// prints. The response is byte-identical (after canonical re-marshalling) to
// `secmetric rank -json` over the same tree.
type RankRequest struct {
	Tree Tree `json:"tree"`
	// Top trims the ranking to its first N entries; 0 keeps every function.
	Top       int   `json:"top,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RankResponse is the function-level ranking.
type RankResponse struct {
	Ranking *secmetric.Ranking `json:"ranking"`
}

// QueryRequest asks POST /v1/query to run one findings-history query
// (the internal/store/query language) against the daemon's -db store.
// A daemon started without -db answers 404 with code "no_history".
type QueryRequest struct {
	// Query is the filter expression, e.g.
	// `cwe121 > 0 AND severity >= high ORDER BY score DESC LIMIT 20`.
	// The empty string matches every run.
	Query string `json:"query"`
	// FullScan disables the index planner and filters every run — the
	// wire form of the CLI's -full-scan parity check.
	FullScan  bool  `json:"full_scan,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryExplain mirrors the planner's account of how a query executed.
type QueryExplain struct {
	// Index names the access path (e.g. "cwe121"); empty for a full scan.
	Index string `json:"index,omitempty"`
	// FullScan reports whether every run row was visited.
	FullScan bool `json:"full_scan"`
	// Candidates counts rows fetched; Matched counts rows that passed the
	// filter, before LIMIT.
	Candidates int `json:"candidates"`
	Matched    int `json:"matched"`
}

// QueryResponse is the matching runs plus the plan that produced them.
type QueryResponse struct {
	Runs    []secmetric.HistoryRun `json:"runs"`
	Explain QueryExplain           `json:"explain"`
}

// StreamRecord is one NDJSON line of the streaming endpoints
// (POST /v1/analyze/stream, POST /v1/findings/stream). A stream is a
// sequence of "file" records — one per tree file, emitted the moment that
// file's analysis finishes, so arrival order is scheduling order — then
// exactly one "summary" record carrying the same body the batch endpoint
// would have returned for the whole tree. "heartbeat" records may appear
// anywhere and carry nothing; clients skip them. A failure after the first
// byte is on the wire cannot change the status line anymore, so it arrives
// as a trailing "error" record instead of a summary.
type StreamRecord struct {
	// Type is "file", "summary", "heartbeat", or "error".
	Type string `json:"type"`
	// File is set on "file" records.
	File *StreamFile `json:"file,omitempty"`
	// Analyze is the summary body of an analyze stream.
	Analyze *AnalyzeResponse `json:"analyze,omitempty"`
	// Findings is the summary body of a findings stream.
	Findings *FindingsResponse `json:"findings,omitempty"`
	// Err is set on "error" records.
	Err *Error `json:"error,omitempty"`
}

// StreamFile is one file's completion record. On a findings stream it also
// carries that file's (already filtered, already sorted) findings; the
// concatenation of every record's findings in tree (path-sorted) order is
// exactly the batch report.
type StreamFile struct {
	Path   string `json:"path"`
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
	// Findings is present only on findings streams (and omitted when the
	// file contributed none).
	Findings []secmetric.Finding `json:"findings,omitempty"`
}

// Stream record types.
const (
	StreamTypeFile      = "file"
	StreamTypeSummary   = "summary"
	StreamTypeHeartbeat = "heartbeat"
	StreamTypeError     = "error"
)

// RouterBackend is one backend's view in the router's health report.
type RouterBackend struct {
	// Addr is the backend's base URL as configured.
	Addr string `json:"addr"`
	// Healthy reports whether the ring currently routes to this backend.
	Healthy bool `json:"healthy"`
	// Requests / Errors count proxied requests and transport-level
	// failures (a backend answering 4xx/5xx is a served request, not an
	// error; errors are dials that failed or bodies that died mid-copy).
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
}

// RouterHealth is the shard router's GET /healthz body.
type RouterHealth struct {
	Status   string          `json:"status"`
	Backends []RouterBackend `json:"backends"`
}

// Health is GET /healthz's body.
type Health struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Models        []string `json:"models"`
	DefaultModel  string   `json:"default_model"`
	InFlight      int64    `json:"in_flight"`
	Queued        int64    `json:"queued"`
	Reloads       uint64   `json:"model_reloads"`
}

// ReloadResponse is POST /v1/models/reload's body after a successful swap.
type ReloadResponse struct {
	Models       []string `json:"models"`
	DefaultModel string   `json:"default_model"`
}

// Error is the envelope of every non-2xx response.
type Error struct {
	// Code is a stable machine-readable reason: "bad_request",
	// "unknown_model", "queue_full", "deadline", "body_too_large",
	// "stale_session", "no_history", "reload_failed", "internal".
	Code  string `json:"code"`
	Error string `json:"error"`
}

// Stable error codes.
const (
	CodeBadRequest   = "bad_request"
	CodeUnknownModel = "unknown_model"
	CodeQueueFull    = "queue_full"
	CodeDeadline     = "deadline"
	CodeBodyTooLarge = "body_too_large"
	CodeStaleSession = "stale_session"
	CodeNoHistory    = "no_history"
	CodeReloadFailed = "reload_failed"
	CodeInternal     = "internal"
	// CodeNoBackend is the shard router's 503: the key's ring walk found
	// no healthy backend to serve the request.
	CodeNoBackend = "no_backend"
)
