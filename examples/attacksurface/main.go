// Attack surface: the §4.1 deep-analysis features in isolation. A small
// service's source is symbolically executed (feasible paths and input-space
// model counts), its taint flows traced, and the network it deploys into is
// turned into an attack graph whose shortest exploit chain becomes the
// attack_graph_depth feature.
package main

import (
	"fmt"
	"log"

	"repro/internal/absint"
	"repro/internal/attackgraph"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/minic"
	"repro/internal/symexec"
)

const serviceSource = `
int handle_request(int reqlen) {
	int buf[64];
	int data = read_input();
	if (reqlen > 64) {
		reqlen = 64;
	}
	if (data > 100 && data < 200) {
		buf[0] = data;
		send(data);
		return 1;
	}
	if (data == 42) {
		system(data);
		return 2;
	}
	return 0;
}
`

func main() {
	prog, err := minic.Parse(serviceSource)
	if err != nil {
		log.Fatal(err)
	}
	lowered, err := ir.Lower(prog)
	if err != nil {
		log.Fatal(err)
	}
	fn := lowered.Funcs[0]

	// Symbolic execution: enumerate feasible paths and count the input
	// assignments that trigger each one.
	fmt.Println("== Symbolic execution of handle_request ==")
	res := symexec.Explore(fn, symexec.DefaultConfig())
	fmt.Printf("feasible paths: %d (infeasible pruned: %d)\n",
		res.FeasiblePaths, res.InfeasiblePaths)
	fmt.Printf("input space: %.0f assignments; block coverage %d/%d\n",
		res.InputSpace, res.BlocksCovered, res.BlocksTotal)
	for i, p := range res.Paths {
		fmt.Printf("  path %d: %4.0f models, returns %s\n", i, p.Models, p.Return)
	}

	// Abstract interpretation: sound bounds over all paths, no budget.
	fmt.Println("\n== Abstract interpretation ==")
	ai := absint.Analyze(fn, absint.DefaultConfig())
	fmt.Printf("return range over all inputs: %s\n", ai.ReturnRange)
	fmt.Printf("fixpoint in %d iterations; %d unreachable block(s)\n",
		ai.Iterations, len(ai.Unreachable))
	for _, w := range ai.Warnings {
		fmt.Printf("  line %d: %s\n", w.Line, w.Kind)
	}

	// Taint analysis: which attacker-controlled values reach sinks?
	fmt.Println("\n== Taint analysis ==")
	taint := dataflow.AnalyzeTaint(fn, dataflow.DefaultTaintConfig())
	for _, f := range taint.Findings {
		fmt.Printf("  line %d: tainted argument %d reaches sink %s\n", f.Line, f.Arg, f.Sink)
	}

	// Attack graph: the service in its deployment context.
	fmt.Println("\n== Attack graph for the deployment ==")
	n := attackgraph.NewNetwork(
		attackgraph.Host{Name: "internet"},
		attackgraph.Host{Name: "frontend", Services: []attackgraph.Service{{
			Name: "request-handler",
			Vulns: []attackgraph.Vuln{{
				ID: "CMD-INJ", RequiresPriv: attackgraph.PrivUser, GrantsPriv: attackgraph.PrivUser,
			}},
		}, {
			Name: "kernel",
			Vulns: []attackgraph.Vuln{{
				ID: "LPE", RequiresPriv: attackgraph.PrivUser, GrantsPriv: attackgraph.PrivRoot, Local: true,
			}},
		}}},
		attackgraph.Host{Name: "database", Services: []attackgraph.Service{{
			Name: "dbd",
			Vulns: []attackgraph.Vuln{{
				ID: "DB-RCE", RequiresPriv: attackgraph.PrivUser, GrantsPriv: attackgraph.PrivRoot,
			}},
		}}},
	)
	n.Connect("internet", "frontend")
	n.Connect("frontend", "database")
	analysis := attackgraph.Analyze(n,
		attackgraph.State{"internet": attackgraph.PrivRoot},
		"database", attackgraph.PrivRoot)
	fmt.Printf("goal (root on database) reachable: %v\n", analysis.GoalReachable)
	fmt.Printf("shortest exploit chain: %d steps, %d distinct minimal chains\n",
		analysis.MinSteps, analysis.Paths)
	fmt.Printf("attack states: %d, compromisable hosts: %d/3\n",
		analysis.States, analysis.CompromisableHosts)
	fmt.Println("\nfeature attack_graph_depth :=", analysis.MinSteps)
}
