// CI gate: the §5.3 workflow — "the classifier can give the developer an
// evaluation of, say, whether a code change has raised or lowered the risk
// than the previous version of the code." Two versions of the same codebase
// are written to disk, analyzed, and compared; the process exits nonzero
// when the change raises risk, exactly how a CI job would gate a merge.
//
// The gate runs in one of two modes:
//
//   - library (default): train a model in-process and compare locally.
//   - daemon (-daemon URL, or SECMETRICD_URL set): ship both trees to a
//     running secmetricd over POST /v1/compare. The daemon owns the model
//     and the shared feature cache, so the gate itself stays stateless and
//     starts in milliseconds — the per-commit cost §5.3 cares about.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	secmetric "repro"
	"repro/pkg/api"
	"repro/pkg/client"
)

// Version 1: bounds-checked input handling.
const v1Source = `
int read_limit = 64;

int copy_input(int dst, int n) {
	int data = read_input();
	int bounded = clamp(data);
	if (n > read_limit) {
		n = read_limit;
	}
	memmove(dst, bounded, n);
	return n;
}

int main(void) {
	int buf[64];
	int n = copy_input(buf[0], 128);
	return n;
}
`

// Version 2: the "performance fix" that drops the clamp and switches to an
// unchecked copy — the kind of change the metric should flag.
const v2Source = `
int read_limit = 64;

int copy_input(int dst, int n) {
	int data = read_input();
	strcpy(dst, data);
	sprintf(dst, data);
	return n;
}

int main(void) {
	int buf[64];
	int n = copy_input(buf[0], 128);
	system(n);
	return n;
}
`

func main() {
	daemonURL := flag.String("daemon", os.Getenv("SECMETRICD_URL"),
		"secmetricd base URL (e.g. http://127.0.0.1:8321); empty runs the gate in-process")
	flag.Parse()

	workdir, err := os.MkdirTemp("", "cigate")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	write := func(version, src string) string {
		dir := filepath.Join(workdir, version)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "input.mc"), []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		return dir
	}
	v1 := write("v1", v1Source)
	v2 := write("v2", v2Source)

	var cmp *secmetric.Comparison
	if *daemonURL != "" {
		cmp, err = compareViaDaemon(*daemonURL, v1, v2)
	} else {
		cmp, err = compareInProcess(workdir, v1, v2)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(cmp)
	if cmp.DeltaRisk > 0 {
		fmt.Println("\nCI gate: BLOCKING the merge — the change increases predicted risk.")
		os.Exit(1)
	}
	fmt.Println("\nCI gate: change admitted.")
}

// compareViaDaemon ships both trees to a running secmetricd: no local
// training, no local model file — the daemon's registry decides which model
// evaluates the change, and its process-wide cache makes the second version
// an incremental analysis.
func compareViaDaemon(url, v1, v2 string) (*secmetric.Comparison, error) {
	oldTree, err := client.TreeFromDir(v1)
	if err != nil {
		return nil, err
	}
	newTree, err := client.TreeFromDir(v2)
	if err != nil {
		return nil, err
	}
	c := client.New(url)
	resp, err := c.Compare(context.Background(), api.CompareRequest{Old: oldTree, New: newTree})
	if err != nil {
		if client.IsQueueFull(err) {
			return nil, fmt.Errorf("daemon is at capacity, retry the gate: %w", err)
		}
		return nil, err
	}
	fmt.Printf("[daemon] model %q evaluated the change\n", resp.Model)
	reportDiagnostics("v1", resp.OldDiagnostics)
	reportDiagnostics("v2", resp.NewDiagnostics)
	return resp.Comparison, nil
}

func compareInProcess(workdir, v1, v2 string) (*secmetric.Comparison, error) {
	corpus, err := secmetric.DefaultCorpus()
	if err != nil {
		return nil, err
	}
	model, err := secmetric.Train(corpus, secmetric.TrainConfig{
		Kind: secmetric.KindLogistic, Folds: 5, Seed: 5,
	})
	if err != nil {
		return nil, err
	}

	// Both versions share one content-addressed feature cache, so only the
	// files the change actually touched are deep-analyzed twice — the
	// incremental re-evaluation §5.3 asks for on every commit. The
	// per-file timeout keeps one pathological file from stalling the
	// gate: such a file degrades to base metrics and is named in the
	// diagnostics instead of hanging CI.
	ctx := context.Background()
	cfg := secmetric.AnalyzeConfig{
		CacheDir:    filepath.Join(workdir, "featcache"),
		FileTimeout: 30 * time.Second,
	}
	oldFV, oldDiag, err := secmetric.AnalyzeDirWithDiagnostics(ctx, v1, cfg)
	if err != nil {
		return nil, err
	}
	newFV, newDiag, err := secmetric.AnalyzeDirWithDiagnostics(ctx, v2, cfg)
	if err != nil {
		return nil, err
	}
	reportDiagnostics("v1", oldDiag)
	reportDiagnostics("v2", newDiag)
	return model.Compare("v1", oldFV, "v2", newFV), nil
}

func reportDiagnostics(name string, diag *secmetric.AnalysisDiagnostics) {
	if diag == nil {
		return
	}
	fmt.Printf("[%s] %d file(s), cache %d hit(s)/%d miss(es)\n",
		name, len(diag.Files), diag.CacheHits, diag.CacheMisses)
	// A degraded file means the risk delta was computed from partial
	// evidence — CI should see that in the log, not guess.
	for _, f := range diag.Degraded() {
		fmt.Printf("[%s] WARNING: %s degraded to base metrics (%s: %s)\n",
			name, f.Path, f.Status, f.Detail)
	}
}
