// CI gate: the §5.3 workflow — "the classifier can give the developer an
// evaluation of, say, whether a code change has raised or lowered the risk
// than the previous version of the code." Two versions of the same codebase
// are written to disk, analyzed, and compared; the process exits nonzero
// when the change raises risk, exactly how a CI job would gate a merge.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	secmetric "repro"
)

// Version 1: bounds-checked input handling.
const v1Source = `
int read_limit = 64;

int copy_input(int dst, int n) {
	int data = read_input();
	int bounded = clamp(data);
	if (n > read_limit) {
		n = read_limit;
	}
	memmove(dst, bounded, n);
	return n;
}

int main(void) {
	int buf[64];
	int n = copy_input(buf[0], 128);
	return n;
}
`

// Version 2: the "performance fix" that drops the clamp and switches to an
// unchecked copy — the kind of change the metric should flag.
const v2Source = `
int read_limit = 64;

int copy_input(int dst, int n) {
	int data = read_input();
	strcpy(dst, data);
	sprintf(dst, data);
	return n;
}

int main(void) {
	int buf[64];
	int n = copy_input(buf[0], 128);
	system(n);
	return n;
}
`

func main() {
	workdir, err := os.MkdirTemp("", "cigate")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workdir)
	write := func(version, src string) string {
		dir := filepath.Join(workdir, version)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "input.mc"), []byte(src), 0o644); err != nil {
			log.Fatal(err)
		}
		return dir
	}
	v1 := write("v1", v1Source)
	v2 := write("v2", v2Source)

	corpus, err := secmetric.DefaultCorpus()
	if err != nil {
		log.Fatal(err)
	}
	model, err := secmetric.Train(corpus, secmetric.TrainConfig{
		Kind: secmetric.KindLogistic, Folds: 5, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Both versions share one content-addressed feature cache, so only the
	// files the change actually touched are deep-analyzed twice — the
	// incremental re-evaluation §5.3 asks for on every commit. The
	// per-file timeout keeps one pathological file from stalling the
	// gate: such a file degrades to base metrics and is named in the
	// diagnostics instead of hanging CI.
	ctx := context.Background()
	cfg := secmetric.AnalyzeConfig{
		CacheDir:    filepath.Join(workdir, "featcache"),
		FileTimeout: 30 * time.Second,
	}
	oldFV, oldDiag, err := secmetric.AnalyzeDirWithDiagnostics(ctx, v1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	newFV, newDiag, err := secmetric.AnalyzeDirWithDiagnostics(ctx, v2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []struct {
		name string
		diag *secmetric.AnalysisDiagnostics
	}{{"v1", oldDiag}, {"v2", newDiag}} {
		fmt.Printf("[%s] %d file(s), cache %d hit(s)/%d miss(es)\n",
			d.name, len(d.diag.Files), d.diag.CacheHits, d.diag.CacheMisses)
		// A degraded file means the risk delta was computed from partial
		// evidence — CI should see that in the log, not guess.
		for _, f := range d.diag.Degraded() {
			fmt.Printf("[%s] WARNING: %s degraded to base metrics (%s: %s)\n",
				d.name, f.Path, f.Status, f.Detail)
		}
	}

	cmp := model.Compare("v1", oldFV, "v2", newFV)
	fmt.Print(cmp)
	if cmp.DeltaRisk > 0 {
		fmt.Println("\nCI gate: BLOCKING the merge — the change increases predicted risk.")
		os.Exit(1)
	}
	fmt.Println("\nCI gate: change admitted.")
}
