// Library selection: the paper's §1 motivating scenario — "in selecting
// between two library implementations for use in a web service, our
// proposed metric would identify which is less likely to have
// vulnerabilities." Two JSON-parser implementations with different hygiene
// are analyzed and ranked.
package main

import (
	"fmt"
	"log"

	secmetric "repro"
	"repro/internal/lang"
	"repro/internal/langgen"
)

func main() {
	corpus, err := secmetric.DefaultCorpus()
	if err != nil {
		log.Fatal(err)
	}
	model, err := secmetric.Train(corpus, secmetric.TrainConfig{
		Kind: secmetric.KindForest, Folds: 5, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate A: a fast-and-loose parser — long functions, unchecked
	// copies, tainted flows.
	specA := langgen.Spec{
		Language: lang.MiniC, Files: 6, FuncsPerFile: 8, StmtsPerFunc: 18,
		BranchProb: 0.3, LoopProb: 0.2, CallProb: 0.2, CommentRate: 0.05,
		VulnDensity: 0.6, Seed: 1001,
	}
	// Candidate B: a conservative parser — smaller functions, documented,
	// no unsafe patterns.
	specB := langgen.Spec{
		Language: lang.MiniC, Files: 6, FuncsPerFile: 8, StmtsPerFunc: 8,
		BranchProb: 0.2, LoopProb: 0.1, CallProb: 0.15, CommentRate: 0.35,
		VulnDensity: 0.0, Seed: 1002,
	}

	candidates := []struct {
		name string
		spec langgen.Spec
	}{
		{"libfastjson", specA},
		{"libcarefuljson", specB},
	}

	type outcome struct {
		name   string
		report *secmetric.Report
	}
	var results []outcome
	for _, cand := range candidates {
		tree := langgen.Generate(cand.spec)
		fv := secmetric.AnalyzeTree(tree)
		rep := model.Score(cand.name, fv)
		results = append(results, outcome{cand.name, rep})
		fmt.Printf("== %s ==\n%s\n", cand.name, rep)
	}

	best, runnerUp := results[0], results[1]
	if runnerUp.report.RiskScore < best.report.RiskScore {
		best, runnerUp = runnerUp, best
	}
	fmt.Printf("RECOMMENDATION: adopt %s (risk %.1f vs %.1f for %s)\n",
		best.name, best.report.RiskScore, runnerUp.report.RiskScore, runnerUp.name)
}
