// System image: the paper's §5.3 future-work question made concrete —
// "A goal for future work is to apply the metric to a VM or Docker image,
// capturing the risk for not just the application, but its supporting
// infrastructure." Three components of a container image are scored
// individually; the system evaluation combines the weakest exposed link
// with an escalation analysis over the component dependencies.
package main

import (
	"fmt"
	"log"

	secmetric "repro"
	"repro/internal/lang"
	"repro/internal/langgen"
)

func main() {
	corpus, err := secmetric.DefaultCorpus()
	if err != nil {
		log.Fatal(err)
	}
	model, err := secmetric.Train(corpus, secmetric.TrainConfig{
		Kind: secmetric.KindLogistic, Folds: 5, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three components with different hygiene levels, as found in a
	// typical service image.
	gen := func(name string, seed uint64, vulnDensity, comments float64) *secmetric.Report {
		spec := langgen.Spec{
			Language: lang.MiniC, Files: 4, FuncsPerFile: 6, StmtsPerFunc: 10,
			BranchProb: 0.25, LoopProb: 0.15, CallProb: 0.15,
			CommentRate: comments, VulnDensity: vulnDensity, Seed: seed,
		}
		tree := langgen.Generate(spec)
		fv := secmetric.AnalyzeTree(tree)
		rep := model.Score(name, fv)
		fmt.Printf("component %-12s risk %.1f\n", name, rep.RiskScore)
		return rep
	}

	frontend := gen("frontend", 31, 0.5, 0.05) // sloppy, network-facing
	appsrv := gen("appserver", 32, 0.0, 0.35)
	logagent := gen("logagent", 33, 0.4, 0.10) // runs as root

	img := &secmetric.SystemImage{
		Name: "shop-container",
		Components: []secmetric.SystemComponent{
			{Name: "frontend", Report: frontend, Exposure: secmetric.ExposureInternet,
				DependsOn: []string{"appserver"}},
			{Name: "appserver", Report: appsrv, Exposure: secmetric.ExposureInternal,
				DependsOn: []string{"logagent"}},
			{Name: "logagent", Report: logagent, Exposure: secmetric.ExposureLocal,
				Privileged: true},
		},
	}
	ev, err := secmetric.EvaluateImage(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(ev)

	// What containment buys: drop the appserver -> logagent dependency
	// (e.g. ship logs over a one-way socket instead).
	img.Components[1].DependsOn = nil
	contained, err := secmetric.EvaluateImage(img)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nAfter isolating the privileged log agent:")
	fmt.Print(contained)
}
