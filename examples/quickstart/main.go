// Quickstart: train the prediction model on the built-in CVE corpus, run
// the static-analysis testbed over a small generated codebase, and print
// the security report — the full §5 pipeline in one file.
package main

import (
	"fmt"
	"log"

	secmetric "repro"
	"repro/internal/langgen"
)

func main() {
	// 1. Ground truth: the synthetic CVE corpus calibrated to the paper's
	// statistics (164 apps, 5,975 vulnerabilities, Figure 2's regression).
	fmt.Println("== Generating the CVE training corpus...")
	corpus, err := secmetric.DefaultCorpus()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d applications, %d vulnerabilities\n", len(corpus.Apps), corpus.TotalCVEs())

	// 2. Offline training with cross validation (Figure 4).
	fmt.Println("== Training the prediction model (logistic, 5-fold CV)...")
	model, err := secmetric.Train(corpus, secmetric.TrainConfig{
		Kind: secmetric.KindLogistic, Folds: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, hm := range model.Hypotheses {
		fmt.Printf("   %-14s %s\n", hm.Hypothesis.Name, hm.CV)
	}

	// 3. The automated testbed: extract code properties from a codebase.
	// Here the codebase is generated; point AnalyzeDir at any directory of
	// C/C++/Java/Python sources to analyze real code.
	fmt.Println("== Analyzing the target codebase...")
	spec := langgen.DefaultSpec()
	spec.Seed = 2024
	spec.VulnDensity = 0.4
	tree := langgen.Generate(spec)
	features := secmetric.AnalyzeTree(tree)
	fmt.Printf("   %.1f kLoC, %d functions, %d unsafe call sites, %d tainted sinks\n",
		features["kloc"], int(features["functions"]),
		int(features["unsafe_calls"]), int(features["tainted_sinks"]))

	// 4. The metric: hypothesis predictions plus actionable hints (§5.3).
	fmt.Println("== Security report:")
	fmt.Print(model.Score(tree.Name, features))
}
