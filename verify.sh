#!/bin/sh
# Tier-1 verification: build, vet, the full test suite under the race
# detector (every parallel path — training fan-out, CV folds, forest
# trees, the extraction worker pool, the feature cache, and the
# cancellation/panic-containment paths — is race-checked on every run),
# and a short native-fuzz smoke over the MiniC parser, the panic source
# the containment layer most needs to hold against. Ends with a live
# secmetricd smoke: concurrent daemon scores must be byte-identical to a
# CLI run, incremental /v1/delta results must be byte-identical to the
# cold endpoints, the NDJSON streaming endpoints must end with the batch
# bytes, deadlines must 504 without killing the process, a tight queue
# must shed load with 429s, SIGTERM must drain cleanly — and a 3-backend
# fleet behind the consistent-hash shard router must answer the same
# bytes as a solo daemon, coalesce identical bursts, and keep serving
# through a SIGKILLed backend and its recovery.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race -timeout 5m ./...

echo "== fuzz smoke (FuzzParse, 10s) =="
go test -run Fuzz -fuzz FuzzParse -fuzztime 10s ./internal/minic

echo "== fuzz smoke (FuzzQueryParse, 10s) =="
go test -run Fuzz -fuzz FuzzQueryParse -fuzztime 10s ./internal/store/query

echo "== findings smoke (examples/vulnapp) =="
out=$(go run ./cmd/secmetric findings examples/vulnapp)
echo "$out"
case "$out" in
*CWE-121*) ;;
*)
	echo "findings smoke: expected a CWE-121 finding in examples/vulnapp" >&2
	exit 1
	;;
esac

# Bench smoke: the quick-budget workloads must stay within 25% ns/op of
# the committed post-optimization baseline, so hot-path regressions fail
# verification instead of landing silently.
echo "== bench smoke (secmetric bench -quick vs BENCH_pr10.json) =="
benchtmp=$(mktemp -d)
go run ./cmd/secmetric bench -quick -rev verify -out "$benchtmp/bench.json" \
	-against BENCH_pr10.json -max-regress 0.25
rm -rf "$benchtmp"

# Store smoke: the embedded engine must survive an injected mid-commit
# crash losing no acknowledged run (two crash offsets), and MVCC snapshot
# reads must stay byte-identical while a writer commits 100 runs — the
# parity acceptance test, run explicitly under the race detector.
echo "== store smoke (crash recovery + snapshot parity) =="
go run ./cmd/storesmoke -crash $((128 * 1024)) -runs 600
go run ./cmd/storesmoke -crash $((300 * 1024)) -runs 1200 -seed 99
go test -race -count=1 -run 'TestSnapshotParityUnderConcurrentWriter|TestCrashRecoveryTorture' ./internal/store

# Rank smoke: the function-level ranking must be byte-identical at any
# worker-pool width, and the acceptance ordering on examples/vulnapp must
# hold (the function reaching three sinks outranks everything, the benign
# input wrapper comes last).
echo "== rank smoke (jobs parity + acceptance ordering) =="
ranktmp=$(mktemp -d)
go run ./cmd/secmetric rank -jobs 1 -json examples/vulnapp > "$ranktmp/j1.json"
go run ./cmd/secmetric rank -jobs 8 -json examples/vulnapp > "$ranktmp/j8.json"
cmp "$ranktmp/j1.json" "$ranktmp/j8.json" || {
	echo "rank smoke: -jobs 1 and -jobs 8 rankings differ" >&2
	exit 1
}
rankout=$(go run ./cmd/secmetric rank -top 10 examples/vulnapp)
echo "$rankout"
first_fn=$(echo "$rankout" | awk '$1 == "1" { print $2 }')
if [ "$first_fn" != "main" ]; then
	echo "rank smoke: expected main at rank 1, got '$first_fn'" >&2
	exit 1
fi
rm -rf "$ranktmp"

# Trace smoke: a traced analysis of examples/vulnapp must produce
# well-formed, non-empty trace_event JSON, and the span structure must be
# identical at -jobs 1 and -jobs 8 (cacheless; only durations may vary).
echo "== trace smoke (analyze -trace on examples/vulnapp) =="
tracetmp=$(mktemp -d)
go run ./cmd/secmetric analyze -jobs 1 -trace "$tracetmp/j1.json" -slowest 3 examples/vulnapp
go run ./cmd/secmetric analyze -jobs 8 -trace "$tracetmp/j8.json" examples/vulnapp > /dev/null
go run ./cmd/tracecheck "$tracetmp/j1.json" "$tracetmp/j8.json"
rm -rf "$tracetmp"

echo "== daemon smoke (secmetricd) =="
smoketmp=$(mktemp -d)
daemon_pid=""
cleanup() {
	if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
		kill "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$smoketmp"
}
trap cleanup EXIT

go build -o "$smoketmp/" ./cmd/secmetric ./cmd/secmetricd ./cmd/daemonsmoke
go run ./cmd/trainctl -kind logistic -folds 5 -seed 5 -out "$smoketmp/model.json" >/dev/null
"$smoketmp/secmetric" score -model "$smoketmp/model.json" -json examples/vulnapp > "$smoketmp/cli.json"
"$smoketmp/secmetric" rank -json examples/vulnapp > "$smoketmp/cli-rank.json"

wait_addr() {
	i=0
	while [ ! -s "$smoketmp/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "daemon smoke: daemon never wrote its address" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# Phase 1: a normally provisioned daemon must serve concurrent scores
# byte-identical to the CLI, answer findings/analyze/metrics/reload, trip
# 504 on an impossible deadline without dying — then drain on SIGTERM.
"$smoketmp/secmetricd" -addr 127.0.0.1:0 -addr-file "$smoketmp/addr" \
	-model "$smoketmp/model.json" -workers 4 -queue 32 \
	-cache "$smoketmp/featcache" > "$smoketmp/daemon.log" 2>&1 &
daemon_pid=$!
wait_addr
"$smoketmp/daemonsmoke" -addr "$(cat "$smoketmp/addr")" \
	-dir examples/vulnapp -cli "$smoketmp/cli.json"
# Delta smoke against the same daemon: seed a session, push a 1-file
# change, and hold the incremental report/comparison to byte parity with
# the cold score/compare endpoints.
"$smoketmp/daemonsmoke" -addr "$(cat "$smoketmp/addr")" \
	-dir examples/vulnapp -mode delta
# Rank smoke against the same daemon: /v1/rank must be deterministic
# across repeats and byte-identical to the CLI's -json ranking.
"$smoketmp/daemonsmoke" -addr "$(cat "$smoketmp/addr")" \
	-dir examples/vulnapp -mode rank -cli "$smoketmp/cli-rank.json"
# Streaming smoke against the same daemon: the NDJSON endpoints must fire
# one per-file record per tree file and end with a summary byte-identical
# to the batch response.
"$smoketmp/daemonsmoke" -addr "$(cat "$smoketmp/addr")" \
	-dir examples/vulnapp -mode stream
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	echo "daemon smoke: SIGTERM drain exited nonzero" >&2
	cat "$smoketmp/daemon.log" >&2
	exit 1
fi
daemon_pid=""
grep -q "drained cleanly" "$smoketmp/daemon.log" || {
	echo "daemon smoke: no clean-drain log line" >&2
	cat "$smoketmp/daemon.log" >&2
	exit 1
}

# Phase 2: a tightly provisioned daemon (1 worker, queue depth 1) must
# shed a 16-request burst with 429s while still serving some requests.
rm -f "$smoketmp/addr"
"$smoketmp/secmetricd" -addr 127.0.0.1:0 -addr-file "$smoketmp/addr" \
	-model "$smoketmp/model.json" -workers 1 -queue 1 \
	-cache "$smoketmp/featcache2" > "$smoketmp/daemon2.log" 2>&1 &
daemon_pid=$!
wait_addr
"$smoketmp/daemonsmoke" -addr "$(cat "$smoketmp/addr")" \
	-dir examples/vulnapp -mode burst -requests 16
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	echo "daemon smoke: burst daemon drain exited nonzero" >&2
	cat "$smoketmp/daemon2.log" >&2
	exit 1
fi
daemon_pid=""

# Phase 3: the fleet smoke boots a solo daemon, three shard backends, and
# the consistent-hash router itself, then holds the fleet to the solo
# daemon's bytes for score/rank/delta/query, proves a burst of identical
# requests coalesces on the home shard, SIGKILLs one backend mid-burst,
# and requires service through the outage and after the restart.
echo "== fleet smoke (shard router) =="
"$smoketmp/daemonsmoke" -mode fleet -daemon "$smoketmp/secmetricd" \
	-model "$smoketmp/model.json" -dir examples/vulnapp

echo "verify: OK"
