#!/bin/sh
# Tier-1 verification: build, vet, and the full test suite under the race
# detector, so every parallel path (training fan-out, CV folds, forest
# trees, the extraction worker pool, and the feature cache) is race-checked
# on every run.
set -eu

cd "$(dirname "$0")"

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "verify: OK"
