#!/bin/sh
# Tier-1 verification: build, vet, the full test suite under the race
# detector (every parallel path — training fan-out, CV folds, forest
# trees, the extraction worker pool, the feature cache, and the
# cancellation/panic-containment paths — is race-checked on every run),
# and a short native-fuzz smoke over the MiniC parser, the panic source
# the containment layer most needs to hold against.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race -timeout 5m ./...

echo "== fuzz smoke (FuzzParse, 10s) =="
go test -run Fuzz -fuzz FuzzParse -fuzztime 10s ./internal/minic

echo "== findings smoke (examples/vulnapp) =="
out=$(go run ./cmd/secmetric findings examples/vulnapp)
echo "$out"
case "$out" in
*CWE-121*) ;;
*)
	echo "findings smoke: expected a CWE-121 finding in examples/vulnapp" >&2
	exit 1
	;;
esac

echo "verify: OK"
