package secmetric

// Lifecycle integration test: the full production workflow across process
// boundaries — generate the corpus, persist the CVE database, reload it,
// train, persist the model, reload it, analyze real source from disk, and
// gate a change — every artifact passing through its serialized form.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cvedb"
	"repro/internal/langgen"
)

func TestFullLifecycle(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist the CVE database.
	c, err := corpus.Generate(corpus.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(dir, "corpus.json")
	f, err := os.Create(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DB.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and verify the ground truth survived.
	rf, err := os.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	db, err := cvedb.Load(rf)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumApps() != 164 || db.NumRecords() != 5975 {
		t.Fatalf("reloaded db: %d apps, %d records", db.NumApps(), db.NumRecords())
	}
	// Hypothesis labels recomputed from the reloaded database must agree
	// with the in-memory corpus.
	for _, a := range c.Apps[:10] {
		orig, err := c.DB.StatsFor(a.App.Name)
		if err != nil {
			t.Fatal(err)
		}
		reloaded, err := db.StatsFor(a.App.Name)
		if err != nil {
			t.Fatal(err)
		}
		if orig.HighSeverity != reloaded.HighSeverity ||
			orig.NetworkVector != reloaded.NetworkVector ||
			orig.StackOverflow != reloaded.StackOverflow {
			t.Fatalf("%s labels drifted across persistence", a.App.Name)
		}
	}

	// 3. Train and persist the model.
	model, err := Train(c, TrainConfig{Kind: KindForest, Folds: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.json")
	if err := SaveModel(model, modelPath); err != nil {
		t.Fatal(err)
	}

	// 4. Reload the model in a "new process" and analyze source from disk.
	loaded, err := LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	spec := langgen.DefaultSpec()
	spec.Seed = 4242
	spec.VulnDensity = 0.8
	tree := langgen.Generate(spec)
	srcDir := filepath.Join(dir, "src")
	for _, file := range tree.Files {
		full := filepath.Join(srcDir, file.Path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(file.Content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fv, err := AnalyzeDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	rep := loaded.Score("lifecycle", fv)
	if rep.RiskScore <= 0 || rep.RiskScore > 100 {
		t.Fatalf("risk = %v", rep.RiskScore)
	}

	// 5. Gate a "change": the same codebase with the vulnerabilities
	// removed must score no higher.
	cleanSpec := spec
	cleanSpec.VulnDensity = 0
	cleanTree := langgen.Generate(cleanSpec)
	cleanFV := AnalyzeTree(cleanTree)
	cmp := loaded.Compare("dirty", fv, "clean", cleanFV)
	if cmp.DeltaRisk > 0 {
		t.Fatalf("removing vulnerabilities raised risk: %s", cmp.Verdict())
	}

	// 6. Focus planning with the reloaded model.
	plan, err := loaded.FocusFiles(cleanTree, 20)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range plan.Entries {
		total += e.Allocated
	}
	if total != 20 {
		t.Fatalf("focus budget = %d", total)
	}
}
