package secmetric

// Golden-output tests: the analyze/score/findings JSON the CLI emits for
// examples/vulnapp is pinned byte-for-byte in testdata/. The fixtures were
// captured before the zero-alloc lexer and compiled-forest rewrites, so
// these tests are the proof that the hot-path optimizations changed no
// emitted value — at any worker-pool width. Regenerate (deliberately) with
//
//	go test -run Golden -update-goldens .
//
// after a semantic change to the extractors or the report.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata golden files from current output")

const goldenDir = "examples/vulnapp"

// encodeCLI reproduces the CLI's JSON encoding (two-space indent, trailing
// newline) so the in-process bytes are comparable with captured stdout.
func encodeCLI(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from golden (%d vs %d bytes); run with -update-goldens if the change is intended",
			path, len(got), len(want))
	}
}

// analyzeAt extracts the example tree's features at one worker-pool width.
func analyzeAt(t *testing.T, jobs int) FeatureVector {
	t.Helper()
	fv, err := AnalyzeDirWith(context.Background(), goldenDir, AnalyzeConfig{Jobs: jobs})
	if err != nil {
		t.Fatal(err)
	}
	return fv
}

func TestAnalyzeGolden(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		fv := analyzeAt(t, jobs)
		out := struct {
			Features FeatureVector `json:"features"`
		}{Features: fv}
		got := encodeCLI(t, out)
		if jobs != 1 && *updateGoldens {
			continue // write the golden once, from the jobs=1 run
		}
		checkGolden(t, filepath.Join("testdata", "analyze.vulnapp.golden.json"), got)
	}
}

func TestScoreGolden(t *testing.T) {
	model, err := LoadModel(filepath.Join("testdata", "model.logistic.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 8} {
		rep := model.Score(goldenDir, analyzeAt(t, jobs))
		got := encodeCLI(t, rep)
		if jobs != 1 && *updateGoldens {
			continue
		}
		checkGolden(t, filepath.Join("testdata", "score.vulnapp.golden.json"), got)
	}
}

func TestFindingsGolden(t *testing.T) {
	rep, err := CollectFindingsDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	got := encodeCLI(t, rep)
	checkGolden(t, filepath.Join("testdata", "findings.vulnapp.golden.json"), got)
}
