// Package secmetric is the public facade of the clairvoyant
// security-evaluation library, a reproduction of Jain, Tsai, and Porter,
// "A Clairvoyant Approach to Evaluating Software (In)Security" (HotOS '17).
//
// The workflow mirrors the paper's Figure 4:
//
//	corpus, _ := secmetric.DefaultCorpus()          // CVE ground truth
//	model, _ := secmetric.TrainDefault(corpus)      // offline training, 10-fold CV
//	features, _ := secmetric.AnalyzeDir("./mycode") // the automated testbed
//	report := model.Score("mycode", features)       // hypothesis predictions
//	fmt.Println(report)
//
// and the CI-gate comparison of §5.3:
//
//	cmp := model.Compare("v1", oldFeatures, "v2", newFeatures)
//	fmt.Println(cmp.Verdict())
package secmetric

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/featcache"
	"repro/internal/findings"
	"repro/internal/funcrank"
	"repro/internal/metrics"
	"repro/internal/store/findex"
	"repro/internal/system"
	"repro/internal/system/durable"
	"repro/internal/trace"
	"repro/internal/vcsgen"
)

// Re-exported types: the facade's vocabulary.
type (
	// Model is a trained prediction model (one classifier per hypothesis
	// plus a vulnerability-count regressor).
	Model = core.Model
	// Report is the security evaluation of one codebase.
	Report = core.Report
	// Comparison is the risk delta between two versions of a codebase.
	Comparison = core.Comparison
	// FeatureVector is a named code-property vector.
	FeatureVector = metrics.FeatureVector
	// Corpus is the CVE training corpus.
	Corpus = corpus.Corpus
	// TrainConfig selects the classifier family, fold count, and feature
	// selection for training.
	TrainConfig = core.TrainConfig
	// Tree is an in-memory source tree.
	Tree = metrics.Tree
	// AnalysisDiagnostics is the per-file account of an analysis run:
	// which files completed, which were skipped, timed out, or had a
	// panicking deep analysis contained, plus feature-cache traffic.
	AnalysisDiagnostics = core.AnalysisDiagnostics
	// FileDiagnostic is one file's analysis outcome.
	FileDiagnostic = core.FileDiagnostic
	// FileStatus classifies a file's analysis outcome.
	FileStatus = core.FileStatus
)

// Per-file analysis statuses reported in AnalysisDiagnostics.
const (
	StatusOK        = core.StatusOK
	StatusParseSkip = core.StatusParseSkip
	StatusTimeout   = core.StatusTimeout
	StatusPanic     = core.StatusPanic
	StatusCacheHit  = core.StatusCacheHit
)

// Classifier kinds accepted by Train.
const (
	KindZeroR      = core.KindZeroR
	KindNaiveBayes = core.KindNaiveBayes
	KindLogistic   = core.KindLogistic
	KindTree       = core.KindTree
	KindForest     = core.KindForest
	KindKNN        = core.KindKNN
	KindBoost      = core.KindBoost
)

// AnalyzeConfig tunes AnalyzeDirWith / AnalyzeTreeWith.
type AnalyzeConfig struct {
	// Jobs bounds the per-file deep-analysis worker pool; <= 0 uses every
	// core. The extracted vector is identical for any value.
	Jobs int
	// CacheDir, when non-empty, persists per-file deep-analysis results
	// keyed by content hash under this directory, so repeated analyses
	// (per-commit CI runs, compare old/new) only pay for changed files.
	CacheDir string
	// FileTimeout bounds one file's deep analysis; <= 0 (the default)
	// disables the bound. A file that exceeds it degrades to base metrics
	// only and is recorded in the diagnostics as StatusTimeout.
	FileTimeout time.Duration
}

// DefaultCorpus generates the paper-calibrated synthetic CVE corpus:
// 164 applications (126 C, 20 C++, 6 Python, 12 Java), 5,975
// vulnerabilities, five-year histories, and Figure 2's regression
// statistics.
func DefaultCorpus() (*Corpus, error) {
	return corpus.Generate(corpus.DefaultParams())
}

// TrainDefault trains the default model (random forest, 10-fold cross
// validation) on the corpus.
func TrainDefault(c *Corpus) (*Model, error) {
	return Train(c, core.DefaultTrainConfig())
}

// Train trains a model with explicit configuration.
func Train(c *Corpus, cfg TrainConfig) (*Model, error) {
	return TrainContext(context.Background(), c, cfg)
}

// TrainContext is Train with cancellation: canceling ctx drains the
// training worker pools cleanly and returns ctx's error.
func TrainContext(ctx context.Context, c *Corpus, cfg TrainConfig) (*Model, error) {
	return core.Train(ctx, core.NewTestbed(c), cfg)
}

// AnalyzeDir loads a source tree from disk and runs the full testbed over
// it: line counts, cyclomatic complexity, Halstead measures, smells, attack
// surface, lint, taint analysis, and symbolic execution.
func AnalyzeDir(dir string) (FeatureVector, error) {
	return AnalyzeDirWith(context.Background(), dir, AnalyzeConfig{})
}

// AnalyzeDirWith is AnalyzeDir with cancellation, an explicit worker-pool
// bound, an optional per-file deadline, and an optional persistent feature
// cache.
func AnalyzeDirWith(ctx context.Context, dir string, cfg AnalyzeConfig) (FeatureVector, error) {
	fv, _, err := AnalyzeDirWithDiagnostics(ctx, dir, cfg)
	return fv, err
}

// AnalyzeDirWithDiagnostics is AnalyzeDirWith plus the per-file account of
// the run: every file's status (ok / parse-skip / cache-hit / timeout /
// panic-contained) and the feature-cache traffic. Files whose deep
// analysis panicked or timed out degrade to base metrics instead of
// failing the run; the diagnostics name them.
func AnalyzeDirWithDiagnostics(ctx context.Context, dir string, cfg AnalyzeConfig) (FeatureVector, *AnalysisDiagnostics, error) {
	ls := trace.SpanFromContext(ctx).Child("load")
	tree, err := metrics.LoadTree(dir)
	ls.End()
	if err != nil {
		return nil, nil, fmt.Errorf("secmetric: %w", err)
	}
	if len(tree.Files) == 0 {
		return nil, nil, fmt.Errorf("secmetric: no source files under %s", dir)
	}
	return analyzeTree(ctx, tree, cfg)
}

// AnalyzeTree runs the testbed over an in-memory tree.
func AnalyzeTree(tree *Tree) FeatureVector {
	return core.ExtractFeatures(tree)
}

// AnalyzeTreeWith is AnalyzeTree with cancellation, an explicit worker-pool
// bound, an optional per-file deadline, and an optional persistent feature
// cache. Unlike AnalyzeTree it rejects an empty tree, exactly as
// AnalyzeDirWith rejects a directory with no source files.
func AnalyzeTreeWith(ctx context.Context, tree *Tree, cfg AnalyzeConfig) (FeatureVector, error) {
	fv, _, err := AnalyzeTreeWithDiagnostics(ctx, tree, cfg)
	return fv, err
}

// AnalyzeTreeWithDiagnostics is AnalyzeTreeWith plus the per-file account
// of the run; see AnalyzeDirWithDiagnostics.
func AnalyzeTreeWithDiagnostics(ctx context.Context, tree *Tree, cfg AnalyzeConfig) (FeatureVector, *AnalysisDiagnostics, error) {
	if len(tree.Files) == 0 {
		return nil, nil, fmt.Errorf("secmetric: no source files in tree %q", tree.Name)
	}
	return analyzeTree(ctx, tree, cfg)
}

func analyzeTree(ctx context.Context, tree *Tree, cfg AnalyzeConfig) (FeatureVector, *AnalysisDiagnostics, error) {
	ecfg := core.ExtractConfig{Jobs: cfg.Jobs, FileTimeout: cfg.FileTimeout}
	if cfg.CacheDir != "" {
		cache, err := featcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, nil, fmt.Errorf("secmetric: %w", err)
		}
		ecfg.Cache = cache
	}
	return core.ExtractFeaturesDiagnostics(ctx, tree, ecfg)
}

// Incremental-analysis re-exports: the apply-a-changeset form of the
// testbed, for callers that track a tree across edits (watch modes, CI
// bots, the daemon's /v1/delta endpoint).
type (
	// Session holds one tree's per-file analysis state and updates the
	// tree-level feature vector incrementally as changesets arrive. After
	// any sequence of changesets its Features() is byte-identical to a
	// fresh full analysis of the same tree.
	Session = core.Session
	// SessionChangeset is one edit step: files added, files whose content
	// changed, and paths removed.
	SessionChangeset = core.Changeset
	// SessionResult is the outcome of one applied changeset.
	SessionResult = core.ApplyResult
)

// ErrStaleSession reports a changeset that contradicts a session's current
// file set; recovery is re-seeding with a full Added-only changeset.
var ErrStaleSession = core.ErrStaleSession

// ErrSessionEmpty rejects a changeset that would leave a session with no
// files.
var ErrSessionEmpty = core.ErrSessionEmpty

// NewSession builds an empty incremental session configured like an
// AnalyzeTreeWith call: the same worker-pool bound, per-file deadline, and
// optional persistent cache. Seed it by applying an Added-only changeset
// carrying the full tree.
func NewSession(name string, cfg AnalyzeConfig) (*Session, error) {
	ecfg := core.ExtractConfig{Jobs: cfg.Jobs, FileTimeout: cfg.FileTimeout}
	if cfg.CacheDir != "" {
		cache, err := featcache.Open(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("secmetric: %w", err)
		}
		ecfg.Cache = cache
	}
	return core.NewSession(name, ecfg), nil
}

// ErrFeatureSchema marks a model file whose feature schema does not match
// this build's metrics.FeatureNames; LoadModel refuses such models rather
// than silently misaligning columns at score time.
var ErrFeatureSchema = core.ErrFeatureSchema

// ErrModelCorrupt marks a binary model file whose header or sections are
// truncated or inconsistent; LoadModel refuses it, and the daemon's registry
// keeps serving its previous snapshot.
var ErrModelCorrupt = core.ErrModelCorrupt

// SaveModel writes a trained model to path as JSON. The write is atomic: the
// model is serialized to a temporary file in the same directory and renamed
// into place, so a crash mid-write can never leave a truncated model a later
// LoadModel (or a serving daemon's hot-reload) would choke on, and a reader
// racing the write sees either the old complete file or the new one.
func SaveModel(m *Model, path string) error {
	return saveModelAtomic(path, m.Save)
}

// SaveModelBinary writes a trained model to path in the compact binary
// container (tree ensembles as flat node arrays, everything else as embedded
// JSON). LoadModel sniffs the format, so binary and JSON models are
// interchangeable everywhere a model path is accepted. The write is atomic
// exactly like SaveModel's.
func SaveModelBinary(m *Model, path string) error {
	return saveModelAtomic(path, m.SaveBinary)
}

// saveModelAtomic delegates to the shared durable-write helper: the model
// is serialized to a temp file in the destination directory, fsynced,
// renamed into place, and the directory fsynced — the same discipline the
// feature cache and the storage engine use, so a crash right after train
// can never surface an empty or torn model file to a later LoadModel.
func saveModelAtomic(path string, write func(io.Writer) error) error {
	if err := durable.WriteFileTo(path, 0o644, write); err != nil {
		return fmt.Errorf("secmetric: %w", err)
	}
	return nil
}

// LoadModel reads a model written by SaveModel or SaveModelBinary (the
// format is sniffed). Loaded models score and compare codebases but cannot
// be retrained. A model whose feature schema does not match this build is
// refused with ErrFeatureSchema; a damaged binary file with ErrModelCorrupt.
func LoadModel(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("secmetric: %w", err)
	}
	defer f.Close()
	return core.LoadModel(f)
}

// Findings-layer re-exports: the unified, CWE-mapped security-findings
// stream merging interprocedural taint, lint, and abstract interpretation.
type (
	// Finding is one piece of security evidence, tagged with the weakness
	// class (CWE) it evidences.
	Finding = findings.Finding
	// FindingsReport is the per-tree findings stream with per-CWE tallies.
	FindingsReport = findings.Report
	// FindingSeverity ranks findings for triage.
	FindingSeverity = findings.Severity
)

// Finding severity levels, lowest first.
const (
	SevInfo     = findings.SevInfo
	SevLow      = findings.SevLow
	SevMedium   = findings.SevMedium
	SevHigh     = findings.SevHigh
	SevCritical = findings.SevCritical
)

// ParseSeverity parses a severity level name ("info", "low", "medium",
// "high", "critical"); the empty string parses as SevInfo.
func ParseSeverity(name string) (FindingSeverity, error) {
	return findings.ParseSeverity(name)
}

// CollectFindings runs every findings producer over an in-memory tree.
func CollectFindings(tree *Tree) *FindingsReport {
	return findings.Collect(tree)
}

// HistoryRun is one persisted analysis run in the findings history — the
// unit `secmetric findings -history` appends, secmetricd's -db records per
// scoring request, and `secmetric query`//v1/query return. See
// internal/store/findex for the storage layout.
type HistoryRun = findex.Run

// CollectFindingsDir loads a source tree from disk and collects its
// CWE-mapped findings stream.
func CollectFindingsDir(dir string) (*FindingsReport, error) {
	tree, err := metrics.LoadTree(dir)
	if err != nil {
		return nil, fmt.Errorf("secmetric: %w", err)
	}
	if len(tree.Files) == 0 {
		return nil, fmt.Errorf("secmetric: no source files under %s", dir)
	}
	return findings.Collect(tree), nil
}

// Function-level ranking re-exports: the "where do I look" engine behind
// `secmetric rank` and POST /v1/rank.
type (
	// Ranking is a LEOPARD-style function risk ranking of one tree.
	Ranking = funcrank.Ranking
	// RankedFunction is one entry of a Ranking.
	RankedFunction = funcrank.RankedFunction
	// FuncFeatures is one function's feature vector.
	FuncFeatures = funcrank.FuncFeatures
	// RankConfig tunes RankDir / RankTree.
	RankConfig = funcrank.Config
	// VCSGenerator deterministically assigns synthetic per-function
	// process metrics (churn, authors, commit frequency).
	VCSGenerator = vcsgen.Generator
)

// NewVCSGenerator builds a seeded synthetic VCS-history generator for
// RankConfig.VCS.
func NewVCSGenerator(seed uint64) *VCSGenerator { return vcsgen.New(seed) }

// RankDir loads a source tree from disk and ranks its functions by risk:
// complexity bins, vulnerability metrics within bins. The ranking is
// byte-identical at any RankConfig.Jobs width.
func RankDir(ctx context.Context, dir string, cfg RankConfig) (*Ranking, error) {
	ls := trace.SpanFromContext(ctx).Child("load")
	tree, err := metrics.LoadTree(dir)
	ls.End()
	if err != nil {
		return nil, fmt.Errorf("secmetric: %w", err)
	}
	if len(tree.Files) == 0 {
		return nil, fmt.Errorf("secmetric: no source files under %s", dir)
	}
	return funcrank.Rank(ctx, tree, cfg)
}

// RankTree ranks the functions of an in-memory tree; see RankDir.
func RankTree(ctx context.Context, tree *Tree, cfg RankConfig) (*Ranking, error) {
	if len(tree.Files) == 0 {
		return nil, fmt.Errorf("secmetric: no source files in tree %q", tree.Name)
	}
	return funcrank.Rank(ctx, tree, cfg)
}

// Whole-system evaluation (§5.3 future work) re-exports.
type (
	// SystemImage is a whole system: the application plus its supporting
	// infrastructure, each component scored independently.
	SystemImage = system.Image
	// SystemComponent is one program in the image.
	SystemComponent = system.Component
	// SystemEvaluation is the weakest-link + containment verdict.
	SystemEvaluation = system.Evaluation
	// FocusPlan apportions a deep-analysis budget over files by risk.
	FocusPlan = core.FocusPlan
)

// Component exposure levels.
const (
	ExposureInternet = system.ExposureInternet
	ExposureInternal = system.ExposureInternal
	ExposureLocal    = system.ExposureLocal
)

// EvaluateImage aggregates per-component reports into a whole-system
// verdict: the weakest exposed link dominates, and an attack graph over
// the component dependencies bounds privilege escalation.
func EvaluateImage(img *SystemImage) (*SystemEvaluation, error) {
	return system.Evaluate(img)
}
