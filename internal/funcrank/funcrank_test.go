package funcrank

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/vcsgen"
)

func vulnappTree(t *testing.T) *metrics.Tree {
	t.Helper()
	tree, err := metrics.LoadTree("../../examples/vulnapp")
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Files) == 0 {
		t.Fatal("vulnapp example is empty")
	}
	return tree
}

func rank(t *testing.T, tree *metrics.Tree, cfg Config) *Ranking {
	t.Helper()
	r, err := Rank(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRankVulnappGolden pins the acceptance ordering: the function calling
// three sinks ranks first, the sink wrappers follow (ties broken by
// qualified name), and the benign input wrapper comes last.
func TestRankVulnappGolden(t *testing.T) {
	r := rank(t, vulnappTree(t), Config{Top: 10})
	want := []string{"main", "copy_into", "log_request", "run_handler", "fetch_request"}
	if len(r.Ranked) != len(want) {
		t.Fatalf("ranked %d functions, want %d", len(r.Ranked), len(want))
	}
	for i, name := range want {
		if r.Ranked[i].Name != name {
			t.Errorf("rank %d = %s, want %s", i+1, r.Ranked[i].Name, name)
		}
		if r.Ranked[i].Rank != i+1 {
			t.Errorf("entry %d carries rank %d", i, r.Ranked[i].Rank)
		}
	}
	// The known-vulnerable functions must strictly outrank the benign one.
	last := r.Ranked[len(r.Ranked)-1]
	if last.Name != "fetch_request" {
		t.Fatalf("last = %s, want fetch_request", last.Name)
	}
	for _, e := range r.Ranked[:len(r.Ranked)-1] {
		if e.VulnScore <= last.VulnScore {
			t.Errorf("%s vuln score %.2f does not exceed benign %.2f", e.Name, e.VulnScore, last.VulnScore)
		}
	}
	// Deep features actually populated: main fans out to the wrappers and
	// reaches three distinct sinks.
	top := r.Ranked[0]
	if top.Features.SinkReach < 3 || top.Features.FanOut < 3 {
		t.Errorf("main features = %+v, want sink_reach >= 3 and fan_out >= 3", top.Features)
	}
	if top.Drivers == nil {
		t.Error("main has no drivers")
	}
}

// TestRankJobsParity is the determinism contract: byte-identical rankings
// at every worker-pool width.
func TestRankJobsParity(t *testing.T) {
	tree := vulnappTree(t)
	// Replicate the file so there is real work to spread across workers.
	for i := 0; i < 7; i++ {
		f := tree.Files[0]
		f.Path = f.Path + string(rune('a'+i))
		tree.Files = append(tree.Files, f)
	}
	enc := func(r *Ranking) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	one := enc(rank(t, tree, Config{Jobs: 1, VCS: vcsgen.New(9)}))
	for _, jobs := range []int{2, 4, 8} {
		if got := enc(rank(t, tree, Config{Jobs: jobs, VCS: vcsgen.New(9)})); got != one {
			t.Fatalf("ranking bytes differ between -jobs 1 and -jobs %d", jobs)
		}
	}
}

// TestPanicContainmentFunction injects a panic into one function's deep
// analysis: that function must appear degraded with its token-level
// features intact, while every other function keeps its deep facts.
func TestPanicContainmentFunction(t *testing.T) {
	deepTestHook = func(file, fn string) {
		if fn == "copy_into" {
			panic("injected: copy_into deep analysis")
		}
	}
	defer func() { deepTestHook = nil }()

	r := rank(t, vulnappTree(t), Config{})
	var degraded, intact *RankedFunction
	for i := range r.Ranked {
		switch r.Ranked[i].Name {
		case "copy_into":
			degraded = &r.Ranked[i]
		case "main":
			intact = &r.Ranked[i]
		}
	}
	if degraded == nil || intact == nil {
		t.Fatal("expected functions missing from the ranking")
	}
	if !degraded.Degraded {
		t.Fatal("copy_into not marked degraded after injected panic")
	}
	// Base metrics survive: copy_into's body contains a strcpy call site
	// the token scan sees without any deep analysis.
	if degraded.Features.UnsafeCalls == 0 || degraded.Features.Lines == 0 {
		t.Errorf("degraded features lost the token-level base: %+v", degraded.Features)
	}
	// Deep features are zeroed for the degraded function only.
	if degraded.Features.Blocks != 0 || degraded.Features.SinkReach != 0 {
		t.Errorf("degraded function kept deep features: %+v", degraded.Features)
	}
	if intact.Degraded || intact.Features.SinkReach == 0 {
		t.Errorf("panic leaked beyond its function: main = %+v", intact.Features)
	}
}

// TestUnparsedFileBaseOnly checks the parse-skip semantics: a file that
// fails to parse yields base-only, NON-degraded functions — degradation is
// reserved for panics, not expected coverage gaps.
func TestUnparsedFileBaseOnly(t *testing.T) {
	tree := &metrics.Tree{Name: "t", Files: []metrics.File{{
		Path:     "broken.mc",
		Language: lang.MiniC,
		Content:  "int f(int a) { this is not minic @@@ }\nint g(void) { strcpy(a, b); }\n",
	}}}
	r := rank(t, tree, Config{})
	if len(r.Ranked) == 0 {
		t.Fatal("no functions from token scan")
	}
	for _, e := range r.Ranked {
		if e.Degraded {
			t.Errorf("%s marked degraded for a mere parse failure", e.Name)
		}
		if e.Features.Blocks != 0 {
			t.Errorf("%s has CFG facts without a successful parse", e.Name)
		}
	}
}

// TestTopTrim checks that Top trims the emission but not the accounting.
func TestTopTrim(t *testing.T) {
	r := rank(t, vulnappTree(t), Config{Top: 2})
	if r.Functions != 5 {
		t.Fatalf("Functions = %d, want 5", r.Functions)
	}
	if len(r.Ranked) != 2 {
		t.Fatalf("len(Ranked) = %d, want 2", len(r.Ranked))
	}
	if r.Ranked[0].Rank != 1 || r.Ranked[1].Rank != 2 {
		t.Fatalf("trimmed ranks = %d, %d", r.Ranked[0].Rank, r.Ranked[1].Rank)
	}
}

// TestVCSFeaturesJoin checks that a generator populates the process-metric
// block and changes scores deterministically.
func TestVCSFeaturesJoin(t *testing.T) {
	tree := vulnappTree(t)
	plain := rank(t, tree, Config{})
	with := rank(t, tree, Config{VCS: vcsgen.New(3)})
	for _, e := range with.Ranked {
		if e.Features.Commits == 0 || e.Features.Churn == 0 {
			t.Errorf("%s missing process metrics: %+v", e.Name, e.Features)
		}
		if e.Features.CommitsPerMonth <= 0 {
			t.Errorf("%s commits_per_month = %f", e.Name, e.Features.CommitsPerMonth)
		}
	}
	for _, e := range plain.Ranked {
		if e.Features.Commits != 0 || e.Features.Churn != 0 {
			t.Errorf("%s has process metrics without a generator", e.Name)
		}
	}
	again := rank(t, tree, Config{VCS: vcsgen.New(3)})
	a, _ := json.Marshal(with)
	b, _ := json.Marshal(again)
	if string(a) != string(b) {
		t.Fatal("seeded VCS ranking not reproducible")
	}
}

// TestRankCanceledContext is the regression for the worker-pool deadlock:
// a context canceled while files still await dispatch must make Rank
// return the context error promptly instead of blocking forever on the
// work channel (which leaked the daemon's worker-slot semaphore).
func TestRankCanceledContext(t *testing.T) {
	tree := vulnappTree(t)
	// Far more files than workers, so cancellation lands mid-dispatch.
	for i := 0; i < 63; i++ {
		f := tree.Files[0]
		f.Path = fmt.Sprintf("%s.%02d", f.Path, i)
		tree.Files = append(tree.Files, f)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Rank(ctx, tree, Config{Jobs: 2})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Rank returned no error under a canceled context")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Rank deadlocked under a canceled context")
	}
}

// TestJoinDeepDuplicateNames pins the ambiguous-name rule: when the token
// scanner saw one name twice in a file, neither occurrence may inherit the
// single deep-facts entry for that name (it belongs to an unknown one of
// them), while uniquely named functions join as usual.
func TestJoinDeepDuplicateNames(t *testing.T) {
	scans := []metrics.FunctionScan{
		{FunctionMetrics: metrics.FunctionMetrics{Name: "helper", Line: 1}},
		{FunctionMetrics: metrics.FunctionMetrics{Name: "helper", Line: 10}},
		{FunctionMetrics: metrics.FunctionMetrics{Name: "other", Line: 20}},
	}
	deep := map[string]deepFacts{
		"helper": {fanIn: 7},
		"other":  {fanIn: 3},
	}
	cands := joinDeep(scans, deep, false)
	if len(cands) != 3 {
		t.Fatalf("joined %d candidates, want 3", len(cands))
	}
	for _, c := range cands[:2] {
		if c.hasDeep {
			t.Errorf("duplicate-named %q at line %d inherited deep facts", c.scan.Name, c.scan.Line)
		}
		if c.degraded {
			t.Errorf("duplicate-named %q at line %d marked degraded", c.scan.Name, c.scan.Line)
		}
	}
	if !cands[2].hasDeep || cands[2].deep.fanIn != 3 {
		t.Errorf("uniquely named %q lost its deep facts: %+v", cands[2].scan.Name, cands[2])
	}
}

// TestBins checks the binning function's log2 bucket boundaries.
func TestBins(t *testing.T) {
	cases := []struct {
		score float64
		bin   int
	}{
		{0, 0}, {0.9, 0}, {1, 1}, {2.9, 1}, {3, 2}, {6.9, 2}, {7, 3}, {14.9, 3}, {15, 4},
	}
	for _, c := range cases {
		if got := bin(c.score); got != c.bin {
			t.Errorf("bin(%.1f) = %d, want %d", c.score, got, c.bin)
		}
	}
}
