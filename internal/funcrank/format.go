package funcrank

import (
	"fmt"
	"strconv"
	"strings"
)

func fmtInt(n int) string { return strconv.Itoa(n) }

// fmtFloat renders feature values compactly with a fixed precision, so
// driver strings are stable across platforms.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// Format renders the ranking as a fixed-width table. With explain, each
// entry is followed by an indented line listing the features driving its
// vulnerability score.
func (r *Ranking) Format(explain bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Function risk ranking of %s (%d functions, %d bins)\n",
		r.Tree, r.Functions, r.Bins)
	fmt.Fprintf(&sb, "%4s %-24s %-28s %4s %7s %7s %s\n",
		"rank", "function", "location", "bin", "cplx", "vuln", "flags")
	for _, e := range r.Ranked {
		flags := ""
		if e.Degraded {
			flags = "degraded"
		}
		fmt.Fprintf(&sb, "%4d %-24s %-28s %4d %7.2f %7.2f %s\n",
			e.Rank, e.Name, fmt.Sprintf("%s:%d", e.File, e.Line),
			e.Bin, e.ComplexityScore, e.VulnScore, flags)
		if explain && len(e.Drivers) > 0 {
			fmt.Fprintf(&sb, "     drivers: %s\n", strings.Join(e.Drivers, ", "))
		}
	}
	return sb.String()
}
