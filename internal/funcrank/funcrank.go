// Package funcrank is the function-level risk-ranking engine: it answers
// "where do I look" where the rest of the pipeline answers "is this app
// risky". For every function in a tree it computes a feature vector from
// the artifacts the pipeline already produces — token-structural metrics
// and per-function Halstead/smell/API-call counts (metrics.ScanFunctions),
// CFG shape (cfgana), call-graph position (callgraph), interprocedural
// taint behavior (dataflow summaries), and synthetic process metrics
// (vcsgen) — then ranks LEOPARD-style: functions are binned by complexity,
// and within each bin ordered by vulnerability metrics, so a moderately
// complex function dense with sink reaches surfaces ahead of a merely
// gigantic one.
//
// The engine inherits the pipeline's two contracts:
//
//   - Determinism: the ranking is byte-identical at any worker-pool width.
//     Per-file results land in index-addressed slots, every map is folded
//     in sorted order, and all tie-breaks end at the qualified function
//     name.
//
//   - Per-function degradation: a panic inside one function's deep
//     analysis (CFG + summary attachment) degrades that function to base
//     metrics; a panic in a file's whole-program stage (parse, lowering,
//     taint) degrades that file's functions. Degraded functions stay in
//     the ranking, flagged, with their token-level features intact.
package funcrank

import (
	"context"
	"math"
	"sort"

	"repro/internal/callgraph"
	"repro/internal/cfgana"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/trace"
	"repro/internal/vcsgen"
)

// Config tunes one ranking run.
type Config struct {
	// Jobs bounds the per-file extraction pool; <= 0 uses every core. The
	// ranking bytes never depend on it.
	Jobs int
	// Top trims the ranking to its first N entries; <= 0 keeps every
	// function.
	Top int
	// VCS, when non-nil, joins synthetic per-function process metrics
	// (churn, authors, commit frequency) into the vulnerability score. Nil
	// leaves the process-metric features zero.
	VCS *vcsgen.Generator
}

// FuncFeatures is one function's feature vector. The token-level block is
// always populated; the CFG/call-graph/taint blocks stay zero for files
// that do not parse as MiniC and for degraded functions.
type FuncFeatures struct {
	// Token-structural base (always present).
	Cyclomatic     int     `json:"cyclomatic"`
	MaxNesting     int     `json:"max_nesting"`
	Params         int     `json:"params"`
	LengthTokens   int     `json:"length_tokens"`
	Lines          int     `json:"lines"`
	HalsteadVolume float64 `json:"halstead_volume"`
	UnsafeCalls    int     `json:"unsafe_calls"`
	FormatCalls    int     `json:"format_calls"`
	ProcessCalls   int     `json:"process_calls"`
	InputCalls     int     `json:"input_calls"`
	MagicNumbers   int     `json:"magic_numbers"`

	// Call-graph position and CFG shape (deep analysis).
	FanIn         int  `json:"fan_in"`
	FanOut        int  `json:"fan_out"`
	CallSites     int  `json:"call_sites"`
	SCCSize       int  `json:"scc_size"`
	Recursive     bool `json:"recursive"`
	Blocks        int  `json:"blocks"`
	Edges         int  `json:"edges"`
	Loops         int  `json:"loops"`
	MaxLoopDepth  int  `json:"max_loop_depth"`
	CyclomaticCFG int  `json:"cyclomatic_cfg"`

	// Interprocedural taint behavior (deep analysis).
	SinkReach     int  `json:"sink_reach"`
	TaintDepthMax int  `json:"taint_depth_max"`
	TaintedParams int  `json:"tainted_params"`
	ReturnTainted bool `json:"return_tainted"`

	// Synthetic process metrics (vcsgen; zero without Config.VCS).
	Churn           int     `json:"churn"`
	Authors         int     `json:"authors"`
	Commits         int     `json:"commits"`
	CommitsPerMonth float64 `json:"commits_per_month"`
}

// RankedFunction is one entry of the ranking.
type RankedFunction struct {
	Rank      int    `json:"rank"`
	Name      string `json:"name"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Qualified string `json:"qualified"`
	// Bin is the LEOPARD complexity bin (log2 buckets; higher = more
	// complex).
	Bin             int     `json:"bin"`
	ComplexityScore float64 `json:"complexity_score"`
	VulnScore       float64 `json:"vuln_score"`
	// Degraded marks a function whose deep analysis panicked; only its
	// token-level features are populated.
	Degraded bool         `json:"degraded,omitempty"`
	Features FuncFeatures `json:"features"`
	// Drivers lists the features contributing most to the vulnerability
	// score, largest contribution first.
	Drivers []string `json:"drivers,omitempty"`
}

// Ranking is the full result.
type Ranking struct {
	Tree string `json:"tree"`
	// Functions counts every function found, before Top trimming.
	Functions int              `json:"functions"`
	Bins      int              `json:"bins"`
	Ranked    []RankedFunction `json:"ranked"`
}

// deepTestHook, when non-nil, runs inside every function's per-function
// containment boundary. Tests use it to inject panics into one function's
// deep analysis; production code never sets it.
var deepTestHook func(file, fn string)

// candidate is one function mid-pipeline.
type candidate struct {
	scan     metrics.FunctionScan
	deep     deepFacts
	hasDeep  bool
	degraded bool
}

// deepFacts is the per-function outcome of a file's deep analysis.
type deepFacts struct {
	fanIn, fanOut, callSites int
	sccSize                  int
	recursive                bool
	flow                     cfgana.FlowFacts
	summary                  dataflow.Summary
	hasSummary               bool
	degraded                 bool
}

// Rank computes the function ranking of a tree. The tree's files must be
// path-sorted (metrics.LoadTree and the server's tree decoder both
// guarantee it); the ranking bytes are then independent of cfg.Jobs.
func Rank(ctx context.Context, tree *metrics.Tree, cfg Config) (*Ranking, error) {
	rk := trace.SpanFromContext(ctx).Child("rank")
	defer rk.End()

	perFile := make([][]candidate, len(tree.Files))
	err := ml.ParallelForCtx(ctx, len(tree.Files), cfg.Jobs, func(i int) error {
		fs := rk.ChildAt(i, trace.SpanNameFile)
		fs.SetLabel(tree.Files[i].Path)
		perFile[i] = analyzeFile(tree.Files[i])
		fs.End()
		return nil
	})
	if err != nil {
		return nil, err
	}

	var cands []candidate
	for _, fns := range perFile {
		cands = append(cands, fns...)
	}
	rk.Add("functions", int64(len(cands)))

	ranked := make([]RankedFunction, len(cands))
	for i, c := range cands {
		ranked[i] = build(c, cfg.VCS)
	}
	order(ranked)
	out := &Ranking{Tree: tree.Name, Functions: len(ranked)}
	for _, r := range ranked {
		if r.Bin+1 > out.Bins {
			out.Bins = r.Bin + 1
		}
	}
	if cfg.Top > 0 && len(ranked) > cfg.Top {
		ranked = ranked[:cfg.Top]
	}
	out.Ranked = ranked
	return out, nil
}

// analyzeFile extracts every function of one file: token-level scans for
// all of them, deep facts where the file parses as MiniC.
func analyzeFile(f metrics.File) []candidate {
	scans := metrics.ScanFunctions(f)
	if len(scans) == 0 {
		return nil
	}
	deep, fileDegraded := deepFile(f)
	return joinDeep(scans, deep, fileDegraded)
}

// joinDeep attaches per-function deep facts to the token-level scans. The
// join is by function name (the IR carries no positions), so a name the
// token scanner saw more than once in this file is ambiguous — those
// functions keep base metrics only rather than all inheriting one
// definition's deep facts.
func joinDeep(scans []metrics.FunctionScan, deep map[string]deepFacts, fileDegraded bool) []candidate {
	names := make(map[string]int, len(scans))
	for _, sc := range scans {
		names[sc.Name]++
	}
	out := make([]candidate, len(scans))
	for i, sc := range scans {
		c := candidate{scan: sc, degraded: fileDegraded}
		if df, ok := deep[sc.Name]; ok && names[sc.Name] == 1 {
			if df.degraded {
				c.degraded = true
			} else {
				c.deep = df
				c.hasDeep = true
			}
		}
		out[i] = c
	}
	return out
}

// deepFile runs the whole-program stages over one file (each file is one
// MiniC translation unit) and distributes the results per function. The
// outer recover contains a panic in parse/lowering/call-graph/taint — the
// whole file degrades; the inner recover contains a panic in one
// function's CFG analysis or summary attachment — only that function
// degrades. A file that simply does not parse as MiniC returns an empty
// map and no degradation: base metrics are the expected coverage there,
// matching the pipeline's parse-skip semantics.
func deepFile(f metrics.File) (facts map[string]deepFacts, fileDegraded bool) {
	if f.Language != lang.MiniC && f.Language != lang.C {
		return nil, false
	}
	defer func() {
		if r := recover(); r != nil {
			facts = nil
			fileDegraded = true
		}
	}()
	prog, err := minic.Parse(f.Content)
	if err != nil {
		return nil, false
	}
	lowered, err := ir.Lower(prog)
	if err != nil {
		return nil, false
	}
	cg := callgraph.Build(lowered)
	sccSize := map[string]int{}
	inCycle := map[string]bool{}
	for _, comp := range cg.SCCs() {
		for _, fn := range comp {
			sccSize[fn] = len(comp)
			if len(comp) > 1 {
				inCycle[fn] = true
			}
		}
	}
	taint := dataflow.AnalyzeProgramTaint(lowered, dataflow.DefaultInterConfig())
	dup := make(map[string]int, len(lowered.Funcs))
	for _, fn := range lowered.Funcs {
		dup[fn.Name]++
	}
	facts = make(map[string]deepFacts, len(lowered.Funcs))
	for _, fn := range lowered.Funcs {
		// A redefined name is ambiguous at join time (the map would keep
		// whichever definition lowered last); leave it out so the caller
		// falls back to base metrics instead of misattributed facts.
		if dup[fn.Name] > 1 {
			continue
		}
		facts[fn.Name] = deepFunc(f.Path, fn, cg, sccSize, inCycle, taint)
	}
	return facts, false
}

// deepFunc assembles one function's deep facts inside the per-function
// containment boundary.
func deepFunc(path string, fn *ir.Func, cg *callgraph.Graph, sccSize map[string]int, inCycle map[string]bool, taint *dataflow.InterResult) (df deepFacts) {
	defer func() {
		if r := recover(); r != nil {
			df = deepFacts{degraded: true}
		}
	}()
	if deepTestHook != nil {
		deepTestHook(path, fn.Name)
	}
	df.flow = cfgana.Analyze(fn)
	df.fanIn = cg.FanIn(fn.Name)
	df.fanOut = cg.FanOut(fn.Name)
	df.callSites = cg.CallSites[fn.Name]
	df.sccSize = sccSize[fn.Name]
	df.recursive = inCycle[fn.Name]
	for _, callee := range cg.Callees[fn.Name] {
		if callee == fn.Name {
			df.recursive = true
		}
	}
	if s, ok := taint.Summaries[fn.Name]; ok {
		df.summary = s
		df.hasSummary = true
	}
	return df
}

// build turns a candidate into its ranked form: features, scores, bin,
// drivers.
func build(c candidate, vcs *vcsgen.Generator) RankedFunction {
	sc := c.scan
	ft := FuncFeatures{
		Cyclomatic:     sc.Cyclomatic,
		MaxNesting:     sc.MaxNesting,
		Params:         sc.Params,
		LengthTokens:   sc.Length,
		Lines:          sc.Lines,
		HalsteadVolume: sc.Halstead.Volume,
		UnsafeCalls:    sc.UnsafeCalls,
		FormatCalls:    sc.FormatCalls,
		ProcessCalls:   sc.ProcessCalls,
		InputCalls:     sc.InputCalls,
		MagicNumbers:   sc.MagicNumbers,
	}
	if c.hasDeep {
		d := c.deep
		ft.FanIn, ft.FanOut, ft.CallSites = d.fanIn, d.fanOut, d.callSites
		ft.SCCSize, ft.Recursive = d.sccSize, d.recursive
		ft.Blocks, ft.Edges = d.flow.Blocks, d.flow.Edges
		ft.Loops, ft.MaxLoopDepth = d.flow.Loops, d.flow.MaxLoopDepth
		ft.CyclomaticCFG = d.flow.CyclomaticCFG
		if d.hasSummary {
			ft.SinkReach, ft.TaintDepthMax, ft.TaintedParams, ft.ReturnTainted = summarize(d.summary)
		}
	}
	qualified := sc.File + ":" + sc.Name
	if vcs != nil {
		h := vcs.ForFunction(qualified, ft.Lines)
		ft.Churn, ft.Authors, ft.Commits = h.Churn, h.Authors, h.Commits
		ft.CommitsPerMonth = h.CommitsPerMonth()
	}
	r := RankedFunction{
		Name:      sc.Name,
		File:      sc.File,
		Line:      sc.Line,
		Qualified: qualified,
		Degraded:  c.degraded,
		Features:  ft,
	}
	r.ComplexityScore = complexityScore(ft)
	r.Bin = bin(r.ComplexityScore)
	r.VulnScore, r.Drivers = vulnScore(ft)
	return r
}

// summarize flattens a taint summary into the four scalar features:
// distinct (sink, line) reaches, the deepest reach, the number of
// parameters whose taint fires a sink, and whether the return value
// carries taint.
func summarize(s dataflow.Summary) (reach, depthMax, taintedParams int, returnTainted bool) {
	type key struct {
		sink string
		line int
	}
	seen := map[key]bool{}
	note := func(srs []dataflow.SinkReach) {
		for _, sr := range srs {
			seen[key{sr.Sink, sr.Line}] = true
			if sr.Depth > depthMax {
				depthMax = sr.Depth
			}
		}
	}
	note(s.LocalSinks)
	for _, srs := range s.ParamSinks {
		note(srs)
	}
	for _, srs := range s.ParamSinks {
		if len(srs) > 0 {
			taintedParams++
		}
	}
	reach = len(seen)
	returnTainted = s.ReturnAlways || len(s.ReturnFromParams) > 0
	return reach, depthMax, taintedParams, returnTainted
}

// complexityScore is the LEOPARD binning key: the C-family complexity
// metrics folded into one number. The CFG cyclomatic number is preferred
// over the token-level one when deep analysis ran (it is exact); nesting,
// loop structure, parameters, and body size enter with small weights so
// two functions of equal branching still separate by shape.
func complexityScore(ft FuncFeatures) float64 {
	cyclo := ft.Cyclomatic
	if ft.CyclomaticCFG > cyclo {
		cyclo = ft.CyclomaticCFG
	}
	return float64(cyclo) +
		float64(ft.MaxNesting) +
		float64(ft.Loops) +
		float64(ft.MaxLoopDepth) +
		0.25*float64(ft.Params) +
		0.02*float64(ft.Lines)
}

// bin maps a complexity score to its LEOPARD bin: log2 buckets, so bin
// boundaries grow geometrically (1-2, 2-4, 4-8, ...) and a handful of bins
// covers any real spread. Higher bin = more complex.
func bin(score float64) int {
	if score < 1 {
		return 0
	}
	return int(math.Log2(score + 1))
}

// Vulnerability-score weights. Direct interprocedural evidence (sink
// reaches, taint) dominates; token-level API counts cover unparsed files;
// call-graph position and process metrics are mild multipliers, per the
// LEOPARD/Viszkok weighting ordering.
const (
	wSinkReach  = 4.0
	wTaintDepth = 2.0
	wTaintedPar = 2.0
	wReturnTnt  = 1.0
	wRiskyCall  = 1.5 // unsafe + format + process call sites
	wInputCall  = 1.0
	wFanIn      = 0.5
	wFanOut     = 0.25
	wHalstead   = 0.02 // per sqrt(volume): size-ish, heavily damped
	wChurn      = 0.01
	wAuthors    = 0.3
	wCommitFreq = 0.2
)

// vulnScore folds the vulnerability metrics into the within-bin ranking
// key and returns the driving features: every positive contribution,
// largest first (ties by feature name), formatted "name=value".
func vulnScore(ft FuncFeatures) (float64, []string) {
	type contrib struct {
		name  string
		value string
		score float64
	}
	itoa := func(n int) string { return fmtInt(n) }
	var cs []contrib
	add := func(name, value string, score float64) {
		if score > 0 {
			cs = append(cs, contrib{name, value, score})
		}
	}
	add("sink_reach", itoa(ft.SinkReach), wSinkReach*float64(ft.SinkReach))
	add("taint_depth_max", itoa(ft.TaintDepthMax), wTaintDepth*float64(ft.TaintDepthMax))
	add("tainted_params", itoa(ft.TaintedParams), wTaintedPar*float64(ft.TaintedParams))
	if ft.ReturnTainted {
		add("return_tainted", "true", wReturnTnt)
	}
	risky := ft.UnsafeCalls + ft.FormatCalls + ft.ProcessCalls
	add("risky_calls", itoa(risky), wRiskyCall*float64(risky))
	add("input_calls", itoa(ft.InputCalls), wInputCall*float64(ft.InputCalls))
	add("fan_in", itoa(ft.FanIn), wFanIn*float64(ft.FanIn))
	add("fan_out", itoa(ft.FanOut), wFanOut*float64(ft.FanOut))
	add("halstead_volume", fmtFloat(ft.HalsteadVolume), wHalstead*math.Sqrt(ft.HalsteadVolume))
	add("churn", itoa(ft.Churn), wChurn*float64(ft.Churn))
	add("authors", itoa(ft.Authors), wAuthors*float64(ft.Authors))
	add("commits_per_month", fmtFloat(ft.CommitsPerMonth), wCommitFreq*ft.CommitsPerMonth)
	total := 0.0
	for _, c := range cs {
		total += c.score
	}
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].score != cs[j].score {
			return cs[i].score > cs[j].score
		}
		return cs[i].name < cs[j].name
	})
	const maxDrivers = 4
	var drivers []string
	for i, c := range cs {
		if i == maxDrivers {
			break
		}
		drivers = append(drivers, c.name+"="+c.value)
	}
	return total, drivers
}

// order arranges the functions LEOPARD-style and assigns ranks: bins from
// most to least complex; emission proceeds in rounds, each round taking
// the next-best function (by vulnerability score) from every bin in bin
// order. All ties break on the qualified name, then the line, so the
// ranking is a total deterministic order.
func order(ranked []RankedFunction) {
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.Bin != b.Bin {
			return a.Bin > b.Bin
		}
		if a.VulnScore != b.VulnScore {
			return a.VulnScore > b.VulnScore
		}
		if a.ComplexityScore != b.ComplexityScore {
			return a.ComplexityScore > b.ComplexityScore
		}
		if a.Qualified != b.Qualified {
			return a.Qualified < b.Qualified
		}
		return a.Line < b.Line
	})
	// The slice is now grouped by bin (desc), best-first within each bin.
	// Interleave: round r takes the r-th entry of every bin group.
	starts := []int{0}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Bin != ranked[i-1].Bin {
			starts = append(starts, i)
		}
	}
	starts = append(starts, len(ranked))
	out := make([]RankedFunction, 0, len(ranked))
	for round := 0; len(out) < len(ranked); round++ {
		for g := 0; g+1 < len(starts); g++ {
			idx := starts[g] + round
			if idx < starts[g+1] {
				out = append(out, ranked[idx])
			}
		}
	}
	copy(ranked, out)
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
}
