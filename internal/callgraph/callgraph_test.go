package callgraph

import (
	"testing"

	"repro/internal/ir"
)

const sample = `
int leaf(int x) { return x + 1; }
int middle(int x) { return leaf(x) + leaf(x + 1); }
int top(int x) {
	int a = middle(x);
	int b = leaf(a);
	log_event(b);
	return b;
}
int orphan(int x) { return external_thing(x); }
`

func build(t *testing.T, src string) *Graph {
	t.Helper()
	return Build(ir.MustLowerSource(src))
}

func TestBuildEdges(t *testing.T) {
	g := build(t, sample)
	if got := g.Callees["top"]; len(got) != 2 || got[0] != "leaf" || got[1] != "middle" {
		t.Fatalf("top callees = %v", got)
	}
	if got := g.Callees["middle"]; len(got) != 1 || got[0] != "leaf" {
		t.Fatalf("middle callees = %v", got)
	}
	if got := g.Callers["leaf"]; len(got) != 2 {
		t.Fatalf("leaf callers = %v", got)
	}
	if got := g.External["top"]; len(got) != 1 || got[0] != "log_event" {
		t.Fatalf("top externals = %v", got)
	}
	if got := g.External["orphan"]; len(got) != 1 || got[0] != "external_thing" {
		t.Fatalf("orphan externals = %v", got)
	}
}

func TestCallSitesCounted(t *testing.T) {
	g := build(t, sample)
	// middle calls leaf twice: 2 call sites.
	if g.CallSites["middle"] != 2 {
		t.Fatalf("middle call sites = %d", g.CallSites["middle"])
	}
	// top: middle, leaf, log_event = 3.
	if g.CallSites["top"] != 3 {
		t.Fatalf("top call sites = %d", g.CallSites["top"])
	}
}

func TestFanInOut(t *testing.T) {
	g := build(t, sample)
	if g.FanOut("top") != 2 || g.FanIn("leaf") != 2 || g.FanIn("top") != 0 {
		t.Fatalf("fan stats wrong: out(top)=%d in(leaf)=%d in(top)=%d",
			g.FanOut("top"), g.FanIn("leaf"), g.FanIn("top"))
	}
	if g.MaxFanOut() != 2 || g.MaxFanIn() != 2 {
		t.Fatalf("max fans = %d/%d", g.MaxFanOut(), g.MaxFanIn())
	}
}

func TestDepth(t *testing.T) {
	g := build(t, sample)
	// top -> middle -> leaf = 3 nodes.
	if got := g.Depth(); got != 3 {
		t.Fatalf("depth = %d, want 3", got)
	}
	flat := build(t, "int a(void) { return 1; }\nint b(void) { return 2; }")
	if got := flat.Depth(); got != 1 {
		t.Fatalf("flat depth = %d", got)
	}
}

func TestRecursionDetection(t *testing.T) {
	if build(t, sample).HasRecursion() {
		t.Fatal("acyclic graph reported recursive")
	}
	direct := build(t, "int f(int n) { if (n) { return f(n - 1); } return 0; }")
	if !direct.HasRecursion() {
		t.Fatal("direct recursion missed")
	}
	mutual := build(t, `
int even(int n) { if (n) { return odd(n - 1); } return 1; }
int odd(int n) { if (n) { return even(n - 1); } return 0; }
`)
	if !mutual.HasRecursion() {
		t.Fatal("mutual recursion missed")
	}
}

func TestRecursiveDepthTerminates(t *testing.T) {
	g := build(t, "int f(int n) { if (n) { return f(n - 1); } return 0; }")
	if d := g.Depth(); d != 1 {
		t.Fatalf("self-recursive depth = %d, want 1", d)
	}
}

func TestRootsAndDeadFunctions(t *testing.T) {
	g := build(t, sample)
	roots := g.Roots()
	// top and orphan are uncalled.
	if len(roots) != 2 {
		t.Fatalf("roots = %v", roots)
	}
	if dead := g.DeadFunctions(); len(dead) != 0 {
		t.Fatalf("dead = %v", dead)
	}
	// A function only reachable from itself is dead once a root exists.
	g2 := build(t, `
int main(void) { return helper(); }
int helper(void) { return 1; }
int unused(void) { return unused_inner(); }
int unused_inner(void) { return 2; }
`)
	dead := g2.DeadFunctions()
	if len(dead) != 0 {
		// unused is a root itself (nobody calls it), so nothing is dead.
		t.Fatalf("dead = %v", dead)
	}
}

func TestReachable(t *testing.T) {
	g := build(t, sample)
	r := g.Reachable("top")
	for _, want := range []string{"top", "middle", "leaf"} {
		if !r[want] {
			t.Fatalf("%s not reachable from top: %v", want, r)
		}
	}
	if r["orphan"] {
		t.Fatal("orphan should not be reachable from top")
	}
	if len(g.Reachable("nonexistent")) != 0 {
		t.Fatal("unknown function has reachable set")
	}
}

func TestFunctionsOrder(t *testing.T) {
	g := build(t, sample)
	fns := g.Functions()
	want := []string{"leaf", "middle", "top", "orphan"}
	if len(fns) != len(want) {
		t.Fatalf("functions = %v", fns)
	}
	for i := range want {
		if fns[i] != want[i] {
			t.Fatalf("order = %v, want %v", fns, want)
		}
	}
}

func TestSCCsAcyclic(t *testing.T) {
	g := build(t, sample)
	comps := g.SCCs()
	// Every component is a singleton, and the concatenation is a
	// permutation of Functions() in bottom-up order.
	seen := map[string]int{}
	for i, c := range comps {
		if len(c) != 1 {
			t.Fatalf("acyclic graph produced multi-node component %v", c)
		}
		seen[c[0]] = i
	}
	if len(seen) != len(g.Functions()) {
		t.Fatalf("SCCs cover %d functions, want %d", len(seen), len(g.Functions()))
	}
	// Callee-before-caller: leaf < middle < top.
	if !(seen["leaf"] < seen["middle"] && seen["middle"] < seen["top"]) {
		t.Fatalf("bottom-up order violated: %v", comps)
	}
}

func TestSCCsCycle(t *testing.T) {
	g := build(t, `
int sink_helper(int x) { return x; }
int ping(int n) { return pong(n - 1); }
int pong(int n) { return ping(n) + sink_helper(n); }
int main(void) { return ping(3); }
`)
	comps := g.SCCs()
	var cycle []string
	pos := map[string]int{}
	for i, c := range comps {
		for _, fn := range c {
			pos[fn] = i
		}
		if len(c) > 1 {
			if cycle != nil {
				t.Fatalf("multiple cycles found: %v", comps)
			}
			cycle = c
		}
	}
	if len(cycle) != 2 || cycle[0] != "ping" || cycle[1] != "pong" {
		t.Fatalf("cycle = %v, want [ping pong] in program order", cycle)
	}
	// sink_helper is called from the cycle, so it comes earlier; main calls
	// into the cycle, so it comes later.
	if !(pos["sink_helper"] < pos["ping"] && pos["ping"] < pos["main"]) {
		t.Fatalf("condensation order violated: %v", comps)
	}
}

func TestSCCsDeterministic(t *testing.T) {
	first := build(t, sample).SCCs()
	for i := 0; i < 20; i++ {
		again := build(t, sample).SCCs()
		if len(again) != len(first) {
			t.Fatalf("component count varies")
		}
		for j := range first {
			if len(first[j]) != len(again[j]) || first[j][0] != again[j][0] {
				t.Fatalf("component order varies: %v vs %v", first, again)
			}
		}
	}
}
