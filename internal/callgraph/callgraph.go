// Package callgraph builds the static call graph of a lowered program and
// computes the interprocedural shape features §4.1 sketches: "data flow
// analysis can determine numbers of expressions or functions influencing
// the execution of other parts of the code; control flow analysis can
// determine numbers of calling and returning targets".
package callgraph

import (
	"sort"

	"repro/internal/ir"
)

// Graph is a static call graph. Nodes are function names; external callees
// (no definition in the program) are tracked separately.
type Graph struct {
	// Callees maps a defined function to the defined functions it calls
	// (deduplicated, sorted).
	Callees map[string][]string
	// Callers is the reverse relation.
	Callers map[string][]string
	// External maps a defined function to the undefined (library) functions
	// it calls.
	External map[string][]string
	// CallSites counts total call instructions per function.
	CallSites map[string]int
	order     []string
}

// Build constructs the graph from a lowered program.
func Build(p *ir.Program) *Graph {
	defined := map[string]bool{}
	for _, f := range p.Funcs {
		defined[f.Name] = true
	}
	g := &Graph{
		Callees:   map[string][]string{},
		Callers:   map[string][]string{},
		External:  map[string][]string{},
		CallSites: map[string]int{},
	}
	for _, f := range p.Funcs {
		g.order = append(g.order, f.Name)
		callees := map[string]bool{}
		external := map[string]bool{}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				g.CallSites[f.Name]++
				if defined[call.Name] {
					callees[call.Name] = true
				} else {
					external[call.Name] = true
				}
			}
		}
		g.Callees[f.Name] = sortedKeys(callees)
		g.External[f.Name] = sortedKeys(external)
	}
	for caller, callees := range g.Callees {
		for _, callee := range callees {
			g.Callers[callee] = append(g.Callers[callee], caller)
		}
	}
	for k := range g.Callers {
		sort.Strings(g.Callers[k])
	}
	return g
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Functions returns the defined functions in program order.
func (g *Graph) Functions() []string {
	return append([]string(nil), g.order...)
}

// FanOut returns the number of distinct defined callees of fn.
func (g *Graph) FanOut(fn string) int { return len(g.Callees[fn]) }

// FanIn returns the number of distinct defined callers of fn.
func (g *Graph) FanIn(fn string) int { return len(g.Callers[fn]) }

// MaxFanOut returns the largest fan-out in the graph.
func (g *Graph) MaxFanOut() int {
	max := 0
	for _, fn := range g.order {
		if n := g.FanOut(fn); n > max {
			max = n
		}
	}
	return max
}

// MaxFanIn returns the largest fan-in in the graph.
func (g *Graph) MaxFanIn() int {
	max := 0
	for _, fn := range g.order {
		if n := g.FanIn(fn); n > max {
			max = n
		}
	}
	return max
}

// HasRecursion reports whether the call graph contains a cycle (direct or
// mutual recursion).
func (g *Graph) HasRecursion() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(fn string) bool {
		color[fn] = gray
		for _, c := range g.Callees[fn] {
			switch color[c] {
			case gray:
				return true
			case white:
				if visit(c) {
					return true
				}
			}
		}
		color[fn] = black
		return false
	}
	for _, fn := range g.order {
		if color[fn] == white && visit(fn) {
			return true
		}
	}
	return false
}

// Depth returns the longest acyclic call chain length (number of nodes on
// the longest path). Cycles contribute their nodes once.
func (g *Graph) Depth() int {
	memo := map[string]int{}
	visiting := map[string]bool{}
	var depth func(string) int
	depth = func(fn string) int {
		if d, ok := memo[fn]; ok {
			return d
		}
		if visiting[fn] {
			return 0 // break cycles
		}
		visiting[fn] = true
		best := 0
		for _, c := range g.Callees[fn] {
			if d := depth(c); d > best {
				best = d
			}
		}
		visiting[fn] = false
		memo[fn] = best + 1
		return best + 1
	}
	max := 0
	for _, fn := range g.order {
		if d := depth(fn); d > max {
			max = d
		}
	}
	return max
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up (callee-before-caller) order: every function a component calls
// outside itself belongs to an earlier component. Within a component,
// functions appear in program order. Singleton components are returned for
// non-recursive functions, so the concatenation of all components is a
// permutation of Functions(). This is the processing order for summary-based
// interprocedural analyses: by the time a component is visited, every callee
// summary outside the component is final, and only cycles need a fixpoint.
func (g *Graph) SCCs() [][]string {
	// Iterative Tarjan. The visit order (program order, callees in sorted
	// order) is deterministic, so the component order is too.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	type frame struct {
		fn string
		ci int // next callee index to explore
	}
	for _, root := range g.order {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{fn: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			if fr.ci == 0 {
				index[fr.fn] = next
				low[fr.fn] = next
				next++
				stack = append(stack, fr.fn)
				onStack[fr.fn] = true
			}
			advanced := false
			callees := g.Callees[fr.fn]
			for fr.ci < len(callees) {
				c := callees[fr.ci]
				fr.ci++
				if _, seen := index[c]; !seen {
					work = append(work, frame{fn: c})
					advanced = true
					break
				}
				if onStack[c] && low[c] < low[fr.fn] {
					low[fr.fn] = low[c]
				}
			}
			if advanced {
				continue
			}
			// fr is exhausted: pop it, fold its lowlink into the parent.
			fn := fr.fn
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := &work[len(work)-1]
				if low[fn] < low[parent.fn] {
					low[parent.fn] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == fn {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	// Within a component, restore program order for determinism that does
	// not depend on Tarjan's pop order.
	pos := map[string]int{}
	for i, fn := range g.order {
		pos[fn] = i
	}
	for _, comp := range comps {
		sort.Slice(comp, func(i, j int) bool { return pos[comp[i]] < pos[comp[j]] })
	}
	return comps
}

// Roots returns defined functions nobody defined calls (entry candidates).
func (g *Graph) Roots() []string {
	var out []string
	for _, fn := range g.order {
		if g.FanIn(fn) == 0 {
			out = append(out, fn)
		}
	}
	return out
}

// Reachable returns the set of defined functions reachable from fn
// (including fn itself).
func (g *Graph) Reachable(fn string) map[string]bool {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(f string) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, c := range g.Callees[f] {
			walk(c)
		}
	}
	if _, ok := g.Callees[fn]; ok {
		walk(fn)
	}
	return seen
}

// DeadFunctions returns defined functions unreachable from any root. When
// the graph has no roots (everything is in cycles), nothing is reported.
func (g *Graph) DeadFunctions() []string {
	roots := g.Roots()
	if len(roots) == 0 {
		return nil
	}
	live := map[string]bool{}
	for _, r := range roots {
		for fn := range g.Reachable(r) {
			live[fn] = true
		}
	}
	var out []string
	for _, fn := range g.order {
		if !live[fn] {
			out = append(out, fn)
		}
	}
	return out
}
