package ml

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestAdaBoostSolvesXor(t *testing.T) {
	rng := stats.NewRNG(1)
	train := xorDataset(400, rng)
	test := xorDataset(200, rng)
	ab := &AdaBoost{Rounds: 40, Seed: 2}
	if err := ab.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(ab, test).Accuracy
	if acc < 0.9 {
		t.Fatalf("AdaBoost XOR accuracy = %v", acc)
	}
}

func TestAdaBoostBeatsSingleStump(t *testing.T) {
	rng := stats.NewRNG(3)
	train := xorDataset(400, rng)
	test := xorDataset(200, rng)
	stump := &DecisionTree{MaxDepth: 2, MinLeafSize: 1}
	if err := stump.Fit(train); err != nil {
		t.Fatal(err)
	}
	stumpAcc := Evaluate(stump, test).Accuracy
	ab := &AdaBoost{Rounds: 40, Seed: 4}
	if err := ab.Fit(train); err != nil {
		t.Fatal(err)
	}
	boostAcc := Evaluate(ab, test).Accuracy
	if boostAcc <= stumpAcc {
		t.Fatalf("boosting did not help: stump %v vs boost %v", stumpAcc, boostAcc)
	}
}

func TestAdaBoostProbabilities(t *testing.T) {
	rng := stats.NewRNG(5)
	d := linearDataset(200, rng)
	ab := &AdaBoost{Rounds: 15, Seed: 6}
	if err := ab.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, row := range d.X[:20] {
		p := ab.PredictProba(row)
		if len(p) != 2 || math.Abs(p[0]+p[1]-1) > 1e-9 {
			t.Fatalf("probs = %v", p)
		}
		if (p[1] > 0.5) != (ab.PredictClass(row) == 1) {
			t.Fatal("proba and class disagree")
		}
	}
}

func TestAdaBoostBinaryOnly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	Y := []float64{0, 1, 2}
	d, err := NewDataset([]string{"x"}, []string{"a", "b", "c"}, X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&AdaBoost{}).Fit(d); err == nil {
		t.Fatal("3-class dataset accepted")
	}
}

func TestAdaBoostSeparableStopsEarly(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	Y := []float64{0, 0, 0, 1, 1, 1}
	d, _ := NewDataset([]string{"x"}, []string{"lo", "hi"}, X, Y)
	ab := &AdaBoost{Rounds: 50, Seed: 7}
	if err := ab.Fit(d); err != nil {
		t.Fatal(err)
	}
	if ab.FittedRounds() > 3 {
		t.Fatalf("perfectly separable data used %d rounds", ab.FittedRounds())
	}
	for i, row := range X {
		if ab.PredictClass(row) != int(Y[i]) {
			t.Fatalf("misclassified %v", row)
		}
	}
}

func TestAdaBoostDeterministic(t *testing.T) {
	d := xorDataset(150, stats.NewRNG(8))
	a := &AdaBoost{Rounds: 10, Seed: 9}
	b := &AdaBoost{Rounds: 10, Seed: 9}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, row := range d.X[:30] {
		if a.PredictClass(row) != b.PredictClass(row) {
			t.Fatal("same seed, different predictions")
		}
	}
}
