package ml

import (
	"testing"

	"repro/internal/stats"
)

// roundTrip marshals, unmarshals, and checks prediction agreement on test
// rows.
func roundTrip(t *testing.T, c Classifier, test *Dataset) {
	t.Helper()
	data, err := MarshalClassifier(c)
	if err != nil {
		t.Fatalf("marshal %s: %v", c.Name(), err)
	}
	restored, err := UnmarshalClassifier(data)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", c.Name(), err)
	}
	for i, row := range test.X {
		if got, want := restored.PredictClass(row), c.PredictClass(row); got != want {
			t.Fatalf("%s row %d: restored predicts %d, original %d", c.Name(), i, got, want)
		}
	}
	// Probability agreement where supported.
	if p1, ok := c.(Prober); ok {
		p2 := restored.(Prober)
		for _, row := range test.X[:5] {
			a, b := p1.PredictProba(row), p2.PredictProba(row)
			for k := range a {
				if diff := a[k] - b[k]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s proba mismatch: %v vs %v", c.Name(), a, b)
				}
			}
		}
	}
}

func TestPersistAllKinds(t *testing.T) {
	rng := stats.NewRNG(1)
	train := linearDataset(200, rng)
	test := linearDataset(50, rng)
	classifiers := []Classifier{
		&ZeroR{},
		&GaussianNB{},
		&Logistic{Epochs: 50},
		&DecisionTree{},
		&RandomForest{Trees: 5, Seed: 3},
		&KNN{K: 5},
		&AdaBoost{Rounds: 8, Seed: 6},
	}
	for _, c := range classifiers {
		if err := c.Fit(train); err != nil {
			t.Fatalf("fit %s: %v", c.Name(), err)
		}
		roundTrip(t, c, test)
	}
}

func TestPersistUnfittedErrors(t *testing.T) {
	for _, c := range []Classifier{&Logistic{}, &DecisionTree{}, &KNN{}} {
		if _, err := MarshalClassifier(c); err == nil {
			t.Errorf("unfitted %T marshaled", c)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := UnmarshalClassifier([]byte("{oops")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalClassifier([]byte(`{"kind":"quantum","payload":{}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
