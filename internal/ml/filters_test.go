package ml

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestStandardizer(t *testing.T) {
	d := linearDataset(500, stats.NewRNG(1))
	s := FitStandardizer(d)
	ds := s.Apply(d)
	for j := 0; j < ds.P(); j++ {
		col := ds.Column(j)
		if m := stats.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("col %d mean = %v", j, m)
		}
		if sd := stats.StdDev(col); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("col %d std = %v", j, sd)
		}
	}
	// Constant columns must not divide by zero.
	X := [][]float64{{5}, {5}, {5}}
	cd, _ := NewDataset([]string{"c"}, nil, X, []float64{1, 2, 3})
	cs := FitStandardizer(cd)
	out := cs.Apply(cd)
	if math.IsNaN(out.X[0][0]) || math.IsInf(out.X[0][0], 0) {
		t.Fatal("constant column produced NaN/Inf")
	}
}

func TestLogTransform(t *testing.T) {
	X := [][]float64{{99, 10}, {0, 20}, {-5, 30}}
	d, _ := NewDataset([]string{"a", "b"}, nil, X, []float64{0, 0, 0})
	out := LogTransform(d, []int{0})
	if out.X[0][0] != 2 { // log10(1+99)
		t.Fatalf("log(99) -> %v", out.X[0][0])
	}
	if out.X[1][0] != 0 { // log10(1+0)
		t.Fatalf("log(0) -> %v", out.X[1][0])
	}
	if out.X[2][0] != 0 { // clamped negative
		t.Fatalf("log(-5) -> %v", out.X[2][0])
	}
	if out.X[0][1] != 10 { // untouched column
		t.Fatal("untargeted column modified")
	}
	if d.X[0][0] != 99 {
		t.Fatal("LogTransform mutated input")
	}
}

func TestDiscretizer(t *testing.T) {
	col := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	dz := FitDiscretizer(col, 4)
	if dz.NumBins() != 4 {
		t.Fatalf("bins = %d", dz.NumBins())
	}
	if dz.Bin(0) != 0 {
		t.Fatalf("Bin(0) = %d", dz.Bin(0))
	}
	if dz.Bin(100) != 3 {
		t.Fatalf("Bin(100) = %d", dz.Bin(100))
	}
	// Monotone binning.
	prev := -1
	for v := 0.0; v <= 9; v += 0.5 {
		b := dz.Bin(v)
		if b < prev {
			t.Fatalf("binning not monotone at %v", v)
		}
		prev = b
	}
}

func TestDiscretizerConstantColumn(t *testing.T) {
	dz := FitDiscretizer([]float64{7, 7, 7}, 4)
	if dz.NumBins() < 1 {
		t.Fatal("no bins for constant column")
	}
	if dz.Bin(7) >= dz.NumBins() {
		t.Fatal("bin out of range")
	}
}

func TestInfoGainFindsSignal(t *testing.T) {
	rng := stats.NewRNG(2)
	n := 400
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		signal := rng.Normal(0, 1)
		noise := rng.Normal(0, 1)
		X[i] = []float64{noise, signal}
		if signal > 0 {
			Y[i] = 1
		}
	}
	d, _ := NewDataset([]string{"noise", "signal"}, []string{"a", "b"}, X, Y)
	gains := InfoGain(d, 8)
	if gains[1] <= gains[0] {
		t.Fatalf("info gain failed to rank signal above noise: %v", gains)
	}
	if gains[1] < 0.5 {
		t.Fatalf("signal gain too low: %v", gains[1])
	}
	top := SelectTopK(gains, 1)
	if len(top) != 1 || top[0] != 1 {
		t.Fatalf("SelectTopK = %v", top)
	}
}

func TestInfoGainRegressionDataset(t *testing.T) {
	d, _ := NewDataset([]string{"x"}, nil, [][]float64{{1}}, []float64{2})
	gains := InfoGain(d, 4)
	if len(gains) != 1 || gains[0] != 0 {
		t.Fatalf("regression info gain = %v", gains)
	}
}

func TestProjectColumns(t *testing.T) {
	d := linearDataset(20, stats.NewRNG(3))
	p := ProjectColumns(d, []int{1})
	if p.P() != 1 || p.AttrNames[0] != "x1" {
		t.Fatalf("projected = %v", p.AttrNames)
	}
	if p.X[5][0] != d.X[5][1] {
		t.Fatal("projection values wrong")
	}
	if p.N() != d.N() {
		t.Fatal("projection dropped rows")
	}
}

func TestSelectTopKBounds(t *testing.T) {
	if got := SelectTopK([]float64{1, 2}, 10); len(got) != 2 {
		t.Fatalf("overlong k = %v", got)
	}
	if got := SelectTopK(nil, 3); len(got) != 0 {
		t.Fatalf("empty scores = %v", got)
	}
}
