package ml

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// AdaBoost is a binary SAMME/AdaBoost.M1 ensemble of decision stumps
// (depth-2 CART trees). Boosting complements bagging (RandomForest) in the
// family comparison: it drives training error down by reweighting the
// instances each round.
type AdaBoost struct {
	Rounds   int
	MaxDepth int
	Seed     uint64

	stumps []*DecisionTree
	alphas []float64
	k      int
}

// Name implements Classifier.
func (ab *AdaBoost) Name() string { return "AdaBoost" }

// Fit trains the ensemble on weighted resamples (weights are realized by
// weighted bootstrap sampling, which keeps the weak learner unmodified).
func (ab *AdaBoost) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: AdaBoost needs a non-empty classification dataset")
	}
	if d.NumClasses() != 2 {
		return fmt.Errorf("ml: AdaBoost supports binary classification only, got %d classes", d.NumClasses())
	}
	if ab.Rounds == 0 {
		ab.Rounds = 30
	}
	if ab.MaxDepth == 0 {
		ab.MaxDepth = 2
	}
	ab.k = 2
	ab.stumps = nil
	ab.alphas = nil
	rng := stats.NewRNG(ab.Seed + 0xb005)
	n := d.N()
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	for round := 0; round < ab.Rounds; round++ {
		sample := weightedBootstrap(d, w, rng)
		stump := &DecisionTree{MaxDepth: ab.MaxDepth, MinLeafSize: 1}
		if err := stump.Fit(sample); err != nil {
			return err
		}
		// Weighted error on the original data.
		errW := 0.0
		miss := make([]bool, n)
		for i, row := range d.X {
			if stump.PredictClass(row) != int(d.Y[i]) {
				errW += w[i]
				miss[i] = true
			}
		}
		if errW <= 1e-12 {
			// Perfect stump: give it a large, finite say and stop.
			ab.stumps = append(ab.stumps, stump)
			ab.alphas = append(ab.alphas, 10)
			break
		}
		if errW >= 0.5 {
			// No better than chance: resample and try again (bounded by
			// the round budget).
			continue
		}
		alpha := 0.5 * math.Log((1-errW)/errW)
		ab.stumps = append(ab.stumps, stump)
		ab.alphas = append(ab.alphas, alpha)
		// Reweight and normalize.
		total := 0.0
		for i := range w {
			if miss[i] {
				w[i] *= math.Exp(alpha)
			} else {
				w[i] *= math.Exp(-alpha)
			}
			total += w[i]
		}
		for i := range w {
			w[i] /= total
		}
	}
	if len(ab.stumps) == 0 {
		// Degenerate data: fall back to a single stump.
		stump := &DecisionTree{MaxDepth: ab.MaxDepth, MinLeafSize: 1}
		if err := stump.Fit(d); err != nil {
			return err
		}
		ab.stumps = append(ab.stumps, stump)
		ab.alphas = append(ab.alphas, 1)
	}
	return nil
}

func weightedBootstrap(d *Dataset, w []float64, rng *stats.RNG) *Dataset {
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = rng.Choice(w)
	}
	return d.Subset(idx)
}

// score returns the weighted margin for class 1.
func (ab *AdaBoost) score(x []float64) float64 {
	s := 0.0
	for i, stump := range ab.stumps {
		if stump.PredictClass(x) == 1 {
			s += ab.alphas[i]
		} else {
			s -= ab.alphas[i]
		}
	}
	return s
}

// PredictClass returns the sign of the ensemble margin.
func (ab *AdaBoost) PredictClass(x []float64) int {
	if ab.score(x) > 0 {
		return 1
	}
	return 0
}

// PredictProba squashes the margin through a logistic link.
func (ab *AdaBoost) PredictProba(x []float64) []float64 {
	p1 := sigmoid(2 * ab.score(x))
	return []float64{1 - p1, p1}
}

// Rounds used (may be fewer than configured when a perfect stump appears).
func (ab *AdaBoost) FittedRounds() int { return len(ab.stumps) }
