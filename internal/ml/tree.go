package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// DecisionTree is a CART-style classifier: binary splits on numeric
// attributes chosen by Gini impurity.
type DecisionTree struct {
	MaxDepth    int
	MinLeafSize int
	// FeatureSubset, when > 0, samples that many candidate attributes per
	// split (used by RandomForest); 0 considers every attribute.
	FeatureSubset int
	// Rng drives feature subsampling; required when FeatureSubset > 0.
	Rng *stats.RNG

	root *treeNode
	k    int

	// Per-tree scratch reused across splits while fitting; each tree fits on
	// one goroutine, so the buffers are never shared.
	splitVals []float64
	lCounts   []int
	rCounts   []int
	attrsBuf  []int
}

type treeNode struct {
	// Leaf fields.
	leaf  bool
	probs []float64
	// Split fields.
	attr      int
	threshold float64
	left      *treeNode // x[attr] <= threshold
	right     *treeNode
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DecisionTree" }

func (t *DecisionTree) defaults() {
	if t.MaxDepth == 0 {
		t.MaxDepth = 12
	}
	if t.MinLeafSize == 0 {
		t.MinLeafSize = 2
	}
}

// Fit grows the tree.
func (t *DecisionTree) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: DecisionTree needs a non-empty classification dataset")
	}
	if t.FeatureSubset > 0 && t.Rng == nil {
		return fmt.Errorf("ml: FeatureSubset requires Rng")
	}
	t.defaults()
	t.k = d.NumClasses()
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(d, idx, 0)
	return nil
}

func (t *DecisionTree) leafNode(d *Dataset, idx []int) *treeNode {
	probs := make([]float64, t.k)
	for _, i := range idx {
		probs[int(d.Y[i])]++
	}
	for c := range probs {
		probs[c] /= float64(len(idx))
	}
	return &treeNode{leaf: true, probs: probs}
}

func (t *DecisionTree) grow(d *Dataset, idx []int, depth int) *treeNode {
	if len(idx) <= t.MinLeafSize || depth >= t.MaxDepth || pure(d, idx) {
		return t.leafNode(d, idx)
	}
	attr, thr, gain := t.bestSplit(d, idx)
	if gain <= 1e-12 {
		return t.leafNode(d, idx)
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][attr] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return t.leafNode(d, idx)
	}
	return &treeNode{
		attr:      attr,
		threshold: thr,
		left:      t.grow(d, left, depth+1),
		right:     t.grow(d, right, depth+1),
	}
}

func pure(d *Dataset, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	first := d.Y[idx[0]]
	for _, i := range idx[1:] {
		if d.Y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit scans candidate attributes and thresholds for the largest Gini
// impurity decrease.
func (t *DecisionTree) bestSplit(d *Dataset, idx []int) (attr int, thr float64, gain float64) {
	parentGini := gini(d, idx, t.k)
	attrs := t.candidateAttrs(d.P())
	bestGain := 0.0
	bestAttr, bestThr := -1, 0.0
	if cap(t.splitVals) < len(idx) {
		t.splitVals = make([]float64, len(idx))
	}
	if len(t.lCounts) != t.k {
		t.lCounts = make([]int, t.k)
		t.rCounts = make([]int, t.k)
	}
	lCounts, rCounts := t.lCounts, t.rCounts
	for _, j := range attrs {
		// Candidate thresholds: midpoints between distinct sorted values.
		vals := t.splitVals[:len(idx)]
		for i, r := range idx {
			vals[i] = d.X[r][j]
		}
		sort.Float64s(vals)
		for v := 1; v < len(vals); v++ {
			if vals[v] == vals[v-1] {
				continue
			}
			mid := (vals[v] + vals[v-1]) / 2
			var nl, nr int
			for c := range lCounts {
				lCounts[c] = 0
				rCounts[c] = 0
			}
			for _, r := range idx {
				if d.X[r][j] <= mid {
					nl++
					lCounts[int(d.Y[r])]++
				} else {
					nr++
					rCounts[int(d.Y[r])]++
				}
			}
			if nl == 0 || nr == 0 {
				continue
			}
			g := parentGini -
				(float64(nl)*giniCounts(lCounts, nl)+float64(nr)*giniCounts(rCounts, nr))/float64(len(idx))
			if g > bestGain {
				bestGain, bestAttr, bestThr = g, j, mid
			}
		}
	}
	return bestAttr, bestThr, bestGain
}

func (t *DecisionTree) candidateAttrs(p int) []int {
	if cap(t.attrsBuf) < p {
		t.attrsBuf = make([]int, p)
	}
	all := t.attrsBuf[:p]
	for i := range all {
		all[i] = i
	}
	if t.FeatureSubset <= 0 || t.FeatureSubset >= p {
		return all
	}
	t.Rng.Shuffle(p, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:t.FeatureSubset]
}

func gini(d *Dataset, idx []int, k int) float64 {
	counts := make([]int, k)
	for _, i := range idx {
		counts[int(d.Y[i])]++
	}
	return giniCounts(counts, len(idx))
}

func giniCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// PredictProba walks the tree.
func (t *DecisionTree) PredictProba(x []float64) []float64 {
	n := t.root
	for !n.leaf {
		if x[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.probs
}

// PredictClass returns the leaf majority.
func (t *DecisionTree) PredictClass(x []float64) int {
	return argmax(t.PredictProba(x))
}

// Depth returns the tree height (leaves have depth 1).
func (t *DecisionTree) Depth() int {
	var h func(n *treeNode) int
	h = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 1
		}
		return 1 + int(math.Max(float64(h(n.left)), float64(h(n.right))))
	}
	return h(t.root)
}

// RandomForest bags FeatureSubset-sampled decision trees.
type RandomForest struct {
	Trees       int
	MaxDepth    int
	MinLeafSize int
	Seed        uint64
	// Jobs bounds the tree-fitting worker pool; <= 0 uses every core. The
	// fitted forest is bit-identical for any Jobs value because each
	// tree's RNG and bootstrap sample are drawn sequentially from Seed
	// before the fan-out.
	Jobs int

	forest []*DecisionTree
	k      int
	flat   *flatForest // compiled inference form, derived from forest
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "RandomForest" }

// Fit trains the ensemble on bootstrap resamples. Trees fit concurrently
// on a bounded worker pool; determinism is preserved by consuming all
// seed-derived randomness (per-tree RNG splits and bootstrap indexes) in
// tree order before any tree starts fitting.
func (rf *RandomForest) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: RandomForest needs a non-empty classification dataset")
	}
	if rf.Trees == 0 {
		rf.Trees = 25
	}
	if rf.MaxDepth == 0 {
		rf.MaxDepth = 10
	}
	rf.k = d.NumClasses()
	rng := stats.NewRNG(rf.Seed + 0x5eed)
	subset := int(math.Sqrt(float64(d.P()))) + 1
	trees := make([]*DecisionTree, rf.Trees)
	boots := make([]*Dataset, rf.Trees)
	for i := range trees {
		trees[i] = &DecisionTree{
			MaxDepth:      rf.MaxDepth,
			MinLeafSize:   rf.MinLeafSize,
			FeatureSubset: subset,
			Rng:           rng.Split(),
		}
		boots[i] = d.Bootstrap(d.N(), rng)
	}
	rf.forest, rf.flat = nil, nil
	if err := ParallelFor(rf.Trees, rf.Jobs, func(i int) error {
		return trees[i].Fit(boots[i])
	}); err != nil {
		return err
	}
	rf.forest = trees
	rf.flat = compileForest(trees, rf.k)
	return nil
}

// PredictProba averages tree probabilities over the compiled forest.
func (rf *RandomForest) PredictProba(x []float64) []float64 {
	out := make([]float64, rf.k)
	if len(rf.forest) == 0 {
		return out
	}
	rf.compiled().accumulateInto(x, out)
	return out
}

// PredictClass returns the ensemble vote.
func (rf *RandomForest) PredictClass(x []float64) int {
	return argmax(rf.PredictProba(x))
}
