package ml

// Compiled forest inference. A fitted (or loaded) RandomForest flattens its
// pointer trees into one contiguous node arena so prediction walks
// cache-coherent memory instead of chasing heap pointers. The pointer trees
// stay canonical — serialization and introspection use them — and the flat
// form is derived, rebuilt after every Fit or load.
//
// Prediction order is preserved exactly: trees accumulate into the output in
// tree order and the final division is unchanged, so flat predictions are
// bit-identical to the pointer walk they replace.

// flatNode is one compiled tree node, packed to 16 bytes so two nodes share
// a cache line. Interior nodes carry the split (attr >= 0) and the index of
// the right child; the left child is implicit at i+1 (preorder emission
// places it immediately after its parent). Leaves set attr to flatLeaf and
// reuse right as the offset of their class probabilities in the shared
// arena.
type flatNode struct {
	thr   float64
	attr  int32
	right int32
}

const flatLeaf = int32(-1)

// flatForest is the compiled form of an entire ensemble: every tree's nodes
// live in one arena, with per-tree root offsets, and every leaf's class
// probabilities live in one float64 arena (k values per leaf).
type flatForest struct {
	k     int
	roots []int32
	nodes []flatNode
	probs []float64
}

// compileForest flattens the pointer trees. Nodes are emitted preorder, so
// each tree occupies one contiguous arena segment.
func compileForest(trees []*DecisionTree, k int) *flatForest {
	ff := &flatForest{k: k, roots: make([]int32, 0, len(trees))}
	for _, tr := range trees {
		ff.roots = append(ff.roots, ff.emit(tr.root))
	}
	return ff
}

func (ff *flatForest) emit(n *treeNode) int32 {
	id := int32(len(ff.nodes))
	if n.leaf {
		off := int32(len(ff.probs))
		ff.probs = append(ff.probs, n.probs...)
		ff.nodes = append(ff.nodes, flatNode{attr: flatLeaf, right: off})
		return id
	}
	ff.nodes = append(ff.nodes, flatNode{attr: int32(n.attr), thr: n.threshold})
	ff.emit(n.left) // lands at id+1, the implicit left-child slot
	ff.nodes[id].right = ff.emit(n.right)
	return id
}

// leafProbs returns the probability slice of the leaf reached by x in the
// tree rooted at root. The descent selects the next index with a
// conditional move instead of a branch: split directions are close to
// 50/50, so a branching walk stalls on mispredictions at every level.
func (ff *flatForest) leafProbs(root int32, x []float64) []float64 {
	nodes := ff.nodes
	i := root
	for {
		n := &nodes[i]
		a := n.attr
		if a == flatLeaf {
			off := int(n.right)
			return ff.probs[off : off+ff.k : off+ff.k]
		}
		next := n.right
		if x[a] <= n.thr {
			next = i + 1
		}
		i = next
	}
}

// accumulateInto adds every tree's leaf probabilities for x into out, in
// tree order, then divides by the ensemble size — the exact float operation
// sequence of the original per-tree pointer walk.
func (ff *flatForest) accumulateInto(x []float64, out []float64) {
	for _, root := range ff.roots {
		p := ff.leafProbs(root, x)
		for c := range out {
			out[c] += p[c]
		}
	}
	inv := float64(len(ff.roots))
	for c := range out {
		out[c] /= inv
	}
}

// batchBlock bounds how many rows stream against the node arena before the
// walk moves to the next ensemble pass, keeping the block of feature
// vectors cache-resident while one tree's contiguous segment is hot.
const batchBlock = 512

// batchInto predicts probabilities for every row of X into out (row i into
// out[i], which must be zeroed and k wide). The walk is blocked: for each
// block of rows, every tree streams its contiguous arena segment against
// the block, so neither the row matrix nor a large ensemble forces the
// other out of cache. Within a block, rows advance in pairs — two
// independent load-to-load dependency chains (node -> attr -> feature ->
// compare -> next node) that overlap each other's latencies; more chains
// spill registers and lose the gain. Each step selects the next index with
// a conditional move (both candidates are computed before the test), so
// near-random split directions cost no branch mispredictions. Each
// out[i][c] accumulates trees in tree order with the same final division,
// keeping results bit-identical to row-at-a-time prediction.
func (ff *flatForest) batchInto(X [][]float64, out [][]float64) {
	nodes := ff.nodes
	probs := ff.probs
	k := ff.k
	for b0 := 0; b0 < len(X); b0 += batchBlock {
		b1 := b0 + batchBlock
		if b1 > len(X) {
			b1 = len(X)
		}
		for _, root := range ff.roots {
			r := b0
			for ; r+1 < b1; r += 2 {
				x0, x1 := X[r], X[r+1]
				i0, i1 := root, root
				a0, a1 := nodes[root].attr, nodes[root].attr
				// flatLeaf is all ones, so the AND is flatLeaf exactly when
				// both chains have reached their leaves (interior attrs
				// are >= 0).
				for a0&a1 != flatLeaf {
					if a0 != flatLeaf {
						n := &nodes[i0]
						next := n.right
						if x0[a0] <= n.thr {
							next = i0 + 1
						}
						i0 = next
						a0 = nodes[i0].attr
					}
					if a1 != flatLeaf {
						n := &nodes[i1]
						next := n.right
						if x1[a1] <= n.thr {
							next = i1 + 1
						}
						i1 = next
						a1 = nodes[i1].attr
					}
				}
				off0, off1 := int(nodes[i0].right), int(nodes[i1].right)
				o0, o1 := out[r], out[r+1]
				for c := 0; c < k; c++ {
					o0[c] += probs[off0+c]
					o1[c] += probs[off1+c]
				}
			}
			for ; r < b1; r++ {
				p := ff.leafProbs(root, X[r])
				o := out[r]
				for c := range o {
					o[c] += p[c]
				}
			}
		}
	}
	inv := float64(len(ff.roots))
	for _, o := range out {
		for c := range o {
			o[c] /= inv
		}
	}
}

// BatchProber is implemented by classifiers with a batched probability
// path; Evaluate and the scoring daemon prefer it when present.
// Implementations must guarantee that the argmax of each batched row equals
// PredictClass for that row, so callers can derive both from one pass.
type BatchProber interface {
	PredictProbaBatch(X [][]float64) [][]float64
}

// PredictProbaBatch predicts class probabilities for every row of X with one
// cache-coherent pass per tree over the compiled forest. Results are
// bit-identical to calling PredictProba per row.
func (rf *RandomForest) PredictProbaBatch(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	arena := make([]float64, len(X)*rf.k)
	for i := range out {
		out[i] = arena[i*rf.k : (i+1)*rf.k : (i+1)*rf.k]
	}
	if len(rf.forest) == 0 {
		return out
	}
	rf.compiled().batchInto(X, out)
	return out
}

// compiled returns the flat form, deriving it on first use for forests
// constructed without passing through Fit or the load paths.
func (rf *RandomForest) compiled() *flatForest {
	if rf.flat == nil {
		rf.flat = compileForest(rf.forest, rf.k)
	}
	return rf.flat
}
