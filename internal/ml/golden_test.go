package ml

// Forest golden tests: a forest fitted on a fixed synthetic dataset is
// pinned in testdata — both its serialized form (locks bestSplit and Fit
// determinism across refactors, including the sortFloats -> sort.Float64s
// swap) and its predicted probabilities on fixed probe rows (locks the
// inference path, including the pointer-tree -> flat-array rewrite, to
// bit-identical outputs). Regenerate deliberately with
//
//	go test ./internal/ml -run ForestGolden -update-forest-golden
//
// only when the training algorithm itself is meant to change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stats"
)

var updateForestGolden = flag.Bool("update-forest-golden", false, "rewrite the forest golden files from current output")

func goldenForestData() *Dataset {
	rng := stats.NewRNG(0x9014d)
	const n, p = 240, 12
	attrs := make([]string, p)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%02d", j)
	}
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		class := i % 2
		row := make([]float64, p)
		for j := range row {
			shift := 0.0
			if class == 1 && j%2 == 0 {
				shift = 1.2
			}
			row[j] = rng.Normal(shift, 1)
		}
		X[i] = row
		Y[i] = float64(class)
	}
	d, err := NewDataset(attrs, []string{"no", "yes"}, X, Y)
	if err != nil {
		panic(err)
	}
	return d
}

func goldenProbeRows() [][]float64 {
	rng := stats.NewRNG(0x9906e5)
	rows := make([][]float64, 8)
	for i := range rows {
		row := make([]float64, 12)
		for j := range row {
			row[j] = rng.Normal(0, 1.5)
		}
		rows[i] = row
	}
	return rows
}

func TestForestGolden(t *testing.T) {
	rf := &RandomForest{Trees: 15, MaxDepth: 8, Seed: 0x5afe, Jobs: 1}
	if err := rf.Fit(goldenForestData()); err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join("testdata", "forest.golden.json")
	probsPath := filepath.Join("testdata", "forest_probs.golden.json")

	blob, err := MarshalClassifier(rf)
	if err != nil {
		t.Fatal(err)
	}
	probes := goldenProbeRows()
	probs := make([][]float64, len(probes))
	for i, row := range probes {
		probs[i] = rf.PredictProba(row)
	}
	probsBlob, err := json.MarshalIndent(probs, "", " ")
	if err != nil {
		t.Fatal(err)
	}

	if *updateForestGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(modelPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(probsPath, probsBlob, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	wantModel, err := os.ReadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantModel) {
		t.Errorf("fitted forest serialization drifted from golden (%d vs %d bytes): training is no longer bit-identical",
			len(blob), len(wantModel))
	}
	wantProbs, err := os.ReadFile(probsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(probsBlob, wantProbs) {
		t.Errorf("forest probe predictions drifted from golden: inference is no longer bit-identical")
	}

	// A forest restored from its serialized form must predict identically
	// to the fitted original — the load path (however it represents trees
	// internally) is an exact stand-in for the trained one.
	loaded, err := UnmarshalClassifier(blob)
	if err != nil {
		t.Fatal(err)
	}
	lp := loaded.(Prober)
	for i, row := range probes {
		got := lp.PredictProba(row)
		for c := range got {
			if got[c] != probs[i][c] {
				t.Fatalf("probe %d class %d: loaded forest predicts %v, fitted predicts %v", i, c, got[c], probs[i][c])
			}
		}
	}
}
