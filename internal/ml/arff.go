package ml

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteARFF exports a dataset in Weka's ARFF format — the paper names Weka
// as the intended data-mining tool ("A data mining tool, such as Weka, can
// then train the weights"), so the testbed's output is loadable there
// directly.
func WriteARFF(w io.Writer, relation string, d *Dataset) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "@RELATION %s\n\n", sanitizeARFF(relation))
	for _, name := range d.AttrNames {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", sanitizeARFF(name))
	}
	if d.IsClassification() {
		names := make([]string, len(d.ClassNames))
		for i, c := range d.ClassNames {
			names[i] = sanitizeARFF(c)
		}
		fmt.Fprintf(bw, "@ATTRIBUTE class {%s}\n", strings.Join(names, ","))
	} else {
		fmt.Fprintf(bw, "@ATTRIBUTE target NUMERIC\n")
	}
	fmt.Fprintf(bw, "\n@DATA\n")
	for i, row := range d.X {
		for _, v := range row {
			fmt.Fprintf(bw, "%g,", v)
		}
		if d.IsClassification() {
			fmt.Fprintf(bw, "%s\n", sanitizeARFF(d.ClassNames[int(d.Y[i])]))
		} else {
			fmt.Fprintf(bw, "%g\n", d.Y[i])
		}
	}
	return bw.Flush()
}

// sanitizeARFF makes a token safe for unquoted ARFF positions.
func sanitizeARFF(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// ReadARFF parses the subset of ARFF that WriteARFF emits: numeric
// attributes with the final attribute as the label — nominal for
// classification, numeric for regression. It closes the loop for
// round-trip tests and for re-importing Weka-edited datasets.
func ReadARFF(r io.Reader) (*Dataset, error) {
	type attr struct {
		name    string
		nominal []string // nil for numeric
	}
	var attrs []attr
	var rows [][]string
	inData := false

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "@RELATION"):
			// name ignored
		case strings.HasPrefix(upper, "@ATTRIBUTE"):
			if inData {
				return nil, fmt.Errorf("ml: arff line %d: attribute after @DATA", lineNo)
			}
			rest := strings.TrimSpace(line[len("@ATTRIBUTE"):])
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				return nil, fmt.Errorf("ml: arff line %d: malformed attribute", lineNo)
			}
			name := fields[0]
			typ := strings.Join(fields[1:], " ")
			switch {
			case strings.HasPrefix(typ, "{"):
				inner := strings.Trim(typ, "{}")
				var vals []string
				for _, c := range strings.Split(inner, ",") {
					vals = append(vals, strings.TrimSpace(c))
				}
				if len(vals) == 0 {
					return nil, fmt.Errorf("ml: arff line %d: empty nominal set", lineNo)
				}
				attrs = append(attrs, attr{name: name, nominal: vals})
			case strings.EqualFold(typ, "NUMERIC"):
				attrs = append(attrs, attr{name: name})
			default:
				return nil, fmt.Errorf("ml: arff line %d: unsupported type %q", lineNo, typ)
			}
		case strings.HasPrefix(upper, "@DATA"):
			inData = true
		default:
			if !inData {
				return nil, fmt.Errorf("ml: arff line %d: unexpected %q", lineNo, line)
			}
			parts := strings.Split(line, ",")
			if len(parts) != len(attrs) {
				return nil, fmt.Errorf("ml: arff line %d: %d fields, want %d", lineNo, len(parts), len(attrs))
			}
			for i := range parts {
				parts[i] = strings.TrimSpace(parts[i])
			}
			rows = append(rows, parts)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(attrs) < 2 {
		return nil, fmt.Errorf("ml: arff needs at least one feature and a label")
	}
	for _, a := range attrs[:len(attrs)-1] {
		if a.nominal != nil {
			return nil, fmt.Errorf("ml: arff feature %q is nominal; only the label may be", a.name)
		}
	}
	label := attrs[len(attrs)-1]
	attrNames := make([]string, len(attrs)-1)
	for i, a := range attrs[:len(attrs)-1] {
		attrNames[i] = a.name
	}
	X := make([][]float64, 0, len(rows))
	Y := make([]float64, 0, len(rows))
	for rIdx, parts := range rows {
		row := make([]float64, len(attrNames))
		for i := range attrNames {
			if _, err := fmt.Sscanf(parts[i], "%g", &row[i]); err != nil {
				return nil, fmt.Errorf("ml: arff row %d col %d: %w", rIdx+1, i, err)
			}
		}
		last := parts[len(parts)-1]
		if label.nominal != nil {
			idx := -1
			for c, name := range label.nominal {
				if name == last {
					idx = c
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("ml: arff row %d: unknown class %q", rIdx+1, last)
			}
			Y = append(Y, float64(idx))
		} else {
			var v float64
			if _, err := fmt.Sscanf(last, "%g", &v); err != nil {
				return nil, fmt.Errorf("ml: arff row %d: bad target %q", rIdx+1, last)
			}
			Y = append(Y, v)
		}
		X = append(X, row)
	}
	return NewDataset(attrNames, label.nominal, X, Y)
}
