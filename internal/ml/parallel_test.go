package ml

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/stats"
)

func TestEffectiveJobs(t *testing.T) {
	if got := EffectiveJobs(4, 2); got != 2 {
		t.Fatalf("jobs capped at task count: got %d", got)
	}
	if got := EffectiveJobs(2, 10); got != 2 {
		t.Fatalf("explicit jobs honored: got %d", got)
	}
	if got := EffectiveJobs(0, 10); got < 1 {
		t.Fatalf("default jobs must be >= 1: got %d", got)
	}
	if got := EffectiveJobs(-3, 0); got != 1 {
		t.Fatalf("zero tasks still yields 1: got %d", got)
	}
}

func TestParallelForRunsEveryIndex(t *testing.T) {
	for _, jobs := range []int{1, 3, 16} {
		var ran [50]int32
		if err := ParallelFor(50, jobs, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, n)
			}
		}
	}
}

func TestParallelForFirstErrorWins(t *testing.T) {
	// Multiple failing indexes: the reported error must be the lowest
	// index, exactly as a sequential loop would report it.
	for _, jobs := range []int{1, 4} {
		err := ParallelFor(20, jobs, func(i int) error {
			if i == 7 || i == 3 || i == 15 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("jobs=%d: err = %v, want fail at 3", jobs, err)
		}
	}
}

// TestRandomForestParallelByteIdentical is the tentpole determinism
// contract: fitting with a parallel worker pool must produce a forest
// byte-identical (through persistence) to the sequential Jobs=1 fit.
func TestRandomForestParallelByteIdentical(t *testing.T) {
	d := xorDataset(200, stats.NewRNG(21))
	seq := &RandomForest{Trees: 12, Seed: 42, Jobs: 1}
	par := &RandomForest{Trees: 12, Seed: 42, Jobs: 8}
	if err := seq.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := par.Fit(d); err != nil {
		t.Fatal(err)
	}
	a, err := MarshalClassifier(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalClassifier(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("parallel forest differs from sequential fit with the same seed")
	}
}

func TestCrossValidateJobsMatchesSequential(t *testing.T) {
	d := linearDataset(240, stats.NewRNG(33))
	mk := func() Classifier { return &RandomForest{Trees: 5, Seed: 7} }
	seq, err := CrossValidateJobs(mk, d, 10, stats.NewRNG(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CrossValidateJobs(mk, d, 10, stats.NewRNG(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel CV differs from sequential:\nseq=%+v\npar=%+v", seq, par)
	}
}

func TestCrossValidateJobsPropagatesFoldError(t *testing.T) {
	d := linearDataset(60, stats.NewRNG(3))
	// A classifier that always fails to fit surfaces the first fold's error.
	_, err := CrossValidateJobs(func() Classifier { return &failingClassifier{} },
		d, 5, stats.NewRNG(1), 4)
	if err == nil || err.Error() != "ml: fold 0: boom" {
		t.Fatalf("err = %v, want fold 0 error", err)
	}
}

func TestParallelForCtxPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		var ran int32
		err := ParallelForCtx(ctx, 20, jobs, func(i int) error {
			atomic.AddInt32(&ran, 1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if n := atomic.LoadInt32(&ran); n != 0 {
			t.Fatalf("jobs=%d: %d indexes ran under a pre-canceled context", jobs, n)
		}
	}
}

func TestParallelForCtxCancelMidRunDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int32
	err := ParallelForCtx(ctx, 200, 4, func(i int) error {
		if atomic.AddInt32(&ran, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The pool drains without running the full range: only indexes already
	// in flight when cancel landed may still execute.
	if n := atomic.LoadInt32(&ran); n >= 200 {
		t.Fatalf("cancellation did not stop dispatch: %d of 200 ran", n)
	}
}

func TestParallelForCtxFirstErrorBeatsCancel(t *testing.T) {
	// A real error at the lowest failing index wins over the context error,
	// exactly as a sequential loop would have reported it first.
	for _, jobs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		err := ParallelForCtx(ctx, 20, jobs, func(i int) error {
			if i == 3 {
				cancel()
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		cancel()
		if err == nil || err.Error() != "boom at 3" {
			t.Fatalf("jobs=%d: err = %v, want boom at 3", jobs, err)
		}
	}
}

type failingClassifier struct{}

func (f *failingClassifier) Fit(d *Dataset) error         { return fmt.Errorf("boom") }
func (f *failingClassifier) PredictClass(x []float64) int { return 0 }
func (f *failingClassifier) Name() string                 { return "failing" }
