package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary classifier codec. Tree ensembles dominate model size and load
// time, so they serialize as their compiled flat arrays — four int32s and a
// float64 per node, streamed little-endian — instead of recursive JSON.
// Every other classifier kind falls back to the JSON envelope, wrapped under
// a tag byte so one blob format carries both.

// ErrBinaryCorrupt reports a truncated or internally inconsistent binary
// classifier blob. Loaders check for it with errors.Is.
var ErrBinaryCorrupt = errors.New("ml: corrupt or truncated binary classifier")

const (
	binTagJSON   = 0x00 // payload is a MarshalClassifier JSON envelope
	binTagForest = 0x01 // payload is a flat forest
	binTagTree   = 0x02 // payload is a flat forest holding one tree
)

// MarshalClassifierBinary serializes a trained classifier to the tagged
// binary form.
func MarshalClassifierBinary(c Classifier) ([]byte, error) {
	switch m := c.(type) {
	case *RandomForest:
		if len(m.forest) == 0 {
			return nil, fmt.Errorf("ml: binary marshal of unfitted RandomForest")
		}
		return appendFlatForest([]byte{binTagForest}, m.compiled()), nil
	case *DecisionTree:
		if m.root == nil {
			return nil, fmt.Errorf("ml: binary marshal of unfitted DecisionTree")
		}
		return appendFlatForest([]byte{binTagTree}, compileForest([]*DecisionTree{m}, m.k)), nil
	default:
		blob, err := MarshalClassifier(c)
		if err != nil {
			return nil, err
		}
		return append([]byte{binTagJSON}, blob...), nil
	}
}

// UnmarshalClassifierBinary restores a classifier serialized by
// MarshalClassifierBinary.
func UnmarshalClassifierBinary(data []byte) (Classifier, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty blob", ErrBinaryCorrupt)
	}
	tag, payload := data[0], data[1:]
	switch tag {
	case binTagJSON:
		return UnmarshalClassifier(payload)
	case binTagForest:
		ff, err := parseFlatForest(payload)
		if err != nil {
			return nil, err
		}
		rf := &RandomForest{k: ff.k, Trees: len(ff.roots), forest: ff.toTrees(), flat: ff}
		return rf, nil
	case binTagTree:
		ff, err := parseFlatForest(payload)
		if err != nil {
			return nil, err
		}
		if len(ff.roots) != 1 {
			return nil, fmt.Errorf("%w: tree blob holds %d trees", ErrBinaryCorrupt, len(ff.roots))
		}
		return &DecisionTree{k: ff.k, root: ff.toNode(ff.roots[0])}, nil
	default:
		return nil, fmt.Errorf("%w: unknown tag 0x%02x", ErrBinaryCorrupt, tag)
	}
}

// appendFlatForest encodes: u32 k, u32 len(roots) + roots, u32 len(nodes) +
// nodes (attr, right as i32; thr as f64 bits — the left child is implicit
// at index+1), u32 len(probs) + probs. All little-endian.
func appendFlatForest(dst []byte, ff *flatForest) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(ff.k))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ff.roots)))
	for _, r := range ff.roots {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ff.nodes)))
	for _, n := range ff.nodes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n.attr))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(n.right))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(n.thr))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ff.probs)))
	for _, p := range ff.probs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
	}
	return dst
}

// binReader is a bounds-checked little-endian cursor.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrBinaryCorrupt, r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.err = fmt.Errorf("%w: truncated at byte %d", ErrBinaryCorrupt, r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// maxBinCount bounds every length prefix read from a blob, so a corrupt
// count cannot drive a multi-gigabyte allocation before validation fails.
const maxBinCount = 1 << 26

func (r *binReader) count(what string) int {
	n := r.u32()
	if r.err == nil && n > maxBinCount {
		r.err = fmt.Errorf("%w: implausible %s count %d", ErrBinaryCorrupt, what, n)
	}
	return int(n)
}

func parseFlatForest(data []byte) (*flatForest, error) {
	r := &binReader{data: data}
	ff := &flatForest{k: int(r.u32())}
	nRoots := r.count("root")
	if r.err != nil {
		return nil, r.err
	}
	ff.roots = make([]int32, nRoots)
	for i := range ff.roots {
		ff.roots[i] = int32(r.u32())
	}
	nNodes := r.count("node")
	if r.err != nil {
		return nil, r.err
	}
	ff.nodes = make([]flatNode, nNodes)
	for i := range ff.nodes {
		ff.nodes[i] = flatNode{
			attr:  int32(r.u32()),
			right: int32(r.u32()),
			thr:   r.f64(),
		}
	}
	nProbs := r.count("prob")
	if r.err != nil {
		return nil, r.err
	}
	ff.probs = make([]float64, nProbs)
	for i := range ff.probs {
		ff.probs[i] = r.f64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBinaryCorrupt, len(data)-r.off)
	}
	if err := ff.validate(); err != nil {
		return nil, err
	}
	return ff, nil
}

// validate checks the structural invariants the preorder emitter guarantees:
// in-range roots, children strictly after their parent (which also rules out
// cycles, since the implicit left child i+1 and the stored right child must
// both land past i), and leaf probability runs inside the arena.
func (ff *flatForest) validate() error {
	if ff.k <= 0 || ff.k > maxBinCount {
		return fmt.Errorf("%w: bad class count %d", ErrBinaryCorrupt, ff.k)
	}
	if len(ff.roots) == 0 {
		return fmt.Errorf("%w: no trees", ErrBinaryCorrupt)
	}
	n := int32(len(ff.nodes))
	for _, root := range ff.roots {
		if root < 0 || root >= n {
			return fmt.Errorf("%w: root %d out of range", ErrBinaryCorrupt, root)
		}
	}
	for i, nd := range ff.nodes {
		if nd.attr == flatLeaf {
			if nd.right < 0 || int(nd.right)+ff.k > len(ff.probs) {
				return fmt.Errorf("%w: leaf %d probs out of range", ErrBinaryCorrupt, i)
			}
			continue
		}
		if nd.attr < 0 {
			return fmt.Errorf("%w: node %d bad attr %d", ErrBinaryCorrupt, i, nd.attr)
		}
		if int32(i)+1 >= n || nd.right <= int32(i)+1 || nd.right >= n {
			return fmt.Errorf("%w: node %d children out of preorder range", ErrBinaryCorrupt, i)
		}
	}
	return nil
}

// toTrees reconstructs canonical pointer trees from the flat form, so a
// binary-loaded forest can serialize back to JSON and be introspected like
// a fitted one.
func (ff *flatForest) toTrees() []*DecisionTree {
	trees := make([]*DecisionTree, len(ff.roots))
	for i, root := range ff.roots {
		trees[i] = &DecisionTree{k: ff.k, root: ff.toNode(root)}
	}
	return trees
}

func (ff *flatForest) toNode(i int32) *treeNode {
	nd := ff.nodes[i]
	if nd.attr == flatLeaf {
		probs := make([]float64, ff.k)
		copy(probs, ff.probs[nd.right:int(nd.right)+ff.k])
		return &treeNode{leaf: true, probs: probs}
	}
	return &treeNode{
		attr:      int(nd.attr),
		threshold: nd.thr,
		left:      ff.toNode(i + 1),
		right:     ff.toNode(nd.right),
	}
}
