package ml

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestZeroRBaseline(t *testing.T) {
	d := linearDataset(200, stats.NewRNG(1))
	z := &ZeroR{}
	if err := z.Fit(d); err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(z, d)
	counts := d.ClassCounts()
	wantAcc := float64(counts[d.MajorityClass()]) / float64(d.N())
	if math.Abs(ev.Accuracy-wantAcc) > 1e-12 {
		t.Fatalf("ZeroR accuracy = %v, want majority frequency %v", ev.Accuracy, wantAcc)
	}
	probs := z.PredictProba(nil)
	if math.Abs(probs[0]+probs[1]-1) > 1e-12 {
		t.Fatalf("ZeroR probs = %v", probs)
	}
}

func TestZeroRRejectsRegression(t *testing.T) {
	d, _ := NewDataset([]string{"x"}, nil, [][]float64{{1}}, []float64{3.5})
	if err := (&ZeroR{}).Fit(d); err == nil {
		t.Fatal("ZeroR accepted regression dataset")
	}
}

func TestNaiveBayesSeparable(t *testing.T) {
	rng := stats.NewRNG(2)
	train := linearDataset(400, rng)
	test := linearDataset(200, rng)
	nb := &GaussianNB{}
	if err := nb.Fit(train); err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(nb, test)
	if ev.Accuracy < 0.85 {
		t.Fatalf("NB accuracy = %v", ev.Accuracy)
	}
	if ev.AUC < 0.9 {
		t.Fatalf("NB AUC = %v", ev.AUC)
	}
}

func TestNaiveBayesProbsNormalized(t *testing.T) {
	d := linearDataset(100, stats.NewRNG(3))
	nb := &GaussianNB{}
	if err := nb.Fit(d); err != nil {
		t.Fatal(err)
	}
	for _, row := range d.X[:10] {
		p := nb.PredictProba(row)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probs sum to %v", sum)
		}
	}
}

func TestLogisticSeparable(t *testing.T) {
	rng := stats.NewRNG(4)
	train := linearDataset(400, rng)
	test := linearDataset(200, rng)
	lg := &Logistic{}
	if err := lg.Fit(train); err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(lg, test)
	if ev.Accuracy < 0.9 {
		t.Fatalf("logistic accuracy = %v", ev.Accuracy)
	}
	w := lg.Weights(1)
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
	// The true boundary is 2*x0 - x1 > 0: signs must match after
	// standardization (both features ~N(0,1) so scale is preserved).
	if !(w[1] > 0 && w[2] < 0) {
		t.Fatalf("weight signs wrong: %v", w)
	}
}

func TestLogisticFailsXorButTreeSolvesIt(t *testing.T) {
	rng := stats.NewRNG(5)
	train := xorDataset(400, rng)
	test := xorDataset(200, rng)
	lg := &Logistic{}
	if err := lg.Fit(train); err != nil {
		t.Fatal(err)
	}
	linAcc := Evaluate(lg, test).Accuracy
	tr := &DecisionTree{}
	if err := tr.Fit(train); err != nil {
		t.Fatal(err)
	}
	treeAcc := Evaluate(tr, test).Accuracy
	if treeAcc < 0.95 {
		t.Fatalf("tree accuracy on XOR = %v", treeAcc)
	}
	if linAcc > 0.7 {
		t.Fatalf("linear model should fail XOR, got %v", linAcc)
	}
}

func TestDecisionTreePure(t *testing.T) {
	// A trivially separable dataset: one split suffices.
	X := [][]float64{{1}, {2}, {3}, {10}, {11}, {12}}
	Y := []float64{0, 0, 0, 1, 1, 1}
	d, _ := NewDataset([]string{"x"}, []string{"lo", "hi"}, X, Y)
	tr := &DecisionTree{MinLeafSize: 1}
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i, row := range X {
		if tr.PredictClass(row) != int(Y[i]) {
			t.Fatalf("misclassified %v", row)
		}
	}
	if tr.Depth() > 2 {
		t.Fatalf("depth = %d, want <= 2", tr.Depth())
	}
}

func TestDecisionTreeMaxDepth(t *testing.T) {
	d := xorDataset(200, stats.NewRNG(6))
	tr := &DecisionTree{MaxDepth: 1, MinLeafSize: 1}
	if err := tr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 2 {
		t.Fatalf("depth = %d exceeds bound", tr.Depth())
	}
}

func TestRandomForestBeatsSingleTreeOnNoise(t *testing.T) {
	rng := stats.NewRNG(7)
	// Noisy linear problem with distractor features.
	mk := func(n int) *Dataset {
		X := make([][]float64, n)
		Y := make([]float64, n)
		for i := range X {
			x0 := rng.Normal(0, 1)
			X[i] = []float64{x0, rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)}
			if x0+rng.Normal(0, 0.3) > 0 {
				Y[i] = 1
			}
		}
		d, _ := NewDataset([]string{"s", "n1", "n2", "n3"}, []string{"a", "b"}, X, Y)
		return d
	}
	train := mk(300)
	test := mk(300)
	rf := &RandomForest{Trees: 15, Seed: 11}
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(rf, test).Accuracy
	if acc < 0.8 {
		t.Fatalf("forest accuracy = %v", acc)
	}
}

func TestRandomForestDeterministicWithSeed(t *testing.T) {
	d := xorDataset(150, stats.NewRNG(8))
	// Same seed at different pool widths — including the sequential
	// Jobs=1 reference — must yield identical predictions.
	a := &RandomForest{Trees: 5, Seed: 42, Jobs: 1}
	b := &RandomForest{Trees: 5, Seed: 42}
	c := &RandomForest{Trees: 5, Seed: 42, Jobs: 4}
	for _, rf := range []*RandomForest{a, b, c} {
		if err := rf.Fit(d); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range d.X[:20] {
		if a.PredictClass(row) != b.PredictClass(row) || a.PredictClass(row) != c.PredictClass(row) {
			t.Fatal("same seed, different predictions across pool widths")
		}
	}
}

func TestKNNClassifier(t *testing.T) {
	rng := stats.NewRNG(9)
	train := linearDataset(300, rng)
	test := linearDataset(150, rng)
	kn := &KNN{K: 7}
	if err := kn.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Evaluate(kn, test).Accuracy; acc < 0.85 {
		t.Fatalf("KNN accuracy = %v", acc)
	}
}

func TestKNNHandlesSmallData(t *testing.T) {
	X := [][]float64{{0}, {1}}
	Y := []float64{0, 1}
	d, _ := NewDataset([]string{"x"}, []string{"a", "b"}, X, Y)
	kn := &KNN{K: 10} // larger than the dataset
	if err := kn.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := kn.PredictClass([]float64{0.1}); got != 0 {
		t.Fatalf("prediction = %d", got)
	}
}

func TestTreeRequiresRngForSubset(t *testing.T) {
	d := xorDataset(50, stats.NewRNG(10))
	tr := &DecisionTree{FeatureSubset: 1}
	if err := tr.Fit(d); err == nil {
		t.Fatal("FeatureSubset without Rng accepted")
	}
}
