package ml

import (
	"errors"
	"testing"
)

func fittedGoldenForest(t testing.TB) *RandomForest {
	t.Helper()
	rf := &RandomForest{Trees: 9, MaxDepth: 6, Seed: 7, Jobs: 1}
	if err := rf.Fit(goldenForestData()); err != nil {
		t.Fatal(err)
	}
	return rf
}

func TestBinaryForestRoundTrip(t *testing.T) {
	rf := fittedGoldenForest(t)
	blob, err := MarshalClassifierBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != binTagForest {
		t.Fatalf("forest blob tag = 0x%02x, want 0x%02x", blob[0], binTagForest)
	}
	loaded, err := UnmarshalClassifierBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	rf2, ok := loaded.(*RandomForest)
	if !ok {
		t.Fatalf("loaded %T, want *RandomForest", loaded)
	}
	for i, row := range goldenProbeRows() {
		want, got := rf.PredictProba(row), rf2.PredictProba(row)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("probe %d class %d: binary-loaded predicts %v, fitted predicts %v", i, c, got[c], want[c])
			}
		}
		if rf.PredictClass(row) != rf2.PredictClass(row) {
			t.Fatalf("probe %d: class decision differs after binary round trip", i)
		}
	}

	// The reconstructed pointer trees must re-serialize to the exact JSON of
	// the fitted forest: the flat form loses nothing.
	wantJSON, err := MarshalClassifier(rf)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := MarshalClassifier(rf2)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Error("binary-loaded forest re-serializes to different JSON than the fitted forest")
	}
	if len(blob) >= len(wantJSON) {
		t.Errorf("binary forest blob (%d bytes) is not smaller than its JSON form (%d bytes)", len(blob), len(wantJSON))
	}
}

func TestBinaryTreeRoundTrip(t *testing.T) {
	tr := &DecisionTree{MaxDepth: 6}
	if err := tr.Fit(goldenForestData()); err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifierBinary(tr)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != binTagTree {
		t.Fatalf("tree blob tag = 0x%02x, want 0x%02x", blob[0], binTagTree)
	}
	loaded, err := UnmarshalClassifierBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	tr2, ok := loaded.(*DecisionTree)
	if !ok {
		t.Fatalf("loaded %T, want *DecisionTree", loaded)
	}
	for i, row := range goldenProbeRows() {
		want, got := tr.PredictProba(row), tr2.PredictProba(row)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("probe %d class %d: %v vs %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestBinaryJSONFallback(t *testing.T) {
	lg := &Logistic{Epochs: 40}
	if err := lg.Fit(goldenForestData()); err != nil {
		t.Fatal(err)
	}
	blob, err := MarshalClassifierBinary(lg)
	if err != nil {
		t.Fatal(err)
	}
	if blob[0] != binTagJSON {
		t.Fatalf("logistic blob tag = 0x%02x, want JSON fallback 0x%02x", blob[0], binTagJSON)
	}
	loaded, err := UnmarshalClassifierBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	lg2, ok := loaded.(*Logistic)
	if !ok {
		t.Fatalf("loaded %T, want *Logistic", loaded)
	}
	for i, row := range goldenProbeRows() {
		want, got := lg.PredictProba(row), lg2.PredictProba(row)
		for c := range want {
			if got[c] != want[c] {
				t.Fatalf("probe %d class %d: %v vs %v", i, c, got[c], want[c])
			}
		}
	}
}

func TestBinaryCorruptBlobs(t *testing.T) {
	rf := fittedGoldenForest(t)
	blob, err := MarshalClassifierBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":               {},
		"unknown tag":         {0x7f, 1, 2, 3},
		"tag only":            blob[:1],
		"truncated header":    blob[:5],
		"truncated mid-nodes": blob[:len(blob)/2],
		"truncated tail":      blob[:len(blob)-3],
		"trailing bytes":      append(append([]byte(nil), blob...), 0xee),
	}
	for name, data := range cases {
		if _, err := UnmarshalClassifierBinary(data); !errors.Is(err, ErrBinaryCorrupt) {
			t.Errorf("%s: err = %v, want ErrBinaryCorrupt", name, err)
		}
	}

	// An implausible length prefix must be refused before it drives an
	// allocation. Bytes 5..9 hold the root count.
	huge := append([]byte(nil), blob...)
	huge[5], huge[6], huge[7], huge[8] = 0xff, 0xff, 0xff, 0xff
	if _, err := UnmarshalClassifierBinary(huge); !errors.Is(err, ErrBinaryCorrupt) {
		t.Errorf("huge root count: err = %v, want ErrBinaryCorrupt", err)
	}
}

func TestFlatForestValidate(t *testing.T) {
	leaf := func(off int32) flatNode { return flatNode{attr: flatLeaf, right: off} }
	cases := map[string]*flatForest{
		"bad class count": {k: 0, roots: []int32{0}, nodes: []flatNode{leaf(0)}},
		"no trees":        {k: 2, nodes: []flatNode{leaf(0)}, probs: []float64{1, 0}},
		"root out of range": {k: 2, roots: []int32{5},
			nodes: []flatNode{leaf(0)}, probs: []float64{1, 0}},
		"leaf probs out of range": {k: 2, roots: []int32{0},
			nodes: []flatNode{leaf(1)}, probs: []float64{1, 0}},
		"negative attr": {k: 2, roots: []int32{0},
			nodes: []flatNode{{attr: -7, right: 2}, leaf(0), leaf(0)},
			probs: []float64{1, 0}},
		"interior without left child": {k: 2, roots: []int32{2},
			nodes: []flatNode{leaf(0), leaf(0), {attr: 0, right: 1}},
			probs: []float64{1, 0}},
		"child cycle": {k: 2, roots: []int32{0},
			nodes: []flatNode{{attr: 0, right: 0}, leaf(0)},
			probs: []float64{1, 0}},
	}
	for name, ff := range cases {
		if err := ff.validate(); !errors.Is(err, ErrBinaryCorrupt) {
			t.Errorf("%s: err = %v, want ErrBinaryCorrupt", name, err)
		}
	}
	good := &flatForest{k: 2, roots: []int32{0},
		nodes: []flatNode{{attr: 0, thr: 0.5, right: 2}, leaf(0), leaf(0)},
		probs: []float64{1, 0}}
	if err := good.validate(); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
}

func TestPredictProbaBatchMatchesRowwise(t *testing.T) {
	rf := fittedGoldenForest(t)
	rows := goldenForestData().X
	batch := rf.PredictProbaBatch(rows)
	for i, row := range rows {
		want := rf.PredictProba(row)
		for c := range want {
			if batch[i][c] != want[c] {
				t.Fatalf("row %d class %d: batch %v, rowwise %v", i, c, batch[i][c], want[c])
			}
		}
		if argmax(batch[i]) != rf.PredictClass(row) {
			t.Fatalf("row %d: batch argmax differs from PredictClass", i)
		}
	}
}

func TestPredictProbaBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	rf := fittedGoldenForest(t)
	rows := goldenForestData().X
	ff := rf.compiled()
	out := make([][]float64, len(rows))
	arena := make([]float64, len(rows)*rf.k)
	for i := range out {
		out[i] = arena[i*rf.k : (i+1)*rf.k : (i+1)*rf.k]
	}
	// The compiled walk itself is allocation-free.
	allocs := testing.AllocsPerRun(10, func() {
		for i := range arena {
			arena[i] = 0
		}
		ff.batchInto(rows, out)
	})
	if allocs != 0 {
		t.Errorf("batchInto allocates %v times per run, want 0", allocs)
	}
	// The public batch call allocates only the output arena: O(1) per call,
	// not O(trees) or O(rows x trees).
	allocs = testing.AllocsPerRun(10, func() {
		rf.PredictProbaBatch(rows)
	})
	if allocs > 2 {
		t.Errorf("PredictProbaBatch allocates %v times per call, want <= 2", allocs)
	}
}

// BenchmarkBestSplit pins the cost of one split search over a realistic node
// (240 rows, 12 attributes) — the inner loop of every tree fit. The
// sortFloats -> sort.Float64s swap and the scratch-buffer reuse must not
// regress it.
func BenchmarkBestSplit(b *testing.B) {
	d := goldenForestData()
	tr := &DecisionTree{k: d.NumClasses()}
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attr, _, _ := tr.bestSplit(d, idx)
		if attr < 0 {
			b.Fatal("no split found")
		}
	}
}

func BenchmarkForestPredictBatch(b *testing.B) {
	rf := fittedGoldenForest(b)
	rows := goldenForestData().X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.PredictProbaBatch(rows)
	}
}
