package ml

import (
	"testing"

	"repro/internal/stats"
)

// xorDataset is a classic nonlinear problem: class = x0 XOR x1.
func xorDataset(n int, rng *stats.RNG) *Dataset {
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		a := rng.Intn(2)
		b := rng.Intn(2)
		X[i] = []float64{float64(a) + rng.Normal(0, 0.1), float64(b) + rng.Normal(0, 0.1)}
		if a != b {
			Y[i] = 1
		}
	}
	d, err := NewDataset([]string{"a", "b"}, []string{"no", "yes"}, X, Y)
	if err != nil {
		panic(err)
	}
	return d
}

// linearDataset is linearly separable: class = (2*x0 - x1 > 0).
func linearDataset(n int, rng *stats.RNG) *Dataset {
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x0 := rng.Normal(0, 1)
		x1 := rng.Normal(0, 1)
		X[i] = []float64{x0, x1}
		if 2*x0-x1 > 0 {
			Y[i] = 1
		}
	}
	d, err := NewDataset([]string{"x0", "x1"}, []string{"neg", "pos"}, X, Y)
	if err != nil {
		panic(err)
	}
	return d
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([]string{"a"}, nil, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("row/target mismatch accepted")
	}
	if _, err := NewDataset([]string{"a", "b"}, nil, [][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, err := NewDataset([]string{"a"}, []string{"x", "y"}, [][]float64{{1}}, []float64{2}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if _, err := NewDataset([]string{"a"}, []string{"x", "y"}, [][]float64{{1}}, []float64{0.5}); err == nil {
		t.Fatal("fractional class accepted")
	}
}

func TestDatasetBasics(t *testing.T) {
	d := xorDataset(100, stats.NewRNG(1))
	if d.N() != 100 || d.P() != 2 || d.NumClasses() != 2 {
		t.Fatalf("shape = %d x %d, %d classes", d.N(), d.P(), d.NumClasses())
	}
	if !d.IsClassification() {
		t.Fatal("should be classification")
	}
	counts := d.ClassCounts()
	if counts[0]+counts[1] != 100 {
		t.Fatalf("counts = %v", counts)
	}
	col := d.Column(0)
	if len(col) != 100 {
		t.Fatal("column length")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := xorDataset(10, stats.NewRNG(2))
	c := d.Clone()
	c.X[0][0] = 999
	c.Y[0] = 0
	if d.X[0][0] == 999 {
		t.Fatal("clone aliases X")
	}
}

func TestSubset(t *testing.T) {
	d := xorDataset(10, stats.NewRNG(3))
	s := d.Subset([]int{0, 5, 9})
	if s.N() != 3 {
		t.Fatalf("subset N = %d", s.N())
	}
	if s.Y[1] != d.Y[5] {
		t.Fatal("subset target mismatch")
	}
}

func TestFoldsPartition(t *testing.T) {
	d := xorDataset(103, stats.NewRNG(4))
	folds := d.Folds(10, stats.NewRNG(5))
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			if seen[i] {
				t.Fatalf("row %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if total != d.N() {
		t.Fatalf("folds cover %d/%d rows", total, d.N())
	}
}

func TestFoldsStratified(t *testing.T) {
	// 90/10 imbalance: every fold should contain at least one minority row.
	n := 200
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		X[i] = []float64{float64(i)}
		if i < 20 {
			Y[i] = 1
		}
	}
	d, err := NewDataset([]string{"x"}, []string{"a", "b"}, X, Y)
	if err != nil {
		t.Fatal(err)
	}
	folds := d.Folds(10, stats.NewRNG(6))
	for fi, f := range folds {
		minority := 0
		for _, i := range f {
			if d.Y[i] == 1 {
				minority++
			}
		}
		if minority != 2 {
			t.Fatalf("fold %d has %d minority rows, want 2", fi, minority)
		}
	}
}

func TestSplit(t *testing.T) {
	d := xorDataset(100, stats.NewRNG(7))
	train, test := d.Split(0.25, stats.NewRNG(8))
	if train.N()+test.N() != 100 {
		t.Fatalf("split loses rows: %d + %d", train.N(), test.N())
	}
	if test.N() < 20 || test.N() > 30 {
		t.Fatalf("test size = %d", test.N())
	}
}

func TestBootstrap(t *testing.T) {
	d := xorDataset(50, stats.NewRNG(9))
	b := d.Bootstrap(50, stats.NewRNG(10))
	if b.N() != 50 {
		t.Fatalf("bootstrap N = %d", b.N())
	}
}

func TestMajorityClass(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	Y := []float64{1, 1, 0}
	d, err := NewDataset([]string{"x"}, []string{"a", "b"}, X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if d.MajorityClass() != 1 {
		t.Fatalf("majority = %d", d.MajorityClass())
	}
}
