// Package ml is a self-contained machine-learning library standing in for
// the Weka toolkit in the paper's Figure 4 pipeline: datasets with named
// attributes, preprocessing filters, a family of classifiers and regressors,
// stratified cross validation, and the standard evaluation metrics.
package ml

import (
	"fmt"

	"repro/internal/stats"
)

// Dataset is a feature matrix with a target column. When ClassNames is
// non-empty the target holds class indexes (classification); otherwise it is
// a continuous value (regression).
type Dataset struct {
	AttrNames  []string
	ClassNames []string
	X          [][]float64
	Y          []float64
}

// NewDataset validates and constructs a dataset.
func NewDataset(attrNames []string, classNames []string, X [][]float64, Y []float64) (*Dataset, error) {
	if len(X) != len(Y) {
		return nil, fmt.Errorf("ml: %d rows but %d targets", len(X), len(Y))
	}
	for i, row := range X {
		if len(row) != len(attrNames) {
			return nil, fmt.Errorf("ml: row %d has %d attributes, want %d", i, len(row), len(attrNames))
		}
	}
	if len(classNames) > 0 {
		for i, y := range Y {
			c := int(y)
			if float64(c) != y || c < 0 || c >= len(classNames) {
				return nil, fmt.Errorf("ml: row %d target %v is not a class index", i, y)
			}
		}
	}
	return &Dataset{AttrNames: attrNames, ClassNames: classNames, X: X, Y: Y}, nil
}

// N returns the number of instances.
func (d *Dataset) N() int { return len(d.X) }

// P returns the number of attributes.
func (d *Dataset) P() int { return len(d.AttrNames) }

// NumClasses returns the class count (0 for regression datasets).
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// IsClassification reports whether the target is nominal.
func (d *Dataset) IsClassification() bool { return len(d.ClassNames) > 0 }

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	X := make([][]float64, len(d.X))
	for i, row := range d.X {
		X[i] = append([]float64(nil), row...)
	}
	return &Dataset{
		AttrNames:  append([]string(nil), d.AttrNames...),
		ClassNames: append([]string(nil), d.ClassNames...),
		X:          X,
		Y:          append([]float64(nil), d.Y...),
	}
}

// Subset returns a dataset view over the given row indexes (rows are
// shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	X := make([][]float64, len(idx))
	Y := make([]float64, len(idx))
	for i, j := range idx {
		X[i] = d.X[j]
		Y[i] = d.Y[j]
	}
	return &Dataset{AttrNames: d.AttrNames, ClassNames: d.ClassNames, X: X, Y: Y}
}

// Column returns a copy of one attribute column.
func (d *Dataset) Column(j int) []float64 {
	out := make([]float64, d.N())
	for i, row := range d.X {
		out[i] = row[j]
	}
	return out
}

// ClassCounts returns the per-class instance counts.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses())
	for _, y := range d.Y {
		counts[int(y)]++
	}
	return counts
}

// MajorityClass returns the most frequent class index.
func (d *Dataset) MajorityClass() int {
	counts := d.ClassCounts()
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// Split partitions rows into train and test sets with the given test
// fraction, shuffled by rng. Classification datasets are stratified so both
// partitions preserve class ratios.
func (d *Dataset) Split(testFrac float64, rng *stats.RNG) (train, test *Dataset) {
	folds := int(1 / testFrac)
	if folds < 2 {
		folds = 2
	}
	parts := d.Folds(folds, rng)
	testIdx := parts[0]
	var trainIdx []int
	for _, p := range parts[1:] {
		trainIdx = append(trainIdx, p...)
	}
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// Folds returns k disjoint row-index partitions covering every row. For
// classification data the folds are stratified by class.
func (d *Dataset) Folds(k int, rng *stats.RNG) [][]int {
	if k < 2 {
		k = 2
	}
	folds := make([][]int, k)
	if d.IsClassification() {
		// Group rows by class, shuffle within each class, deal round-robin.
		byClass := map[int][]int{}
		for i, y := range d.Y {
			c := int(y)
			byClass[c] = append(byClass[c], i)
		}
		for c := 0; c < d.NumClasses(); c++ {
			rows := byClass[c]
			rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
			for i, r := range rows {
				folds[i%k] = append(folds[i%k], r)
			}
		}
		return folds
	}
	perm := rng.Perm(d.N())
	for i, r := range perm {
		folds[i%k] = append(folds[i%k], r)
	}
	return folds
}

// Bootstrap returns a dataset of n rows sampled with replacement.
func (d *Dataset) Bootstrap(n int, rng *stats.RNG) *Dataset {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(d.N())
	}
	return d.Subset(idx)
}
