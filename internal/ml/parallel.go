package ml

import (
	"context"
	"runtime"
	"sync"
)

// EffectiveJobs resolves a Jobs setting against a task count: jobs <= 0
// means "use every core" (GOMAXPROCS), and the pool never exceeds the
// number of tasks.
func EffectiveJobs(jobs, n int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// ParallelFor runs fn(0) .. fn(n-1) on a worker pool of at most jobs
// goroutines (jobs <= 0 uses GOMAXPROCS) and returns the error of the
// lowest failing index — the same error a sequential loop would have
// returned first. With jobs == 1 the loop runs inline on the calling
// goroutine.
//
// Determinism contract: fn must derive any randomness from state
// pre-split per index *before* the call, never from a generator shared
// across indexes; then results are independent of scheduling order.
func ParallelFor(n, jobs int, fn func(i int) error) error {
	return ParallelForCtx(context.Background(), n, jobs, fn)
}

// ParallelForCtx is ParallelFor with cancellation. When ctx is canceled the
// dispatcher stops handing out new indexes, already-running calls finish,
// and the pool drains cleanly before the function returns.
//
// Error priority keeps the first-error-wins rule: a real error from the
// lowest failing index beats the context error (exactly what a sequential
// loop that checks ctx between iterations would have returned first);
// a run that was cut short only by cancellation returns ctx.Err().
func ParallelForCtx(ctx context.Context, n, jobs int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	jobs = EffectiveJobs(jobs, n)
	if jobs == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					// Drain without running: the run is already doomed,
					// but the dispatcher may still be blocked on send.
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// First-error-wins: report the lowest failing index, matching the
	// sequential loop.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
