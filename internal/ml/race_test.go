//go:build race

package ml

// raceEnabled gates allocation-count assertions, which the race detector's
// instrumentation would otherwise skew.
const raceEnabled = true
