package ml

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Classifier is the common fit/predict interface.
type Classifier interface {
	Fit(d *Dataset) error
	PredictClass(x []float64) int
	Name() string
}

// Prober is implemented by classifiers that expose class probabilities.
type Prober interface {
	PredictProba(x []float64) []float64
}

// ZeroR always predicts the majority class — the baseline every real model
// must beat (Weka's ZeroR).
type ZeroR struct {
	Majority int
	K        int
	counts   []int
}

// Name implements Classifier.
func (z *ZeroR) Name() string { return "ZeroR" }

// Fit memorizes the majority class.
func (z *ZeroR) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: ZeroR needs a non-empty classification dataset")
	}
	z.Majority = d.MajorityClass()
	z.K = d.NumClasses()
	z.counts = d.ClassCounts()
	return nil
}

// PredictClass returns the majority class.
func (z *ZeroR) PredictClass(x []float64) int { return z.Majority }

// PredictProba returns the training class frequencies.
func (z *ZeroR) PredictProba(x []float64) []float64 {
	out := make([]float64, z.K)
	total := 0
	for _, c := range z.counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range z.counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// GaussianNB is a Gaussian naive Bayes classifier.
type GaussianNB struct {
	K      int
	Priors []float64
	Mean   [][]float64 // [class][attr]
	Var    [][]float64
}

// Name implements Classifier.
func (nb *GaussianNB) Name() string { return "NaiveBayes" }

// Fit estimates per-class Gaussians with variance smoothing.
func (nb *GaussianNB) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: NaiveBayes needs a non-empty classification dataset")
	}
	nb.K = d.NumClasses()
	nb.Priors = make([]float64, nb.K)
	nb.Mean = make([][]float64, nb.K)
	nb.Var = make([][]float64, nb.K)
	// Global variance for smoothing.
	eps := 1e-9
	for j := 0; j < d.P(); j++ {
		v := stats.Variance(d.Column(j))
		if v*1e-9 > eps {
			eps = v * 1e-9
		}
	}
	for c := 0; c < nb.K; c++ {
		var idx []int
		for i, y := range d.Y {
			if int(y) == c {
				idx = append(idx, i)
			}
		}
		nb.Priors[c] = (float64(len(idx)) + 1) / (float64(d.N()) + float64(nb.K))
		nb.Mean[c] = make([]float64, d.P())
		nb.Var[c] = make([]float64, d.P())
		sub := d.Subset(idx)
		for j := 0; j < d.P(); j++ {
			if len(idx) == 0 {
				nb.Mean[c][j] = 0
				nb.Var[c][j] = 1
				continue
			}
			col := sub.Column(j)
			nb.Mean[c][j] = stats.Mean(col)
			nb.Var[c][j] = stats.Variance(col) + eps
		}
	}
	return nil
}

// PredictProba returns normalized class posteriors.
func (nb *GaussianNB) PredictProba(x []float64) []float64 {
	logp := make([]float64, nb.K)
	for c := 0; c < nb.K; c++ {
		lp := math.Log(nb.Priors[c])
		for j := 0; j < len(x) && j < len(nb.Mean[c]); j++ {
			m, v := nb.Mean[c][j], nb.Var[c][j]
			lp += -0.5*math.Log(2*math.Pi*v) - (x[j]-m)*(x[j]-m)/(2*v)
		}
		logp[c] = lp
	}
	// Softmax over log probabilities.
	maxLp := logp[0]
	for _, lp := range logp[1:] {
		if lp > maxLp {
			maxLp = lp
		}
	}
	out := make([]float64, nb.K)
	total := 0.0
	for c, lp := range logp {
		out[c] = math.Exp(lp - maxLp)
		total += out[c]
	}
	for c := range out {
		out[c] /= total
	}
	return out
}

// PredictClass returns the argmax posterior.
func (nb *GaussianNB) PredictClass(x []float64) int {
	return argmax(nb.PredictProba(x))
}

// Logistic is a binary or multinomial (one-vs-rest) logistic regression
// trained by batch gradient descent with L2 regularization. Inputs are
// standardized internally.
type Logistic struct {
	Epochs int
	LR     float64
	L2     float64

	K      int
	W      [][]float64 // [class][attr+1], index 0 is the bias
	scaler *Standardizer
}

// Name implements Classifier.
func (lg *Logistic) Name() string { return "Logistic" }

func (lg *Logistic) defaults() {
	if lg.Epochs == 0 {
		lg.Epochs = 200
	}
	if lg.LR == 0 {
		lg.LR = 0.1
	}
	if lg.L2 == 0 {
		lg.L2 = 1e-3
	}
}

// Fit trains one weight vector per class (one-vs-rest).
func (lg *Logistic) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: Logistic needs a non-empty classification dataset")
	}
	lg.defaults()
	lg.K = d.NumClasses()
	lg.scaler = FitStandardizer(d)
	ds := lg.scaler.Apply(d)
	p := ds.P()
	lg.W = make([][]float64, lg.K)
	for c := 0; c < lg.K; c++ {
		w := make([]float64, p+1)
		for epoch := 0; epoch < lg.Epochs; epoch++ {
			grad := make([]float64, p+1)
			for i, row := range ds.X {
				t := 0.0
				if int(ds.Y[i]) == c {
					t = 1
				}
				pred := sigmoid(dotBias(w, row))
				err := pred - t
				grad[0] += err
				for j, v := range row {
					grad[j+1] += err * v
				}
			}
			n := float64(ds.N())
			for j := range w {
				g := grad[j] / n
				if j > 0 {
					g += lg.L2 * w[j]
				}
				w[j] -= lg.LR * g
			}
		}
		lg.W[c] = w
	}
	return nil
}

// PredictProba returns normalized one-vs-rest scores.
func (lg *Logistic) PredictProba(x []float64) []float64 {
	row := append([]float64(nil), x...)
	lg.scaler.ApplyRow(row)
	out := make([]float64, lg.K)
	total := 0.0
	for c := 0; c < lg.K; c++ {
		out[c] = sigmoid(dotBias(lg.W[c], row))
		total += out[c]
	}
	if total > 0 {
		for c := range out {
			out[c] /= total
		}
	}
	return out
}

// PredictClass returns the highest-scoring class.
func (lg *Logistic) PredictClass(x []float64) int {
	return argmax(lg.PredictProba(x))
}

// Weights returns the trained weight vector of one class (bias first),
// exposed so the report can surface feature importances — the paper's "each
// weight shows the importance of the corresponding code property".
func (lg *Logistic) Weights(class int) []float64 {
	return append([]float64(nil), lg.W[class]...)
}

// KNN is a k-nearest-neighbour classifier over standardized features.
type KNN struct {
	K int

	k      int
	data   *Dataset
	scaler *Standardizer
}

// Name implements Classifier.
func (kn *KNN) Name() string { return fmt.Sprintf("%d-NN", kn.effectiveK()) }

func (kn *KNN) effectiveK() int {
	if kn.K <= 0 {
		return 5
	}
	return kn.K
}

// Fit memorizes the training data.
func (kn *KNN) Fit(d *Dataset) error {
	if !d.IsClassification() || d.N() == 0 {
		return fmt.Errorf("ml: KNN needs a non-empty classification dataset")
	}
	kn.k = kn.effectiveK()
	kn.scaler = FitStandardizer(d)
	kn.data = kn.scaler.Apply(d)
	return nil
}

// PredictProba votes among the k nearest training rows.
func (kn *KNN) PredictProba(x []float64) []float64 {
	row := append([]float64(nil), x...)
	kn.scaler.ApplyRow(row)
	k := kn.k
	if k > kn.data.N() {
		k = kn.data.N()
	}
	type nb struct {
		dist float64
		y    int
	}
	best := make([]nb, 0, k+1)
	for i, tr := range kn.data.X {
		d := sqDist(row, tr)
		if len(best) < k || d < best[len(best)-1].dist {
			best = append(best, nb{dist: d, y: int(kn.data.Y[i])})
			// Insertion sort step (k is small).
			for j := len(best) - 1; j > 0 && best[j].dist < best[j-1].dist; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]float64, kn.data.NumClasses())
	for _, b := range best {
		out[b.y]++
	}
	for c := range out {
		out[c] /= float64(len(best))
	}
	return out
}

// PredictClass returns the majority vote.
func (kn *KNN) PredictClass(x []float64) int {
	return argmax(kn.PredictProba(x))
}

func sigmoid(z float64) float64 {
	if z < -40 {
		return 0
	}
	if z > 40 {
		return 1
	}
	return 1 / (1 + math.Exp(-z))
}

func dotBias(w, x []float64) float64 {
	s := w[0]
	for j := 0; j < len(x) && j+1 < len(w); j++ {
		s += w[j+1] * x[j]
	}
	return s
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := 0; i < len(a) && i < len(b); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func argmax(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
