package ml

import (
	"encoding/json"
	"fmt"
)

// Classifier persistence: models serialize to a tagged JSON envelope so a
// trained model survives across processes (the paper's "the prediction
// model is trained offline").

type envelope struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// nodeDTO is the serializable form of a decision-tree node.
type nodeDTO struct {
	Leaf      bool      `json:"leaf"`
	Probs     []float64 `json:"probs,omitempty"`
	Attr      int       `json:"attr,omitempty"`
	Threshold float64   `json:"threshold,omitempty"`
	Left      *nodeDTO  `json:"left,omitempty"`
	Right     *nodeDTO  `json:"right,omitempty"`
}

func toDTO(n *treeNode) *nodeDTO {
	if n == nil {
		return nil
	}
	return &nodeDTO{
		Leaf: n.leaf, Probs: n.probs,
		Attr: n.attr, Threshold: n.threshold,
		Left: toDTO(n.left), Right: toDTO(n.right),
	}
}

func fromDTO(d *nodeDTO) *treeNode {
	if d == nil {
		return nil
	}
	return &treeNode{
		leaf: d.Leaf, probs: d.Probs,
		attr: d.Attr, threshold: d.Threshold,
		left: fromDTO(d.Left), right: fromDTO(d.Right),
	}
}

type zeroRDTO struct {
	Majority int   `json:"majority"`
	K        int   `json:"k"`
	Counts   []int `json:"counts"`
}

type nbDTO struct {
	K      int         `json:"k"`
	Priors []float64   `json:"priors"`
	Mean   [][]float64 `json:"mean"`
	Var    [][]float64 `json:"var"`
}

type logisticDTO struct {
	K    int         `json:"k"`
	W    [][]float64 `json:"w"`
	Mean []float64   `json:"mean"`
	Std  []float64   `json:"std"`
}

type treeDTO struct {
	K    int      `json:"k"`
	Root *nodeDTO `json:"root"`
}

type forestDTO struct {
	K     int       `json:"k"`
	Trees []treeDTO `json:"trees"`
}

type boostDTO struct {
	K      int       `json:"k"`
	Alphas []float64 `json:"alphas"`
	Stumps []treeDTO `json:"stumps"`
}

type knnDTO struct {
	K       int         `json:"k"`
	Mean    []float64   `json:"mean"`
	Std     []float64   `json:"std"`
	Attrs   []string    `json:"attrs"`
	Classes []string    `json:"classes"`
	X       [][]float64 `json:"x"`
	Y       []float64   `json:"y"`
}

// MarshalClassifier serializes a trained classifier.
func MarshalClassifier(c Classifier) ([]byte, error) {
	var kind string
	var payload any
	switch m := c.(type) {
	case *ZeroR:
		kind = "zeror"
		payload = zeroRDTO{Majority: m.Majority, K: m.K, Counts: m.counts}
	case *GaussianNB:
		kind = "naivebayes"
		payload = nbDTO{K: m.K, Priors: m.Priors, Mean: m.Mean, Var: m.Var}
	case *Logistic:
		kind = "logistic"
		if m.scaler == nil {
			return nil, fmt.Errorf("ml: marshal of unfitted Logistic")
		}
		payload = logisticDTO{K: m.K, W: m.W, Mean: m.scaler.Mean, Std: m.scaler.Std}
	case *DecisionTree:
		kind = "tree"
		if m.root == nil {
			return nil, fmt.Errorf("ml: marshal of unfitted DecisionTree")
		}
		payload = treeDTO{K: m.k, Root: toDTO(m.root)}
	case *RandomForest:
		kind = "forest"
		f := forestDTO{K: m.k}
		for _, tr := range m.forest {
			f.Trees = append(f.Trees, treeDTO{K: tr.k, Root: toDTO(tr.root)})
		}
		payload = f
	case *AdaBoost:
		kind = "boost"
		if len(m.stumps) == 0 {
			return nil, fmt.Errorf("ml: marshal of unfitted AdaBoost")
		}
		b := boostDTO{K: m.k, Alphas: m.alphas}
		for _, s := range m.stumps {
			b.Stumps = append(b.Stumps, treeDTO{K: s.k, Root: toDTO(s.root)})
		}
		payload = b
	case *KNN:
		kind = "knn"
		if m.data == nil {
			return nil, fmt.Errorf("ml: marshal of unfitted KNN")
		}
		payload = knnDTO{
			K: m.k, Mean: m.scaler.Mean, Std: m.scaler.Std,
			Attrs: m.data.AttrNames, Classes: m.data.ClassNames,
			X: m.data.X, Y: m.data.Y,
		}
	default:
		return nil, fmt.Errorf("ml: cannot marshal classifier %T", c)
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Kind: kind, Payload: raw})
}

// UnmarshalClassifier restores a classifier serialized by MarshalClassifier.
func UnmarshalClassifier(data []byte) (Classifier, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: unmarshal envelope: %w", err)
	}
	switch env.Kind {
	case "zeror":
		var d zeroRDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		return &ZeroR{Majority: d.Majority, K: d.K, counts: d.Counts}, nil
	case "naivebayes":
		var d nbDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		return &GaussianNB{K: d.K, Priors: d.Priors, Mean: d.Mean, Var: d.Var}, nil
	case "logistic":
		var d logisticDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		return &Logistic{K: d.K, W: d.W, scaler: &Standardizer{Mean: d.Mean, Std: d.Std}}, nil
	case "tree":
		var d treeDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		return &DecisionTree{k: d.K, root: fromDTO(d.Root)}, nil
	case "forest":
		var d forestDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		rf := &RandomForest{k: d.K, Trees: len(d.Trees)}
		for _, td := range d.Trees {
			rf.forest = append(rf.forest, &DecisionTree{k: td.K, root: fromDTO(td.Root)})
		}
		rf.flat = compileForest(rf.forest, rf.k)
		return rf, nil
	case "boost":
		var d boostDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		ab := &AdaBoost{k: d.K, Rounds: len(d.Stumps), alphas: d.Alphas}
		for _, td := range d.Stumps {
			ab.stumps = append(ab.stumps, &DecisionTree{k: td.K, root: fromDTO(td.Root)})
		}
		return ab, nil
	case "knn":
		var d knnDTO
		if err := json.Unmarshal(env.Payload, &d); err != nil {
			return nil, err
		}
		ds, err := NewDataset(d.Attrs, d.Classes, d.X, d.Y)
		if err != nil {
			return nil, err
		}
		return &KNN{K: d.K, k: d.K, data: ds, scaler: &Standardizer{Mean: d.Mean, Std: d.Std}}, nil
	default:
		return nil, fmt.Errorf("ml: unknown classifier kind %q", env.Kind)
	}
}

// Regressor persistence (linear models only; tree/KNN regressors are
// training-session artifacts in this system).

type linearDTO struct {
	Coeffs []float64 `json:"coeffs"`
	R2     float64   `json:"r2"`
	N      int       `json:"n"`
	Lambda float64   `json:"lambda"`
}

// MarshalRegressor serializes a fitted LinearRegressor.
func MarshalRegressor(r Regressor) ([]byte, error) {
	lr, ok := r.(*LinearRegressor)
	if !ok {
		return nil, fmt.Errorf("ml: cannot marshal regressor %T", r)
	}
	if len(lr.fit.Coeffs) == 0 {
		return nil, fmt.Errorf("ml: marshal of unfitted LinearRegressor")
	}
	raw, err := json.Marshal(linearDTO{Coeffs: lr.fit.Coeffs, R2: lr.fit.R2, N: lr.fit.N, Lambda: lr.Lambda})
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Kind: "linear", Payload: raw})
}

// UnmarshalRegressor restores a regressor serialized by MarshalRegressor.
func UnmarshalRegressor(data []byte) (Regressor, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: unmarshal envelope: %w", err)
	}
	if env.Kind != "linear" {
		return nil, fmt.Errorf("ml: unknown regressor kind %q", env.Kind)
	}
	var d linearDTO
	if err := json.Unmarshal(env.Payload, &d); err != nil {
		return nil, err
	}
	lr := &LinearRegressor{Lambda: d.Lambda}
	lr.fit.Coeffs = d.Coeffs
	lr.fit.R2 = d.R2
	lr.fit.N = d.N
	return lr, nil
}
