package ml

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Standardizer rescales every attribute to zero mean and unit variance,
// remembering the parameters so test data transforms consistently.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer learns per-column parameters.
func FitStandardizer(d *Dataset) *Standardizer {
	s := &Standardizer{Mean: make([]float64, d.P()), Std: make([]float64, d.P())}
	for j := 0; j < d.P(); j++ {
		col := d.Column(j)
		s.Mean[j] = stats.Mean(col)
		s.Std[j] = stats.StdDev(col)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns a standardized copy of the dataset.
func (s *Standardizer) Apply(d *Dataset) *Dataset {
	out := d.Clone()
	for _, row := range out.X {
		s.ApplyRow(row)
	}
	return out
}

// ApplyRow standardizes one feature vector in place.
func (s *Standardizer) ApplyRow(row []float64) {
	for j := range row {
		if j < len(s.Mean) {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
}

// LogTransform applies log10(1+x) to the named columns (x clamped at 0),
// the transformation the paper's Figure 2/3 apply to heavy-tailed counts.
func LogTransform(d *Dataset, cols []int) *Dataset {
	out := d.Clone()
	set := map[int]bool{}
	for _, c := range cols {
		set[c] = true
	}
	for _, row := range out.X {
		for j := range row {
			if set[j] {
				v := row[j]
				if v < 0 {
					v = 0
				}
				row[j] = math.Log10(1 + v)
			}
		}
	}
	return out
}

// Discretizer buckets a numeric column into equal-frequency bins.
type Discretizer struct {
	Cuts []float64 // ascending cut points; value v maps to bin = #cuts <= v
}

// FitDiscretizer learns bin boundaries for one column.
func FitDiscretizer(col []float64, bins int) *Discretizer {
	if bins < 2 {
		bins = 2
	}
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	var cuts []float64
	for b := 1; b < bins; b++ {
		q := stats.Quantile(sorted, float64(b)/float64(bins))
		if len(cuts) == 0 || q > cuts[len(cuts)-1] {
			cuts = append(cuts, q)
		}
	}
	return &Discretizer{Cuts: cuts}
}

// Bin maps a value to its bin index.
func (dz *Discretizer) Bin(v float64) int {
	n := 0
	for _, c := range dz.Cuts {
		if v >= c {
			n++
		}
	}
	return n
}

// NumBins returns the number of bins.
func (dz *Discretizer) NumBins() int { return len(dz.Cuts) + 1 }

// InfoGain scores each attribute of a classification dataset by the mutual
// information between a discretized version of the attribute and the class,
// the filter Weka calls InfoGainAttributeEval.
func InfoGain(d *Dataset, bins int) []float64 {
	if !d.IsClassification() || d.N() == 0 {
		return make([]float64, d.P())
	}
	baseEntropy := classEntropy(d.Y, d.NumClasses())
	out := make([]float64, d.P())
	for j := 0; j < d.P(); j++ {
		col := d.Column(j)
		dz := FitDiscretizer(col, bins)
		// Partition class labels by bin.
		byBin := make([][]float64, dz.NumBins())
		for i, v := range col {
			b := dz.Bin(v)
			byBin[b] = append(byBin[b], d.Y[i])
		}
		cond := 0.0
		for _, labels := range byBin {
			if len(labels) == 0 {
				continue
			}
			w := float64(len(labels)) / float64(d.N())
			cond += w * classEntropy(labels, d.NumClasses())
		}
		out[j] = baseEntropy - cond
		if out[j] < 0 {
			out[j] = 0
		}
	}
	return out
}

func classEntropy(labels []float64, k int) float64 {
	counts := make([]int, k)
	for _, y := range labels {
		counts[int(y)]++
	}
	h := 0.0
	n := float64(len(labels))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// SelectTopK returns the indexes of the k highest-scoring attributes,
// in descending score order (ties broken by attribute index).
func SelectTopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// ProjectColumns returns a dataset containing only the given columns.
func ProjectColumns(d *Dataset, cols []int) *Dataset {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = d.AttrNames[c]
	}
	X := make([][]float64, d.N())
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for k, c := range cols {
			nr[k] = row[c]
		}
		X[i] = nr
	}
	return &Dataset{AttrNames: names, ClassNames: d.ClassNames, X: X, Y: append([]float64(nil), d.Y...)}
}
