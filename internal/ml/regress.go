package ml

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Regressor predicts a continuous target.
type Regressor interface {
	Fit(d *Dataset) error
	Predict(x []float64) float64
	Name() string
}

// LinearRegressor is OLS (optionally ridge) multiple regression.
type LinearRegressor struct {
	Lambda float64 // ridge strength, 0 for plain OLS

	fit stats.MultiFit
}

// Name implements Regressor.
func (lr *LinearRegressor) Name() string { return "LinearRegression" }

// Fit solves the normal equations.
func (lr *LinearRegressor) Fit(d *Dataset) error {
	if d.IsClassification() {
		return fmt.Errorf("ml: LinearRegressor needs a regression dataset")
	}
	f, err := stats.FitMultiple(d.X, d.Y, lr.Lambda)
	if err != nil {
		return err
	}
	lr.fit = f
	return nil
}

// Predict evaluates the hyperplane.
func (lr *LinearRegressor) Predict(x []float64) float64 { return lr.fit.Predict(x) }

// R2 returns the training-set coefficient of determination.
func (lr *LinearRegressor) R2() float64 { return lr.fit.R2 }

// Coeffs returns the fitted coefficients (intercept first).
func (lr *LinearRegressor) Coeffs() []float64 {
	return append([]float64(nil), lr.fit.Coeffs...)
}

// RegressionTree is a CART regression tree splitting on variance reduction.
type RegressionTree struct {
	MaxDepth    int
	MinLeafSize int

	root *regNode
}

type regNode struct {
	leaf      bool
	value     float64
	attr      int
	threshold float64
	left      *regNode
	right     *regNode
}

// Name implements Regressor.
func (t *RegressionTree) Name() string { return "RegressionTree" }

// Fit grows the tree.
func (t *RegressionTree) Fit(d *Dataset) error {
	if d.IsClassification() {
		return fmt.Errorf("ml: RegressionTree needs a regression dataset")
	}
	if d.N() == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if t.MaxDepth == 0 {
		t.MaxDepth = 10
	}
	if t.MinLeafSize == 0 {
		t.MinLeafSize = 3
	}
	idx := make([]int, d.N())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(d, idx, 0)
	return nil
}

func (t *RegressionTree) grow(d *Dataset, idx []int, depth int) *regNode {
	ys := make([]float64, len(idx))
	for i, r := range idx {
		ys[i] = d.Y[r]
	}
	mean := stats.Mean(ys)
	if len(idx) <= t.MinLeafSize || depth >= t.MaxDepth || stats.Variance(ys) < 1e-12 {
		return &regNode{leaf: true, value: mean}
	}
	parentSSE := sse(ys, mean)
	bestGain := 0.0
	bestAttr, bestThr := -1, 0.0
	for j := 0; j < d.P(); j++ {
		vals := make([]float64, len(idx))
		for i, r := range idx {
			vals[i] = d.X[r][j]
		}
		sort.Float64s(vals)
		for v := 1; v < len(vals); v++ {
			if vals[v] == vals[v-1] {
				continue
			}
			mid := (vals[v] + vals[v-1]) / 2
			var lys, rys []float64
			for _, r := range idx {
				if d.X[r][j] <= mid {
					lys = append(lys, d.Y[r])
				} else {
					rys = append(rys, d.Y[r])
				}
			}
			if len(lys) == 0 || len(rys) == 0 {
				continue
			}
			g := parentSSE - sse(lys, stats.Mean(lys)) - sse(rys, stats.Mean(rys))
			if g > bestGain {
				bestGain, bestAttr, bestThr = g, j, mid
			}
		}
	}
	if bestAttr < 0 || bestGain <= 1e-12 {
		return &regNode{leaf: true, value: mean}
	}
	var left, right []int
	for _, r := range idx {
		if d.X[r][bestAttr] <= bestThr {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return &regNode{
		attr:      bestAttr,
		threshold: bestThr,
		left:      t.grow(d, left, depth+1),
		right:     t.grow(d, right, depth+1),
	}
}

func sse(ys []float64, mean float64) float64 {
	s := 0.0
	for _, y := range ys {
		s += (y - mean) * (y - mean)
	}
	return s
}

// Predict walks the tree.
func (t *RegressionTree) Predict(x []float64) float64 {
	n := t.root
	for !n.leaf {
		if x[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// KNNRegressor averages the targets of the k nearest training rows.
type KNNRegressor struct {
	K int

	data   *Dataset
	scaler *Standardizer
}

// Name implements Regressor.
func (kr *KNNRegressor) Name() string { return "KNNRegressor" }

// Fit memorizes the data.
func (kr *KNNRegressor) Fit(d *Dataset) error {
	if d.IsClassification() {
		return fmt.Errorf("ml: KNNRegressor needs a regression dataset")
	}
	if d.N() == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	if kr.K <= 0 {
		kr.K = 5
	}
	kr.scaler = FitStandardizer(d)
	kr.data = kr.scaler.Apply(d)
	return nil
}

// Predict averages neighbour targets.
func (kr *KNNRegressor) Predict(x []float64) float64 {
	row := append([]float64(nil), x...)
	kr.scaler.ApplyRow(row)
	k := kr.K
	if k > kr.data.N() {
		k = kr.data.N()
	}
	type nb struct {
		dist float64
		y    float64
	}
	best := make([]nb, 0, k+1)
	for i, tr := range kr.data.X {
		d := sqDist(row, tr)
		if len(best) < k || d < best[len(best)-1].dist {
			best = append(best, nb{dist: d, y: kr.data.Y[i]})
			for j := len(best) - 1; j > 0 && best[j].dist < best[j-1].dist; j-- {
				best[j], best[j-1] = best[j-1], best[j]
			}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	s := 0.0
	for _, b := range best {
		s += b.y
	}
	return s / float64(len(best))
}
