package ml

import (
	"testing"

	"repro/internal/stats"
)

func BenchmarkForestFit(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 10, Seed: uint64(i)}
		if err := rf.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(2))
	rf := &RandomForest{Trees: 25, Seed: 3}
	if err := rf.Fit(d); err != nil {
		b.Fatal(err)
	}
	row := d.X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.PredictClass(row)
	}
}

func BenchmarkLogisticFit(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg := &Logistic{Epochs: 100}
		if err := lg.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	d := linearDataset(200, stats.NewRNG(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(func() Classifier { return &GaussianNB{} },
			d, 10, stats.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfoGain(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InfoGain(d, 10)
	}
}
