package ml

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func BenchmarkForestFit(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 10, Seed: uint64(i)}
		if err := rf.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitParallel times the all-cores fit and reports the
// speedup over a single sequential (Jobs=1) fit of the same forest.
func BenchmarkForestFitParallel(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(1))
	start := time.Now()
	seq := &RandomForest{Trees: 25, Seed: 9, Jobs: 1}
	if err := seq.Fit(d); err != nil {
		b.Fatal(err)
	}
	seqDur := time.Since(start)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf := &RandomForest{Trees: 25, Seed: 9}
		if err := rf.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(seqDur.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup")
	}
}

func BenchmarkForestPredict(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(2))
	rf := &RandomForest{Trees: 25, Seed: 3}
	if err := rf.Fit(d); err != nil {
		b.Fatal(err)
	}
	row := d.X[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rf.PredictClass(row)
	}
}

func BenchmarkLogisticFit(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lg := &Logistic{Epochs: 100}
		if err := lg.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	d := linearDataset(200, stats.NewRNG(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CrossValidate(func() Classifier { return &GaussianNB{} },
			d, 10, stats.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInfoGain(b *testing.B) {
	d := linearDataset(300, stats.NewRNG(6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		InfoGain(d, 10)
	}
}
