package ml

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestARFFRoundTripClassification(t *testing.T) {
	d := linearDataset(40, stats.NewRNG(1))
	var buf bytes.Buffer
	if err := WriteARFF(&buf, "secmetric corpus", d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@RELATION secmetric_corpus", "@ATTRIBUTE x0 NUMERIC",
		"@ATTRIBUTE class {neg,pos}", "@DATA"} {
		if !strings.Contains(out, want) {
			t.Fatalf("arff missing %q:\n%s", want, out[:200])
		}
	}
	back, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != d.N() || back.P() != d.P() {
		t.Fatalf("shape = %dx%d, want %dx%d", back.N(), back.P(), d.N(), d.P())
	}
	for i := range d.Y {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label %d drifted", i)
		}
		for j := range d.X[i] {
			if diff := back.X[i][j] - d.X[i][j]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("value %d,%d drifted: %v vs %v", i, j, back.X[i][j], d.X[i][j])
			}
		}
	}
	if back.ClassNames[0] != "neg" || back.ClassNames[1] != "pos" {
		t.Fatalf("classes = %v", back.ClassNames)
	}
}

func TestARFFRoundTripRegression(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	Y := []float64{0.5, -1.25, 100}
	d, err := NewDataset([]string{"a", "b"}, nil, X, Y)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteARFF(&buf, "reg", d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.IsClassification() {
		t.Fatal("regression file read as classification")
	}
	for i := range Y {
		if back.Y[i] != Y[i] {
			t.Fatalf("target %d = %v, want %v", i, back.Y[i], Y[i])
		}
	}
}

func TestARFFSanitization(t *testing.T) {
	X := [][]float64{{1}}
	d, err := NewDataset([]string{"weird name!"}, []string{"a b", "c,d"}, X, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteARFF(&buf, "rel with spaces", d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "weird name!") || strings.Contains(out, "c,d") {
		t.Fatalf("unsanitized output:\n%s", out)
	}
	// And it must still be parseable.
	if _, err := ReadARFF(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestReadARFFErrors(t *testing.T) {
	bad := []string{
		"@DATA\n1,2\n",                                           // no attributes
		"@ATTRIBUTE x NUMERIC\n@DATA\n1\n",                       // only one attribute
		"@ATTRIBUTE x STRING\n@DATA\n",                           // unsupported type
		"@ATTRIBUTE x NUMERIC\n@ATTRIBUTE c {a,b}\n@DATA\n1\n",   // wrong arity
		"@ATTRIBUTE x NUMERIC\n@ATTRIBUTE c {a,b}\n@DATA\n1,z\n", // unknown class
		"@ATTRIBUTE c {a,b}\n@ATTRIBUTE x NUMERIC\n@DATA\n",      // nominal feature
		"garbage before data\n",
	}
	for _, s := range bad {
		if _, err := ReadARFF(strings.NewReader(s)); err == nil {
			t.Errorf("ReadARFF(%q) succeeded", s)
		}
	}
}

func TestReadARFFSkipsComments(t *testing.T) {
	src := `% a comment
@RELATION r

@ATTRIBUTE x NUMERIC
@ATTRIBUTE class {no,yes}

@DATA
% another comment
1.5,yes
2.5,no
`
	d, err := ReadARFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.Y[0] != 1 || d.Y[1] != 0 {
		t.Fatalf("parsed = %+v", d)
	}
}
