package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// ConfusionMatrix counts [actual][predicted].
type ConfusionMatrix struct {
	Classes []string
	Counts  [][]int
}

// NewConfusionMatrix allocates a k-class matrix.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	k := len(classes)
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	return &ConfusionMatrix{Classes: classes, Counts: counts}
}

// Add records one prediction.
func (cm *ConfusionMatrix) Add(actual, predicted int) {
	cm.Counts[actual][predicted]++
}

// Total returns the number of recorded predictions.
func (cm *ConfusionMatrix) Total() int {
	n := 0
	for _, row := range cm.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Accuracy returns the fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	n := cm.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := range cm.Counts {
		correct += cm.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// Precision of one class: TP / (TP + FP).
func (cm *ConfusionMatrix) Precision(c int) float64 {
	tp := cm.Counts[c][c]
	fp := 0
	for a := range cm.Counts {
		if a != c {
			fp += cm.Counts[a][c]
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// Recall of one class: TP / (TP + FN).
func (cm *ConfusionMatrix) Recall(c int) float64 {
	tp := cm.Counts[c][c]
	fn := 0
	for p := range cm.Counts[c] {
		if p != c {
			fn += cm.Counts[c][p]
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// F1 of one class.
func (cm *ConfusionMatrix) F1(c int) float64 {
	p, r := cm.Precision(c), cm.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix as an aligned table.
func (cm *ConfusionMatrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", "actual\\pred")
	for _, c := range cm.Classes {
		fmt.Fprintf(&sb, "%10s", c)
	}
	sb.WriteString("\n")
	for i, row := range cm.Counts {
		fmt.Fprintf(&sb, "%-12s", cm.Classes[i])
		for _, n := range row {
			fmt.Fprintf(&sb, "%10d", n)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Evaluation holds the metrics of one classification evaluation.
type Evaluation struct {
	Matrix    *ConfusionMatrix
	Accuracy  float64
	Precision float64 // of class 1 (the "positive" hypothesis class)
	Recall    float64
	F1        float64
	AUC       float64 // binary only; 0.5 when undefined
}

// Evaluate tests a fitted classifier on a dataset. Classifiers with a
// batched probability path (BatchProber) are driven through one batch call
// that supplies both the class decisions and the AUC scores.
func Evaluate(c Classifier, test *Dataset) *Evaluation {
	cm := NewConfusionMatrix(test.ClassNames)
	var scores []float64 // probability of class 1, for AUC
	var labels []int
	if bp, ok := c.(BatchProber); ok {
		probs := bp.PredictProbaBatch(test.X)
		binary := test.NumClasses() == 2
		for i, p := range probs {
			cm.Add(int(test.Y[i]), argmax(p))
			if binary {
				scores = append(scores, p[1])
				labels = append(labels, int(test.Y[i]))
			}
		}
	} else {
		prober, hasProba := c.(Prober)
		for i, row := range test.X {
			pred := c.PredictClass(row)
			cm.Add(int(test.Y[i]), pred)
			if hasProba && test.NumClasses() == 2 {
				scores = append(scores, prober.PredictProba(row)[1])
				labels = append(labels, int(test.Y[i]))
			}
		}
	}
	ev := &Evaluation{Matrix: cm, Accuracy: cm.Accuracy()}
	pos := 1
	if test.NumClasses() == 1 {
		pos = 0
	}
	if test.NumClasses() >= 2 {
		ev.Precision = cm.Precision(pos)
		ev.Recall = cm.Recall(pos)
		ev.F1 = cm.F1(pos)
	}
	ev.AUC = 0.5
	if len(scores) > 0 {
		ev.AUC = AUC(labels, scores)
	}
	return ev
}

// AUC computes the area under the ROC curve via the rank statistic
// (probability a random positive outranks a random negative; ties count
// half). Returns 0.5 when either class is absent.
func AUC(labels []int, scores []float64) float64 {
	var pos, neg int
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	ranks := stats.Ranks(scores)
	sumPos := 0.0
	for i, l := range labels {
		if l == 1 {
			sumPos += ranks[i]
		}
	}
	u := sumPos - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// CVResult aggregates cross-validation metrics (means over folds).
type CVResult struct {
	Folds     int
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	AUC       float64
	// Pooled is the confusion matrix summed over folds.
	Pooled *ConfusionMatrix
}

// String renders a one-line summary.
func (r *CVResult) String() string {
	return fmt.Sprintf("%d-fold CV: acc=%.3f prec=%.3f rec=%.3f f1=%.3f auc=%.3f",
		r.Folds, r.Accuracy, r.Precision, r.Recall, r.F1, r.AUC)
}

// CrossValidate runs stratified k-fold cross validation, refitting the
// classifier supplied by mk for every fold, with folds fitted concurrently
// on every core. Equivalent to CrossValidateJobs with jobs = 0.
func CrossValidate(mk func() Classifier, d *Dataset, k int, rng *stats.RNG) (*CVResult, error) {
	return CrossValidateJobs(mk, d, k, rng, 0)
}

// CrossValidateJobs is CrossValidate with an explicit worker-pool bound
// (jobs <= 0 uses every core). The fold partition is drawn from rng before
// the fan-out and per-fold metrics pool in fold order afterwards, so the
// result is identical for any jobs value. mk must be safe to call from
// multiple goroutines (it is called once per fold).
func CrossValidateJobs(mk func() Classifier, d *Dataset, k int, rng *stats.RNG, jobs int) (*CVResult, error) {
	folds := d.Folds(k, rng)
	evals := make([]*Evaluation, len(folds))
	err := ParallelFor(len(folds), jobs, func(fi int) error {
		test := d.Subset(folds[fi])
		var trainIdx []int
		for fj := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, folds[fj]...)
			}
		}
		train := d.Subset(trainIdx)
		if test.N() == 0 || train.N() == 0 {
			return nil
		}
		c := mk()
		if err := c.Fit(train); err != nil {
			return fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		evals[fi] = Evaluate(c, test)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &CVResult{Folds: k, Pooled: NewConfusionMatrix(d.ClassNames)}
	used := 0
	for _, ev := range evals {
		if ev == nil {
			continue
		}
		res.Accuracy += ev.Accuracy
		res.Precision += ev.Precision
		res.Recall += ev.Recall
		res.F1 += ev.F1
		res.AUC += ev.AUC
		for a := range ev.Matrix.Counts {
			for p := range ev.Matrix.Counts[a] {
				res.Pooled.Counts[a][p] += ev.Matrix.Counts[a][p]
			}
		}
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("ml: no usable folds")
	}
	res.Accuracy /= float64(used)
	res.Precision /= float64(used)
	res.Recall /= float64(used)
	res.F1 /= float64(used)
	res.AUC /= float64(used)
	return res, nil
}

// RegressionMetrics holds regression evaluation results.
type RegressionMetrics struct {
	RMSE float64
	MAE  float64
	R2   float64
}

// EvaluateRegressor tests a fitted regressor.
func EvaluateRegressor(r Regressor, test *Dataset) RegressionMetrics {
	var sqe, abse float64
	preds := make([]float64, test.N())
	for i, row := range test.X {
		p := r.Predict(row)
		preds[i] = p
		d := p - test.Y[i]
		sqe += d * d
		abse += math.Abs(d)
	}
	n := float64(test.N())
	m := RegressionMetrics{}
	if n > 0 {
		m.RMSE = math.Sqrt(sqe / n)
		m.MAE = abse / n
		my := stats.Mean(test.Y)
		var ssTot float64
		for _, y := range test.Y {
			ssTot += (y - my) * (y - my)
		}
		if ssTot > 0 {
			m.R2 = 1 - sqe/ssTot
		}
	}
	return m
}

// RankFeatureWeights pairs attribute names with |weight| importance scores
// and sorts descending — the paper's "properties that heavily contribute to
// a given result can be flagged for developer attention".
type FeatureWeight struct {
	Name   string
	Weight float64
}

// RankFeatureWeights sorts by absolute weight.
func RankFeatureWeights(names []string, weights []float64) []FeatureWeight {
	out := make([]FeatureWeight, 0, len(names))
	for i, n := range names {
		if i < len(weights) {
			out = append(out, FeatureWeight{Name: n, Weight: weights[i]})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].Weight) > math.Abs(out[j].Weight)
	})
	return out
}
