package ml

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestConfusionMatrixMetrics(t *testing.T) {
	cm := NewConfusionMatrix([]string{"neg", "pos"})
	// 50 TN, 10 FP, 5 FN, 35 TP
	cm.Counts[0][0] = 50
	cm.Counts[0][1] = 10
	cm.Counts[1][0] = 5
	cm.Counts[1][1] = 35
	if cm.Total() != 100 {
		t.Fatalf("total = %d", cm.Total())
	}
	if acc := cm.Accuracy(); acc != 0.85 {
		t.Fatalf("accuracy = %v", acc)
	}
	if p := cm.Precision(1); math.Abs(p-35.0/45) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if r := cm.Recall(1); math.Abs(r-35.0/40) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	f1 := cm.F1(1)
	wantP, wantR := 35.0/45, 35.0/40
	if math.Abs(f1-2*wantP*wantR/(wantP+wantR)) > 1e-12 {
		t.Fatalf("f1 = %v", f1)
	}
	s := cm.String()
	if !strings.Contains(s, "neg") || !strings.Contains(s, "50") {
		t.Fatalf("matrix string = %q", s)
	}
}

func TestPrecisionRecallEdgeCases(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	if cm.Precision(1) != 0 || cm.Recall(1) != 0 || cm.F1(1) != 0 {
		t.Fatal("empty matrix metrics should be 0")
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	if auc := AUC(labels, []float64{0.1, 0.2, 0.8, 0.9}); auc != 1 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	if auc := AUC(labels, []float64{0.9, 0.8, 0.2, 0.1}); auc != 0 {
		t.Fatalf("inverted AUC = %v", auc)
	}
	// Ties: all equal scores -> 0.5.
	if auc := AUC(labels, []float64{0.5, 0.5, 0.5, 0.5}); auc != 0.5 {
		t.Fatalf("tied AUC = %v", auc)
	}
	// Degenerate: one class only.
	if auc := AUC([]int{1, 1}, []float64{0.1, 0.9}); auc != 0.5 {
		t.Fatalf("single-class AUC = %v", auc)
	}
}

func TestCrossValidate(t *testing.T) {
	d := linearDataset(300, stats.NewRNG(1))
	res, err := CrossValidate(func() Classifier { return &GaussianNB{} }, d, 10, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Folds != 10 {
		t.Fatalf("folds = %d", res.Folds)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("CV accuracy = %v", res.Accuracy)
	}
	if res.Pooled.Total() != d.N() {
		t.Fatalf("pooled matrix covers %d/%d", res.Pooled.Total(), d.N())
	}
	if !strings.Contains(res.String(), "10-fold") {
		t.Fatalf("summary = %q", res.String())
	}
}

func TestCrossValidateBeatsBaseline(t *testing.T) {
	d := linearDataset(300, stats.NewRNG(3))
	base, err := CrossValidate(func() Classifier { return &ZeroR{} }, d, 5, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := CrossValidate(func() Classifier { return &DecisionTree{} }, d, 5, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Accuracy <= base.Accuracy {
		t.Fatalf("tree %v should beat ZeroR %v", tree.Accuracy, base.Accuracy)
	}
}

func TestLinearRegressor(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 300
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		a, b := rng.Normal(0, 1), rng.Normal(0, 1)
		X[i] = []float64{a, b}
		Y[i] = 3 + 2*a - b + rng.Normal(0, 0.1)
	}
	d, err := NewDataset([]string{"a", "b"}, nil, X, Y)
	if err != nil {
		t.Fatal(err)
	}
	lr := &LinearRegressor{}
	if err := lr.Fit(d); err != nil {
		t.Fatal(err)
	}
	c := lr.Coeffs()
	if math.Abs(c[0]-3) > 0.1 || math.Abs(c[1]-2) > 0.1 || math.Abs(c[2]+1) > 0.1 {
		t.Fatalf("coeffs = %v", c)
	}
	m := EvaluateRegressor(lr, d)
	if m.R2 < 0.99 {
		t.Fatalf("R2 = %v", m.R2)
	}
	if m.RMSE > 0.2 || m.MAE > 0.2 {
		t.Fatalf("errors = %+v", m)
	}
}

func TestLinearRegressorRejectsClassification(t *testing.T) {
	d := linearDataset(10, stats.NewRNG(6))
	if err := (&LinearRegressor{}).Fit(d); err == nil {
		t.Fatal("classification dataset accepted")
	}
}

func TestRegressionTree(t *testing.T) {
	rng := stats.NewRNG(7)
	n := 400
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := rng.Range(0, 10)
		X[i] = []float64{x}
		// Step function: trees should nail this, lines cannot.
		if x > 5 {
			Y[i] = 10
		} else {
			Y[i] = -10
		}
	}
	d, _ := NewDataset([]string{"x"}, nil, X, Y)
	rt := &RegressionTree{}
	if err := rt.Fit(d); err != nil {
		t.Fatal(err)
	}
	m := EvaluateRegressor(rt, d)
	if m.R2 < 0.95 {
		t.Fatalf("tree R2 = %v", m.R2)
	}
	if p := rt.Predict([]float64{9}); math.Abs(p-10) > 1 {
		t.Fatalf("predict(9) = %v", p)
	}
}

func TestKNNRegressor(t *testing.T) {
	rng := stats.NewRNG(8)
	n := 300
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		x := rng.Range(-3, 3)
		X[i] = []float64{x}
		Y[i] = x * x
	}
	d, _ := NewDataset([]string{"x"}, nil, X, Y)
	kr := &KNNRegressor{K: 5}
	if err := kr.Fit(d); err != nil {
		t.Fatal(err)
	}
	if p := kr.Predict([]float64{2}); math.Abs(p-4) > 0.5 {
		t.Fatalf("predict(2) = %v", p)
	}
}

func TestRankFeatureWeights(t *testing.T) {
	fw := RankFeatureWeights([]string{"a", "b", "c"}, []float64{0.1, -5, 2})
	if fw[0].Name != "b" || fw[1].Name != "c" || fw[2].Name != "a" {
		t.Fatalf("ranking = %+v", fw)
	}
}
