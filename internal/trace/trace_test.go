package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsFree: every operation on the disabled tracer (nil
// receiver all the way down) must be a safe no-op.
func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	root := tr.Root()
	if root != nil {
		t.Fatal("nil tracer handed out a non-nil root")
	}
	c := root.Child("x")
	if c != nil {
		t.Fatal("nil span handed out a non-nil child")
	}
	c2 := root.ChildAt(3, "y")
	d := root.Detached("z")
	if c2 != nil || d != nil {
		t.Fatal("nil span handed out non-nil children")
	}
	root.Adopt(d, 1)
	root.Add("counter", 1)
	root.SetLabel("label")
	root.End()
	tr.Finish()
	if got := tr.StructureString(); got != "" {
		t.Fatalf("nil tracer structure = %q, want empty", got)
	}
	if got := tr.PhaseTotals(); got != nil {
		t.Fatalf("nil tracer phase totals = %v, want nil", got)
	}
	if got := tr.SlowestFiles(5); got != nil {
		t.Fatalf("nil tracer slowest = %v, want nil", got)
	}
	if got := Summarize(nil); got != nil {
		t.Fatalf("Summarize(nil) = %v, want nil", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil tracer export is not JSON: %v", err)
	}
}

// TestContextPlumbing: a nil span attaches as a no-op; a real span round-trips.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("attaching a nil span should return ctx unchanged (no allocation)")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Fatal("empty context yielded a span")
	}
	tr := New("root")
	ctx2 := ContextWithSpan(ctx, tr.Root())
	if got := SpanFromContext(ctx2); got != tr.Root() {
		t.Fatal("span did not round-trip through the context")
	}
}

// buildSample builds one deterministic trace the way the extraction
// pipeline does: sequential phases via Child, parallel per-file spans via
// ChildAt with the file index, nested phases, counters, and an adopted
// detached subtree.
func buildSample(files int, workers int) *Tracer {
	tr := New("analyze")
	root := tr.Root()
	load := root.Child("load")
	load.End()
	ext := root.Child("extract")
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fs := ext.ChildAt(2+i, SpanNameFile)
				fs.SetLabel("src/file" + string(rune('a'+i)) + ".c")
				fs.Add("bytes", int64(100*(i+1)))
				deep := fs.Detached("deep")
				p := deep.Child("parse")
				p.End()
				s := deep.Child("symexec")
				s.End()
				deep.End()
				fs.Adopt(deep, 0)
				fs.End()
			}
		}()
	}
	for i := 0; i < files; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	ext.End()
	tr.Finish()
	return tr
}

// TestStructureDeterministicAcrossWidths: the same workload at pool widths
// 1 and 8 must produce byte-identical structures.
func TestStructureDeterministicAcrossWidths(t *testing.T) {
	a := buildSample(6, 1).StructureString()
	b := buildSample(6, 8).StructureString()
	if a != b {
		t.Fatalf("structure differs across widths:\n--- jobs=1\n%s--- jobs=8\n%s", a, b)
	}
	for _, want := range []string{"analyze", "extract", "file [src/filea.c] bytes=100", "deep", "parse", "symexec"} {
		if !strings.Contains(a, want) {
			t.Fatalf("structure missing %q:\n%s", want, a)
		}
	}
}

// TestTraceEventExport: the export must be well-formed trace_event JSON
// with one complete event per span and sane timing fields.
func TestTraceEventExport(t *testing.T) {
	tr := buildSample(3, 2)
	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	// analyze + load + extract + 3*(file + deep + parse + symexec)
	if want := 3 + 3*4; len(f.TraceEvents) != want {
		t.Fatalf("got %d events, want %d", len(f.TraceEvents), want)
	}
	labels := 0
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "" || ev.TS < 0 || ev.Dur < 0 || ev.PID != 1 || ev.TID < 1 {
			t.Fatalf("event malformed: %+v", ev)
		}
		if ev.Name == SpanNameFile {
			if _, ok := ev.Args["label"]; !ok {
				t.Fatalf("file event missing label arg: %+v", ev)
			}
			if _, ok := ev.Args["bytes"]; !ok {
				t.Fatalf("file event missing bytes counter: %+v", ev)
			}
			labels++
		}
	}
	if labels != 3 {
		t.Fatalf("got %d labeled file events, want 3", labels)
	}
}

// TestSummarize: phase totals must count every span by name, sorted.
func TestSummarize(t *testing.T) {
	tr := buildSample(4, 2)
	sum := Summarize(tr.Root())
	if sum.Spans != 3+4*4 {
		t.Fatalf("spans = %d, want %d", sum.Spans, 3+4*4)
	}
	byName := map[string]PhaseTotal{}
	for _, p := range sum.Phases {
		byName[p.Phase] = p
	}
	if byName[SpanNameFile].Count != 4 || byName["parse"].Count != 4 || byName["extract"].Count != 1 {
		t.Fatalf("unexpected phase counts: %+v", sum.Phases)
	}
	for i := 1; i < len(sum.Phases); i++ {
		if sum.Phases[i-1].Phase >= sum.Phases[i].Phase {
			t.Fatalf("phases not sorted: %+v", sum.Phases)
		}
	}
	if sum.WallSeconds < 0 {
		t.Fatalf("negative wall time: %v", sum.WallSeconds)
	}
}

// TestSlowestFiles: the report must key on file spans, honor n, and be
// deterministically ordered.
func TestSlowestFiles(t *testing.T) {
	tr := buildSample(5, 3)
	all := tr.SlowestFiles(0)
	if len(all) != 5 {
		t.Fatalf("got %d files, want 5", len(all))
	}
	top := tr.SlowestFiles(2)
	if len(top) != 2 {
		t.Fatalf("got %d files, want 2", len(top))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Seconds < all[i].Seconds {
			t.Fatalf("slowest not sorted desc: %+v", all)
		}
	}
	for _, f := range all {
		if f.Path == "" {
			t.Fatalf("file timing missing path: %+v", f)
		}
		names := map[string]bool{}
		for _, p := range f.Phases {
			names[p.Phase] = true
		}
		if !names["parse"] || !names["deep"] || names[SpanNameFile] {
			t.Fatalf("phase breakdown wrong for %s: %+v", f.Path, f.Phases)
		}
	}
	if out := RenderSlowest(all); !strings.Contains(out, all[0].Path) {
		t.Fatalf("rendered table missing path:\n%s", out)
	}
}

// TestAdoptAbandonedSubtreeSafe: an un-adopted detached subtree must never
// appear in the export, and writing to it after the parent is exported
// must not affect the trace (the timeout-abandonment contract).
func TestAdoptAbandonedSubtreeSafe(t *testing.T) {
	tr := New("root")
	fs := tr.Root().ChildAt(0, SpanNameFile)
	fs.SetLabel("slow.c")
	det := fs.Detached("deep")
	fs.End() // timeout path: file span closes without adopting
	tr.Finish()
	before := tr.StructureString()
	// Runaway goroutine keeps recording; the exported trace must not change.
	late := det.Child("symexec")
	late.End()
	det.End()
	if after := tr.StructureString(); after != before {
		t.Fatalf("abandoned subtree leaked into the trace:\n%s\nvs\n%s", before, after)
	}
	if strings.Contains(before, "deep") {
		t.Fatalf("un-adopted subtree rendered:\n%s", before)
	}
}
