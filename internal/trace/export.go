package trace

import (
	"encoding/json"
	"io"
	"time"
)

// traceEvent is one Chrome trace_event entry ("X" complete events only).
// The format is the JSON Object Format consumed by chrome://tracing and
// Perfetto: {"traceEvents": [...], "displayTimeUnit": "ms"}.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds since trace epoch
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders the trace in Chrome trace_event format. Spans
// still open render as ending at the latest timestamp seen in the trace.
//
// Lane layout: viewers stack same-tid events by nesting, which is only
// correct when events on one tid are properly nested. A child runs inside
// its parent by construction, so a child may share its parent's lane —
// unless a sibling already occupies it for an overlapping interval, in
// which case the child is bumped to a fresh lane (the parallel per-file
// spans land on one lane per concurrently-busy worker, which is exactly
// the picture a profiler wants).
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ms"}` + "\n"))
		return err
	}
	now := t.latest()
	var events []traceEvent
	nextLane := 2 // lane 1 belongs to the root
	var walk func(s *Span, lane int, parentEnd time.Time)
	walk = func(s *Span, lane int, parentEnd time.Time) {
		label, end, counters, children := s.snapshot()
		end = endOr(end, parentEnd)
		var args map[string]any
		if label != "" || len(counters) > 0 {
			args = make(map[string]any, 1+len(counters))
			if label != "" {
				args["label"] = label
			}
			for _, c := range counters {
				args[c.k] = c.v
			}
		}
		events = append(events, traceEvent{
			Name: s.name,
			Ph:   "X",
			TS:   float64(s.start.Sub(t.epoch)) / float64(time.Microsecond),
			Dur:  float64(duration(s.start, end)) / float64(time.Microsecond),
			PID:  1,
			TID:  lane,
			Args: args,
		})
		// laneBusy[l] is when lane l frees up among this span's children.
		laneBusy := map[int]time.Time{}
		for _, c := range children {
			cl := lane
			if busy, ok := laneBusy[cl]; ok && c.start.Before(busy) {
				cl = nextLane
				nextLane++
			}
			cEnd := endOr(c.peekEnd(), end)
			laneBusy[cl] = cEnd
			walk(c, cl, end)
		}
	}
	walk(t.root, 1, now)
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// peekEnd reads the span's end under its lock.
func (s *Span) peekEnd() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// latest returns the maximum timestamp recorded anywhere in the trace —
// the fallback end for spans still open at export time.
func (t *Tracer) latest() time.Time {
	max := t.epoch
	var walk func(s *Span)
	walk = func(s *Span) {
		_, end, _, children := s.snapshot()
		if s.start.After(max) {
			max = s.start
		}
		if !end.IsZero() && end.After(max) {
			max = end
		}
		for _, c := range children {
			walk(c)
		}
	}
	walk(t.root)
	return max
}
