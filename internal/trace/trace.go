// Package trace is the pipeline's lightweight span layer: monotonic
// start/end timings with parent links, counter attachments, and a
// deterministic tree structure, threaded through the hot path (tree load,
// per-file extraction phases, training, request serving).
//
// Two properties shape the design:
//
//   - Zero cost when disabled. A nil *Tracer (and the nil *Span everything
//     it hands out) is the off switch: every method no-ops on a nil
//     receiver, so instrumented code pays one pointer check and zero
//     allocations when no one asked for a trace. There is no global
//     enable flag — presence of a span in the context is the signal.
//
//   - Deterministic structure under parallelism. Spans created by a worker
//     pool attach to their parent with an explicit sequence key (the work
//     item's index), and children are sorted by that key at render time,
//     so the span tree is byte-identical at any pool width; only the
//     recorded durations vary run to run. Structure (for tests) and
//     timings (for humans) render through separate entry points.
package trace

import (
	"context"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer owns one trace: the root span plus the epoch all span timestamps
// are measured from. A nil *Tracer is the disabled tracer.
type Tracer struct {
	epoch time.Time
	root  *Span
}

// New starts a tracer whose root span is named name. The root starts now.
func New(name string) *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.root = &Span{name: name, start: t.epoch}
	return t
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Export entry points treat still-open spans as
// ending now, so Finish is idempotent housekeeping, not a requirement.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Span is one timed region. Spans are created with Child/ChildAt/Detached,
// closed with End, and annotated with Add (counters) and SetLabel (an
// unbounded-cardinality tag, e.g. a file path, kept separate from the name
// so the name stays a bounded phase taxonomy usable as a metric label).
//
// All methods are safe on a nil *Span and safe for concurrent use; a
// parent's child list is mutex-guarded so pool workers may attach
// concurrently.
type Span struct {
	name  string
	label string
	start time.Time
	end   time.Time
	seq   int

	mu       sync.Mutex
	nextSeq  int
	counters map[string]int64
	children []*Span
}

// Child starts a child span whose sequence key is the parent's internal
// counter. Use it for sequential sections only: the counter makes creation
// order the tree order, which is deterministic exactly when creation is
// sequential. Parallel sections must use ChildAt with the work item's
// index (and seqs disjoint from any Child-allocated ones).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	c := &Span{name: name, start: time.Now(), seq: seq}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildAt starts a child span with an explicit sequence key. Children are
// sorted by key at render time, so workers creating siblings concurrently
// still yield one deterministic tree.
func (s *Span) ChildAt(seq int, name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), seq: seq}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Detached starts a span that is NOT attached to s — only s's nil-ness
// (tracing on/off) propagates. A worker whose result may be abandoned
// (per-file deadline) records into a detached subtree and the accepting
// side calls Adopt; an abandoned subtree is simply never adopted, so a
// runaway goroutine can keep writing to it without racing the exporter.
func (s *Span) Detached(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), seq: 0}
}

// Adopt attaches a finished detached subtree as a child at an explicit
// sequence key. The caller must not Adopt a subtree another goroutine may
// still be writing to.
func (s *Span) Adopt(child *Span, seq int) {
	if s == nil || child == nil {
		return
	}
	child.seq = seq
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End closes the span. Only the first End counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// SetLabel tags the span with an unbounded-cardinality annotation (a file
// path, a model name). Labels render in exports but never become metric
// labels.
func (s *Span) SetLabel(label string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.label = label
	s.mu.Unlock()
}

// Add accumulates a named counter on the span (cache hits, bytes, items).
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// snapshot returns a render-stable copy of the span's mutable state:
// children sorted by (seq, name) and counters as a sorted slice.
func (s *Span) snapshot() (label string, end time.Time, counters []counterKV, children []*Span) {
	s.mu.Lock()
	label = s.label
	end = s.end
	children = append([]*Span(nil), s.children...)
	counters = make([]counterKV, 0, len(s.counters))
	for k, v := range s.counters {
		counters = append(counters, counterKV{k, v})
	}
	s.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].k < counters[j].k })
	sort.SliceStable(children, func(i, j int) bool {
		if children[i].seq != children[j].seq {
			return children[i].seq < children[j].seq
		}
		return children[i].name < children[j].name
	})
	return
}

type counterKV struct {
	k string
	v int64
}

// endOr returns the span's end, or fallback while the span is still open.
func endOr(end, fallback time.Time) time.Time {
	if end.IsZero() {
		return fallback
	}
	return end
}

// duration returns the span's length, clamping negatives (an open span
// rendered before its parent's fallback) to zero.
func duration(start, end time.Time) time.Duration {
	d := end.Sub(start)
	if d < 0 {
		return 0
	}
	return d
}

// StructureString renders the span tree's durationless shape: names,
// labels, counters, and child order, one span per line, indented by depth.
// Two runs of the same workload at different pool widths must render
// byte-identical structures — this is the determinism contract's test
// surface.
func (t *Tracer) StructureString() string {
	if t == nil {
		return ""
	}
	var sb strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		label, _, counters, children := s.snapshot()
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(s.name)
		if label != "" {
			sb.WriteString(" [")
			sb.WriteString(label)
			sb.WriteString("]")
		}
		for _, c := range counters {
			sb.WriteString(" ")
			sb.WriteString(c.k)
			sb.WriteString("=")
			writeInt(&sb, c.v)
		}
		sb.WriteString("\n")
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return sb.String()
}

func writeInt(sb *strings.Builder, v int64) {
	var buf [20]byte
	neg := v < 0
	if neg {
		v = -v
	}
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	sb.Write(buf[i:])
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
// Attaching a nil span returns ctx unchanged, so the disabled path
// allocates nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context
// carries none — i.e. tracing is disabled for this call tree.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
