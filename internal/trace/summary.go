package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PhaseTotal is the aggregate of every span sharing one name (phase):
// total busy seconds and span count. Phase names are a bounded taxonomy
// (extract, file, cache, deep, parse, ...), so these totals are safe to
// export as metric labels.
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
	Count   int     `json:"count"`
}

// Summary is the compact, JSON-embeddable digest of a span subtree — what
// the daemon joins onto AnalysisDiagnostics when a request asks for
// tracing: wall time, span count, and per-phase busy totals.
type Summary struct {
	WallSeconds float64      `json:"wall_seconds"`
	Spans       int          `json:"spans"`
	Phases      []PhaseTotal `json:"phases"`
}

// Summarize digests the subtree rooted at s. Open spans count as ending
// now. A nil span summarizes to nil, so callers can unconditionally assign
// the result into an omitempty field.
func Summarize(s *Span) *Summary {
	if s == nil {
		return nil
	}
	now := time.Now()
	totals := map[string]*PhaseTotal{}
	spans := 0
	var walk func(sp *Span, parentEnd time.Time)
	walk = func(sp *Span, parentEnd time.Time) {
		_, end, _, children := sp.snapshot()
		end = endOr(end, parentEnd)
		pt := totals[sp.name]
		if pt == nil {
			pt = &PhaseTotal{Phase: sp.name}
			totals[sp.name] = pt
		}
		pt.Seconds += duration(sp.start, end).Seconds()
		pt.Count++
		spans++
		for _, c := range children {
			walk(c, end)
		}
	}
	walk(s, now)
	_, rootEnd, _, _ := s.snapshot()
	out := &Summary{
		WallSeconds: duration(s.start, endOr(rootEnd, now)).Seconds(),
		Spans:       spans,
	}
	for _, pt := range totals {
		out.Phases = append(out.Phases, *pt)
	}
	sort.Slice(out.Phases, func(i, j int) bool { return out.Phases[i].Phase < out.Phases[j].Phase })
	return out
}

// PhaseTotals digests the whole trace; see Summarize.
func (t *Tracer) PhaseTotals() []PhaseTotal {
	if t == nil {
		return nil
	}
	return Summarize(t.root).Phases
}

// SpanNameFile is the per-file span name the extraction pipeline uses; the
// slowest-files report keys on it.
const SpanNameFile = "file"

// FileTiming is one file's cost in a trace: total span seconds plus the
// per-phase breakdown of everything nested under it.
type FileTiming struct {
	Path    string
	Seconds float64
	Phases  []PhaseTotal
}

// SlowestFiles returns the n most expensive per-file spans (name
// SpanNameFile, path in the label), slowest first; ties break by path so
// the report is deterministic. n <= 0 returns every file.
func (t *Tracer) SlowestFiles(n int) []FileTiming {
	if t == nil {
		return nil
	}
	now := t.latest()
	var out []FileTiming
	var walk func(s *Span, parentEnd time.Time)
	walk = func(s *Span, parentEnd time.Time) {
		label, end, _, children := s.snapshot()
		end = endOr(end, parentEnd)
		if s.name == SpanNameFile {
			sum := Summarize(s)
			// The file span itself is scaffolding in the breakdown; drop it.
			phases := make([]PhaseTotal, 0, len(sum.Phases))
			for _, p := range sum.Phases {
				if p.Phase != SpanNameFile {
					phases = append(phases, p)
				}
			}
			out = append(out, FileTiming{
				Path:    label,
				Seconds: duration(s.start, end).Seconds(),
				Phases:  phases,
			})
			return
		}
		for _, c := range children {
			walk(c, end)
		}
	}
	walk(t.root, now)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Path < out[j].Path
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// RenderSlowest formats a slowest-files table for terminal output.
func RenderSlowest(files []FileTiming) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %10s  %s\n", "file", "total", "phases")
	for _, f := range files {
		var phases []string
		for _, p := range f.Phases {
			phases = append(phases, fmt.Sprintf("%s=%.3fms", p.Phase, p.Seconds*1e3))
		}
		fmt.Fprintf(&sb, "%-40s %9.3fms  %s\n", f.Path, f.Seconds*1e3, strings.Join(phases, " "))
	}
	return sb.String()
}
