package attackgraph

import "testing"

// twoTier builds the canonical test network: attacker box -> web server
// (remote exploit to user, local escalation to root) -> database (remote
// root exploit reachable only from the web server).
func twoTier() (*Network, State) {
	n := NewNetwork(
		Host{Name: "attacker"},
		Host{Name: "web", Services: []Service{
			{Name: "httpd", Vulns: []Vuln{
				{ID: "CVE-WEB-RCE", RequiresPriv: PrivUser, GrantsPriv: PrivUser},
			}},
			{Name: "kernel", Vulns: []Vuln{
				{ID: "CVE-LPE", RequiresPriv: PrivUser, GrantsPriv: PrivRoot, Local: true},
			}},
		}},
		Host{Name: "db", Services: []Service{
			{Name: "dbd", Vulns: []Vuln{
				{ID: "CVE-DB-RCE", RequiresPriv: PrivUser, GrantsPriv: PrivRoot},
			}},
		}},
	)
	n.Connect("attacker", "web")
	n.Connect("web", "db")
	return n, State{"attacker": PrivRoot}
}

func TestGenerateMonotonic(t *testing.T) {
	n, init := twoTier()
	g := Generate(n, init)
	if len(g.Nodes) < 3 {
		t.Fatalf("states = %d", len(g.Nodes))
	}
	// Privileges never decrease along edges.
	for _, node := range g.Nodes {
		for _, e := range node.Edges {
			dst := g.Nodes[e.To]
			for h, p := range node.State {
				if dst.State[h] < p {
					t.Fatalf("privilege decreased on %s", h)
				}
			}
		}
	}
}

func TestAnalyzeGoalChain(t *testing.T) {
	n, init := twoTier()
	a := Analyze(n, init, "db", PrivRoot)
	if !a.GoalReachable {
		t.Fatal("db root should be reachable")
	}
	// Chain: web RCE -> db RCE = 2 steps (the LPE is not needed).
	if a.MinSteps != 2 {
		t.Fatalf("MinSteps = %d, want 2", a.MinSteps)
	}
	if a.Paths < 1 {
		t.Fatalf("Paths = %d", a.Paths)
	}
	if a.CompromisableHosts != 3 { // attacker + web + db
		t.Fatalf("CompromisableHosts = %d", a.CompromisableHosts)
	}
}

func TestAnalyzeUnreachableWithoutConnectivity(t *testing.T) {
	n := NewNetwork(
		Host{Name: "attacker"},
		Host{Name: "db", Services: []Service{
			{Name: "dbd", Vulns: []Vuln{{ID: "V", RequiresPriv: PrivUser, GrantsPriv: PrivRoot}}},
		}},
	)
	// No Connect call: the attacker cannot reach db.
	a := Analyze(n, State{"attacker": PrivRoot}, "db", PrivRoot)
	if a.GoalReachable {
		t.Fatal("goal should be unreachable without connectivity")
	}
	if a.MinSteps != -1 {
		t.Fatalf("MinSteps = %d", a.MinSteps)
	}
}

func TestLocalExploitRequiresFoothold(t *testing.T) {
	n := NewNetwork(
		Host{Name: "attacker"},
		Host{Name: "srv", Services: []Service{
			{Name: "kernel", Vulns: []Vuln{{ID: "LPE", RequiresPriv: PrivUser, GrantsPriv: PrivRoot, Local: true}}},
		}},
	)
	n.Connect("attacker", "srv")
	// No remote vuln: root unreachable even though an LPE exists.
	a := Analyze(n, State{"attacker": PrivRoot}, "srv", PrivRoot)
	if a.GoalReachable {
		t.Fatal("LPE fired without a foothold")
	}
	// Give the attacker user on srv: now one step.
	a = Analyze(n, State{"attacker": PrivRoot, "srv": PrivUser}, "srv", PrivRoot)
	if !a.GoalReachable || a.MinSteps != 1 {
		t.Fatalf("analysis = %+v", a)
	}
}

func TestGoalAlreadyHeld(t *testing.T) {
	n := NewNetwork(Host{Name: "h"})
	a := Analyze(n, State{"h": PrivRoot}, "h", PrivRoot)
	if !a.GoalReachable || a.MinSteps != 0 {
		t.Fatalf("analysis = %+v", a)
	}
}

func TestMultiplePathsCounted(t *testing.T) {
	// Two independent remote vulns on the target: two distinct 1-step paths.
	n := NewNetwork(
		Host{Name: "attacker"},
		Host{Name: "srv", Services: []Service{
			{Name: "a", Vulns: []Vuln{{ID: "V1", RequiresPriv: PrivUser, GrantsPriv: PrivRoot}}},
			{Name: "b", Vulns: []Vuln{{ID: "V2", RequiresPriv: PrivUser, GrantsPriv: PrivRoot}}},
		}},
	)
	n.Connect("attacker", "srv")
	a := Analyze(n, State{"attacker": PrivUser}, "srv", PrivRoot)
	if a.MinSteps != 1 {
		t.Fatalf("MinSteps = %d", a.MinSteps)
	}
	if a.Paths != 2 {
		t.Fatalf("Paths = %d, want 2", a.Paths)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	n, init := twoTier()
	a := Generate(n, init)
	b := Generate(n, init)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("nondeterministic node count")
	}
	for k, na := range a.Nodes {
		nb, ok := b.Nodes[k]
		if !ok || na.Depth != nb.Depth || len(na.Edges) != len(nb.Edges) {
			t.Fatalf("node %q differs", k)
		}
		for i := range na.Edges {
			if na.Edges[i] != nb.Edges[i] {
				t.Fatalf("edge order differs at %q[%d]", k, i)
			}
		}
	}
}

func TestStateKeyCanonical(t *testing.T) {
	a := State{"x": PrivUser, "y": PrivRoot}
	b := State{"y": PrivRoot, "x": PrivUser}
	if a.key() != b.key() {
		t.Fatal("state key not canonical")
	}
}

func TestPrivString(t *testing.T) {
	if PrivNone.String() != "none" || PrivUser.String() != "user" || PrivRoot.String() != "root" {
		t.Fatal("priv names")
	}
}

func TestBidirectionalConnect(t *testing.T) {
	n := NewNetwork(Host{Name: "a"}, Host{Name: "b"})
	n.ConnectBidi("a", "b")
	if !n.Reachable("a", "b") || !n.Reachable("b", "a") {
		t.Fatal("bidi connectivity broken")
	}
	if n.Reachable("b", "c") {
		t.Fatal("phantom reachability")
	}
}
