// Package attackgraph implements Sheyner-style automated attack-graph
// generation and analysis (§4.1: "we can estimate how difficult it is to
// attack a program by building an attack-graph"). A network of hosts with
// vulnerable services is searched forward from the attacker's foothold;
// the resulting state graph yields difficulty metrics (minimum exploit
// chain length, number of distinct attack states/paths) used as features.
package attackgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Priv is a privilege level on one host.
type Priv int

// Privilege levels, ordered.
const (
	PrivNone Priv = iota
	PrivUser
	PrivRoot
)

// String names the level.
func (p Priv) String() string {
	switch p {
	case PrivNone:
		return "none"
	case PrivUser:
		return "user"
	case PrivRoot:
		return "root"
	}
	return "?"
}

// Vuln is an exploitable weakness in a service.
type Vuln struct {
	ID string
	// RequiresPriv is the privilege the attacker needs on the *source* host.
	RequiresPriv Priv
	// GrantsPriv is the privilege gained on the *target* host.
	GrantsPriv Priv
	// Local restricts the exploit to attacks from the same host (privilege
	// escalation rather than remote compromise).
	Local bool
}

// Service is a network-facing (or local) program on a host.
type Service struct {
	Name  string
	Vulns []Vuln
}

// Host is one machine.
type Host struct {
	Name     string
	Services []Service
}

// Network is the attack-graph input model.
type Network struct {
	Hosts []Host
	// reach[src][dst] means src can open connections to dst.
	reach map[string]map[string]bool
}

// NewNetwork builds a network from hosts.
func NewNetwork(hosts ...Host) *Network {
	return &Network{Hosts: hosts, reach: map[string]map[string]bool{}}
}

// Connect makes dst reachable from src (directed).
func (n *Network) Connect(src, dst string) {
	if n.reach[src] == nil {
		n.reach[src] = map[string]bool{}
	}
	n.reach[src][dst] = true
}

// ConnectBidi connects both directions.
func (n *Network) ConnectBidi(a, b string) {
	n.Connect(a, b)
	n.Connect(b, a)
}

// Reachable reports whether src can reach dst.
func (n *Network) Reachable(src, dst string) bool {
	return n.reach[src][dst]
}

// hostByName returns the host.
func (n *Network) hostByName(name string) (Host, bool) {
	for _, h := range n.Hosts {
		if h.Name == name {
			return h, true
		}
	}
	return Host{}, false
}

// State is an attacker state: privilege held on each host. It is encoded as
// a canonical string for hashing.
type State map[string]Priv

// key canonicalizes the state.
func (s State) key() string {
	names := make([]string, 0, len(s))
	for h := range s {
		names = append(names, h)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, h := range names {
		fmt.Fprintf(&sb, "%s=%d;", h, s[h])
	}
	return sb.String()
}

func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Exploit records one attack-graph edge.
type Exploit struct {
	Vuln    string
	Service string
	From    string // attacking host
	To      string // compromised host
	Gained  Priv
}

// Node is one attack-graph state node.
type Node struct {
	State State
	Depth int // minimum exploits from the initial state
	Edges []Edge
}

// Edge is an exploit transition.
type Edge struct {
	Exploit Exploit
	To      string // key of destination node
}

// Graph is the generated attack graph.
type Graph struct {
	Nodes   map[string]*Node
	Initial string
}

// Generate explores all attacker states reachable from the initial
// privileges via the network's vulnerabilities (monotonic: privileges only
// increase, so the state space is finite).
func Generate(n *Network, initial State) *Graph {
	g := &Graph{Nodes: map[string]*Node{}}
	start := initial.clone()
	// Ensure every host has an entry.
	for _, h := range n.Hosts {
		if _, ok := start[h.Name]; !ok {
			start[h.Name] = PrivNone
		}
	}
	g.Initial = start.key()
	g.Nodes[g.Initial] = &Node{State: start, Depth: 0}
	queue := []string{g.Initial}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		node := g.Nodes[key]
		for _, ex := range possibleExploits(n, node.State) {
			next := node.State.clone()
			next[ex.To] = ex.Gained
			nk := next.key()
			if _, seen := g.Nodes[nk]; !seen {
				g.Nodes[nk] = &Node{State: next, Depth: node.Depth + 1}
				queue = append(queue, nk)
			}
			node.Edges = append(node.Edges, Edge{Exploit: ex, To: nk})
		}
	}
	return g
}

// possibleExploits enumerates the exploits applicable in a state that gain
// new privilege, in deterministic order.
func possibleExploits(n *Network, s State) []Exploit {
	var out []Exploit
	for _, target := range n.Hosts {
		for _, svc := range target.Services {
			for _, v := range svc.Vulns {
				if s[target.Name] >= v.GrantsPriv {
					continue // nothing to gain
				}
				if v.Local {
					if s[target.Name] >= v.RequiresPriv && s[target.Name] > PrivNone {
						out = append(out, Exploit{
							Vuln: v.ID, Service: svc.Name,
							From: target.Name, To: target.Name, Gained: v.GrantsPriv,
						})
					}
					continue
				}
				for _, src := range n.Hosts {
					if s[src.Name] < v.RequiresPriv || s[src.Name] == PrivNone {
						continue
					}
					if src.Name != target.Name && !n.Reachable(src.Name, target.Name) {
						continue
					}
					out = append(out, Exploit{
						Vuln: v.ID, Service: svc.Name,
						From: src.Name, To: target.Name, Gained: v.GrantsPriv,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Vuln != b.Vuln {
			return a.Vuln < b.Vuln
		}
		return a.From < b.From
	})
	return out
}

// Analysis summarizes an attack graph against a goal.
type Analysis struct {
	GoalReachable bool
	// MinSteps is the length of the shortest exploit chain to the goal
	// (0 when the goal holds initially, -1 when unreachable).
	MinSteps int
	// Paths counts distinct minimal-length exploit chains to the goal.
	Paths int
	// States and Edges measure graph size (attack-surface breadth).
	States, Edges int
	// CompromisableHosts counts hosts where the attacker can gain >= user.
	CompromisableHosts int
}

// Analyze runs Generate and evaluates the goal "privilege >= goalPriv on
// goalHost".
func Analyze(n *Network, initial State, goalHost string, goalPriv Priv) Analysis {
	g := Generate(n, initial)
	a := Analysis{MinSteps: -1, States: len(g.Nodes)}
	compromised := map[string]bool{}
	for _, node := range g.Nodes {
		a.Edges += len(node.Edges)
		for h, p := range node.State {
			if p >= PrivUser {
				compromised[h] = true
			}
		}
		if node.State[goalHost] >= goalPriv {
			a.GoalReachable = true
			if a.MinSteps == -1 || node.Depth < a.MinSteps {
				a.MinSteps = node.Depth
			}
		}
	}
	a.CompromisableHosts = len(compromised)
	if a.GoalReachable {
		a.Paths = countMinPaths(g, goalHost, goalPriv, a.MinSteps)
	}
	return a
}

// countMinPaths counts the distinct exploit sequences of exactly minSteps
// edges from the initial state to any goal-satisfying state.
func countMinPaths(g *Graph, goalHost string, goalPriv Priv, minSteps int) int {
	type item struct {
		key   string
		depth int
	}
	// Dynamic programming over (node, depth): number of ways to reach.
	ways := map[item]int{{key: g.Initial, depth: 0}: 1}
	frontier := []item{{key: g.Initial, depth: 0}}
	total := 0
	for len(frontier) > 0 {
		it := frontier[0]
		frontier = frontier[1:]
		node := g.Nodes[it.key]
		if node.State[goalHost] >= goalPriv {
			if it.depth == minSteps {
				total += ways[it]
			}
			continue
		}
		if it.depth >= minSteps {
			continue
		}
		for _, e := range node.Edges {
			next := item{key: e.To, depth: it.depth + 1}
			if _, seen := ways[next]; !seen {
				frontier = append(frontier, next)
			}
			ways[next] += ways[it]
		}
	}
	return total
}
