package featcache

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyDistinguishesVersionAndParts(t *testing.T) {
	base := Key("v1", "minic", "int main(void) {}")
	if base != Key("v1", "minic", "int main(void) {}") {
		t.Fatal("identical inputs must hash identically")
	}
	if base == Key("v2", "minic", "int main(void) {}") {
		t.Fatal("analysis-version bump must change the key")
	}
	if base == Key("v1", "minic", "int main(void) { return 1; }") {
		t.Fatal("content change must change the key")
	}
	if base == Key("v1", "c", "int main(void) {}") {
		t.Fatal("language change must change the key")
	}
	// Length prefixes keep part boundaries unambiguous.
	if Key("v", "ab", "c") == Key("v", "a", "bc") {
		t.Fatal("part boundaries must not collide")
	}
}

func TestMemoryHitAndMiss(t *testing.T) {
	c := NewMemory()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, ok := c.Get("k")
	if !ok || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	key := Key("v1", "content")
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.PutJSON(key, map[string]int{"paths": 7}); err != nil {
		t.Fatal(err)
	}
	// A fresh Cache over the same directory — a later process — hits.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if !c2.GetJSON(key, &got) || got["paths"] != 7 {
		t.Fatalf("disk entry not recovered: %v", got)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := "int f(void) { return 0; }"
	if err := c.Put(Key("v1", content), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key("v2", content)); ok {
		t.Fatal("version-bumped key must miss")
	}
}

func TestCorruptEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "x")
	if err := c.PutJSON(key, 42); err != nil {
		t.Fatal(err)
	}
	// Corrupt the on-disk entry, then read through a fresh cache so the
	// memory layer cannot mask it.
	p := filepath.Join(dir, key[:2], key[2:]+".json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if c2.GetJSON(key, &v) {
		t.Fatal("corrupt entry decoded as a hit")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key("v1", string(rune('a'+i%4)))
			for j := 0; j < 20; j++ {
				_ = c.Put(key, []byte{byte(i)})
				c.Get(key)
			}
		}(i)
	}
	wg.Wait()
}

func TestOpenEmptyDirIsMemoryOnly(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("memory-only cache lost its entry")
	}
}
