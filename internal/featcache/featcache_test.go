package featcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyDistinguishesVersionAndParts(t *testing.T) {
	base := Key("v1", "minic", "int main(void) {}")
	if base != Key("v1", "minic", "int main(void) {}") {
		t.Fatal("identical inputs must hash identically")
	}
	if base == Key("v2", "minic", "int main(void) {}") {
		t.Fatal("analysis-version bump must change the key")
	}
	if base == Key("v1", "minic", "int main(void) { return 1; }") {
		t.Fatal("content change must change the key")
	}
	if base == Key("v1", "c", "int main(void) {}") {
		t.Fatal("language change must change the key")
	}
	// Length prefixes keep part boundaries unambiguous.
	if Key("v", "ab", "c") == Key("v", "a", "bc") {
		t.Fatal("part boundaries must not collide")
	}
}

func TestMemoryHitAndMiss(t *testing.T) {
	c := NewMemory()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	data, ok := c.Get("k")
	if !ok || string(data) != "v" {
		t.Fatalf("get = %q, %v", data, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	key := Key("v1", "content")
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.PutJSON(key, map[string]int{"paths": 7}); err != nil {
		t.Fatal(err)
	}
	// A fresh Cache over the same directory — a later process — hits.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if !c2.GetJSON(key, &got) || got["paths"] != 7 {
		t.Fatalf("disk entry not recovered: %v", got)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	content := "int f(void) { return 0; }"
	if err := c.Put(Key("v1", content), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(Key("v2", content)); ok {
		t.Fatal("version-bumped key must miss")
	}
}

func TestCorruptEntryReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v1", "x")
	if err := c.PutJSON(key, 42); err != nil {
		t.Fatal(err)
	}
	// Corrupt the on-disk entry, then read through a fresh cache so the
	// memory layer cannot mask it.
	p := filepath.Join(dir, key[:2], key[2:]+".json")
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v int
	if c2.GetJSON(key, &v) {
		t.Fatal("corrupt entry decoded as a hit")
	}
	if got := c2.CorruptReads(); got != 1 {
		t.Fatalf("CorruptReads = %d, want 1: corruption must be counted, not folded into misses", got)
	}
	// A clean entry does not move the corruption counter.
	clean := Key("v1", "y")
	if err := c2.PutJSON(clean, 7); err != nil {
		t.Fatal(err)
	}
	if !c2.GetJSON(clean, &v) || v != 7 {
		t.Fatal("clean entry should hit")
	}
	if got := c2.CorruptReads(); got != 1 {
		t.Fatalf("CorruptReads moved to %d on a clean read", got)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key("v1", string(rune('a'+i%4)))
			for j := 0; j < 20; j++ {
				_ = c.Put(key, []byte{byte(i)})
				c.Get(key)
			}
		}(i)
	}
	wg.Wait()
}

func TestOpenEmptyDirIsMemoryOnly(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Fatal("memory-only cache lost its entry")
	}
}

// TestMemTierBounded asserts the in-memory tier never exceeds its byte
// cap: older entries are evicted as new ones arrive, and for a disk-backed
// cache an evicted entry is still served (from disk, re-promoted within
// the bound) rather than lost.
func TestMemTierBounded(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	c.SetMemLimit(350) // fits three 100-byte entries
	var keys []string
	for i := 0; i < 50; i++ {
		k := Key("v", fmt.Sprintf("file-%d", i))
		keys = append(keys, k)
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		if entries, bytes := c.MemStats(); bytes > 350 || entries > 3 {
			t.Fatalf("after put %d: mem tier over bound: %d entries, %d bytes", i, entries, bytes)
		}
	}
	// The earliest key was evicted from memory but survives on disk.
	if entries, _ := c.MemStats(); entries != 3 {
		t.Fatalf("expected 3 resident entries, got %d", entries)
	}
	got, ok := c.Get(keys[0])
	if !ok {
		t.Fatal("evicted entry lost: disk tier should have served it")
	}
	if string(got) != string(payload) {
		t.Fatal("disk tier returned wrong bytes")
	}
	// The promotion itself must respect the bound too.
	if _, bytes := c.MemStats(); bytes > 350 {
		t.Fatalf("disk promotion broke the bound: %d bytes", bytes)
	}
}

// TestMemTierBoundMemoryOnly asserts a memory-only cache stays bounded:
// overflow entries are dropped (future misses), not retained.
func TestMemTierBoundMemoryOnly(t *testing.T) {
	c := NewMemory()
	c.SetMemLimit(64)
	for i := 0; i < 20; i++ {
		if err := c.Put(Key("v", fmt.Sprintf("k%d", i)), make([]byte, 30)); err != nil {
			t.Fatal(err)
		}
		if _, bytes := c.MemStats(); bytes > 64 {
			t.Fatalf("bound exceeded: %d bytes", bytes)
		}
	}
	if _, ok := c.Get(Key("v", "k0")); ok {
		t.Fatal("expected earliest entry to be evicted in a memory-only cache")
	}
}

// TestShrinkMemLimitEvictsImmediately covers SetMemLimit below the current
// footprint.
func TestShrinkMemLimitEvictsImmediately(t *testing.T) {
	c := NewMemory()
	for i := 0; i < 10; i++ {
		if err := c.Put(Key("v", fmt.Sprintf("k%d", i)), make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	c.SetMemLimit(25)
	if entries, bytes := c.MemStats(); bytes > 25 || entries > 2 {
		t.Fatalf("shrink did not evict: %d entries, %d bytes", entries, bytes)
	}
}

// TestPutCopiesBeforeDiskWrite is the regression test for the divergence
// bug: Put used to write the caller's slice to disk after taking the
// in-memory copy, so a caller mutating its buffer post-Put could persist
// bytes that differed from the in-memory entry.
func TestPutCopiesBeforeDiskWrite(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("v", "mutated")
	buf := []byte("original-bytes")
	if err := c.Put(key, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	// A fresh cache over the same directory sees only the disk tier.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("entry missing from disk")
	}
	if string(got) != "original-bytes" {
		t.Fatalf("disk tier holds mutated bytes %q; Put must copy before writing", got)
	}
	// And the in-memory tier of the original cache agrees.
	mem, ok := c.Get(key)
	if !ok || string(mem) != "original-bytes" {
		t.Fatalf("memory tier corrupted: %q", mem)
	}
}
