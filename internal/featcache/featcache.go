// Package featcache is a content-addressed, persistent cache for per-file
// analysis results. The paper's §5.3 workflow re-runs the automated
// testbed on every code change; the deep analyses (symbolic execution,
// taint tracking, call-graph profiling) dominate that cost, and their
// results depend only on the bytes of one file. Keying each result by a
// hash of (analysis version, file content) lets an incremental run skip
// every file whose bytes did not change since the last run.
//
// Entries live both in memory (for repeated analyses inside one process)
// and, when a directory is configured, on disk as one small file per
// entry, sharded by the first byte of the key. The in-memory tier is a
// size-capped insertion-order window over the hot set — a long-running
// daemon must not grow its RSS with every file it ever analyzed — while
// the disk tier is durable: an evicted entry is a future disk hit, never a
// recomputation. Disk writes go through the shared durable-write helper
// (temp file, fsync, rename, directory fsync) so neither a crash nor a
// concurrent run can leave a truncated — or, after power loss, empty —
// entry a later run would trust. Unreadable or corrupt entries still read
// as misses (the cache recomputes rather than serving garbage), but
// corruption is counted (CorruptReads) so an operator sees it instead of
// it hiding inside the miss rate.
package featcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/system/durable"
)

// DefaultMemLimit caps the in-memory tier's payload bytes unless
// SetMemLimit overrides it. Entries are small JSON records (~200 bytes),
// so the default holds a few hundred thousand files' enrichments.
const DefaultMemLimit = 64 << 20

// Cache is a concurrency-safe content-addressed store. The zero value is
// unusable; construct with Open or NewMemory.
type Cache struct {
	dir string // "" means memory-only

	mu       sync.RWMutex
	mem      map[string][]byte
	order    []string // mem keys in insertion order; evictions pop the front
	memBytes int64
	maxBytes int64 // <= 0 disables the bound

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
}

// NewMemory returns a process-local cache with no disk backing.
func NewMemory() *Cache {
	return &Cache{mem: map[string][]byte{}, maxBytes: DefaultMemLimit}
}

// Open returns a cache persisted under dir, creating it if needed. An
// empty dir yields a memory-only cache.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return NewMemory(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("featcache: %w", err)
	}
	return &Cache{dir: dir, mem: map[string][]byte{}, maxBytes: DefaultMemLimit}, nil
}

// SetMemLimit bounds the in-memory tier to n payload bytes (n <= 0 removes
// the bound). Shrinking below the current footprint evicts immediately.
func (c *Cache) SetMemLimit(n int64) {
	c.mu.Lock()
	c.maxBytes = n
	c.evictLocked()
	c.mu.Unlock()
}

// MemStats reports the in-memory tier's entry count and payload bytes.
func (c *Cache) MemStats() (entries int, bytes int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem), c.memBytes
}

// Key derives the content address of one analysis result: a SHA-256 over
// the analysis version and each part, length-prefixed so distinct part
// boundaries can never collide.
func Key(version string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(version), version)
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// storeMem inserts data into the bounded memory tier. Keys are content
// addresses, so a re-store of an existing key carries identical bytes and
// keeps its original eviction slot. Callers must hold c.mu.
func (c *Cache) storeMem(key string, data []byte) {
	if old, ok := c.mem[key]; ok {
		c.memBytes += int64(len(data)) - int64(len(old))
		c.mem[key] = data
	} else {
		c.mem[key] = data
		c.memBytes += int64(len(data))
		c.order = append(c.order, key)
	}
	c.evictLocked()
}

// evictLocked pops insertion-order entries until the tier fits the bound.
// Callers must hold c.mu.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.memBytes > c.maxBytes && len(c.order) > 0 {
		k := c.order[0]
		c.order = c.order[1:]
		if d, ok := c.mem[k]; ok {
			c.memBytes -= int64(len(d))
			delete(c.mem, k)
		}
	}
}

// Get returns the cached bytes for key, checking memory first and then
// disk. A disk hit is promoted into memory (subject to the memory bound).
// The returned slice is shared with the cache and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	data, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return data, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.storeMem(key, data)
			c.mu.Unlock()
			c.hits.Add(1)
			return data, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores data under key in memory and, when disk-backed, atomically
// on disk. The cache copies data once up front and both tiers store that
// copy, so a caller mutating its slice after Put can never make the
// durable bytes diverge from the in-memory entry.
func (c *Cache) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	c.mu.Lock()
	c.storeMem(key, cp)
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	if err := durable.WriteFile(p, cp, 0o644); err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	return nil
}

// GetJSON decodes the entry for key into v. Corrupt entries read as
// misses so the caller recomputes, but each such read is counted in
// CorruptReads — silent corruption would otherwise be indistinguishable
// from a cold cache.
func (c *Cache) GetJSON(key string, v any) bool {
	data, ok := c.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		c.corrupt.Add(1)
		return false
	}
	return true
}

// PutJSON stores v as JSON under key.
func (c *Cache) PutJSON(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	return c.Put(key, data)
}

// Stats reports lifetime hit and miss counts for this Cache value.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// CorruptReads reports how many reads decoded to garbage and were served
// as misses. A nonzero value on a healthy host means something else is
// writing into the cache directory (or the durability discipline was
// violated by an older build).
func (c *Cache) CorruptReads() uint64 {
	return c.corrupt.Load()
}
