// Package featcache is a content-addressed, persistent cache for per-file
// analysis results. The paper's §5.3 workflow re-runs the automated
// testbed on every code change; the deep analyses (symbolic execution,
// taint tracking, call-graph profiling) dominate that cost, and their
// results depend only on the bytes of one file. Keying each result by a
// hash of (analysis version, file content) lets an incremental run skip
// every file whose bytes did not change since the last run.
//
// Entries live both in memory (for repeated analyses inside one process)
// and, when a directory is configured, on disk as one small file per
// entry, sharded by the first byte of the key. Disk writes are atomic
// (temp file + rename) so a crashed or concurrent run can never leave a
// truncated entry a later run would trust; unreadable or corrupt entries
// simply read as misses.
package featcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe content-addressed store. The zero value is
// unusable; construct with Open or NewMemory.
type Cache struct {
	dir string // "" means memory-only

	mu  sync.RWMutex
	mem map[string][]byte

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewMemory returns a process-local cache with no disk backing.
func NewMemory() *Cache {
	return &Cache{mem: map[string][]byte{}}
}

// Open returns a cache persisted under dir, creating it if needed. An
// empty dir yields a memory-only cache.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return NewMemory(), nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("featcache: %w", err)
	}
	return &Cache{dir: dir, mem: map[string][]byte{}}, nil
}

// Key derives the content address of one analysis result: a SHA-256 over
// the analysis version and each part, length-prefixed so distinct part
// boundaries can never collide.
func Key(version string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(version), version)
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".json")
}

// Get returns the cached bytes for key, checking memory first and then
// disk. A disk hit is promoted into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.RLock()
	data, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return data, true
	}
	if c.dir != "" {
		if data, err := os.ReadFile(c.path(key)); err == nil {
			c.mu.Lock()
			c.mem[key] = data
			c.mu.Unlock()
			c.hits.Add(1)
			return data, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

// Put stores data under key in memory and, when disk-backed, atomically
// on disk.
func (c *Cache) Put(key string, data []byte) error {
	c.mu.Lock()
	c.mem[key] = append([]byte(nil), data...)
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("featcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("featcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("featcache: %w", err)
	}
	return nil
}

// GetJSON decodes the entry for key into v. Corrupt entries read as
// misses.
func (c *Cache) GetJSON(key string, v any) bool {
	data, ok := c.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false
	}
	return true
}

// PutJSON stores v as JSON under key.
func (c *Cache) PutJSON(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("featcache: %w", err)
	}
	return c.Put(key, data)
}

// Stats reports lifetime hit and miss counts for this Cache value.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
