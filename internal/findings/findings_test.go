package findings

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cwe"
	"repro/internal/lint"
	"repro/internal/metrics"
)

// vulnSrc has a cross-function source->sink flow (recv in main, strcpy in
// the callee), a tainted spawn, and a non-literal printf.
const vulnSrc = `
int copy_into(int dst, int s) {
	strcpy(dst, s);
	return 0;
}
int main(void) {
	int buf = 0;
	int pkt = recv(0);
	copy_into(buf, pkt);
	system(pkt);
	return 0;
}`

func tree(name, src string) *metrics.Tree {
	return metrics.NewTree(name, metrics.File{Path: name + ".c", Content: src})
}

func TestCollectCrossFunctionCWE121(t *testing.T) {
	rep := Collect(tree("vuln", vulnSrc))
	if rep.CountCWE(121) == 0 {
		t.Fatalf("cross-function unchecked copy not tagged CWE-121:\n%s", rep)
	}
	if rep.CountCWE(78) == 0 {
		t.Fatalf("tainted spawn not tagged CWE-78:\n%s", rep)
	}
	// CWE-121 is-a CWE-119, so the parent count includes it.
	if rep.CountCWE(119) < rep.CountCWE(121) {
		t.Fatalf("IsA rollup broken: 119=%d < 121=%d", rep.CountCWE(119), rep.CountCWE(121))
	}
	// The cross-function finding carries the call-chain message.
	found := false
	for _, f := range rep.Findings {
		if f.Rule == "taint-unchecked-copy" && strings.Contains(f.Message, "via 1 call") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no depth-annotated finding:\n%s", rep)
	}
}

func TestAnalyzeFileAggregates(t *testing.T) {
	fa := AnalyzeFile(metrics.File{Path: "vuln.c", Content: vulnSrc})
	if fa.InterTaintSinks < 2 {
		t.Fatalf("InterTaintSinks = %d, want >= 2 (strcpy + system)", fa.InterTaintSinks)
	}
	if fa.TaintMaxChain != 2 {
		t.Fatalf("TaintMaxChain = %d, want 2 (main -> copy_into)", fa.TaintMaxChain)
	}
}

func TestLintFindingsMapped(t *testing.T) {
	// gets() is an unsafe call (CWE-676) and printf(var) a format string
	// issue (CWE-134) even before any taint reasoning.
	rep := Collect(tree("lint", `
int main(void) {
	int buf = 0;
	gets(buf);
	printf(buf);
	return 0;
}`))
	if rep.CountCWE(676) == 0 {
		t.Fatalf("unsafe call not tagged CWE-676:\n%s", rep)
	}
	if rep.CountCWE(134) == 0 {
		t.Fatalf("format string not tagged CWE-134:\n%s", rep)
	}
}

func TestAbsintFindingsMapped(t *testing.T) {
	rep := Collect(tree("abs", `
int main(int n) {
	int arr[8];
	int x = arr[n - 300];
	int y = 10 / n;
	return x + y;
}`))
	if rep.CountCWE(119) == 0 {
		t.Fatalf("possible negative index not tagged CWE-119:\n%s", rep)
	}
	if rep.CountCWE(369) == 0 {
		t.Fatalf("possible div-by-zero not tagged CWE-369:\n%s", rep)
	}
}

func TestUnmappedRulesKept(t *testing.T) {
	rep := Collect(tree("goto", `
int main(void) {
	goto done;
done:
	return 0;
}`))
	// goto-use has no CWE mapping but must stay in the stream.
	found := false
	for _, f := range rep.Findings {
		if f.Rule == "lint/"+string(lint.RuleGotoUse) {
			found = true
			if f.CWE != 0 {
				t.Fatalf("goto-use mapped to CWE-%d, want unmapped", f.CWE)
			}
		}
	}
	if !found {
		t.Fatalf("goto-use finding missing:\n%s", rep)
	}
}

func TestEveryLintRuleHasMapping(t *testing.T) {
	rules := []lint.Rule{
		lint.RuleUnsafeCall, lint.RuleFormatString, lint.RuleAssignInCondition,
		lint.RuleUncheckedAlloc, lint.RuleEmptyCatch, lint.RuleGotoUse,
		lint.RuleDeadStore, lint.RuleDivByZeroRisk, lint.RuleInfiniteLoop,
		lint.RuleMissingReturn, lint.RuleDeepExpression, lint.RuleLongParameterList,
	}
	for _, r := range rules {
		if _, ok := LintRules[r]; !ok {
			t.Errorf("lint rule %q has no findings mapping", r)
		}
	}
}

func TestMappedCWEsExistInTaxonomy(t *testing.T) {
	for sink, r := range SinkRules {
		if _, ok := cwe.Lookup(r.id); !ok {
			t.Errorf("sink %s maps to unknown CWE-%d", sink, r.id)
		}
	}
	for rule, m := range LintRules {
		if m.ID != 0 {
			if _, ok := cwe.Lookup(m.ID); !ok {
				t.Errorf("lint rule %s maps to unknown CWE-%d", rule, m.ID)
			}
		}
	}
	for kind, m := range AbsintRules {
		if _, ok := cwe.Lookup(m.ID); !ok {
			t.Errorf("absint kind %s maps to unknown CWE-%d", kind, m.ID)
		}
	}
}

func TestMinSeverity(t *testing.T) {
	rep := Collect(tree("vuln", vulnSrc))
	high := rep.MinSeverity(SevHigh)
	if high.Total() == 0 || high.Total() >= rep.Total() {
		t.Fatalf("MinSeverity(high): %d of %d", high.Total(), rep.Total())
	}
	for _, f := range high.Findings {
		if f.Severity < SevHigh {
			t.Fatalf("low-severity finding survived the filter: %+v", f)
		}
	}
}

func TestCollectDeterministic(t *testing.T) {
	first := Collect(tree("vuln", vulnSrc))
	for i := 0; i < 10; i++ {
		again := Collect(tree("vuln", vulnSrc))
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("findings differ across runs")
		}
	}
	if first.String() != Collect(tree("vuln", vulnSrc)).String() {
		t.Fatalf("rendered report differs across runs")
	}
}

func TestNonParsingFileTokenRulesOnly(t *testing.T) {
	// A file that does not parse as MiniC still yields token-level lint
	// findings, and no deep findings.
	fa := AnalyzeFile(metrics.File{Path: "broken.c", Content: "int main( { gets(x); \n"})
	if fa.InterTaintSinks != 0 || fa.TaintMaxChain != 0 {
		t.Fatalf("deep aggregates on unparseable file: %+v", fa)
	}
	found := false
	for _, f := range fa.Findings {
		if f.Rule == "lint/"+string(lint.RuleUnsafeCall) {
			found = true
		}
	}
	if !found {
		t.Fatalf("token lint findings missing on unparseable file: %+v", fa.Findings)
	}
}
