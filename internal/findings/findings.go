// Package findings is the unified, CWE-mapped security-findings layer: one
// Finding stream merging the interprocedural taint engine, the lint rule
// battery, and the abstract interpreter's fault warnings, each tagged with
// the weakness class it evidences. The per-CWE counts are what the
// per-hypothesis classifiers ("does this app contain CWE-121?") consume as
// features — the per-weakness-class signal Modena-style CWE classification
// needs, which raw warning totals cannot provide.
package findings

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/absint"
	"repro/internal/cwe"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/minic"
)

// Severity ranks findings for triage.
type Severity int

// Severity levels, lowest first.
const (
	SevInfo Severity = iota
	SevLow
	SevMedium
	SevHigh
	SevCritical
)

// MarshalJSON renders the level by name, so JSON reports read
// "high" rather than an opaque ordinal.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the named form MarshalJSON emits (and, for
// tolerance, the raw ordinal), so JSON reports round-trip through typed
// clients.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		var n int
		if err2 := json.Unmarshal(data, &n); err2 == nil {
			*s = Severity(n)
			return nil
		}
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses a level name as rendered by String; the empty
// string parses as SevInfo (report everything).
func ParseSeverity(name string) (Severity, error) {
	switch strings.ToLower(name) {
	case "", "info":
		return SevInfo, nil
	case "low":
		return SevLow, nil
	case "medium":
		return SevMedium, nil
	case "high":
		return SevHigh, nil
	case "critical":
		return SevCritical, nil
	default:
		return 0, fmt.Errorf("findings: unknown severity %q", name)
	}
}

// String names the level.
func (s Severity) String() string {
	switch s {
	case SevLow:
		return "low"
	case SevMedium:
		return "medium"
	case SevHigh:
		return "high"
	case SevCritical:
		return "critical"
	default:
		return "info"
	}
}

// Finding is one piece of security evidence, normalized across analyzers.
type Finding struct {
	// Rule identifies the producing check (e.g. "taint-unchecked-copy",
	// "lint/unsafe-call", "absint/possible-div-by-zero").
	Rule string
	// CWE is the mapped weakness class, 0 when the rule is a pure code-
	// quality signal with no CWE assignment.
	CWE      cwe.ID
	File     string
	Line     int
	Severity Severity
	Message  string
}

// sinkRule classifies a taint sink into (rule, CWE, severity).
type sinkRule struct {
	rule string
	id   cwe.ID
	sev  Severity
}

// SinkRules maps the default taint-sink table to weakness classes: unchecked
// copies evidence stack smashing (CWE-121), spawning with attacker data
// evidences OS command injection (CWE-78), attacker-controlled format
// strings evidence CWE-134.
var SinkRules = map[string]sinkRule{
	"strcpy":    {"taint-unchecked-copy", 121, SevHigh},
	"strcat":    {"taint-unchecked-copy", 121, SevHigh},
	"sprintf":   {"taint-unchecked-copy", 121, SevHigh},
	"memcpy":    {"taint-unchecked-copy", 121, SevHigh},
	"gets":      {"taint-unchecked-copy", 121, SevHigh},
	"system":    {"taint-spawn", 78, SevCritical},
	"exec":      {"taint-spawn", 78, SevCritical},
	"execve":    {"taint-spawn", 78, SevCritical},
	"popen":     {"taint-spawn", 78, SevCritical},
	"printf":    {"taint-format", 134, SevHigh},
	"sql_query": {"taint-sql", 89, SevCritical},
	"send":      {"taint-exfil", 200, SevMedium},
	"write_log": {"taint-exfil", 200, SevMedium},
}

// LintRules maps each lint rule to its weakness class; rules that are code
// smells rather than weaknesses map to CWE 0 and stay in the stream as
// low-severity evidence.
var LintRules = map[lint.Rule]struct {
	ID  cwe.ID
	Sev Severity
}{
	lint.RuleUnsafeCall:        {676, SevMedium},
	lint.RuleFormatString:      {134, SevHigh},
	lint.RuleUncheckedAlloc:    {476, SevMedium},
	lint.RuleDivByZeroRisk:     {369, SevMedium},
	lint.RuleInfiniteLoop:      {835, SevMedium},
	lint.RuleAssignInCondition: {0, SevLow},
	lint.RuleEmptyCatch:        {0, SevLow},
	lint.RuleMissingReturn:     {0, SevLow},
	lint.RuleGotoUse:           {0, SevInfo},
	lint.RuleDeadStore:         {0, SevInfo},
	lint.RuleDeepExpression:    {0, SevInfo},
	lint.RuleLongParameterList: {0, SevInfo},
}

// AbsintRules maps abstract-interpretation warning kinds to weakness
// classes: a possible negative index is an out-of-bounds access (CWE-119
// family), possible division by zero is CWE-369.
var AbsintRules = map[string]struct {
	ID  cwe.ID
	Sev Severity
}{
	"possible-div-by-zero":    {369, SevMedium},
	"possible-mod-by-zero":    {369, SevMedium},
	"possible-negative-index": {119, SevHigh},
}

// FileAnalysis is the findings view of one file, plus the two whole-program
// taint aggregates the feature vector consumes directly.
type FileAnalysis struct {
	Findings []Finding
	// InterTaintSinks is the interprocedural taint finding count
	// (the "interproc_tainted_sinks" feature contribution).
	InterTaintSinks int
	// TaintMaxChain is the number of functions on the longest
	// source-to-sink call chain ("taint_path_depth_max" contribution).
	TaintMaxChain int
}

// AnalyzeFile runs every findings producer over one file. The token-level
// lint rules apply to any language; the taint engine and abstract
// interpreter additionally require the file to parse as MiniC. The result
// is deterministic in the file bytes and sorted by (line, rule, message).
func AnalyzeFile(f metrics.File) FileAnalysis {
	var fa FileAnalysis
	if f.Language == lang.Unknown {
		f.Language = lang.FromPath(f.Path)
	}

	// Lint battery (token rules always, AST rules when MiniC-parseable).
	rep := lint.Check(metrics.NewTree(f.Path, f))
	for _, w := range rep.Warnings {
		m := LintRules[w.Rule]
		fa.Findings = append(fa.Findings, Finding{
			Rule:     "lint/" + string(w.Rule),
			CWE:      m.ID,
			File:     f.Path,
			Line:     w.Line,
			Severity: m.Sev,
			Message:  w.Msg,
		})
	}

	if f.Language == lang.MiniC || f.Language == lang.C {
		if prog, err := minic.Parse(f.Content); err == nil {
			if lowered, err := ir.Lower(prog); err == nil {
				fa.addDeep(f.Path, lowered)
			}
		}
	}

	sort.SliceStable(fa.Findings, func(i, j int) bool {
		a, b := fa.Findings[i], fa.Findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return fa
}

// addDeep appends the IR-based producers: interprocedural taint and the
// abstract interpreter.
func (fa *FileAnalysis) addDeep(path string, lowered *ir.Program) {
	taint := dataflow.AnalyzeProgramTaint(lowered, dataflow.DefaultInterConfig())
	fa.InterTaintSinks = len(taint.Findings)
	fa.TaintMaxChain = taint.MaxChain
	for _, tf := range taint.Findings {
		r, ok := SinkRules[tf.Sink]
		if !ok {
			r = sinkRule{rule: "taint-sink", id: 0, sev: SevMedium}
		}
		msg := fmt.Sprintf("tainted data reaches %s in %s", tf.Sink, tf.Func)
		if tf.Depth > 0 {
			msg = fmt.Sprintf("tainted data reaches %s via %d call(s) from %s", tf.Sink, tf.Depth, tf.Func)
		}
		fa.Findings = append(fa.Findings, Finding{
			Rule:     r.rule,
			CWE:      r.id,
			File:     path,
			Line:     tf.Line,
			Severity: r.sev,
			Message:  msg,
		})
	}

	acfg := absint.DefaultConfig()
	for _, fn := range lowered.Funcs {
		for _, w := range absint.Analyze(fn, acfg).Warnings {
			m, ok := AbsintRules[w.Kind]
			if !ok {
				m.Sev = SevLow
			}
			fa.Findings = append(fa.Findings, Finding{
				Rule:     "absint/" + w.Kind,
				CWE:      m.ID,
				File:     path,
				Line:     w.Line,
				Severity: m.Sev,
				Message:  w.Kind + " in " + fn.Name,
			})
		}
	}
}

// Report is the tree-level findings stream.
type Report struct {
	Findings []Finding
}

// Collect runs AnalyzeFile over every file of the tree and merges the
// streams, sorted by (file, line, rule, message).
func Collect(t *metrics.Tree) *Report {
	rep := &Report{}
	for _, f := range t.Files {
		rep.Findings = append(rep.Findings, AnalyzeFile(f).Findings...)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return rep
}

// Total returns the finding count.
func (r *Report) Total() int { return len(r.Findings) }

// CountCWE counts findings tagged as id or one of its descendants (so
// CountCWE(119) includes CWE-121 evidence).
func (r *Report) CountCWE(id cwe.ID) int {
	n := 0
	for _, f := range r.Findings {
		if f.CWE != 0 && cwe.IsA(f.CWE, id) {
			n++
		}
	}
	return n
}

// CountsByCWE tallies findings per mapped weakness, unmapped ones under 0.
func (r *Report) CountsByCWE() map[cwe.ID]int {
	out := map[cwe.ID]int{}
	for _, f := range r.Findings {
		out[f.CWE]++
	}
	return out
}

// MinSeverity returns a copy containing only findings at or above sev.
func (r *Report) MinSeverity(sev Severity) *Report {
	out := &Report{}
	for _, f := range r.Findings {
		if f.Severity >= sev {
			out.Findings = append(out.Findings, f)
		}
	}
	return out
}

// String renders the report compiler-style, one finding per line, followed
// by a per-CWE summary.
func (r *Report) String() string {
	var sb strings.Builder
	for _, f := range r.Findings {
		tag := "-"
		if f.CWE != 0 {
			tag = fmt.Sprintf("CWE-%d", f.CWE)
		}
		fmt.Fprintf(&sb, "%s:%d: %-8s %-8s [%s] %s\n",
			f.File, f.Line, f.Severity, tag, f.Rule, f.Message)
	}
	counts := r.CountsByCWE()
	ids := make([]cwe.ID, 0, len(counts))
	for id := range counts {
		if id != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > 0 {
		fmt.Fprintf(&sb, "-- %d findings", r.Total())
		if n := counts[0]; n > 0 {
			fmt.Fprintf(&sb, " (%d unmapped)", n)
		}
		sb.WriteString("\n")
		for _, id := range ids {
			name := "?"
			if e, ok := cwe.Lookup(id); ok {
				name = e.Name
			}
			fmt.Fprintf(&sb, "   %4d x CWE-%d %s\n", counts[id], id, name)
		}
	} else if r.Total() > 0 {
		fmt.Fprintf(&sb, "-- %d findings (all unmapped)\n", r.Total())
	}
	return sb.String()
}
