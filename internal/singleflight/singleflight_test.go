package singleflight

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestExactlyOneExecution is the coalescing contract: N concurrent callers
// of one key produce exactly one execution, every caller sees the same
// value, and exactly one caller reports shared=false.
func TestExactlyOneExecution(t *testing.T) {
	var g Group[int]
	const n = 32
	var execs atomic.Int64
	gate := make(chan struct{})

	vals := make([]int, n)
	shareds := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() int {
				execs.Add(1)
				<-gate // hold the execution open until every caller has arrived
				return 42
			})
			if err != nil {
				t.Errorf("caller %d: unexpected error: %v", i, err)
			}
			vals[i], shareds[i] = v, shared
		}(i)
	}
	// Wait until all stragglers are either the leader or parked on done.
	deadline := time.Now().Add(5 * time.Second)
	for g.Shared() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d callers coalesced", g.Shared(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, vals[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report shared=false, want exactly 1", leaders)
	}
	if g.Leads() != 1 || g.Shared() != n-1 {
		t.Errorf("counters: leads=%d shared=%d, want 1 and %d", g.Leads(), g.Shared(), n-1)
	}
}

// TestKeyForgottenAfterCompletion: Do is a dedup, not a cache — a caller
// arriving after the leader finished runs its own execution.
func TestKeyForgottenAfterCompletion(t *testing.T) {
	var g Group[int]
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() int {
			return int(execs.Add(1))
		})
		if err != nil || shared {
			t.Fatalf("sequential call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
		if v != i+1 {
			t.Fatalf("sequential call %d got stale value %d", i, v)
		}
	}
	if execs.Load() != 3 {
		t.Fatalf("sequential calls executed %d times, want 3", execs.Load())
	}
}

// TestDistinctKeysDoNotCoalesce.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), k, func() string { return k })
			if err != nil || shared || v != k {
				t.Errorf("key %s: v=%q shared=%v err=%v", k, v, shared, err)
			}
		}(k)
	}
	wg.Wait()
	if g.Leads() != 3 || g.Shared() != 0 {
		t.Errorf("leads=%d shared=%d, want 3 and 0", g.Leads(), g.Shared())
	}
}

// TestFollowerContextExpiry: an impatient follower gets its context error;
// the leader and a patient follower are unaffected.
func TestFollowerContextExpiry(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	leaderDone := make(chan int)
	go func() {
		v, _, _ := g.Do(context.Background(), "k", func() int {
			<-gate
			return 7
		})
		leaderDone <- v
	}()
	// Wait for the leader to register.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		_, inFlight := g.calls["k"]
		g.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never registered")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", func() int { t.Error("follower must not execute fn"); return 0 })
	if !shared || err == nil {
		t.Fatalf("expired follower: shared=%v err=%v, want shared=true with a context error", shared, err)
	}

	close(gate)
	if v := <-leaderDone; v != 7 {
		t.Fatalf("leader got %d, want 7", v)
	}
}
