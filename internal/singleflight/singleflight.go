// Package singleflight coalesces identical in-flight work: when N
// goroutines ask for the same key concurrently, exactly one (the leader)
// runs the function and the other N-1 (the followers) adopt its result.
// This is the fleet-serving dedup primitive behind both layers of request
// coalescing in secmetricd — per-file deep extraction keyed by the
// feature-cache content hash, and whole-request coalescing keyed by a
// canonical tree digest.
//
// Unlike golang.org/x/sync/singleflight, Do's wait is context-bounded per
// follower: a follower whose context expires abandons the wait with the
// context's error while the leader (and any patient followers) continue
// unaffected. Keys are forgotten the moment the leader finishes, so a
// completed result is never served to a later caller — coalescing dedups
// concurrency, it is not a cache.
package singleflight

import (
	"context"
	"sync"
	"sync/atomic"
)

// call is one in-flight execution. done is closed after val is set.
type call[V any] struct {
	done chan struct{}
	val  V
}

// Group coalesces concurrent Do calls by key. The zero value is ready to
// use. A Group must not be copied after first use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]

	leads  atomic.Uint64
	shared atomic.Uint64
}

// Do returns fn's result for key, running fn exactly once among concurrent
// callers of the same key. shared is true when this call adopted another
// caller's execution instead of running fn itself.
//
// ctx bounds only the follower's wait: the leader always runs fn to
// completion (fn must honor its own cancellation internally if it wants
// any), so one impatient caller can never poison the result the patient
// ones are waiting for. A follower whose ctx ends before the leader
// finishes returns the zero V, shared=true, and ctx's error.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() V) (v V, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.shared.Add(1)
		select {
		case <-c.done:
			return c.val, true, nil
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	if g.calls == nil {
		g.calls = map[string]*call[V]{}
	}
	g.calls[key] = c
	g.mu.Unlock()

	g.leads.Add(1)
	c.val = fn()

	// Forget the key before releasing the followers: a caller arriving
	// after this point starts a fresh execution rather than reading a
	// completed one, which keeps Do a dedup, not a cache.
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, nil
}

// Leads counts executions this group actually ran.
func (g *Group[V]) Leads() uint64 { return g.leads.Load() }

// Shared counts calls that coalesced onto another caller's execution
// (including followers that gave up waiting).
func (g *Group[V]) Shared() uint64 { return g.shared.Load() }
