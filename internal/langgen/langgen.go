// Package langgen deterministically generates synthetic source trees. It
// substitutes for the 164 real open-source codebases the paper measures:
// the static-analysis stack needs actual source text to chew on, and the
// generator gives us source whose size, branching, call density, comment
// ratio, and injected-vulnerability density are controllable and seeded.
package langgen

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Spec controls generation.
type Spec struct {
	Language     lang.Language
	Files        int
	FuncsPerFile int
	// StmtsPerFunc is the mean statement count per function body.
	StmtsPerFunc int
	BranchProb   float64 // probability a statement is an if
	LoopProb     float64 // probability a statement is a loop
	CallProb     float64 // probability a statement is a call
	CommentRate  float64 // probability of a comment line before a statement
	// VulnDensity is the probability that a function receives an injected
	// vulnerable pattern (unchecked input flowing into a dangerous sink).
	VulnDensity float64
	Seed        uint64
}

// DefaultSpec returns a reasonable mid-size MiniC spec.
func DefaultSpec() Spec {
	return Spec{
		Language:     lang.MiniC,
		Files:        4,
		FuncsPerFile: 6,
		StmtsPerFunc: 10,
		BranchProb:   0.25,
		LoopProb:     0.15,
		CallProb:     0.15,
		CommentRate:  0.2,
		VulnDensity:  0.2,
		Seed:         1,
	}
}

// Generate produces the tree described by spec. The same spec always
// produces byte-identical output.
func Generate(spec Spec) *metrics.Tree {
	tree, _ := GenerateLabeled(spec)
	return tree
}

// GenerateLabeled also returns, per file, whether a vulnerability pattern
// was injected — the ground-truth labels for the Shin et al. style
// vulnerable-file prediction experiment.
func GenerateLabeled(spec Spec) (*metrics.Tree, []bool) {
	tree, fileLabels, _ := GenerateFuncLabeled(spec)
	return tree, fileLabels
}

// GenerateFuncLabeled additionally returns function-level ground truth: for
// each generated function name, whether the vulnerable pattern was injected
// into that function's body — the labels the function-level ranking
// replication scores against.
func GenerateFuncLabeled(spec Spec) (*metrics.Tree, []bool, map[string]bool) {
	rng := stats.NewRNG(spec.Seed ^ 0xc0de)
	g := &generator{spec: spec, rng: rng, funcVulnerable: map[string]bool{}}
	tree := &metrics.Tree{Name: fmt.Sprintf("synth-%d", spec.Seed)}
	for fi := 0; fi < spec.Files; fi++ {
		name := fmt.Sprintf("src/file%03d%s", fi, spec.Language.Extension())
		content, vulnerable := g.genFile(fi)
		tree.Files = append(tree.Files, metrics.File{
			Path:     name,
			Language: spec.Language,
			Content:  content,
		})
		g.fileVulnerable = append(g.fileVulnerable, vulnerable)
	}
	return tree, g.fileVulnerable, g.funcVulnerable
}

type generator struct {
	spec           Spec
	rng            *stats.RNG
	fileVulnerable []bool
	funcVulnerable map[string]bool
	funcCounter    int
	// fileFuncs are the function ids defined earlier in the current file,
	// available as intra-file call targets (keeps the call graph acyclic).
	fileFuncs []int
}

var comments = []string{
	"update the accumulator", "validate the inputs", "main processing loop",
	"corner case handling", "legacy workaround, do not touch",
	"TODO revisit this bound", "fast path", "slow path fallback",
	"see issue tracker for context", "bounds were checked by the caller",
	"invariant: value stays non-negative", "mirrors the spec wording",
}

var sinkCalls = []string{"strcpy", "sprintf", "system", "memcpy"}
var sourceCalls = []string{"read_input", "recv", "getenv", "fgets"}

func (g *generator) genFile(fileIdx int) (string, bool) {
	switch {
	case g.spec.Language == lang.Python:
		return g.genPythonFile(fileIdx)
	case g.spec.Language == lang.Java:
		return g.genJavaFile(fileIdx)
	default:
		return g.genCFile(fileIdx)
	}
}

// genCFile emits MiniC (also valid for C token analysis).
func (g *generator) genCFile(fileIdx int) (string, bool) {
	var sb strings.Builder
	vulnerable := false
	if g.spec.Language == lang.C || g.spec.Language == lang.CPP {
		sb.WriteString("#include <stdio.h>\n#include <stdlib.h>\n\n")
	}
	fmt.Fprintf(&sb, "// module %d: generated translation unit\n\n", fileIdx)
	g.fileFuncs = g.fileFuncs[:0]
	for fn := 0; fn < g.spec.FuncsPerFile; fn++ {
		g.funcCounter++
		inject := g.rng.Bool(g.spec.VulnDensity)
		if inject {
			vulnerable = true
		}
		g.funcVulnerable[fmt.Sprintf("fn_%04d", g.funcCounter)] = inject
		g.genCFunc(&sb, g.funcCounter, inject)
		g.fileFuncs = append(g.fileFuncs, g.funcCounter)
		sb.WriteString("\n")
	}
	return sb.String(), vulnerable
}

func (g *generator) genCFunc(sb *strings.Builder, id int, injectVuln bool) {
	params := g.rng.IntRange(0, 3)
	var plist []string
	var names []string
	for p := 0; p < params; p++ {
		n := fmt.Sprintf("p%d", p)
		plist = append(plist, "int "+n)
		names = append(names, n)
	}
	if len(plist) == 0 {
		plist = append(plist, "void")
	}
	fmt.Fprintf(sb, "int fn_%04d(%s) {\n", id, strings.Join(plist, ", "))
	// Local declarations.
	locals := g.rng.IntRange(1, 4)
	for l := 0; l < locals; l++ {
		n := fmt.Sprintf("v%d", l)
		fmt.Fprintf(sb, "\tint %s = %d;\n", n, g.rng.IntRange(0, 100))
		names = append(names, n)
	}
	if injectVuln {
		// The canonical injected pattern: unchecked input into a sink.
		src := sourceCalls[g.rng.Intn(len(sourceCalls))]
		sink := sinkCalls[g.rng.Intn(len(sinkCalls))]
		fmt.Fprintf(sb, "\tint tainted = %s();\n", src)
		fmt.Fprintf(sb, "\t%s(tainted, %s);\n", sink, names[g.rng.Intn(len(names))])
		names = append(names, "tainted")
	}
	nStmts := g.rng.IntRange(1, 2*g.spec.StmtsPerFunc)
	for s := 0; s < nStmts; s++ {
		g.genCStmt(sb, names, 1, 2)
	}
	fmt.Fprintf(sb, "\treturn %s;\n}\n", g.expr(names, 1))
}

// genCStmt emits one statement at the given indent, recursing up to depth.
func (g *generator) genCStmt(sb *strings.Builder, names []string, indent, depth int) {
	tabs := strings.Repeat("\t", indent)
	if g.rng.Bool(g.spec.CommentRate) {
		fmt.Fprintf(sb, "%s// %s\n", tabs, comments[g.rng.Intn(len(comments))])
	}
	r := g.rng.Float64()
	switch {
	case depth > 0 && r < g.spec.BranchProb:
		fmt.Fprintf(sb, "%sif (%s %s %d) {\n", tabs, g.pick(names), g.cmp(), g.rng.IntRange(0, 50))
		inner := g.rng.IntRange(1, 3)
		for i := 0; i < inner; i++ {
			g.genCStmt(sb, names, indent+1, depth-1)
		}
		if g.rng.Bool(0.4) {
			fmt.Fprintf(sb, "%s} else {\n", tabs)
			g.genCStmt(sb, names, indent+1, depth-1)
		}
		fmt.Fprintf(sb, "%s}\n", tabs)
	case depth > 0 && r < g.spec.BranchProb+g.spec.LoopProb:
		v := g.pick(names)
		fmt.Fprintf(sb, "%swhile (%s > 0) {\n", tabs, v)
		g.genCStmt(sb, names, indent+1, depth-1)
		fmt.Fprintf(sb, "%s%s = %s - 1;\n", tabs+"\t", v, v)
		fmt.Fprintf(sb, "%s}\n", tabs)
	case r < g.spec.BranchProb+g.spec.LoopProb+g.spec.CallProb:
		// Half the calls target earlier functions in the file (keeping the
		// call graph acyclic), half go to an external logger.
		if len(g.fileFuncs) > 0 && g.rng.Bool(0.5) {
			callee := g.fileFuncs[g.rng.Intn(len(g.fileFuncs))]
			fmt.Fprintf(sb, "%s%s = fn_%04d(%s);\n", tabs, g.pick(names), callee, g.expr(names, 0))
		} else {
			fmt.Fprintf(sb, "%slog_event(%s);\n", tabs, g.expr(names, 0))
		}
	default:
		fmt.Fprintf(sb, "%s%s = %s;\n", tabs, g.pick(names), g.expr(names, 1))
	}
}

func (g *generator) pick(names []string) string {
	return names[g.rng.Intn(len(names))]
}

func (g *generator) cmp() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return ops[g.rng.Intn(len(ops))]
}

// expr builds a small arithmetic expression over the names.
func (g *generator) expr(names []string, depth int) string {
	if depth <= 0 || g.rng.Bool(0.4) {
		if g.rng.Bool(0.5) {
			return g.pick(names)
		}
		return fmt.Sprintf("%d", g.rng.IntRange(0, 99))
	}
	ops := []string{"+", "-", "*"}
	return fmt.Sprintf("%s %s %s", g.expr(names, depth-1),
		ops[g.rng.Intn(len(ops))], g.expr(names, depth-1))
}

// genPythonFile emits Python-flavoured source (token metrics only).
func (g *generator) genPythonFile(fileIdx int) (string, bool) {
	var sb strings.Builder
	vulnerable := false
	fmt.Fprintf(&sb, "# module %d: generated\n\n", fileIdx)
	for fn := 0; fn < g.spec.FuncsPerFile; fn++ {
		g.funcCounter++
		inject := g.rng.Bool(g.spec.VulnDensity)
		if inject {
			vulnerable = true
		}
		g.funcVulnerable[fmt.Sprintf("fn_%04d", g.funcCounter)] = inject
		params := g.rng.IntRange(0, 3)
		var plist []string
		names := []string{}
		for p := 0; p < params; p++ {
			n := fmt.Sprintf("p%d", p)
			plist = append(plist, n)
			names = append(names, n)
		}
		fmt.Fprintf(&sb, "def fn_%04d(%s):\n", g.funcCounter, strings.Join(plist, ", "))
		names = append(names, "acc")
		fmt.Fprintf(&sb, "    acc = %d\n", g.rng.IntRange(0, 100))
		if inject {
			sb.WriteString("    data = read_input()\n")
			sb.WriteString("    system(data)\n")
			names = append(names, "data")
		}
		n := g.rng.IntRange(1, g.spec.StmtsPerFunc)
		for s := 0; s < n; s++ {
			if g.rng.Bool(g.spec.CommentRate) {
				fmt.Fprintf(&sb, "    # %s\n", comments[g.rng.Intn(len(comments))])
			}
			switch {
			case g.rng.Bool(g.spec.BranchProb):
				fmt.Fprintf(&sb, "    if %s %s %d:\n        acc = acc + 1\n",
					g.pick(names), g.cmp(), g.rng.IntRange(0, 50))
			case g.rng.Bool(g.spec.LoopProb):
				fmt.Fprintf(&sb, "    for i in range(%d):\n        acc = acc + i\n", g.rng.IntRange(1, 9))
			default:
				fmt.Fprintf(&sb, "    %s = %s\n", g.pick(names), g.expr(names, 1))
			}
		}
		sb.WriteString("    return acc\n\n")
	}
	return sb.String(), vulnerable
}

// genJavaFile emits Java-flavoured source (token metrics only).
func (g *generator) genJavaFile(fileIdx int) (string, bool) {
	var sb strings.Builder
	vulnerable := false
	fmt.Fprintf(&sb, "// module %d: generated\npublic class Module%03d {\n", fileIdx, fileIdx)
	for fn := 0; fn < g.spec.FuncsPerFile; fn++ {
		g.funcCounter++
		inject := g.rng.Bool(g.spec.VulnDensity)
		if inject {
			vulnerable = true
		}
		g.funcVulnerable[fmt.Sprintf("fn%04d", g.funcCounter)] = inject
		names := []string{"acc"}
		fmt.Fprintf(&sb, "\tpublic int fn%04d(int p0) {\n\t\tint acc = %d;\n", g.funcCounter, g.rng.IntRange(0, 100))
		if inject {
			sb.WriteString("\t\tString data = recv();\n\t\texec(data);\n")
		}
		n := g.rng.IntRange(1, g.spec.StmtsPerFunc)
		for s := 0; s < n; s++ {
			if g.rng.Bool(g.spec.CommentRate) {
				fmt.Fprintf(&sb, "\t\t// %s\n", comments[g.rng.Intn(len(comments))])
			}
			if g.rng.Bool(g.spec.BranchProb) {
				fmt.Fprintf(&sb, "\t\tif (p0 %s %d) { acc += 1; }\n", g.cmp(), g.rng.IntRange(0, 50))
			} else {
				fmt.Fprintf(&sb, "\t\tacc = %s;\n", g.expr(names, 1))
			}
		}
		sb.WriteString("\t\treturn acc;\n\t}\n")
	}
	sb.WriteString("}\n")
	return sb.String(), vulnerable
}
