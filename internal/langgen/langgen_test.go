package langgen

import (
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/minic"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := DefaultSpec()
	a := Generate(spec)
	b := Generate(spec)
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Content != b.Files[i].Content {
			t.Fatalf("file %d differs between runs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	specA := DefaultSpec()
	specB := DefaultSpec()
	specB.Seed = 999
	a := Generate(specA)
	b := Generate(specB)
	if a.Files[0].Content == b.Files[0].Content {
		t.Fatal("different seeds produced identical output")
	}
}

func TestGeneratedMiniCParses(t *testing.T) {
	spec := DefaultSpec()
	spec.Files = 6
	spec.FuncsPerFile = 8
	tree := Generate(spec)
	for _, f := range tree.Files {
		if _, err := minic.Parse(f.Content); err != nil {
			t.Fatalf("%s does not parse: %v\n----\n%s", f.Path, err, f.Content)
		}
	}
}

func TestGeneratedMiniCLowersAndAnalyzes(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 7
	tree := Generate(spec)
	for _, f := range tree.Files {
		prog, err := minic.Parse(f.Content)
		if err != nil {
			t.Fatal(err)
		}
		lowered, err := ir.Lower(prog)
		if err != nil {
			t.Fatalf("%s does not lower: %v", f.Path, err)
		}
		for _, fn := range lowered.Funcs {
			dataflow.ReachingDefinitions(fn) // must not panic or loop
		}
	}
}

func TestVulnInjectionDetectable(t *testing.T) {
	spec := DefaultSpec()
	spec.VulnDensity = 1.0 // every function gets the pattern
	spec.Files = 2
	tree := Generate(spec)
	// The injected source->sink flow must be visible to the taint analysis.
	total := 0
	for _, f := range tree.Files {
		prog, err := minic.Parse(f.Content)
		if err != nil {
			t.Fatal(err)
		}
		lowered, err := ir.Lower(prog)
		if err != nil {
			t.Fatal(err)
		}
		total += dataflow.CountTaintedSinks(lowered)
	}
	if total < spec.Files*spec.FuncsPerFile {
		t.Fatalf("tainted sinks = %d, want >= %d", total, spec.Files*spec.FuncsPerFile)
	}
}

func TestVulnDensityZero(t *testing.T) {
	spec := DefaultSpec()
	spec.VulnDensity = 0
	_, labels := GenerateLabeled(spec)
	for i, v := range labels {
		if v {
			t.Fatalf("file %d labeled vulnerable at density 0", i)
		}
	}
}

func TestLabelsMatchLintFindings(t *testing.T) {
	spec := DefaultSpec()
	spec.Seed = 21
	spec.VulnDensity = 0.5
	tree, labels := GenerateLabeled(spec)
	for i, f := range tree.Files {
		rep := lint.Check(metrics.NewTree("one", f))
		hasUnsafe := rep.Count(lint.RuleUnsafeCall) > 0
		// Injected vulns use strcpy/sprintf/memcpy/system; system is not an
		// "unsafe call" lint rule, so only check the forward direction:
		// a file with unsafe-call findings must be labeled vulnerable.
		if hasUnsafe && !labels[i] {
			t.Fatalf("file %d has unsafe calls but is labeled clean", i)
		}
	}
}

func TestPythonGeneration(t *testing.T) {
	spec := DefaultSpec()
	spec.Language = lang.Python
	tree := Generate(spec)
	if len(tree.Files) != spec.Files {
		t.Fatalf("files = %d", len(tree.Files))
	}
	f := tree.Files[0]
	if !strings.HasSuffix(f.Path, ".py") {
		t.Fatalf("path = %s", f.Path)
	}
	fns := metrics.Cyclomatic(f)
	if len(fns) != spec.FuncsPerFile {
		t.Fatalf("functions detected = %d, want %d", len(fns), spec.FuncsPerFile)
	}
}

func TestJavaGeneration(t *testing.T) {
	spec := DefaultSpec()
	spec.Language = lang.Java
	tree := Generate(spec)
	f := tree.Files[0]
	if !strings.HasSuffix(f.Path, ".java") {
		t.Fatalf("path = %s", f.Path)
	}
	fns := metrics.Cyclomatic(f)
	if len(fns) != spec.FuncsPerFile {
		t.Fatalf("functions detected = %d, want %d", len(fns), spec.FuncsPerFile)
	}
}

func TestGeneratedSizeScalesWithSpec(t *testing.T) {
	small := DefaultSpec()
	small.Files, small.FuncsPerFile, small.StmtsPerFunc = 1, 2, 3
	big := DefaultSpec()
	big.Files, big.FuncsPerFile, big.StmtsPerFunc = 4, 10, 20
	smallLoC, _ := metrics.CountTree(Generate(small))
	bigLoC, _ := metrics.CountTree(Generate(big))
	if bigLoC.Code <= smallLoC.Code*2 {
		t.Fatalf("size does not scale: %d vs %d", smallLoC.Code, bigLoC.Code)
	}
}

func TestCommentRateProducesComments(t *testing.T) {
	spec := DefaultSpec()
	spec.CommentRate = 0.9
	spec.Language = lang.C
	tree := Generate(spec)
	total, _ := metrics.CountTree(tree)
	if total.Comment == 0 {
		t.Fatal("no comments generated at rate 0.9")
	}
}

func TestFuncLabels(t *testing.T) {
	spec := DefaultSpec()
	spec.Files, spec.FuncsPerFile = 4, 6
	spec.VulnDensity = 0.4
	tree, fileLabels, funcLabels := GenerateFuncLabeled(spec)
	if len(funcLabels) != spec.Files*spec.FuncsPerFile {
		t.Fatalf("labels for %d functions, want %d", len(funcLabels), spec.Files*spec.FuncsPerFile)
	}
	// File labels are the OR of their functions' labels; function names are
	// globally unique and partition into files by counter ranges.
	anyVuln := false
	for _, v := range funcLabels {
		if v {
			anyVuln = true
		}
	}
	if !anyVuln {
		t.Fatal("no function labeled vulnerable at density 0.4")
	}
	// Every labeled-vulnerable function's body must actually contain the
	// injected pattern.
	all := ""
	for _, f := range tree.Files {
		all += f.Content
	}
	for name, v := range funcLabels {
		if v && !strings.Contains(all, name) {
			t.Errorf("labeled function %s not present in generated source", name)
		}
	}
	// GenerateLabeled stays consistent with the func-labeled variant.
	_, fileLabels2 := GenerateLabeled(spec)
	if len(fileLabels) != len(fileLabels2) {
		t.Fatalf("file label lengths differ: %d vs %d", len(fileLabels), len(fileLabels2))
	}
	for i := range fileLabels {
		if fileLabels[i] != fileLabels2[i] {
			t.Errorf("file %d label differs between Labeled and FuncLabeled", i)
		}
	}
}
