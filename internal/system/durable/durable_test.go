package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := WriteFile(p, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(p, []byte("new contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new contents" {
		t.Fatalf("read back %q", got)
	}
	fi, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("mode = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileToErrorLeavesDestination(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := WriteFile(p, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("serializer failed")
	err := WriteFileTo(p, 0o644, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the serializer error", err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "keep me" {
		t.Fatalf("destination clobbered: %q", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func TestSyncDirOnMissingDir(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected an error for a missing directory")
	}
}
