// Package durable is the one place the repository writes files it cannot
// afford to lose. The temp-file-plus-rename idiom alone guarantees only
// *atomicity* — a reader sees the old file or the new file, never a
// half-written one. It does not guarantee *durability*: after a crash, a
// file that was renamed into place but never fsynced can legally come back
// empty or torn on many filesystems (the rename is a metadata operation
// that journals independently of the data blocks). The featcache, the model
// saves, and the storage engine all discovered they shared exactly that
// rename-without-fsync pattern; they now share this helper instead.
//
// The full discipline, in order:
//
//  1. create a temp file in the destination directory (same filesystem,
//     so the rename is atomic),
//  2. write the payload,
//  3. fsync the temp file (the data blocks are on stable storage),
//  4. rename over the destination (atomic swap),
//  5. fsync the destination directory (the rename itself is on stable
//     storage — without this, a crash can resurrect the old name).
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with data. See the
// package comment for the exact fsync discipline.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	return WriteFileTo(path, perm, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteFileTo is WriteFile for payloads produced by a serializer: write
// receives the temp file and the result is fsynced, renamed into place,
// and the directory fsynced. On any error the temp file is removed and
// the destination is untouched.
func WriteFileTo(path string, perm os.FileMode, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".durable-*"+filepath.Ext(path))
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: fsync %s: %w", tmp.Name(), err)
	}
	// CreateTemp opens 0600; honor the caller's intended mode.
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames and creates inside it
// crash-durable. Filesystems that refuse directory fsync (some network
// mounts) degrade gracefully: the error is reported, the rename already
// happened.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}
