// Package system extends the per-application metric to whole systems — the
// paper's §5.3 future-work question: "can we use the same approach of
// evaluating application programs to evaluate whole systems? We expect that
// total system security is dependent upon the weakest link, although
// factors such as which applications are network-facing have a role as
// well."
//
// A system image is a set of components (the application plus its
// supporting infrastructure), each with a scored report, an exposure level,
// and a privilege level. The aggregate combines:
//
//   - the weakest-link principle: the exposure-weighted worst component
//     dominates;
//   - containment: an attack graph over the components bounds how far an
//     initial compromise of an exposed component can escalate.
package system

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/attackgraph"
	"repro/internal/core"
)

// Exposure classifies how reachable a component is to attackers.
type Exposure int

// Exposure levels, most exposed first.
const (
	ExposureInternet Exposure = iota // network-facing (§5.3's "network-facing")
	ExposureInternal                 // reachable from other components only
	ExposureLocal                    // local interfaces only
)

// String names the exposure.
func (e Exposure) String() string {
	switch e {
	case ExposureInternet:
		return "internet"
	case ExposureInternal:
		return "internal"
	case ExposureLocal:
		return "local"
	}
	return "?"
}

// exposureWeight scales a component's risk contribution.
func exposureWeight(e Exposure) float64 {
	switch e {
	case ExposureInternet:
		return 1.0
	case ExposureInternal:
		return 0.6
	case ExposureLocal:
		return 0.3
	default:
		return 0.5
	}
}

// Component is one program in the image.
type Component struct {
	Name     string
	Report   *core.Report
	Exposure Exposure
	// Privileged marks components running with elevated privilege (root
	// daemons, kernel modules) — a compromise there is a full compromise.
	Privileged bool
	// DependsOn lists components this one can talk to (the containment
	// edges for escalation modeling).
	DependsOn []string
}

// Image is a whole system image.
type Image struct {
	Name       string
	Components []Component
}

// Evaluation is the whole-system verdict.
type Evaluation struct {
	Image string
	// WeakestLink is the component with the highest exposure-weighted risk.
	WeakestLink string
	// WeakestRisk is that component's weighted risk in [0, 100].
	WeakestRisk float64
	// SystemRisk aggregates weighted risks with a soft-max (the weakest
	// link dominates but co-located risk still accumulates).
	SystemRisk float64
	// EscalationDepth is the shortest chain from an internet-exposed
	// component to a privileged one under the containment graph
	// (-1 when no privileged component is reachable).
	EscalationDepth int
	// PrivilegedReachable reports whether any privileged component is
	// reachable from the outside at all.
	PrivilegedReachable bool
	// PerComponent lists weighted risks, highest first.
	PerComponent []ComponentRisk
}

// ComponentRisk is one component's contribution.
type ComponentRisk struct {
	Name     string
	Raw      float64
	Weighted float64
	Exposure Exposure
}

// Evaluate aggregates the image.
func Evaluate(img *Image) (*Evaluation, error) {
	if len(img.Components) == 0 {
		return nil, fmt.Errorf("system: image %q has no components", img.Name)
	}
	byName := map[string]*Component{}
	for i := range img.Components {
		byName[img.Components[i].Name] = &img.Components[i]
	}
	for _, c := range img.Components {
		for _, dep := range c.DependsOn {
			if _, ok := byName[dep]; !ok {
				return nil, fmt.Errorf("system: component %q depends on unknown %q", c.Name, dep)
			}
		}
	}

	ev := &Evaluation{Image: img.Name, EscalationDepth: -1}
	// Weighted risks and the weakest link.
	softSum := 0.0
	const sharpness = 8.0 // soft-max exponent: high = closer to pure max
	for _, c := range img.Components {
		raw := 0.0
		if c.Report != nil {
			raw = c.Report.RiskScore
		}
		weighted := raw * exposureWeight(c.Exposure)
		ev.PerComponent = append(ev.PerComponent, ComponentRisk{
			Name: c.Name, Raw: raw, Weighted: weighted, Exposure: c.Exposure,
		})
		softSum += math.Pow(weighted/100, sharpness)
		if weighted > ev.WeakestRisk {
			ev.WeakestRisk = weighted
			ev.WeakestLink = c.Name
		}
	}
	sort.SliceStable(ev.PerComponent, func(i, j int) bool {
		return ev.PerComponent[i].Weighted > ev.PerComponent[j].Weighted
	})
	ev.SystemRisk = 100 * math.Pow(softSum, 1/sharpness)
	if ev.SystemRisk > 100 {
		ev.SystemRisk = 100
	}

	// Containment: build the attack graph over components. A component's
	// compromisability scales with its risk score; edges follow DependsOn.
	n := attackgraph.NewNetwork(buildHosts(img)...)
	for _, c := range img.Components {
		if c.Exposure == ExposureInternet {
			n.Connect("@attacker", c.Name)
		}
		for _, dep := range c.DependsOn {
			n.Connect(c.Name, dep)
		}
	}
	goal := ""
	for _, c := range img.Components {
		if c.Privileged {
			goal = c.Name
			break
		}
	}
	if goal != "" {
		a := attackgraph.Analyze(n, attackgraph.State{"@attacker": attackgraph.PrivRoot}, goal, attackgraph.PrivUser)
		ev.PrivilegedReachable = a.GoalReachable
		ev.EscalationDepth = a.MinSteps
	}
	return ev, nil
}

// buildHosts maps components to attack-graph hosts. A component is
// exploitable when its predicted risk is non-trivial; the vulnerability
// requires only user privilege on the attacking side.
func buildHosts(img *Image) []attackgraph.Host {
	hosts := []attackgraph.Host{{Name: "@attacker"}}
	for _, c := range img.Components {
		h := attackgraph.Host{Name: c.Name}
		risk := 0.0
		if c.Report != nil {
			risk = c.Report.RiskScore
		}
		if risk >= 40 { // predicted-vulnerable components are exploitable
			grants := attackgraph.PrivUser
			if c.Privileged {
				grants = attackgraph.PrivRoot
			}
			h.Services = append(h.Services, attackgraph.Service{
				Name: c.Name + "-svc",
				Vulns: []attackgraph.Vuln{{
					ID:           "PREDICTED-" + strings.ToUpper(c.Name),
					RequiresPriv: attackgraph.PrivUser,
					GrantsPriv:   grants,
				}},
			})
		}
		hosts = append(hosts, h)
	}
	return hosts
}

// String renders the evaluation.
func (ev *Evaluation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "System evaluation: %s\n", ev.Image)
	fmt.Fprintf(&sb, "  system risk:  %.1f/100 (weakest link: %s at %.1f)\n",
		ev.SystemRisk, ev.WeakestLink, ev.WeakestRisk)
	if ev.PrivilegedReachable {
		fmt.Fprintf(&sb, "  escalation:   privileged component reachable in %d exploit step(s)\n", ev.EscalationDepth)
	} else {
		sb.WriteString("  escalation:   no privileged component reachable from the outside\n")
	}
	for _, c := range ev.PerComponent {
		fmt.Fprintf(&sb, "  %-16s raw %5.1f  weighted %5.1f  (%s)\n",
			c.Name, c.Raw, c.Weighted, c.Exposure)
	}
	return sb.String()
}
