package system

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func report(risk float64) *core.Report {
	return &core.Report{RiskScore: risk}
}

func sampleImage() *Image {
	return &Image{
		Name: "web-stack",
		Components: []Component{
			{Name: "nginx", Report: report(70), Exposure: ExposureInternet, DependsOn: []string{"app"}},
			{Name: "app", Report: report(55), Exposure: ExposureInternal, DependsOn: []string{"db", "agent"}},
			{Name: "db", Report: report(30), Exposure: ExposureInternal},
			{Name: "agent", Report: report(80), Exposure: ExposureLocal, Privileged: true},
		},
	}
}

func TestEvaluateWeakestLink(t *testing.T) {
	ev, err := Evaluate(sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	// nginx: 70*1.0 = 70; agent: 80*0.3 = 24; app: 55*0.6 = 33.
	if ev.WeakestLink != "nginx" {
		t.Fatalf("weakest link = %s", ev.WeakestLink)
	}
	if ev.WeakestRisk != 70 {
		t.Fatalf("weakest risk = %v", ev.WeakestRisk)
	}
	// Soft-max stays at or above the weakest link, at or below 100.
	if ev.SystemRisk < ev.WeakestRisk || ev.SystemRisk > 100 {
		t.Fatalf("system risk = %v", ev.SystemRisk)
	}
}

func TestEvaluateEscalationChain(t *testing.T) {
	ev, err := Evaluate(sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	// attacker -> nginx (risk 70 >= 40) -> app (55) -> agent (80, root):
	// 3 exploit steps.
	if !ev.PrivilegedReachable {
		t.Fatal("privileged component should be reachable")
	}
	if ev.EscalationDepth != 3 {
		t.Fatalf("escalation depth = %d, want 3", ev.EscalationDepth)
	}
}

func TestEvaluateContainmentBlocksEscalation(t *testing.T) {
	img := sampleImage()
	// Cut the app -> agent dependency: no path to the privileged component.
	img.Components[1].DependsOn = []string{"db"}
	ev, err := Evaluate(img)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PrivilegedReachable {
		t.Fatal("escalation should be contained")
	}
	if ev.EscalationDepth != -1 {
		t.Fatalf("depth = %d", ev.EscalationDepth)
	}
}

func TestEvaluateLowRiskComponentsNotExploitable(t *testing.T) {
	img := sampleImage()
	// Harden nginx below the exploitability threshold: the chain breaks at
	// the first hop even though the topology is unchanged.
	img.Components[0].Report = report(20)
	ev, err := Evaluate(img)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PrivilegedReachable {
		t.Fatal("hardened front end should block the chain")
	}
}

func TestEvaluateExposureWeighting(t *testing.T) {
	// The same risk is worse when internet-facing (§5.3: "which
	// applications are network-facing have a role").
	internet := &Image{Name: "a", Components: []Component{
		{Name: "svc", Report: report(60), Exposure: ExposureInternet},
	}}
	local := &Image{Name: "b", Components: []Component{
		{Name: "svc", Report: report(60), Exposure: ExposureLocal},
	}}
	evA, err := Evaluate(internet)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := Evaluate(local)
	if err != nil {
		t.Fatal(err)
	}
	if evA.SystemRisk <= evB.SystemRisk {
		t.Fatalf("exposure weighting broken: %v vs %v", evA.SystemRisk, evB.SystemRisk)
	}
}

func TestEvaluateValidation(t *testing.T) {
	if _, err := Evaluate(&Image{Name: "empty"}); err == nil {
		t.Fatal("empty image evaluated")
	}
	bad := &Image{Name: "bad", Components: []Component{
		{Name: "a", Report: report(10), DependsOn: []string{"ghost"}},
	}}
	if _, err := Evaluate(bad); err == nil {
		t.Fatal("dangling dependency accepted")
	}
}

func TestEvaluateString(t *testing.T) {
	ev, err := Evaluate(sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	out := ev.String()
	for _, want := range []string{"web-stack", "weakest link: nginx", "nginx", "agent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestEvaluatePerComponentSorted(t *testing.T) {
	ev, err := Evaluate(sampleImage())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ev.PerComponent); i++ {
		if ev.PerComponent[i].Weighted > ev.PerComponent[i-1].Weighted {
			t.Fatalf("components not sorted: %+v", ev.PerComponent)
		}
	}
}

func TestExposureStrings(t *testing.T) {
	if ExposureInternet.String() != "internet" || ExposureLocal.String() != "local" {
		t.Fatal("exposure names")
	}
	if Exposure(9).String() != "?" {
		t.Fatal("unknown exposure")
	}
}
