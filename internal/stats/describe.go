package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, interpolating between the two middle
// values for even-length input. It panics on an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (q in [0, 1]) of xs using linear
// interpolation between order statistics. It panics on an empty slice or an
// out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0, 1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ, and returns 0 when either input has zero
// variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson with mismatched lengths")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between xs and ys.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the fractional ranks of xs (ties receive the average rank).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Histogram buckets xs into n equal-width bins spanning [min, max] and
// returns the per-bin counts. Values equal to max land in the last bin.
func Histogram(xs []float64, n int) []int {
	if n <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	counts := make([]int, n)
	if len(xs) == 0 {
		return counts
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		counts[0] = len(xs)
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// Log10 returns log10 applied elementwise. Non-positive values are clamped
// to the smallest positive input to keep log-log plots well defined.
func Log10(xs []float64) []float64 {
	minPos := math.Inf(1)
	for _, x := range xs {
		if x > 0 && x < minPos {
			minPos = x
		}
	}
	if math.IsInf(minPos, 1) {
		minPos = 1
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			x = minPos
		}
		out[i] = math.Log10(x)
	}
	return out
}
