package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// Child stream must not simply replay the parent stream.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream mirrors parent (%d/50 equal)", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered %d values, want 7", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange(-3,3) = %d", v)
		}
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d, want 5", got)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(17)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 3)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Fatalf("normal mean = %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-3) > 0.1 {
		t.Fatalf("normal stddev = %v, want ~3", s)
	}
}

func TestPoissonMean(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 30, 200} {
		r := NewRNG(23)
		n := 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 5000; i++ {
		if v := r.Poisson(100); v < 0 {
			t.Fatalf("Poisson returned %d", v)
		}
	}
	if v := NewRNG(1).Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(31)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exponential(2)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	got := sum / float64(n)
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean = %v, want ~0.5", got)
	}
}

func TestGeometric(t *testing.T) {
	r := NewRNG(37)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(0.25))
	}
	// Mean failures before success = (1-p)/p = 3.
	got := sum / float64(n)
	if math.Abs(got-3) > 0.15 {
		t.Fatalf("Geometric(0.25) mean = %v, want ~3", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(41)
	counts := make([]int, 5)
	for i := 0; i < 20000; i++ {
		counts[r.Zipf(5, 1.5)]++
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("Zipf counts not monotone: %v", counts)
		}
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRNG(43)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Choice ignored weights: %v", counts)
	}
	// Zero-weight entries must never be picked.
	for i := 0; i < 1000; i++ {
		if r.Choice([]float64{0, 1, 0}) != 1 {
			t.Fatal("Choice picked a zero-weight entry")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(47)
	hits := 0
	n := 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}
