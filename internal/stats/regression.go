package stats

import (
	"fmt"
	"math"
)

// LinearFit holds the result of a simple (one-predictor) least-squares fit
// y = Intercept + Slope*x.
type LinearFit struct {
	Intercept float64
	Slope     float64
	R2        float64 // coefficient of determination
	N         int     // number of points fitted
}

// FitLinear computes the ordinary-least-squares line through (xs, ys).
// It panics if the slices differ in length or have fewer than two points.
func FitLinear(xs, ys []float64) LinearFit {
	if len(xs) != len(ys) {
		panic("stats: FitLinear with mismatched lengths")
	}
	if len(xs) < 2 {
		panic("stats: FitLinear needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		// Vertical data: fall back to a flat line at the mean.
		return LinearFit{Intercept: my, Slope: 0, R2: 0, N: len(xs)}
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2, N: len(xs)}
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Intercept + f.Slope*x
}

// String renders the fit in the form the paper reports for Figure 2.
func (f LinearFit) String() string {
	return fmt.Sprintf("y = %.2f + %.2f x (R^2 = %.2f%%, n = %d)",
		f.Intercept, f.Slope, f.R2*100, f.N)
}

// MultiFit holds a multiple-regression fit y = b0 + sum_i b[i]*x[i].
type MultiFit struct {
	Coeffs []float64 // Coeffs[0] is the intercept
	R2     float64
	N      int
}

// FitMultiple computes an OLS multiple regression of ys on the rows of X
// (each row is one observation's predictor vector) via the normal equations,
// solved with Gaussian elimination and partial pivoting. A ridge term lambda
// (>= 0) may be supplied to stabilize near-singular systems.
func FitMultiple(X [][]float64, ys []float64, lambda float64) (MultiFit, error) {
	n := len(X)
	if n == 0 || n != len(ys) {
		return MultiFit{}, fmt.Errorf("stats: FitMultiple with %d rows and %d targets", n, len(ys))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return MultiFit{}, fmt.Errorf("stats: FitMultiple row %d has %d columns, want %d", i, len(row), p)
		}
	}
	d := p + 1 // +1 for the intercept column
	// Build A = Z'Z + lambda*I and b = Z'y where Z = [1 | X].
	A := make([][]float64, d)
	for i := range A {
		A[i] = make([]float64, d)
	}
	b := make([]float64, d)
	z := make([]float64, d)
	for r := 0; r < n; r++ {
		z[0] = 1
		copy(z[1:], X[r])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				A[i][j] += z[i] * z[j]
			}
			b[i] += z[i] * ys[r]
		}
	}
	for i := 1; i < d; i++ { // do not penalize the intercept
		A[i][i] += lambda
	}
	coeffs, err := SolveLinear(A, b)
	if err != nil {
		return MultiFit{}, err
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := coeffs[0]
		for j := 0; j < p; j++ {
			pred += coeffs[j+1] * X[r][j]
		}
		ssRes += (ys[r] - pred) * (ys[r] - pred)
		ssTot += (ys[r] - my) * (ys[r] - my)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return MultiFit{Coeffs: coeffs, R2: r2, N: n}, nil
}

// Predict evaluates the fitted hyperplane at x.
func (f MultiFit) Predict(x []float64) float64 {
	pred := f.Coeffs[0]
	for j := 0; j < len(x) && j+1 < len(f.Coeffs); j++ {
		pred += f.Coeffs[j+1] * x[j]
	}
	return pred
}

// SolveLinear solves the square linear system A x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
func SolveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("stats: SolveLinear with %dx? matrix and %d-vector", n, len(b))
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(A[i]) != n {
			return nil, fmt.Errorf("stats: SolveLinear row %d has %d columns, want %d", i, len(A[i]), n)
		}
		m[i] = append([]float64(nil), A[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: SolveLinear singular matrix at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x, nil
}
