package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if v := Variance([]float64{3}); v != 0 {
		t.Fatalf("Variance of singleton = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if m := Min(xs); m != -1 {
		t.Fatalf("Min = %v", m)
	}
	if m := Max(xs); m != 5 {
		t.Fatalf("Max = %v", m)
	}
}

func TestMedianOddEven(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("Q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("Q.25 = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("Pearson with constant input = %v, want 0", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 3 + int(seed%40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
			ys[i] = r.Normal(0, 1)
		}
		c := Pearson(xs, ys)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 10, 100, 1000, 10000} // monotone but nonlinear
	if r := Spearman(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", r)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	counts := Histogram(xs, 2)
	if counts[0]+counts[1] != len(xs) {
		t.Fatalf("histogram loses mass: %v", counts)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("histogram = %v, want [5 5]", counts)
	}
}

func TestHistogramConstantInput(t *testing.T) {
	counts := Histogram([]float64{2, 2, 2}, 4)
	if counts[0] != 3 {
		t.Fatalf("constant histogram = %v", counts)
	}
}

func TestHistogramPreservesMass(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := int(seed%100) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 5)
		}
		total := 0
		for _, c := range Histogram(xs, 7) {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog10Clamping(t *testing.T) {
	out := Log10([]float64{100, 0, 10})
	if out[0] != 2 || out[2] != 1 {
		t.Fatalf("Log10 = %v", out)
	}
	// The zero is clamped to the smallest positive value (10 -> log = 1).
	if out[1] != 1 {
		t.Fatalf("Log10 zero clamp = %v, want 1", out[1])
	}
}
