// Package stats provides the deterministic random-number machinery,
// probability distributions, and descriptive/regression statistics used
// throughout the secmetric reproduction.
//
// Everything in this package is seeded and reproducible: corpus generation,
// synthetic source trees, and machine-learning experiments all derive their
// randomness from an RNG created here, so a fixed seed regenerates the exact
// figures reported in EXPERIMENTS.md.
package stats

import "math"

// RNG is a deterministic pseudo-random generator based on the SplitMix64
// algorithm. It is intentionally self-contained (no math/rand dependency) so
// that streams are stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new independent generator derived from the current state.
// The parent stream advances by one step, so sibling splits differ.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%uint64(n)
	for {
		v := r.Uint64()
		if v <= max {
			return int(v % uint64(n))
		}
	}
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("stats: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a draw from the normal distribution with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	// Guard against log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a draw from an exponential distribution with the given
// rate (lambda). The mean of the distribution is 1/rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Poisson returns a draw from a Poisson distribution with the given mean.
// Knuth's algorithm is used for small means and a normal approximation for
// large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := int(math.Round(r.Normal(mean, math.Sqrt(mean))))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli trials with success probability p.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric needs p in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Zipf returns a draw from {0, ..., n-1} where element i has weight
// 1/(i+1)^s. It is used for skewed categorical choices such as CWE frequency.
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	target := r.Float64() * total
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		if target < acc {
			return i
		}
	}
	return n - 1
}

// Choice returns a random index weighted by the non-negative weights. It
// panics if weights is empty or sums to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Choice with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: Choice with no mass")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
