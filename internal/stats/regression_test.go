package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	f := FitLinear(xs, ys)
	if !almostEqual(f.Intercept, 1, 1e-9) || !almostEqual(f.Slope, 2, 1e-9) {
		t.Fatalf("fit = %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if got := f.Predict(10); !almostEqual(got, 21, 1e-9) {
		t.Fatalf("Predict(10) = %v", got)
	}
}

func TestFitLinearNoise(t *testing.T) {
	r := NewRNG(99)
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Range(0, 10)
		ys[i] = 0.17 + 0.39*xs[i] + r.Normal(0, 1)
	}
	f := FitLinear(xs, ys)
	if math.Abs(f.Slope-0.39) > 0.02 {
		t.Fatalf("slope = %v, want ~0.39", f.Slope)
	}
	if math.Abs(f.Intercept-0.17) > 0.1 {
		t.Fatalf("intercept = %v, want ~0.17", f.Intercept)
	}
	if f.R2 <= 0 || f.R2 >= 1 {
		t.Fatalf("R2 = %v, want in (0,1)", f.R2)
	}
}

func TestFitLinearConstantX(t *testing.T) {
	f := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || f.Intercept != 2 {
		t.Fatalf("degenerate fit = %+v", f)
	}
}

func TestFitLinearString(t *testing.T) {
	f := LinearFit{Intercept: 0.17, Slope: 0.39, R2: 0.2466, N: 164}
	s := f.String()
	if !strings.Contains(s, "0.17") || !strings.Contains(s, "0.39") || !strings.Contains(s, "24.66%") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: OLS residuals are orthogonal to the predictor and sum to zero.
func TestFitLinearResidualProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 5 + int(seed%50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 3)
			ys[i] = r.Normal(0, 3)
		}
		fit := FitLinear(xs, ys)
		var sumRes, dot float64
		for i := range xs {
			res := ys[i] - fit.Predict(xs[i])
			sumRes += res
			dot += res * xs[i]
		}
		scale := float64(n)
		return math.Abs(sumRes) < 1e-6*scale && math.Abs(dot) < 1e-5*scale*10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinear(t *testing.T) {
	A := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := SolveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(A, []float64{1, 2}); err == nil {
		t.Fatal("expected error on singular matrix")
	}
}

func TestSolveLinearDoesNotMutate(t *testing.T) {
	A := [][]float64{{4, 1}, {1, 3}}
	b := []float64{1, 2}
	if _, err := SolveLinear(A, b); err != nil {
		t.Fatal(err)
	}
	if A[0][0] != 4 || A[1][0] != 1 || b[0] != 1 {
		t.Fatal("SolveLinear mutated its inputs")
	}
}

func TestFitMultipleExact(t *testing.T) {
	// y = 1 + 2a + 3b
	X := [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}}
	ys := []float64{1, 3, 4, 6, 14}
	f, err := FitMultiple(X, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(f.Coeffs[i], want[i], 1e-8) {
			t.Fatalf("coeffs = %v, want %v", f.Coeffs, want)
		}
	}
	if !almostEqual(f.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v", f.R2)
	}
	if got := f.Predict([]float64{5, 5}); !almostEqual(got, 26, 1e-8) {
		t.Fatalf("Predict = %v", got)
	}
}

func TestFitMultipleRidgeShrinks(t *testing.T) {
	r := NewRNG(5)
	n := 200
	X := make([][]float64, n)
	ys := make([]float64, n)
	for i := range X {
		x := r.Normal(0, 1)
		X[i] = []float64{x}
		ys[i] = 5 * x
	}
	plain, err := FitMultiple(X, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := FitMultiple(X, ys, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.Coeffs[1]) >= math.Abs(plain.Coeffs[1]) {
		t.Fatalf("ridge did not shrink: plain %v ridge %v", plain.Coeffs[1], ridge.Coeffs[1])
	}
}

func TestFitMultipleErrors(t *testing.T) {
	if _, err := FitMultiple(nil, nil, 0); err == nil {
		t.Fatal("expected error on empty input")
	}
	if _, err := FitMultiple([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}
