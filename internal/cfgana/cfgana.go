// Package cfgana implements the control-flow-graph analyses the paper lists
// among its candidate code properties (§4.1): dominator trees, natural-loop
// detection, acyclic path counting, and call/return target counts.
package cfgana

import (
	"math"
	"sort"

	"repro/internal/ir"
)

// Dominators computes the immediate-dominator relation for f using the
// Cooper-Harvey-Kennedy iterative algorithm. The result maps each block to
// its immediate dominator; the entry maps to itself.
func Dominators(f *ir.Func) map[*ir.Block]*ir.Block {
	// Reverse postorder.
	order := PostOrder(f)
	rpo := make([]*ir.Block, len(order))
	for i, b := range order {
		rpo[len(order)-1-i] = b
	}
	index := map[*ir.Block]int{}
	for i, b := range rpo {
		index[b] = i
	}
	idom := map[*ir.Block]*ir.Block{}
	entry := f.Entry()
	idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
					continue
				}
				newIdom = intersect(p, newIdom, idom, index)
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func intersect(a, b *ir.Block, idom map[*ir.Block]*ir.Block, index map[*ir.Block]int) *ir.Block {
	for a != b {
		for index[a] > index[b] {
			a = idom[a]
		}
		for index[b] > index[a] {
			b = idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b under the idom relation.
func Dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// PostOrder returns the blocks of f in depth-first postorder from the entry.
func PostOrder(f *ir.Func) []*ir.Block {
	var order []*ir.Block
	seen := map[*ir.Block]bool{}
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			walk(s)
		}
		order = append(order, b)
	}
	walk(f.Entry())
	return order
}

// Loop is a natural loop: a back edge tail->head plus the body blocks.
type Loop struct {
	Head *ir.Block
	Body []*ir.Block // includes Head, sorted by block ID
}

// NaturalLoops finds every natural loop of f (one per back edge; loops
// sharing a head are reported separately).
func NaturalLoops(f *ir.Func) []Loop {
	idom := Dominators(f)
	var loops []Loop
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if Dominates(idom, s, b) {
				loops = append(loops, collectLoop(s, b))
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Head.ID < loops[j].Head.ID })
	return loops
}

// collectLoop gathers the natural loop of back edge tail->head.
func collectLoop(head, tail *ir.Block) Loop {
	body := map[*ir.Block]bool{head: true}
	var stack []*ir.Block
	if !body[tail] {
		body[tail] = true
		stack = append(stack, tail)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	var blocks []*ir.Block
	for b := range body {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	return Loop{Head: head, Body: blocks}
}

// IsReducible reports whether every cycle of f's CFG is a natural loop,
// i.e. every back edge's target dominates its source. MiniC lowering always
// produces reducible graphs; hand-built IR may not.
func IsReducible(f *ir.Func) bool {
	idom := Dominators(f)
	// A graph is irreducible iff removing dominator-back-edges leaves a cycle.
	// Build the forward graph without such back edges and look for cycles.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*ir.Block]int{}
	var visit func(*ir.Block) bool
	visit = func(b *ir.Block) bool {
		color[b] = gray
		for _, s := range b.Succs() {
			if Dominates(idom, s, b) {
				continue // natural back edge
			}
			switch color[s] {
			case gray:
				return false // cycle not headed by a dominator
			case white:
				if !visit(s) {
					return false
				}
			}
		}
		color[b] = black
		return true
	}
	return visit(f.Entry())
}

// AcyclicPathCount counts the distinct entry-to-exit paths in the CFG with
// back edges removed (each loop contributes its body once). Counts saturate
// at MaxPathCount to keep exponential CFGs finite.
const MaxPathCount = float64(1e18)

// AcyclicPathCount returns the path count as a float64 (counts can overflow
// int64 on branch-heavy functions).
func AcyclicPathCount(f *ir.Func) float64 {
	idom := Dominators(f)
	memo := map[*ir.Block]float64{}
	var count func(*ir.Block) float64
	count = func(b *ir.Block) float64 {
		if v, ok := memo[b]; ok {
			return v
		}
		memo[b] = 0 // cycle guard (irreducible graphs)
		succs := b.Succs()
		if len(succs) == 0 {
			memo[b] = 1
			return 1
		}
		total := 0.0
		for _, s := range succs {
			if Dominates(idom, s, b) {
				continue // skip back edge
			}
			total += count(s)
		}
		if total == 0 {
			// All successors were back edges: this block exits its loop only
			// by its head; treat as one path terminus.
			total = 1
		}
		total = math.Min(total, MaxPathCount)
		memo[b] = total
		return total
	}
	return count(f.Entry())
}

// FlowFacts summarizes the control-flow properties used as features.
type FlowFacts struct {
	Blocks       int
	Edges        int
	Loops        int
	MaxLoopDepth int
	CallSites    int // "calling targets" (Allen's control-flow analysis)
	ReturnSites  int // "returning targets"
	Branches     int
	AcyclicPaths float64
	Reducible    bool
	// CyclomaticCFG is E - N + 2 computed on the real CFG, the graph-theoretic
	// definition of McCabe's metric (vs. the token heuristic in metrics).
	CyclomaticCFG int
}

// Analyze computes the flow facts of one function.
func Analyze(f *ir.Func) FlowFacts {
	facts := FlowFacts{Blocks: len(f.Blocks), Reducible: IsReducible(f)}
	for _, b := range f.Blocks {
		facts.Edges += len(b.Succs())
		switch b.Term.(type) {
		case *ir.Branch:
			facts.Branches++
		case *ir.Ret:
			facts.ReturnSites++
		}
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Call); ok {
				facts.CallSites++
			}
		}
	}
	loops := NaturalLoops(f)
	facts.Loops = len(loops)
	facts.MaxLoopDepth = maxLoopDepth(loops)
	facts.AcyclicPaths = AcyclicPathCount(f)
	facts.CyclomaticCFG = facts.Edges - facts.Blocks + 2
	return facts
}

// maxLoopDepth computes the deepest loop nesting: loop A nests in loop B when
// A's body is a strict subset of B's body.
func maxLoopDepth(loops []Loop) int {
	depth := 0
	for i := range loops {
		d := 1
		for j := range loops {
			if i == j {
				continue
			}
			if strictSubset(loops[i].Body, loops[j].Body) {
				d++
			}
		}
		if d > depth {
			depth = d
		}
	}
	return depth
}

func strictSubset(a, b []*ir.Block) bool {
	if len(a) >= len(b) {
		return false
	}
	in := map[*ir.Block]bool{}
	for _, x := range b {
		in[x] = true
	}
	for _, x := range a {
		if !in[x] {
			return false
		}
	}
	return true
}
