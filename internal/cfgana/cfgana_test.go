package cfgana

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func lower(t *testing.T, src string) *ir.Func {
	t.Helper()
	p := ir.MustLowerSource(src)
	return p.Funcs[0]
}

func blockByPrefix(f *ir.Func, prefix string) *ir.Block {
	for _, b := range f.Blocks {
		if strings.HasPrefix(b.Name, prefix) {
			return b
		}
	}
	return nil
}

func TestDominatorsDiamond(t *testing.T) {
	f := lower(t, `
int f(int x) {
	int y = 0;
	if (x) { y = 1; } else { y = 2; }
	return y;
}`)
	idom := Dominators(f)
	entry := f.Entry()
	if idom[entry] != entry {
		t.Fatal("entry idom not itself")
	}
	join := blockByPrefix(f, "join")
	then := blockByPrefix(f, "then")
	els := blockByPrefix(f, "else")
	if idom[then] != entry || idom[els] != entry {
		t.Fatalf("branch arms not dominated by entry:\n%s", f)
	}
	// The join is dominated by entry, not by either arm.
	if idom[join] != entry {
		t.Fatalf("join idom = %v, want entry:\n%s", idom[join].Name, f)
	}
	if !Dominates(idom, entry, join) {
		t.Fatal("entry should dominate join")
	}
	if Dominates(idom, then, join) {
		t.Fatal("then must not dominate join")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s += n; n--; }
	return s;
}`)
	idom := Dominators(f)
	cond := blockByPrefix(f, "loopcond")
	body := blockByPrefix(f, "loopbody")
	exit := blockByPrefix(f, "loopexit")
	if idom[body] != cond || idom[exit] != cond {
		t.Fatalf("loop dominators wrong:\n%s", f)
	}
	if !Dominates(idom, f.Entry(), body) {
		t.Fatal("entry should dominate body transitively")
	}
}

func TestNaturalLoops(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s += n; n--; }
	return s;
}`)
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	if !strings.HasPrefix(loops[0].Head.Name, "loopcond") {
		t.Fatalf("loop head = %s", loops[0].Head.Name)
	}
	// Body contains head and loopbody.
	if len(loops[0].Body) != 2 {
		t.Fatalf("loop body = %d blocks", len(loops[0].Body))
	}
}

func TestNestedLoops(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < i; j++) {
			s += j;
		}
	}
	return s;
}`)
	loops := NaturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("loops = %d", len(loops))
	}
	facts := Analyze(f)
	if facts.MaxLoopDepth != 2 {
		t.Fatalf("MaxLoopDepth = %d, want 2", facts.MaxLoopDepth)
	}
	if facts.Loops != 2 {
		t.Fatalf("Loops = %d", facts.Loops)
	}
}

func TestNoLoops(t *testing.T) {
	f := lower(t, "int f(int x) { if (x) { x = 1; } return x; }")
	if loops := NaturalLoops(f); len(loops) != 0 {
		t.Fatalf("loops = %d", len(loops))
	}
	facts := Analyze(f)
	if facts.MaxLoopDepth != 0 {
		t.Fatalf("depth = %d", facts.MaxLoopDepth)
	}
}

func TestAcyclicPathCountStraight(t *testing.T) {
	f := lower(t, "int f(void) { return 1; }")
	if got := AcyclicPathCount(f); got != 1 {
		t.Fatalf("paths = %v, want 1", got)
	}
}

func TestAcyclicPathCountDiamonds(t *testing.T) {
	// Each if/else doubles the path count: 3 diamonds -> 8 paths.
	f := lower(t, `
int f(int a, int b, int c) {
	int x = 0;
	if (a) { x = 1; } else { x = 2; }
	if (b) { x += 1; } else { x += 2; }
	if (c) { x += 3; } else { x += 4; }
	return x;
}`)
	if got := AcyclicPathCount(f); got != 8 {
		t.Fatalf("paths = %v, want 8:\n%s", got, f)
	}
}

func TestAcyclicPathCountLoop(t *testing.T) {
	// One loop: enter-skip or enter-once (back edge removed): cond has 2
	// forward successors... body's only forward exit rejoins nothing; the
	// loop contributes its body once. Expect 2 paths: cond->exit and
	// cond->body->(back edge pruned; body counts as terminus)->...
	f := lower(t, `
int f(int n) {
	int s = 0;
	while (n > 0) { s += n; n--; }
	return s;
}`)
	got := AcyclicPathCount(f)
	if got != 2 {
		t.Fatalf("paths = %v, want 2:\n%s", got, f)
	}
}

func TestReducible(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) {
		if (i % 2) { s += i; }
	}
	return s;
}`)
	if !IsReducible(f) {
		t.Fatal("lowered MiniC should be reducible")
	}
}

func TestIrreducibleDetected(t *testing.T) {
	// Hand-build the classic irreducible graph:
	// entry branches to A and B; A -> B; B -> A; A -> exit.
	entry := &ir.Block{ID: 0, Name: "entry"}
	a := &ir.Block{ID: 1, Name: "A"}
	b := &ir.Block{ID: 2, Name: "B"}
	exit := &ir.Block{ID: 3, Name: "exit"}
	entry.Term = &ir.Branch{Cond: ir.Var{Name: "c"}, True: a, False: b}
	a.Term = &ir.Branch{Cond: ir.Var{Name: "d"}, True: b, False: exit}
	b.Term = &ir.Jump{Target: a}
	exit.Term = &ir.Ret{}
	f := &ir.Func{Name: "irr", Blocks: []*ir.Block{entry, a, b, exit}}
	a.Preds = []*ir.Block{entry, b}
	b.Preds = []*ir.Block{entry, a}
	exit.Preds = []*ir.Block{a}
	if IsReducible(f) {
		t.Fatal("irreducible graph reported reducible")
	}
}

func TestAnalyzeFacts(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = helper(n);
	if (s > 0) { log_it(s); return s; }
	while (n > 0) { n--; }
	return 0;
}`)
	facts := Analyze(f)
	if facts.CallSites != 2 {
		t.Fatalf("CallSites = %d, want 2", facts.CallSites)
	}
	if facts.ReturnSites != 2 {
		t.Fatalf("ReturnSites = %d, want 2", facts.ReturnSites)
	}
	if facts.Branches < 2 {
		t.Fatalf("Branches = %d", facts.Branches)
	}
	if facts.Loops != 1 {
		t.Fatalf("Loops = %d", facts.Loops)
	}
	if !facts.Reducible {
		t.Fatal("should be reducible")
	}
	if facts.CyclomaticCFG < 2 {
		t.Fatalf("CyclomaticCFG = %d", facts.CyclomaticCFG)
	}
}

func TestPostOrderCoversAll(t *testing.T) {
	f := lower(t, `
int f(int a) {
	if (a) { a = 1; } else { a = 2; }
	while (a < 10) { a++; }
	return a;
}`)
	order := PostOrder(f)
	if len(order) != len(f.Blocks) {
		t.Fatalf("postorder covers %d/%d blocks", len(order), len(f.Blocks))
	}
	// Entry is last in postorder.
	if order[len(order)-1] != f.Entry() {
		t.Fatal("entry not last in postorder")
	}
}

func TestCyclomaticCFGMatchesBranching(t *testing.T) {
	// Straight line: E-N+2 = 0-1+2 = 1.
	f := lower(t, "int f(void) { return 0; }")
	if facts := Analyze(f); facts.CyclomaticCFG != 1 {
		t.Fatalf("straight-line cyclomatic = %d", facts.CyclomaticCFG)
	}
	// One if: adds one.
	f = lower(t, "int f(int x) { if (x) { x = 1; } return x; }")
	if facts := Analyze(f); facts.CyclomaticCFG != 2 {
		t.Fatalf("one-branch cyclomatic = %d", facts.CyclomaticCFG)
	}
}
