package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindForest, Folds: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Hypotheses) != len(m.Hypotheses) {
		t.Fatalf("hypotheses = %d, want %d", len(loaded.Hypotheses), len(m.Hypotheses))
	}
	// Scores must agree exactly for a handful of apps.
	for _, a := range testCorpus.Apps[:10] {
		orig := m.Score(a.App.Name, a.Features)
		rest := loaded.Score(a.App.Name, a.Features)
		if math.Abs(orig.RiskScore-rest.RiskScore) > 1e-9 {
			t.Fatalf("%s: risk %v vs %v", a.App.Name, orig.RiskScore, rest.RiskScore)
		}
		if math.Abs(orig.ExpectedVulns-rest.ExpectedVulns) > 1e-6 {
			t.Fatalf("%s: expected vulns %v vs %v", a.App.Name, orig.ExpectedVulns, rest.ExpectedVulns)
		}
		for i := range orig.Risks {
			if math.Abs(orig.Risks[i].Probability-rest.Risks[i].Probability) > 1e-9 {
				t.Fatalf("%s %s: p %v vs %v", a.App.Name, orig.Risks[i].Name,
					orig.Risks[i].Probability, rest.Risks[i].Probability)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Fatal("bad version loaded")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":1}`)); err == nil {
		t.Fatal("transformerless model loaded")
	}
}

// mutateSavedModel saves a freshly trained model, applies fn to its decoded
// JSON object, and returns the re-encoded bytes.
func mutateSavedModel(t *testing.T, fn func(dto map[string]json.RawMessage)) []byte {
	t.Helper()
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindZeroR, Folds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var dto map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	fn(dto)
	out, err := json.Marshal(dto)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoadModelRecordsAndAcceptsSchema(t *testing.T) {
	raw := mutateSavedModel(t, func(dto map[string]json.RawMessage) {
		var schema []string
		if err := json.Unmarshal(dto["schema"], &schema); err != nil {
			t.Fatalf("saved model has no decodable schema: %v", err)
		}
		if len(schema) != len(metrics.FeatureNames) || schema[0] != metrics.FeatureNames[0] {
			t.Fatalf("saved schema %v does not match FeatureNames", schema)
		}
	})
	if _, err := LoadModel(bytes.NewReader(raw)); err != nil {
		t.Fatalf("matching schema rejected: %v", err)
	}
}

func TestLoadModelRejectsMissingSchema(t *testing.T) {
	raw := mutateSavedModel(t, func(dto map[string]json.RawMessage) {
		delete(dto, "schema")
	})
	_, err := LoadModel(bytes.NewReader(raw))
	if !errors.Is(err, ErrFeatureSchema) {
		t.Fatalf("err = %v, want ErrFeatureSchema", err)
	}
}

func TestLoadModelRejectsSchemaMismatch(t *testing.T) {
	// Wrong length: a model trained before a feature was added.
	truncated := mutateSavedModel(t, func(dto map[string]json.RawMessage) {
		schema := append([]string(nil), metrics.FeatureNames[:len(metrics.FeatureNames)-1]...)
		raw, err := json.Marshal(schema)
		if err != nil {
			t.Fatal(err)
		}
		dto["schema"] = raw
	})
	_, err := LoadModel(bytes.NewReader(truncated))
	if !errors.Is(err, ErrFeatureSchema) {
		t.Fatalf("truncated schema: err = %v, want ErrFeatureSchema", err)
	}

	// Same length, permuted columns: silent misalignment if accepted.
	permuted := mutateSavedModel(t, func(dto map[string]json.RawMessage) {
		schema := append([]string(nil), metrics.FeatureNames...)
		schema[0], schema[1] = schema[1], schema[0]
		raw, err := json.Marshal(schema)
		if err != nil {
			t.Fatal(err)
		}
		dto["schema"] = raw
	})
	_, err = LoadModel(bytes.NewReader(permuted))
	if !errors.Is(err, ErrFeatureSchema) {
		t.Fatalf("permuted schema: err = %v, want ErrFeatureSchema", err)
	}
}
