package core

import (
	"bytes"
	"context"
	"math"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindForest, Folds: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Hypotheses) != len(m.Hypotheses) {
		t.Fatalf("hypotheses = %d, want %d", len(loaded.Hypotheses), len(m.Hypotheses))
	}
	// Scores must agree exactly for a handful of apps.
	for _, a := range testCorpus.Apps[:10] {
		orig := m.Score(a.App.Name, a.Features)
		rest := loaded.Score(a.App.Name, a.Features)
		if math.Abs(orig.RiskScore-rest.RiskScore) > 1e-9 {
			t.Fatalf("%s: risk %v vs %v", a.App.Name, orig.RiskScore, rest.RiskScore)
		}
		if math.Abs(orig.ExpectedVulns-rest.ExpectedVulns) > 1e-6 {
			t.Fatalf("%s: expected vulns %v vs %v", a.App.Name, orig.ExpectedVulns, rest.ExpectedVulns)
		}
		for i := range orig.Risks {
			if math.Abs(orig.Risks[i].Probability-rest.Risks[i].Probability) > 1e-9 {
				t.Fatalf("%s %s: p %v vs %v", a.App.Name, orig.Risks[i].Name,
					orig.Risks[i].Probability, rest.Risks[i].Probability)
			}
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage loaded")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":99}`)); err == nil {
		t.Fatal("bad version loaded")
	}
	if _, err := LoadModel(bytes.NewBufferString(`{"version":1}`)); err == nil {
		t.Fatal("transformerless model loaded")
	}
}
