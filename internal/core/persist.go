package core

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// Serialized model format, versioned for forward compatibility.
const modelFormatVersion = 1

// binaryMagic opens every binary model file: "SMB" plus one version byte.
// LoadModel sniffs it to pick the decode path, so JSON and binary models
// load through the same entry point.
const binaryMagic = "SMB1"

// maxBinarySection bounds every length prefix in a binary model, so a
// corrupt header cannot drive an arbitrary allocation before the payload is
// rejected.
const maxBinarySection = 1 << 28

// ErrModelCorrupt marks a binary model whose header or sections are
// truncated or internally inconsistent. Callers (the daemon's registry in
// particular) check for it with errors.Is and keep serving their previous
// snapshot.
var ErrModelCorrupt = errors.New("core: corrupt or truncated binary model")

// ErrFeatureSchema marks a model whose persisted feature schema does not
// match this build's metrics.FeatureNames. Scoring with such a model would
// silently misalign columns (the transformer and every classifier index
// rows by FeatureNames position), so loading refuses instead. Retrain the
// model, or load it with the binary revision that wrote it.
var ErrFeatureSchema = errors.New("model feature schema does not match this build")

type hypothesisDTO struct {
	Name       string             `json:"name"`
	Question   string             `json:"question"`
	Kind       ModelKind          `json:"kind"`
	Classifier json.RawMessage    `json:"classifier"`
	Features   []string           `json:"features"`
	Importance []ml.FeatureWeight `json:"importance"`
	BaseRate   float64            `json:"base_rate"`
	CVAccuracy float64            `json:"cv_accuracy"`
	CVAUC      float64            `json:"cv_auc"`
}

type modelDTO struct {
	Version int       `json:"version"`
	Kind    ModelKind `json:"kind"`
	// Schema records the full feature-name column order the model was
	// trained against; LoadModel refuses a model whose schema differs from
	// the running build's metrics.FeatureNames.
	Schema      []string             `json:"schema"`
	Transformer *Transformer         `json:"transformer"`
	Hypotheses  []hypothesisDTO      `json:"hypotheses"`
	CountModel  json.RawMessage      `json:"count_model,omitempty"`
	CountEval   ml.RegressionMetrics `json:"count_eval"`
	CountStd    float64              `json:"count_residual_std"`
}

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{
		Version:     modelFormatVersion,
		Kind:        m.Config.Kind,
		Schema:      append([]string(nil), metrics.FeatureNames...),
		Transformer: m.Transformer,
		CountEval:   m.CountEval,
		CountStd:    m.CountResidualStd,
	}
	for _, hm := range m.Hypotheses {
		blob, err := ml.MarshalClassifier(hm.Classifier)
		if err != nil {
			return fmt.Errorf("core: saving %s: %w", hm.Hypothesis.Name, err)
		}
		h := hypothesisDTO{
			Name:       hm.Hypothesis.Name,
			Question:   hm.Hypothesis.Question,
			Kind:       hm.Kind,
			Classifier: blob,
			Features:   hm.Features,
			Importance: hm.Importance,
			BaseRate:   hm.BaseRate,
		}
		if hm.CV != nil {
			h.CVAccuracy = hm.CV.Accuracy
			h.CVAUC = hm.CV.AUC
		}
		dto.Hypotheses = append(dto.Hypotheses, h)
	}
	if m.CountModel != nil {
		blob, err := ml.MarshalRegressor(m.CountModel)
		if err != nil {
			return fmt.Errorf("core: saving count model: %w", err)
		}
		dto.CountModel = blob
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dto)
}

// SaveBinary writes the model in the compact binary container: the "SMB1"
// magic, a length-prefixed JSON meta section (the modelDTO with classifier
// blobs left out), then one length-prefixed ml binary classifier blob per
// hypothesis, in meta order. Tree ensembles dominate model size, so they
// serialize as flat little-endian node arrays instead of recursive JSON;
// everything else (transformer, CV stats, the linear count model) stays
// readable JSON in the meta section. LoadModel sniffs the magic, so both
// formats load through the same call.
func (m *Model) SaveBinary(w io.Writer) error {
	dto := modelDTO{
		Version:     modelFormatVersion,
		Kind:        m.Config.Kind,
		Schema:      append([]string(nil), metrics.FeatureNames...),
		Transformer: m.Transformer,
		CountEval:   m.CountEval,
		CountStd:    m.CountResidualStd,
	}
	blobs := make([][]byte, 0, len(m.Hypotheses))
	for _, hm := range m.Hypotheses {
		blob, err := ml.MarshalClassifierBinary(hm.Classifier)
		if err != nil {
			return fmt.Errorf("core: saving %s: %w", hm.Hypothesis.Name, err)
		}
		blobs = append(blobs, blob)
		h := hypothesisDTO{
			Name:       hm.Hypothesis.Name,
			Question:   hm.Hypothesis.Question,
			Kind:       hm.Kind,
			Features:   hm.Features,
			Importance: hm.Importance,
			BaseRate:   hm.BaseRate,
		}
		if hm.CV != nil {
			h.CVAccuracy = hm.CV.Accuracy
			h.CVAUC = hm.CV.AUC
		}
		dto.Hypotheses = append(dto.Hypotheses, h)
	}
	if m.CountModel != nil {
		blob, err := ml.MarshalRegressor(m.CountModel)
		if err != nil {
			return fmt.Errorf("core: saving count model: %w", err)
		}
		dto.CountModel = blob
	}
	meta, err := json.Marshal(dto)
	if err != nil {
		return fmt.Errorf("core: encode model meta: %w", err)
	}
	buf := make([]byte, 0, len(binaryMagic)+4+len(meta))
	buf = append(buf, binaryMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	for _, blob := range blobs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
		buf = append(buf, blob...)
	}
	_, err = w.Write(buf)
	return err
}

// LoadModel restores a model saved with Save or SaveBinary, sniffing the
// binary magic to pick the decode path. The restored model scores and
// compares codebases; it cannot be retrained (no corpus attached).
func LoadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(len(binaryMagic))
	if err == nil && string(magic) == binaryMagic {
		return loadBinaryModel(br)
	}
	if err == nil && string(magic[:3]) == binaryMagic[:3] {
		return nil, fmt.Errorf("core: unsupported binary model version %q", magic)
	}
	var dto modelDTO
	if err := json.NewDecoder(br).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	return modelFromDTO(dto, nil)
}

// loadBinaryModel decodes the binary container; br is positioned at the
// magic. Truncation and garbage at any layer surface as ErrModelCorrupt so
// callers can distinguish a bad file from a version or schema mismatch.
func loadBinaryModel(br *bufio.Reader) (*Model, error) {
	if _, err := br.Discard(len(binaryMagic)); err != nil {
		return nil, fmt.Errorf("%w: short magic", ErrModelCorrupt)
	}
	meta, err := readSection(br, "meta")
	if err != nil {
		return nil, err
	}
	var dto modelDTO
	if err := json.Unmarshal(meta, &dto); err != nil {
		return nil, fmt.Errorf("%w: meta section: %v", ErrModelCorrupt, err)
	}
	clfs := make([]ml.Classifier, len(dto.Hypotheses))
	for i, h := range dto.Hypotheses {
		blob, err := readSection(br, "classifier")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", h.Name, err)
		}
		clf, err := ml.UnmarshalClassifierBinary(blob)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrModelCorrupt, h.Name, err)
		}
		clfs[i] = clf
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after classifier sections", ErrModelCorrupt)
	}
	return modelFromDTO(dto, clfs)
}

// readSection reads one u32-length-prefixed section of the binary container.
func readSection(br *bufio.Reader, what string) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated %s length", ErrModelCorrupt, what)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxBinarySection {
		return nil, fmt.Errorf("%w: implausible %s length %d", ErrModelCorrupt, what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("%w: truncated %s section", ErrModelCorrupt, what)
	}
	return buf, nil
}

// modelFromDTO validates the decoded header and assembles the Model. clfs
// supplies the per-hypothesis classifiers for the binary container; the JSON
// path passes nil and each hypothesisDTO carries its own envelope blob.
func modelFromDTO(dto modelDTO, clfs []ml.Classifier) (*Model, error) {
	if dto.Version != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", dto.Version)
	}
	if err := validateSchema(dto.Schema); err != nil {
		return nil, err
	}
	if dto.Transformer == nil {
		return nil, fmt.Errorf("core: model missing transformer")
	}
	m := &Model{
		Config:           TrainConfig{Kind: dto.Kind},
		Transformer:      dto.Transformer,
		CountEval:        dto.CountEval,
		CountResidualStd: dto.CountStd,
	}
	for i, h := range dto.Hypotheses {
		var clf ml.Classifier
		if clfs != nil {
			clf = clfs[i]
		} else {
			var err error
			clf, err = ml.UnmarshalClassifier(h.Classifier)
			if err != nil {
				return nil, fmt.Errorf("core: loading %s: %w", h.Name, err)
			}
		}
		m.Hypotheses = append(m.Hypotheses, &HypothesisModel{
			Hypothesis: Hypothesis{Name: h.Name, Question: h.Question},
			Kind:       h.Kind,
			Classifier: clf,
			Features:   h.Features,
			Importance: h.Importance,
			BaseRate:   h.BaseRate,
			CV:         &ml.CVResult{Accuracy: h.CVAccuracy, AUC: h.CVAUC},
		})
	}
	if len(dto.CountModel) > 0 {
		reg, err := ml.UnmarshalRegressor(dto.CountModel)
		if err != nil {
			return nil, fmt.Errorf("core: loading count model: %w", err)
		}
		m.CountModel = reg
	}
	return m, nil
}

// validateSchema compares a persisted feature schema against the running
// build's metrics.FeatureNames. A model saved before the schema field
// existed (pre-enrich-v2 era) carries no schema; that is indistinguishable
// from a stale column order, so it is refused the same way.
func validateSchema(schema []string) error {
	if len(schema) == 0 {
		return fmt.Errorf("core: model records no feature schema (saved by an older build): %w", ErrFeatureSchema)
	}
	if slices.Equal(schema, metrics.FeatureNames) {
		return nil
	}
	if len(schema) != len(metrics.FeatureNames) {
		return fmt.Errorf("core: model has %d features, this build has %d: %w",
			len(schema), len(metrics.FeatureNames), ErrFeatureSchema)
	}
	for i, name := range schema {
		if name != metrics.FeatureNames[i] {
			return fmt.Errorf("core: feature column %d is %q in the model but %q in this build: %w",
				i, name, metrics.FeatureNames[i], ErrFeatureSchema)
		}
	}
	return nil
}
