package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// Serialized model format, versioned for forward compatibility.
const modelFormatVersion = 1

// ErrFeatureSchema marks a model whose persisted feature schema does not
// match this build's metrics.FeatureNames. Scoring with such a model would
// silently misalign columns (the transformer and every classifier index
// rows by FeatureNames position), so loading refuses instead. Retrain the
// model, or load it with the binary revision that wrote it.
var ErrFeatureSchema = errors.New("model feature schema does not match this build")

type hypothesisDTO struct {
	Name       string             `json:"name"`
	Question   string             `json:"question"`
	Kind       ModelKind          `json:"kind"`
	Classifier json.RawMessage    `json:"classifier"`
	Features   []string           `json:"features"`
	Importance []ml.FeatureWeight `json:"importance"`
	BaseRate   float64            `json:"base_rate"`
	CVAccuracy float64            `json:"cv_accuracy"`
	CVAUC      float64            `json:"cv_auc"`
}

type modelDTO struct {
	Version int       `json:"version"`
	Kind    ModelKind `json:"kind"`
	// Schema records the full feature-name column order the model was
	// trained against; LoadModel refuses a model whose schema differs from
	// the running build's metrics.FeatureNames.
	Schema      []string             `json:"schema"`
	Transformer *Transformer         `json:"transformer"`
	Hypotheses  []hypothesisDTO      `json:"hypotheses"`
	CountModel  json.RawMessage      `json:"count_model,omitempty"`
	CountEval   ml.RegressionMetrics `json:"count_eval"`
	CountStd    float64              `json:"count_residual_std"`
}

// Save writes the trained model as JSON.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{
		Version:     modelFormatVersion,
		Kind:        m.Config.Kind,
		Schema:      append([]string(nil), metrics.FeatureNames...),
		Transformer: m.Transformer,
		CountEval:   m.CountEval,
		CountStd:    m.CountResidualStd,
	}
	for _, hm := range m.Hypotheses {
		blob, err := ml.MarshalClassifier(hm.Classifier)
		if err != nil {
			return fmt.Errorf("core: saving %s: %w", hm.Hypothesis.Name, err)
		}
		h := hypothesisDTO{
			Name:       hm.Hypothesis.Name,
			Question:   hm.Hypothesis.Question,
			Kind:       hm.Kind,
			Classifier: blob,
			Features:   hm.Features,
			Importance: hm.Importance,
			BaseRate:   hm.BaseRate,
		}
		if hm.CV != nil {
			h.CVAccuracy = hm.CV.Accuracy
			h.CVAUC = hm.CV.AUC
		}
		dto.Hypotheses = append(dto.Hypotheses, h)
	}
	if m.CountModel != nil {
		blob, err := ml.MarshalRegressor(m.CountModel)
		if err != nil {
			return fmt.Errorf("core: saving count model: %w", err)
		}
		dto.CountModel = blob
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dto)
}

// LoadModel restores a model saved with Save. The restored model scores and
// compares codebases; it cannot be retrained (no corpus attached).
func LoadModel(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	if dto.Version != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", dto.Version)
	}
	if err := validateSchema(dto.Schema); err != nil {
		return nil, err
	}
	if dto.Transformer == nil {
		return nil, fmt.Errorf("core: model missing transformer")
	}
	m := &Model{
		Config:           TrainConfig{Kind: dto.Kind},
		Transformer:      dto.Transformer,
		CountEval:        dto.CountEval,
		CountResidualStd: dto.CountStd,
	}
	for _, h := range dto.Hypotheses {
		clf, err := ml.UnmarshalClassifier(h.Classifier)
		if err != nil {
			return nil, fmt.Errorf("core: loading %s: %w", h.Name, err)
		}
		m.Hypotheses = append(m.Hypotheses, &HypothesisModel{
			Hypothesis: Hypothesis{Name: h.Name, Question: h.Question},
			Kind:       h.Kind,
			Classifier: clf,
			Features:   h.Features,
			Importance: h.Importance,
			BaseRate:   h.BaseRate,
			CV:         &ml.CVResult{Accuracy: h.CVAccuracy, AUC: h.CVAUC},
		})
	}
	if len(dto.CountModel) > 0 {
		reg, err := ml.UnmarshalRegressor(dto.CountModel)
		if err != nil {
			return nil, fmt.Errorf("core: loading count model: %w", err)
		}
		m.CountModel = reg
	}
	return m, nil
}

// validateSchema compares a persisted feature schema against the running
// build's metrics.FeatureNames. A model saved before the schema field
// existed (pre-enrich-v2 era) carries no schema; that is indistinguishable
// from a stale column order, so it is refused the same way.
func validateSchema(schema []string) error {
	if len(schema) == 0 {
		return fmt.Errorf("core: model records no feature schema (saved by an older build): %w", ErrFeatureSchema)
	}
	if slices.Equal(schema, metrics.FeatureNames) {
		return nil
	}
	if len(schema) != len(metrics.FeatureNames) {
		return fmt.Errorf("core: model has %d features, this build has %d: %w",
			len(schema), len(metrics.FeatureNames), ErrFeatureSchema)
	}
	for i, name := range schema {
		if name != metrics.FeatureNames[i] {
			return fmt.Errorf("core: feature column %d is %q in the model but %q in this build: %w",
				i, name, metrics.FeatureNames[i], ErrFeatureSchema)
		}
	}
	return nil
}
