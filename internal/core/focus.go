package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// FocusPlan implements the paper's §6 suggestion: "one might use these
// metrics to focus the effort of bug-finding tools for deeper analysis on
// particularly risky code, or to focus additional testing effort." Files
// are scored individually with the cheap extractors, and a deep-analysis
// budget (symbolic-execution paths, fuzzing time, review hours — any unit)
// is apportioned by predicted risk.
type FocusPlan struct {
	Budget  int
	Entries []FocusEntry
}

// FocusEntry is one file's allocation.
type FocusEntry struct {
	File      string
	Risk      float64 // model risk score of the file in isolation
	Allocated int
}

// FocusFiles builds a plan for the tree under the given budget. Files are
// scored with the token-level extractors only (the plan decides where the
// expensive analyses go, so it must stay cheap itself).
func (m *Model) FocusFiles(tree *metrics.Tree, budget int) (*FocusPlan, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("core: focus budget must be positive")
	}
	if len(tree.Files) == 0 {
		return nil, fmt.Errorf("core: tree has no files")
	}
	plan := &FocusPlan{Budget: budget}
	for _, f := range tree.Files {
		single := metrics.NewTree(f.Path, f)
		fv := metrics.Extract(single)
		rep := m.Score(f.Path, fv)
		plan.Entries = append(plan.Entries, FocusEntry{File: f.Path, Risk: rep.RiskScore})
	}
	sort.SliceStable(plan.Entries, func(i, j int) bool {
		return plan.Entries[i].Risk > plan.Entries[j].Risk
	})
	// Proportional allocation with largest remainders; risk 0 files get 0.
	total := 0.0
	for _, e := range plan.Entries {
		total += e.Risk
	}
	if total == 0 {
		// Uniform fallback: nothing to discriminate on.
		for i := range plan.Entries {
			plan.Entries[i].Allocated = budget / len(plan.Entries)
		}
		plan.Entries[0].Allocated += budget % len(plan.Entries)
		return plan, nil
	}
	type frac struct {
		idx int
		rem float64
	}
	var fracs []frac
	used := 0
	for i := range plan.Entries {
		share := float64(budget) * plan.Entries[i].Risk / total
		whole := int(math.Floor(share))
		plan.Entries[i].Allocated = whole
		used += whole
		fracs = append(fracs, frac{idx: i, rem: share - float64(whole)})
	}
	sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].rem > fracs[b].rem })
	for k := 0; used < budget && len(fracs) > 0; k = (k + 1) % len(fracs) {
		plan.Entries[fracs[k].idx].Allocated++
		used++
	}
	return plan, nil
}

// String renders the plan.
func (p *FocusPlan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Deep-analysis focus plan (budget %d):\n", p.Budget)
	for _, e := range p.Entries {
		fmt.Fprintf(&sb, "  %-28s risk %5.1f -> %d unit(s)\n", e.File, e.Risk, e.Allocated)
	}
	return sb.String()
}
