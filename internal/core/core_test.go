package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/langgen"
	"repro/internal/metrics"
	"repro/internal/stats"
)

var (
	corpusOnce sync.Once
	testCorpus *corpus.Corpus
)

func getCorpus(t *testing.T) *corpus.Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		c, err := corpus.Generate(corpus.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		testCorpus = c
	})
	return testCorpus
}

func TestDatasetForShape(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	ds, err := tb.DatasetFor(HypHighSeverity)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 164 {
		t.Fatalf("rows = %d", ds.N())
	}
	if ds.P() != len(metrics.FeatureNames) {
		t.Fatalf("cols = %d", ds.P())
	}
	counts := ds.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate labels: %v", counts)
	}
}

func TestDatasetManyVulnsMedianSplit(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	ds, err := tb.DatasetFor(HypManyVulns)
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.ClassCounts()
	// A median split is roughly balanced.
	if counts[1] < 40 || counts[1] > 124 {
		t.Fatalf("median split unbalanced: %v", counts)
	}
}

func TestTransformAppliesLog(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	fv := metrics.FeatureVector{}
	for _, n := range metrics.FeatureNames {
		fv[n] = 0
	}
	fv[metrics.FeatKLoC] = 999 // log10(1+999) = 3
	row := tb.Transform(fv)
	idx := -1
	for i, n := range metrics.FeatureNames {
		if n == metrics.FeatKLoC {
			idx = i
		}
	}
	if row[idx] != 3 {
		t.Fatalf("kloc transformed to %v, want 3", row[idx])
	}
	// comment_ratio is not log-transformed.
	fv[metrics.FeatCommentRatio] = 0.5
	row = tb.Transform(fv)
	for i, n := range metrics.FeatureNames {
		if n == metrics.FeatCommentRatio && row[i] != 0.5 {
			t.Fatalf("comment_ratio transformed to %v", row[i])
		}
	}
}

func TestTrainHypothesisBeatsBaseline(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	rng := stats.NewRNG(3)
	cfg := TrainConfig{Kind: KindForest, Folds: 5, Seed: 3}
	hm, err := TrainHypothesis(tb, HypManyVulns, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	baseAcc := hm.BaseRate
	if baseAcc < 0.5 {
		baseAcc = 1 - baseAcc
	}
	if hm.CV.Accuracy <= baseAcc {
		t.Fatalf("forest CV accuracy %.3f does not beat majority baseline %.3f",
			hm.CV.Accuracy, baseAcc)
	}
	if hm.CV.AUC < 0.6 {
		t.Fatalf("AUC = %v", hm.CV.AUC)
	}
}

func TestTrainFullModel(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	cfg := TrainConfig{Kind: KindLogistic, Folds: 5, Seed: 9}
	m, err := Train(context.Background(), tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Hypotheses) != 5 {
		t.Fatalf("hypotheses = %d", len(m.Hypotheses))
	}
	if m.CountModel == nil {
		t.Fatal("count model missing")
	}
	if m.CountEval.R2 <= 0.2 {
		t.Fatalf("count regression R2 = %v; multi-feature regression should beat the Figure 2 single-feature fit", m.CountEval.R2)
	}
}

func TestFeatureSelectionKeepsAccuracy(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	rng := stats.NewRNG(5)
	full, err := TrainHypothesis(tb, HypManyVulns, TrainConfig{Kind: KindNaiveBayes, Folds: 5}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	selected, err := TrainHypothesis(tb, HypManyVulns, TrainConfig{Kind: KindNaiveBayes, Folds: 5, TopFeatures: 10}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if len(selected.Features) != 10 {
		t.Fatalf("selected features = %d", len(selected.Features))
	}
	if selected.CV.Accuracy < full.CV.Accuracy-0.1 {
		t.Fatalf("feature selection collapsed accuracy: %.3f vs %.3f",
			selected.CV.Accuracy, full.CV.Accuracy)
	}
}

func TestScoreReport(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindLogistic, Folds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Score a known vulnerable-looking corpus app (unsafe C, many vulns).
	var risky, safe *corpus.AppProfile
	for i := range testCorpus.Apps {
		a := &testCorpus.Apps[i]
		if risky == nil || a.VulnCount > risky.VulnCount {
			risky = a
		}
		if safe == nil || a.VulnCount < safe.VulnCount {
			safe = a
		}
	}
	riskyRep := m.Score(risky.App.Name, risky.Features)
	safeRep := m.Score(safe.App.Name, safe.Features)
	if riskyRep.RiskScore <= safeRep.RiskScore {
		t.Fatalf("risk ordering wrong: %s=%.1f vs %s=%.1f (vulns %d vs %d)",
			risky.App.Name, riskyRep.RiskScore, safe.App.Name, safeRep.RiskScore,
			risky.VulnCount, safe.VulnCount)
	}
	if riskyRep.ExpectedVulns <= safeRep.ExpectedVulns {
		t.Fatalf("expected-vuln ordering wrong: %.1f vs %.1f",
			riskyRep.ExpectedVulns, safeRep.ExpectedVulns)
	}
	out := riskyRep.String()
	if !strings.Contains(out, "risk score") && !strings.Contains(out, "Aggregate") {
		t.Fatalf("report rendering: %q", out)
	}
}

func TestCompareVersions(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindLogistic, Folds: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	old := testCorpus.Apps[0].Features.Clone()
	newer := old.Clone()
	// The "change" adds a pile of unsafe calls and tainted flows.
	newer[metrics.FeatUnsafeCalls] = old[metrics.FeatUnsafeCalls]*4 + 500
	newer[metrics.FeatTaintedSinks] = old[metrics.FeatTaintedSinks]*4 + 200
	newer[metrics.FeatLintWarnings] = old[metrics.FeatLintWarnings]*2 + 300
	cmp := m.Compare("v1", old, "v2", newer)
	if cmp.DeltaRisk <= 0 {
		t.Fatalf("adding unsafe code lowered risk: %+v", cmp.Verdict())
	}
	if len(cmp.FeatureDeltas) == 0 {
		t.Fatal("no feature deltas reported")
	}
	found := false
	for _, d := range cmp.FeatureDeltas {
		if d.Name == metrics.FeatUnsafeCalls {
			found = true
		}
	}
	if !found {
		t.Fatalf("unsafe_calls delta not reported: %+v", cmp.FeatureDeltas)
	}
	if !strings.Contains(cmp.String(), "RISK UP") {
		t.Fatalf("verdict = %q", cmp.Verdict())
	}
}

func TestExtractFeaturesEndToEnd(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.VulnDensity = 1
	spec.Seed = 99
	tree := langgen.Generate(spec)
	fv := ExtractFeatures(tree)
	if fv[metrics.FeatKLoC] <= 0 {
		t.Fatal("kloc missing")
	}
	if fv[metrics.FeatTaintedSinks] == 0 {
		t.Fatal("taint enrichment missing on fully-injected tree")
	}
	if fv[metrics.FeatLintWarnings] == 0 {
		t.Fatal("lint enrichment missing")
	}
	if fv[metrics.FeatFeasiblePaths] <= 0 {
		t.Fatal("symexec enrichment missing")
	}
	if fv[metrics.FeatCallDepth] < 1 {
		t.Fatal("call-graph enrichment missing")
	}
	if fv[metrics.FeatDynBranchCov] <= 0 || fv[metrics.FeatDynBranchCov] > 1 {
		t.Fatalf("dynamic branch coverage = %v", fv[metrics.FeatDynBranchCov])
	}
	if fv[metrics.FeatDynUniquePaths] <= 0 {
		t.Fatal("dynamic path diversity missing")
	}
}

func TestExtractFeaturesCleanTree(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.VulnDensity = 0
	spec.Seed = 100
	dirty := langgen.Generate(langgen.Spec{
		Language: spec.Language, Files: spec.Files, FuncsPerFile: spec.FuncsPerFile,
		StmtsPerFunc: spec.StmtsPerFunc, BranchProb: spec.BranchProb,
		LoopProb: spec.LoopProb, CallProb: spec.CallProb, CommentRate: spec.CommentRate,
		VulnDensity: 1, Seed: 100,
	})
	clean := langgen.Generate(spec)
	cleanFV := ExtractFeatures(clean)
	dirtyFV := ExtractFeatures(dirty)
	if dirtyFV[metrics.FeatTaintedSinks] <= cleanFV[metrics.FeatTaintedSinks] {
		t.Fatalf("taint feature does not separate: clean=%v dirty=%v",
			cleanFV[metrics.FeatTaintedSinks], dirtyFV[metrics.FeatTaintedSinks])
	}
}

func TestNewClassifierKinds(t *testing.T) {
	for _, k := range AllKinds {
		c, err := NewClassifier(k)
		if err != nil || c == nil {
			t.Fatalf("kind %s: %v", k, err)
		}
	}
	if _, err := NewClassifier("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestStatsFromRecords(t *testing.T) {
	recs := getCorpus(t).DB.Records(testCorpus.Apps[0].App.Name)
	s := StatsFromRecords(testCorpus.Apps[0].App, recs)
	if s.Count != len(recs) {
		t.Fatalf("count = %d", s.Count)
	}
	st, _ := testCorpus.DB.StatsFor(testCorpus.Apps[0].App.Name)
	if s.HighSeverity != st.HighSeverity || s.NetworkVector != st.NetworkVector {
		t.Fatalf("stats disagree: %+v vs %+v", s, st)
	}
}

func TestPredictionBandOrdering(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindLogistic, Folds: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range testCorpus.Apps[:20] {
		rep := m.Score(a.App.Name, a.Features)
		if !(rep.ExpectedVulnsLo <= rep.ExpectedVulns && rep.ExpectedVulns <= rep.ExpectedVulnsHi) {
			t.Fatalf("%s band out of order: %v %v %v", a.App.Name,
				rep.ExpectedVulnsLo, rep.ExpectedVulns, rep.ExpectedVulnsHi)
		}
		// log10(1+x) targets invert to 10^x - 1, so a very safe app's
		// lower band legitimately touches zero.
		if rep.ExpectedVulnsLo < 0 {
			t.Fatalf("%s band lower bound = %v", a.App.Name, rep.ExpectedVulnsLo)
		}
	}
	// The band must contain the true count for the large majority of apps
	// (it is a 90% band measured in-sample).
	inside := 0
	for _, a := range testCorpus.Apps {
		rep := m.Score(a.App.Name, a.Features)
		v := float64(a.VulnCount)
		if v >= rep.ExpectedVulnsLo && v <= rep.ExpectedVulnsHi {
			inside++
		}
	}
	frac := float64(inside) / float64(len(testCorpus.Apps))
	if frac < 0.75 {
		t.Fatalf("band coverage = %v, want >= 0.75", frac)
	}
}
