package core

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ModelKind selects a classifier family.
type ModelKind string

// Available kinds.
const (
	KindZeroR      ModelKind = "zeror"
	KindNaiveBayes ModelKind = "naivebayes"
	KindLogistic   ModelKind = "logistic"
	KindTree       ModelKind = "tree"
	KindForest     ModelKind = "forest"
	KindKNN        ModelKind = "knn"
	KindBoost      ModelKind = "boost"
)

// AllKinds lists every classifier family, baseline first.
var AllKinds = []ModelKind{KindZeroR, KindNaiveBayes, KindLogistic, KindTree, KindForest, KindKNN, KindBoost}

// NewClassifier constructs a fresh classifier of the kind.
func NewClassifier(kind ModelKind) (ml.Classifier, error) {
	switch kind {
	case KindZeroR:
		return &ml.ZeroR{}, nil
	case KindNaiveBayes:
		return &ml.GaussianNB{}, nil
	case KindLogistic:
		return &ml.Logistic{}, nil
	case KindTree:
		return &ml.DecisionTree{}, nil
	case KindForest:
		return &ml.RandomForest{Trees: 30, Seed: 7}, nil
	case KindKNN:
		return &ml.KNN{K: 7}, nil
	case KindBoost:
		return &ml.AdaBoost{Rounds: 40, Seed: 7}, nil
	default:
		return nil, fmt.Errorf("core: unknown model kind %q", kind)
	}
}

// TrainConfig controls training.
type TrainConfig struct {
	Kind ModelKind
	// Folds for cross validation (Figure 4's "with cross validation").
	Folds int
	// TopFeatures, when > 0, keeps only the highest-information-gain
	// features before training.
	TopFeatures int
	Seed        uint64
	// Jobs bounds the training worker pools (hypothesis fan-out, CV folds,
	// forest trees); <= 0 uses every core. The trained model is
	// bit-identical for any Jobs value: all seed-derived randomness is
	// consumed in a fixed order before any fan-out.
	Jobs int
}

// DefaultTrainConfig mirrors Weka defaults: 10-fold CV, random forest.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Kind: KindForest, Folds: 10, Seed: 17}
}

// HypothesisModel is one trained hypothesis classifier plus its evaluation.
type HypothesisModel struct {
	Hypothesis Hypothesis
	Kind       ModelKind
	Classifier ml.Classifier
	CV         *ml.CVResult
	// Features are the attribute names the classifier consumes, in column
	// order (after any feature selection).
	Features []string
	// Importance ranks features by information gain against this
	// hypothesis' labels — "each weight shows the importance of the
	// corresponding code property" (§5.3).
	Importance []ml.FeatureWeight
	// BaseRate is the positive-class frequency, the ZeroR yardstick.
	BaseRate float64
}

// Model is the full trained artifact: one classifier per hypothesis plus
// the vulnerability-count regressor.
type Model struct {
	Config     TrainConfig
	Hypotheses []*HypothesisModel
	// CountModel predicts log10(#vulns).
	CountModel ml.Regressor
	CountEval  ml.RegressionMetrics
	// CountResidualStd is the training residual standard deviation in
	// log10 space; Score turns it into a ~90% prediction band.
	CountResidualStd float64
	// Transformer is retained for the feature transformation at predict
	// time; it is all a deployed model needs from the testbed.
	Transformer *Transformer
}

// Train runs the Figure 4 training phase over the corpus for the standard
// hypotheses plus HypManyVulns. Hypotheses train concurrently on a pool
// bounded by cfg.Jobs; the per-hypothesis RNGs are split from the seed in
// hypothesis order before the fan-out, so the model is identical to a
// sequential (Jobs = 1) run. Canceling ctx drains the pool cleanly and
// returns ctx's error (first-error-wins, matching ml.ParallelForCtx).
func Train(ctx context.Context, tb *Testbed, cfg TrainConfig) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := NewClassifier(cfg.Kind); err != nil {
		return nil, err
	}
	hyps := append(StandardHypotheses(), HypManyVulns)
	// Span layout mirrors the extraction pipeline's discipline: the
	// sequential impute phase uses Child (seq 0), the parallel
	// per-hypothesis spans use ChildAt keyed by hypothesis index, and the
	// trailing regression span is keyed past them — deterministic
	// structure at any Jobs width.
	tr := trace.SpanFromContext(ctx).Child("train")
	defer tr.End()
	is := tr.Child("impute")
	tb.FitImputation()
	is.End()
	m := &Model{Config: cfg, Transformer: tb.Transformer}
	rng := stats.NewRNG(cfg.Seed)
	rngs := make([]*stats.RNG, len(hyps))
	for i := range hyps {
		rngs[i] = rng.Split()
	}
	hms := make([]*HypothesisModel, len(hyps))
	if err := ml.ParallelForCtx(ctx, len(hyps), cfg.Jobs, func(i int) error {
		hs := tr.ChildAt(1+i, "hypothesis")
		hs.SetLabel(hyps[i].Name)
		hm, err := TrainHypothesis(tb, hyps[i], cfg, rngs[i])
		hs.End()
		if err != nil {
			return fmt.Errorf("core: training %s: %w", hyps[i].Name, err)
		}
		hms[i] = hm
		return nil
	}); err != nil {
		return nil, err
	}
	m.Hypotheses = hms
	// Count regression.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rs := tr.ChildAt(1+len(hyps), "regression")
	defer rs.End()
	reg, err := tb.RegressionDataset()
	if err != nil {
		return nil, err
	}
	var countModel ml.Regressor = &ml.LinearRegressor{Lambda: 1.0}
	if err := countModel.Fit(reg); err != nil {
		return nil, err
	}
	m.CountModel = countModel
	m.CountEval = ml.EvaluateRegressor(countModel, reg)
	m.CountResidualStd = m.CountEval.RMSE
	return m, nil
}

// TrainHypothesis trains and cross-validates one hypothesis classifier.
func TrainHypothesis(tb *Testbed, h Hypothesis, cfg TrainConfig, rng *stats.RNG) (*HypothesisModel, error) {
	// Validate the kind once up front so the classifier factory below can
	// never fail mid-fold.
	if _, err := NewClassifier(cfg.Kind); err != nil {
		return nil, err
	}
	ds, err := tb.DatasetFor(h)
	if err != nil {
		return nil, err
	}
	gains := ml.InfoGain(ds, 10)
	importance := ml.RankFeatureWeights(ds.AttrNames, gains)
	if cfg.TopFeatures > 0 && cfg.TopFeatures < ds.P() {
		cols := ml.SelectTopK(gains, cfg.TopFeatures)
		ds = ml.ProjectColumns(ds, cols)
	}
	folds := cfg.Folds
	if folds < 2 {
		folds = 10
	}
	cv, err := ml.CrossValidateJobs(func() ml.Classifier {
		c, _ := NewClassifier(cfg.Kind) // kind validated at the top
		return c
	}, ds, folds, rng, cfg.Jobs)
	if err != nil {
		return nil, err
	}
	final, err := NewClassifier(cfg.Kind)
	if err != nil {
		return nil, err
	}
	if err := final.Fit(ds); err != nil {
		return nil, err
	}
	counts := ds.ClassCounts()
	base := 0.0
	if ds.N() > 0 {
		base = float64(counts[1]) / float64(ds.N())
	}
	return &HypothesisModel{
		Hypothesis: h,
		Kind:       cfg.Kind,
		Classifier: final,
		CV:         cv,
		Features:   append([]string(nil), ds.AttrNames...),
		Importance: importance,
		BaseRate:   base,
	}, nil
}

// projectRow maps a full transformed feature row onto the (possibly
// feature-selected) column set of a hypothesis model.
func (hm *HypothesisModel) projectRow(full []float64) []float64 {
	if len(hm.Features) == len(metrics.FeatureNames) {
		return full
	}
	idx := map[string]int{}
	for i, n := range metrics.FeatureNames {
		idx[n] = i
	}
	row := make([]float64, len(hm.Features))
	for i, n := range hm.Features {
		row[i] = full[idx[n]]
	}
	return row
}
