package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/featcache"
	"repro/internal/langgen"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// TestTrainParallelByteIdenticalModel is the acceptance gate of the
// parallel training engine: a fully parallel train must persist to the
// exact same JSON as a sequential (Jobs = 1) train with the same seed.
func TestTrainParallelByteIdenticalModel(t *testing.T) {
	c := getCorpus(t)
	train := func(jobs int) []byte {
		cfg := TrainConfig{Kind: KindForest, Folds: 3, Seed: 99, Jobs: jobs}
		m, err := Train(context.Background(), NewTestbed(c), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := train(1)
	par := train(8)
	if !bytes.Equal(seq, par) {
		t.Fatal("parallel training produced a different persisted model than sequential")
	}
}

func TestTrainRejectsInvalidKindWithoutPanic(t *testing.T) {
	c := getCorpus(t)
	_, err := Train(context.Background(), NewTestbed(c), TrainConfig{Kind: ModelKind("bogus"), Folds: 2, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestTrainHypothesisRejectsInvalidKind(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	_, err := TrainHypothesis(tb, HypManyVulns,
		TrainConfig{Kind: ModelKind("nope"), Folds: 2}, stats.NewRNG(1))
	if err == nil || !strings.Contains(err.Error(), "unknown model kind") {
		t.Fatalf("err = %v, want unknown-kind error", err)
	}
}

func TestExtractFeaturesWithMatchesDefault(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	base := ExtractFeatures(tree)
	for _, jobs := range []int{1, 4} {
		got, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range metrics.FeatureNames {
			if got[n] != base[n] {
				t.Fatalf("jobs=%d: feature %s = %v, want %v", jobs, n, got[n], base[n])
			}
		}
	}
}

func TestExtractFeaturesCacheHitMissAndInvalidation(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	cache, err := featcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExtractConfig{Cache: cache}

	cold, err := ExtractFeaturesWith(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, coldMisses := cache.Stats()
	if coldMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}

	warm, err := ExtractFeaturesWith(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if misses != coldMisses {
		t.Fatalf("warm run re-analyzed: misses %d -> %d", coldMisses, misses)
	}
	if hits == 0 {
		t.Fatal("warm run recorded no hits")
	}
	for _, n := range metrics.FeatureNames {
		if warm[n] != cold[n] {
			t.Fatalf("cached feature %s = %v, want %v", n, warm[n], cold[n])
		}
	}

	// Changing one file's bytes must re-analyze exactly that file.
	changed := &metrics.Tree{Name: tree.Name, Files: append([]metrics.File(nil), tree.Files...)}
	changed.Files[0].Content += "\nint added(void) { return 1; }\n"
	if _, err := ExtractFeaturesWith(context.Background(), changed, cfg); err != nil {
		t.Fatal(err)
	}
	_, afterChange := cache.Stats()
	if afterChange != coldMisses+1 {
		t.Fatalf("content change caused %d new misses, want 1", afterChange-coldMisses)
	}

	// A version bump invalidates every entry: fresh keys all miss.
	for _, f := range tree.Files {
		if _, ok := cache.Get(featcache.Key(AnalysisVersion+"-next", f.Language.String(), f.Content)); ok {
			t.Fatal("version-bumped key unexpectedly hit")
		}
	}
}

func TestExtractFeaturesCachePersistsAcrossCaches(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 2
	tree := langgen.Generate(spec)
	dir := t.TempDir()

	c1, err := featcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{Cache: c1})
	if err != nil {
		t.Fatal(err)
	}

	// A second process over the same directory starts warm.
	c2, err := featcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := c2.Stats()
	if misses != 0 || hits == 0 {
		t.Fatalf("second cache: %d hits, %d misses; want all hits", hits, misses)
	}
	for _, n := range metrics.FeatureNames {
		if second[n] != first[n] {
			t.Fatalf("persisted feature %s = %v, want %v", n, second[n], first[n])
		}
	}
}
