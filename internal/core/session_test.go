package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/featcache"
	"repro/internal/metrics"
)

// sessionSource builds deterministic MiniC-ish content that exercises the
// full pipeline: parseable functions (symexec, callgraph, interp), unsafe
// and format-string calls (findings, CWE counts), duplicated lines, magic
// numbers, and TODO markers.
func sessionSource(rng *rand.Rand) string {
	n := rng.Intn(1000)
	src := fmt.Sprintf(`
int limit_%d = %d;
int helper_%d(int x) {
	if (x > %d) { x = x - %d; }
	while (x > 2) { x = x / 2; }
	return x + %d;
}
int main() {
	int buf[%d];
	// TODO tighten bounds checking here
	strcpy(buf[0], read_input());
	printf(user_format_string);
	return helper_%d(%d);
}
`, n, 100+rng.Intn(900), n%7, rng.Intn(50), 1+rng.Intn(5), rng.Intn(9), 8+rng.Intn(24), n%7, rng.Intn(40))
	return src
}

// sessionFileAt draws a file in one of several shapes: MiniC, a file that
// fails to parse (parse-skip path), or a managed-language file.
func sessionFileAt(rng *rand.Rand, path string) metrics.File {
	t := metrics.NewTree("gen", metrics.File{Path: path, Content: sessionContent(rng, path)})
	return t.Files[0] // NewTree infers the language from the path
}

func sessionContent(rng *rand.Rand, path string) string {
	switch {
	case len(path) > 3 && path[len(path)-3:] == ".py":
		return fmt.Sprintf("def handler_%d(x):\n    # TODO port this\n    return x * %d\n", rng.Intn(10), rng.Intn(9))
	case rng.Intn(5) == 0:
		return fmt.Sprintf("int broken_%d( { this does not parse %d\n", rng.Intn(10), rng.Intn(99))
	default:
		return sessionSource(rng)
	}
}

func assertSameFV(t *testing.T, label string, got, want metrics.FeatureVector) {
	t.Helper()
	g, w := got.Slice(), want.Slice()
	for i, name := range metrics.FeatureNames {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("%s: feature %s: session %v != full extraction %v", label, name, g[i], w[i])
		}
	}
}

// TestSessionRandomChangesetParity is the byte-parity contract: after every
// changeset in a random add/modify/remove sequence, session features are
// bit-identical to a fresh full extraction of the final tree — at one
// worker and at eight.
func TestSessionRandomChangesetParity(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xc0ffee + int64(jobs)))
			sess := NewSession("prop", ExtractConfig{Jobs: jobs})
			ctx := context.Background()

			var seed []metrics.File
			for i := 0; i < 6; i++ {
				seed = append(seed, sessionFileAt(rng, fmt.Sprintf("src/f%02d.mc", i)))
			}
			if _, err := sess.Apply(ctx, Changeset{Added: seed}); err != nil {
				t.Fatal(err)
			}

			for step := 0; step < 8; step++ {
				var cs Changeset
				paths := sess.Tree()
				switch {
				case step%3 == 0 || len(paths.Files) < 3: // add a couple
					for j := 0; j < 1+rng.Intn(2); j++ {
						ext := ".mc"
						if rng.Intn(3) == 0 {
							ext = ".py"
						}
						cs.Added = append(cs.Added, sessionFileAt(rng, fmt.Sprintf("src/n%02d_%d%s", step, j, ext)))
					}
					if len(paths.Files) > 2 {
						p := paths.Files[rng.Intn(len(paths.Files))].Path
						cs.Modified = append(cs.Modified, sessionFileAt(rng, p))
					}
				case step%3 == 1: // modify
					p := paths.Files[rng.Intn(len(paths.Files))].Path
					cs.Modified = append(cs.Modified, sessionFileAt(rng, p))
				default: // remove one, modify another
					i := rng.Intn(len(paths.Files))
					cs.Removed = append(cs.Removed, paths.Files[i].Path)
					j := (i + 1) % len(paths.Files)
					cs.Modified = append(cs.Modified, sessionFileAt(rng, paths.Files[j].Path))
				}
				res, err := sess.Apply(ctx, cs)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				full, _, err := ExtractFeaturesDiagnostics(ctx, sess.Tree(), ExtractConfig{Jobs: jobs})
				if err != nil {
					t.Fatal(err)
				}
				assertSameFV(t, fmt.Sprintf("step %d", step), res.Features, full)
				if res.Files != len(sess.Tree().Files) {
					t.Fatalf("step %d: Files = %d, want %d", step, res.Files, len(sess.Tree().Files))
				}
				if res.Seq != uint64(step+2) {
					t.Fatalf("step %d: Seq = %d, want %d", step, res.Seq, step+2)
				}
			}
		})
	}
}

// TestSessionParityWithSharedCache runs a session against a shared cache
// and checks both parity (cached enrichments are byte-stable) and that a
// re-added identical file is served from the cache.
func TestSessionParityWithSharedCache(t *testing.T) {
	cache := featcache.NewMemory()
	sess := NewSession("cached", ExtractConfig{Jobs: 2, Cache: cache})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	f1 := sessionFileAt(rng, "a.mc")
	f2 := sessionFileAt(rng, "b.mc")
	if _, err := sess.Apply(ctx, Changeset{Added: []metrics.File{f1, f2}}); err != nil {
		t.Fatal(err)
	}
	// Re-adding identical content under a new path must hit the cache.
	f3 := metrics.File{Path: "c.mc", Language: f1.Language, Content: f1.Content}
	res, err := sess.Apply(ctx, Changeset{Added: []metrics.File{f3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnostics.CacheHits != 1 || res.Diagnostics.CacheMisses != 0 {
		t.Fatalf("expected pure cache hit for duplicate content, got hits=%d misses=%d",
			res.Diagnostics.CacheHits, res.Diagnostics.CacheMisses)
	}
	full, _, err := ExtractFeaturesDiagnostics(ctx, sess.Tree(), ExtractConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameFV(t, "cached", res.Features, full)
}

// TestSessionValidation covers the stale-state and shape errors, and that
// every rejected changeset leaves the session untouched.
func TestSessionValidation(t *testing.T) {
	sess := NewSession("val", ExtractConfig{Jobs: 1})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	f := sessionFileAt(rng, "a.mc")
	g := sessionFileAt(rng, "b.mc")

	// Incremental pushes against a fresh session are stale, not fatal.
	if _, err := sess.Apply(ctx, Changeset{Modified: []metrics.File{f}}); !errors.Is(err, ErrStaleSession) {
		t.Fatalf("modify on fresh session: got %v, want ErrStaleSession", err)
	}
	if _, err := sess.Apply(ctx, Changeset{Added: []metrics.File{f, g}}); err != nil {
		t.Fatal(err)
	}
	before := sess.Features()
	seq := sess.Seq()

	cases := []struct {
		name string
		cs   Changeset
		want error
	}{
		{"add existing", Changeset{Added: []metrics.File{f}}, ErrStaleSession},
		{"modify missing", Changeset{Modified: []metrics.File{sessionFileAt(rng, "nope.mc")}}, ErrStaleSession},
		{"remove missing", Changeset{Removed: []string{"nope.mc"}}, ErrStaleSession},
		{"would empty", Changeset{Removed: []string{"a.mc", "b.mc"}}, ErrSessionEmpty},
		{"empty changeset", Changeset{}, nil},
		{"duplicate path", Changeset{Modified: []metrics.File{f}, Removed: []string{"a.mc"}}, nil},
		{"empty path", Changeset{Removed: []string{""}}, nil},
	}
	for _, tc := range cases {
		_, err := sess.Apply(ctx, tc.cs)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if sess.Seq() != seq {
		t.Fatal("rejected changesets must not advance seq")
	}
	assertSameFV(t, "after rejections", sess.Features(), before)
}

// TestSessionCancelLeavesStateIntact checks that a canceled Apply is a
// no-op: the session keeps serving its previous state and a subsequent
// good changeset still satisfies parity.
func TestSessionCancelLeavesStateIntact(t *testing.T) {
	sess := NewSession("cancel", ExtractConfig{Jobs: 2})
	rng := rand.New(rand.NewSource(11))
	seed := []metrics.File{sessionFileAt(rng, "a.mc"), sessionFileAt(rng, "b.mc")}
	if _, err := sess.Apply(context.Background(), Changeset{Added: seed}); err != nil {
		t.Fatal(err)
	}
	before := sess.Features()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Apply(canceled, Changeset{Modified: []metrics.File{sessionFileAt(rng, "a.mc")}}); err == nil {
		t.Fatal("expected cancellation error")
	}
	if sess.Seq() != 1 || sess.Len() != 2 {
		t.Fatalf("canceled apply mutated state: seq=%d len=%d", sess.Seq(), sess.Len())
	}
	assertSameFV(t, "after cancel", sess.Features(), before)

	res, err := sess.Apply(context.Background(), Changeset{Modified: []metrics.File{sessionFileAt(rng, "b.mc")}})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := ExtractFeaturesDiagnostics(context.Background(), sess.Tree(), ExtractConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertSameFV(t, "post-cancel apply", res.Features, full)
}

// TestConcurrentCacheAttribution is the regression test for the
// cache-traffic attribution bug: diagnostics used to be computed as deltas
// over the cache's process-global counters, so two concurrent extractions
// sharing one cache attributed each other's traffic. Run A (4 warmed files
// + 1 fresh file stalled by the test hook) overlaps run B (4 fresh files)
// entirely; with per-run counters A must report exactly its own 4 hits and
// 1 miss, and B its own 4 misses.
func TestConcurrentCacheAttribution(t *testing.T) {
	cache := featcache.NewMemory()
	ctx := context.Background()

	warm := make([]metrics.File, 4)
	for i := range warm {
		warm[i] = metrics.File{
			Path:    fmt.Sprintf("a%d.mc", i),
			Content: fmt.Sprintf("int warm_%d(int x) { if (x > %d) { x = 0; } return x; }\n", i, i),
		}
	}
	warmTree := metrics.NewTree("warm", warm...)
	if _, _, err := ExtractFeaturesDiagnostics(ctx, warmTree, ExtractConfig{Cache: cache, Jobs: 2}); err != nil {
		t.Fatal(err)
	}

	stall := metrics.File{Path: "zz_stall.mc", Content: "int stall_fn(int x) { return x + 41; }\n"}
	treeA := metrics.NewTree("A", append(append([]metrics.File{}, warm...), stall)...)
	var b []metrics.File
	for i := range warm {
		b = append(b, metrics.File{
			Path:    fmt.Sprintf("b%d.mc", i),
			Content: fmt.Sprintf("int cold_%d(int x) { while (x > %d) { x = x - 1; } return x; }\n", i, i),
		})
	}
	treeB := metrics.NewTree("B", b...)

	release := make(chan struct{})
	enrichTestHook = func(f metrics.File) {
		if f.Path == "zz_stall.mc" {
			<-release
		}
	}
	defer func() { enrichTestHook = nil }()

	var wg sync.WaitGroup
	var diagA *AnalysisDiagnostics
	var errA error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, diagA, errA = ExtractFeaturesDiagnostics(ctx, treeA, ExtractConfig{Cache: cache, Jobs: 2})
	}()

	// B starts and finishes entirely inside A's window: A cannot complete
	// until release is closed, which happens only after B returns.
	_, diagB, err := ExtractFeaturesDiagnostics(ctx, treeB, ExtractConfig{Cache: cache, Jobs: 2})
	close(release)
	wg.Wait()
	if err != nil || errA != nil {
		t.Fatalf("extractions failed: %v / %v", err, errA)
	}

	if diagA.CacheHits != 4 || diagA.CacheMisses != 1 {
		t.Fatalf("run A attribution wrong: hits=%d misses=%d, want 4/1 (global-delta accounting leaks concurrent traffic)",
			diagA.CacheHits, diagA.CacheMisses)
	}
	if diagB.CacheHits != 0 || diagB.CacheMisses != 4 {
		t.Fatalf("run B attribution wrong: hits=%d misses=%d, want 0/4", diagB.CacheHits, diagB.CacheMisses)
	}
}
