package core

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// traceTree builds a multi-file MiniC tree large enough that a parallel
// extraction actually interleaves workers. Cacheless on purpose: a shared
// cache makes duplicate-content files race to it, which legitimately
// changes span structure across widths.
func traceTree(n int) *metrics.Tree {
	files := make([]metrics.File, n)
	for i := range files {
		files[i] = metrics.File{
			Path: fmt.Sprintf("f%02d.mc", i),
			Content: fmt.Sprintf(`
int limit_%d = %d;
int work_%d(int x) {
	int buf[%d];
	if (x > limit_%d) { x = limit_%d; }
	strcpy(buf[0], read_input());
	return x + %d;
}
`, i, i, i, 8+i, i, i, i),
		}
	}
	return metrics.NewTree("trace-tree", files...)
}

func runTraced(t *testing.T, tree *metrics.Tree, jobs int) (*trace.Tracer, metrics.FeatureVector, *AnalysisDiagnostics) {
	t.Helper()
	tr := trace.New("analyze")
	ctx := trace.ContextWithSpan(context.Background(), tr.Root())
	fv, diag, err := ExtractFeaturesDiagnostics(ctx, tree, ExtractConfig{Jobs: jobs})
	tr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return tr, fv, diag
}

// TestTraceStructureDeterministicAcrossWidths is the determinism contract
// on the real pipeline: the span tree's durationless rendering is
// byte-identical whether one worker or eight extracted the tree.
func TestTraceStructureDeterministicAcrossWidths(t *testing.T) {
	tree := traceTree(12)
	tr1, fv1, _ := runTraced(t, tree, 1)
	tr8, fv8, _ := runTraced(t, tree, 8)

	s1, s8 := tr1.StructureString(), tr8.StructureString()
	if s1 != s8 {
		t.Fatalf("span structure differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", s1, s8)
	}
	if !strings.Contains(s1, "file [f00.mc]") || !strings.Contains(s1, "file [f11.mc]") {
		t.Fatalf("structure missing per-file spans:\n%s", s1)
	}
	for _, phase := range []string{"extract", "base", "lint", "deep", "parse", "taint", "symexec", "callgraph", "interp", "findings"} {
		if !strings.Contains(s1, phase) {
			t.Errorf("structure missing phase %q:\n%s", phase, s1)
		}
	}
	if canonJSON(t, fv1) != canonJSON(t, fv8) {
		t.Fatal("vectors differ across widths")
	}
}

// TestTracedRunOutputIdenticalToUntraced is the zero-cost contract's other
// half: attaching a tracer changes nothing about the extraction's outputs —
// same vector, byte-identical serialized diagnostics.
func TestTracedRunOutputIdenticalToUntraced(t *testing.T) {
	tree := traceTree(6)
	for _, jobs := range []int{1, 8} {
		fvOff, diagOff, err := ExtractFeaturesDiagnostics(context.Background(), tree, ExtractConfig{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		_, fvOn, diagOn := runTraced(t, tree, jobs)
		if canonJSON(t, fvOff) != canonJSON(t, fvOn) {
			t.Fatalf("jobs=%d: traced vector differs from untraced", jobs)
		}
		if canonJSON(t, diagOff) != canonJSON(t, diagOn) {
			t.Fatalf("jobs=%d: traced diagnostics differ from untraced:\n%s\nvs\n%s",
				jobs, canonJSON(t, diagOff), canonJSON(t, diagOn))
		}
		if strings.Contains(canonJSON(t, diagOn), `"trace"`) {
			t.Fatalf("jobs=%d: extraction attached a trace summary on its own", jobs)
		}
	}
}

// TestTraceExportOnRealPipeline sanity-checks the Chrome export and the
// slowest-files report against a real run.
func TestTraceExportOnRealPipeline(t *testing.T) {
	tree := traceTree(5)
	tr, _, _ := runTraced(t, tree, 4)

	var sb strings.Builder
	if err := tr.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) < 5 {
		t.Fatalf("only %d events exported", len(tf.TraceEvents))
	}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" || ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
	}

	slow := tr.SlowestFiles(3)
	if len(slow) != 3 {
		t.Fatalf("slowest = %d entries, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Seconds > slow[i-1].Seconds {
			t.Fatal("slowest files not sorted descending")
		}
	}
	if !strings.HasPrefix(slow[0].Path, "f") {
		t.Fatalf("slowest path = %q, want a file label", slow[0].Path)
	}
}

func canonJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}
