package core

import (
	"context"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/featcache"
	"repro/internal/ir"
	"repro/internal/metrics"
)

// wrappedFlowSrc hides the taint source behind a helper's return value, so
// intraprocedural sink counting sees nothing: with no summary for fetch,
// its result looks clean, and the strcpy in main never fires.
const wrappedFlowSrc = `
int fetch(void) {
	int p = recv(0);
	return p;
}
int main(void) {
	int buf = 0;
	int req = fetch();
	strcpy(buf, req);
	return 0;
}`

// cleanFlowSrc is the same shape with the source removed.
const cleanFlowSrc = `
int fetch(void) {
	return 7;
}
int main(void) {
	int buf = 0;
	int req = fetch();
	strcpy(buf, req);
	return 0;
}`

// TestInterprocFeatureMovesOnCrossFunctionFlow is the tentpole acceptance
// test: a flow the intraprocedural counter misses must still move the
// interprocedural and CWE-121 feature columns.
func TestInterprocFeatureMovesOnCrossFunctionFlow(t *testing.T) {
	// The intraprocedural counter genuinely misses this flow.
	if n := dataflow.CountTaintedSinks(ir.MustLowerSource(wrappedFlowSrc)); n != 0 {
		t.Fatalf("intraprocedural CountTaintedSinks = %d, want 0 (flow should require summaries)", n)
	}

	extract := func(src string) metrics.FeatureVector {
		tree := metrics.NewTree("flow", metrics.File{Path: "flow.mc", Content: src})
		fv, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return fv
	}
	vuln := extract(wrappedFlowSrc)
	clean := extract(cleanFlowSrc)

	if vuln[metrics.FeatTaintedSinks] != 0 {
		t.Fatalf("tainted_sinks = %v, want 0 (the flow must be invisible intraprocedurally)", vuln[metrics.FeatTaintedSinks])
	}
	for _, n := range []string{metrics.FeatInterTaintedSinks, metrics.FeatCWE121Findings, metrics.FeatTaintDepthMax} {
		if vuln[n] <= clean[n] {
			t.Errorf("feature %s: vulnerable %v <= clean %v, want strictly greater", n, vuln[n], clean[n])
		}
	}
}

// TestInterprocFeaturesDeterministicSCC: features over recursive and
// mutually-recursive call graphs are identical at any pool width and across
// repeated runs.
func TestInterprocFeaturesDeterministicSCC(t *testing.T) {
	tree := metrics.NewTree("scc",
		metrics.File{Path: "wrapped.mc", Content: wrappedFlowSrc},
		metrics.File{Path: "selfrec.mc", Content: `
int dig(int d, int n) {
	if (n > 0) {
		strcpy(d, n);
		dig(d, n - 1);
	}
	return n;
}
int main(void) {
	int buf = 0;
	int pkt = recv(0);
	dig(buf, pkt);
	return 0;
}`},
		metrics.File{Path: "mutual.mc", Content: `
int pong(int v);
int ping(int v) {
	if (v > 0) { return pong(v - 1); }
	system(v);
	return 0;
}
int pong(int v) {
	return ping(v);
}
int main(void) {
	int pkt = recv(0);
	ping(pkt);
	return 0;
}`},
	)
	base, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base[metrics.FeatInterTaintedSinks] == 0 {
		t.Fatal("SCC programs produced no interprocedural findings; test lost its subject")
	}
	for _, jobs := range []int{1, 8} {
		for run := 0; run < 3; run++ {
			fv, err := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{Jobs: jobs})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range metrics.FeatureNames {
				if fv[n] != base[n] {
					t.Fatalf("jobs=%d run=%d: feature %s = %v, want %v", jobs, run, n, fv[n], base[n])
				}
			}
		}
	}
}

// TestDegradedFileZeroFillsInterprocFeatures: a file whose deep analysis
// panics contributes zeros to the new feature columns — deterministically
// across pool widths — and the degraded result is never cached.
func TestDegradedFileZeroFillsInterprocFeatures(t *testing.T) {
	tree := metrics.NewTree("degraded",
		metrics.File{Path: "vuln.mc", Content: wrappedFlowSrc})
	setHook(t, func(f metrics.File) { panic("injected analyzer bug") })

	cache, err := featcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	extract := func(jobs int) (metrics.FeatureVector, *AnalysisDiagnostics) {
		fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree,
			ExtractConfig{Jobs: jobs, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return fv, diag
	}
	seq, _ := extract(1)
	par, diag := extract(8)
	for _, n := range []string{
		metrics.FeatInterTaintedSinks, metrics.FeatTaintDepthMax,
		metrics.FeatCWE121Findings, metrics.FeatCWE134Findings, metrics.FeatCWE78Findings,
	} {
		if seq[n] != 0 {
			t.Errorf("degraded file leaked into feature %s = %v, want 0", n, seq[n])
		}
		if seq[n] != par[n] {
			t.Errorf("degraded feature %s differs across pool widths: %v vs %v", n, seq[n], par[n])
		}
	}
	if diag.Files[0].Status != StatusPanic {
		t.Fatalf("status = %s, want %s", diag.Files[0].Status, StatusPanic)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Fatalf("degraded result served from cache (%d hits)", hits)
	}

	// Once the analyzer bug is gone, the same cache re-analyzes the file and
	// the features reappear.
	enrichTestHook = nil
	fixed, diag := extract(1)
	if diag.Files[0].Status == StatusCacheHit {
		t.Fatal("degraded result was cached")
	}
	if fixed[metrics.FeatInterTaintedSinks] == 0 || fixed[metrics.FeatCWE121Findings] == 0 {
		t.Fatal("recovered run still missing interprocedural features")
	}
}
