package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/trace"
)

// This file is the apply-a-changeset form of the extraction pipeline
// (ROADMAP item 2). A Session holds one tree's per-file state — base-metric
// scans, lint counts, and deep-analysis enrichments — plus the aggregation
// state needed to update the tree-level feature vector when only a few
// files change. The correctness contract is byte parity: after any
// sequence of changesets, Features() is bit-identical to a fresh full
// ExtractFeaturesDiagnostics of the final tree at any Jobs width.
//
// How parity is maintained:
//   - Base metrics live in a metrics.TreeStats: exact integer sums by
//     delta, maxima by reference-counted value multisets, duplicate-line
//     and Halstead state as the same multiset maps the batch scan builds,
//     floats derived at Features() time by the shared batch code.
//   - Lint warnings are a per-file integer count (lint warnings depend
//     only on the file), summed by delta.
//   - Deep-analysis enrichments are cached per file; their two float sums
//     (FeasiblePaths, CovSum) are not associative under reordering, so the
//     aggregate is re-folded over all files in path order each Apply using
//     the same aggregateEnrichments the batch extractor uses. That fold is
//     a handful of adds per file — microseconds even for large trees —
//     while the expensive per-file work (tokenize, parse, symexec, interp)
//     runs only for touched files.

// Changeset describes one edit step against a session's tree. Paths obey
// the same rules as a batch tree: non-empty, unique, and meaningful to the
// session (Added must be new, Modified and Removed must exist — anything
// else means caller and session disagree about the current state, which is
// reported as ErrStaleSession so the caller can re-seed).
type Changeset struct {
	Added    []metrics.File
	Modified []metrics.File
	Removed  []string
}

// Empty reports whether the changeset carries no work.
func (cs *Changeset) Empty() bool {
	return len(cs.Added) == 0 && len(cs.Modified) == 0 && len(cs.Removed) == 0
}

// ErrStaleSession reports a changeset that contradicts the session's
// current file set. The caller's picture of the tree has diverged (or the
// session is fresh after an eviction); recovery is re-seeding with a full
// Added changeset.
var ErrStaleSession = errors.New("core: changeset does not match session state")

// ErrSessionEmpty rejects a changeset that would leave the session with no
// files, mirroring the batch pipeline's refusal to analyze an empty tree.
var ErrSessionEmpty = errors.New("core: changeset would leave the session empty")

// sessionFile is one file's retained analysis state.
type sessionFile struct {
	file   metrics.File
	scan   *metrics.FileScan
	lints  int
	enr    fileEnrichment
	status FileStatus
	detail string
}

// Session holds the incremental analysis state of one tree. All methods
// are safe for concurrent use; Apply calls serialize.
type Session struct {
	name string
	cfg  ExtractConfig

	mu        sync.Mutex
	files     map[string]*sessionFile
	paths     []string // sorted; the canonical tree order
	stats     *metrics.TreeStats
	lintTotal int
	seq       uint64
	fv        metrics.FeatureVector // features after the last Apply
}

// NewSession returns an empty session. The first Apply must seed it with
// an Added-only view of the full tree.
func NewSession(name string, cfg ExtractConfig) *Session {
	return &Session{
		name:  name,
		cfg:   cfg,
		files: map[string]*sessionFile{},
		stats: metrics.NewTreeStats(),
	}
}

// ApplyResult is the outcome of one changeset.
type ApplyResult struct {
	// Seq numbers the session's applied changesets, starting at 1.
	Seq uint64
	// Files is the session's file count after the changeset.
	Files int
	// Features is the tree's feature vector after the changeset,
	// byte-identical to a full extraction of the same tree.
	Features metrics.FeatureVector
	// OldFeatures is the vector before the changeset; nil on the seeding
	// changeset, when there is no previous state to diff against.
	OldFeatures metrics.FeatureVector
	// Diagnostics covers the re-extracted (added + modified) files in path
	// order, plus this changeset's feature-cache traffic.
	Diagnostics *AnalysisDiagnostics
}

// Name returns the session's identifier.
func (s *Session) Name() string { return s.name }

// Seq returns the number of changesets applied so far.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Len returns the session's current file count.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.files)
}

// Features returns a copy of the vector from the last Apply, or nil before
// the first.
func (s *Session) Features() metrics.FeatureVector {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fv == nil {
		return nil
	}
	return s.fv.Clone()
}

// Tree reconstructs the session's current tree in canonical (path-sorted)
// order — the exact tree a parity check feeds to the batch extractor.
func (s *Session) Tree() *metrics.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &metrics.Tree{Name: s.name}
	for _, p := range s.paths {
		t.Files = append(t.Files, s.files[p].file)
	}
	return t
}

// validate checks the changeset against the current file set without
// mutating anything, so a rejected changeset leaves the session exactly as
// it was.
func (s *Session) validate(cs Changeset) error {
	if cs.Empty() {
		return fmt.Errorf("core: empty changeset")
	}
	seen := map[string]bool{}
	note := func(p string) error {
		if p == "" {
			return fmt.Errorf("core: changeset contains an empty file path")
		}
		if seen[p] {
			return fmt.Errorf("core: changeset names %q more than once", p)
		}
		seen[p] = true
		return nil
	}
	for _, f := range cs.Added {
		if err := note(f.Path); err != nil {
			return err
		}
		if _, ok := s.files[f.Path]; ok {
			return fmt.Errorf("%w: added file %q already present", ErrStaleSession, f.Path)
		}
	}
	for _, f := range cs.Modified {
		if err := note(f.Path); err != nil {
			return err
		}
		if _, ok := s.files[f.Path]; !ok {
			return fmt.Errorf("%w: modified file %q not present", ErrStaleSession, f.Path)
		}
	}
	for _, p := range cs.Removed {
		if err := note(p); err != nil {
			return err
		}
		if _, ok := s.files[p]; !ok {
			return fmt.Errorf("%w: removed file %q not present", ErrStaleSession, p)
		}
	}
	if len(s.files)+len(cs.Added)-len(cs.Removed) == 0 {
		return ErrSessionEmpty
	}
	return nil
}

// Apply runs one changeset: re-extracts the touched files on the worker
// pool, then atomically updates the session's aggregates. On any error —
// validation, stale state, or context cancellation mid-extraction — the
// session state is untouched and the next Apply sees the previous tree.
func (s *Session) Apply(ctx context.Context, cs Changeset) (*ApplyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validate(cs); err != nil {
		return nil, err
	}

	ext := trace.SpanFromContext(ctx).Child("apply")
	defer ext.End()

	// Extraction phase: pure — results land in a scratch slice keyed by
	// the changed-file order, nothing touches session state until the pool
	// has drained and the context is known good.
	changed := make([]metrics.File, 0, len(cs.Added)+len(cs.Modified))
	changed = append(changed, cs.Added...)
	changed = append(changed, cs.Modified...)
	sort.Slice(changed, func(i, j int) bool { return changed[i].Path < changed[j].Path })

	var ct cacheTraffic
	results := make([]*sessionFile, len(changed))
	if len(changed) > 0 {
		workers := ml.EffectiveJobs(s.cfg.Jobs, len(changed))
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					if ctx.Err() != nil {
						continue
					}
					f := changed[i]
					fs := ext.ChildAt(i, trace.SpanNameFile)
					fs.SetLabel(f.Path)
					fs.Add("bytes", int64(len(f.Content)))
					sf := &sessionFile{file: f, scan: metrics.ScanFile(f)}
					sf.lints = lint.CheckFile(f).Total()
					sf.enr, sf.status, sf.detail = enrichFileCached(ctx, f, s.cfg, &ct, fs)
					fs.End()
					results[i] = sf
				}
			}()
		}
	dispatch:
		for i := range changed {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Commit phase: pure delta bookkeeping, no failure paths.
	for _, p := range cs.Removed {
		s.dropLocked(p)
	}
	for _, sf := range results {
		if old, ok := s.files[sf.file.Path]; ok {
			s.stats.Remove(old.scan)
			s.lintTotal -= old.lints
		} else {
			s.insertPathLocked(sf.file.Path)
		}
		s.stats.Add(sf.scan)
		s.lintTotal += sf.lints
		s.files[sf.file.Path] = sf
	}
	s.seq++

	// Feature assembly, sharing the batch extractor's code paths.
	fv := s.stats.Features()
	fv[metrics.FeatLintWarnings] = float64(s.lintTotal)
	enrs := make([]fileEnrichment, len(s.paths))
	for i, p := range s.paths {
		enrs[i] = s.files[p].enr
	}
	setEnrichmentFeatures(fv, aggregateEnrichments(enrs))

	diag := &AnalysisDiagnostics{Files: make([]FileDiagnostic, len(results))}
	for i, sf := range results {
		diag.Files[i] = FileDiagnostic{Path: sf.file.Path, Status: sf.status, Detail: sf.detail}
	}
	diag.CacheHits, diag.CacheMisses = ct.hits.Load(), ct.misses.Load()

	old := s.fv
	s.fv = fv
	return &ApplyResult{
		Seq:         s.seq,
		Files:       len(s.files),
		Features:    fv.Clone(),
		OldFeatures: old,
		Diagnostics: diag,
	}, nil
}

// dropLocked removes one path's state. Callers must hold s.mu and have
// validated that the path exists.
func (s *Session) dropLocked(p string) {
	sf := s.files[p]
	s.stats.Remove(sf.scan)
	s.lintTotal -= sf.lints
	delete(s.files, p)
	i := sort.SearchStrings(s.paths, p)
	s.paths = append(s.paths[:i], s.paths[i+1:]...)
}

// insertPathLocked adds a new path to the sorted order. Callers must hold
// s.mu.
func (s *Session) insertPathLocked(p string) {
	i := sort.SearchStrings(s.paths, p)
	s.paths = append(s.paths, "")
	copy(s.paths[i+1:], s.paths[i:])
	s.paths[i] = p
}
