package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestModelBinaryRoundTrip trains a forest model, saves it in both formats,
// and asserts the binary-loaded model is an exact stand-in: identical scores
// on corpus apps and an identical JSON re-serialization.
func TestModelBinaryRoundTrip(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindForest, Folds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var jbuf, bbuf bytes.Buffer
	if err := m.Save(&jbuf); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveBinary(&bbuf); err != nil {
		t.Fatal(err)
	}
	if bbuf.Len() >= jbuf.Len() {
		t.Errorf("binary model (%d bytes) is not smaller than JSON (%d bytes)", bbuf.Len(), jbuf.Len())
	}
	jm, err := LoadModel(bytes.NewReader(jbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	bm, err := LoadModel(bytes.NewReader(bbuf.Bytes()))
	if err != nil {
		t.Fatalf("binary load: %v", err)
	}

	// Scores must be byte-identical between the two load paths.
	for _, a := range testCorpus.Apps[:10] {
		rj, err := json.Marshal(jm.Score(a.App.Name, a.Features))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := json.Marshal(bm.Score(a.App.Name, a.Features))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rj, rb) {
			t.Fatalf("%s: binary-loaded model scores differently from JSON-loaded model", a.App.Name)
		}
	}

	// Both loaded models re-save to the same JSON: the binary container
	// loses nothing a JSON round trip would keep.
	var fromJSON, fromBin bytes.Buffer
	if err := jm.Save(&fromJSON); err != nil {
		t.Fatal(err)
	}
	if err := bm.Save(&fromBin); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromJSON.Bytes(), fromBin.Bytes()) {
		t.Error("binary-loaded model re-serializes to different JSON than JSON-loaded model")
	}

	// And the binary form itself round-trips byte-identically.
	var again bytes.Buffer
	if err := bm.SaveBinary(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), bbuf.Bytes()) {
		t.Error("binary-loaded model re-serializes to different binary bytes")
	}
}

// savedBinaryModel trains a fast ZeroR model and returns its binary bytes.
func savedBinaryModel(t *testing.T) []byte {
	t.Helper()
	tb := NewTestbed(getCorpus(t))
	m, err := Train(context.Background(), tb, TrainConfig{Kind: KindZeroR, Folds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadModelBinaryCorrupt(t *testing.T) {
	raw := savedBinaryModel(t)
	if _, err := LoadModel(bytes.NewReader(raw)); err != nil {
		t.Fatalf("pristine binary model refused: %v", err)
	}

	cases := map[string][]byte{
		"truncated meta length": raw[:6],
		"truncated meta":        raw[:12],
		"truncated classifier":  raw[:len(raw)-3],
		"trailing garbage":      append(append([]byte(nil), raw...), 0xff),
	}
	garbledMeta := append([]byte(nil), raw...)
	garbledMeta[9] ^= 0xff // inside the meta JSON
	cases["garbled meta"] = garbledMeta
	for name, data := range cases {
		if _, err := LoadModel(bytes.NewReader(data)); !errors.Is(err, ErrModelCorrupt) {
			t.Errorf("%s: err = %v, want ErrModelCorrupt", name, err)
		}
	}

	// A future container version is a version error, not corruption.
	future := append([]byte(nil), raw...)
	future[3] = '9'
	_, err := LoadModel(bytes.NewReader(future))
	if err == nil || !strings.Contains(err.Error(), "unsupported binary model version") {
		t.Errorf("future version: err = %v, want unsupported-version error", err)
	}
}
