package core

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// FileStatus classifies how one file fared in the deep-analysis pipeline.
// Only StatusTimeout and StatusPanic mean the file's enrichment degraded to
// zero; the other statuses are normal outcomes.
type FileStatus string

// Per-file analysis outcomes.
const (
	// StatusOK: the file was analyzed to completion (for languages outside
	// the deep-analysis set this means "base metrics only, by design").
	StatusOK FileStatus = "ok"
	// StatusParseSkip: the file is in a deep-analyzable language but did
	// not parse (or lower to IR), so it contributed base metrics only.
	StatusParseSkip FileStatus = "parse-skip"
	// StatusTimeout: the deep analysis exceeded ExtractConfig.FileTimeout
	// and the file degraded to base metrics only.
	StatusTimeout FileStatus = "timeout"
	// StatusPanic: a deep analysis panicked; the panic was contained to
	// this file, which degraded to base metrics only.
	StatusPanic FileStatus = "panic-contained"
	// StatusCacheHit: the enrichment came from the content-addressed
	// feature cache; no analysis ran this run.
	StatusCacheHit FileStatus = "cache-hit"
	// StatusCoalesced: this run missed the cache but a concurrent
	// extraction was already analyzing the identical bytes, so the result
	// was adopted from that leader (ExtractConfig.Flight). Like a cache
	// hit, the enrichment is complete — only who paid for it differs.
	StatusCoalesced FileStatus = "coalesced"
)

// FileDiagnostic records one file's outcome, with detail (the parse error,
// panic value, or timeout) when the file did not complete normally.
type FileDiagnostic struct {
	Path   string     `json:"path"`
	Status FileStatus `json:"status"`
	Detail string     `json:"detail,omitempty"`
}

// AnalysisDiagnostics is the per-run account of the extraction pipeline:
// every file's status in tree order plus the feature-cache traffic. It is
// the "never lie by omission" half of the graceful-degradation contract —
// a vector assembled from partial analyses always says which files were
// partial and why.
type AnalysisDiagnostics struct {
	// Files holds one entry per tree file, in tree (path-sorted) order.
	Files []FileDiagnostic `json:"files"`
	// CacheHits / CacheMisses count this run's feature-cache traffic
	// (zero when no cache is configured).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// Coalesced counts this run's cache misses that were adopted from a
	// concurrent extraction's in-flight analysis instead of being run
	// (ExtractConfig.Flight). Omitted when zero, so a run with no
	// coalescing serializes byte-identically to one extracted without a
	// flight at all.
	Coalesced uint64 `json:"coalesced,omitempty"`
	// Trace is the span summary of the run — wall time, span count, and
	// per-phase busy totals. It is attached only when the caller asked for
	// tracing (a daemon request with trace=true); otherwise the field is
	// absent and the serialized diagnostics are byte-identical to an
	// untraced run's.
	Trace *trace.Summary `json:"trace,omitempty"`
}

// Counts tallies files by status.
func (d *AnalysisDiagnostics) Counts() map[FileStatus]int {
	out := map[FileStatus]int{}
	for _, f := range d.Files {
		out[f.Status]++
	}
	return out
}

// Degraded returns the files whose deep analysis did not complete this run
// (timeout or contained panic) — the files whose enrichment is a zero.
func (d *AnalysisDiagnostics) Degraded() []FileDiagnostic {
	var out []FileDiagnostic
	for _, f := range d.Files {
		if f.Status == StatusTimeout || f.Status == StatusPanic {
			out = append(out, f)
		}
	}
	return out
}

// Clean reports whether every file completed without degradation.
func (d *AnalysisDiagnostics) Clean() bool {
	return len(d.Degraded()) == 0
}

// String renders the diagnostics as the CLI prints them.
func (d *AnalysisDiagnostics) String() string {
	var sb strings.Builder
	c := d.Counts()
	fmt.Fprintf(&sb, "Analysis diagnostics: %d file(s)\n", len(d.Files))
	fmt.Fprintf(&sb, "  status: %d ok, %d parse-skip, %d cache-hit, %d timeout, %d panic-contained\n",
		c[StatusOK], c[StatusParseSkip], c[StatusCacheHit], c[StatusTimeout], c[StatusPanic])
	if c[StatusCoalesced] > 0 {
		fmt.Fprintf(&sb, "  coalesced: %d file(s) adopted from concurrent extractions\n", c[StatusCoalesced])
	}
	if d.CacheHits+d.CacheMisses > 0 {
		fmt.Fprintf(&sb, "  feature cache: %d hit(s), %d miss(es)\n", d.CacheHits, d.CacheMisses)
	}
	for _, f := range d.Files {
		if f.Status == StatusOK || f.Status == StatusCacheHit || f.Status == StatusCoalesced {
			continue
		}
		fmt.Fprintf(&sb, "  %-28s %-15s %s\n", f.Path, f.Status, f.Detail)
	}
	return sb.String()
}
