package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/cwe"
	"repro/internal/dataflow"
	"repro/internal/featcache"
	"repro/internal/findings"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/singleflight"
	"repro/internal/stats"
	"repro/internal/symexec"
	"repro/internal/trace"
)

// Transformer maps raw feature vectors into model space. It is the part of
// the testbed a deployed model needs at scoring time, so it persists with
// the model while the corpus does not.
type Transformer struct {
	// LogFeatures are transformed as log10(1+x) before training; the
	// volume-like counts are heavy-tailed across four orders of magnitude.
	LogFeatures []string `json:"log_features"`
	// Impute maps feature names to the corpus-median value substituted
	// when the testbed reports zero. Development-history features (churn,
	// developers, age) and deployment features (attack-graph depth) are
	// unavailable when analyzing a bare source tree; scoring them as
	// literal zero would push the vector far outside the training
	// distribution, so the median is the neutral choice.
	Impute map[string]float64 `json:"impute,omitempty"`
}

// Testbed turns a corpus into training datasets (Figure 4's left half) and
// extracts enriched feature vectors from real source trees (§5.3's
// "automated testbed ... collecting code properties in developer's
// codebase").
type Testbed struct {
	Corpus *corpus.Corpus
	*Transformer
}

// DefaultTransformer returns the standard transformation set.
func DefaultTransformer() *Transformer {
	return &Transformer{
		LogFeatures: []string{
			metrics.FeatKLoC, metrics.FeatFiles, metrics.FeatFunctions,
			metrics.FeatCyclomaticTotal, metrics.FeatCyclomaticMax,
			metrics.FeatHalsteadVolume, metrics.FeatHalsteadEffort,
			metrics.FeatHalsteadBugs, metrics.FeatMaxFunctionLen,
			metrics.FeatLongFunctions, metrics.FeatDeeplyNested,
			metrics.FeatManyParams, metrics.FeatGodFiles,
			metrics.FeatMagicNumbers, metrics.FeatTodoDensity,
			metrics.FeatDupLines, metrics.FeatAvgFunctionLen,
			metrics.FeatNetworkCalls, metrics.FeatFileInputs,
			metrics.FeatEnvInputs, metrics.FeatProcessSpawns,
			metrics.FeatPrivilegeOps, metrics.FeatUnsafeCalls,
			metrics.FeatFormatCalls, metrics.FeatEntryPoints,
			metrics.FeatRASQ, metrics.FeatChurn, metrics.FeatDevelopers,
			metrics.FeatTaintedSinks, metrics.FeatLintWarnings,
			metrics.FeatCallFanOut, metrics.FeatCallDepth,
			metrics.FeatInterTaintedSinks, metrics.FeatTaintDepthMax,
			metrics.FeatCWE121Findings, metrics.FeatCWE134Findings,
			metrics.FeatCWE78Findings,
		},
	}
}

// NewTestbed wraps a corpus with the default transformation.
func NewTestbed(c *corpus.Corpus) *Testbed {
	return &Testbed{Corpus: c, Transformer: DefaultTransformer()}
}

// logCols resolves LogFeatures to column indexes.
func (tb *Transformer) logCols() []int {
	idx := map[string]int{}
	for i, n := range metrics.FeatureNames {
		idx[n] = i
	}
	var cols []int
	for _, n := range tb.LogFeatures {
		if i, ok := idx[n]; ok {
			cols = append(cols, i)
		}
	}
	sort.Ints(cols)
	return cols
}

// ImputedFeatures are the features that cannot be measured from a bare
// source tree and therefore receive corpus medians when reported as zero.
var ImputedFeatures = []string{
	metrics.FeatChurn, metrics.FeatDevelopers, metrics.FeatAgeYears,
	metrics.FeatAttackDepth,
}

// Transform applies the feature transformation to a raw vector, returning
// the model-space row.
func (tb *Transformer) Transform(fv metrics.FeatureVector) []float64 {
	row := fv.Slice()
	if tb.Impute != nil {
		for j, name := range metrics.FeatureNames {
			if row[j] == 0 {
				if median, ok := tb.Impute[name]; ok {
					row[j] = median
				}
			}
		}
	}
	cols := map[int]bool{}
	for _, c := range tb.logCols() {
		cols[c] = true
	}
	for j := range row {
		if cols[j] {
			v := row[j]
			if v < 0 {
				v = 0
			}
			row[j] = math.Log10(1 + v)
		}
	}
	return row
}

// FitImputation computes corpus medians for the imputed features and
// installs them on the transformer. Train calls this automatically.
func (tb *Testbed) FitImputation() {
	tb.Impute = map[string]float64{}
	for _, name := range ImputedFeatures {
		var vals []float64
		for _, a := range tb.Corpus.Apps {
			vals = append(vals, a.Features[name])
		}
		if len(vals) > 0 {
			tb.Impute[name] = stats.Median(vals)
		}
	}
}

// DatasetFor builds the classification dataset of one hypothesis: one row
// per corpus application, transformed features, ground-truth label. A
// corpus whose database is missing an application's records is corrupted,
// and fails loudly here rather than silently labeling the app negative
// (a poisoned label would degrade every model trained on the corpus).
func (tb *Testbed) DatasetFor(h Hypothesis) (*ml.Dataset, error) {
	if h.Label == nil {
		// HypManyVulns binds its threshold to the corpus median.
		median := tb.medianVulnCount()
		return tb.datasetWith(func(a corpus.AppProfile) (bool, error) {
			return float64(a.VulnCount) > median, nil
		})
	}
	return tb.datasetWith(func(a corpus.AppProfile) (bool, error) {
		st, err := tb.Corpus.DB.StatsFor(a.App.Name)
		if err != nil {
			return false, fmt.Errorf("core: corrupted corpus: %s has a profile but no CVE records: %w", a.App.Name, err)
		}
		return h.Label(st), nil
	})
}

func (tb *Testbed) datasetWith(label func(corpus.AppProfile) (bool, error)) (*ml.Dataset, error) {
	var X [][]float64
	var Y []float64
	for _, a := range tb.Corpus.Apps {
		X = append(X, tb.Transform(a.Features))
		yes, err := label(a)
		if err != nil {
			return nil, err
		}
		if yes {
			Y = append(Y, 1)
		} else {
			Y = append(Y, 0)
		}
	}
	return ml.NewDataset(append([]string(nil), metrics.FeatureNames...), ClassNames, X, Y)
}

func (tb *Testbed) medianVulnCount() float64 {
	counts := make([]float64, 0, len(tb.Corpus.Apps))
	for _, a := range tb.Corpus.Apps {
		counts = append(counts, float64(a.VulnCount))
	}
	return stats.Median(counts)
}

// RegressionDataset builds the vulnerability-count regression dataset with
// log10(1+count) targets — the same convention the transformer applies to
// volume-like features. The +1 keeps a zero-vulnerability application (legal
// in imported corpora) at target 0 instead of -Inf; Model.Score inverts
// with 10^x - 1.
func (tb *Testbed) RegressionDataset() (*ml.Dataset, error) {
	var X [][]float64
	var Y []float64
	for _, a := range tb.Corpus.Apps {
		X = append(X, tb.Transform(a.Features))
		Y = append(Y, math.Log10(1+float64(a.VulnCount)))
	}
	return ml.NewDataset(append([]string(nil), metrics.FeatureNames...), nil, X, Y)
}

// LoCOnlyDataset projects a hypothesis dataset down to the single kLoC
// column — the paper's straw-man baseline for the ablation benchmarks.
func (tb *Testbed) LoCOnlyDataset(h Hypothesis) (*ml.Dataset, error) {
	full, err := tb.DatasetFor(h)
	if err != nil {
		return nil, err
	}
	for i, n := range full.AttrNames {
		if n == metrics.FeatKLoC {
			return ml.ProjectColumns(full, []int{i}), nil
		}
	}
	return nil, fmt.Errorf("core: kloc column missing")
}

// fileEnrichment is the deep-analysis result of one file. The exported
// fields make it a stable JSON record for the feature cache.
type fileEnrichment struct {
	TaintedSinks  int     `json:"tainted_sinks"`
	FeasiblePaths float64 `json:"feasible_paths"`
	MaxFanOut     int     `json:"max_fan_out"`
	MaxDepth      int     `json:"max_depth"`
	CovSum        float64 `json:"cov_sum"`
	CovRuns       int     `json:"cov_runs"`
	DynPaths      int     `json:"dyn_paths"`
	// Interprocedural taint + CWE-mapped findings (summed / maxed across
	// files like the fields above).
	InterSinks    int `json:"inter_sinks"`
	TaintMaxChain int `json:"taint_max_chain"`
	CWE121        int `json:"cwe121"`
	CWE134        int `json:"cwe134"`
	CWE78         int `json:"cwe78"`
}

// AnalysisVersion identifies the deep-analysis implementation baked into
// enrichFile and its substrates. It is mixed into every feature-cache key,
// so bumping it invalidates all cached enrichments; bump it whenever any
// analysis that feeds fileEnrichment changes behavior (see DESIGN.md's
// AnalysisVersion bump policy).
//
// v2: interprocedural taint engine + CWE-mapped findings counts.
const AnalysisVersion = "enrich-v2"

// ExtractConfig tunes the testbed's extraction pipeline.
type ExtractConfig struct {
	// Jobs bounds the per-file worker pool; <= 0 uses every core.
	Jobs int
	// Cache, when non-nil, memoizes per-file deep-analysis results keyed
	// by content hash, so only files whose bytes changed are re-analyzed.
	Cache *featcache.Cache
	// FileTimeout bounds one file's deep analysis; <= 0 disables the
	// bound. A file that exceeds it degrades to base metrics only (zero
	// enrichment) with a StatusTimeout diagnostic. Timed-out results are
	// never written to the cache, so raising the timeout later re-runs
	// the analysis.
	FileTimeout time.Duration
	// Flight, when non-nil, coalesces identical in-flight deep analyses
	// across concurrent extractions sharing the flight: when two requests
	// race the same cache miss (same analysis version, language, and
	// bytes), one runs the analysis and the other adopts its result with a
	// StatusCoalesced diagnostic. A flight only dedups concurrency — the
	// Cache still owns reuse over time — so it changes cost, never bytes.
	Flight *ExtractFlight
	// FileDone, when non-nil, receives each file's diagnostic as the
	// worker pool finishes it. Calls arrive on worker goroutines in
	// completion order (any order); i indexes tree.Files. Files skipped
	// because the run was canceled are never reported. The streaming
	// endpoints use this to emit per-file records before the run's
	// aggregate exists.
	FileDone func(i int, d FileDiagnostic)
}

// ExtractFlight is the shared in-flight dedup table for per-file deep
// analyses. One flight serves any number of concurrent extractions (the
// daemon owns exactly one, shared by every request and delta session);
// the zero value is ready to use.
type ExtractFlight struct {
	g singleflight.Group[flightResult]
}

// flightResult is what a leader hands its followers: the enrichment plus
// how the analysis ended, so a degraded result is shared as degraded.
type flightResult struct {
	enr    fileEnrichment
	status FileStatus
	detail string
}

// NewExtractFlight returns an empty flight.
func NewExtractFlight() *ExtractFlight { return &ExtractFlight{} }

// Coalesced counts per-file analyses that were adopted from a concurrent
// leader instead of being run (the daemon's coalesced_total metric).
func (f *ExtractFlight) Coalesced() uint64 { return f.g.Shared() }

// ExtractFeatures runs the full static-analysis testbed over a source tree:
// the base extractors plus the deep-analysis enrichment (lint warnings,
// taint findings, symbolic-execution path counts, call-graph shape, and
// sampled dynamic traces) for files that parse as MiniC. The per-file deep
// analyses are independent, so they run on a bounded worker pool.
func ExtractFeatures(tree *metrics.Tree) metrics.FeatureVector {
	fv, _ := ExtractFeaturesWith(context.Background(), tree, ExtractConfig{})
	return fv
}

// ExtractFeaturesWith is ExtractFeatures with cancellation, an explicit
// pool bound, an optional per-file deadline, and an optional
// content-addressed cache. The aggregation is order-independent (sums and
// maxes), so the result is identical for any Jobs value. The only error is
// ctx's, when the run is canceled mid-pool.
func ExtractFeaturesWith(ctx context.Context, tree *metrics.Tree, cfg ExtractConfig) (metrics.FeatureVector, error) {
	fv, _, err := ExtractFeaturesDiagnostics(ctx, tree, cfg)
	return fv, err
}

// ExtractFeaturesDiagnostics is ExtractFeaturesWith plus the per-file
// account of what happened: every file's status (ok / parse-skip /
// cache-hit / timeout / panic-contained) in tree order and the run's
// feature-cache traffic. This is the graceful-degradation contract: a
// panicking or runaway deep analysis costs one file's enrichment, never
// the process, and the loss is recorded rather than silent.
func ExtractFeaturesDiagnostics(ctx context.Context, tree *metrics.Tree, cfg ExtractConfig) (metrics.FeatureVector, *AnalysisDiagnostics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Tracing is carried by the context; with no span attached every trace
	// call below is a nil no-op and the run is byte-identical to an
	// uninstrumented one. The sequential phases use Child (seqs 0 and 1);
	// the parallel per-file spans use ChildAt with the file index offset
	// past them, so the span tree is deterministic at any pool width.
	ext := trace.SpanFromContext(ctx).Child("extract")
	defer ext.End()

	bs := ext.Child("base")
	fv := metrics.Extract(tree)
	bs.End()

	ls := ext.Child("lint")
	rep := lint.Check(tree)
	ls.End()
	fv[metrics.FeatLintWarnings] = float64(rep.Total())

	// Cache traffic is counted per run, not as a delta over the cache's
	// process-global counters: with a shared cache (secmetricd), concurrent
	// runs' global-counter windows overlap and would attribute each
	// other's hits and misses.
	var ct cacheTraffic

	enriched := make([]fileEnrichment, len(tree.Files))
	diag := &AnalysisDiagnostics{Files: make([]FileDiagnostic, len(tree.Files))}
	workers := ml.EffectiveJobs(cfg.Jobs, len(tree.Files))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					// Canceled: drain the queue without analyzing; the
					// run's output is discarded below.
					continue
				}
				f := tree.Files[i]
				fs := ext.ChildAt(fileSpanSeqBase+i, trace.SpanNameFile)
				fs.SetLabel(f.Path)
				fs.Add("bytes", int64(len(f.Content)))
				enr, status, detail := enrichFileCached(ctx, f, cfg, &ct, fs)
				fs.End()
				enriched[i] = enr
				diag.Files[i] = FileDiagnostic{Path: f.Path, Status: status, Detail: detail}
				if cfg.FileDone != nil {
					cfg.FileDone(i, diag.Files[i])
				}
			}
		}()
	}
dispatch:
	for i := range tree.Files {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	setEnrichmentFeatures(fv, aggregateEnrichments(enriched))
	diag.CacheHits, diag.CacheMisses = ct.hits.Load(), ct.misses.Load()
	diag.Coalesced = ct.coalesced.Load()
	return fv, diag, nil
}

// cacheTraffic counts one run's feature-cache hits and misses, plus the
// misses that coalesced onto a concurrent leader's analysis. Each
// extraction (and each session changeset) owns its own instance, so
// concurrent runs over a shared cache report only their own traffic.
type cacheTraffic struct {
	hits, misses, coalesced atomic.Uint64
}

// aggregateEnrichments folds per-file enrichments, in slice order, into the
// tree-level aggregate. Every field is an integer sum, a float sum, or a
// max. The integer fields and maxes are order-independent; the float sums
// (FeasiblePaths, CovSum) are not associative under reordering, so callers
// needing byte parity with a batch extraction must pass the slice in tree
// (path-sorted) order — which is why the incremental session re-folds with
// this same function instead of maintaining float sums by delta.
func aggregateEnrichments(enriched []fileEnrichment) fileEnrichment {
	var agg fileEnrichment
	for _, r := range enriched {
		agg.TaintedSinks += r.TaintedSinks
		agg.FeasiblePaths += r.FeasiblePaths
		if r.MaxFanOut > agg.MaxFanOut {
			agg.MaxFanOut = r.MaxFanOut
		}
		if r.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = r.MaxDepth
		}
		agg.CovSum += r.CovSum
		agg.CovRuns += r.CovRuns
		agg.DynPaths += r.DynPaths
		agg.InterSinks += r.InterSinks
		if r.TaintMaxChain > agg.TaintMaxChain {
			agg.TaintMaxChain = r.TaintMaxChain
		}
		agg.CWE121 += r.CWE121
		agg.CWE134 += r.CWE134
		agg.CWE78 += r.CWE78
	}
	return agg
}

// setEnrichmentFeatures writes the aggregated deep-analysis values into
// the feature vector — the one place the enrichment-to-feature mapping
// lives, shared by the batch extractor and the incremental session.
func setEnrichmentFeatures(fv metrics.FeatureVector, agg fileEnrichment) {
	fv[metrics.FeatTaintedSinks] = float64(agg.TaintedSinks)
	fv[metrics.FeatFeasiblePaths] = math.Log10(1 + agg.FeasiblePaths)
	fv[metrics.FeatCallFanOut] = float64(agg.MaxFanOut)
	fv[metrics.FeatCallDepth] = float64(agg.MaxDepth)
	if agg.CovRuns > 0 {
		fv[metrics.FeatDynBranchCov] = agg.CovSum / float64(agg.CovRuns)
	} else {
		fv[metrics.FeatDynBranchCov] = 0
	}
	fv[metrics.FeatDynUniquePaths] = math.Log10(1 + float64(agg.DynPaths))
	fv[metrics.FeatInterTaintedSinks] = float64(agg.InterSinks)
	fv[metrics.FeatTaintDepthMax] = float64(agg.TaintMaxChain)
	fv[metrics.FeatCWE121Findings] = float64(agg.CWE121)
	fv[metrics.FeatCWE134Findings] = float64(agg.CWE134)
	fv[metrics.FeatCWE78Findings] = float64(agg.CWE78)
}

// fileSpanSeqBase offsets per-file span sequence keys past the sequential
// phases of the extract span (base = 0, lint = 1), keeping the two seq
// ranges disjoint so render order is well-defined.
const fileSpanSeqBase = 2

// deepSpanSeq is the adopted deep-analysis subtree's sequence key under a
// file span; the cache probe (when present) takes Child seq 0.
const deepSpanSeq = 1

// enrichFileCached consults the cache before running the deep analyses.
// The key covers the analysis version, the file language, and the file
// bytes — the complete input of enrichFile — so a hit is always safe to
// reuse and any content change is a miss. Only completed analyses (ok or
// parse-skip, both deterministic in the file bytes) are written back: a
// timed-out or panic-contained zero is a degraded result, and caching it
// would make the degradation permanent even after the timeout is raised
// or the analyzer bug fixed.
//
// With a Flight configured, concurrent misses on the same key coalesce:
// one caller (the leader) runs the analysis and writes the cache, the
// rest adopt its result. The leader runs under a cancel-free context —
// the deep analysis is non-preemptible CPU work bounded by FileTimeout,
// so finishing it always costs the same, and finishing lets the result
// land in the cache and in every follower even when the leader's own
// request was canceled (the leader's run is discarded by its caller's
// ctx check regardless).
func enrichFileCached(ctx context.Context, f metrics.File, cfg ExtractConfig, ct *cacheTraffic, fs *trace.Span) (fileEnrichment, FileStatus, string) {
	if cfg.Cache == nil && cfg.Flight == nil {
		return enrichFileBounded(ctx, f, cfg.FileTimeout, fs)
	}
	key := featcache.Key(AnalysisVersion, f.Language.String(), f.Content)
	if cfg.Cache != nil {
		cs := fs.Child("cache")
		var out fileEnrichment
		hit := cfg.Cache.GetJSON(key, &out)
		cs.End()
		if hit {
			ct.hits.Add(1)
			fs.Add("cache_hit", 1)
			return out, StatusCacheHit, ""
		}
		ct.misses.Add(1)
	}
	if cfg.Flight == nil {
		out, status, detail := enrichFileBounded(ctx, f, cfg.FileTimeout, fs)
		cachePut(cfg, key, out, status)
		return out, status, detail
	}
	res, shared, err := cfg.Flight.g.Do(ctx, key, func() flightResult {
		enr, status, detail := enrichFileBounded(context.WithoutCancel(ctx), f, cfg.FileTimeout, fs)
		cachePut(cfg, key, enr, status)
		return flightResult{enr: enr, status: status, detail: detail}
	})
	if err != nil {
		// Follower canceled while waiting; the whole run is being torn
		// down and its output discarded, so only a non-ok status matters.
		return fileEnrichment{}, StatusTimeout, err.Error()
	}
	if shared {
		if res.status == StatusTimeout || res.status == StatusPanic {
			// An adopted degradation is still a degradation; reporting it
			// as coalesced would hide the zero enrichment from the
			// diagnostics.
			return res.enr, res.status, res.detail
		}
		ct.coalesced.Add(1)
		fs.Add("coalesced", 1)
		return res.enr, StatusCoalesced, ""
	}
	return res.enr, res.status, res.detail
}

// cachePut writes one completed analysis back to the cache. A failed write
// only costs a future re-analysis; the result is still correct, so cache
// errors are deliberately not fatal.
func cachePut(cfg ExtractConfig, key string, enr fileEnrichment, status FileStatus) {
	if cfg.Cache == nil {
		return
	}
	if status == StatusOK || status == StatusParseSkip {
		_ = cfg.Cache.PutJSON(key, enr)
	}
}

// enrichFileBounded applies the per-file deadline. The analysis itself is
// not preemptible, so a timed-out analysis keeps running on its goroutine
// until it finishes on its own; its result is discarded and the file
// degrades to a zero enrichment immediately. Without a deadline the
// analysis runs inline on the worker.
//
// The deep-analysis phases record into a detached span subtree that is
// adopted into the file span only when the result is accepted. An
// abandoned (timed-out or canceled) analysis keeps writing to its
// detached subtree, which is never read again — so the runaway goroutine
// can never race the trace exporter, at the cost of a timed-out file
// losing its phase breakdown (its diagnostic already names it).
func enrichFileBounded(ctx context.Context, f metrics.File, timeout time.Duration, fs *trace.Span) (fileEnrichment, FileStatus, string) {
	deep := fs.Detached("deep")
	if timeout <= 0 {
		enr, status, detail := enrichFileSafe(f, deep)
		deep.End()
		fs.Adopt(deep, deepSpanSeq)
		return enr, status, detail
	}
	type result struct {
		enr    fileEnrichment
		status FileStatus
		detail string
	}
	ch := make(chan result, 1) // buffered: the late finisher must not leak forever
	go func() {
		enr, status, detail := enrichFileSafe(f, deep)
		deep.End() // before the send: adoption must never race recording
		ch <- result{enr, status, detail}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		fs.Adopt(deep, deepSpanSeq)
		return r.enr, r.status, r.detail
	case <-timer.C:
		return fileEnrichment{}, StatusTimeout, fmt.Sprintf("deep analysis exceeded %v; degraded to base metrics", timeout)
	case <-ctx.Done():
		// The whole run is being canceled; the caller discards this
		// result, so the status only needs to be non-ok.
		return fileEnrichment{}, StatusTimeout, ctx.Err().Error()
	}
}

// enrichTestHook, when non-nil, runs at the top of every file's deep
// analysis inside the recover() boundary. It exists so tests can inject
// panics and stalls into the pipeline without a pathological input file;
// production code never sets it.
var enrichTestHook func(f metrics.File)

// enrichFileSafe is the panic boundary of the pipeline: a bug anywhere in
// the deep analyses (symexec, dataflow, callgraph, interp, stats
// preconditions) is contained to this file, which degrades to a zero
// enrichment with a StatusPanic diagnostic instead of killing the process.
// The degradation is deterministic — the same file panics the same way at
// any pool width — so the determinism contract of ExtractFeaturesWith
// survives containment.
func enrichFileSafe(f metrics.File, sp *trace.Span) (enr fileEnrichment, status FileStatus, detail string) {
	defer func() {
		if r := recover(); r != nil {
			enr = fileEnrichment{}
			status = StatusPanic
			detail = fmt.Sprintf("deep analysis panicked: %v", r)
		}
	}()
	if enrichTestHook != nil {
		enrichTestHook(f)
	}
	return enrichFile(f, sp)
}

// enrichFile runs the deep analyses over one file; files that do not parse
// as MiniC contribute the CWE-mapped token-rule findings but nothing else
// beyond the base metrics (real C rarely parses as MiniC; the token metrics
// already cover it), and report parse-skip so the omission is visible in the
// diagnostics.
func enrichFile(f metrics.File, sp *trace.Span) (fileEnrichment, FileStatus, string) {
	var out fileEnrichment
	// The findings layer applies to every file: token-level lint rules need
	// no parse, and the IR-based producers gate themselves on parseability.
	fds := sp.Child("findings")
	fa := findings.AnalyzeFile(f)
	fds.End()
	out.InterSinks = fa.InterTaintSinks
	out.TaintMaxChain = fa.TaintMaxChain
	for _, fd := range fa.Findings {
		if fd.CWE == 0 {
			continue
		}
		switch {
		case cwe.IsA(fd.CWE, 121):
			out.CWE121++
		case cwe.IsA(fd.CWE, 134):
			out.CWE134++
		case cwe.IsA(fd.CWE, 78):
			out.CWE78++
		}
	}
	if f.Language != lang.MiniC && f.Language != lang.C {
		return out, StatusOK, ""
	}
	ps := sp.Child("parse")
	prog, err := minic.Parse(f.Content)
	if err != nil {
		ps.End()
		return out, StatusParseSkip, fmt.Sprintf("not parsed as MiniC: %v", err)
	}
	lowered, err := ir.Lower(prog)
	ps.End()
	if err != nil {
		return out, StatusParseSkip, fmt.Sprintf("IR lowering failed: %v", err)
	}
	ts := sp.Child("taint")
	out.TaintedSinks = dataflow.CountTaintedSinks(lowered)
	ts.End()
	ss := sp.Child("symexec")
	cfg := symexec.DefaultConfig()
	for _, fn := range lowered.Funcs {
		out.FeasiblePaths += float64(symexec.Explore(fn, cfg).FeasiblePaths)
	}
	ss.End()
	cs := sp.Child("callgraph")
	cg := callgraph.Build(lowered)
	out.MaxFanOut = cg.MaxFanOut()
	out.MaxDepth = cg.Depth()
	cs.End()
	is := sp.Child("interp")
	for _, root := range cg.Roots() {
		prof, err := interp.ProfileFunc(lowered, root, 24, 0xd1ce)
		if err != nil {
			continue
		}
		out.CovSum += prof.BranchCoverage
		out.CovRuns++
		out.DynPaths += prof.UniquePaths
	}
	is.End()
	return out, StatusOK, ""
}
