package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/corpus"
	"repro/internal/dataflow"
	"repro/internal/featcache"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/lint"
	"repro/internal/metrics"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/symexec"
)

// Transformer maps raw feature vectors into model space. It is the part of
// the testbed a deployed model needs at scoring time, so it persists with
// the model while the corpus does not.
type Transformer struct {
	// LogFeatures are transformed as log10(1+x) before training; the
	// volume-like counts are heavy-tailed across four orders of magnitude.
	LogFeatures []string `json:"log_features"`
	// Impute maps feature names to the corpus-median value substituted
	// when the testbed reports zero. Development-history features (churn,
	// developers, age) and deployment features (attack-graph depth) are
	// unavailable when analyzing a bare source tree; scoring them as
	// literal zero would push the vector far outside the training
	// distribution, so the median is the neutral choice.
	Impute map[string]float64 `json:"impute,omitempty"`
}

// Testbed turns a corpus into training datasets (Figure 4's left half) and
// extracts enriched feature vectors from real source trees (§5.3's
// "automated testbed ... collecting code properties in developer's
// codebase").
type Testbed struct {
	Corpus *corpus.Corpus
	*Transformer
}

// DefaultTransformer returns the standard transformation set.
func DefaultTransformer() *Transformer {
	return &Transformer{
		LogFeatures: []string{
			metrics.FeatKLoC, metrics.FeatFiles, metrics.FeatFunctions,
			metrics.FeatCyclomaticTotal, metrics.FeatCyclomaticMax,
			metrics.FeatHalsteadVolume, metrics.FeatHalsteadEffort,
			metrics.FeatHalsteadBugs, metrics.FeatMaxFunctionLen,
			metrics.FeatLongFunctions, metrics.FeatDeeplyNested,
			metrics.FeatManyParams, metrics.FeatGodFiles,
			metrics.FeatMagicNumbers, metrics.FeatTodoDensity,
			metrics.FeatDupLines, metrics.FeatAvgFunctionLen,
			metrics.FeatNetworkCalls, metrics.FeatFileInputs,
			metrics.FeatEnvInputs, metrics.FeatProcessSpawns,
			metrics.FeatPrivilegeOps, metrics.FeatUnsafeCalls,
			metrics.FeatFormatCalls, metrics.FeatEntryPoints,
			metrics.FeatRASQ, metrics.FeatChurn, metrics.FeatDevelopers,
			metrics.FeatTaintedSinks, metrics.FeatLintWarnings,
			metrics.FeatCallFanOut, metrics.FeatCallDepth,
		},
	}
}

// NewTestbed wraps a corpus with the default transformation.
func NewTestbed(c *corpus.Corpus) *Testbed {
	return &Testbed{Corpus: c, Transformer: DefaultTransformer()}
}

// logCols resolves LogFeatures to column indexes.
func (tb *Transformer) logCols() []int {
	idx := map[string]int{}
	for i, n := range metrics.FeatureNames {
		idx[n] = i
	}
	var cols []int
	for _, n := range tb.LogFeatures {
		if i, ok := idx[n]; ok {
			cols = append(cols, i)
		}
	}
	sort.Ints(cols)
	return cols
}

// ImputedFeatures are the features that cannot be measured from a bare
// source tree and therefore receive corpus medians when reported as zero.
var ImputedFeatures = []string{
	metrics.FeatChurn, metrics.FeatDevelopers, metrics.FeatAgeYears,
	metrics.FeatAttackDepth,
}

// Transform applies the feature transformation to a raw vector, returning
// the model-space row.
func (tb *Transformer) Transform(fv metrics.FeatureVector) []float64 {
	row := fv.Slice()
	if tb.Impute != nil {
		for j, name := range metrics.FeatureNames {
			if row[j] == 0 {
				if median, ok := tb.Impute[name]; ok {
					row[j] = median
				}
			}
		}
	}
	cols := map[int]bool{}
	for _, c := range tb.logCols() {
		cols[c] = true
	}
	for j := range row {
		if cols[j] {
			v := row[j]
			if v < 0 {
				v = 0
			}
			row[j] = math.Log10(1 + v)
		}
	}
	return row
}

// FitImputation computes corpus medians for the imputed features and
// installs them on the transformer. Train calls this automatically.
func (tb *Testbed) FitImputation() {
	tb.Impute = map[string]float64{}
	for _, name := range ImputedFeatures {
		var vals []float64
		for _, a := range tb.Corpus.Apps {
			vals = append(vals, a.Features[name])
		}
		if len(vals) > 0 {
			tb.Impute[name] = stats.Median(vals)
		}
	}
}

// DatasetFor builds the classification dataset of one hypothesis: one row
// per corpus application, transformed features, ground-truth label.
func (tb *Testbed) DatasetFor(h Hypothesis) (*ml.Dataset, error) {
	if h.Label == nil {
		// HypManyVulns binds its threshold to the corpus median.
		median := tb.medianVulnCount()
		return tb.datasetWith(func(a corpus.AppProfile) bool {
			return float64(a.VulnCount) > median
		})
	}
	return tb.datasetWith(func(a corpus.AppProfile) bool {
		st, err := tb.Corpus.DB.StatsFor(a.App.Name)
		if err != nil {
			return false
		}
		return h.Label(st)
	})
}

func (tb *Testbed) datasetWith(label func(corpus.AppProfile) bool) (*ml.Dataset, error) {
	var X [][]float64
	var Y []float64
	for _, a := range tb.Corpus.Apps {
		X = append(X, tb.Transform(a.Features))
		if label(a) {
			Y = append(Y, 1)
		} else {
			Y = append(Y, 0)
		}
	}
	return ml.NewDataset(append([]string(nil), metrics.FeatureNames...), ClassNames, X, Y)
}

func (tb *Testbed) medianVulnCount() float64 {
	counts := make([]float64, 0, len(tb.Corpus.Apps))
	for _, a := range tb.Corpus.Apps {
		counts = append(counts, float64(a.VulnCount))
	}
	return stats.Median(counts)
}

// RegressionDataset builds the vulnerability-count regression dataset with
// log10(count) targets.
func (tb *Testbed) RegressionDataset() (*ml.Dataset, error) {
	var X [][]float64
	var Y []float64
	for _, a := range tb.Corpus.Apps {
		X = append(X, tb.Transform(a.Features))
		Y = append(Y, math.Log10(float64(a.VulnCount)))
	}
	return ml.NewDataset(append([]string(nil), metrics.FeatureNames...), nil, X, Y)
}

// LoCOnlyDataset projects a hypothesis dataset down to the single kLoC
// column — the paper's straw-man baseline for the ablation benchmarks.
func (tb *Testbed) LoCOnlyDataset(h Hypothesis) (*ml.Dataset, error) {
	full, err := tb.DatasetFor(h)
	if err != nil {
		return nil, err
	}
	for i, n := range full.AttrNames {
		if n == metrics.FeatKLoC {
			return ml.ProjectColumns(full, []int{i}), nil
		}
	}
	return nil, fmt.Errorf("core: kloc column missing")
}

// fileEnrichment is the deep-analysis result of one file. The exported
// fields make it a stable JSON record for the feature cache.
type fileEnrichment struct {
	TaintedSinks  int     `json:"tainted_sinks"`
	FeasiblePaths float64 `json:"feasible_paths"`
	MaxFanOut     int     `json:"max_fan_out"`
	MaxDepth      int     `json:"max_depth"`
	CovSum        float64 `json:"cov_sum"`
	CovRuns       int     `json:"cov_runs"`
	DynPaths      int     `json:"dyn_paths"`
}

// AnalysisVersion identifies the deep-analysis implementation baked into
// enrichFile and its substrates. It is mixed into every feature-cache key,
// so bumping it invalidates all cached enrichments; bump it whenever any
// analysis that feeds fileEnrichment changes behavior.
const AnalysisVersion = "enrich-v1"

// ExtractConfig tunes the testbed's extraction pipeline.
type ExtractConfig struct {
	// Jobs bounds the per-file worker pool; <= 0 uses every core.
	Jobs int
	// Cache, when non-nil, memoizes per-file deep-analysis results keyed
	// by content hash, so only files whose bytes changed are re-analyzed.
	Cache *featcache.Cache
}

// ExtractFeatures runs the full static-analysis testbed over a source tree:
// the base extractors plus the deep-analysis enrichment (lint warnings,
// taint findings, symbolic-execution path counts, call-graph shape, and
// sampled dynamic traces) for files that parse as MiniC. The per-file deep
// analyses are independent, so they run on a bounded worker pool.
func ExtractFeatures(tree *metrics.Tree) metrics.FeatureVector {
	return ExtractFeaturesWith(tree, ExtractConfig{})
}

// ExtractFeaturesWith is ExtractFeatures with an explicit pool bound and
// optional content-addressed cache. The aggregation is order-independent
// (sums and maxes), so the result is identical for any Jobs value.
func ExtractFeaturesWith(tree *metrics.Tree, cfg ExtractConfig) metrics.FeatureVector {
	fv := metrics.Extract(tree)

	rep := lint.Check(tree)
	fv[metrics.FeatLintWarnings] = float64(rep.Total())

	enriched := make([]fileEnrichment, len(tree.Files))
	workers := ml.EffectiveJobs(cfg.Jobs, len(tree.Files))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				enriched[i] = enrichFileCached(tree.Files[i], cfg.Cache)
			}
		}()
	}
	for i := range tree.Files {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var agg fileEnrichment
	for _, r := range enriched {
		agg.TaintedSinks += r.TaintedSinks
		agg.FeasiblePaths += r.FeasiblePaths
		if r.MaxFanOut > agg.MaxFanOut {
			agg.MaxFanOut = r.MaxFanOut
		}
		if r.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = r.MaxDepth
		}
		agg.CovSum += r.CovSum
		agg.CovRuns += r.CovRuns
		agg.DynPaths += r.DynPaths
	}

	fv[metrics.FeatTaintedSinks] = float64(agg.TaintedSinks)
	fv[metrics.FeatFeasiblePaths] = math.Log10(1 + agg.FeasiblePaths)
	fv[metrics.FeatCallFanOut] = float64(agg.MaxFanOut)
	fv[metrics.FeatCallDepth] = float64(agg.MaxDepth)
	if agg.CovRuns > 0 {
		fv[metrics.FeatDynBranchCov] = agg.CovSum / float64(agg.CovRuns)
	}
	fv[metrics.FeatDynUniquePaths] = math.Log10(1 + float64(agg.DynPaths))
	return fv
}

// enrichFileCached consults the cache before running the deep analyses.
// The key covers the analysis version, the file language, and the file
// bytes — the complete input of enrichFile — so a hit is always safe to
// reuse and any content change is a miss.
func enrichFileCached(f metrics.File, cache *featcache.Cache) fileEnrichment {
	if cache == nil {
		return enrichFile(f)
	}
	key := featcache.Key(AnalysisVersion, f.Language.String(), f.Content)
	var out fileEnrichment
	if cache.GetJSON(key, &out) {
		return out
	}
	out = enrichFile(f)
	// A failed write only costs a future re-analysis; the result is
	// still correct, so cache errors are deliberately not fatal.
	_ = cache.PutJSON(key, out)
	return out
}

// enrichFile runs the deep analyses over one file; files that do not parse
// as MiniC contribute nothing (real C rarely parses as MiniC; the token
// metrics already cover it).
func enrichFile(f metrics.File) fileEnrichment {
	var out fileEnrichment
	if f.Language != lang.MiniC && f.Language != lang.C {
		return out
	}
	prog, err := minic.Parse(f.Content)
	if err != nil {
		return out
	}
	lowered, err := ir.Lower(prog)
	if err != nil {
		return out
	}
	out.TaintedSinks = dataflow.CountTaintedSinks(lowered)
	cfg := symexec.DefaultConfig()
	for _, fn := range lowered.Funcs {
		out.FeasiblePaths += float64(symexec.Explore(fn, cfg).FeasiblePaths)
	}
	cg := callgraph.Build(lowered)
	out.MaxFanOut = cg.MaxFanOut()
	out.MaxDepth = cg.Depth()
	for _, root := range cg.Roots() {
		prof, err := interp.ProfileFunc(lowered, root, 24, 0xd1ce)
		if err != nil {
			continue
		}
		out.CovSum += prof.BranchCoverage
		out.CovRuns++
		out.DynPaths += prof.UniquePaths
	}
	return out
}
