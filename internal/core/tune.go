package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ml"
	"repro/internal/stats"
)

// Hyperparameter tuning: §5.2 names "tuning the parameters to the learning
// algorithms" as a primary challenge of building the metric. TuneForest
// grid-searches the random-forest parameters with cross validation on one
// hypothesis and returns the configurations ranked by AUC.

// ForestParams is one grid point.
type ForestParams struct {
	Trees    int
	MaxDepth int
}

// TuneResult is one evaluated configuration.
type TuneResult struct {
	Params   ForestParams
	Accuracy float64
	AUC      float64
}

// DefaultForestGrid spans the useful range at corpus scale.
var DefaultForestGrid = []ForestParams{
	{Trees: 5, MaxDepth: 4},
	{Trees: 5, MaxDepth: 10},
	{Trees: 15, MaxDepth: 4},
	{Trees: 15, MaxDepth: 10},
	{Trees: 30, MaxDepth: 6},
	{Trees: 30, MaxDepth: 12},
	{Trees: 60, MaxDepth: 10},
}

// TuneForest evaluates the grid on h with k-fold CV; results come back
// sorted by AUC, best first. Ties break toward the cheaper model (fewer
// trees, then shallower).
func TuneForest(tb *Testbed, h Hypothesis, grid []ForestParams, folds int, seed uint64) ([]TuneResult, error) {
	if len(grid) == 0 {
		grid = DefaultForestGrid
	}
	ds, err := tb.DatasetFor(h)
	if err != nil {
		return nil, err
	}
	rng := stats.NewRNG(seed)
	var out []TuneResult
	for _, p := range grid {
		p := p
		cv, err := ml.CrossValidate(func() ml.Classifier {
			return &ml.RandomForest{Trees: p.Trees, MaxDepth: p.MaxDepth, Seed: seed}
		}, ds, folds, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("core: tuning %+v: %w", p, err)
		}
		out = append(out, TuneResult{Params: p, Accuracy: cv.Accuracy, AUC: cv.AUC})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AUC != out[j].AUC {
			return out[i].AUC > out[j].AUC
		}
		if out[i].Params.Trees != out[j].Params.Trees {
			return out[i].Params.Trees < out[j].Params.Trees
		}
		return out[i].Params.MaxDepth < out[j].Params.MaxDepth
	})
	return out, nil
}

// RenderTuning prints the grid results as a table.
func RenderTuning(results []TuneResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-8s %8s %8s\n", "trees", "depth", "acc", "auc")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8d %-8d %8.3f %8.3f\n", r.Params.Trees, r.Params.MaxDepth, r.Accuracy, r.AUC)
	}
	return sb.String()
}
