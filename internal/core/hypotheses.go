// Package core implements the paper's contribution: the unified security
// evaluation model. It wires the substrates together along Figure 4 — select
// applications, extract code properties, label hypotheses from the CVE
// ground truth, train classifiers with cross validation — and exposes the
// developer-facing metric of §5.3: score a codebase, explain which
// properties drive the risk, and compare two versions.
package core

import (
	"repro/internal/cvedb"
	"repro/internal/cwe"
)

// Hypothesis is one question the model answers about an application, with
// its labelling rule over the CVE ground truth (Figure 4's "CVE
// hypotheses": CVSS>7? AV=N? CWE=121?).
type Hypothesis struct {
	Name     string
	Question string
	// Label extracts the ground-truth answer from an application's CVE
	// statistics.
	Label func(s cvedb.Stats) bool
}

// The paper's three example hypotheses plus a vulnerability-count split.
var (
	// HypHighSeverity: "How many high-severity vulnerabilities exist in an
	// application (i.e., CVSS > 7)?" — binarized to "any".
	HypHighSeverity = Hypothesis{
		Name:     "cvss_gt7",
		Question: "Does the application contain high-severity vulnerabilities (CVSS > 7)?",
		Label:    func(s cvedb.Stats) bool { return s.HighSeverity > 0 },
	}
	// HypNetworkVector: "Does an application contain any vulnerabilities
	// that are accessible from the network (i.e., Attack Vectors = N)?"
	HypNetworkVector = Hypothesis{
		Name:     "av_network",
		Question: "Is the application attackable from the network (AV = N)?",
		Label:    func(s cvedb.Stats) bool { return s.NetworkVector > 0 },
	}
	// HypStackOverflow: "Does an application suffer any stack-based buffer
	// overflow (i.e., CWE = 121)?"
	HypStackOverflow = Hypothesis{
		Name:     "cwe_121",
		Question: "Does the application suffer stack-based buffer overflows (CWE-121)?",
		Label:    func(s cvedb.Stats) bool { return s.StackOverflow > 0 },
	}
	// HypMemorySafety broadens CWE-121 to the whole memory-safety class.
	HypMemorySafety = Hypothesis{
		Name:     "memory_safety",
		Question: "Does the application suffer memory-safety vulnerabilities?",
		Label:    func(s cvedb.Stats) bool { return s.MemorySafety > 0 },
	}
	// HypManyVulns asks whether the application is in the vulnerable upper
	// half of the corpus (threshold injected at dataset-build time).
	HypManyVulns = Hypothesis{
		Name:     "many_vulns",
		Question: "Is the application's vulnerability count above the corpus median?",
		// Label is bound against the corpus median when the dataset is
		// built; see Testbed.DatasetFor.
		Label: nil,
	}
)

// StandardHypotheses returns the fixed-label hypotheses of the paper.
func StandardHypotheses() []Hypothesis {
	return []Hypothesis{HypHighSeverity, HypNetworkVector, HypStackOverflow, HypMemorySafety}
}

// ClassNames are the nominal labels used for every hypothesis dataset.
var ClassNames = []string{"no", "yes"}

// StatsFromRecords recomputes hypothesis-relevant statistics from raw
// records; used when scoring an application not present in a database.
func StatsFromRecords(app cvedb.App, recs []cvedb.Record) cvedb.Stats {
	s := cvedb.Stats{App: app, Count: len(recs)}
	for _, r := range recs {
		if r.Score > 7 {
			s.HighSeverity++
		}
		if r.NetworkAttackable() {
			s.NetworkVector++
		}
		if cwe.IsA(r.CWE, 121) {
			s.StackOverflow++
		}
		if e, ok := cwe.Lookup(r.CWE); ok && e.Class == cwe.ClassMemory {
			s.MemorySafety++
		}
	}
	return s
}
