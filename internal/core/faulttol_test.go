package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/featcache"
	"repro/internal/langgen"
	"repro/internal/metrics"
	"repro/internal/ml"
)

// setHook installs the enrichment test hook for one test and restores the
// nil production value afterwards.
func setHook(t *testing.T, hook func(f metrics.File)) {
	t.Helper()
	enrichTestHook = hook
	t.Cleanup(func() { enrichTestHook = nil })
}

func assertFinite(t *testing.T, fv metrics.FeatureVector) {
	t.Helper()
	for _, n := range metrics.FeatureNames {
		v, ok := fv[n]
		if !ok {
			t.Fatalf("feature %s missing from vector", n)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %s = %v", n, v)
		}
	}
}

// TestEnrichPanicContainedAndDeterministic is the tentpole acceptance test:
// a deep analysis that panics on one file costs that file's enrichment, not
// the process, the diagnostics name the file, and the degraded vector is
// identical at any pool width.
func TestEnrichPanicContainedAndDeterministic(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 4
	tree := langgen.Generate(spec)
	victim := tree.Files[1].Path
	setHook(t, func(f metrics.File) {
		if f.Path == victim {
			panic("injected analyzer bug")
		}
	})

	extract := func(jobs int) (metrics.FeatureVector, *AnalysisDiagnostics) {
		fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, ExtractConfig{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return fv, diag
	}
	seqFV, seqDiag := extract(1)
	parFV, parDiag := extract(8)

	assertFinite(t, seqFV)
	for _, n := range metrics.FeatureNames {
		if seqFV[n] != parFV[n] {
			t.Fatalf("containment broke determinism: feature %s = %v (jobs=1) vs %v (jobs=8)", n, seqFV[n], parFV[n])
		}
	}
	for _, diag := range []*AnalysisDiagnostics{seqDiag, parDiag} {
		if got := diag.Files[1]; got.Status != StatusPanic || got.Path != victim {
			t.Fatalf("victim diagnostic = %+v, want %s with status %s", got, victim, StatusPanic)
		}
		if !strings.Contains(diag.Files[1].Detail, "injected analyzer bug") {
			t.Fatalf("panic detail lost: %q", diag.Files[1].Detail)
		}
		if deg := diag.Degraded(); len(deg) != 1 || deg[0].Path != victim {
			t.Fatalf("Degraded() = %+v, want exactly %s", deg, victim)
		}
		if diag.Clean() {
			t.Fatal("diagnostics with a contained panic reported Clean")
		}
	}

	// The non-victim files must still be fully analyzed.
	for i, f := range seqDiag.Files {
		if i == 1 {
			continue
		}
		if f.Status != StatusOK && f.Status != StatusParseSkip {
			t.Fatalf("bystander %s has status %s", f.Path, f.Status)
		}
	}
}

// TestEnrichPanicNotCached: a panic-degraded zero enrichment must not be
// written to the feature cache — once the analyzer bug is fixed the next run
// re-analyzes the file instead of replaying the degradation forever.
func TestEnrichPanicNotCached(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	victim := tree.Files[0].Path
	cache, err := featcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExtractConfig{Cache: cache}

	setHook(t, func(f metrics.File) {
		if f.Path == victim {
			panic("transient analyzer bug")
		}
	})
	if _, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg); err != nil {
		t.Fatal(err)
	} else if diag.Files[0].Status != StatusPanic {
		t.Fatalf("victim status = %s, want %s", diag.Files[0].Status, StatusPanic)
	}

	// "Fix the bug" and re-run against the same cache.
	enrichTestHook = nil
	_, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Files[0].Status == StatusCacheHit {
		t.Fatal("degraded result was served from the cache")
	}
	if diag.CacheMisses != 1 {
		t.Fatalf("warm run misses = %d, want exactly the previously-degraded file", diag.CacheMisses)
	}
	if diag.CacheHits != uint64(len(tree.Files)-1) {
		t.Fatalf("warm run hits = %d, want %d", diag.CacheHits, len(tree.Files)-1)
	}
}

func TestExtractCancellationMidPool(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 8
	tree := langgen.Generate(spec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	setHook(t, func(metrics.File) { once.Do(cancel) })

	fv, diag, err := ExtractFeaturesDiagnostics(ctx, tree, ExtractConfig{Jobs: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fv != nil || diag != nil {
		t.Fatal("canceled run returned a partial vector")
	}
}

func TestExtractPreCanceledContext(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 2
	tree := langgen.Generate(spec)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	setHook(t, func(metrics.File) { ran = true })
	if _, _, err := ExtractFeaturesDiagnostics(ctx, tree, ExtractConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-canceled context still dispatched deep analyses")
	}
}

// TestFileTimeoutDegradesToBaseMetrics: a stalled deep analysis misses the
// per-file deadline, the file degrades to a zero enrichment with a
// StatusTimeout diagnostic, and the run still yields a complete vector.
func TestFileTimeoutDegradesToBaseMetrics(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	victim := tree.Files[0].Path
	setHook(t, func(f metrics.File) {
		if f.Path == victim {
			time.Sleep(500 * time.Millisecond)
		}
	})

	fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree,
		ExtractConfig{Jobs: 2, FileTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	assertFinite(t, fv)
	got := diag.Files[0]
	if got.Status != StatusTimeout || got.Path != victim {
		t.Fatalf("victim diagnostic = %+v, want %s with status %s", got, victim, StatusTimeout)
	}
	if !strings.Contains(got.Detail, "exceeded") {
		t.Fatalf("timeout detail = %q", got.Detail)
	}
	if deg := diag.Degraded(); len(deg) == 0 || deg[0].Path != victim {
		t.Fatalf("Degraded() = %+v, want %s first", deg, victim)
	}
}

func TestFileTimeoutGenerousMatchesUnbounded(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	base := ExtractFeatures(tree)
	fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree,
		ExtractConfig{FileTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Clean() {
		t.Fatalf("generous deadline still degraded files: %+v", diag.Degraded())
	}
	for _, n := range metrics.FeatureNames {
		if fv[n] != base[n] {
			t.Fatalf("bounded run drifted on %s: %v vs %v", n, fv[n], base[n])
		}
	}
}

// TestDiagnosticsCountsMatchStatuses: the Counts tally, the per-file list,
// and the rendered summary must agree, including the parse-skip of a C file
// that is not MiniC.
func TestDiagnosticsCountsMatchStatuses(t *testing.T) {
	tree := metrics.NewTree("mixed",
		metrics.File{Path: "good.mc", Content: "int main(void) { return 0; }\n"},
		metrics.File{Path: "bad.c", Content: "int main( { this does not parse\n"},
	)
	_, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Files) != len(tree.Files) {
		t.Fatalf("diagnostics cover %d files, tree has %d", len(diag.Files), len(tree.Files))
	}
	counts := diag.Counts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(diag.Files) {
		t.Fatalf("Counts() sums to %d, want %d", total, len(diag.Files))
	}
	if counts[StatusParseSkip] != 1 {
		t.Fatalf("parse-skip count = %d, want 1 (bad.c)", counts[StatusParseSkip])
	}
	if !diag.Clean() {
		t.Fatal("parse-skip is a normal outcome, not a degradation")
	}
	rendered := diag.String()
	if !strings.Contains(rendered, "bad.c") || !strings.Contains(rendered, string(StatusParseSkip)) {
		t.Fatalf("rendered diagnostics omit the skipped file:\n%s", rendered)
	}
}

func TestDiagnosticsCacheHitStatuses(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 3
	tree := langgen.Generate(spec)
	cache, err := featcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExtractConfig{Cache: cache}

	_, cold, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheMisses != uint64(len(tree.Files)) || cold.CacheHits != 0 {
		t.Fatalf("cold run: %d hits / %d misses, want 0 / %d", cold.CacheHits, cold.CacheMisses, len(tree.Files))
	}

	_, warm, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != uint64(len(tree.Files)) || warm.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits / %d misses, want %d / 0", warm.CacheHits, warm.CacheMisses, len(tree.Files))
	}
	if warm.Counts()[StatusCacheHit] != len(tree.Files) {
		t.Fatalf("warm statuses = %v, want all %s", warm.Counts(), StatusCacheHit)
	}
}

// TestExtractEmptyTreeFiniteFeatures guards the satellite fix for the
// AnalyzeTree/AnalyzeDir asymmetry: the core extractor accepts an empty tree
// (the facade rejects it) and its averages must not divide by zero.
func TestExtractEmptyTreeFiniteFeatures(t *testing.T) {
	fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), metrics.NewTree("empty"), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertFinite(t, fv)
	if len(diag.Files) != 0 {
		t.Fatalf("empty tree produced %d file diagnostics", len(diag.Files))
	}
}

func TestTrainCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Train(ctx, NewTestbed(getCorpus(t)), TrainConfig{Kind: KindLogistic, Folds: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRegressionDatasetZeroVulnCorpus is the satellite fix for the -Inf
// regression targets: a zero-vulnerability application (legal in imported
// corpora) must map to target 0 under log10(1+count), never -Inf.
func TestRegressionDatasetZeroVulnCorpus(t *testing.T) {
	base := getCorpus(t)
	apps := append([]corpus.AppProfile(nil), base.Apps...)
	apps[0].VulnCount = 0
	c := &corpus.Corpus{Params: base.Params, DB: base.DB, Apps: apps}

	ds, err := NewTestbed(c).RegressionDataset()
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range ds.Y {
		if math.IsInf(y, 0) || math.IsNaN(y) {
			t.Fatalf("target %d = %v (VulnCount %d)", i, y, apps[i].VulnCount)
		}
	}
	if ds.Y[0] != 0 {
		t.Fatalf("zero-vuln target = %v, want 0", ds.Y[0])
	}
	// The transform must round-trip through the Score inverse 10^x - 1.
	if got := math.Pow(10, ds.Y[0]) - 1; got != 0 {
		t.Fatalf("inverse of zero target = %v", got)
	}
}

// TestDatasetForCorruptedCorpusErrors is the satellite fix for silent false
// labels: an application profile with no CVE records behind it must fail
// dataset construction loudly, not train on a poisoned negative label.
func TestDatasetForCorruptedCorpusErrors(t *testing.T) {
	base := getCorpus(t)
	apps := append([]corpus.AppProfile(nil), base.Apps...)
	ghost := apps[0]
	ghost.App.Name = "no-such-app-record"
	apps = append(apps, ghost)
	tb := NewTestbed(&corpus.Corpus{Params: base.Params, DB: base.DB, Apps: apps})

	_, err := tb.DatasetFor(HypHighSeverity)
	if err == nil {
		t.Fatal("corrupted corpus produced a dataset")
	}
	if !strings.Contains(err.Error(), "corrupted corpus") || !strings.Contains(err.Error(), "no-such-app-record") {
		t.Fatalf("err = %v, want corrupted-corpus error naming the app", err)
	}

	// HypManyVulns labels from VulnCount alone, so it must still succeed.
	if _, err := tb.DatasetFor(HypManyVulns); err != nil {
		t.Fatalf("HypManyVulns on the same corpus: %v", err)
	}
}

// TestParallelForCtxUsedByExtract pins the pool semantics the extractor
// relies on: with a canceled context mid-pool, ml.ParallelForCtx reports
// ctx.Err() unless a real fn error at a lower index beats it.
func TestParallelForCtxUsedByExtract(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ml.ParallelForCtx(ctx, 50, 4, func(i int) error {
		if i == 0 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
