package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// HypothesisRisk is one hypothesis' prediction for a codebase.
type HypothesisRisk struct {
	Name        string
	Question    string
	Probability float64 // P(yes)
	Predicted   bool
	BaseRate    float64 // corpus frequency, for calibration context
	// TopFactors are the most informative features for this hypothesis.
	TopFactors []ml.FeatureWeight
}

// Report is the developer-facing security evaluation of §5.3.
type Report struct {
	Name     string
	Features metrics.FeatureVector
	Risks    []HypothesisRisk
	// ExpectedVulns is the regression estimate of total vulnerability
	// count (not log-space); ExpectedVulnsLo/Hi bound it with a ~90%
	// prediction band derived from the training residuals.
	ExpectedVulns   float64
	ExpectedVulnsLo float64
	ExpectedVulnsHi float64
	// RiskScore aggregates hypothesis probabilities into one [0, 100]
	// headline number.
	RiskScore       float64
	Recommendations []string
}

// Score evaluates a feature vector against the trained model.
func (m *Model) Score(name string, fv metrics.FeatureVector) *Report {
	row := m.Transformer.Transform(fv)
	rep := &Report{Name: name, Features: fv.Clone()}
	sum := 0.0
	for _, hm := range m.Hypotheses {
		projected := hm.projectRow(row)
		prob := 0.0
		if p, ok := hm.Classifier.(ml.Prober); ok {
			prob = p.PredictProba(projected)[1]
		} else if hm.Classifier.PredictClass(projected) == 1 {
			prob = 1
		}
		top := hm.Importance
		if len(top) > 5 {
			top = top[:5]
		}
		rep.Risks = append(rep.Risks, HypothesisRisk{
			Name:        hm.Hypothesis.Name,
			Question:    hm.Hypothesis.Question,
			Probability: prob,
			Predicted:   prob >= 0.5,
			BaseRate:    hm.BaseRate,
			TopFactors:  append([]ml.FeatureWeight(nil), top...),
		})
		sum += prob
	}
	if len(rep.Risks) > 0 {
		rep.RiskScore = 100 * sum / float64(len(rep.Risks))
	}
	if m.CountModel != nil {
		pred := m.CountModel.Predict(row)
		// RegressionDataset trains on log10(1+count), so the inverse is
		// 10^x - 1, clamped at zero (counts are never negative).
		rep.ExpectedVulns = math.Max(0, math.Pow(10, pred)-1)
		// +-1.645 sigma in log space covers ~90% under normal residuals.
		band := 1.645 * m.CountResidualStd
		rep.ExpectedVulnsLo = math.Max(0, math.Pow(10, pred-band)-1)
		rep.ExpectedVulnsHi = math.Max(0, math.Pow(10, pred+band)-1)
	}
	rep.Recommendations = recommend(rep)
	return rep
}

// RiskFor returns one hypothesis' risk by name.
func (r *Report) RiskFor(name string) (HypothesisRisk, bool) {
	for _, h := range r.Risks {
		if h.Name == name {
			return h, true
		}
	}
	return HypothesisRisk{}, false
}

// String renders the report as the CLI prints it.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Security evaluation: %s\n", r.Name)
	fmt.Fprintf(&sb, "  Aggregate risk score: %.1f/100\n", r.RiskScore)
	if r.ExpectedVulnsHi > 0 {
		fmt.Fprintf(&sb, "  Expected vulnerability count: %.1f (90%% band %.1f..%.1f)\n",
			r.ExpectedVulns, r.ExpectedVulnsLo, r.ExpectedVulnsHi)
	} else {
		fmt.Fprintf(&sb, "  Expected vulnerability count: %.1f\n", r.ExpectedVulns)
	}
	for _, h := range r.Risks {
		verdict := "unlikely"
		if h.Predicted {
			verdict = "LIKELY"
		}
		fmt.Fprintf(&sb, "  [%-13s] p=%.2f (base %.2f) %-8s %s\n",
			h.Name, h.Probability, h.BaseRate, verdict, h.Question)
	}
	if len(r.Recommendations) > 0 {
		sb.WriteString("  Recommendations:\n")
		for _, rec := range r.Recommendations {
			fmt.Fprintf(&sb, "   - %s\n", rec)
		}
	}
	return sb.String()
}

// Comparison is the §5.3 CI-gate verdict between two versions.
type Comparison struct {
	OldName, NewName   string
	OldScore, NewScore float64
	// DeltaRisk is NewScore - OldScore; positive means riskier.
	DeltaRisk float64
	// PerHypothesis probability movements, largest magnitude first.
	Movements []RiskMovement
	// FeatureDeltas are the raw code-property changes behind the movement,
	// truncated to the largest few; DroppedDeltas counts the rest.
	FeatureDeltas []metrics.FeatureDelta
	DroppedDeltas int
}

// RiskMovement is one hypothesis' probability change.
type RiskMovement struct {
	Name     string
	Old, New float64
}

// Compare scores both versions and explains the delta.
func (m *Model) Compare(oldName string, oldFV metrics.FeatureVector, newName string, newFV metrics.FeatureVector) *Comparison {
	oldRep := m.Score(oldName, oldFV)
	newRep := m.Score(newName, newFV)
	cmp := &Comparison{
		OldName:  oldName,
		NewName:  newName,
		OldScore: oldRep.RiskScore,
		NewScore: newRep.RiskScore,
	}
	cmp.DeltaRisk = cmp.NewScore - cmp.OldScore
	for i, h := range oldRep.Risks {
		cmp.Movements = append(cmp.Movements, RiskMovement{
			Name: h.Name,
			Old:  h.Probability,
			New:  newRep.Risks[i].Probability,
		})
	}
	sort.SliceStable(cmp.Movements, func(i, j int) bool {
		return math.Abs(cmp.Movements[i].New-cmp.Movements[i].Old) >
			math.Abs(cmp.Movements[j].New-cmp.Movements[j].Old)
	})
	cmp.FeatureDeltas = oldFV.Diff(newFV, 1e-9)
	if len(cmp.FeatureDeltas) > 10 {
		cmp.DroppedDeltas = len(cmp.FeatureDeltas) - 10
		cmp.FeatureDeltas = cmp.FeatureDeltas[:10]
	}
	return cmp
}

// Verdict summarizes the comparison in one line.
func (c *Comparison) Verdict() string {
	switch {
	case c.DeltaRisk > 1:
		return fmt.Sprintf("RISK UP: %s scores %.1f vs %.1f for %s (+%.1f)",
			c.NewName, c.NewScore, c.OldScore, c.OldName, c.DeltaRisk)
	case c.DeltaRisk < -1:
		return fmt.Sprintf("RISK DOWN: %s scores %.1f vs %.1f for %s (%.1f)",
			c.NewName, c.NewScore, c.OldScore, c.OldName, c.DeltaRisk)
	default:
		return fmt.Sprintf("RISK UNCHANGED: %s scores %.1f vs %.1f for %s",
			c.NewName, c.NewScore, c.OldScore, c.OldName)
	}
}

// String renders the full comparison.
func (c *Comparison) String() string {
	var sb strings.Builder
	sb.WriteString(c.Verdict())
	sb.WriteString("\n")
	for _, mv := range c.Movements {
		fmt.Fprintf(&sb, "  %-13s p %.2f -> %.2f\n", mv.Name, mv.Old, mv.New)
	}
	if len(c.FeatureDeltas) > 0 {
		sb.WriteString("  Largest code-property changes:\n")
		for _, d := range c.FeatureDeltas {
			fmt.Fprintf(&sb, "   %-20s %.2f -> %.2f\n", d.Name, d.Old, d.New)
		}
		if c.DroppedDeltas > 0 {
			fmt.Fprintf(&sb, "   (+%d more)\n", c.DroppedDeltas)
		}
	}
	return sb.String()
}

// recommend maps predicted risks and feature evidence to the defensive
// actions §5.3 sketches ("applying bound checking if there is high risk of
// buffer overflow, or placing the application behind firewall or intrusion
// protection if a network attack is predicted").
func recommend(r *Report) []string {
	var out []string
	if h, ok := r.RiskFor(HypStackOverflow.Name); ok && h.Predicted {
		out = append(out, "High stack-overflow risk: apply bounds checking and replace unchecked copy APIs (strcpy/sprintf/gets).")
	}
	if h, ok := r.RiskFor(HypMemorySafety.Name); ok && h.Predicted {
		out = append(out, "Memory-safety risk: enable sanitizers in CI and consider memory-safe components for parsing paths.")
	}
	if h, ok := r.RiskFor(HypNetworkVector.Name); ok && h.Predicted {
		out = append(out, "Network attack predicted: deploy behind a firewall or intrusion-protection system and fuzz the network parsers.")
	}
	if h, ok := r.RiskFor(HypHighSeverity.Name); ok && h.Predicted {
		out = append(out, "High-severity vulnerabilities likely: prioritize a security audit before the next release.")
	}
	if r.Features[metrics.FeatUnsafeCalls] > 0 {
		out = append(out, fmt.Sprintf("%d unsafe API call sites detected: migrate to bounded variants.",
			int(r.Features[metrics.FeatUnsafeCalls])))
	}
	if r.Features[metrics.FeatTaintedSinks] > 0 {
		out = append(out, fmt.Sprintf("%d tainted data flows reach dangerous sinks: add input validation on those paths.",
			int(r.Features[metrics.FeatTaintedSinks])))
	}
	return out
}
