package core

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/featcache"
	"repro/internal/langgen"
	"repro/internal/metrics"
)

// TestFlightCoalescesConcurrentMisses is the per-file coalescing contract:
// N extractions racing the identical cache miss run the deep analysis
// exactly once; the followers adopt the leader's result byte-identically
// and report it as StatusCoalesced.
func TestFlightCoalescesConcurrentMisses(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 1
	tree := langgen.Generate(spec)

	flight := NewExtractFlight()
	const n = 4
	var analyses atomic.Int64
	setHook(t, func(f metrics.File) {
		analyses.Add(1)
		// Hold the leader's analysis open until every follower has parked
		// on the flight, so the race is deterministic.
		deadline := time.Now().Add(10 * time.Second)
		for flight.Coalesced() < n-1 {
			if time.Now().After(deadline) {
				t.Error("followers never coalesced")
				return
			}
			time.Sleep(time.Millisecond)
		}
	})

	cfg := ExtractConfig{Jobs: 1, Cache: featcache.NewMemory(), Flight: flight}
	type run struct {
		fv   metrics.FeatureVector
		diag *AnalysisDiagnostics
	}
	runs := make([]run, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			runs[i] = run{fv, diag}
		}(i)
	}
	wg.Wait()

	if got := analyses.Load(); got != 1 {
		t.Fatalf("deep analysis ran %d times across %d concurrent extractions, want exactly 1", got, n)
	}

	want, err := json.Marshal(runs[0].fv)
	if err != nil {
		t.Fatal(err)
	}
	leaders, followers := 0, 0
	for i, r := range runs {
		got, err := json.Marshal(r.fv)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("run %d feature vector differs from run 0:\n%s\nvs\n%s", i, got, want)
		}
		switch st := r.diag.Files[0].Status; st {
		case StatusOK:
			leaders++
			if r.diag.Coalesced != 0 {
				t.Errorf("leader run %d reports Coalesced=%d, want 0", i, r.diag.Coalesced)
			}
		case StatusCoalesced:
			followers++
			if r.diag.Coalesced != 1 {
				t.Errorf("follower run %d reports Coalesced=%d, want 1", i, r.diag.Coalesced)
			}
		default:
			t.Errorf("run %d has status %q, want ok or coalesced", i, st)
		}
		if r.diag.CacheMisses != 1 || r.diag.CacheHits != 0 {
			t.Errorf("run %d cache traffic hits=%d misses=%d, want 0/1", i, r.diag.CacheHits, r.diag.CacheMisses)
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Fatalf("%d leader(s), %d follower(s); want 1 and %d", leaders, followers, n-1)
	}
	if flight.Coalesced() != n-1 {
		t.Fatalf("flight.Coalesced() = %d, want %d", flight.Coalesced(), n-1)
	}

	// The leader's analysis landed in the cache: a later cold run is a
	// pure cache hit and runs nothing.
	fv, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(fv); string(got) != string(want) {
		t.Fatalf("post-flight cache hit changed bytes:\n%s\nvs\n%s", got, want)
	}
	if diag.Files[0].Status != StatusCacheHit {
		t.Fatalf("post-flight status = %q, want cache-hit", diag.Files[0].Status)
	}
	if analyses.Load() != 1 {
		t.Fatalf("cache hit re-ran the analysis (%d total)", analyses.Load())
	}
}

// TestFlightSharesDegradationHonestly: a follower adopting a leader whose
// analysis panicked must report panic-contained, not coalesced — an
// adopted zero enrichment is still a degradation and must stay visible.
func TestFlightSharesDegradationHonestly(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Files = 1
	tree := langgen.Generate(spec)

	flight := NewExtractFlight()
	setHook(t, func(f metrics.File) {
		deadline := time.Now().Add(10 * time.Second)
		for flight.Coalesced() < 1 {
			if time.Now().After(deadline) {
				t.Error("follower never coalesced")
				break
			}
			time.Sleep(time.Millisecond)
		}
		panic("injected analyzer bug")
	})

	// No cache: the flight must work standalone, and a panic result must
	// not need cache plumbing to stay uncached.
	cfg := ExtractConfig{Jobs: 1, Flight: flight}
	diags := make([]*AnalysisDiagnostics, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, diag, err := ExtractFeaturesDiagnostics(context.Background(), tree, cfg)
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			diags[i] = diag
		}(i)
	}
	wg.Wait()

	for i, diag := range diags {
		if diag == nil {
			t.Fatalf("run %d produced no diagnostics", i)
		}
		if got := diag.Files[0].Status; got != StatusPanic {
			t.Errorf("run %d status = %q, want %q (degradation must not hide behind coalescing)", i, got, StatusPanic)
		}
		if deg := diag.Degraded(); len(deg) != 1 {
			t.Errorf("run %d Degraded() = %+v, want exactly the panicked file", i, deg)
		}
	}
}
