package core
