package core

import (
	"strings"
	"testing"
)

func TestTuneForest(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	grid := []ForestParams{
		{Trees: 3, MaxDepth: 2},
		{Trees: 10, MaxDepth: 8},
	}
	results, err := TuneForest(tb, HypManyVulns, grid, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Sorted best-first by AUC.
	if results[0].AUC < results[1].AUC {
		t.Fatalf("not sorted: %+v", results)
	}
	// Both configurations must beat chance on this learnable hypothesis.
	for _, r := range results {
		if r.AUC < 0.6 {
			t.Fatalf("config %+v AUC = %v", r.Params, r.AUC)
		}
	}
	out := RenderTuning(results)
	if !strings.Contains(out, "trees") || !strings.Contains(out, "auc") {
		t.Fatalf("rendering = %q", out)
	}
}

func TestTuneForestDefaultGrid(t *testing.T) {
	tb := NewTestbed(getCorpus(t))
	results, err := TuneForest(tb, HypManyVulns, nil, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultForestGrid) {
		t.Fatalf("results = %d, want %d", len(results), len(DefaultForestGrid))
	}
}
