package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func focusModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train(context.Background(), NewTestbed(getCorpus(t)), TrainConfig{Kind: KindLogistic, Folds: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func focusTree() *metrics.Tree {
	return metrics.NewTree("mixed",
		metrics.File{Path: "risky.c", Content: `
int handle(int fd) {
	char buf[16];
	int n = recv(fd, buf, 64, 0);
	strcpy(buf, n);
	sprintf(buf, n);
	system(buf);
	printf(buf);
	return n;
}`},
		metrics.File{Path: "safe.c", Content: `
// well-commented arithmetic helpers
int add(int a, int b) { return a + b; }
// doubles a value
int twice(int a) { return a * 2; }
`},
	)
}

func TestFocusFilesRanksRiskyFirst(t *testing.T) {
	m := focusModel(t)
	plan, err := m.FocusFiles(focusTree(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) != 2 {
		t.Fatalf("entries = %d", len(plan.Entries))
	}
	if plan.Entries[0].File != "risky.c" {
		t.Fatalf("ranking = %+v", plan.Entries)
	}
	if plan.Entries[0].Risk <= plan.Entries[1].Risk {
		t.Fatalf("risk ordering = %+v", plan.Entries)
	}
	// Higher risk never receives *less* budget (equality can happen when
	// largest-remainder rounding hands the spare unit to the runner-up).
	if plan.Entries[0].Allocated < plan.Entries[1].Allocated {
		t.Fatalf("allocation not risk-monotone: %+v", plan.Entries)
	}
}

func TestFocusBudgetConserved(t *testing.T) {
	m := focusModel(t)
	for _, budget := range []int{1, 3, 7, 100} {
		plan, err := m.FocusFiles(focusTree(), budget)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, e := range plan.Entries {
			if e.Allocated < 0 {
				t.Fatalf("negative allocation: %+v", e)
			}
			total += e.Allocated
		}
		if total != budget {
			t.Fatalf("budget %d allocated %d", budget, total)
		}
	}
}

func TestFocusValidation(t *testing.T) {
	m := focusModel(t)
	if _, err := m.FocusFiles(focusTree(), 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := m.FocusFiles(metrics.NewTree("empty"), 5); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestFocusString(t *testing.T) {
	m := focusModel(t)
	plan, err := m.FocusFiles(focusTree(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	if !strings.Contains(out, "risky.c") || !strings.Contains(out, "budget 4") {
		t.Fatalf("rendering = %q", out)
	}
}
