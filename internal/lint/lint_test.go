package lint

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func tree(files ...metrics.File) *metrics.Tree {
	return metrics.NewTree("t", files...)
}

func cfile(src string) metrics.File {
	return metrics.File{Path: "a.c", Content: src}
}

func TestUnsafeCallRule(t *testing.T) {
	rep := Check(tree(cfile(`
void f(char *dst, char *src) {
	strcpy(dst, src);
	gets(dst);
}`)))
	if rep.Count(RuleUnsafeCall) != 2 {
		t.Fatalf("unsafe calls = %d\n%s", rep.Count(RuleUnsafeCall), rep)
	}
}

func TestFormatStringRule(t *testing.T) {
	rep := Check(tree(cfile(`
void f(char *user) {
	printf(user);
	printf("%s", user);
	fprintf(stderr, user);
	fprintf(stderr, "ok %s", user);
}`)))
	if rep.Count(RuleFormatString) != 2 {
		t.Fatalf("format warnings = %d\n%s", rep.Count(RuleFormatString), rep)
	}
}

func TestAssignInConditionRule(t *testing.T) {
	rep := Check(tree(cfile(`
void f(int x, int y) {
	if (x = y) { g(); }
	if (x == y) { g(); }
	while (x = next()) { g(); }
	x = y;
}`)))
	if rep.Count(RuleAssignInCondition) != 2 {
		t.Fatalf("assign-in-cond = %d\n%s", rep.Count(RuleAssignInCondition), rep)
	}
}

func TestUncheckedAllocRule(t *testing.T) {
	rep := Check(tree(cfile(`
void f(void) {
	char *p = malloc(10);
	use(p);
	char *q = malloc(10);
	if (q == NULL) { return; }
	use(q);
}`)))
	if rep.Count(RuleUncheckedAlloc) != 1 {
		t.Fatalf("unchecked alloc = %d\n%s", rep.Count(RuleUncheckedAlloc), rep)
	}
}

func TestGotoRule(t *testing.T) {
	rep := Check(tree(cfile("void f(void) { goto out; out: return; }")))
	if rep.Count(RuleGotoUse) != 1 {
		t.Fatalf("goto = %d", rep.Count(RuleGotoUse))
	}
}

func TestEmptyCatchRule(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "A.java", Content: `
class A {
	void f() {
		try { g(); } catch (Exception e) {}
		try { g(); } catch (Exception e) { log(e); }
	}
}`}))
	if rep.Count(RuleEmptyCatch) != 1 {
		t.Fatalf("empty catch = %d\n%s", rep.Count(RuleEmptyCatch), rep)
	}
}

func TestDeadStoreRuleMiniC(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	int unused = a * 2;
	return a;
}`}))
	if rep.Count(RuleDeadStore) == 0 {
		t.Fatalf("dead store not found\n%s", rep)
	}
}

func TestMissingReturnRuleMiniC(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	if (a) { return 1; }
}`}))
	if rep.Count(RuleMissingReturn) != 1 {
		t.Fatalf("missing return = %d\n%s", rep.Count(RuleMissingReturn), rep)
	}
	clean := Check(tree(metrics.File{Path: "p.mc", Content: `
int g(int a) {
	if (a) { return 1; }
	return 0;
}`}))
	if clean.Count(RuleMissingReturn) != 0 {
		t.Fatalf("clean function flagged\n%s", clean)
	}
}

func TestInfiniteLoopRuleMiniC(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	while (1) {
		a = a + 1;
	}
	return a;
}`}))
	if rep.Count(RuleInfiniteLoop) != 1 {
		t.Fatalf("infinite loop = %d\n%s", rep.Count(RuleInfiniteLoop), rep)
	}
	withBreak := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	while (1) {
		a = a + 1;
		if (a > 10) { break; }
	}
	return a;
}`}))
	if withBreak.Count(RuleInfiniteLoop) != 0 {
		t.Fatalf("loop with break flagged\n%s", withBreak)
	}
}

func TestDivByZeroRuleMiniC(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a, int b) {
	int x = a / b;
	int y = a / 2;
	return x + y;
}`}))
	if rep.Count(RuleDivByZeroRisk) != 1 {
		t.Fatalf("div warnings = %d\n%s", rep.Count(RuleDivByZeroRisk), rep)
	}
}

func TestDeepExpressionRule(t *testing.T) {
	rep := Check(tree(cfile("int x = (((((((((1)))))))));\n")))
	if rep.Count(RuleDeepExpression) != 1 {
		t.Fatalf("deep expr = %d\n%s", rep.Count(RuleDeepExpression), rep)
	}
}

func TestLongParameterListRule(t *testing.T) {
	rep := Check(tree(cfile("int f(int a, int b, int c, int d, int e, int g, int h) { return 0; }")))
	if rep.Count(RuleLongParameterList) != 1 {
		t.Fatalf("long params = %d\n%s", rep.Count(RuleLongParameterList), rep)
	}
}

func TestReportOrderingAndString(t *testing.T) {
	rep := Check(tree(cfile("void f(char *a) { gets(a); printf(a); }")))
	if rep.Total() < 2 {
		t.Fatalf("total = %d", rep.Total())
	}
	for i := 1; i < len(rep.Warnings); i++ {
		if rep.Warnings[i].Line < rep.Warnings[i-1].Line {
			t.Fatal("warnings not sorted by line")
		}
	}
	s := rep.String()
	if !strings.Contains(s, "a.c:") || !strings.Contains(s, "unsafe-call") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCountsMap(t *testing.T) {
	rep := Check(tree(cfile("void f(char *a) { gets(a); strcpy(a, a); }")))
	counts := rep.Counts()
	if counts[RuleUnsafeCall] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestCleanFileNoWarnings(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int add(int a, int b) {
	return a + b;
}`}))
	if rep.Total() != 0 {
		t.Fatalf("clean file warnings:\n%s", rep)
	}
}

func TestDeadStoreSkipsTemps(t *testing.T) {
	// A pure expression statement would leave a dead temp; the rule must
	// not report compiler temporaries, only named variables.
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	int dead = a * 2;
	log_event(a + 1);
	return a;
}`}))
	for _, w := range rep.Warnings {
		if w.Rule == RuleDeadStore && w.Msg != "value assigned to dead is never used" {
			t.Fatalf("unexpected dead-store target: %+v", w)
		}
	}
	if rep.Count(RuleDeadStore) != 1 {
		t.Fatalf("dead stores = %d\n%s", rep.Count(RuleDeadStore), rep)
	}
}

func TestASTRulesWalkNestedConstructs(t *testing.T) {
	// Exercise the walker across for-loops, nested blocks, and else arms.
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a, int b) {
	for (int i = 0; i < a; i++) {
		if (i % 2) {
			a = a / b;
		} else {
			{
				b = b / a;
			}
		}
	}
	while (1) {
		a = a + 1;
		if (a > 100) { break; }
	}
	return a;
}`}))
	if rep.Count(RuleDivByZeroRisk) != 2 {
		t.Fatalf("div warnings = %d\n%s", rep.Count(RuleDivByZeroRisk), rep)
	}
	if rep.Count(RuleInfiniteLoop) != 0 {
		t.Fatalf("loop with break flagged\n%s", rep)
	}
}

func TestInfiniteLoopReturnCountsAsExit(t *testing.T) {
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	while (1) {
		a = a + 1;
		if (a > 5) { return a; }
	}
}`}))
	if rep.Count(RuleInfiniteLoop) != 0 {
		t.Fatalf("loop with return flagged\n%s", rep)
	}
}

func TestInfiniteLoopNestedBreakDoesNotCount(t *testing.T) {
	// The inner loop's break does not exit the outer while(1).
	rep := Check(tree(metrics.File{Path: "p.mc", Content: `
int f(int a) {
	while (1) {
		while (a > 0) {
			a = a - 1;
			break;
		}
		a = a + 1;
	}
	return a;
}`}))
	if rep.Count(RuleInfiniteLoop) != 1 {
		t.Fatalf("outer infinite loop missed (inner break should not count)\n%s", rep)
	}
}
