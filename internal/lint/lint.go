// Package lint is the bug-finding-tool substrate (§4.2: "leveraging
// bug-finding tools"). It runs a battery of rule-based checkers over token
// streams and, where the source parses as MiniC, over the AST, producing
// per-rule warning counts that feed the prediction model as features — the
// paper's suggestion that even noisy bug-finder output carries signal.
package lint

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/lexer"
	"repro/internal/metrics"
	"repro/internal/minic"
)

// Rule identifies one checker.
type Rule string

// The rule battery.
const (
	RuleUnsafeCall        Rule = "unsafe-call"         // strcpy/gets/sprintf/...
	RuleFormatString      Rule = "format-string"       // printf(var) with no literal
	RuleAssignInCondition Rule = "assign-in-condition" // if (x = y)
	RuleUncheckedAlloc    Rule = "unchecked-alloc"     // malloc result unused/unchecked
	RuleEmptyCatch        Rule = "empty-catch"         // catch (...) {}
	RuleGotoUse           Rule = "goto-use"
	RuleDeadStore         Rule = "dead-store"      // value written, never read (MiniC)
	RuleDivByZeroRisk     Rule = "div-by-zero"     // x / y with unvalidated divisor (MiniC)
	RuleInfiniteLoop      Rule = "infinite-loop"   // while(1) without break (MiniC)
	RuleMissingReturn     Rule = "missing-return"  // fallthrough end of int function (MiniC)
	RuleDeepExpression    Rule = "deep-expression" // expressions nested > 8 levels
	RuleLongParameterList Rule = "long-parameter-list"
)

// Warning is one finding.
type Warning struct {
	Rule Rule
	File string
	Line int
	Msg  string
}

// Report aggregates findings.
type Report struct {
	Warnings []Warning
}

// Count returns the number of warnings for one rule.
func (r *Report) Count(rule Rule) int {
	n := 0
	for _, w := range r.Warnings {
		if w.Rule == rule {
			n++
		}
	}
	return n
}

// Total returns the total number of warnings.
func (r *Report) Total() int { return len(r.Warnings) }

// Counts returns per-rule counts, sorted by rule name.
func (r *Report) Counts() map[Rule]int {
	out := map[Rule]int{}
	for _, w := range r.Warnings {
		out[w.Rule]++
	}
	return out
}

var unsafeCalls = map[string]bool{
	"strcpy": true, "strcat": true, "gets": true, "sprintf": true,
	"vsprintf": true, "scanf": true, "alloca": true, "strtok": true,
}

// Check runs every applicable rule over the tree.
func Check(t *metrics.Tree) *Report {
	rep := &Report{}
	// Per-file scratch, reused across the tree so steady-state checking does
	// not allocate token storage per file.
	var all, code []lexer.Token
	for _, f := range t.Files {
		all = lexer.TokenizeInto(all[:0], f.Content, f.Language)
		code = lexer.CodeInto(code[:0], all)
		checkFile(f, code, rep)
	}
	sort.SliceStable(rep.Warnings, func(i, j int) bool {
		if rep.Warnings[i].File != rep.Warnings[j].File {
			return rep.Warnings[i].File < rep.Warnings[j].File
		}
		return rep.Warnings[i].Line < rep.Warnings[j].Line
	})
	return rep
}

// CheckFile runs every applicable rule over one file. Warnings depend only
// on the file itself, so a tree report is exactly the per-file reports
// concatenated (then sorted); incremental analyses rely on that to
// maintain warning totals by delta.
func CheckFile(f metrics.File) *Report {
	rep := &Report{}
	code := lexer.CodeInto(nil, lexer.Tokenize(f.Content, f.Language))
	checkFile(f, code, rep)
	return rep
}

// checkFile folds one file's token and AST rules into rep.
func checkFile(f metrics.File, code []lexer.Token, rep *Report) {
	checkTokens(f, code, rep)
	// The AST rules only apply to files that parse as MiniC.
	if prog, err := minic.Parse(f.Content); err == nil {
		checkAST(f.Path, prog, rep)
	}
}

// checkTokens runs the token rules over the file's semantic token stream.
func checkTokens(f metrics.File, toks []lexer.Token, rep *Report) {
	parenDepth := 0
	condParen := -1 // depth at which an if/while condition opened
	for i, tok := range toks {
		switch tok.Kind {
		case lexer.Keyword:
			switch tok.Text() {
			case "goto":
				rep.add(RuleGotoUse, f.Path, int(tok.Line), "goto considered harmful")
			case "if", "while":
				if i+1 < len(toks) && toks[i+1].Text() == "(" {
					condParen = parenDepth + 1
				}
			case "catch":
				// catch (...) { } with empty body
				if j := matchEmptyCatch(toks, i); j >= 0 {
					rep.add(RuleEmptyCatch, f.Path, int(tok.Line), "empty catch block swallows errors")
				}
			}
		case lexer.Ident:
			isCall := i+1 < len(toks) && toks[i+1].Text() == "("
			if isCall && unsafeCalls[tok.Text()] {
				rep.add(RuleUnsafeCall, f.Path, int(tok.Line), "call to unsafe API "+tok.Text())
			}
			if isCall && (tok.Text() == "printf" || tok.Text() == "fprintf" || tok.Text() == "syslog") {
				if !firstArgIsLiteral(toks, i+1, tok.Text() == "fprintf" || tok.Text() == "syslog") {
					rep.add(RuleFormatString, f.Path, int(tok.Line), "non-literal format string in "+tok.Text())
				}
			}
			if isCall && tok.Text() == "malloc" {
				if !allocChecked(toks, i) {
					rep.add(RuleUncheckedAlloc, f.Path, int(tok.Line), "malloc result not checked against NULL")
				}
			}
		case lexer.Punct:
			switch tok.Text() {
			case "(":
				parenDepth++
			case ")":
				parenDepth--
				if condParen > parenDepth {
					condParen = -1
				}
			}
		case lexer.Operator:
			if tok.Text() == "=" && condParen > 0 && parenDepth >= condParen {
				// Assignment directly inside an if/while condition.
				rep.add(RuleAssignInCondition, f.Path, int(tok.Line), "assignment inside condition; did you mean ==?")
			}
		}
	}
	checkDeepExpressions(f, toks, rep)
	checkLongParams(f, toks, rep)
}

// matchEmptyCatch reports the index of the '}' if toks[i] starts
// "catch ( ... ) { }", else -1.
func matchEmptyCatch(toks []lexer.Token, i int) int {
	j := i + 1
	if j >= len(toks) || toks[j].Text() != "(" {
		return -1
	}
	depth := 0
	for ; j < len(toks); j++ {
		if toks[j].Text() == "(" {
			depth++
		}
		if toks[j].Text() == ")" {
			depth--
			if depth == 0 {
				break
			}
		}
	}
	if j+2 < len(toks) && toks[j+1].Text() == "{" && toks[j+2].Text() == "}" {
		return j + 2
	}
	return -1
}

// firstArgIsLiteral checks whether the format argument of a printf-family
// call is a string literal. skipOne skips the stream/priority argument of
// fprintf/syslog.
func firstArgIsLiteral(toks []lexer.Token, openParen int, skipOne bool) bool {
	depth := 0
	argIndex := 0
	want := 0
	if skipOne {
		want = 1
	}
	for i := openParen; i < len(toks); i++ {
		switch toks[i].Text() {
		case "(":
			depth++
			continue
		case ")":
			depth--
			if depth == 0 {
				return false
			}
			continue
		case ",":
			if depth == 1 {
				argIndex++
			}
			continue
		}
		if depth == 1 && argIndex == want {
			return toks[i].Kind == lexer.String
		}
	}
	return false
}

// allocChecked heuristically decides whether "x = malloc(...)" is followed
// within a few tokens by a check mentioning x ("if (x == NULL)", "if (!x)").
func allocChecked(toks []lexer.Token, callIdx int) bool {
	// Identify the assigned variable: pattern "ident = malloc".
	var varName string
	if callIdx >= 2 && toks[callIdx-1].Text() == "=" && toks[callIdx-2].Kind == lexer.Ident {
		varName = toks[callIdx-2].Text()
	}
	if varName == "" {
		return false
	}
	// Scan forward a bounded window for "if" ... varName.
	for i := callIdx; i < len(toks) && i < callIdx+40; i++ {
		if toks[i].Kind == lexer.Keyword && toks[i].Text() == "if" {
			for j := i; j < len(toks) && j < i+12; j++ {
				if toks[j].Kind == lexer.Ident && toks[j].Text() == varName {
					return true
				}
			}
		}
	}
	return false
}

func checkDeepExpressions(f metrics.File, toks []lexer.Token, rep *Report) {
	depth := 0
	reported := map[int]bool{}
	for _, tok := range toks {
		switch tok.Text() {
		case "(":
			depth++
			if depth > 8 && !reported[int(tok.Line)] {
				reported[int(tok.Line)] = true
				rep.add(RuleDeepExpression, f.Path, int(tok.Line), "expression nested deeper than 8 levels")
			}
		case ")":
			if depth > 0 {
				depth--
			}
		case ";", "{", "}":
			depth = 0 // statement boundary resets (defensive against imbalance)
		}
	}
}

func checkLongParams(f metrics.File, toks []lexer.Token, rep *Report) {
	for _, fn := range metrics.CyclomaticTokens(f, toks) {
		if fn.Params > 6 {
			rep.add(RuleLongParameterList, f.Path, fn.Line, "function "+fn.Name+" has too many parameters")
		}
	}
}

func (r *Report) add(rule Rule, file string, line int, msg string) {
	r.Warnings = append(r.Warnings, Warning{Rule: rule, File: file, Line: line, Msg: msg})
}

// String renders warnings one per line, compiler style.
func (r *Report) String() string {
	var sb strings.Builder
	for _, w := range r.Warnings {
		sb.WriteString(w.File)
		sb.WriteString(":")
		sb.WriteString(strconv.Itoa(w.Line))
		sb.WriteString(": [")
		sb.WriteString(string(w.Rule))
		sb.WriteString("] ")
		sb.WriteString(w.Msg)
		sb.WriteString("\n")
	}
	return sb.String()
}
