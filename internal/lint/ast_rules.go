package lint

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/minic"
)

// checkAST runs the MiniC-only rules: dead stores (via the dataflow
// substrate), missing returns (via the IR), infinite loops, and
// division-by-unvalidated-value. Like the bug finders the paper surveys,
// several of these are deliberately noisy; the model is what separates the
// wheat from the chaff.
func checkAST(path string, prog *minic.Program, rep *Report) {
	lowered, err := ir.Lower(prog)
	if err != nil {
		return
	}
	for _, f := range lowered.Funcs {
		for _, d := range dataflow.DeadStores(f) {
			if d.Var == "" || d.Var[0] == 't' && isTempName(d.Var) {
				continue
			}
			line := 0
			if d.Index >= 0 && d.Index < len(d.Block.Instrs) {
				line = d.Block.Instrs[d.Index].SrcLine()
			}
			rep.add(RuleDeadStore, path, line, "value assigned to "+d.Var+" is never used")
		}
		// Missing return: an implicit (value-less) return in MiniC, where
		// every function returns int.
		for _, b := range f.Blocks {
			if r, ok := b.Term.(*ir.Ret); ok && r.Value == nil {
				line := 0
				if n := len(b.Instrs); n > 0 {
					line = b.Instrs[n-1].SrcLine()
				}
				rep.add(RuleMissingReturn, path, line, "control reaches end of function "+f.Name+" without a return value")
			}
		}
	}
	for _, fn := range prog.Funcs {
		walkStmts(fn.Body, func(s minic.Stmt) {
			switch x := s.(type) {
			case *minic.WhileStmt:
				if lit, ok := x.Cond.(*minic.NumLit); ok && lit.Value != 0 && !containsBreak(x.Body) {
					rep.add(RuleInfiniteLoop, path, x.Line, "while("+minic.ExprString(x.Cond)+") without break")
				}
			}
		})
		walkExprs(fn.Body, func(e minic.Expr) {
			if b, ok := e.(*minic.BinaryExpr); ok && (b.Op == "/" || b.Op == "%") {
				switch b.R.(type) {
				case *minic.NumLit:
					// literal divisor: fine (zero literals rejected upstream
					// would be a separate rule; keep quiet)
				default:
					rep.add(RuleDivByZeroRisk, path, b.Line, "division by unvalidated value "+minic.ExprString(b.R))
				}
			}
		})
	}
}

func isTempName(s string) bool {
	if len(s) < 2 || s[0] != 't' {
		return false
	}
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// walkStmts visits every statement in a block, recursively.
func walkStmts(b *minic.Block, visit func(minic.Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		visit(s)
		switch x := s.(type) {
		case *minic.Block:
			walkStmts(x, visit)
		case *minic.IfStmt:
			walkStmts(x.Then, visit)
			walkStmts(x.Else, visit)
		case *minic.WhileStmt:
			walkStmts(x.Body, visit)
		case *minic.ForStmt:
			if x.Init != nil {
				visit(x.Init)
			}
			if x.Post != nil {
				visit(x.Post)
			}
			walkStmts(x.Body, visit)
		}
	}
}

// walkExprs visits every expression in a block, recursively.
func walkExprs(b *minic.Block, visit func(minic.Expr)) {
	walkStmts(b, func(s minic.Stmt) {
		switch x := s.(type) {
		case *minic.DeclStmt:
			visitExpr(x.Init, visit)
		case *minic.AssignStmt:
			visitExpr(x.Target, visit)
			visitExpr(x.Value, visit)
		case *minic.IfStmt:
			visitExpr(x.Cond, visit)
		case *minic.WhileStmt:
			visitExpr(x.Cond, visit)
		case *minic.ForStmt:
			visitExpr(x.Cond, visit)
		case *minic.ReturnStmt:
			visitExpr(x.Value, visit)
		case *minic.ExprStmt:
			visitExpr(x.X, visit)
		}
	})
}

func visitExpr(e minic.Expr, visit func(minic.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *minic.BinaryExpr:
		visitExpr(x.L, visit)
		visitExpr(x.R, visit)
	case *minic.UnaryExpr:
		visitExpr(x.X, visit)
	case *minic.IndexExpr:
		visitExpr(x.Index, visit)
	case *minic.CallExpr:
		for _, a := range x.Args {
			visitExpr(a, visit)
		}
	}
}

// containsBreak reports whether the block contains a break at its own loop
// level (breaks inside nested loops do not count).
func containsBreak(b *minic.Block) bool {
	if b == nil {
		return false
	}
	for _, s := range b.Stmts {
		switch x := s.(type) {
		case *minic.BreakStmt:
			return true
		case *minic.Block:
			if containsBreak(x) {
				return true
			}
		case *minic.IfStmt:
			if containsBreak(x.Then) || containsBreak(x.Else) {
				return true
			}
		case *minic.ReturnStmt:
			return true // a return exits the loop too
		}
	}
	return false
}
