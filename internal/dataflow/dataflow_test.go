package dataflow

import (
	"testing"

	"repro/internal/ir"
)

func lower(t *testing.T, src string) *ir.Func {
	t.Helper()
	return ir.MustLowerSource(src).Funcs[0]
}

func TestReachingStraightLine(t *testing.T) {
	f := lower(t, `
int f(int a) {
	int x = 1;
	x = 2;
	return x;
}`)
	r := ReachingDefinitions(f)
	entry := f.Entry()
	// At exit: only the second definition of x reaches (plus 'a' param and temps).
	var xDefs []Def
	for d := range r.Out[entry] {
		if d.Var == "x" {
			xDefs = append(xDefs, d)
		}
	}
	if len(xDefs) != 1 {
		t.Fatalf("x defs at exit = %v", xDefs)
	}
}

func TestReachingMerge(t *testing.T) {
	f := lower(t, `
int f(int c) {
	int x = 0;
	if (c) { x = 1; } else { x = 2; }
	return x;
}`)
	r := ReachingDefinitions(f)
	// At the join block, both branch definitions reach.
	var join *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			join = b
		}
	}
	if join == nil {
		t.Fatal("no join block")
	}
	count := 0
	for d := range r.In[join] {
		if d.Var == "x" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("x defs at join = %d, want 2", count)
	}
}

func TestReachingParams(t *testing.T) {
	f := lower(t, "int f(int a) { return a; }")
	r := ReachingDefinitions(f)
	if len(r.ParamDefs) != 1 || r.ParamDefs[0].Var != "a" || r.ParamDefs[0].Index != -1 {
		t.Fatalf("param defs = %v", r.ParamDefs)
	}
	found := false
	for d := range r.In[f.Entry()] {
		if d.Var == "a" && d.Index == -1 {
			found = true
		}
	}
	if !found {
		t.Fatal("param def missing at entry")
	}
}

func TestReachingLoop(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int s = 0;
	while (n) { s = s + 1; n = n - 1; }
	return s;
}`)
	r := ReachingDefinitions(f)
	// In the loop condition block, both the initial def of s and the
	// loop-body def must reach (the fixpoint crosses the back edge).
	var cond *ir.Block
	for _, b := range f.Blocks {
		if len(b.Preds) == 2 {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no cond block")
	}
	count := 0
	for d := range r.In[cond] {
		if d.Var == "s" {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("s defs at loop head = %d, want 2", count)
	}
}

func TestChains(t *testing.T) {
	f := lower(t, `
int f(int c) {
	int x = 1;
	if (c) { x = 2; }
	int y = x;
	return y;
}`)
	chains := Chains(f)
	// Find the use of x in the assignment to y: it should see 2 defs.
	found := false
	for site, defs := range chains {
		if site.Var == "x" && len(defs) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no merged use of x: %v", chains)
	}
}

func TestLiveness(t *testing.T) {
	f := lower(t, `
int f(int a, int b) {
	int x = a + 1;
	int y = b + 2;
	return x;
}`)
	lv := LiveVariables(f)
	entry := f.Entry()
	// a and b are live at entry (both used); y is dead everywhere after def.
	if !lv.In[entry]["a"] || !lv.In[entry]["b"] {
		t.Fatalf("params not live at entry: %v", lv.In[entry])
	}
	if lv.Out[entry]["y"] {
		t.Fatal("y live at exit of the only block")
	}
}

func TestDeadStores(t *testing.T) {
	f := lower(t, `
int f(int a) {
	int x = 1;
	x = 2;
	int unused = a * 3;
	return x;
}`)
	dead := DeadStores(f)
	// Dead: first def of x (overwritten) and 'unused'.
	vars := map[string]bool{}
	for _, d := range dead {
		vars[d.Var] = true
	}
	if !vars["x"] {
		t.Fatalf("overwritten x not reported: %v", dead)
	}
	if !vars["unused"] {
		t.Fatalf("unused var not reported: %v", dead)
	}
}

func TestDeadStoresNoneInTightCode(t *testing.T) {
	f := lower(t, `
int f(int a) {
	int x = a + 1;
	return x;
}`)
	for _, d := range DeadStores(f) {
		if d.Var == "x" || d.Var == "a" {
			t.Fatalf("live store reported dead: %v", d)
		}
	}
}

func TestDeadStoresTerminatorUse(t *testing.T) {
	// The branch condition temp is used by the terminator only; it must not
	// be a dead store.
	f := lower(t, "int f(int a) { if (a > 1) { return 1; } return 0; }")
	for _, d := range DeadStores(f) {
		if d.Var[0] == 't' {
			t.Fatalf("branch condition reported dead: %v", d)
		}
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	f := lower(t, `
int f(int n) {
	int acc = 0;
	while (n > 0) {
		acc = acc + n;
		n = n - 1;
	}
	return acc;
}`)
	lv := LiveVariables(f)
	// acc must be live around the back edge (used on next iteration).
	var body *ir.Block
	for _, b := range f.Blocks {
		if b.Name[:4] == "loop" && len(b.Instrs) > 0 {
			for _, in := range b.Instrs {
				if d := in.Defs(); d != nil && d.String() == "acc" {
					body = b
				}
			}
		}
	}
	if body == nil {
		t.Fatal("loop body not found")
	}
	if !lv.Out[body]["acc"] {
		t.Fatalf("acc not live at body exit: %v", lv.Out[body])
	}
}
