package dataflow

import (
	"sort"

	"repro/internal/callgraph"
	"repro/internal/ir"
)

// This file implements the interprocedural half of the taint engine: a
// summary-based, bottom-up whole-program analysis. Each function is analyzed
// once per fixpoint round with an origin lattice (which of my parameters, or
// an internal source, does this value depend on?); the result is a Summary.
// Summaries propagate over the SCC condensation of the call graph in
// callee-before-caller order, so a network read in main reaching a
// strcpy-style sink several calls deep is finally counted — the flow the
// intraprocedural AnalyzeTaint stops at the function boundary for.

// InterConfig configures the whole-program analysis. The embedded
// TaintConfig supplies the source/sink/sanitizer tables; its TaintParams
// field is ignored here (parameter taint is a per-root decision, not a
// per-function one — tainting every function's parameters would recount one
// flow once per frame on its call chain).
type InterConfig struct {
	TaintConfig
	// TaintRootParams treats the parameters of call-graph roots (functions
	// no defined function calls, plus main) as attacker-controlled, the
	// "inputs exposed to external attackers" convention.
	TaintRootParams bool
}

// DefaultInterConfig mirrors DefaultTaintConfig with root-parameter taint.
func DefaultInterConfig() InterConfig {
	return InterConfig{TaintConfig: DefaultTaintConfig(), TaintRootParams: true}
}

// SinkReach is one sink transitively reachable from a summarized function.
// Line is the call-site line inside the summarized function: the sink call
// itself at Depth 0, or the call that starts the chain towards it otherwise.
type SinkReach struct {
	Sink  string
	Line  int
	Depth int // call edges from the summarized function to the sink call
}

// Summary is the interprocedural behavior of one function: how taint flows
// through it (parameters to return value) and which sinks fire when taint
// flows in.
type Summary struct {
	Name string
	// ReturnFromParams lists parameter indices whose taint reaches the
	// return value, sorted.
	ReturnFromParams []int
	// ReturnAlways reports that the return value is tainted regardless of
	// inputs (a source call inside the function, or a callee's, reaches it).
	ReturnAlways bool
	// ParamSinks maps a parameter index to the sinks that fire when that
	// parameter is tainted.
	ParamSinks map[int][]SinkReach
	// LocalSinks fire regardless of inputs: taint born inside the function
	// (or returned by a callee's source) reaches them.
	LocalSinks []SinkReach
}

// InterFinding is one whole-program taint flow: inside Func, attacker data
// reaches (a call chain ending in) Sink. Depth counts the call edges between
// Func and the sink call, so Depth 0 is an ordinary intraprocedural finding
// and Depth 2 means the tainted value was passed through two calls before
// hitting the sink.
type InterFinding struct {
	Func  string
	Sink  string
	Line  int
	Depth int
}

// InterResult is the whole-program analysis outcome.
type InterResult struct {
	Findings  []InterFinding
	Summaries map[string]Summary
	// MaxChain is the number of functions on the longest source-to-sink
	// chain observed (max Depth + 1), 0 when there are no findings.
	MaxChain int
}

// originSet is the taint lattice element: a value depends on some subset of
// the current function's parameters and/or on an internal source. Parameters
// beyond the 63rd are not tracked (conservatively clean); MiniC code never
// gets near that, and the lint battery flags >6 parameters long before.
type originSet struct {
	src    bool
	params uint64
}

func (o originSet) empty() bool { return !o.src && o.params == 0 }

func (o originSet) union(p originSet) originSet {
	return originSet{src: o.src || p.src, params: o.params | p.params}
}

// sinkKey dedups sink reaches per summarized function; depth is kept
// separately as a min so fixpoint iteration is monotone.
type sinkKey struct {
	sink string
	line int
}

// summaryBuilder is the mutable fixpoint form of a Summary.
type summaryBuilder struct {
	nParams         int
	returnFromParam uint64
	returnAlways    bool
	paramSinks      []map[sinkKey]int // per param: (sink, line) -> min depth
	localSinks      map[sinkKey]int
}

func newSummaryBuilder(nParams int) *summaryBuilder {
	sb := &summaryBuilder{
		nParams:    nParams,
		paramSinks: make([]map[sinkKey]int, nParams),
		localSinks: map[sinkKey]int{},
	}
	for i := range sb.paramSinks {
		sb.paramSinks[i] = map[sinkKey]int{}
	}
	return sb
}

// addReach records a sink reach for every origin in o: an internal source
// becomes a local sink, parameter origins become conditional ones.
func (sb *summaryBuilder) addReach(o originSet, k sinkKey, depth int) {
	put := func(m map[sinkKey]int) {
		if d, ok := m[k]; !ok || depth < d {
			m[k] = depth
		}
	}
	if o.src {
		put(sb.localSinks)
	}
	for i := 0; i < sb.nParams && i < 64; i++ {
		if o.params&(1<<uint(i)) != 0 {
			put(sb.paramSinks[i])
		}
	}
}

func sinkMapsEqual(a, b map[sinkKey]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

func (sb *summaryBuilder) equal(other *summaryBuilder) bool {
	if sb.returnFromParam != other.returnFromParam || sb.returnAlways != other.returnAlways {
		return false
	}
	if !sinkMapsEqual(sb.localSinks, other.localSinks) {
		return false
	}
	for i := range sb.paramSinks {
		if !sinkMapsEqual(sb.paramSinks[i], other.paramSinks[i]) {
			return false
		}
	}
	return true
}

func sortedReaches(m map[sinkKey]int) []SinkReach {
	out := make([]SinkReach, 0, len(m))
	for k, d := range m {
		out = append(out, SinkReach{Sink: k.sink, Line: k.line, Depth: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		if out[i].Sink != out[j].Sink {
			return out[i].Sink < out[j].Sink
		}
		return out[i].Depth < out[j].Depth
	})
	return out
}

func (sb *summaryBuilder) finish(name string) Summary {
	s := Summary{Name: name, ReturnAlways: sb.returnAlways, ParamSinks: map[int][]SinkReach{}}
	for i := 0; i < sb.nParams && i < 64; i++ {
		if sb.returnFromParam&(1<<uint(i)) != 0 {
			s.ReturnFromParams = append(s.ReturnFromParams, i)
		}
		if len(sb.paramSinks[i]) > 0 {
			s.ParamSinks[i] = sortedReaches(sb.paramSinks[i])
		}
	}
	s.LocalSinks = sortedReaches(sb.localSinks)
	return s
}

// analyzeOrigins runs the origin-lattice dataflow over one function against
// the current summary environment and returns the function's new summary.
func analyzeOrigins(f *ir.Func, cfg InterConfig, sums map[string]*summaryBuilder) *summaryBuilder {
	sb := newSummaryBuilder(len(f.Params))

	entry := map[string]originSet{}
	for i, p := range f.Params {
		if i < 64 {
			entry[p] = originSet{params: 1 << uint(i)}
		}
	}

	originOf := func(v ir.Value, t map[string]originSet) originSet {
		switch x := v.(type) {
		case ir.Const:
			return originSet{}
		case ir.Var:
			return t[x.Name]
		case ir.Temp:
			return t[x.String()]
		}
		return originSet{}
	}
	set := func(t map[string]originSet, d ir.Dest, o originSet) {
		if d == nil {
			return
		}
		if o.empty() {
			delete(t, d.String())
		} else {
			t[d.String()] = o
		}
	}

	// transfer applies one block to a state; record is non-nil only on the
	// final pass, when sink reaches are written into the summary.
	transfer := func(b *ir.Block, t map[string]originSet, record bool) {
		for _, instr := range b.Instrs {
			switch x := instr.(type) {
			case *ir.Assign:
				set(t, x.Dst, originOf(x.Src, t))
			case *ir.BinOp:
				set(t, x.Dst, originOf(x.L, t).union(originOf(x.R, t)))
			case *ir.UnOp:
				set(t, x.Dst, originOf(x.X, t))
			case *ir.ArrayLoad:
				set(t, x.Dst, t[x.Array].union(originOf(x.Index, t)))
			case *ir.ArrayStore:
				o := originOf(x.Src, t).union(originOf(x.Index, t))
				if !o.empty() {
					t[x.Array] = t[x.Array].union(o) // weak update: arrays only gain taint
				}
			case *ir.Call:
				var argUnion originSet
				args := make([]originSet, len(x.Args))
				for i, a := range x.Args {
					args[i] = originOf(a, t)
					argUnion = argUnion.union(args[i])
				}
				if callee, ok := sums[x.Name]; ok {
					// Defined function: apply its summary.
					if record {
						for i, ao := range args {
							if ao.empty() || i >= len(callee.paramSinks) {
								continue
							}
							for k, depth := range callee.paramSinks[i] {
								sb.addReach(ao, sinkKey{sink: k.sink, line: x.Line}, depth+1)
							}
						}
					}
					ret := originSet{src: callee.returnAlways}
					for i, ao := range args {
						if i < 64 && callee.returnFromParam&(1<<uint(i)) != 0 {
							ret = ret.union(ao)
						}
					}
					set(t, x.Dst, ret)
					continue
				}
				// External callee: the flat source/sink/sanitizer tables.
				if record && cfg.Sinks[x.Name] {
					for _, ao := range args {
						if !ao.empty() {
							sb.addReach(ao, sinkKey{sink: x.Name, line: x.Line}, 0)
						}
					}
				}
				switch {
				case cfg.Sources[x.Name]:
					set(t, x.Dst, originSet{src: true})
				case cfg.Sanitizers[x.Name]:
					set(t, x.Dst, originSet{})
				default:
					// Unknown callee: result taint follows argument taint.
					set(t, x.Dst, argUnion)
				}
			}
		}
	}

	in := map[*ir.Block]map[string]originSet{}
	out := map[*ir.Block]map[string]originSet{}
	for _, b := range f.Blocks {
		in[b] = map[string]originSet{}
		out[b] = map[string]originSet{}
	}
	joinInto := func(dst map[string]originSet, src map[string]originSet) {
		for k, o := range src {
			dst[k] = dst[k].union(o)
		}
	}
	statesEq := func(a, b map[string]originSet) bool {
		if len(a) != len(b) {
			return false
		}
		for k, o := range a {
			if b[k] != o {
				return false
			}
		}
		return true
	}

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			newIn := map[string]originSet{}
			if b == f.Entry() {
				joinInto(newIn, entry)
			}
			for _, p := range b.Preds {
				joinInto(newIn, out[p])
			}
			newOut := make(map[string]originSet, len(newIn))
			joinInto(newOut, newIn)
			transfer(b, newOut, false)
			if !statesEq(newIn, in[b]) || !statesEq(newOut, out[b]) {
				in[b] = newIn
				out[b] = newOut
				changed = true
			}
		}
	}

	// Final pass with converged in-sets: record sink reaches and return-value
	// origins.
	for _, b := range f.Blocks {
		t := make(map[string]originSet, len(in[b]))
		joinInto(t, in[b])
		transfer(b, t, true)
		if ret, isRet := b.Term.(*ir.Ret); isRet && ret.Value != nil {
			o := originOf(ret.Value, t)
			sb.returnAlways = sb.returnAlways || o.src
			sb.returnFromParam |= o.params
		}
	}
	return sb
}

// AnalyzeProgramTaint runs the whole-program taint analysis: summaries are
// computed bottom-up over the SCC condensation of the call graph (iterating
// to a fixpoint inside recursive components), then findings are read off the
// converged summaries — every function's source-fed sinks, plus the
// root-parameter flows when cfg.TaintRootParams is set. The result is fully
// deterministic: program order drives every iteration and findings come out
// sorted by (function, line, sink, depth).
func AnalyzeProgramTaint(p *ir.Program, cfg InterConfig) *InterResult {
	g := callgraph.Build(p)
	funcs := map[string]*ir.Func{}
	for _, f := range p.Funcs {
		funcs[f.Name] = f
	}

	sums := map[string]*summaryBuilder{}
	for _, comp := range g.SCCs() {
		for _, fn := range comp {
			sums[fn] = newSummaryBuilder(len(funcs[fn].Params))
		}
		// Fixpoint within the component; a singleton without self-recursion
		// converges on the first round.
		for round := 0; ; round++ {
			changed := false
			for _, fn := range comp {
				next := analyzeOrigins(funcs[fn], cfg, sums)
				if !next.equal(sums[fn]) {
					sums[fn] = next
					changed = true
				}
			}
			if !changed {
				break
			}
			if round > 4*len(comp)+64 {
				break // safety valve; the lattice is finite, so unreachable
			}
		}
	}

	res := &InterResult{Summaries: map[string]Summary{}}
	for name, sb := range sums {
		res.Summaries[name] = sb.finish(name)
	}

	roots := map[string]bool{}
	if cfg.TaintRootParams {
		for _, r := range g.Roots() {
			roots[r] = true
		}
		if _, hasMain := funcs["main"]; hasMain {
			roots["main"] = true
		}
	}

	type findingKey struct {
		fn   string
		sink string
		line int
	}
	best := map[findingKey]int{}
	record := func(fn string, r SinkReach) {
		k := findingKey{fn: fn, sink: r.Sink, line: r.Line}
		if d, ok := best[k]; !ok || r.Depth < d {
			best[k] = r.Depth
		}
	}
	for _, f := range p.Funcs {
		s := res.Summaries[f.Name]
		for _, r := range s.LocalSinks {
			record(f.Name, r)
		}
		if roots[f.Name] {
			for _, reaches := range s.ParamSinks {
				for _, r := range reaches {
					record(f.Name, r)
				}
			}
		}
	}

	order := map[string]int{}
	for i, f := range p.Funcs {
		order[f.Name] = i
	}
	for k, d := range best {
		res.Findings = append(res.Findings, InterFinding{Func: k.fn, Sink: k.sink, Line: k.line, Depth: d})
		if d+1 > res.MaxChain {
			res.MaxChain = d + 1
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if order[a.Func] != order[b.Func] {
			return order[a.Func] < order[b.Func]
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Sink != b.Sink {
			return a.Sink < b.Sink
		}
		return a.Depth < b.Depth
	})
	return res
}

// CountInterprocSinks analyzes the program with the default interprocedural
// configuration and returns the finding count and the longest source-to-sink
// call chain — the "interproc_tainted_sinks" and "taint_path_depth_max"
// features.
func CountInterprocSinks(p *ir.Program) (count, maxChain int) {
	res := AnalyzeProgramTaint(p, DefaultInterConfig())
	return len(res.Findings), res.MaxChain
}
