package dataflow

import (
	"reflect"
	"testing"

	"repro/internal/ir"
)

func interproc(t *testing.T, src string) *InterResult {
	t.Helper()
	return AnalyzeProgramTaint(ir.MustLowerSource(src), DefaultInterConfig())
}

// The canonical flow the intraprocedural analysis misses: a source wrapped
// in a helper. AnalyzeTaint sees fetch() as an unknown call with clean
// arguments, so its result stays clean and the strcpy is never flagged.
const wrappedSourceSrc = `
int fetch(void) {
	int p = recv(0);
	return p;
}
int handle(void) {
	int buf = 0;
	int m = fetch();
	strcpy(buf, m);
	return 0;
}`

func TestInterprocWrappedSourceFound(t *testing.T) {
	// Precondition: the intraprocedural engine misses this program entirely.
	p := ir.MustLowerSource(wrappedSourceSrc)
	cfg := DefaultTaintConfig()
	cfg.TaintParams = false
	for _, f := range p.Funcs {
		if n := len(AnalyzeTaint(f, cfg).Findings); n != 0 {
			t.Fatalf("intraprocedural engine unexpectedly found %d findings in %s", n, f.Name)
		}
	}
	if got := CountTaintedSinks(p); got != 0 {
		t.Fatalf("CountTaintedSinks = %d, want 0 (no param flows here)", got)
	}

	res := interproc(t, wrappedSourceSrc)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", res.Findings)
	}
	f := res.Findings[0]
	if f.Func != "handle" || f.Sink != "strcpy" || f.Depth != 0 {
		t.Fatalf("finding = %+v", f)
	}
	if res.MaxChain != 1 {
		t.Fatalf("MaxChain = %d, want 1", res.MaxChain)
	}
	// The summary view: fetch's return is always tainted.
	if s := res.Summaries["fetch"]; !s.ReturnAlways {
		t.Fatalf("fetch summary = %+v, want ReturnAlways", s)
	}
}

// A network source in main reaching a strcpy three calls deep: the flow the
// issue names. No function other than main ever sees a source, and the sink
// function only sees parameters.
const deepChainSrc = `
int copy_into(int dst, int s) {
	strcpy(dst, s);
	return 0;
}
int relay(int dst, int v) {
	copy_into(dst, v);
	return 0;
}
int route(int dst, int v) {
	relay(dst, v);
	return 0;
}
int main(void) {
	int buf = 0;
	int pkt = recv(0);
	route(buf, pkt);
	return 0;
}`

func TestInterprocDeepChain(t *testing.T) {
	res := interproc(t, deepChainSrc)
	var mainFindings []InterFinding
	for _, f := range res.Findings {
		if f.Func == "main" {
			mainFindings = append(mainFindings, f)
		}
	}
	if len(mainFindings) != 1 {
		t.Fatalf("main findings = %+v, want exactly 1", mainFindings)
	}
	f := mainFindings[0]
	if f.Sink != "strcpy" || f.Depth != 3 {
		t.Fatalf("main finding = %+v, want strcpy at depth 3", f)
	}
	if res.MaxChain != 4 {
		t.Fatalf("MaxChain = %d, want 4 (main -> route -> relay -> copy_into)", res.MaxChain)
	}
}

func TestInterprocReturnChain(t *testing.T) {
	// Taint through two levels of return values.
	res := interproc(t, `
int raw(void) { int x = read_input(); return x; }
int cooked(void) { int y = raw(); return y + 1; }
int main(void) {
	int v = cooked();
	system(v);
	return 0;
}`)
	found := false
	for _, f := range res.Findings {
		if f.Func == "main" && f.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("return-chain flow missed: %+v", res.Findings)
	}
	if s := res.Summaries["cooked"]; !s.ReturnAlways {
		t.Fatalf("cooked summary = %+v, want ReturnAlways", s)
	}
}

func TestInterprocSanitizerBreaksChain(t *testing.T) {
	res := interproc(t, `
int scrub(int v) { int c = sanitize(v); return c; }
int main(void) {
	int d = recv(0);
	int clean = scrub(d);
	system(clean);
	return 0;
}`)
	for _, f := range res.Findings {
		if f.Sink == "system" {
			t.Fatalf("sanitized chain still flagged: %+v", res.Findings)
		}
	}
}

func TestInterprocRecursion(t *testing.T) {
	// Direct recursion: the param->sink flow must converge and be reported
	// once from the root that feeds it tainted data.
	res := interproc(t, `
int drain(int v, int n) {
	if (n > 0) {
		drain(v, n - 1);
		return 0;
	}
	system(v);
	return 0;
}
int main(void) {
	int d = getenv(0);
	drain(d, 3);
	return 0;
}`)
	found := false
	for _, f := range res.Findings {
		if f.Func == "main" && f.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recursive flow missed: %+v", res.Findings)
	}
}

func TestInterprocMutualRecursionSCC(t *testing.T) {
	// Mutual recursion (a 2-cycle SCC) with a source inside the cycle.
	res := interproc(t, `
int ping(int n) {
	int d = read_input();
	if (n > 0) {
		pong(d, n - 1);
		return 0;
	}
	return 0;
}
int pong(int v, int n) {
	if (n > 0) {
		ping(n - 1);
		return 0;
	}
	strcpy(v, 0);
	return 0;
}`)
	found := false
	for _, f := range res.Findings {
		if f.Func == "ping" && f.Sink == "strcpy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("SCC flow missed: %+v", res.Findings)
	}
}

func TestInterprocNoRootParamTaint(t *testing.T) {
	cfg := DefaultInterConfig()
	cfg.TaintRootParams = false
	res := AnalyzeProgramTaint(ir.MustLowerSource(`
int main(int argc) {
	system(argc);
	return 0;
}`), cfg)
	if len(res.Findings) != 0 {
		t.Fatalf("root param flagged with TaintRootParams off: %+v", res.Findings)
	}
	cfg.TaintRootParams = true
	res = AnalyzeProgramTaint(ir.MustLowerSource(`
int main(int argc) {
	system(argc);
	return 0;
}`), cfg)
	if len(res.Findings) != 1 {
		t.Fatalf("root param flow missed: %+v", res.Findings)
	}
}

func TestInterprocInteriorParamsNotRoots(t *testing.T) {
	// helper's parameter reaches a sink, but helper is only ever called with
	// clean data and is not a root: no finding anywhere.
	res := interproc(t, `
int helper(int v) {
	system(v);
	return 0;
}
int main(void) {
	helper(42);
	return 0;
}`)
	if len(res.Findings) != 0 {
		t.Fatalf("clean interior call flagged: %+v", res.Findings)
	}
}

func TestInterprocDeterministic(t *testing.T) {
	a := interproc(t, deepChainSrc)
	for i := 0; i < 10; i++ {
		b := interproc(t, deepChainSrc)
		if !reflect.DeepEqual(a.Findings, b.Findings) {
			t.Fatalf("findings differ across runs:\n%+v\nvs\n%+v", a.Findings, b.Findings)
		}
		if !reflect.DeepEqual(a.Summaries, b.Summaries) {
			t.Fatalf("summaries differ across runs")
		}
	}
}

func TestCountInterprocSinks(t *testing.T) {
	count, maxChain := CountInterprocSinks(ir.MustLowerSource(wrappedSourceSrc))
	if count != 1 || maxChain != 1 {
		t.Fatalf("CountInterprocSinks = (%d, %d), want (1, 1)", count, maxChain)
	}
	count, maxChain = CountInterprocSinks(ir.MustLowerSource(deepChainSrc))
	if count < 1 || maxChain != 4 {
		t.Fatalf("CountInterprocSinks = (%d, %d), want (>=1, 4)", count, maxChain)
	}
}
