package dataflow

import (
	"sort"

	"repro/internal/ir"
)

// TaintConfig names the source and sink functions. A call to a source
// returns attacker-controlled data; passing tainted data to a sink is a
// finding. Parameters of the analyzed function may also be treated as
// tainted (the "inputs exposed to external attackers" convention).
type TaintConfig struct {
	Sources     map[string]bool
	Sinks       map[string]bool
	TaintParams bool
	Sanitizers  map[string]bool // calls whose result is always clean
}

// DefaultTaintConfig mirrors the attack-surface API tables: inputs arrive
// via recv/read/getenv-style functions, danger lives in strcpy/system-style
// functions.
func DefaultTaintConfig() TaintConfig {
	return TaintConfig{
		Sources: map[string]bool{
			"read_input": true, "recv": true, "read": true, "getenv": true,
			"fgets": true, "scanf": true, "recvfrom": true, "gets": true,
			"fread": true, "parse_packet": true,
		},
		Sinks: map[string]bool{
			"strcpy": true, "strcat": true, "sprintf": true, "system": true,
			"exec": true, "execve": true, "popen": true, "memcpy": true,
			"printf": true, "sql_query": true, "send": true, "write_log": true,
		},
		Sanitizers: map[string]bool{
			"sanitize": true, "validate": true, "escape": true, "clamp": true,
			"bounds_check": true,
		},
		TaintParams: true,
	}
}

// TaintFinding is one tainted value reaching a sink.
type TaintFinding struct {
	Func string
	Sink string
	Line int
	// Arg is the index of the tainted argument.
	Arg int
}

// TaintResult summarizes the analysis of one function.
type TaintResult struct {
	Findings []TaintFinding
	// TaintedVars is the set of variables tainted at function exit.
	TaintedVars []string
}

// AnalyzeTaint runs a flow-sensitive forward taint propagation over f to a
// fixpoint. Taint propagates through assignments, arithmetic, array loads
// and stores (whole-array granularity), and unknown-function call results
// whose arguments are tainted.
func AnalyzeTaint(f *ir.Func, cfg TaintConfig) TaintResult {
	in := map[*ir.Block]map[string]bool{}
	out := map[*ir.Block]map[string]bool{}
	for _, b := range f.Blocks {
		in[b] = map[string]bool{}
		out[b] = map[string]bool{}
	}
	entryTaint := map[string]bool{}
	if cfg.TaintParams {
		for _, p := range f.Params {
			entryTaint[p] = true
		}
	}

	valueTainted := func(v ir.Value, t map[string]bool) bool {
		switch x := v.(type) {
		case ir.Const:
			return false
		case ir.Var:
			return t[x.Name]
		case ir.Temp:
			return t[x.String()]
		}
		return false
	}

	// transfer applies one block's instructions to a taint set, optionally
	// recording sink findings.
	transfer := func(b *ir.Block, t map[string]bool, record func(TaintFinding)) {
		for _, instr := range b.Instrs {
			switch x := instr.(type) {
			case *ir.Assign:
				setTaint(t, x.Dst, valueTainted(x.Src, t))
			case *ir.BinOp:
				setTaint(t, x.Dst, valueTainted(x.L, t) || valueTainted(x.R, t))
			case *ir.UnOp:
				setTaint(t, x.Dst, valueTainted(x.X, t))
			case *ir.ArrayLoad:
				setTaint(t, x.Dst, t[x.Array] || valueTainted(x.Index, t))
			case *ir.ArrayStore:
				if valueTainted(x.Src, t) || valueTainted(x.Index, t) {
					t[x.Array] = true // weak update: arrays only gain taint
				}
			case *ir.Call:
				tainted := false
				for argIdx, a := range x.Args {
					if valueTainted(a, t) {
						tainted = true
						if cfg.Sinks[x.Name] && record != nil {
							record(TaintFinding{Func: f.Name, Sink: x.Name, Line: x.Line, Arg: argIdx})
						}
					}
				}
				switch {
				case cfg.Sources[x.Name]:
					setTaint(t, x.Dst, true)
				case cfg.Sanitizers[x.Name]:
					setTaint(t, x.Dst, false)
				default:
					// Unknown callee: result taint follows argument taint.
					setTaint(t, x.Dst, tainted)
				}
			}
		}
	}

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			newIn := map[string]bool{}
			if b == f.Entry() {
				for v := range entryTaint {
					newIn[v] = true
				}
			}
			for _, p := range b.Preds {
				for v := range out[p] {
					newIn[v] = true
				}
			}
			newOut := cloneSet(newIn)
			transfer(b, newOut, nil)
			if !setEq(newIn, in[b]) || !setEq(newOut, out[b]) {
				in[b] = newIn
				out[b] = newOut
				changed = true
			}
		}
	}

	// Final pass: collect findings with the converged in-sets.
	var res TaintResult
	seen := map[TaintFinding]bool{}
	for _, b := range f.Blocks {
		t := cloneSet(in[b])
		transfer(b, t, func(tf TaintFinding) {
			if !seen[tf] {
				seen[tf] = true
				res.Findings = append(res.Findings, tf)
			}
		})
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Arg < b.Arg
	})

	exitTaint := map[string]bool{}
	for _, b := range f.Blocks {
		if _, isRet := b.Term.(*ir.Ret); isRet {
			for v := range out[b] {
				exitTaint[v] = true
			}
		}
	}
	for v := range exitTaint {
		res.TaintedVars = append(res.TaintedVars, v)
	}
	sort.Strings(res.TaintedVars)
	return res
}

func setTaint(t map[string]bool, d ir.Dest, tainted bool) {
	if d == nil {
		return
	}
	name := d.String()
	if tainted {
		t[name] = true
	} else {
		delete(t, name)
	}
}

func cloneSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// CountTaintedSinks analyzes every function of a program with the default
// configuration and returns the total number of findings — the
// "tainted_sinks" feature.
func CountTaintedSinks(p *ir.Program) int {
	cfg := DefaultTaintConfig()
	n := 0
	for _, f := range p.Funcs {
		n += len(AnalyzeTaint(f, cfg).Findings)
	}
	return n
}
