package dataflow

import (
	"testing"

	"repro/internal/ir"
)

func taint(t *testing.T, src string) TaintResult {
	t.Helper()
	f := ir.MustLowerSource(src).Funcs[0]
	return AnalyzeTaint(f, DefaultTaintConfig())
}

func TestTaintDirectFlow(t *testing.T) {
	res := taint(t, `
int f(void) {
	int data = read_input();
	system(data);
	return 0;
}`)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
	if res.Findings[0].Sink != "system" || res.Findings[0].Arg != 0 {
		t.Fatalf("finding = %+v", res.Findings[0])
	}
}

func TestTaintThroughArithmetic(t *testing.T) {
	res := taint(t, `
int f(void) {
	int data = read_input();
	int derived = data * 2 + 1;
	strcpy(derived, 0);
	return 0;
}`)
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %+v", res.Findings)
	}
}

func TestTaintParams(t *testing.T) {
	res := taint(t, `
int handler(int request) {
	system(request);
	return 0;
}`)
	if len(res.Findings) != 1 {
		t.Fatalf("param taint findings = %+v", res.Findings)
	}
	// With TaintParams off, no finding.
	cfg := DefaultTaintConfig()
	cfg.TaintParams = false
	f := ir.MustLowerSource(`
int handler(int request) {
	system(request);
	return 0;
}`).Funcs[0]
	res2 := AnalyzeTaint(f, cfg)
	if len(res2.Findings) != 0 {
		t.Fatalf("untainted params still flagged: %+v", res2.Findings)
	}
}

func TestTaintCleanData(t *testing.T) {
	res := taint(t, `
int f(void) {
	int clean = 42;
	system(clean);
	return 0;
}`)
	if len(res.Findings) != 0 {
		t.Fatalf("clean data flagged: %+v", res.Findings)
	}
}

func TestTaintSanitizer(t *testing.T) {
	res := taint(t, `
int f(void) {
	int data = read_input();
	int clean = sanitize(data);
	system(clean);
	return 0;
}`)
	if len(res.Findings) != 0 {
		t.Fatalf("sanitized data flagged: %+v", res.Findings)
	}
}

func TestTaintThroughArray(t *testing.T) {
	res := taint(t, `
int f(void) {
	int buf[8];
	int data = read_input();
	buf[0] = data;
	int y = buf[3];
	send(y);
	return 0;
}`)
	// Whole-array granularity: buf[3] is tainted because buf[0] was.
	if len(res.Findings) != 1 {
		t.Fatalf("array taint findings = %+v", res.Findings)
	}
}

func TestTaintJoinOverBranches(t *testing.T) {
	res := taint(t, `
int f(int c) {
	int x = 0;
	if (c > 0) {
		x = read_input();
	}
	system(x);
	return 0;
}`)
	// x may be tainted on one path: the may-analysis must flag it.
	found := false
	for _, fd := range res.Findings {
		if fd.Sink == "system" {
			found = true
		}
	}
	if !found {
		t.Fatalf("path-join taint missed: %+v", res.Findings)
	}
}

func TestTaintLoopFixpoint(t *testing.T) {
	res := taint(t, `
int f(int n) {
	int acc = 0;
	int i = 0;
	while (i < n) {
		acc = acc + read_input();
		i = i + 1;
	}
	write_log(acc);
	return 0;
}`)
	found := false
	for _, fd := range res.Findings {
		if fd.Sink == "write_log" {
			found = true
		}
	}
	if !found {
		t.Fatalf("loop taint missed: %+v", res.Findings)
	}
}

func TestTaintOverwriteClears(t *testing.T) {
	res := taint(t, `
int f(void) {
	int x = read_input();
	x = 5;
	system(x);
	return 0;
}`)
	if len(res.Findings) != 0 {
		t.Fatalf("overwritten taint persisted: %+v", res.Findings)
	}
}

func TestTaintMultipleArgs(t *testing.T) {
	res := taint(t, `
int f(void) {
	int a = read_input();
	int b = 1;
	memcpy(b, a);
	return 0;
}`)
	if len(res.Findings) != 1 || res.Findings[0].Arg != 1 {
		t.Fatalf("arg index wrong: %+v", res.Findings)
	}
}

func TestTaintedVarsAtExit(t *testing.T) {
	res := taint(t, `
int f(void) {
	int d = read_input();
	return d;
}`)
	found := false
	for _, v := range res.TaintedVars {
		if v == "d" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tainted vars = %v", res.TaintedVars)
	}
}

func TestCountTaintedSinks(t *testing.T) {
	p := ir.MustLowerSource(`
int a(void) { int x = read_input(); system(x); return 0; }
int b(void) { int y = 1; system(y); return 0; }
int c(int z) { strcpy(z, 0); return 0; }
`)
	if got := CountTaintedSinks(p); got != 2 {
		t.Fatalf("CountTaintedSinks = %d, want 2", got)
	}
}
