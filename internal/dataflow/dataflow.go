// Package dataflow implements the classic forward/backward data-flow
// analyses over the IR — reaching definitions, live variables, def-use
// chains — plus a taint analysis that propagates attacker-controlled data
// from sources (parameters, input functions) to sinks (dangerous calls).
// The paper cites precise interprocedural dataflow (Reps et al.) as one of
// the signal families worth feeding the model (§4.1).
package dataflow

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Def identifies one definition site: instruction Index in Block defines Var.
type Def struct {
	Block *ir.Block
	Index int
	Var   string
}

// String renders "x@block2[3]".
func (d Def) String() string {
	return fmt.Sprintf("%s@%s[%d]", d.Var, d.Block.Name, d.Index)
}

// defSet is a set of definitions.
type defSet map[Def]bool

func (s defSet) clone() defSet {
	out := make(defSet, len(s))
	for d := range s {
		out[d] = true
	}
	return out
}

func (s defSet) equal(o defSet) bool {
	if len(s) != len(o) {
		return false
	}
	for d := range s {
		if !o[d] {
			return false
		}
	}
	return true
}

// destName returns the defined variable name of an instruction, treating
// temps as variables named "tN". Array stores define the array name (weak
// update).
func destName(in ir.Instr) (string, bool) {
	if st, ok := in.(*ir.ArrayStore); ok {
		return st.Array, true
	}
	d := in.Defs()
	if d == nil {
		return "", false
	}
	return d.String(), true
}

// useNames returns the variable names read by an instruction, including the
// arrays read by loads.
func useNames(in ir.Instr) []string {
	var out []string
	for _, u := range in.Uses() {
		switch v := u.(type) {
		case ir.Var:
			out = append(out, v.Name)
		case ir.Temp:
			out = append(out, v.String())
		}
	}
	if ld, ok := in.(*ir.ArrayLoad); ok {
		out = append(out, ld.Array)
	}
	return out
}

// termUses returns the names read by a terminator.
func termUses(t ir.Terminator) []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, u := range t.Uses() {
		switch v := u.(type) {
		case ir.Var:
			out = append(out, v.Name)
		case ir.Temp:
			out = append(out, v.String())
		}
	}
	return out
}

// Reaching holds reaching-definitions results: the set of definitions live
// at the entry and exit of every block.
type Reaching struct {
	In, Out map[*ir.Block]defSet
	// ParamDefs are the synthetic entry definitions of parameters.
	ParamDefs []Def
}

// ReachingDefinitions computes the forward may-analysis to a fixpoint.
// Parameters receive synthetic definitions at index -1 in the entry block.
func ReachingDefinitions(f *ir.Func) *Reaching {
	r := &Reaching{In: map[*ir.Block]defSet{}, Out: map[*ir.Block]defSet{}}
	gen := map[*ir.Block]defSet{}
	kill := map[*ir.Block]map[string]bool{}

	// All defs per var, for kill sets.
	defsOf := map[string][]Def{}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if name, ok := destName(in); ok {
				defsOf[name] = append(defsOf[name], Def{Block: b, Index: i, Var: name})
			}
		}
	}
	for _, p := range f.Params {
		d := Def{Block: f.Entry(), Index: -1, Var: p}
		r.ParamDefs = append(r.ParamDefs, d)
		defsOf[p] = append(defsOf[p], d)
	}

	for _, b := range f.Blocks {
		g := defSet{}
		k := map[string]bool{}
		for i, in := range b.Instrs {
			name, ok := destName(in)
			if !ok {
				continue
			}
			// Array stores are weak updates: they generate but do not kill.
			if _, isStore := in.(*ir.ArrayStore); !isStore {
				// Remove earlier gens of the same var from this block.
				for d := range g {
					if d.Var == name {
						delete(g, d)
					}
				}
				k[name] = true
			}
			g[Def{Block: b, Index: i, Var: name}] = true
		}
		gen[b] = g
		kill[b] = k
	}

	// Entry starts with parameter definitions.
	entryIn := defSet{}
	for _, d := range r.ParamDefs {
		entryIn[d] = true
	}
	for _, b := range f.Blocks {
		r.In[b] = defSet{}
		r.Out[b] = defSet{}
	}
	r.In[f.Entry()] = entryIn

	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			in := defSet{}
			if b == f.Entry() {
				in = entryIn.clone()
			}
			for _, p := range b.Preds {
				for d := range r.Out[p] {
					in[d] = true
				}
			}
			out := gen[b].clone()
			for d := range in {
				if !kill[b][d.Var] {
					out[d] = true
				}
			}
			if !in.equal(r.In[b]) || !out.equal(r.Out[b]) {
				r.In[b] = in
				r.Out[b] = out
				changed = true
			}
		}
	}
	return r
}

// UseDefChains maps every use site to the definitions that may reach it.
type UseSite struct {
	Block *ir.Block
	Index int // -1 for the terminator
	Var   string
}

// Chains computes the use-def chains of f.
func Chains(f *ir.Func) map[UseSite][]Def {
	r := ReachingDefinitions(f)
	out := map[UseSite][]Def{}
	for _, b := range f.Blocks {
		// Walk instructions tracking the local reaching state.
		local := r.In[b].clone()
		for i, in := range b.Instrs {
			for _, name := range useNames(in) {
				site := UseSite{Block: b, Index: i, Var: name}
				for d := range local {
					if d.Var == name {
						out[site] = append(out[site], d)
					}
				}
				sortDefs(out[site])
			}
			if name, ok := destName(in); ok {
				if _, isStore := in.(*ir.ArrayStore); !isStore {
					for d := range local {
						if d.Var == name {
							delete(local, d)
						}
					}
				}
				local[Def{Block: b, Index: i, Var: name}] = true
			}
		}
		for _, name := range termUses(b.Term) {
			site := UseSite{Block: b, Index: -1, Var: name}
			for d := range local {
				if d.Var == name {
					out[site] = append(out[site], d)
				}
			}
			sortDefs(out[site])
		}
	}
	return out
}

func sortDefs(ds []Def) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Block.ID != ds[j].Block.ID {
			return ds[i].Block.ID < ds[j].Block.ID
		}
		return ds[i].Index < ds[j].Index
	})
}

// Liveness computes live-variable sets at block boundaries (backward
// may-analysis).
type Liveness struct {
	In, Out map[*ir.Block]map[string]bool
}

// LiveVariables runs the analysis to a fixpoint.
func LiveVariables(f *ir.Func) *Liveness {
	lv := &Liveness{In: map[*ir.Block]map[string]bool{}, Out: map[*ir.Block]map[string]bool{}}
	use := map[*ir.Block]map[string]bool{}
	def := map[*ir.Block]map[string]bool{}
	for _, b := range f.Blocks {
		u := map[string]bool{}
		d := map[string]bool{}
		for _, in := range b.Instrs {
			for _, name := range useNames(in) {
				if !d[name] {
					u[name] = true
				}
			}
			if name, ok := destName(in); ok {
				if _, isStore := in.(*ir.ArrayStore); !isStore {
					d[name] = true
				}
			}
		}
		for _, name := range termUses(b.Term) {
			if !d[name] {
				u[name] = true
			}
		}
		use[b] = u
		def[b] = d
		lv.In[b] = map[string]bool{}
		lv.Out[b] = map[string]bool{}
	}
	changed := true
	for changed {
		changed = false
		// Reverse order converges faster for backward analyses.
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[string]bool{}
			for _, s := range b.Succs() {
				for v := range lv.In[s] {
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range use[b] {
				in[v] = true
			}
			for v := range out {
				if !def[b][v] {
					in[v] = true
				}
			}
			if !setEq(in, lv.In[b]) || !setEq(out, lv.Out[b]) {
				lv.In[b] = in
				lv.Out[b] = out
				changed = true
			}
		}
	}
	return lv
}

func setEq(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// DeadStores returns definitions whose value is never used: the defined
// variable is not live immediately after the definition. Array stores are
// never reported (weak updates may alias).
func DeadStores(f *ir.Func) []Def {
	lv := LiveVariables(f)
	var out []Def
	for _, b := range f.Blocks {
		// Walk backward through the block maintaining liveness.
		live := map[string]bool{}
		for v := range lv.Out[b] {
			live[v] = true
		}
		for _, name := range termUses(b.Term) {
			live[name] = true
		}
		type rec struct {
			def  Def
			dead bool
		}
		var recs []rec
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if name, ok := destName(in); ok {
				if _, isStore := in.(*ir.ArrayStore); !isStore {
					recs = append(recs, rec{def: Def{Block: b, Index: i, Var: name}, dead: !live[name]})
					delete(live, name)
				}
			}
			for _, name := range useNames(in) {
				live[name] = true
			}
		}
		for _, rc := range recs {
			if rc.dead {
				out = append(out, rc.def)
			}
		}
	}
	sortDefs(out)
	return out
}
