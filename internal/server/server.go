// Package server implements secmetricd's HTTP serving layer: the paper's
// §5.3 loop — "the classifier can give the developer an evaluation ... of
// every change" — as a long-lived daemon instead of a batch CLI. One
// process loads trained models at startup, holds a shared content-addressed
// feature cache, and serves scoring, analysis, findings, and comparison
// over JSON-encoded source trees.
//
// The serving path reuses the library machinery end-to-end: each request
// runs through core.ExtractFeaturesDiagnostics (the same engine behind
// secmetric.AnalyzeTreeWithDiagnostics) under a per-request
// context.Context deadline, on a bounded worker pool with an explicit
// queue-depth limit. A request that arrives when the queue is full is
// rejected immediately with 429 — bounded memory under overload — and one
// that outlives its deadline fails with 504 without harming the process.
// Models live in a Registry of atomic snapshots, so POST /v1/models/reload
// swaps the whole model set at once while in-flight requests finish on the
// snapshot they started with.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"net/http"
	"path"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	secmetric "repro"
	"repro/internal/core"
	"repro/internal/featcache"
	"repro/internal/findings"
	"repro/internal/lang"
	"repro/internal/metrics"
	"repro/internal/store/findex"
	"repro/internal/store/query"
	"repro/internal/trace"
	"repro/pkg/api"
)

// Config tunes the serving pipeline.
type Config struct {
	// Workers bounds how many requests may analyze concurrently; <= 0 uses
	// GOMAXPROCS. Each admitted request holds one slot for its whole
	// analysis.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a slot on
	// top of the Workers running ones; further requests are rejected with
	// 429. Negative means 0 (no waiting room).
	QueueDepth int
	// RequestTimeout is the hard per-request deadline; <= 0 defaults to
	// 2 minutes. A request's timeout_ms field can tighten it, never extend.
	RequestTimeout time.Duration
	// AnalyzeJobs bounds the per-file extraction pool inside one request;
	// <= 0 uses every core.
	AnalyzeJobs int
	// FileTimeout bounds one file's deep analysis (see
	// secmetric.AnalyzeConfig.FileTimeout).
	FileTimeout time.Duration
	// Cache is the shared process-wide feature cache; nil uses a fresh
	// in-memory cache.
	Cache *featcache.Cache
	// MaxBodyBytes caps a request body's size; a client that streams more
	// is cut off and answered 413 instead of growing the daemon's heap
	// without bound. <= 0 uses 32 MiB.
	MaxBodyBytes int64
	// MaxSessions bounds the per-repo incremental session registry behind
	// /v1/delta; the least-recently-used session is evicted beyond it.
	// <= 0 uses 64.
	MaxSessions int
	// SessionTTL expires sessions idle longer than this; an expired
	// session's next non-seeding changeset answers 409 stale_session.
	// <= 0 uses 1 hour.
	SessionTTL time.Duration
	// History is the findings time-series the daemon records scoring
	// requests into and serves POST /v1/query from; nil disables both
	// (queries answer 404 no_history). The server does not close it.
	History *findex.Store
	// StreamHeartbeat is the idle interval between keepalive records on
	// the NDJSON streaming endpoints; <= 0 uses 10 seconds. Tests shrink
	// it to observe heartbeats without a genuinely slow analysis.
	StreamHeartbeat time.Duration
}

// Session-registry defaults applied when Config leaves them unset.
const (
	DefaultMaxSessions = 64
	DefaultSessionTTL  = time.Hour
)

// DefaultMaxBodyBytes is the request-body cap applied when
// Config.MaxBodyBytes is unset: 32 MiB, roomy for a JSON-encoded source
// tree, far below anything that could OOM the process.
const DefaultMaxBodyBytes = 32 << 20

// DefaultStreamHeartbeat is the keepalive interval of the streaming
// endpoints when Config.StreamHeartbeat is unset.
const DefaultStreamHeartbeat = 10 * time.Second

// Server is the HTTP daemon. Construct with New, mount Handler.
type Server struct {
	cfg      Config
	reg      *Registry
	cache    *featcache.Cache
	tel      *telemetry
	sem      chan struct{}
	slots    int
	start    time.Time
	sessions *sessionPool

	// flight dedups identical in-flight per-file deep analyses across every
	// concurrent request and delta session of this server.
	flight *core.ExtractFlight
	// coalesced dedups identical whole requests on /v1/score and /v1/rank.
	coalesced *coalescer

	// logWriteErrOnce gates the single log line behind the response-write
	// error counter.
	logWriteErrOnce sync.Once

	// historyRuns / historyErrors count run recordings into cfg.History.
	// Recording is best-effort: a failed append never fails the scoring
	// request that triggered it, it only moves this counter.
	historyRuns   atomic.Uint64
	historyErrors atomic.Uint64

	// testHookAcquired, when non-nil, runs on the request goroutine right
	// after a worker slot is acquired and before any analysis. Tests use
	// it to hold slots open (backpressure) or outlive deadlines; production
	// code never sets it.
	testHookAcquired func(endpoint string)
}

// New builds a server over a populated registry.
func New(reg *Registry, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = DefaultSessionTTL
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = DefaultStreamHeartbeat
	}
	cache := cfg.Cache
	if cache == nil {
		cache = featcache.NewMemory()
	}
	flight := core.NewExtractFlight()
	return &Server{
		cfg:       cfg,
		reg:       reg,
		cache:     cache,
		tel:       newTelemetry(),
		sem:       make(chan struct{}, cfg.Workers),
		slots:     cfg.Workers,
		start:     time.Now(),
		flight:    flight,
		coalesced: newCoalescer(),
		// Delta sessions extract with the same pool width, per-file
		// deadline, shared cache, and shared flight as the batch endpoints,
		// so the incremental and cold paths produce byte-identical vectors
		// and a session apply racing a batch request over the same bytes
		// runs the deep analysis once.
		sessions: newSessionPool(cfg.MaxSessions, cfg.SessionTTL, core.ExtractConfig{
			Jobs:        cfg.AnalyzeJobs,
			Cache:       cache,
			FileTimeout: cfg.FileTimeout,
			Flight:      flight,
		}),
	}
}

// Handler mounts the daemon's routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("POST /v1/score", s.instrument("score", s.handleScore))
	mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/analyze/stream", s.instrument("analyze_stream", s.handleAnalyzeStream))
	mux.HandleFunc("POST /v1/findings", s.instrument("findings", s.handleFindings))
	mux.HandleFunc("POST /v1/findings/stream", s.instrument("findings_stream", s.handleFindingsStream))
	mux.HandleFunc("POST /v1/compare", s.instrument("compare", s.handleCompare))
	mux.HandleFunc("POST /v1/delta", s.instrument("delta", s.handleDelta))
	mux.HandleFunc("POST /v1/rank", s.instrument("rank", s.handleRank))
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("POST /v1/models/reload", s.instrument("reload", s.handleReload))
	return mux
}

// statusRecorder captures the response code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so handlers behind instrument can
// stream: embedding http.ResponseWriter alone would satisfy the interface
// set of the embedded value minus anything the wrapper shadows, but
// type-asserting the wrapper to http.Flusher must keep working — the
// streaming endpoints depend on a mid-handler flush reaching the client
// before the handler returns.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, the
// forward-compatible way to reach optional interfaces through wrappers.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with latency and status accounting.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		h(rec, r)
		s.tel.observe(endpoint, rec.code, time.Since(t0).Seconds())
	}
}

// writeJSON writes one JSON response body. A failed encode after the
// header is out (almost always a client that hung up mid-body) cannot be
// reported to that client, but it must not vanish either: the daemon
// counts it (secmetricd_response_write_errors_total) and logs the first
// occurrence, so a truncated-body epidemic is visible operationally
// instead of leaving both sides with no record.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.countWriteError(err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, api.Error{Code: code, Error: msg})
}

// countWriteError accounts one failed response write. Logging is
// once-per-process: the counter carries the rate, the single log line
// carries a concrete example without flooding under a disconnect storm.
func (s *Server) countWriteError(err error) {
	s.tel.writeErrors.Add(1)
	s.logWriteErrOnce.Do(func() {
		log.Printf("response write failed (now counted in secmetricd_response_write_errors_total): %v", err)
	})
}

// requestTimeout resolves the effective deadline: the server maximum,
// tightened by a positive timeout_ms.
func (s *Server) requestTimeout(timeoutMS int64) time.Duration {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if req := time.Duration(timeoutMS) * time.Millisecond; req < d {
			d = req
		}
	}
	return d
}

// withSlot runs fn under the admission discipline: queue-depth check (429
// on overflow), bounded worker pool, per-request deadline (504 on expiry,
// whether it hits while waiting for a slot or mid-analysis). fn gets the
// deadline-bearing context and must return the analysis error, if any.
//
// Every admitted request runs under a root span whose context fn receives,
// so the library's extraction spans attach to it; when the request
// finishes, the per-phase busy totals feed the phase_seconds_total metric.
// Rejected (429) requests pay nothing: the tracer is created only after
// admission.
func (s *Server) withSlot(w http.ResponseWriter, r *http.Request, endpoint string, timeoutMS int64, fn func(ctx context.Context) error) {
	q := s.tel.queued.Add(1)
	defer s.tel.queued.Add(-1)
	if int(q) > s.slots+s.cfg.QueueDepth {
		s.tel.queueFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.writeErr(w, http.StatusTooManyRequests, api.CodeQueueFull,
			fmt.Sprintf("queue full: %d running, %d waiting", s.slots, s.cfg.QueueDepth))
		return
	}
	tr := trace.New("request")
	tr.Root().SetLabel(endpoint)
	defer func() {
		tr.Finish()
		s.tel.observePhases(tr.PhaseTotals())
	}()
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(timeoutMS))
	defer cancel()
	ws := tr.Root().Child("wait")
	select {
	case s.sem <- struct{}{}:
		ws.End()
	case <-ctx.Done():
		ws.End()
		s.writeErr(w, http.StatusGatewayTimeout, api.CodeDeadline,
			"deadline exceeded while waiting for a worker slot")
		return
	}
	s.tel.inFlight.Add(1)
	defer func() {
		s.tel.inFlight.Add(-1)
		<-s.sem
	}()
	if s.testHookAcquired != nil {
		s.testHookAcquired(endpoint)
	}
	if ctx.Err() != nil {
		s.writeErr(w, http.StatusGatewayTimeout, api.CodeDeadline, "deadline exceeded before analysis started")
		return
	}
	t0 := time.Now()
	if err := fn(trace.ContextWithSpan(ctx, tr.Root())); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.writeErr(w, http.StatusGatewayTimeout, api.CodeDeadline, err.Error())
			return
		}
		s.writeErr(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	// Successful service times feed the EWMA behind Retry-After: the hint
	// tracks how long real work has been taking lately, not the config.
	s.tel.observeService(time.Since(t0).Seconds())
}

// retryAfterSeconds derives the 429 Retry-After hint from live load: the
// time the backlog ahead of a retry needs to drain at the recently
// observed per-request service time across the worker pool, bounded to
// [1, 30] seconds and jittered upward by up to ~25% so a burst rejected
// together does not retry together (the router multiplies 429 fan-out,
// and a synchronized herd would re-trip the queue it is waiting on).
func (s *Server) retryAfterSeconds() int {
	backlog := float64(s.tel.queued.Load())
	if backlog < 0 {
		backlog = 0
	}
	est := backlog * s.tel.recentServiceSeconds() / float64(s.slots)
	secs := int(math.Ceil(est))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	secs += rand.IntN(max(1, secs/4) + 1)
	if secs > 30 {
		secs = 30
	}
	return secs
}

// analyze runs the full extraction pipeline for one request against the
// shared feature cache and in-flight dedup table.
func (s *Server) analyze(ctx context.Context, tree *metrics.Tree) (secmetric.FeatureVector, *secmetric.AnalysisDiagnostics, error) {
	return s.analyzeWith(ctx, tree, nil)
}

// analyzeWith is analyze plus a per-file completion callback (the
// streaming endpoints' record source; nil for the batch endpoints).
func (s *Server) analyzeWith(ctx context.Context, tree *metrics.Tree, fileDone func(i int, d core.FileDiagnostic)) (secmetric.FeatureVector, *secmetric.AnalysisDiagnostics, error) {
	return core.ExtractFeaturesDiagnostics(ctx, tree, core.ExtractConfig{
		Jobs:        s.cfg.AnalyzeJobs,
		Cache:       s.cache,
		FileTimeout: s.cfg.FileTimeout,
		Flight:      s.flight,
		FileDone:    fileDone,
	})
}

// toTree converts a wire tree to the analyzer's representation, applying
// the same discipline as the CLI's directory loader: languages inferred
// from extensions, dot-files and unrecognized extensions skipped, files
// sorted by path. An empty result (nothing analyzable) is an error.
func toTree(t api.Tree) (*metrics.Tree, error) {
	name := t.Name
	if name == "" {
		name = "tree"
	}
	out := &metrics.Tree{Name: name}
	for _, f := range t.Files {
		if f.Path == "" {
			return nil, errors.New("file with empty path")
		}
		if strings.HasPrefix(path.Base(f.Path), ".") {
			continue
		}
		l := lang.FromPath(f.Path)
		if l == lang.Unknown {
			continue
		}
		out.Files = append(out.Files, metrics.File{Path: f.Path, Language: l, Content: f.Content})
	}
	if len(out.Files) == 0 {
		return nil, fmt.Errorf("no analyzable source files in tree %q", name)
	}
	sort.Slice(out.Files, func(i, j int) bool { return out.Files[i].Path < out.Files[j].Path })
	for i := 1; i < len(out.Files); i++ {
		if out.Files[i].Path == out.Files[i-1].Path {
			return nil, fmt.Errorf("duplicate file path %q", out.Files[i].Path)
		}
	}
	return out, nil
}

// decode reads the JSON request body under the configured size cap. A body
// that exceeds the cap answers 413 with the stable body_too_large code —
// the decoder surfaces *http.MaxBytesError the moment the reader passes
// the limit, so a hostile client can stream gigabytes and the daemon still
// buffers at most MaxBodyBytes of it.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "decode request: "+err.Error())
		return false
	}
	return true
}

// record persists one scoring request into the findings history, keyed by
// the tree's name. It runs synchronously inside the request's worker slot
// (the store has a single writer; holding the slot keeps history pressure
// under the same admission discipline as the analysis itself), but its
// outcome only moves counters — a full disk must not turn a perfectly good
// score into a 500.
func (s *Server) record(ctx context.Context, source string, tree *metrics.Tree, score float64, hasScore bool) {
	if s.cfg.History == nil {
		return
	}
	rs := trace.SpanFromContext(ctx).Child("record")
	defer rs.End()
	run := findex.NewRun(tree.Name, source, findings.Collect(tree))
	if hasScore {
		run = run.WithScore(score)
	}
	if _, err := s.cfg.History.Append(run); err != nil {
		s.historyErrors.Add(1)
		return
	}
	s.historyRuns.Add(1)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	// Parse before admission: a syntax error should cost no worker slot.
	q, err := query.Parse(req.Query)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if s.cfg.History == nil {
		s.writeErr(w, http.StatusNotFound, api.CodeNoHistory,
			"this daemon records no history; start it with -db to enable /v1/query")
		return
	}
	s.withSlot(w, r, "query", req.TimeoutMS, func(ctx context.Context) error {
		runs, ex, err := s.cfg.History.Query(q, findex.Options{ForceFullScan: req.FullScan})
		if err != nil {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.writeJSON(w, http.StatusOK, api.QueryResponse{
			Runs: runs,
			Explain: api.QueryExplain{
				Index:      ex.Index,
				FullScan:   ex.FullScan,
				Candidates: ex.Candidates,
				Matched:    ex.Matched,
			},
		})
		return nil
	})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req api.ScoreRequest
	if !s.decode(w, r, &req) {
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	model, name, ok := s.reg.Snapshot().Get(req.Model)
	if !ok {
		s.writeErr(w, http.StatusNotFound, api.CodeUnknownModel, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	run := func(w http.ResponseWriter) {
		s.withSlot(w, r, "score", req.TimeoutMS, func(ctx context.Context) error {
			fv, diag, err := s.analyze(ctx, tree)
			if err != nil {
				return err
			}
			sc := trace.SpanFromContext(ctx).Child("score")
			rep := model.Score(req.Tree.Name, fv)
			sc.End()
			s.record(ctx, "score", tree, rep.RiskScore, true)
			if req.Trace && diag != nil {
				diag.Trace = trace.Summarize(trace.SpanFromContext(ctx))
			}
			s.writeJSON(w, http.StatusOK, api.ScoreResponse{
				Model:       name,
				Report:      rep,
				Diagnostics: diag,
			})
			return nil
		})
	}
	if req.Trace {
		// A trace is this execution's account; adopting another request's
		// would be a lie, so traced requests always run themselves.
		run(w)
		return
	}
	// The key carries the resolved model name, so "model":"" and an explicit
	// request for the default coalesce together.
	s.coalesce(w, r, "score", scoreKey(name, req.Tree), req.TimeoutMS, run)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.withSlot(w, r, "analyze", req.TimeoutMS, func(ctx context.Context) error {
		fv, diag, err := s.analyze(ctx, tree)
		if err != nil {
			return err
		}
		if req.Trace && diag != nil {
			diag.Trace = trace.Summarize(trace.SpanFromContext(ctx))
		}
		s.writeJSON(w, http.StatusOK, api.AnalyzeResponse{Features: fv, Diagnostics: diag})
		return nil
	})
}

func (s *Server) handleFindings(w http.ResponseWriter, r *http.Request) {
	var req api.FindingsRequest
	if !s.decode(w, r, &req) {
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	sev, err := findings.ParseSeverity(req.MinSeverity)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.withSlot(w, r, "findings", req.TimeoutMS, func(ctx context.Context) error {
		cs := trace.SpanFromContext(ctx).Child("collect")
		rep := secmetric.CollectFindings(tree).MinSeverity(sev)
		cs.End()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		s.writeJSON(w, http.StatusOK, api.FindingsResponse{Report: rep})
		return nil
	})
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req api.RankRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Top < 0 {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "top must be >= 0")
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	run := func(w http.ResponseWriter) {
		s.withSlot(w, r, "rank", req.TimeoutMS, func(ctx context.Context) error {
			ranking, err := secmetric.RankTree(ctx, tree, secmetric.RankConfig{
				Jobs: s.cfg.AnalyzeJobs,
				Top:  req.Top,
			})
			if err != nil {
				return err
			}
			s.record(ctx, "rank", tree, 0, false)
			s.writeJSON(w, http.StatusOK, api.RankResponse{Ranking: ranking})
			return nil
		})
	}
	s.coalesce(w, r, "rank", rankKey(req.Top, req.Tree), req.TimeoutMS, run)
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req api.CompareRequest
	if !s.decode(w, r, &req) {
		return
	}
	oldTree, err := toTree(req.Old)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "old: "+err.Error())
		return
	}
	newTree, err := toTree(req.New)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "new: "+err.Error())
		return
	}
	model, name, ok := s.reg.Snapshot().Get(req.Model)
	if !ok {
		s.writeErr(w, http.StatusNotFound, api.CodeUnknownModel, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	s.withSlot(w, r, "compare", req.TimeoutMS, func(ctx context.Context) error {
		// Both versions run inside one slot against the shared cache, so
		// only the files the change touched are deep-analyzed twice.
		oldFV, oldDiag, err := s.analyze(ctx, oldTree)
		if err != nil {
			return err
		}
		newFV, newDiag, err := s.analyze(ctx, newTree)
		if err != nil {
			return err
		}
		cs := trace.SpanFromContext(ctx).Child("score")
		cmp := model.Compare(req.Old.Name, oldFV, req.New.Name, newFV)
		cs.End()
		// History records the new version — the one the gate is deciding on.
		s.record(ctx, "compare", newTree, cmp.NewScore, true)
		if req.Trace && newDiag != nil {
			// One summary covers the whole request (both analyses); it
			// rides on the new version's diagnostics.
			newDiag.Trace = trace.Summarize(trace.SpanFromContext(ctx))
		}
		s.writeJSON(w, http.StatusOK, api.CompareResponse{
			Model:          name,
			Comparison:     cmp,
			OldDiagnostics: oldDiag,
			NewDiagnostics: newDiag,
		})
		return nil
	})
}

// toChangeset converts a wire changeset with the exact per-file
// discipline toTree applies to whole trees: dot-files and unrecognized
// extensions are silently dropped (from Removed too — such paths were
// never admitted into a session, so removing one must not read as stale),
// empty paths are an error, languages come from extensions. Uniqueness
// across the three lists is the session's own validation.
func toChangeset(cs api.Changeset) (core.Changeset, error) {
	var out core.Changeset
	admit := func(p string) (lang.Language, bool, error) {
		if p == "" {
			return lang.Unknown, false, errors.New("changeset contains an empty file path")
		}
		if strings.HasPrefix(path.Base(p), ".") {
			return lang.Unknown, false, nil
		}
		l := lang.FromPath(p)
		return l, l != lang.Unknown, nil
	}
	for _, f := range cs.Added {
		l, ok, err := admit(f.Path)
		if err != nil {
			return core.Changeset{}, err
		}
		if ok {
			out.Added = append(out.Added, metrics.File{Path: f.Path, Language: l, Content: f.Content})
		}
	}
	for _, f := range cs.Modified {
		l, ok, err := admit(f.Path)
		if err != nil {
			return core.Changeset{}, err
		}
		if ok {
			out.Modified = append(out.Modified, metrics.File{Path: f.Path, Language: l, Content: f.Content})
		}
	}
	for _, p := range cs.Removed {
		_, ok, err := admit(p)
		if err != nil {
			return core.Changeset{}, err
		}
		if ok {
			out.Removed = append(out.Removed, p)
		}
	}
	if out.Empty() {
		return core.Changeset{}, errors.New("changeset carries no analyzable files")
	}
	return out, nil
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req api.DeltaRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.RepoID == "" {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, "repo_id is required")
		return
	}
	cs, err := toChangeset(req.Changeset)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	model, name, ok := s.reg.Snapshot().Get(req.Model)
	if !ok {
		s.writeErr(w, http.StatusNotFound, api.CodeUnknownModel, fmt.Sprintf("unknown model %q", req.Model))
		return
	}
	s.withSlot(w, r, "delta", req.TimeoutMS, func(ctx context.Context) error {
		t0 := time.Now()
		sess := s.sessions.acquire(req.RepoID)
		res, err := sess.Apply(ctx, cs)
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				return err // withSlot turns these into 504
			case errors.Is(err, core.ErrStaleSession):
				s.writeErr(w, http.StatusConflict, api.CodeStaleSession, err.Error())
				return nil
			default:
				// Validation problems (empty changeset, duplicate paths,
				// would-empty) left the session untouched.
				s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
				return nil
			}
		}
		sc := trace.SpanFromContext(ctx).Child("score")
		subject := fmt.Sprintf("%s@%d", req.RepoID, res.Seq)
		rep := model.Score(subject, res.Features)
		var cmp *secmetric.Comparison
		if res.OldFeatures != nil {
			cmp = model.Compare(fmt.Sprintf("%s@%d", req.RepoID, res.Seq-1), res.OldFeatures, subject, res.Features)
		}
		sc.End()
		if req.Trace && res.Diagnostics != nil {
			res.Diagnostics.Trace = trace.Summarize(trace.SpanFromContext(ctx))
		}
		s.writeJSON(w, http.StatusOK, api.DeltaResponse{
			Model:       name,
			RepoID:      req.RepoID,
			Seq:         res.Seq,
			Files:       res.Files,
			Report:      rep,
			Comparison:  cmp,
			ElapsedMS:   time.Since(t0).Milliseconds(),
			Diagnostics: res.Diagnostics,
		})
		return nil
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	snap, err := s.reg.Load()
	if err != nil {
		// The previous snapshot keeps serving; the caller learns exactly
		// which model file was refused and why.
		s.writeErr(w, http.StatusInternalServerError, api.CodeReloadFailed, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, api.ReloadResponse{Models: snap.Names(), DefaultModel: snap.Default})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	s.writeJSON(w, http.StatusOK, api.Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Models:        snap.Names(),
		DefaultModel:  snap.Default,
		InFlight:      s.tel.inFlight.Load(),
		Queued:        s.tel.queued.Load(),
		Reloads:       s.reg.Reloads(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.tel.write(w)
	hits, misses := s.cache.Stats()
	fmt.Fprintln(w, "# HELP secmetricd_featcache_hits_total Shared feature-cache hits.")
	fmt.Fprintln(w, "# TYPE secmetricd_featcache_hits_total counter")
	fmt.Fprintf(w, "secmetricd_featcache_hits_total %d\n", hits)
	fmt.Fprintln(w, "# HELP secmetricd_featcache_misses_total Shared feature-cache misses.")
	fmt.Fprintln(w, "# TYPE secmetricd_featcache_misses_total counter")
	fmt.Fprintf(w, "secmetricd_featcache_misses_total %d\n", misses)
	fmt.Fprintln(w, "# HELP secmetricd_featcache_corrupt_total Disk cache entries that failed validation on read (counted, then treated as misses).")
	fmt.Fprintln(w, "# TYPE secmetricd_featcache_corrupt_total counter")
	fmt.Fprintf(w, "secmetricd_featcache_corrupt_total %d\n", s.cache.CorruptReads())
	fmt.Fprintln(w, "# HELP secmetricd_coalesced_total Work answered by adopting a concurrent identical execution: kind=\"file\" is per-file deep analyses, kind=\"request\" is whole /v1/score and /v1/rank requests.")
	fmt.Fprintln(w, "# TYPE secmetricd_coalesced_total counter")
	fmt.Fprintf(w, "secmetricd_coalesced_total{kind=\"file\"} %d\n", s.flight.Coalesced())
	creq := s.tel.coalescedSnapshot()
	eps := make([]string, 0, len(creq))
	for ep := range creq {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		fmt.Fprintf(w, "secmetricd_coalesced_total{kind=\"request\",endpoint=%q} %d\n", ep, creq[ep])
	}
	fmt.Fprintln(w, "# HELP secmetricd_models_loaded Models in the current registry snapshot.")
	fmt.Fprintln(w, "# TYPE secmetricd_models_loaded gauge")
	fmt.Fprintf(w, "secmetricd_models_loaded %d\n", len(s.reg.Snapshot().Models))
	fmt.Fprintln(w, "# HELP secmetricd_model_reloads_total Successful registry loads since start.")
	fmt.Fprintln(w, "# TYPE secmetricd_model_reloads_total counter")
	fmt.Fprintf(w, "secmetricd_model_reloads_total %d\n", s.reg.Reloads())
	active, evicted := s.sessions.stats()
	fmt.Fprintln(w, "# HELP secmetricd_sessions_active Live incremental sessions in the delta registry.")
	fmt.Fprintln(w, "# TYPE secmetricd_sessions_active gauge")
	fmt.Fprintf(w, "secmetricd_sessions_active %d\n", active)
	fmt.Fprintln(w, "# HELP secmetricd_session_evictions_total Sessions dropped by LRU capacity or idle TTL.")
	fmt.Fprintln(w, "# TYPE secmetricd_session_evictions_total counter")
	fmt.Fprintf(w, "secmetricd_session_evictions_total %d\n", evicted)
	if s.cfg.History != nil {
		fmt.Fprintln(w, "# HELP secmetricd_history_runs_total Analysis runs recorded into the -db findings history.")
		fmt.Fprintln(w, "# TYPE secmetricd_history_runs_total counter")
		fmt.Fprintf(w, "secmetricd_history_runs_total %d\n", s.historyRuns.Load())
		fmt.Fprintln(w, "# HELP secmetricd_history_errors_total Failed history appends (the scoring request itself still succeeded).")
		fmt.Fprintln(w, "# TYPE secmetricd_history_errors_total counter")
		fmt.Fprintf(w, "secmetricd_history_errors_total %d\n", s.historyErrors.Load())
		st := s.cfg.History.DB().Stats()
		fmt.Fprintln(w, "# HELP secmetricd_store_pages Page-file size of the history store, in pages.")
		fmt.Fprintln(w, "# TYPE secmetricd_store_pages gauge")
		fmt.Fprintf(w, "secmetricd_store_pages %d\n", st.PageCount)
		fmt.Fprintln(w, "# HELP secmetricd_store_free_pages Immediately reusable pages in the history store's freelist.")
		fmt.Fprintln(w, "# TYPE secmetricd_store_free_pages gauge")
		fmt.Fprintf(w, "secmetricd_store_free_pages %d\n", st.FreePages)
		fmt.Fprintln(w, "# HELP secmetricd_store_wal_bytes Current write-ahead-log length of the history store.")
		fmt.Fprintln(w, "# TYPE secmetricd_store_wal_bytes gauge")
		fmt.Fprintf(w, "secmetricd_store_wal_bytes %d\n", st.WALBytes)
		fmt.Fprintln(w, "# HELP secmetricd_store_commits_total Committed history-store transactions since open.")
		fmt.Fprintln(w, "# TYPE secmetricd_store_commits_total counter")
		fmt.Fprintf(w, "secmetricd_store_commits_total %d\n", st.Commits)
		fmt.Fprintln(w, "# HELP secmetricd_store_checkpoints_total History-store WAL checkpoints since open.")
		fmt.Fprintln(w, "# TYPE secmetricd_store_checkpoints_total counter")
		fmt.Fprintf(w, "secmetricd_store_checkpoints_total %d\n", st.Checkpoints)
	}
	fmt.Fprintln(w, "# HELP secmetricd_uptime_seconds Seconds since the daemon started.")
	fmt.Fprintln(w, "# TYPE secmetricd_uptime_seconds gauge")
	fmt.Fprintf(w, "secmetricd_uptime_seconds %g\n", time.Since(s.start).Seconds())
}
