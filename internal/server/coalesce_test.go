package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
)

// waitCoalesced polls the request-coalescing counter until endpoint has
// registered want followers (the follower increments it before parking on
// the leader's flight, so this is a deterministic rendezvous).
func waitCoalesced(t *testing.T, s *Server, endpoint string, want uint64) bool {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.tel.coalescedSnapshot()[endpoint] < want {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// TestScoreCoalescingByteParity is the whole-request coalescing contract:
// a burst of identical /v1/score requests runs the pipeline once, every
// response is byte-identical, and those bytes equal what a solo daemon
// answers for the same request.
func TestScoreCoalescingByteParity(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 8})

	const n = 4
	// The leader blocks after taking its slot until every follower has
	// registered on its flight, so the burst provably overlaps.
	s.testHookAcquired = func(endpoint string) {
		if endpoint != "score" {
			return
		}
		if !waitCoalesced(t, s, "score", n-1) {
			t.Error("followers never registered on the leader's flight")
		}
	}

	req := api.ScoreRequest{Tree: wireTree(400)}
	bodies := make([]string, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/score", req)
			codes[i] = resp.StatusCode
			bodies[i] = string(data)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs from request 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := s.tel.coalescedSnapshot()["score"]; got != n-1 {
		t.Fatalf("coalesced[score] = %d, want %d", got, n-1)
	}

	// Solo-run parity: a fresh daemon with the same model answers the same
	// bytes for the same request.
	s.testHookAcquired = nil
	regSolo := NewRegistry("", nil)
	regSolo.Register("default", mA)
	_, tsSolo := newTestServer(t, regSolo, Config{Workers: 4, QueueDepth: 8})
	resp, solo := postJSON(t, tsSolo.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solo: status %d", resp.StatusCode)
	}
	if string(solo) != bodies[0] {
		t.Errorf("coalesced response differs from a solo daemon's:\n%s\nvs\n%s", bodies[0], solo)
	}

	// The key is a dedup, not a cache: a sequential identical request runs
	// itself (the diagnostics flip to cache hits, proving a fresh run).
	resp, data := postJSON(t, ts.URL+"/v1/score", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(data), `"cache_hits":2`) {
		t.Errorf("follow-up run should be a fresh execution over a warm cache, got %s", data)
	}
	if got := s.tel.coalescedSnapshot()["score"]; got != n-1 {
		t.Errorf("sequential request coalesced (count %d, want %d)", got, n-1)
	}

	// The metric family carries both kinds.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", mresp.StatusCode)
	}
	want := fmt.Sprintf("secmetricd_coalesced_total{kind=\"request\",endpoint=\"score\"} %d", n-1)
	if !strings.Contains(string(metricsBody), want) {
		t.Errorf("metrics missing %q", want)
	}
	if !strings.Contains(string(metricsBody), `secmetricd_coalesced_total{kind="file"}`) {
		t.Error("metrics missing the file-kind coalesced counter")
	}
}

// TestRankCoalescing: /v1/rank bursts coalesce like score, keyed by tree
// plus the top parameter.
func TestRankCoalescing(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 8})
	s.testHookAcquired = func(endpoint string) {
		if endpoint != "rank" {
			return
		}
		if !waitCoalesced(t, s, "rank", 1) {
			t.Error("follower never registered")
		}
	}

	req := api.RankRequest{Tree: wireTree(401), Top: 3}
	bodies := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/v1/rank", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = string(data)
		}(i)
	}
	wg.Wait()
	if bodies[0] != bodies[1] {
		t.Errorf("coalesced rank bodies differ:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	if got := s.tel.coalescedSnapshot()["rank"]; got != 1 {
		t.Errorf("coalesced[rank] = %d, want 1", got)
	}
}

// TestTracedRequestsNeverCoalesce: trace=true is a per-execution account,
// so two overlapping traced requests both run.
func TestTracedRequestsNeverCoalesce(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 8})

	entered := make(chan string, 4)
	release := make(chan struct{})
	var once sync.Once
	s.testHookAcquired = func(endpoint string) {
		entered <- endpoint
		once.Do(func() { <-release }) // hold only the first arrival open
	}

	req := api.ScoreRequest{Tree: wireTree(402), Trace: true}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/score", req)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	// Both requests must enter withSlot themselves; a coalesced follower
	// never would.
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("second traced request never entered the pipeline (it coalesced)")
		}
	}
	close(release)
	wg.Wait()
	if got := s.tel.coalescedSnapshot()["score"]; got != 0 {
		t.Errorf("traced requests coalesced %d time(s)", got)
	}
}

// TestRetryAfterDerivation pins the hint's bounds: always >= 1, never
// above 30, and scaling with backlog times observed service time.
func TestRetryAfterDerivation(t *testing.T) {
	reg := NewRegistry("", nil)
	s := New(reg, Config{Workers: 2})

	if got := s.retryAfterSeconds(); got < 1 || got > 30 {
		t.Fatalf("idle hint %d outside [1,30]", got)
	}
	// Backlog of 20 at ~2s each over 2 slots ≈ 20s estimate; jitter may
	// push it up but never past the cap.
	s.tel.observeService(2.0)
	s.tel.queued.Store(20)
	for i := 0; i < 50; i++ {
		got := s.retryAfterSeconds()
		if got < 20 || got > 30 {
			t.Fatalf("loaded hint %d outside [20,30]", got)
		}
	}
	// Saturated estimate clamps to 30 regardless of jitter.
	s.tel.observeService(60)
	s.tel.observeService(60)
	s.tel.queued.Store(100)
	for i := 0; i < 20; i++ {
		if got := s.retryAfterSeconds(); got != 30 {
			t.Fatalf("saturated hint %d, want 30", got)
		}
	}
}

// failingWriter is a ResponseWriter whose body writes always fail — the
// deterministic stand-in for a client that hung up after the header.
type failingWriter struct{ header http.Header }

func (f *failingWriter) Header() http.Header       { return f.header }
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

// TestWriteJSONCountsFailedWrites: an encode that dies mid-body must move
// secmetricd_response_write_errors_total instead of vanishing.
func TestWriteJSONCountsFailedWrites(t *testing.T) {
	reg := NewRegistry("", nil)
	s := New(reg, Config{})
	if got := s.tel.writeErrors.Load(); got != 0 {
		t.Fatalf("fresh server has %d write errors", got)
	}
	s.writeJSON(&failingWriter{header: http.Header{}}, http.StatusOK, map[string]string{"k": "v"})
	s.writeJSON(&failingWriter{header: http.Header{}}, http.StatusOK, map[string]string{"k": "v"})
	if got := s.tel.writeErrors.Load(); got != 2 {
		t.Fatalf("write errors = %d, want 2", got)
	}
	var sb strings.Builder
	s.tel.write(&sb)
	if !strings.Contains(sb.String(), "secmetricd_response_write_errors_total 2") {
		t.Errorf("exposition missing the write-error count:\n%s", sb.String())
	}
}
