package server

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	secmetric "repro"
)

// TestRegistryBinaryModelReload drops a binary model into the model dir,
// hot-reloads, and asserts it scores byte-identically to the in-memory model
// it was saved from; then corrupts the file and asserts the reload fails
// with the named error while the old snapshot keeps serving.
func TestRegistryBinaryModelReload(t *testing.T) {
	mA, mB := getModels(t)
	dir := t.TempDir()
	if err := secmetric.SaveModel(mA, filepath.Join(dir, "default.json")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, nil)
	if _, err := reg.Load(); err != nil {
		t.Fatal(err)
	}

	binPath := filepath.Join(dir, "alt.bin")
	if err := secmetric.SaveModelBinary(mB, binPath); err != nil {
		t.Fatal(err)
	}
	snap, err := reg.Load()
	if err != nil {
		t.Fatalf("reload with binary model: %v", err)
	}
	alt := snap.Models["alt"]
	if alt == nil {
		t.Fatalf("binary model not registered; have %v", snap.Names())
	}
	fv := secmetric.AnalyzeTree(libTree(t, wireTree(3)))
	if canon(t, alt.Score("x", fv)) != canon(t, mB.Score("x", fv)) {
		t.Fatal("binary-loaded model scores differently from the model it was saved from")
	}

	// Truncate the binary file: the reload is refused all-or-nothing and the
	// previous snapshot keeps serving.
	raw, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	before := reg.Snapshot()
	_, err = reg.Load()
	if !errors.Is(err, secmetric.ErrModelCorrupt) {
		t.Fatalf("corrupt reload: err = %v, want ErrModelCorrupt", err)
	}
	if !strings.Contains(err.Error(), "alt") {
		t.Fatalf("error does not name the refused model: %v", err)
	}
	if reg.Snapshot() != before {
		t.Fatal("failed reload replaced the snapshot")
	}
	if reg.Snapshot().Models["alt"] == nil {
		t.Fatal("old snapshot lost the previously loaded binary model")
	}
}
