package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSessionPoolTorture hammers the registry from many goroutines while
// a fake clock jumps around, interleaving fresh acquisitions, re-uses,
// LRU evictions, and TTL sweeps. The invariants under -race:
//
//   - the pool never holds more than max entries,
//   - an acquire always returns a session whose ID is the repo asked for,
//   - two concurrent acquires of one repo in the same clock epoch never
//     both create (one wins the map, the other re-uses it),
//   - eviction accounting only ever grows.
func TestSessionPoolTorture(t *testing.T) {
	const (
		maxSessions = 4
		workers     = 8
		iters       = 200
		repos       = 16
	)
	p := newSessionPool(maxSessions, time.Minute, core.ExtractConfig{Jobs: 1})

	// Fake clock: a monotonically growing nanosecond counter the workers
	// advance. Occasional large jumps push past the TTL so sweeps fire
	// mid-traffic.
	var clock atomic.Int64
	base := time.Unix(1700000000, 0)
	p.now = func() time.Time { return base.Add(time.Duration(clock.Load())) }

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				step := time.Millisecond
				if i%50 == 49 {
					step = 2 * time.Minute // beyond the TTL: force a sweep
				}
				clock.Add(int64(step))
				id := fmt.Sprintf("repo-%d", (w*iters+i)%repos)
				sess := p.acquire(id)
				if sess == nil {
					t.Errorf("acquire(%s) returned nil", id)
					return
				}
				if got := sess.Name(); got != id {
					t.Errorf("acquire(%s) returned session for %q", id, got)
					return
				}
				if active, _ := p.stats(); active > maxSessions {
					t.Errorf("pool holds %d sessions, cap is %d", active, maxSessions)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	active, evictions := p.stats()
	if active > maxSessions {
		t.Fatalf("final pool size %d exceeds cap %d", active, maxSessions)
	}
	// With 16 repos churning through a 4-slot pool, evictions must have
	// happened; zero means the LRU/TTL paths never ran and the test
	// proved nothing.
	if evictions == 0 {
		t.Fatal("no evictions recorded; the torture never exercised eviction")
	}

	// Same-epoch coherence: concurrent acquires of one repo agree on the
	// session identity.
	clock.Add(int64(time.Millisecond))
	var mu sync.Mutex
	got := map[*core.Session]bool{}
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			s := p.acquire("repo-coherent")
			mu.Lock()
			got[s] = true
			mu.Unlock()
		}()
	}
	wg2.Wait()
	if len(got) != 1 {
		t.Fatalf("concurrent acquires of one repo returned %d distinct sessions, want 1", len(got))
	}
}
