package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/findings"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/pkg/api"
)

// streamWriter serializes NDJSON records onto one response, interleaving
// keepalive heartbeats whenever the analysis goes quiet. Every send
// flushes, so a record reaches the client the moment the file finishes —
// that is the endpoint's whole point, and it is what the statusRecorder
// Flush forwarding exists for.
//
// Sends come from the extraction pool's worker goroutines concurrently
// with the heartbeat ticker, hence the mutex. The first failed write
// marks the stream dead (the client is gone; later records are dropped)
// and feeds the shared response-write-error counter.
type streamWriter struct {
	s    *Server
	mu   sync.Mutex
	enc  *json.Encoder
	rc   *http.ResponseController
	dead bool
	quit chan struct{}
	done chan struct{}
}

// startStream commits the 200 and the NDJSON content type (after this,
// failures can only be reported on-stream) and starts the heartbeat
// ticker. Callers must end() it before returning.
func (s *Server) startStream(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sw := &streamWriter{
		s:    s,
		enc:  json.NewEncoder(w),
		rc:   http.NewResponseController(w),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	sw.flushLocked()
	go sw.heartbeatLoop(s.cfg.StreamHeartbeat)
	return sw
}

func (sw *streamWriter) heartbeatLoop(interval time.Duration) {
	defer close(sw.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sw.quit:
			return
		case <-t.C:
			sw.send(api.StreamRecord{Type: api.StreamTypeHeartbeat})
		}
	}
}

// send writes one record and flushes it out.
func (sw *streamWriter) send(rec api.StreamRecord) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.dead {
		return
	}
	if err := sw.enc.Encode(rec); err != nil {
		sw.dead = true
		sw.s.countWriteError(err)
		return
	}
	sw.flushLocked()
}

func (sw *streamWriter) flushLocked() {
	if err := sw.rc.Flush(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		sw.dead = true
		sw.s.countWriteError(err)
	}
}

// sendError converts a mid-stream failure into the trailing error record —
// the status line is long gone, so this is the only honest channel left.
func (sw *streamWriter) sendError(err error) {
	code := api.CodeInternal
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		code = api.CodeDeadline
	}
	sw.send(api.StreamRecord{Type: api.StreamTypeError, Err: &api.Error{Code: code, Error: err.Error()}})
}

// end stops the heartbeat ticker and waits it out, so no heartbeat can
// trail the summary record.
func (sw *streamWriter) end() {
	close(sw.quit)
	<-sw.done
}

// handleAnalyzeStream is POST /v1/analyze/stream: the batch /v1/analyze
// pipeline with per-file completion records pushed as the worker pool
// finishes each file. Record content is deterministic in the tree bytes;
// only arrival order is scheduling-dependent. The final summary record
// carries exactly the AnalyzeResponse the batch endpoint would return.
func (s *Server) handleAnalyzeStream(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.withSlot(w, r, "analyze_stream", req.TimeoutMS, func(ctx context.Context) error {
		// Admission rejections (429/504 above) answered as plain JSON; from
		// here on the stream owns the response.
		sw := s.startStream(w)
		defer sw.end()
		fv, diag, err := s.analyzeWith(ctx, tree, func(i int, d core.FileDiagnostic) {
			sw.send(api.StreamRecord{Type: api.StreamTypeFile, File: &api.StreamFile{
				Path:   d.Path,
				Status: string(d.Status),
				Detail: d.Detail,
			}})
		})
		if err != nil {
			sw.sendError(err)
			return nil // answered on-stream; withSlot must not write again
		}
		if req.Trace && diag != nil {
			diag.Trace = trace.Summarize(trace.SpanFromContext(ctx))
		}
		sw.send(api.StreamRecord{Type: api.StreamTypeSummary, Analyze: &api.AnalyzeResponse{
			Features:    fv,
			Diagnostics: diag,
		}})
		return nil
	})
}

// handleFindingsStream is POST /v1/findings/stream: per-file findings
// pushed as each file's producers finish, then a summary carrying the
// batch report. Each record's findings are already severity-filtered and
// sorted; concatenating the records in tree (path-sorted) order
// reproduces the batch report byte-for-byte, because the batch sort key
// (file, line, rule, message) groups by file first.
func (s *Server) handleFindingsStream(w http.ResponseWriter, r *http.Request) {
	var req api.FindingsRequest
	if !s.decode(w, r, &req) {
		return
	}
	tree, err := toTree(req.Tree)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	sev, err := findings.ParseSeverity(req.MinSeverity)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	s.withSlot(w, r, "findings_stream", req.TimeoutMS, func(ctx context.Context) error {
		sw := s.startStream(w)
		defer sw.end()

		jobs := s.cfg.AnalyzeJobs
		if jobs <= 0 {
			jobs = runtime.GOMAXPROCS(0)
		}
		perFile := make([][]findings.Finding, len(tree.Files))
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i, f := range tree.Files {
			wg.Add(1)
			go func(i int, f metrics.File) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				if ctx.Err() != nil {
					return
				}
				cs := trace.SpanFromContext(ctx).Child("collect")
				cs.SetLabel(f.Path)
				fa := findings.AnalyzeFile(f)
				cs.End()
				kept := (&findings.Report{Findings: fa.Findings}).MinSeverity(sev).Findings
				perFile[i] = kept
				sw.send(api.StreamRecord{Type: api.StreamTypeFile, File: &api.StreamFile{
					Path:     f.Path,
					Status:   string(core.StatusOK),
					Findings: kept,
				}})
			}(i, f)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			sw.sendError(err)
			return nil
		}
		rep := &findings.Report{}
		for _, kept := range perFile {
			rep.Findings = append(rep.Findings, kept...)
		}
		sw.send(api.StreamRecord{Type: api.StreamTypeSummary, Findings: &api.FindingsResponse{Report: rep}})
		return nil
	})
}
