package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	secmetric "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/pkg/api"
)

// Two model families trained once and shared: hot-reload tests need two
// models that produce visibly different reports.
var (
	modelOnce sync.Once
	modelA    *secmetric.Model // logistic
	modelB    *secmetric.Model // naive bayes
	modelErr  error
)

func getModels(t *testing.T) (*secmetric.Model, *secmetric.Model) {
	t.Helper()
	modelOnce.Do(func() {
		c, err := secmetric.DefaultCorpus()
		if err != nil {
			modelErr = err
			return
		}
		modelA, err = secmetric.Train(c, secmetric.TrainConfig{Kind: secmetric.KindLogistic, Folds: 2, Seed: 5})
		if err != nil {
			modelErr = err
			return
		}
		modelB, err = secmetric.Train(c, secmetric.TrainConfig{Kind: secmetric.KindNaiveBayes, Folds: 2, Seed: 5})
		if err != nil {
			modelErr = err
		}
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return modelA, modelB
}

// miniSource builds a distinct MiniC program per index so distinct trees
// produce distinct vectors.
func miniSource(i int) string {
	return fmt.Sprintf(`
int limit = %d;

int handle(int dst, int n) {
	int data = read_input();
	strcpy(dst, data);
	if (n > limit) {
		n = limit;
	}
	return n;
}

int main(void) {
	int buf[%d];
	int n = handle(buf[0], %d);
	system(n);
	return n;
}
`, 16+i, 32+i, 64+i)
}

func wireTree(i int) api.Tree {
	return api.Tree{
		Name: fmt.Sprintf("tree-%d", i),
		Files: []api.File{
			{Path: "main.mc", Content: miniSource(i)},
			{Path: fmt.Sprintf("util%d.mc", i), Content: fmt.Sprintf("int helper_%d(int x) { return x + %d; }\n", i, i)},
		},
	}
}

// libTree mirrors toTree for the sequential-library half of the
// equivalence tests.
func libTree(t *testing.T, wt api.Tree) *metrics.Tree {
	t.Helper()
	tree, err := toTree(wt)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func canon(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var x any
	if err := json.Unmarshal(raw, &x); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(x, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func newTestServer(t *testing.T, reg *Registry, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(reg, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestConcurrentScoreMatchesSequentialLibrary is the serving-equivalence
// contract: N goroutines scoring distinct trees against one daemon produce
// byte-identical reports to sequential library calls over the same trees
// and model.
func TestConcurrentScoreMatchesSequentialLibrary(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 64})

	const distinct = 4
	const perTree = 4
	want := make([]string, distinct)
	for i := 0; i < distinct; i++ {
		wt := wireTree(i)
		fv := core.ExtractFeatures(libTree(t, wt))
		want[i] = canon(t, mA.Score(wt.Name, fv))
	}

	var wg sync.WaitGroup
	errs := make(chan error, distinct*perTree)
	for i := 0; i < distinct; i++ {
		for j := 0; j < perTree; j++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(i)})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("tree %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				var sr api.ScoreResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					errs <- err
					return
				}
				if got := canon(t, sr.Report); got != want[i] {
					errs <- fmt.Errorf("tree %d: daemon report differs from sequential library call", i)
				}
			}(i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAnalyzeMatchesLibrary checks the raw-vector endpoint against the
// library extraction.
func TestAnalyzeMatchesLibrary(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	wt := wireTree(7)
	resp, data := postJSON(t, ts.URL+"/v1/analyze", api.AnalyzeRequest{Tree: wt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	want := core.ExtractFeatures(libTree(t, wt))
	if canon(t, ar.Features) != canon(t, want) {
		t.Fatal("daemon vector differs from library extraction")
	}
	if ar.Diagnostics == nil || len(ar.Diagnostics.Files) != 2 {
		t.Fatalf("diagnostics = %+v", ar.Diagnostics)
	}
}

// TestCompareMatchesLibrary checks the CI-gate endpoint.
func TestCompareMatchesLibrary(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	oldT, newT := wireTree(1), wireTree(2)
	resp, data := postJSON(t, ts.URL+"/v1/compare", api.CompareRequest{Old: oldT, New: newT})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var cr api.CompareResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	oldFV := core.ExtractFeatures(libTree(t, oldT))
	newFV := core.ExtractFeatures(libTree(t, newT))
	want := mA.Compare(oldT.Name, oldFV, newT.Name, newFV)
	if canon(t, cr.Comparison) != canon(t, want) {
		t.Fatal("daemon comparison differs from library comparison")
	}
}

// TestFindingsEndpoint checks the findings stream and severity filtering.
func TestFindingsEndpoint(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	resp, data := postJSON(t, ts.URL+"/v1/findings", api.FindingsRequest{Tree: wireTree(3), MinSeverity: "high"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var fr api.FindingsResponse
	if err := json.Unmarshal(data, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Report.Total() == 0 {
		t.Fatal("no findings for a tree with strcpy+system")
	}
	for _, f := range fr.Report.Findings {
		if f.Severity < secmetric.SevHigh {
			t.Fatalf("finding below min severity: %+v", f)
		}
	}
	resp, data = postJSON(t, ts.URL+"/v1/findings", api.FindingsRequest{Tree: wireTree(3), MinSeverity: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad severity: status %d: %s", resp.StatusCode, data)
	}
}

// TestHotReloadUnderLoadNeverServesTornModel drives continuous scoring
// while the model file is atomically rewritten and reloaded; every
// response must match one of the two models' reports exactly — a torn or
// half-swapped model would produce bytes matching neither.
func TestHotReloadUnderLoadNeverServesTornModel(t *testing.T) {
	mA, mB := getModels(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "default.json")
	if err := secmetric.SaveModel(mA, path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, nil)
	if _, err := reg.Load(); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 64})

	wt := wireTree(0)
	fv := core.ExtractFeatures(libTree(t, wt))
	wantA := canon(t, mA.Score(wt.Name, fv))
	wantB := canon(t, mB.Score(wt.Name, fv))
	if wantA == wantB {
		t.Fatal("test needs models that score differently")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wt})
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data):
					default:
					}
					return
				}
				var sr api.ScoreResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				if got := canon(t, sr.Report); got != wantA && got != wantB {
					select {
					case errs <- errors.New("response matches neither model A nor model B: torn reload"):
					default:
					}
					return
				}
			}
		}()
	}
	models := []*secmetric.Model{mB, mA}
	for k := 0; k < 10; k++ {
		if err := secmetric.SaveModel(models[k%2], path); err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, ts.URL+"/v1/models/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", k, resp.StatusCode, data)
		}
	}
	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := reg.Reloads(); got != 11 { // initial Load + 10 reloads
		t.Fatalf("reloads = %d, want 11", got)
	}
}

// TestQueueOverflowReturns429 holds the single worker slot open via the
// test hook and asserts the next request is shed immediately with 429,
// then released work still completes.
func TestQueueOverflowReturns429(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s := New(reg, Config{Workers: 1, QueueDepth: 0})
	acquired := make(chan struct{}, 1)
	gate := make(chan struct{})
	s.testHookAcquired = func(string) {
		acquired <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type scoreResult struct {
		code int
		body []byte
	}
	first := make(chan scoreResult, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(0)})
		first <- scoreResult{resp.StatusCode, data}
	}()
	<-acquired // the first request now owns the only slot

	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, want 429: %s", resp.StatusCode, data)
	}
	var we api.Error
	if err := json.Unmarshal(data, &we); err != nil || we.Code != api.CodeQueueFull {
		t.Fatalf("overflow envelope = %s (err %v)", data, err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gate)
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", r.code, r.body)
	}
}

// TestDeadlineReturns504 pins a request deadline below the time the test
// hook stalls, asserting the daemon reports 504 and keeps serving.
func TestDeadlineReturns504(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s := New(reg, Config{Workers: 1})
	s.testHookAcquired = func(endpoint string) {
		if endpoint == "score" {
			time.Sleep(80 * time.Millisecond)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(0), TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	var we api.Error
	if err := json.Unmarshal(data, &we); err != nil || we.Code != api.CodeDeadline {
		t.Fatalf("deadline envelope = %s (err %v)", data, err)
	}
	// The process is fine: healthz still answers and a normal request works.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after deadline: %v %v", hr, err)
	}
	hr.Body.Close()
}

// TestUnknownModel404 and bad requests.
func TestRequestValidation(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Model: "nope", Tree: wireTree(0)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: api.Tree{Name: "empty"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tree: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: api.Tree{
		Name: "unknown-only",
		Files: []api.File{
			{Path: "README.md", Content: "# hi"},
			{Path: ".hidden.mc", Content: "int main(void) { return 0; }"},
		},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unanalyzable tree: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: api.Tree{
		Name: "dup",
		Files: []api.File{
			{Path: "a.mc", Content: "int main(void) { return 0; }"},
			{Path: "a.mc", Content: "int main(void) { return 1; }"},
		},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate paths: status %d: %s", resp.StatusCode, data)
	}
}

// TestRegistryRefusesSchemaMismatch writes a model with the schema field
// stripped (a pre-enrich-v2-era artifact) and asserts the load fails with
// the named error while the old snapshot keeps serving.
func TestRegistryRefusesSchemaMismatch(t *testing.T) {
	mA, _ := getModels(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "default.json")
	if err := secmetric.SaveModel(mA, good); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(dir, nil)
	if _, err := reg.Load(); err != nil {
		t.Fatal(err)
	}

	// Strip the schema to simulate a stale artifact.
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	var dto map[string]json.RawMessage
	if err := json.Unmarshal(raw, &dto); err != nil {
		t.Fatal(err)
	}
	delete(dto, "schema")
	stale, err := json.Marshal(dto)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stale.json"), stale, 0o644); err != nil {
		t.Fatal(err)
	}

	before := reg.Snapshot()
	_, err = reg.Load()
	if !errors.Is(err, secmetric.ErrFeatureSchema) {
		t.Fatalf("load error = %v, want ErrFeatureSchema", err)
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error does not name the refused file: %v", err)
	}
	if reg.Snapshot() != before {
		t.Fatal("failed reload replaced the snapshot")
	}

	// The daemon surfaces the refusal over HTTP and keeps serving.
	_, ts := newTestServer(t, reg, Config{Workers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/models/reload", struct{}{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, data)
	}
	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score after refused reload: status %d: %s", resp.StatusCode, data)
	}
}

// TestMetricsExposition exercises traffic then checks the text format.
func TestMetricsExposition(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(0)})
	postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Model: "nope", Tree: wireTree(0)})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`secmetricd_requests_total{endpoint="score",code="200"} 1`,
		`secmetricd_requests_total{endpoint="score",code="404"} 1`,
		`secmetricd_request_duration_seconds_count{endpoint="score"} 2`,
		`secmetricd_request_duration_seconds_bucket{endpoint="score",le="+Inf"} 2`,
		"secmetricd_in_flight_requests 0",
		"secmetricd_queued_requests 0",
		`secmetricd_rejected_total{reason="queue_full"} 0`,
		"secmetricd_featcache_hits_total",
		"secmetricd_featcache_misses_total",
		"secmetricd_models_loaded 1",
		"secmetricd_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHealth checks the liveness body.
func TestHealth(t *testing.T) {
	mA, mB := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	reg.Register("candidate", mB)
	_, ts := newTestServer(t, reg, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.DefaultModel != "default" || len(h.Models) != 2 {
		t.Fatalf("health = %+v", h)
	}
}

// TestSharedCacheAcrossRequests scores the same tree twice and expects the
// second run to be served from the process-wide cache.
func TestSharedCacheAcrossRequests(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 1})

	wt := wireTree(9)
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wt})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("score %d: status %d: %s", i, resp.StatusCode, data)
		}
		var sr api.ScoreResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		hits := sr.Diagnostics.CacheHits
		if i == 1 && hits != uint64(len(wt.Files)) {
			t.Fatalf("second run: cache hits = %d, want %d", hits, len(wt.Files))
		}
	}
}

// TestWithSlotContext ensures a canceled client context surfaces as the
// deadline path rather than a 500 (sanity for the error classification).
func TestCanceledRequestClassifiedAsDeadline(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s := New(reg, Config{Workers: 1})
	started := make(chan struct{}, 1)
	s.testHookAcquired = func(string) {
		started <- struct{}{}
		time.Sleep(60 * time.Millisecond)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	raw, _ := json.Marshal(api.ScoreRequest{Tree: wireTree(0)})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-started
		cancel()
	}()
	_, err = http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("canceled request succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestRankMatchesLibrary checks the function-ranking endpoint against the
// library call: same tree, byte-identical ranking.
func TestRankMatchesLibrary(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	wt := wireTree(5)
	resp, data := postJSON(t, ts.URL+"/v1/rank", api.RankRequest{Tree: wt})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rr api.RankResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Ranking == nil || rr.Ranking.Functions == 0 {
		t.Fatalf("empty ranking: %+v", rr.Ranking)
	}
	want, err := secmetric.RankTree(context.Background(), libTree(t, wt), secmetric.RankConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if canon(t, rr.Ranking) != canon(t, want) {
		t.Fatal("daemon ranking differs from library ranking")
	}

	// Top trims server-side.
	resp, data = postJSON(t, ts.URL+"/v1/rank", api.RankRequest{Tree: wt, Top: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var trimmed api.RankResponse
	if err := json.Unmarshal(data, &trimmed); err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Ranking.Ranked) != 1 || trimmed.Ranking.Functions != rr.Ranking.Functions {
		t.Fatalf("top=1 gave %d entries over %d functions",
			len(trimmed.Ranking.Ranked), trimmed.Ranking.Functions)
	}

	// A negative Top is a 400, not a 500.
	resp, data = postJSON(t, ts.URL+"/v1/rank", api.RankRequest{Tree: wt, Top: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("top=-1: status %d: %s", resp.StatusCode, data)
	}
}
