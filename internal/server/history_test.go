package server

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store/findex"
	"repro/pkg/api"
)

func openHistory(t *testing.T) *findex.Store {
	t.Helper()
	s, err := findex.Open(filepath.Join(t.TempDir(), "findings.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestQueryWithoutHistory pins the no-db contract: a well-formed query is
// answered 404 no_history, a malformed one 400 — and neither consumes a
// worker slot.
func TestQueryWithoutHistory(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 1})

	resp, data := postJSON(t, ts.URL+"/v1/query", api.QueryRequest{Query: "cwe121 > 0"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-history query: status %d: %s", resp.StatusCode, data)
	}
	var we api.Error
	if err := json.Unmarshal(data, &we); err != nil || we.Code != api.CodeNoHistory {
		t.Fatalf("no-history code = %q (%v), want %q", we.Code, err, api.CodeNoHistory)
	}

	resp, data = postJSON(t, ts.URL+"/v1/query", api.QueryRequest{Query: "bogus > 1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query: status %d: %s", resp.StatusCode, data)
	}
}

// TestHistoryRecordingAndQuery drives score, compare, and rank against a
// -db-backed server and checks every request landed in the history, that
// /v1/query's planned path matches its forced full scan byte-for-byte, and
// that the metrics exposition reports the recording counters.
func TestHistoryRecordingAndQuery(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	hist := openHistory(t)
	_, ts := newTestServer(t, reg, Config{Workers: 2, History: hist})

	if resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(1)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("score: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/compare", api.CompareRequest{Old: wireTree(1), New: wireTree(2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compare: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/rank", api.RankRequest{Tree: wireTree(3)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: status %d: %s", resp.StatusCode, data)
	}

	query := func(req api.QueryRequest) api.QueryResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", req.Query, resp.StatusCode, data)
		}
		var out api.QueryResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("query %q: decode: %v", req.Query, err)
		}
		return out
	}

	all := query(api.QueryRequest{})
	if len(all.Runs) != 3 {
		t.Fatalf("recorded %d runs, want 3: %+v", len(all.Runs), all.Runs)
	}
	bySource := map[string]int{}
	for _, r := range all.Runs {
		bySource[r.Source]++
		if r.Seq == 0 || r.Time == 0 {
			t.Errorf("run %s/%d missing seq or time: %+v", r.Repo, r.Seq, r)
		}
	}
	if bySource["score"] != 1 || bySource["compare"] != 1 || bySource["rank"] != 1 {
		t.Fatalf("sources off: %v", bySource)
	}
	for _, r := range all.Runs {
		wantScore := r.Source != "rank"
		if r.HasScore != wantScore {
			t.Errorf("run from %s: HasScore=%v, want %v", r.Source, r.HasScore, wantScore)
		}
	}

	// The compare run records the NEW tree under its name.
	named := query(api.QueryRequest{Query: `repo = "tree-2"`})
	if len(named.Runs) != 1 || named.Runs[0].Source != "compare" {
		t.Fatalf("tree-2 runs: %+v", named.Runs)
	}

	// Index/full-scan parity over the wire; miniSource trips the strcpy
	// rule, so a CWE predicate exercises a real index.
	src := "cwe120 > 0 OR severity >= info"
	planned := query(api.QueryRequest{Query: src})
	full := query(api.QueryRequest{Query: src, FullScan: true})
	if !full.Explain.FullScan {
		t.Fatalf("full_scan request did not full-scan: %+v", full.Explain)
	}
	pj, _ := json.Marshal(planned.Runs)
	fj, _ := json.Marshal(full.Runs)
	if string(pj) != string(fj) {
		t.Fatalf("wire parity violation:\n planned: %s\n full:    %s", pj, fj)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"secmetricd_history_runs_total 3",
		"secmetricd_history_errors_total 0",
		"secmetricd_featcache_corrupt_total 0",
		"secmetricd_store_pages",
		"secmetricd_store_commits_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
