package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	secmetric "repro"
)

// Snapshot is one immutable generation of the model registry. Every
// request resolves its model from the snapshot current at admission and
// keeps scoring against it even if a reload swaps the registry mid-flight,
// so a hot-reload can never hand a request a torn or half-replaced model.
type Snapshot struct {
	// Models maps registry names to loaded models. The map is never
	// mutated after the snapshot is published.
	Models map[string]*secmetric.Model
	// Default is the name served when a request names no model: the entry
	// literally named "default" when present, otherwise the
	// lexicographically first name.
	Default string
}

// Get resolves a model by name; the empty name selects the default. It
// returns the resolved name so responses can echo which model served them.
func (s *Snapshot) Get(name string) (*secmetric.Model, string, bool) {
	if name == "" {
		name = s.Default
	}
	m, ok := s.Models[name]
	return m, name, ok
}

// Names lists the registered model names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.Models))
	for n := range s.Models {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Registry is the daemon's model store: models loaded from a directory
// (every *.json file, named by basename) and/or explicitly named files,
// published as atomic snapshots. Load is all-or-nothing — one unreadable
// or schema-mismatched model file fails the whole reload and the previous
// snapshot keeps serving — so the registry can never get stuck half-new.
type Registry struct {
	dir   string
	files map[string]string // explicit name -> path sources

	writeMu sync.Mutex // serializes Load/Register; readers never block
	snap    atomic.Pointer[Snapshot]
	reloads atomic.Uint64
}

// NewRegistry builds a registry over a model directory (may be empty) and
// explicit name->path sources (may be nil). Call Load to populate it, or
// Register to install in-memory models directly.
func NewRegistry(dir string, files map[string]string) *Registry {
	r := &Registry{dir: dir, files: map[string]string{}}
	for n, p := range files {
		r.files[n] = p
	}
	r.snap.Store(&Snapshot{Models: map[string]*secmetric.Model{}})
	return r
}

// Snapshot returns the current generation. The returned value is immutable;
// hold it for the duration of one request.
func (r *Registry) Snapshot() *Snapshot { return r.snap.Load() }

// Reloads counts successful Load calls.
func (r *Registry) Reloads() uint64 { return r.reloads.Load() }

// Load (re)reads every model source and atomically publishes the new
// snapshot. Models already registered via Register survive the reload
// unless a file source shadows their name. A model whose feature schema
// does not match this build (secmetric.ErrFeatureSchema) is refused, which
// fails the whole load.
func (r *Registry) Load() (*Snapshot, error) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()

	models := map[string]*secmetric.Model{}
	// In-memory registrations (e.g. a startup-trained default) are not
	// file-backed; carry them forward so a reload cannot drop them.
	for n, m := range r.snap.Load().Models {
		if _, fromFile := r.files[n]; !fromFile {
			models[n] = m
		}
	}
	load := func(name, path string) error {
		m, err := secmetric.LoadModel(path)
		if err != nil {
			return fmt.Errorf("server: refusing model %q (%s): %w", name, path, err)
		}
		models[name] = m
		return nil
	}
	for name, path := range r.files {
		if err := load(name, path); err != nil {
			return nil, err
		}
	}
	if r.dir != "" {
		entries, err := os.ReadDir(r.dir)
		if err != nil {
			return nil, fmt.Errorf("server: model dir: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
				continue
			}
			// Both model formats register; LoadModel sniffs the encoding.
			ext := ""
			switch {
			case strings.HasSuffix(e.Name(), ".json"):
				ext = ".json"
			case strings.HasSuffix(e.Name(), ".bin"):
				ext = ".bin"
			default:
				continue
			}
			name := strings.TrimSuffix(e.Name(), ext)
			if err := load(name, filepath.Join(r.dir, e.Name())); err != nil {
				return nil, err
			}
		}
	}
	if len(models) == 0 {
		return nil, errors.New("server: no models to register (empty model dir and no model files)")
	}
	snap := &Snapshot{Models: models, Default: defaultName(models)}
	r.snap.Store(snap)
	r.reloads.Add(1)
	return snap, nil
}

// Register installs an in-memory model under name, copy-on-write: a fresh
// snapshot is published, readers of the old one are unaffected.
func (r *Registry) Register(name string, m *secmetric.Model) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	old := r.snap.Load()
	models := make(map[string]*secmetric.Model, len(old.Models)+1)
	for n, om := range old.Models {
		models[n] = om
	}
	models[name] = m
	r.snap.Store(&Snapshot{Models: models, Default: defaultName(models)})
}

func defaultName(models map[string]*secmetric.Model) string {
	if _, ok := models["default"]; ok {
		return "default"
	}
	best := ""
	for n := range models {
		if best == "" || n < best {
			best = n
		}
	}
	return best
}
