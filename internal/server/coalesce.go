package server

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/featcache"
	"repro/pkg/api"
)

// reqCoalesceVersion is mixed into every whole-request coalescing key, so
// a change to what a response contains (or to the key layout itself)
// never lets two daemon builds treat different requests as identical.
const reqCoalesceVersion = "req-coalesce-v1"

// coalescer dedups identical whole requests in flight: when N requests
// carrying the same model and the same canonical tree arrive together on
// /v1/score or /v1/rank, one (the leader) runs the full admission +
// analysis pipeline into a buffered response and the rest (followers)
// replay those exact bytes — status, headers, and body — so a follower is
// byte-identical to a solo run while costing no worker slot.
//
// Like the per-file flight, this is a dedup, not a cache: the key is
// forgotten the moment the leader's response is published, so sequential
// identical requests each run (and each observe the live model registry
// and cache state).
type coalescer struct {
	mu      sync.Mutex
	flights map[string]*reqFlight
}

// reqFlight is one in-flight leader execution. done is closed after the
// response fields are set.
type reqFlight struct {
	done   chan struct{}
	code   int
	header http.Header
	body   []byte
}

func newCoalescer() *coalescer {
	return &coalescer{flights: map[string]*reqFlight{}}
}

// respCapture buffers a handler's response so it can be replayed to every
// coalesced follower.
type respCapture struct {
	header http.Header
	code   int
	wrote  bool
	body   bytes.Buffer
}

func newRespCapture() *respCapture {
	return &respCapture{header: http.Header{}, code: http.StatusOK}
}

func (c *respCapture) Header() http.Header { return c.header }

func (c *respCapture) WriteHeader(code int) {
	if !c.wrote {
		c.code = code
		c.wrote = true
	}
}

func (c *respCapture) Write(b []byte) (int, error) {
	c.wrote = true
	return c.body.Write(b)
}

// coalesce runs handler once per key among concurrent callers and replays
// the captured response to every caller. The follower's wait is bounded
// by its own request deadline (expiry answers 504 exactly as if its own
// analysis had run long), and a follower whose client hangs up just
// stops waiting — the leader is unaffected either way.
//
// The leader's response is published even if handler panics (a synthetic
// 500), so a follower can never hang on a dead flight.
func (s *Server) coalesce(w http.ResponseWriter, r *http.Request, endpoint, key string, timeoutMS int64, handler func(http.ResponseWriter)) {
	s.coalesced.mu.Lock()
	if fl, ok := s.coalesced.flights[key]; ok {
		s.coalesced.mu.Unlock()
		s.tel.observeCoalesced(endpoint)
		timer := time.NewTimer(s.requestTimeout(timeoutMS))
		defer timer.Stop()
		select {
		case <-fl.done:
			s.replay(w, fl)
		case <-timer.C:
			s.writeErr(w, http.StatusGatewayTimeout, api.CodeDeadline,
				"deadline exceeded while waiting for an identical in-flight request")
		case <-r.Context().Done():
			// Client gone; there is nobody to answer.
		}
		return
	}
	fl := &reqFlight{done: make(chan struct{})}
	s.coalesced.flights[key] = fl
	s.coalesced.mu.Unlock()

	published := false
	defer func() {
		s.coalesced.mu.Lock()
		delete(s.coalesced.flights, key)
		s.coalesced.mu.Unlock()
		if !published {
			fl.code = http.StatusInternalServerError
			fl.header = http.Header{"Content-Type": []string{"application/json"}}
			fl.body = []byte(`{"code":"internal","error":"coalesced leader did not produce a response"}` + "\n")
		}
		close(fl.done)
	}()

	rec := newRespCapture()
	handler(rec)
	fl.code, fl.header, fl.body = rec.code, rec.header, rec.body.Bytes()
	published = true
	s.replay(w, fl)
}

// replay writes one captured response, counting mid-body write failures
// like any other response write.
func (s *Server) replay(w http.ResponseWriter, fl *reqFlight) {
	h := w.Header()
	for k, vs := range fl.header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(fl.code)
	if _, err := w.Write(fl.body); err != nil {
		s.countWriteError(err)
	}
}

// requestKey canonically digests everything that determines a response
// byte-for-byte: the endpoint, the resolved model, endpoint options, and
// the full tree content. It reuses the feature cache's length-prefixed
// SHA-256 key construction, so no concatenation of parts can collide
// with a different split of the same bytes. timeout_ms and trace are
// deliberately excluded — timeout only bounds the wait (followers apply
// their own), and traced requests never coalesce (a trace is a
// per-execution account, meaningless when adopted).
func requestKey(endpoint string, opts []string, t api.Tree) string {
	parts := make([]string, 0, 2+len(opts)+2*len(t.Files))
	parts = append(parts, endpoint)
	parts = append(parts, opts...)
	parts = append(parts, t.Name)
	for _, f := range t.Files {
		parts = append(parts, f.Path, f.Content)
	}
	return featcache.Key(reqCoalesceVersion, parts...)
}

// scoreKey / rankKey build the per-endpoint coalescing keys.
func scoreKey(model string, t api.Tree) string {
	return requestKey("score", []string{model}, t)
}

func rankKey(top int, t api.Tree) string {
	return requestKey("rank", []string{strconv.Itoa(top)}, t)
}
