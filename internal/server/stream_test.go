package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/pkg/api"
	"repro/pkg/client"
)

// TestStatusRecorderForwardsFlush is the regression test for the wrapper
// bug that blocked streaming: instrument's statusRecorder must forward
// Flush to the underlying writer, so a mid-handler flush reaches the
// client before the handler returns. Without the forwarding, the first
// line sits in net/http's buffer until the handler completes and the
// client read below times out.
func TestStatusRecorderForwardsFlush(t *testing.T) {
	reg := NewRegistry("", nil)
	s := New(reg, Config{})

	release := make(chan struct{})
	h := s.instrument("flushy", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "first")
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("instrumented writer lost http.Flusher")
			return
		}
		f.Flush()
		<-release
		fmt.Fprintln(w, "second")
	})
	ts := httptest.NewServer(h)
	// Cleanups run last-registered-first: the handler must be released
	// before ts.Close can wait out the in-flight request.
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(release) })

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	lines := make(chan string, 1)
	go func() {
		br := bufio.NewReader(resp.Body)
		line, err := br.ReadString('\n')
		if err != nil {
			lines <- "read error: " + err.Error()
			return
		}
		lines <- line
	}()
	select {
	case got := <-lines:
		if got != "first\n" {
			t.Fatalf("first flushed line = %q", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flushed line never reached the client while the handler was still running")
	}
}

// streamRecords posts one request to a streaming endpoint and returns the
// parsed record sequence.
func streamRecords(t *testing.T, url string, body any) []api.StreamRecord {
	t.Helper()
	resp, data := postJSON(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var recs []api.StreamRecord
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var rec api.StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestAnalyzeStreamMatchesBatch: the stream's summary record carries
// exactly the batch /v1/analyze response, and the file records cover
// every tree file exactly once.
func TestAnalyzeStreamMatchesBatch(t *testing.T) {
	reg := NewRegistry("", nil)
	_, ts := newTestServer(t, reg, Config{Workers: 4})

	wt := wireTree(410)
	req := api.AnalyzeRequest{Tree: wt}

	// Warm the cache so the batch and stream runs see identical per-file
	// statuses (all cache hits), then take the batch answer.
	postJSON(t, ts.URL+"/v1/analyze", req)
	_, batchRaw := postJSON(t, ts.URL+"/v1/analyze", req)
	var batch api.AnalyzeResponse
	if err := json.Unmarshal(batchRaw, &batch); err != nil {
		t.Fatal(err)
	}

	recs := streamRecords(t, ts.URL+"/v1/analyze/stream", req)
	var files []api.StreamFile
	var summary *api.AnalyzeResponse
	for i, rec := range recs {
		switch rec.Type {
		case api.StreamTypeFile:
			files = append(files, *rec.File)
		case api.StreamTypeSummary:
			if i != len(recs)-1 {
				t.Errorf("summary is record %d of %d, want last", i, len(recs))
			}
			summary = rec.Analyze
		case api.StreamTypeHeartbeat:
		default:
			t.Fatalf("unexpected record type %q", rec.Type)
		}
	}
	if summary == nil {
		t.Fatal("stream carried no summary record")
	}
	if got, want := canon(t, summary), canon(t, &batch); got != want {
		t.Errorf("summary differs from the batch response:\n%s\nvs\n%s", got, want)
	}

	wantPaths := make([]string, len(wt.Files))
	for i, f := range wt.Files {
		wantPaths[i] = f.Path
	}
	sort.Strings(wantPaths)
	gotPaths := make([]string, len(files))
	for i, f := range files {
		gotPaths[i] = f.Path
		if f.Status != string(core.StatusCacheHit) {
			t.Errorf("file %s status %q on a warm cache", f.Path, f.Status)
		}
	}
	sort.Strings(gotPaths)
	if strings.Join(gotPaths, ",") != strings.Join(wantPaths, ",") {
		t.Errorf("file records %v, want exactly %v", gotPaths, wantPaths)
	}
}

// TestFindingsStreamMatchesBatch: per-file findings records concatenated
// in tree (path-sorted) order reproduce the batch report, and the summary
// carries it verbatim.
func TestFindingsStreamMatchesBatch(t *testing.T) {
	reg := NewRegistry("", nil)
	_, ts := newTestServer(t, reg, Config{Workers: 4})

	wt := wireTree(411)
	req := api.FindingsRequest{Tree: wt, MinSeverity: "low"}
	_, batchRaw := postJSON(t, ts.URL+"/v1/findings", req)
	var batch api.FindingsResponse
	if err := json.Unmarshal(batchRaw, &batch); err != nil {
		t.Fatal(err)
	}

	recs := streamRecords(t, ts.URL+"/v1/findings/stream", req)
	byPath := map[string]api.StreamFile{}
	var summary *api.FindingsResponse
	for _, rec := range recs {
		switch rec.Type {
		case api.StreamTypeFile:
			byPath[rec.File.Path] = *rec.File
		case api.StreamTypeSummary:
			summary = rec.Findings
		}
	}
	if summary == nil {
		t.Fatal("stream carried no summary record")
	}
	if got, want := canon(t, summary), canon(t, &batch); got != want {
		t.Errorf("summary differs from the batch response:\n%s\nvs\n%s", got, want)
	}

	// Concatenate the records in tree order and compare to the batch
	// findings list.
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var concat []secFinding
	for _, p := range paths {
		for _, f := range byPath[p].Findings {
			concat = append(concat, secFinding{f.Rule, f.File, f.Line, f.Message})
		}
	}
	var want []secFinding
	if batch.Report != nil {
		for _, f := range batch.Report.Findings {
			want = append(want, secFinding{f.Rule, f.File, f.Line, f.Message})
		}
	}
	if canon(t, concat) != canon(t, want) {
		t.Errorf("concatenated records differ from batch findings:\n%s\nvs\n%s", canon(t, concat), canon(t, want))
	}
	if len(want) == 0 {
		t.Fatal("test tree produced no findings; the parity check is vacuous")
	}
}

type secFinding struct {
	Rule    string
	File    string
	Line    int
	Message string
}

// lockedRecorder guards an httptest recorder so the test can read the
// body while the heartbeat goroutine is still writing to it.
type lockedRecorder struct {
	mu  sync.Mutex
	rec *httptest.ResponseRecorder
}

func (l *lockedRecorder) Header() http.Header { return l.rec.Header() }
func (l *lockedRecorder) WriteHeader(c int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rec.WriteHeader(c)
}
func (l *lockedRecorder) Write(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec.Write(b)
}
func (l *lockedRecorder) Flush() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rec.Flush()
}
func (l *lockedRecorder) body() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rec.Body.String()
}

// TestStreamHeartbeats: an idle stream emits heartbeat records at the
// configured interval, and they stop once the stream ends.
func TestStreamHeartbeats(t *testing.T) {
	reg := NewRegistry("", nil)
	s := New(reg, Config{StreamHeartbeat: 2 * time.Millisecond})

	lr := &lockedRecorder{rec: httptest.NewRecorder()}
	sw := s.startStream(lr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if strings.Count(lr.body(), api.StreamTypeHeartbeat) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no heartbeats on an idle stream")
		}
		time.Sleep(time.Millisecond)
	}
	sw.end()
	if !lr.rec.Flushed {
		t.Error("heartbeats were never flushed")
	}
	for _, line := range strings.Split(strings.TrimSpace(lr.body()), "\n") {
		var r api.StreamRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad heartbeat line %q: %v", line, err)
		}
		if r.Type != api.StreamTypeHeartbeat {
			t.Fatalf("unexpected record %q on an idle stream", r.Type)
		}
	}
}

// TestClientStream drives both streaming endpoints through the typed
// client: per-file callbacks fire, the summary equals the batch call, and
// pre-stream rejections surface as ordinary APIErrors.
func TestClientStream(t *testing.T) {
	reg := NewRegistry("", nil)
	_, ts := newTestServer(t, reg, Config{Workers: 4})
	c := client.New(ts.URL)

	wt := wireTree(412)
	batch, err := c.Analyze(context.Background(), api.AnalyzeRequest{Tree: wt})
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	sum, err := c.AnalyzeStream(context.Background(), api.AnalyzeRequest{Tree: wt}, func(f api.StreamFile) {
		seen = append(seen, f.Path)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(wt.Files) {
		t.Errorf("onFile fired %d times for %d files", len(seen), len(wt.Files))
	}
	// Second batch call is warm like the stream run was; diagnostics agree.
	batch2, err := c.Analyze(context.Background(), api.AnalyzeRequest{Tree: wt})
	if err != nil {
		t.Fatal(err)
	}
	_ = batch
	if canon(t, sum) != canon(t, batch2) {
		t.Errorf("client stream summary differs from batch:\n%s\nvs\n%s", canon(t, sum), canon(t, batch2))
	}

	fb, err := c.Findings(context.Background(), api.FindingsRequest{Tree: wt})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := c.FindingsStream(context.Background(), api.FindingsRequest{Tree: wt}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if canon(t, fs) != canon(t, fb) {
		t.Errorf("findings stream summary differs from batch")
	}

	// A malformed tree is rejected before the stream begins: plain 400.
	_, err = c.AnalyzeStream(context.Background(), api.AnalyzeRequest{Tree: api.Tree{Name: "x"}}, nil)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty tree error = %v, want a 400 APIError", err)
	}
}
