package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/pkg/api"
)

// deltaTree returns a wire tree of n MiniC files with per-index content.
func deltaTree(n int) []api.File {
	files := make([]api.File, n)
	for i := range files {
		files[i] = api.File{Path: fmt.Sprintf("src/f%02d.mc", i), Content: miniSource(i)}
	}
	return files
}

func postDelta(t *testing.T, url string, req api.DeltaRequest) (*http.Response, api.DeltaResponse, api.Error) {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/delta", req)
	var out api.DeltaResponse
	var we api.Error
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("decode delta response: %v: %s", err, data)
		}
	} else if err := json.Unmarshal(data, &we); err != nil {
		t.Fatalf("decode error envelope: %v: %s", err, data)
	}
	return resp, out, we
}

// assertFeatureParity requires bit-identical vectors, feature by feature.
func assertFeatureParity(t *testing.T, want, got metrics.FeatureVector) {
	t.Helper()
	for _, name := range metrics.FeatureNames {
		if math.Float64bits(want[name]) != math.Float64bits(got[name]) {
			t.Fatalf("feature %s: incremental %v != cold %v", name, got[name], want[name])
		}
	}
}

// TestDeltaSeedThenIncrementalParity drives the endpoint's contract: a
// seeding changeset scores without a comparison, a follow-up modification
// produces one, and after both the session's vector is bit-identical to a
// cold /v1/analyze of the full current tree.
func TestDeltaSeedThenIncrementalParity(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 16})

	seed := api.DeltaRequest{RepoID: "repo-a", Changeset: api.Changeset{Added: deltaTree(4)}}
	resp, out, _ := postDelta(t, ts.URL, seed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}
	if out.Seq != 1 || out.Files != 4 || out.Report == nil || out.Comparison != nil {
		t.Fatalf("seed response: seq=%d files=%d report=%v cmp=%v", out.Seq, out.Files, out.Report, out.Comparison)
	}
	if out.Diagnostics == nil || len(out.Diagnostics.Files) != 4 {
		t.Fatalf("seed diagnostics should cover all 4 files: %+v", out.Diagnostics)
	}

	// One modification, one removal, one addition in a single changeset.
	change := api.DeltaRequest{RepoID: "repo-a", Changeset: api.Changeset{
		Modified: []api.File{{Path: "src/f01.mc", Content: miniSource(77)}},
		Removed:  []string{"src/f03.mc"},
		Added:    []api.File{{Path: "src/new.mc", Content: miniSource(88)}},
	}}
	resp, out, _ = postDelta(t, ts.URL, change)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("change: status %d", resp.StatusCode)
	}
	if out.Seq != 2 || out.Files != 4 || out.Comparison == nil {
		t.Fatalf("change response: seq=%d files=%d cmp=%v", out.Seq, out.Files, out.Comparison)
	}
	if len(out.Diagnostics.Files) != 2 {
		t.Fatalf("change diagnostics should cover only the 2 re-analyzed files: %+v", out.Diagnostics.Files)
	}

	// Cold truth: a fresh full analysis of the final tree.
	final := api.Tree{Name: "repo-a", Files: []api.File{
		{Path: "src/f00.mc", Content: miniSource(0)},
		{Path: "src/f01.mc", Content: miniSource(77)},
		{Path: "src/f02.mc", Content: miniSource(2)},
		{Path: "src/new.mc", Content: miniSource(88)},
	}}
	aresp, adata := postJSON(t, ts.URL+"/v1/analyze", api.AnalyzeRequest{Tree: final})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", aresp.StatusCode, adata)
	}
	var cold api.AnalyzeResponse
	if err := json.Unmarshal(adata, &cold); err != nil {
		t.Fatal(err)
	}
	assertFeatureParity(t, cold.Features, s.sessions.acquire("repo-a").Features())
}

// TestDeltaStaleSessionReturns409 covers both stale paths: a non-seeding
// changeset against a fresh (or evicted) session, and a changeset that
// contradicts the session's file set. The session must survive rejections
// unchanged.
func TestDeltaStaleSessionReturns409(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	// Modify before any seed: the server has no picture of this repo.
	resp, _, we := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "r", Changeset: api.Changeset{
		Modified: []api.File{{Path: "a.mc", Content: "int f(void) { return 1; }\n"}},
	}})
	if resp.StatusCode != http.StatusConflict || we.Code != api.CodeStaleSession {
		t.Fatalf("unseeded modify: status %d code %q, want 409 %q", resp.StatusCode, we.Code, api.CodeStaleSession)
	}

	// Seed, then contradict it.
	resp, _, _ = postDelta(t, ts.URL, api.DeltaRequest{RepoID: "r", Changeset: api.Changeset{Added: deltaTree(2)}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}
	resp, _, we = postDelta(t, ts.URL, api.DeltaRequest{RepoID: "r", Changeset: api.Changeset{
		Added: []api.File{{Path: "src/f00.mc", Content: "int g(void) { return 2; }\n"}},
	}})
	if resp.StatusCode != http.StatusConflict || we.Code != api.CodeStaleSession {
		t.Fatalf("re-add: status %d code %q, want 409 %q", resp.StatusCode, we.Code, api.CodeStaleSession)
	}

	// The rejected changesets left the session intact: a valid follow-up
	// continues from seq 1.
	resp, out, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "r", Changeset: api.Changeset{
		Modified: []api.File{{Path: "src/f00.mc", Content: miniSource(3)}},
	}})
	if resp.StatusCode != http.StatusOK || out.Seq != 2 {
		t.Fatalf("follow-up: status %d seq %d, want 200 seq 2", resp.StatusCode, out.Seq)
	}
}

// TestDeltaValidationReturns400 covers request-shape rejections that are
// the client's fault rather than divergence: missing repo_id, empty
// changesets, changesets that would empty the session.
func TestDeltaValidationReturns400(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	cases := []struct {
		name string
		req  api.DeltaRequest
	}{
		{"missing repo_id", api.DeltaRequest{Changeset: api.Changeset{Added: deltaTree(1)}}},
		{"empty changeset", api.DeltaRequest{RepoID: "v"}},
		{"all files filtered", api.DeltaRequest{RepoID: "v", Changeset: api.Changeset{
			Added: []api.File{{Path: "README.nope", Content: "x"}, {Path: ".hidden.mc", Content: "y"}},
		}}},
	}
	for _, tc := range cases {
		resp, _, we := postDelta(t, ts.URL, tc.req)
		if resp.StatusCode != http.StatusBadRequest || we.Code != api.CodeBadRequest {
			t.Fatalf("%s: status %d code %q, want 400 bad_request", tc.name, resp.StatusCode, we.Code)
		}
	}

	// Emptying the session is rejected and the session survives.
	if resp, _, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "v", Changeset: api.Changeset{Added: deltaTree(1)}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}
	resp, _, we := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "v", Changeset: api.Changeset{Removed: []string{"src/f00.mc"}}})
	if resp.StatusCode != http.StatusBadRequest || we.Code != api.CodeBadRequest {
		t.Fatalf("would-empty: status %d code %q", resp.StatusCode, we.Code)
	}
	resp, out, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "v", Changeset: api.Changeset{
		Modified: []api.File{{Path: "src/f00.mc", Content: miniSource(5)}},
	}})
	if resp.StatusCode != http.StatusOK || out.Seq != 2 {
		t.Fatalf("after rejections: status %d seq %d", resp.StatusCode, out.Seq)
	}
}

// TestDeltaConcurrentApplyOneRepo hammers one repo's session from many
// goroutines, each modifying its own file. Applies serialize inside the
// session; every request must succeed, seqs must be distinct, and the
// final state must match a cold analysis of the final tree bit for bit.
func TestDeltaConcurrentApplyOneRepo(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	const n = 8
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 2 * n})

	if resp, _, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "hot", Changeset: api.Changeset{Added: deltaTree(n)}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: status %d", resp.StatusCode)
	}

	seqs := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out, we := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "hot", Changeset: api.Changeset{
				Modified: []api.File{{Path: fmt.Sprintf("src/f%02d.mc", i), Content: miniSource(100 + i)}},
			}})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("worker %d: status %d (%s)", i, resp.StatusCode, we.Error)
				return
			}
			seqs[i] = out.Seq
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	seen := map[uint64]bool{}
	for i, q := range seqs {
		if q < 2 || q > n+1 || seen[q] {
			t.Fatalf("worker %d: seq %d out of range or duplicated (%v)", i, q, seqs)
		}
		seen[q] = true
	}

	final := api.Tree{Name: "hot", Files: make([]api.File, n)}
	for i := range final.Files {
		final.Files[i] = api.File{Path: fmt.Sprintf("src/f%02d.mc", i), Content: miniSource(100 + i)}
	}
	aresp, adata := postJSON(t, ts.URL+"/v1/analyze", api.AnalyzeRequest{Tree: final})
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", aresp.StatusCode, adata)
	}
	var cold api.AnalyzeResponse
	if err := json.Unmarshal(adata, &cold); err != nil {
		t.Fatal(err)
	}
	assertFeatureParity(t, cold.Features, s.sessions.acquire("hot").Features())
}

// TestDeltaEvictionUnderLoad seeds more repos than the registry holds and
// asserts the bound: live sessions never exceed MaxSessions, evictions are
// counted, and an evicted repo answers stale on its next non-seeding
// changeset.
func TestDeltaEvictionUnderLoad(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	const cap = 3
	s, ts := newTestServer(t, reg, Config{Workers: 4, QueueDepth: 32, MaxSessions: cap})

	const repos = 10
	for i := 0; i < repos; i++ {
		id := fmt.Sprintf("repo-%02d", i)
		resp, _, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: id, Changeset: api.Changeset{Added: deltaTree(1)}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %s: status %d", id, resp.StatusCode)
		}
		if active, _ := s.sessions.stats(); active > cap {
			t.Fatalf("after %s: %d live sessions, cap %d", id, active, cap)
		}
	}
	active, evicted := s.sessions.stats()
	if active != cap || evicted != repos-cap {
		t.Fatalf("registry state: %d active (want %d), %d evicted (want %d)", active, evicted, cap, repos-cap)
	}

	// repo-00 was evicted long ago; its session is gone, so modifying is stale.
	resp, _, we := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "repo-00", Changeset: api.Changeset{
		Modified: []api.File{{Path: "src/f00.mc", Content: miniSource(1)}},
	}})
	if resp.StatusCode != http.StatusConflict || we.Code != api.CodeStaleSession {
		t.Fatalf("evicted repo: status %d code %q, want 409 stale_session", resp.StatusCode, we.Code)
	}

	// The most recent repo is still live and usable.
	resp, out, _ := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "repo-09", Changeset: api.Changeset{
		Modified: []api.File{{Path: "src/f00.mc", Content: miniSource(42)}},
	}})
	if resp.StatusCode != http.StatusOK || out.Seq != 2 {
		t.Fatalf("live repo: status %d seq %d", resp.StatusCode, out.Seq)
	}
}

// TestSessionPoolTTLExpiry drives the pool's clock directly: a session
// idle past the TTL is swept and replaced by a fresh one.
func TestSessionPoolTTLExpiry(t *testing.T) {
	p := newSessionPool(8, time.Minute, core.ExtractConfig{Jobs: 1})
	now := time.Unix(1000, 0)
	p.now = func() time.Time { return now }

	a := p.acquire("a")
	now = now.Add(30 * time.Second)
	if p.acquire("a") != a {
		t.Fatal("session replaced before its TTL")
	}
	// The touch above reset recency; expiry counts from last use.
	now = now.Add(59 * time.Second)
	if p.acquire("a") != a {
		t.Fatal("session expired before idle TTL elapsed")
	}
	now = now.Add(61 * time.Second)
	if p.acquire("a") == a {
		t.Fatal("idle session survived past its TTL")
	}
	if _, evicted := p.stats(); evicted != 1 {
		t.Fatalf("evictions = %d, want 1", evicted)
	}
}

// TestDeltaQueueOverflowReturns429 asserts the delta endpoint sits behind
// the same admission discipline as every analyzing endpoint: with the only
// slot held and no waiting room, a delta is shed with 429 before any
// session work happens.
func TestDeltaQueueOverflowReturns429(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	s := New(reg, Config{Workers: 1, QueueDepth: 0})
	acquired := make(chan struct{}, 1)
	gate := make(chan struct{})
	s.testHookAcquired = func(string) {
		acquired <- struct{}{}
		<-gate
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/delta", api.DeltaRequest{RepoID: "q", Changeset: api.Changeset{Added: deltaTree(1)}})
		first <- resp.StatusCode
	}()
	<-acquired

	resp, _, we := postDelta(t, ts.URL, api.DeltaRequest{RepoID: "q2", Changeset: api.Changeset{Added: deltaTree(1)}})
	if resp.StatusCode != http.StatusTooManyRequests || we.Code != api.CodeQueueFull {
		t.Fatalf("overflow: status %d code %q, want 429 queue_full", resp.StatusCode, we.Code)
	}
	if active, _ := s.sessions.stats(); active != 0 {
		t.Fatalf("shed request created a session: %d active", active)
	}

	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("held request: status %d", code)
	}
}
