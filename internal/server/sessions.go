package server

import (
	"sync"
	"time"

	"repro/internal/core"
)

// sessionPool is the daemon's bounded per-repo session registry behind
// POST /v1/delta. Each repo_id owns at most one core.Session; the pool
// caps how many live at once (LRU eviction on overflow) and expires
// sessions idle past a TTL, so a stream of one-shot repo_ids cannot grow
// the daemon's heap without bound.
//
// Eviction is deliberately soft: an evicted *core.Session already handed
// to an in-flight request keeps working (the Session is self-contained
// and concurrency-safe); only the registry forgets it. The next request
// for that repo_id gets a fresh empty session and, unless it seeds, an
// ErrStaleSession telling the client to re-seed.
type sessionPool struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	cfg     core.ExtractConfig
	entries map[string]*sessionEntry

	evictions uint64

	// now is the clock; tests override it to drive TTL expiry.
	now func() time.Time
}

// sessionEntry tracks one session's recency for LRU + TTL decisions.
type sessionEntry struct {
	sess     *core.Session
	lastUsed time.Time
}

// newSessionPool builds a pool that creates sessions with cfg. max <= 0
// and ttl <= 0 are the caller's bug; New applies the defaults.
func newSessionPool(max int, ttl time.Duration, cfg core.ExtractConfig) *sessionPool {
	return &sessionPool{
		max:     max,
		ttl:     ttl,
		cfg:     cfg,
		entries: map[string]*sessionEntry{},
		now:     time.Now,
	}
}

// acquire returns repoID's session, creating it if absent, and marks it
// most-recently-used. Expired sessions are swept first, so an idle-beyond-
// TTL session is replaced (the caller then sees stale-session semantics on
// a non-seeding changeset, exactly as after an LRU eviction).
func (p *sessionPool) acquire(repoID string) *core.Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	p.sweepLocked(now)
	if e, ok := p.entries[repoID]; ok {
		e.lastUsed = now
		return e.sess
	}
	if len(p.entries) >= p.max {
		p.evictLRULocked()
	}
	e := &sessionEntry{sess: core.NewSession(repoID, p.cfg), lastUsed: now}
	p.entries[repoID] = e
	return e.sess
}

// sweepLocked drops every session idle longer than the TTL.
func (p *sessionPool) sweepLocked(now time.Time) {
	for id, e := range p.entries {
		if now.Sub(e.lastUsed) > p.ttl {
			delete(p.entries, id)
			p.evictions++
		}
	}
}

// evictLRULocked drops the least-recently-used session to make room.
func (p *sessionPool) evictLRULocked() {
	var victim string
	var oldest time.Time
	for id, e := range p.entries {
		if victim == "" || e.lastUsed.Before(oldest) {
			victim, oldest = id, e.lastUsed
		}
	}
	if victim != "" {
		delete(p.entries, victim)
		p.evictions++
	}
}

// stats reports the live session count and total evictions for /metrics.
func (p *sessionPool) stats() (active int, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries), p.evictions
}
