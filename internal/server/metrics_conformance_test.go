package server

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/pkg/api"
)

// TestHistogramConformance drives traffic and then audits the exposition
// against the Prometheus text-format histogram contract: buckets are
// cumulative and monotone non-decreasing in le order, the +Inf bucket
// equals _count, every observation is inside sum, and every exported family
// carries HELP and TYPE headers.
func TestHistogramConformance(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	// Mixed traffic: successes, a 404, two endpoints.
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(i)})
	}
	postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Model: "nope", Tree: wireTree(0)})
	postJSON(t, ts.URL+"/v1/analyze", api.AnalyzeRequest{Tree: wireTree(1)})

	text := getMetrics(t, ts.URL)
	exp := parseExposition(t, text)

	// Every family has headers.
	for fam := range exp.families {
		if !exp.typed[fam] {
			t.Errorf("family %s exported without # TYPE", fam)
		}
		if !exp.helped[fam] {
			t.Errorf("family %s exported without # HELP", fam)
		}
	}

	// Histogram contract per endpoint label set.
	const hist = "secmetricd_request_duration_seconds"
	endpoints := map[string]bool{}
	for _, s := range exp.families[hist+"_bucket"] {
		endpoints[s.labels["endpoint"]] = true
	}
	if len(endpoints) < 2 {
		t.Fatalf("expected buckets for >= 2 endpoints, got %v", endpoints)
	}
	for ep := range endpoints {
		var buckets []sample
		for _, s := range exp.families[hist+"_bucket"] {
			if s.labels["endpoint"] == ep {
				buckets = append(buckets, s)
			}
		}
		sort.Slice(buckets, func(i, j int) bool { return le(t, buckets[i]) < le(t, buckets[j]) })
		prev := -1.0
		for _, b := range buckets {
			if b.value < prev {
				t.Errorf("endpoint %s: bucket le=%s value %g < previous %g (not cumulative)",
					ep, b.labels["le"], b.value, prev)
			}
			prev = b.value
		}
		last := buckets[len(buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("endpoint %s: final bucket le=%s, want +Inf", ep, last.labels["le"])
		}
		count := one(t, exp.families[hist+"_count"], ep)
		if last.value != count.value {
			t.Errorf("endpoint %s: +Inf bucket %g != count %g", ep, last.value, count.value)
		}
		sum := one(t, exp.families[hist+"_sum"], ep)
		if sum.value < 0 {
			t.Errorf("endpoint %s: negative sum %g", ep, sum.value)
		}
		if count.value > 0 && sum.value == 0 {
			// Possible only if every request took literally zero time.
			t.Errorf("endpoint %s: %g observations but zero sum", ep, count.value)
		}
	}
}

func le(t *testing.T, s sample) float64 {
	t.Helper()
	raw := s.labels["le"]
	if raw == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		t.Fatalf("bad le %q: %v", raw, err)
	}
	return v
}

func one(t *testing.T, ss []sample, endpoint string) sample {
	t.Helper()
	for _, s := range ss {
		if s.labels["endpoint"] == endpoint {
			return s
		}
	}
	t.Fatalf("no sample for endpoint %q", endpoint)
	return sample{}
}

type sample struct {
	labels map[string]string
	value  float64
}

type exposition struct {
	families map[string][]sample
	typed    map[string]bool
	helped   map[string]bool
}

// parseExposition parses the subset of the Prometheus text format the
// daemon emits: HELP/TYPE comments and `name{labels} value` samples.
func parseExposition(t *testing.T, text string) *exposition {
	t.Helper()
	exp := &exposition{
		families: map[string][]sample{},
		typed:    map[string]bool{},
		helped:   map[string]bool{},
	}
	typeByFamily := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if fam, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fields := strings.Fields(fam)
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typeByFamily[fields[0]] = fields[1]
			continue
		}
		if fam, ok := strings.CutPrefix(line, "# HELP "); ok {
			fields := strings.Fields(fam)
			if len(fields) < 2 {
				t.Fatalf("malformed HELP line: %q", line)
			}
			exp.helped[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest := line, ""
		labels := map[string]string{}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed sample: %q", line)
			}
			for _, kv := range strings.Split(line[i+1:j], ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("malformed label %q in %q", kv, line)
				}
				uq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("unquoted label value %q in %q", v, line)
				}
				labels[k] = uq
			}
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.SplitN(line, " ", 2)
			if len(fields) != 2 {
				t.Fatalf("malformed sample: %q", line)
			}
			name, rest = fields[0], fields[1]
		}
		value, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		exp.families[name] = append(exp.families[name], sample{labels: labels, value: value})
	}
	// Map sample names to their TYPE-declared family: histogram samples use
	// the family name plus _bucket/_sum/_count suffixes.
	for name := range exp.families {
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typeByFamily[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := typeByFamily[fam]; ok {
			exp.typed[name] = true
			if exp.helped[fam] {
				exp.helped[name] = true
			}
		}
	}
	return exp
}
