package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// latencyBuckets are the fixed histogram bounds (seconds) of the request
// latency exposition, chosen to straddle the observed range: sub-ms cache
// hits through multi-second cold deep analyses.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// endpointStats accumulates one endpoint's counters: per-status-code
// request counts and a latency histogram.
type endpointStats struct {
	codes   map[int]uint64
	buckets []uint64 // len(latencyBuckets)+1; last is +Inf
	sum     float64
	count   uint64
}

// telemetry is the daemon's metrics surface. The request counters and
// histograms are mutex-guarded (exposition is low-rate and observation is
// one map update per request); the admission-path gauges are atomics so
// rejected requests never contend on the lock.
// phaseStats accumulates one pipeline phase's totals across requests.
type phaseStats struct {
	seconds float64
	spans   uint64
}

type telemetry struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	phases    map[string]*phaseStats
	// coalesced counts whole requests answered from a concurrent leader's
	// execution, per endpoint (the request-level half of coalesced_total).
	coalesced map[string]uint64

	inFlight  atomic.Int64
	queued    atomic.Int64
	queueFull atomic.Uint64
	// writeErrors counts response bodies that failed mid-write (almost
	// always a client that hung up after the header went out).
	writeErrors atomic.Uint64
	// serviceEWMA holds math.Float64bits of the exponentially weighted
	// moving average of successful request service seconds; it feeds the
	// Retry-After derivation. Zero means "no observation yet".
	serviceEWMA atomic.Uint64
}

func newTelemetry() *telemetry {
	return &telemetry{
		endpoints: map[string]*endpointStats{},
		phases:    map[string]*phaseStats{},
		coalesced: map[string]uint64{},
	}
}

// observeService folds one successful request's service time into the
// EWMA behind Retry-After. The 0.8/0.2 split keeps the estimate stable
// under jitter while still tracking a real shift within a few requests.
func (t *telemetry) observeService(seconds float64) {
	for {
		old := t.serviceEWMA.Load()
		cur := math.Float64frombits(old)
		next := seconds
		if old != 0 {
			next = 0.8*cur + 0.2*seconds
		}
		if t.serviceEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// recentServiceSeconds reports the EWMA of successful service times, zero
// before any request completed.
func (t *telemetry) recentServiceSeconds() float64 {
	return math.Float64frombits(t.serviceEWMA.Load())
}

// observeCoalesced counts one request answered by adoption.
func (t *telemetry) observeCoalesced(endpoint string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.coalesced[endpoint]++
}

// coalescedSnapshot copies the per-endpoint request-coalescing counters
// for the exposition (the server merges them with the file-level count
// into one family).
func (t *telemetry) coalescedSnapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.coalesced))
	for k, v := range t.coalesced {
		out[k] = v
	}
	return out
}

// observePhases folds one finished request's per-phase busy totals into the
// daemon-lifetime counters. Phase names come from the trace layer's bounded
// taxonomy, so the label cardinality stays fixed no matter what trees
// clients send.
func (t *telemetry) observePhases(totals []trace.PhaseTotal) {
	if len(totals) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, pt := range totals {
		ps := t.phases[pt.Phase]
		if ps == nil {
			ps = &phaseStats{}
			t.phases[pt.Phase] = ps
		}
		ps.seconds += pt.Seconds
		ps.spans += uint64(pt.Count)
	}
}

// observe records one finished request.
func (t *telemetry) observe(endpoint string, code int, seconds float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	es := t.endpoints[endpoint]
	if es == nil {
		es = &endpointStats{codes: map[int]uint64{}, buckets: make([]uint64, len(latencyBuckets)+1)}
		t.endpoints[endpoint] = es
	}
	es.codes[code]++
	es.sum += seconds
	es.count++
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if seconds <= latencyBuckets[i] {
			break
		}
	}
	es.buckets[i]++
}

// write renders the Prometheus text exposition format, deterministically
// ordered so scrapes (and tests) are stable.
func (t *telemetry) write(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()

	names := make([]string, 0, len(t.endpoints))
	for n := range t.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Fprintln(w, "# HELP secmetricd_requests_total Requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE secmetricd_requests_total counter")
	for _, n := range names {
		es := t.endpoints[n]
		codes := make([]int, 0, len(es.codes))
		for c := range es.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "secmetricd_requests_total{endpoint=%q,code=\"%d\"} %d\n", n, c, es.codes[c])
		}
	}

	fmt.Fprintln(w, "# HELP secmetricd_request_duration_seconds Request latency, by endpoint.")
	fmt.Fprintln(w, "# TYPE secmetricd_request_duration_seconds histogram")
	for _, n := range names {
		es := t.endpoints[n]
		cum := uint64(0)
		for i, le := range latencyBuckets {
			cum += es.buckets[i]
			fmt.Fprintf(w, "secmetricd_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", n, le, cum)
		}
		cum += es.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "secmetricd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "secmetricd_request_duration_seconds_sum{endpoint=%q} %g\n", n, es.sum)
		fmt.Fprintf(w, "secmetricd_request_duration_seconds_count{endpoint=%q} %d\n", n, es.count)
	}

	phaseNames := make([]string, 0, len(t.phases))
	for n := range t.phases {
		phaseNames = append(phaseNames, n)
	}
	sort.Strings(phaseNames)
	fmt.Fprintln(w, "# HELP secmetricd_phase_seconds_total Busy seconds spent in each pipeline phase, summed over requests.")
	fmt.Fprintln(w, "# TYPE secmetricd_phase_seconds_total counter")
	for _, n := range phaseNames {
		fmt.Fprintf(w, "secmetricd_phase_seconds_total{phase=%q} %g\n", n, t.phases[n].seconds)
	}
	fmt.Fprintln(w, "# HELP secmetricd_phase_spans_total Spans recorded per pipeline phase.")
	fmt.Fprintln(w, "# TYPE secmetricd_phase_spans_total counter")
	for _, n := range phaseNames {
		fmt.Fprintf(w, "secmetricd_phase_spans_total{phase=%q} %d\n", n, t.phases[n].spans)
	}

	fmt.Fprintln(w, "# HELP secmetricd_in_flight_requests Requests currently holding a worker slot.")
	fmt.Fprintln(w, "# TYPE secmetricd_in_flight_requests gauge")
	fmt.Fprintf(w, "secmetricd_in_flight_requests %d\n", t.inFlight.Load())

	fmt.Fprintln(w, "# HELP secmetricd_queued_requests Admitted requests (running plus waiting for a slot).")
	fmt.Fprintln(w, "# TYPE secmetricd_queued_requests gauge")
	fmt.Fprintf(w, "secmetricd_queued_requests %d\n", t.queued.Load())

	fmt.Fprintln(w, "# HELP secmetricd_rejected_total Requests rejected at admission.")
	fmt.Fprintln(w, "# TYPE secmetricd_rejected_total counter")
	fmt.Fprintf(w, "secmetricd_rejected_total{reason=\"queue_full\"} %d\n", t.queueFull.Load())

	fmt.Fprintln(w, "# HELP secmetricd_response_write_errors_total Response bodies that failed mid-write (client gone after the header was sent).")
	fmt.Fprintln(w, "# TYPE secmetricd_response_write_errors_total counter")
	fmt.Fprintf(w, "secmetricd_response_write_errors_total %d\n", t.writeErrors.Load())
}
