package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/pkg/api"
)

// TestOversizedBodyReturns413 posts a tree larger than the configured body
// cap and expects the typed 413 instead of a hung read or a generic 400.
func TestOversizedBodyReturns413(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 1, MaxBodyBytes: 4 << 10})

	big := api.Tree{Name: "big", Files: []api.File{
		{Path: "main.mc", Content: "int main(void) { return 0; } // " + strings.Repeat("x", 8<<10)},
	}}
	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: big})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
	var we api.Error
	if err := json.Unmarshal(data, &we); err != nil || we.Code != api.CodeBodyTooLarge {
		t.Fatalf("envelope = %s (err %v)", data, err)
	}

	// A body under the cap still goes through on the same server.
	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(0)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after 413: status %d: %s", resp.StatusCode, data)
	}
}

// TestTraceFlagJoinsSummary is the opt-in contract: a request with
// trace=true gets a span summary on its diagnostics, and one without stays
// byte-free of any "trace" key.
func TestTraceFlagJoinsSummary(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced: status %d: %s", resp.StatusCode, data)
	}
	if strings.Contains(string(data), `"trace"`) {
		t.Fatal("untraced response carries a trace key")
	}

	resp, data = postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(4), Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced: status %d: %s", resp.StatusCode, data)
	}
	var sr api.ScoreResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Diagnostics == nil || sr.Diagnostics.Trace == nil {
		t.Fatalf("traced response missing span summary: %s", data)
	}
	sum := sr.Diagnostics.Trace
	if sum.WallSeconds <= 0 || sum.Spans < 3 {
		t.Fatalf("summary = %+v", sum)
	}
	phases := map[string]bool{}
	for _, p := range sum.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"request", "score", "extract", "file"} {
		if !phases[want] {
			t.Errorf("summary missing phase %q (have %v)", want, sum.Phases)
		}
	}

	// Compare joins the summary onto the new version's diagnostics.
	resp, data = postJSON(t, ts.URL+"/v1/compare", api.CompareRequest{Old: wireTree(1), New: wireTree(2), Trace: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare traced: status %d: %s", resp.StatusCode, data)
	}
	var cr api.CompareResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.NewDiagnostics == nil || cr.NewDiagnostics.Trace == nil {
		t.Fatal("compare traced response missing span summary on new diagnostics")
	}
	if cr.OldDiagnostics != nil && cr.OldDiagnostics.Trace != nil {
		t.Fatal("compare summary duplicated onto old diagnostics")
	}
}

// TestPhaseMetricsGrow asserts the per-phase busy counters appear in the
// exposition after traffic, traced or not — the daemon records phases for
// every admitted request.
func TestPhaseMetricsGrow(t *testing.T) {
	mA, _ := getModels(t)
	reg := NewRegistry("", nil)
	reg.Register("default", mA)
	_, ts := newTestServer(t, reg, Config{Workers: 2})

	resp, data := postJSON(t, ts.URL+"/v1/score", api.ScoreRequest{Tree: wireTree(5)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	text := getMetrics(t, ts.URL)
	for _, phase := range []string{"request", "score", "extract", "file"} {
		want := fmt.Sprintf("secmetricd_phase_seconds_total{phase=%q}", phase)
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
		want = fmt.Sprintf("secmetricd_phase_spans_total{phase=%q}", phase)
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	if v, ok := sampleValue(text, `secmetricd_phase_spans_total{phase="file"}`); !ok || v < 1 {
		t.Errorf("file span count = %v (present %v), want >= 1", v, ok)
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// sampleValue finds the sample whose name{labels} prefix matches exactly and
// parses its value.
func sampleValue(text, prefix string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, prefix+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
