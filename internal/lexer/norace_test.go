//go:build !race

package lexer

const raceEnabled = false
