package lexer

import (
	"strings"
	"testing"

	"repro/internal/lang"
)

// allocSource mixes every token class the scanner handles, so the
// steady-state assertions exercise the whole hot path.
const allocSource = `#include <stdio.h>
// leading comment
/* block
   comment */
int limit = 0x2a;

int handle(char *dst, int n) {
	char *msg = "copy \"quoted\" text";
	double scale = 1.5e-3;
	if (n >= limit && msg != 0) {
		n = limit << 1;
	}
	return n; // trailing
}
`

// TestTokenizeSteadyStateAllocs pins the zero-alloc contract of the
// extraction hot path: once the destination slices have grown to fit,
// re-tokenizing a file allocates nothing. Tokenize itself stays O(1) per
// file — one slice allocation, independent of token count.
func TestTokenizeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	src := strings.Repeat(allocSource, 8)
	all := TokenizeInto(nil, src, lang.C)
	code := CodeInto(nil, all)
	if len(all) == 0 || len(code) == 0 {
		t.Fatal("fixture produced no tokens")
	}
	allocs := testing.AllocsPerRun(20, func() {
		all = TokenizeInto(all[:0], src, lang.C)
		code = CodeInto(code[:0], all)
	})
	if allocs != 0 {
		t.Errorf("TokenizeInto+CodeInto steady state allocates %v times per file, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(20, func() {
		Tokenize(src, lang.C)
	})
	if allocs > 2 {
		t.Errorf("Tokenize allocates %v times per file, want O(1) (<= 2)", allocs)
	}
}

func BenchmarkTokenizeInto(b *testing.B) {
	src := strings.Repeat(allocSource, 8)
	var buf []Token
	b.ReportAllocs()
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		buf = TokenizeInto(buf[:0], src, lang.C)
	}
}
