// Package lexer is a language-parameterized tokenizer for C-like, Java-like,
// and Python-like source text. It is the shared front end for the metric
// extractors (cyclomatic complexity, Halstead measures, code smells, lint)
// and is resilient to malformed input: it never fails, it only degrades.
package lexer

import (
	"strings"
	"unicode"

	"repro/internal/lang"
)

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String
	Comment
	Operator
	Punct // brackets, braces, separators
	Preproc
	Newline
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case Number:
		return "Number"
	case String:
		return "String"
	case Comment:
		return "Comment"
	case Operator:
		return "Operator"
	case Punct:
		return "Punct"
	case Preproc:
		return "Preproc"
	case Newline:
		return "Newline"
	}
	return "Unknown"
}

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string
	Line int // 1-based line of the token's first character
}

// multi-character operators, longest first within each leading byte.
var multiOps = []string{
	"<<=", ">>=", "...", "->*", "===", "!==",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
	"%=", "&=", "|=", "^=", "<<", ">>", "->", "::", "**", "//",
}

// Lexer tokenizes one source buffer.
type Lexer struct {
	src    string
	syntax lang.Syntax
	pos    int
	line   int
}

// New returns a lexer for src using the lexical rules of language l.
func New(src string, l lang.Language) *Lexer {
	return &Lexer{src: src, syntax: lang.SyntaxOf(l), line: 1}
}

// Tokenize scans src to completion and returns all tokens (excluding EOF).
// Comments and newlines are included so callers can reconstruct line
// structure; filter with Filter if only code tokens are wanted.
func Tokenize(src string, l lang.Language) []Token {
	lx := New(src, l)
	var out []Token
	for {
		t := lx.Next()
		if t.Kind == EOF {
			return out
		}
		out = append(out, t)
	}
}

// Filter returns only the tokens of the given kinds.
func Filter(toks []Token, kinds ...Kind) []Token {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []Token
	for _, t := range toks {
		if want[t.Kind] {
			out = append(out, t)
		}
	}
	return out
}

// Code returns the tokens that participate in program semantics (everything
// except comments and newlines).
func Code(toks []Token) []Token {
	var out []Token
	for _, t := range toks {
		if t.Kind != Comment && t.Kind != Newline {
			out = append(out, t)
		}
	}
	return out
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) startsWith(s string) bool {
	return strings.HasPrefix(lx.src[lx.pos:], s)
}

// Next returns the next token, or an EOF token at the end of input.
func (lx *Lexer) Next() Token {
	// Skip horizontal whitespace (newlines are tokens).
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: lx.line}
	}
	start, startLine := lx.pos, lx.line
	c := lx.src[lx.pos]

	if c == '\n' {
		lx.pos++
		lx.line++
		return Token{Kind: Newline, Text: "\n", Line: startLine}
	}

	// Preprocessor lines (C/C++): '#' at the start of a (logical) line.
	if lx.syntax.Preprocessor != 0 && c == lx.syntax.Preprocessor && lx.atLineStart(start) {
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
			// Handle line continuation.
			if lx.src[lx.pos] == '\\' && lx.peekAt(1) == '\n' {
				lx.pos += 2
				lx.line++
				continue
			}
			lx.pos++
		}
		return Token{Kind: Preproc, Text: lx.src[start:lx.pos], Line: startLine}
	}

	// Line comments.
	for _, lc := range lx.syntax.LineComment {
		if lx.startsWith(lc) {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			return Token{Kind: Comment, Text: lx.src[start:lx.pos], Line: startLine}
		}
	}

	// Block comments.
	if lx.syntax.BlockStart != "" && lx.startsWith(lx.syntax.BlockStart) {
		lx.pos += len(lx.syntax.BlockStart)
		for lx.pos < len(lx.src) && !lx.startsWith(lx.syntax.BlockEnd) {
			if lx.src[lx.pos] == '\n' {
				lx.line++
			}
			lx.pos++
		}
		if lx.pos < len(lx.src) {
			lx.pos += len(lx.syntax.BlockEnd)
		}
		return Token{Kind: Comment, Text: lx.src[start:lx.pos], Line: startLine}
	}

	// Triple-quoted strings (Python).
	if lx.syntax.RawTripleQuote && (lx.startsWith(`"""`) || lx.startsWith("'''")) {
		quote := lx.src[lx.pos : lx.pos+3]
		lx.pos += 3
		for lx.pos < len(lx.src) && !lx.startsWith(quote) {
			if lx.src[lx.pos] == '\n' {
				lx.line++
			}
			lx.pos++
		}
		if lx.pos < len(lx.src) {
			lx.pos += 3
		}
		return Token{Kind: String, Text: lx.src[start:lx.pos], Line: startLine}
	}

	// Quoted strings/chars.
	for _, q := range lx.syntax.StringQuotes {
		if c == q {
			lx.pos++
			for lx.pos < len(lx.src) {
				ch := lx.src[lx.pos]
				if ch == '\\' && lx.pos+1 < len(lx.src) {
					lx.pos += 2
					continue
				}
				if ch == '\n' { // unterminated: stop at line end
					break
				}
				lx.pos++
				if ch == q {
					break
				}
			}
			return Token{Kind: String, Text: lx.src[start:lx.pos], Line: startLine}
		}
	}

	// Numbers: ints, floats, hex, exponents, suffixes.
	if isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))) {
		lx.pos++
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isDigit(ch) || isAlpha(ch) || ch == '.' || ch == '_' {
				lx.pos++
				continue
			}
			// Exponent sign: 1e-5
			if (ch == '+' || ch == '-') && lx.pos > start {
				prev := lx.src[lx.pos-1]
				if prev == 'e' || prev == 'E' {
					lx.pos++
					continue
				}
			}
			break
		}
		return Token{Kind: Number, Text: lx.src[start:lx.pos], Line: startLine}
	}

	// Identifiers and keywords.
	if isAlpha(c) || c == '_' {
		lx.pos++
		for lx.pos < len(lx.src) && (isAlnum(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		kind := Ident
		if lx.syntax.Keywords[text] {
			kind = Keyword
		}
		return Token{Kind: kind, Text: text, Line: startLine}
	}

	// Multi-character operators. Skip "//" which would have been a comment
	// already for C-family; for Python "//" is floor division and there is no
	// "//" line comment, so this is safe either way.
	for _, op := range multiOps {
		if lx.startsWith(op) {
			lx.pos += len(op)
			return Token{Kind: Operator, Text: op, Line: startLine}
		}
	}

	// Single-character punctuation vs. operator.
	lx.pos++
	text := string(c)
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', ':':
		return Token{Kind: Punct, Text: text, Line: startLine}
	default:
		return Token{Kind: Operator, Text: text, Line: startLine}
	}
}

// atLineStart reports whether only whitespace precedes position p on its line.
func (lx *Lexer) atLineStart(p int) bool {
	for i := p - 1; i >= 0; i-- {
		switch lx.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80 && unicode.IsLetter(rune(c))
}

func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
