// Package lexer is a language-parameterized tokenizer for C-like, Java-like,
// and Python-like source text. It is the shared front end for the metric
// extractors (cyclomatic complexity, Halstead measures, code smells, lint)
// and is resilient to malformed input: it never fails, it only degrades.
//
// Tokens are index pairs into the shared source buffer rather than owned
// substrings: a Token is 32 bytes, carries no per-token allocation, and
// materializes its text lazily through Text(). The steady-state tokenize
// path (TokenizeInto over a reused buffer) performs zero allocations.
package lexer

import (
	"strings"
	"unicode"

	"repro/internal/lang"
)

// Kind classifies a token.
type Kind int32

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Keyword
	Number
	String
	Comment
	Operator
	Punct // brackets, braces, separators
	Preproc
	Newline

	numKinds
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "EOF"
	case Ident:
		return "Ident"
	case Keyword:
		return "Keyword"
	case Number:
		return "Number"
	case String:
		return "String"
	case Comment:
		return "Comment"
	case Operator:
		return "Operator"
	case Punct:
		return "Punct"
	case Preproc:
		return "Preproc"
	case Newline:
		return "Newline"
	}
	return "Unknown"
}

// Token is one lexical unit: a [Start, End) byte range into the source
// buffer it was scanned from. Text is materialized on demand; tokens built
// without a source buffer (synthetic EOF markers) yield "".
type Token struct {
	src   string
	Start int32
	End   int32
	Line  int32 // 1-based line of the token's first character
	Kind  Kind
}

// Text returns the token's source text as a zero-copy slice of the buffer
// it was scanned from.
func (t Token) Text() string {
	if t.src == "" {
		return ""
	}
	return t.src[t.Start:t.End]
}

// Len returns the token's length in bytes without materializing the text.
func (t Token) Len() int { return int(t.End - t.Start) }

// multi-character operators, longest first within each leading byte.
var multiOps = []string{
	"<<=", ">>=", "...", "->*", "===", "!==",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
	"%=", "&=", "|=", "^=", "<<", ">>", "->", "::", "**", "//",
}

// Lexer tokenizes one source buffer.
type Lexer struct {
	src    string
	syntax lang.Syntax
	pos    int
	line   int32
}

// New returns a lexer for src using the lexical rules of language l.
func New(src string, l lang.Language) *Lexer {
	return &Lexer{src: src, syntax: lang.SyntaxOf(l), line: 1}
}

// tokensPerByte is the preallocation density estimate: one token per three
// source bytes comfortably covers dense C-family punctuation.
const tokensPerByte = 3

// Tokenize scans src to completion and returns all tokens (excluding EOF).
// Comments and newlines are included so callers can reconstruct line
// structure; filter with Filter if only code tokens are wanted.
func Tokenize(src string, l lang.Language) []Token {
	return TokenizeInto(make([]Token, 0, len(src)/tokensPerByte+8), src, l)
}

// TokenizeInto appends all of src's tokens (excluding EOF) to dst and
// returns the extended slice. Callers that reuse dst across files — resetting
// with dst[:0] — tokenize with zero steady-state allocations.
func TokenizeInto(dst []Token, src string, l lang.Language) []Token {
	lx := New(src, l)
	for {
		t := lx.Next()
		if t.Kind == EOF {
			return dst
		}
		dst = append(dst, t)
	}
}

// kindMask packs token kinds into a bitmask (all kinds fit in a uint32).
func kindMask(kinds ...Kind) uint32 {
	var mask uint32
	for _, k := range kinds {
		mask |= 1 << uint32(k)
	}
	return mask
}

// Filter returns only the tokens of the given kinds.
func Filter(toks []Token, kinds ...Kind) []Token {
	mask := kindMask(kinds...)
	var out []Token
	for _, t := range toks {
		if mask&(1<<uint32(t.Kind)) != 0 {
			if out == nil {
				out = make([]Token, 0, len(toks))
			}
			out = append(out, t)
		}
	}
	return out
}

// codeMask drops comments and newlines.
const codeMask = ^uint32(1<<uint32(Comment) | 1<<uint32(Newline))

// Code returns the tokens that participate in program semantics (everything
// except comments and newlines).
func Code(toks []Token) []Token {
	var out []Token
	for _, t := range toks {
		if codeMask&(1<<uint32(t.Kind)) != 0 {
			if out == nil {
				out = make([]Token, 0, len(toks))
			}
			out = append(out, t)
		}
	}
	return out
}

// CodeInto appends the semantic tokens of toks to dst and returns the
// extended slice; reuse dst[:0] across files for zero-alloc filtering.
func CodeInto(dst, toks []Token) []Token {
	for _, t := range toks {
		if codeMask&(1<<uint32(t.Kind)) != 0 {
			dst = append(dst, t)
		}
	}
	return dst
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) startsWith(s string) bool {
	return strings.HasPrefix(lx.src[lx.pos:], s)
}

// tok builds a token spanning [start, lx.pos) on startLine.
func (lx *Lexer) tok(k Kind, start int, startLine int32) Token {
	return Token{src: lx.src, Kind: k, Start: int32(start), End: int32(lx.pos), Line: startLine}
}

// Next returns the next token, or an EOF token at the end of input.
func (lx *Lexer) Next() Token {
	// Skip horizontal whitespace (newlines are tokens).
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return Token{src: lx.src, Start: int32(lx.pos), End: int32(lx.pos), Kind: EOF, Line: lx.line}
	}
	start, startLine := lx.pos, lx.line
	c := lx.src[lx.pos]

	if c == '\n' {
		lx.pos++
		lx.line++
		return lx.tok(Newline, start, startLine)
	}

	// Preprocessor lines (C/C++): '#' at the start of a (logical) line.
	if lx.syntax.Preprocessor != 0 && c == lx.syntax.Preprocessor && lx.atLineStart(start) {
		for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
			// Handle line continuation.
			if lx.src[lx.pos] == '\\' && lx.peekAt(1) == '\n' {
				lx.pos += 2
				lx.line++
				continue
			}
			lx.pos++
		}
		return lx.tok(Preproc, start, startLine)
	}

	// Line comments.
	for _, lc := range lx.syntax.LineComment {
		if lx.startsWith(lc) {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			return lx.tok(Comment, start, startLine)
		}
	}

	// Block comments.
	if lx.syntax.BlockStart != "" && lx.startsWith(lx.syntax.BlockStart) {
		lx.pos += len(lx.syntax.BlockStart)
		for lx.pos < len(lx.src) && !lx.startsWith(lx.syntax.BlockEnd) {
			if lx.src[lx.pos] == '\n' {
				lx.line++
			}
			lx.pos++
		}
		if lx.pos < len(lx.src) {
			lx.pos += len(lx.syntax.BlockEnd)
		}
		return lx.tok(Comment, start, startLine)
	}

	// Triple-quoted strings (Python).
	if lx.syntax.RawTripleQuote && (lx.startsWith(`"""`) || lx.startsWith("'''")) {
		quote := lx.src[lx.pos : lx.pos+3]
		lx.pos += 3
		for lx.pos < len(lx.src) && !lx.startsWith(quote) {
			if lx.src[lx.pos] == '\n' {
				lx.line++
			}
			lx.pos++
		}
		if lx.pos < len(lx.src) {
			lx.pos += 3
		}
		return lx.tok(String, start, startLine)
	}

	// Quoted strings/chars.
	for _, q := range lx.syntax.StringQuotes {
		if c == q {
			lx.pos++
			for lx.pos < len(lx.src) {
				ch := lx.src[lx.pos]
				if ch == '\\' && lx.pos+1 < len(lx.src) {
					lx.pos += 2
					continue
				}
				if ch == '\n' { // unterminated: stop at line end
					break
				}
				lx.pos++
				if ch == q {
					break
				}
			}
			return lx.tok(String, start, startLine)
		}
	}

	// Numbers: ints, floats, hex, exponents, suffixes.
	if isDigit(c) || (c == '.' && isDigit(lx.peekAt(1))) {
		lx.pos++
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isDigit(ch) || isAlpha(ch) || ch == '.' || ch == '_' {
				lx.pos++
				continue
			}
			// Exponent sign: 1e-5
			if (ch == '+' || ch == '-') && lx.pos > start {
				prev := lx.src[lx.pos-1]
				if prev == 'e' || prev == 'E' {
					lx.pos++
					continue
				}
			}
			break
		}
		return lx.tok(Number, start, startLine)
	}

	// Identifiers and keywords.
	if isAlpha(c) || c == '_' {
		lx.pos++
		for lx.pos < len(lx.src) && (isAlnum(lx.src[lx.pos]) || lx.src[lx.pos] == '_') {
			lx.pos++
		}
		kind := Ident
		if lx.syntax.Keywords[lx.src[start:lx.pos]] {
			kind = Keyword
		}
		return lx.tok(kind, start, startLine)
	}

	// Multi-character operators. Skip "//" which would have been a comment
	// already for C-family; for Python "//" is floor division and there is no
	// "//" line comment, so this is safe either way.
	for _, op := range multiOps {
		if lx.startsWith(op) {
			lx.pos += len(op)
			return lx.tok(Operator, start, startLine)
		}
	}

	// Single-character punctuation vs. operator.
	lx.pos++
	switch c {
	case '(', ')', '[', ']', '{', '}', ',', ';', ':':
		return lx.tok(Punct, start, startLine)
	default:
		return lx.tok(Operator, start, startLine)
	}
}

// atLineStart reports whether only whitespace precedes position p on its line.
func (lx *Lexer) atLineStart(p int) bool {
	for i := p - 1; i >= 0; i-- {
		switch lx.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80 && unicode.IsLetter(rune(c))
}

func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
