package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/stats"
)

func kindsOf(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func textsOf(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text()
	}
	return out
}

func TestTokenizeSimpleC(t *testing.T) {
	src := "int main(void) { return 0; }"
	toks := Tokenize(src, lang.C)
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "int"}, {Ident, "main"}, {Punct, "("}, {Keyword, "void"},
		{Punct, ")"}, {Punct, "{"}, {Keyword, "return"}, {Number, "0"},
		{Punct, ";"}, {Punct, "}"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v", len(toks), textsOf(toks))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text() != w.text {
			t.Fatalf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text(), w.kind, w.text)
		}
	}
}

func TestLineComments(t *testing.T) {
	toks := Tokenize("x = 1; // trailing\ny = 2;", lang.C)
	comments := Filter(toks, Comment)
	if len(comments) != 1 || !strings.HasPrefix(comments[0].Text(), "//") {
		t.Fatalf("comments = %v", textsOf(comments))
	}
	if comments[0].Line != 1 {
		t.Fatalf("comment line = %d", comments[0].Line)
	}
}

func TestBlockCommentsSpanLines(t *testing.T) {
	src := "a /* one\ntwo\nthree */ b"
	toks := Tokenize(src, lang.C)
	if len(Filter(toks, Comment)) != 1 {
		t.Fatalf("tokens = %v", textsOf(toks))
	}
	idents := Filter(toks, Ident)
	if len(idents) != 2 || idents[1].Line != 3 {
		t.Fatalf("line tracking broken: %+v", idents)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	toks := Tokenize("x /* never closed", lang.C)
	if len(toks) != 2 || toks[1].Kind != Comment {
		t.Fatalf("tokens = %v", kindsOf(toks))
	}
}

func TestPythonComments(t *testing.T) {
	toks := Tokenize("x = 1  # comment\n", lang.Python)
	if len(Filter(toks, Comment)) != 1 {
		t.Fatalf("tokens = %v", textsOf(toks))
	}
	// '#' must NOT be a preprocessor directive in Python.
	if len(Filter(toks, Preproc)) != 0 {
		t.Fatal("python # treated as preprocessor")
	}
}

func TestCPreprocessor(t *testing.T) {
	src := "#include <stdio.h>\nint x;\n  #define A 1\n"
	toks := Tokenize(src, lang.C)
	pps := Filter(toks, Preproc)
	if len(pps) != 2 {
		t.Fatalf("preproc tokens = %v", textsOf(pps))
	}
	// '#' mid-line is not preprocessor.
	toks = Tokenize("int a; # stray", lang.C)
	if len(Filter(toks, Preproc)) != 0 {
		t.Fatal("mid-line # treated as preprocessor")
	}
}

func TestPreprocessorContinuation(t *testing.T) {
	src := "#define MAX(a,b) \\\n ((a)>(b)?(a):(b))\nint y;"
	toks := Tokenize(src, lang.C)
	pps := Filter(toks, Preproc)
	if len(pps) != 1 {
		t.Fatalf("continuation broken: %v", textsOf(pps))
	}
	idents := Filter(toks, Ident)
	if len(idents) != 1 || idents[0].Text() != "y" || idents[0].Line != 3 {
		t.Fatalf("line count after continuation: %+v", idents)
	}
}

func TestStringsWithEscapes(t *testing.T) {
	toks := Tokenize(`printf("a \"quoted\" string");`, lang.C)
	strs := Filter(toks, String)
	if len(strs) != 1 || !strings.Contains(strs[0].Text(), `\"quoted\"`) {
		t.Fatalf("strings = %v", textsOf(strs))
	}
}

func TestCharLiteral(t *testing.T) {
	toks := Tokenize(`char c = 'x'; char nl = '\n';`, lang.C)
	strs := Filter(toks, String)
	if len(strs) != 2 {
		t.Fatalf("char literals = %v", textsOf(strs))
	}
}

func TestStringWithCommentInside(t *testing.T) {
	toks := Tokenize(`s = "not // a comment /* either */";`, lang.C)
	if len(Filter(toks, Comment)) != 0 {
		t.Fatal("comment found inside string")
	}
}

func TestUnterminatedStringStopsAtNewline(t *testing.T) {
	toks := Tokenize("s = \"unterminated\nnext_line", lang.C)
	idents := Filter(toks, Ident)
	found := false
	for _, tok := range idents {
		if tok.Text() == "next_line" {
			found = true
		}
	}
	if !found {
		t.Fatalf("lexer consumed past unterminated string: %v", textsOf(toks))
	}
}

func TestTripleQuotedPython(t *testing.T) {
	src := "x = \"\"\"multi\nline\ndoc\"\"\"\ny = 1"
	toks := Tokenize(src, lang.Python)
	strs := Filter(toks, String)
	if len(strs) != 1 || !strings.Contains(strs[0].Text(), "multi\nline") {
		t.Fatalf("triple quote broken: %v", textsOf(strs))
	}
	for _, tok := range toks {
		if tok.Text() == "y" && tok.Line != 4 {
			t.Fatalf("line after triple quote = %d, want 4", tok.Line)
		}
	}
}

func TestNumbers(t *testing.T) {
	src := "a = 42 + 0x1F + 3.14 + 1e-5 + 100UL;"
	toks := Tokenize(src, lang.C)
	nums := Filter(toks, Number)
	want := []string{"42", "0x1F", "3.14", "1e-5", "100UL"}
	if len(nums) != len(want) {
		t.Fatalf("numbers = %v, want %v", textsOf(nums), want)
	}
	for i, w := range want {
		if nums[i].Text() != w {
			t.Fatalf("number %d = %q, want %q", i, nums[i].Text(), w)
		}
	}
}

func TestMultiCharOperators(t *testing.T) {
	src := "if (a == b && c != d || e <= f) x += 1; p->q; y <<= 2;"
	toks := Tokenize(src, lang.C)
	ops := map[string]bool{}
	for _, tok := range Filter(toks, Operator) {
		ops[tok.Text()] = true
	}
	for _, want := range []string{"==", "&&", "!=", "||", "<=", "+=", "->", "<<="} {
		if !ops[want] {
			t.Errorf("operator %q not tokenized; got %v", want, ops)
		}
	}
}

func TestPythonFloorDivIsOperator(t *testing.T) {
	toks := Tokenize("q = a // b", lang.Python)
	// Python has no // comment, so // must lex as an operator.
	if len(Filter(toks, Comment)) != 0 {
		t.Fatal("python // lexed as comment")
	}
	found := false
	for _, tok := range Filter(toks, Operator) {
		if tok.Text() == "//" {
			found = true
		}
	}
	if !found {
		t.Fatalf("python // missing: %v", textsOf(toks))
	}
}

func TestKeywordsPerLanguage(t *testing.T) {
	toks := Tokenize("class Foo {}", lang.Java)
	if toks[0].Kind != Keyword {
		t.Fatal("java class not keyword")
	}
	toks = Tokenize("class Foo;", lang.C)
	if toks[0].Kind != Ident {
		t.Fatal("C class should be ident")
	}
}

func TestNewlineTokens(t *testing.T) {
	toks := Tokenize("a\nb\n", lang.C)
	nl := Filter(toks, Newline)
	if len(nl) != 2 {
		t.Fatalf("newlines = %d", len(nl))
	}
	code := Code(toks)
	if len(code) != 2 {
		t.Fatalf("Code() = %v", textsOf(code))
	}
}

func TestEmptyAndWhitespaceOnly(t *testing.T) {
	if toks := Tokenize("", lang.C); len(toks) != 0 {
		t.Fatalf("empty input produced %v", toks)
	}
	toks := Tokenize("   \t  ", lang.C)
	if len(toks) != 0 {
		t.Fatalf("whitespace produced %v", toks)
	}
}

// Property: the lexer terminates and every token has valid line numbers, for
// arbitrary byte soup in every language.
func TestLexerRobustness(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(200)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.Intn(128))
		}
		for _, l := range lang.All() {
			toks := Tokenize(string(buf), l)
			lines := 1 + strings.Count(string(buf), "\n")
			prevLine := 1
			for _, tok := range toks {
				if int(tok.Line) < prevLine || int(tok.Line) > lines {
					return false
				}
				prevLine = int(tok.Line)
				if tok.Kind != Newline && tok.Kind != EOF && tok.Text() == "" {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: concatenating token texts (plus whitespace) never loses code
// identifiers — tokenizing twice is deterministic.
func TestLexerDeterministic(t *testing.T) {
	src := "int f(int x) { return x * 2; } // done"
	a := Tokenize(src, lang.C)
	b := Tokenize(src, lang.C)
	if len(a) != len(b) {
		t.Fatal("nondeterministic token count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("token %d differs", i)
		}
	}
}
