package interp

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/langgen"
	"repro/internal/minic"
	"repro/internal/stats"
)

// Property: Optimize preserves semantics — for generated programs and
// sampled inputs, the interpreter returns identical results (and identical
// completion status) before and after optimization. This ties the
// generator, parser, lowerer, optimizer, and interpreter together in one
// differential test.
func TestOptimizePreservesSemantics(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		spec := langgen.DefaultSpec()
		spec.Seed = seed
		spec.Files = 2
		spec.VulnDensity = 0 // keep runs deterministic and source-free
		tree := langgen.Generate(spec)
		for _, file := range tree.Files {
			ast, err := minic.Parse(file.Content)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			plain, err := ir.Lower(ast)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			optimized, err := ir.Lower(ast)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			ir.OptimizeProgram(optimized)

			rng := stats.NewRNG(seed * 7793)
			for _, fn := range plain.Funcs {
				for trial := 0; trial < 5; trial++ {
					inputs := make([]int64, 12)
					for i := range inputs {
						inputs[i] = int64(rng.IntRange(-100, 100))
					}
					cfgA := DefaultConfig()
					cfgA.Inputs = append([]int64(nil), inputs...)
					cfgA.MaxSteps = 30000
					cfgB := DefaultConfig()
					cfgB.Inputs = append([]int64(nil), inputs...)
					cfgB.MaxSteps = 30000

					a, err := Run(plain, fn.Name, cfgA)
					if err != nil {
						t.Fatalf("seed %d %s: %v", seed, fn.Name, err)
					}
					b, err := Run(optimized, fn.Name, cfgB)
					if err != nil {
						t.Fatalf("seed %d %s (optimized): %v", seed, fn.Name, err)
					}
					if a.Returned != b.Returned {
						t.Fatalf("seed %d %s inputs %v: completion differs (%v vs %v)",
							seed, fn.Name, inputs, a.Returned, b.Returned)
					}
					if a.Returned && a.ReturnValue != b.ReturnValue {
						t.Fatalf("seed %d %s inputs %v: %d != %d after optimization",
							seed, fn.Name, inputs, a.ReturnValue, b.ReturnValue)
					}
				}
			}
		}
	}
}

// Property: the symbolic executor's feasible-path set never grows under
// optimization is NOT guaranteed (merging blocks can change path counts),
// but execution must still terminate and find at least one path.
func TestOptimizedProgramsStillExplore(t *testing.T) {
	spec := langgen.DefaultSpec()
	spec.Seed = 99
	tree := langgen.Generate(spec)
	ast, err := minic.Parse(tree.Files[0].Content)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Lower(ast)
	if err != nil {
		t.Fatal(err)
	}
	ir.OptimizeProgram(prog)
	for _, fn := range prog.Funcs {
		tr, err := Run(prog, fn.Name, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if tr.Steps == 0 && len(tr.Blocks) == 0 {
			t.Fatalf("%s: optimized function did not execute", fn.Name)
		}
	}
}
