// Package interp is a concrete interpreter for the IR with execution
// tracing — the dynamic-analysis substrate for §5.3's "one potential
// improvement is to collect dynamic traces; dynamic properties of a program
// may further yield additional insights or accuracy". Programs run on
// sampled inputs; the traces aggregate into branch/block coverage and
// path-diversity features, and runtime anomalies (division by zero,
// negative indices, budget exhaustion) surface as signals.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/stats"
)

// Config bounds one execution.
type Config struct {
	// MaxSteps caps executed instructions (guards infinite loops).
	MaxSteps int
	// Inputs supplies values for parameters and source-function results,
	// consumed in order; when exhausted, ExternalValue supplies the rest.
	Inputs []int64
	// ExternalValue produces results for external calls once Inputs runs
	// dry. The call index is passed for deterministic variation.
	ExternalValue func(name string, callIndex int) int64
	// Sources are treated as input-consuming functions; other external
	// calls return ExternalValue but do not consume Inputs.
	Sources map[string]bool
}

// DefaultConfig mirrors the symbolic executor's conventions.
func DefaultConfig() Config {
	return Config{
		MaxSteps: 100000,
		ExternalValue: func(name string, callIndex int) int64 {
			return int64(callIndex%7) * 3 // arbitrary but deterministic
		},
		Sources: map[string]bool{
			"read_input": true, "recv": true, "read": true, "getenv": true,
			"fgets": true, "scanf": true,
		},
	}
}

// Anomaly is a runtime event worth flagging.
type Anomaly struct {
	Kind string // "div-by-zero", "mod-by-zero", "negative-index", "steps-exhausted"
	Line int
}

// Trace records one execution.
type Trace struct {
	// Blocks is the executed block-name sequence (capped at 4096 entries).
	Blocks []string
	// BlockCounts maps block name to execution count.
	BlockCounts map[string]int
	// BranchOutcomes maps block name to [falseTaken, trueTaken] counts for
	// blocks ending in a conditional branch.
	BranchOutcomes map[string]*[2]int
	Steps          int
	Calls          int
	Returned       bool
	ReturnValue    int64
	Anomalies      []Anomaly
}

// PathSignature is a compact hash of the block sequence, used to count
// distinct executed paths.
func (t *Trace) PathSignature() uint64 {
	h := uint64(14695981039346656037)
	for _, b := range t.Blocks {
		for i := 0; i < len(b); i++ {
			h ^= uint64(b[i])
			h *= 1099511628211
		}
		h ^= '/'
		h *= 1099511628211
	}
	return h
}

// machine executes one function activation tree.
type machine struct {
	prog      *ir.Program
	cfg       Config
	trace     *Trace
	inputPos  int
	callIndex int
	globals   map[string]int64
	arrays    map[string]map[int64]int64
}

// Run executes fn with the given configuration. Parameters consume Inputs
// first. The error is non-nil only for structural problems (unknown
// function); runtime anomalies are recorded in the trace instead.
func Run(prog *ir.Program, fnName string, cfg Config) (*Trace, error) {
	fn, ok := prog.FuncByName(fnName)
	if !ok {
		return nil, fmt.Errorf("interp: unknown function %q", fnName)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 100000
	}
	if cfg.ExternalValue == nil {
		cfg.ExternalValue = DefaultConfig().ExternalValue
	}
	m := &machine{
		prog: prog,
		cfg:  cfg,
		trace: &Trace{
			BlockCounts:    map[string]int{},
			BranchOutcomes: map[string]*[2]int{},
		},
		globals: map[string]int64{},
		arrays:  map[string]map[int64]int64{},
	}
	args := make([]int64, len(fn.Params))
	for i := range args {
		args[i] = m.nextInput()
	}
	ret, completed := m.call(fn, args, 0)
	m.trace.Returned = completed
	m.trace.ReturnValue = ret
	return m.trace, nil
}

func (m *machine) nextInput() int64 {
	if m.inputPos < len(m.cfg.Inputs) {
		v := m.cfg.Inputs[m.inputPos]
		m.inputPos++
		return v
	}
	m.callIndex++
	return m.cfg.ExternalValue("<input>", m.callIndex)
}

// call executes one activation; returns (value, completedNormally).
func (m *machine) call(fn *ir.Func, args []int64, depth int) (int64, bool) {
	if depth > 64 {
		m.anomaly("recursion-depth", 0)
		return 0, false
	}
	env := map[string]int64{}
	for i, p := range fn.Params {
		if i < len(args) {
			env[p] = args[i]
		}
	}
	block := fn.Entry()
	for {
		// Each block entry costs one step, so empty-body loops (while(1){})
		// still exhaust the budget.
		m.trace.Steps++
		if m.trace.Steps > m.cfg.MaxSteps {
			m.anomaly("steps-exhausted", 0)
			return 0, false
		}
		if len(m.trace.Blocks) < 4096 {
			m.trace.Blocks = append(m.trace.Blocks, block.Name)
		}
		m.trace.BlockCounts[block.Name]++
		for _, in := range block.Instrs {
			m.trace.Steps++
			if m.trace.Steps > m.cfg.MaxSteps {
				m.anomaly("steps-exhausted", in.SrcLine())
				return 0, false
			}
			if !m.step(in, env, depth) {
				return 0, false
			}
		}
		switch term := block.Term.(type) {
		case *ir.Ret:
			if term.Value == nil {
				return 0, true
			}
			return m.eval(term.Value, env), true
		case *ir.Jump:
			block = term.Target
		case *ir.Branch:
			cond := m.eval(term.Cond, env)
			oc, ok := m.trace.BranchOutcomes[block.Name]
			if !ok {
				oc = &[2]int{}
				m.trace.BranchOutcomes[block.Name] = oc
			}
			if cond != 0 {
				oc[1]++
				block = term.True
			} else {
				oc[0]++
				block = term.False
			}
		case nil:
			return 0, true
		}
	}
}

func (m *machine) anomaly(kind string, line int) {
	if len(m.trace.Anomalies) < 256 {
		m.trace.Anomalies = append(m.trace.Anomalies, Anomaly{Kind: kind, Line: line})
	}
}

// step executes one instruction; false means abort the run.
func (m *machine) step(in ir.Instr, env map[string]int64, depth int) bool {
	switch x := in.(type) {
	case *ir.Assign:
		m.store(x.Dst, m.eval(x.Src, env), env)
	case *ir.BinOp:
		l, r := m.eval(x.L, env), m.eval(x.R, env)
		var v int64
		switch x.Op {
		case "+":
			v = l + r
		case "-":
			v = l - r
		case "*":
			v = l * r
		case "/":
			if r == 0 {
				m.anomaly("div-by-zero", x.Line)
				return false
			}
			v = l / r
		case "%":
			if r == 0 {
				m.anomaly("mod-by-zero", x.Line)
				return false
			}
			v = l % r
		case "<":
			v = b2i(l < r)
		case "<=":
			v = b2i(l <= r)
		case ">":
			v = b2i(l > r)
		case ">=":
			v = b2i(l >= r)
		case "==":
			v = b2i(l == r)
		case "!=":
			v = b2i(l != r)
		case "&&":
			v = b2i(l != 0 && r != 0)
		case "||":
			v = b2i(l != 0 || r != 0)
		}
		m.store(x.Dst, v, env)
	case *ir.UnOp:
		v := m.eval(x.X, env)
		switch x.Op {
		case "-":
			v = -v
		case "!":
			v = b2i(v == 0)
		}
		m.store(x.Dst, v, env)
	case *ir.Call:
		m.trace.Calls++
		var result int64
		if callee, ok := m.prog.FuncByName(x.Name); ok {
			args := make([]int64, len(x.Args))
			for i, a := range x.Args {
				args[i] = m.eval(a, env)
			}
			r, completed := m.call(callee, args, depth+1)
			if !completed {
				return false
			}
			result = r
		} else if m.cfg.Sources[x.Name] {
			result = m.nextInput()
		} else {
			m.callIndex++
			result = m.cfg.ExternalValue(x.Name, m.callIndex)
		}
		if x.Dst != nil {
			m.store(x.Dst, result, env)
		}
	case *ir.ArrayLoad:
		idx := m.eval(x.Index, env)
		if idx < 0 {
			m.anomaly("negative-index", x.Line)
			return false
		}
		arr := m.arrays[x.Array]
		m.store(x.Dst, arr[idx], env)
	case *ir.ArrayStore:
		idx := m.eval(x.Index, env)
		if idx < 0 {
			m.anomaly("negative-index", x.Line)
			return false
		}
		arr, ok := m.arrays[x.Array]
		if !ok {
			arr = map[int64]int64{}
			m.arrays[x.Array] = arr
		}
		arr[idx] = m.eval(x.Src, env)
	}
	return true
}

// store writes a destination; globals live in the machine, locals in env.
func (m *machine) store(d ir.Dest, v int64, env map[string]int64) {
	name := d.String()
	if m.isGlobal(name) {
		m.globals[name] = v
		return
	}
	env[name] = v
}

func (m *machine) isGlobal(name string) bool {
	for _, g := range m.prog.Globals {
		if g == name {
			return true
		}
	}
	return false
}

func (m *machine) eval(v ir.Value, env map[string]int64) int64 {
	switch x := v.(type) {
	case ir.Const:
		return x.V
	case ir.Var:
		if m.isGlobal(x.Name) {
			return m.globals[x.Name]
		}
		return env[x.Name]
	case ir.Temp:
		return env[x.String()]
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Profile aggregates traces from many sampled runs of one function.
type Profile struct {
	Runs          int
	Completed     int
	UniquePaths   int
	BlockCoverage float64 // blocks executed at least once / blocks total
	// BranchCoverage is the fraction of conditional branches whose both
	// outcomes were observed.
	BranchCoverage float64
	MeanSteps      float64
	Anomalies      map[string]int
}

// ProfileFunc runs fn with nSamples random input vectors drawn from
// [0, 255] and aggregates the traces.
func ProfileFunc(prog *ir.Program, fnName string, nSamples int, seed uint64) (*Profile, error) {
	fn, ok := prog.FuncByName(fnName)
	if !ok {
		return nil, fmt.Errorf("interp: unknown function %q", fnName)
	}
	rng := stats.NewRNG(seed)
	paths := map[uint64]bool{}
	blocksSeen := map[string]bool{}
	branchSeen := map[string]*[2]int{}
	p := &Profile{Runs: nSamples, Anomalies: map[string]int{}}
	totalSteps := 0
	for i := 0; i < nSamples; i++ {
		cfg := DefaultConfig()
		// Enough inputs for params plus a few source calls per run.
		inputs := make([]int64, len(fn.Params)+8)
		for j := range inputs {
			inputs[j] = int64(rng.Intn(256))
		}
		cfg.Inputs = inputs
		cfg.MaxSteps = 20000
		tr, err := Run(prog, fnName, cfg)
		if err != nil {
			return nil, err
		}
		if tr.Returned {
			p.Completed++
		}
		paths[tr.PathSignature()] = true
		for b := range tr.BlockCounts {
			blocksSeen[b] = true
		}
		for b, oc := range tr.BranchOutcomes {
			agg, ok := branchSeen[b]
			if !ok {
				agg = &[2]int{}
				branchSeen[b] = agg
			}
			agg[0] += oc[0]
			agg[1] += oc[1]
		}
		for _, a := range tr.Anomalies {
			p.Anomalies[a.Kind]++
		}
		totalSteps += tr.Steps
	}
	p.UniquePaths = len(paths)
	if nSamples > 0 {
		p.MeanSteps = float64(totalSteps) / float64(nSamples)
	}
	if n := len(fn.Blocks); n > 0 {
		covered := 0
		for _, b := range fn.Blocks {
			if blocksSeen[b.Name] {
				covered++
			}
		}
		p.BlockCoverage = float64(covered) / float64(n)
	}
	branches := 0
	bothSides := 0
	for _, b := range fn.Blocks {
		if _, isBranch := b.Term.(*ir.Branch); !isBranch {
			continue
		}
		branches++
		if oc, ok := branchSeen[b.Name]; ok && oc[0] > 0 && oc[1] > 0 {
			bothSides++
		}
	}
	if branches > 0 {
		p.BranchCoverage = float64(bothSides) / float64(branches)
	} else {
		p.BranchCoverage = 1
	}
	return p, nil
}
