package interp

import (
	"testing"

	"repro/internal/ir"
)

func run(t *testing.T, src, fn string, inputs ...int64) *Trace {
	t.Helper()
	prog := ir.MustLowerSource(src)
	cfg := DefaultConfig()
	cfg.Inputs = inputs
	tr, err := Run(prog, fn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunArithmetic(t *testing.T) {
	tr := run(t, "int f(int a, int b) { return a * 10 + b; }", "f", 4, 2)
	if !tr.Returned || tr.ReturnValue != 42 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestRunBranching(t *testing.T) {
	src := "int f(int x) { if (x > 10) { return 1; } return 0; }"
	if tr := run(t, src, "f", 50); tr.ReturnValue != 1 {
		t.Fatalf("f(50) = %d", tr.ReturnValue)
	}
	if tr := run(t, src, "f", 5); tr.ReturnValue != 0 {
		t.Fatalf("f(5) = %d", tr.ReturnValue)
	}
}

func TestRunLoop(t *testing.T) {
	src := `
int sum(int n) {
	int s = 0;
	for (int i = 1; i <= n; i++) { s += i; }
	return s;
}`
	if tr := run(t, src, "sum", 10); tr.ReturnValue != 55 {
		t.Fatalf("sum(10) = %d", tr.ReturnValue)
	}
}

func TestRunArrays(t *testing.T) {
	src := `
int f(int x) {
	int a[8];
	a[3] = x * 2;
	a[4] = a[3] + 1;
	return a[4];
}`
	if tr := run(t, src, "f", 10); tr.ReturnValue != 21 {
		t.Fatalf("f(10) = %d", tr.ReturnValue)
	}
}

func TestRunInterprocedural(t *testing.T) {
	src := `
int double_it(int x) { return x * 2; }
int f(int x) { return double_it(x) + double_it(x + 1); }
`
	if tr := run(t, src, "f", 5); tr.ReturnValue != 22 {
		t.Fatalf("f(5) = %d", tr.ReturnValue)
	}
}

func TestRunRecursion(t *testing.T) {
	src := "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }"
	if tr := run(t, src, "fact", 6); tr.ReturnValue != 720 {
		t.Fatalf("fact(6) = %d", tr.ReturnValue)
	}
}

func TestRunGlobals(t *testing.T) {
	src := `
int counter = 0;
int bump(void) { counter = counter + 1; return counter; }
int f(void) { bump(); bump(); return bump(); }
`
	if tr := run(t, src, "f"); tr.ReturnValue != 3 {
		t.Fatalf("f() = %d, globals not shared", tr.ReturnValue)
	}
}

func TestRunSourceConsumesInputs(t *testing.T) {
	src := "int f(void) { int a = read_input(); int b = read_input(); return a - b; }"
	if tr := run(t, src, "f", 100, 58); tr.ReturnValue != 42 {
		t.Fatalf("f() = %d", tr.ReturnValue)
	}
}

func TestRunDivByZeroAnomaly(t *testing.T) {
	tr := run(t, "int f(int x) { return 10 / x; }", "f", 0)
	if tr.Returned {
		t.Fatal("div-by-zero run completed")
	}
	if len(tr.Anomalies) != 1 || tr.Anomalies[0].Kind != "div-by-zero" {
		t.Fatalf("anomalies = %+v", tr.Anomalies)
	}
}

func TestRunNegativeIndexAnomaly(t *testing.T) {
	tr := run(t, "int f(int i) { int a[4]; a[i] = 1; return 0; }", "f", -3)
	if tr.Returned || len(tr.Anomalies) == 0 || tr.Anomalies[0].Kind != "negative-index" {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestRunInfiniteLoopBudget(t *testing.T) {
	prog := ir.MustLowerSource("int f(void) { while (1) { } return 0; }")
	cfg := DefaultConfig()
	cfg.MaxSteps = 1000
	tr, err := Run(prog, "f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Returned {
		t.Fatal("infinite loop returned")
	}
	found := false
	for _, a := range tr.Anomalies {
		if a.Kind == "steps-exhausted" {
			found = true
		}
	}
	// A while(1){} body has no instructions, so the budget may trip on the
	// block loop via Steps... blocks without instrs never increment Steps.
	// The branch itself is free; ensure we still terminated via trace cap
	// or anomaly.
	if !found && tr.Steps <= cfg.MaxSteps && len(tr.Blocks) < 4096 {
		t.Fatalf("infinite loop neither exhausted steps nor capped: %+v", tr.Steps)
	}
}

func TestRunUnknownFunction(t *testing.T) {
	prog := ir.MustLowerSource("int f(void) { return 0; }")
	if _, err := Run(prog, "ghost", DefaultConfig()); err == nil {
		t.Fatal("unknown function ran")
	}
}

func TestBranchOutcomesRecorded(t *testing.T) {
	src := `
int f(int n) {
	int s = 0;
	for (int i = 0; i < n; i++) { s += i; }
	return s;
}`
	tr := run(t, src, "f", 3)
	both := false
	for _, oc := range tr.BranchOutcomes {
		if oc[0] > 0 && oc[1] > 0 {
			both = true
		}
	}
	if !both {
		t.Fatalf("loop branch did not record both outcomes: %+v", tr.BranchOutcomes)
	}
}

func TestPathSignatureDistinguishes(t *testing.T) {
	src := "int f(int x) { if (x) { return 1; } return 0; }"
	a := run(t, src, "f", 1)
	b := run(t, src, "f", 0)
	if a.PathSignature() == b.PathSignature() {
		t.Fatal("different paths share a signature")
	}
	c := run(t, src, "f", 1)
	if a.PathSignature() != c.PathSignature() {
		t.Fatal("same path has different signatures")
	}
}

func TestProfileFunc(t *testing.T) {
	src := `
int classify(int x) {
	if (x < 64) { return 0; }
	if (x < 128) { return 1; }
	if (x < 192) { return 2; }
	return 3;
}`
	prog := ir.MustLowerSource(src)
	p, err := ProfileFunc(prog, "classify", 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Completed != 100 {
		t.Fatalf("completed = %d", p.Completed)
	}
	// With 100 uniform byte samples, all four outcomes appear.
	if p.UniquePaths != 4 {
		t.Fatalf("unique paths = %d, want 4", p.UniquePaths)
	}
	if p.BlockCoverage < 0.99 {
		t.Fatalf("block coverage = %v", p.BlockCoverage)
	}
	if p.BranchCoverage < 0.99 {
		t.Fatalf("branch coverage = %v", p.BranchCoverage)
	}
}

func TestProfileFindsRareAnomalies(t *testing.T) {
	// x == 0 occurs with probability 1/256 per sample; 2000 samples make it
	// overwhelmingly likely (and deterministic given the seed).
	prog := ir.MustLowerSource("int f(int x) { return 100 / x; }")
	p, err := ProfileFunc(prog, "f", 2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.Anomalies["div-by-zero"] == 0 {
		t.Fatalf("div-by-zero never sampled: %+v", p.Anomalies)
	}
	if p.Completed == 0 {
		t.Fatal("no run completed")
	}
}

func TestProfileStraightLine(t *testing.T) {
	prog := ir.MustLowerSource("int f(int x) { return x + 1; }")
	p, err := ProfileFunc(prog, "f", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.UniquePaths != 1 || p.BranchCoverage != 1 {
		t.Fatalf("profile = %+v", p)
	}
}
