package vcsgen

import "testing"

// TestDeterminism: a history is a pure function of (seed, name, size).
func TestDeterminism(t *testing.T) {
	g := New(42)
	a := g.ForFunction("f.mc:handler", 30)
	b := New(42).ForFunction("f.mc:handler", 30)
	if a != b {
		t.Fatalf("same inputs, different histories: %+v vs %+v", a, b)
	}
	if a.Commits < 1 || a.Authors < 1 || a.Churn < 1 || a.AgeDays < 30 {
		t.Fatalf("implausible history: %+v", a)
	}
}

// TestVisitOrderIndependence: a function's history cannot depend on what
// else the generator was asked about.
func TestVisitOrderIndependence(t *testing.T) {
	g1 := New(7)
	want := g1.ForFunction("a.mc:f", 10)
	g2 := New(7)
	g2.ForFunction("z.mc:other", 99)
	g2.ForFunction("m.mc:another", 1)
	if got := g2.ForFunction("a.mc:f", 10); got != want {
		t.Fatalf("history changed with visit order: %+v vs %+v", got, want)
	}
}

// TestSeedsDiverge: distinct seeds give a function distinct histories (for
// at least some functions — collisions are allowed, uniformity is not
// required).
func TestSeedsDiverge(t *testing.T) {
	names := []string{"a.mc:f", "b.mc:g", "c.mc:h", "d.mc:i"}
	differ := false
	for _, n := range names {
		if New(1).ForFunction(n, 20) != New(2).ForFunction(n, 20) {
			differ = true
		}
	}
	if !differ {
		t.Fatal("seeds 1 and 2 produced identical histories for every probe")
	}
}

// TestCommitsPerMonth checks the age normalization.
func TestCommitsPerMonth(t *testing.T) {
	h := History{Commits: 10, AgeDays: 300}
	if got := h.CommitsPerMonth(); got != 1.0 {
		t.Fatalf("10 commits over 10 months = %f, want 1.0", got)
	}
	young := History{Commits: 5, AgeDays: 3}
	if got := young.CommitsPerMonth(); got != 5.0 {
		t.Fatalf("young function should normalize by one month, got %f", got)
	}
}
