// Package vcsgen deterministically generates synthetic version-control
// history at function granularity. It plays the role langgen plays for
// source text: the function-level ranking engine wants the Viszkok-style
// process-metric family (churn, author count, commit frequency) and no real
// repository history exists for generated or example trees, so a seeded
// generator assigns each function a history that is stable across runs,
// machines, and pool widths.
//
// Determinism contract: a History is a pure function of (Seed, qualified
// function name, body size). The per-function RNG is seeded from an FNV-1a
// hash of the name folded into the generator seed, so histories do not
// depend on the order functions are visited in, and adding a function to a
// tree never changes any other function's history.
package vcsgen

import (
	"repro/internal/stats"
)

// History is one function's synthetic process-metric record.
type History struct {
	// Churn is the total added+deleted line count across the function's
	// simulated commits.
	Churn int `json:"churn"`
	// Authors is the number of distinct developers who touched the
	// function.
	Authors int `json:"authors"`
	// Commits is the number of commits that touched the function.
	Commits int `json:"commits"`
	// AgeDays is the simulated age of the function's first commit.
	AgeDays int `json:"age_days"`
}

// CommitsPerMonth is the commit-frequency view of a history, normalized by
// its age (Viszkok et al.'s committed-frequency metric).
func (h History) CommitsPerMonth() float64 {
	months := float64(h.AgeDays) / 30
	if months < 1 {
		months = 1
	}
	return float64(h.Commits) / months
}

// Generator assigns histories under one seed. The zero value (seed 0) is a
// valid generator; distinct seeds produce uncorrelated histories.
type Generator struct {
	Seed uint64
}

// New returns a generator for seed.
func New(seed uint64) *Generator { return &Generator{Seed: seed} }

// ForFunction returns the history of the function with the given qualified
// name (conventionally "file:func") and body size in lines. Size enters as
// a mild tendency — larger functions accumulate more commits and churn, the
// empirical regularity the process-metric literature reports — not as a
// determinism input loophole: the same (seed, name, size) always yields the
// same history.
func (g *Generator) ForFunction(qualified string, sizeLines int) History {
	rng := stats.NewRNG(g.Seed ^ fnv1a(qualified))
	if sizeLines < 1 {
		sizeLines = 1
	}
	// Commit count: geometric base load plus a size-driven tendency.
	commits := 1 + rng.Geometric(0.35) + sizeLines/12
	if commits > 200 {
		commits = 200
	}
	// Authors: sublinear in commits; most functions are single-author.
	authors := 1
	for i := 1; i < commits; i++ {
		if rng.Bool(0.18) {
			authors++
		}
	}
	if authors > 16 {
		authors = 16
	}
	// Churn: each commit touches a few lines, scaled by body size.
	churn := 0
	for i := 0; i < commits; i++ {
		churn += 1 + rng.Intn(3+sizeLines/4)
	}
	age := 30 + rng.Intn(1400)
	return History{Churn: churn, Authors: authors, Commits: commits, AgeDays: age}
}

// fnv1a is the 64-bit FNV-1a hash, the same mixing idiom the feature cache
// uses for content keys.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
