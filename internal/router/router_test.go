package router

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// TestRingConsistency: one key always lands on one backend, every backend
// owns a usable share of the keyspace, and the mapping does not depend on
// the order the -route list names the backends.
func TestRingConsistency(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := buildRing(addrs)
	r2 := buildRing([]string{addrs[2], addrs[0], addrs[1]}) // reordered

	first := func(r ring, key string) string {
		got := ""
		// r2's indices point into its own (reordered) list.
		var list []string
		if &r.vnodes[0] == &r1.vnodes[0] {
			list = addrs
		} else {
			list = []string{addrs[2], addrs[0], addrs[1]}
		}
		r.walk(key, func(i int) bool { got = list[i]; return true })
		return got
	}

	owned := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("tree:repo-%d", i)
		a, b := first(r1, key), first(r2, key)
		if a != b {
			t.Fatalf("key %s maps to %s vs %s after reordering the backend list", key, a, b)
		}
		if a2 := first(r1, key); a2 != a {
			t.Fatalf("key %s not stable: %s then %s", key, a, a2)
		}
		owned[a]++
	}
	for _, addr := range addrs {
		if owned[addr] == 0 {
			t.Errorf("backend %s owns no keys out of 300 (distribution %v)", addr, owned)
		}
	}

	// The walk enumerates each backend exactly once — the failover order.
	var seen []int
	r1.walk("tree:any", func(i int) bool { seen = append(seen, i); return false })
	if len(seen) != len(addrs) {
		t.Fatalf("walk visited %d backends, want %d", len(seen), len(addrs))
	}
	dup := map[int]bool{}
	for _, i := range seen {
		if dup[i] {
			t.Fatalf("walk visited backend %d twice", i)
		}
		dup[i] = true
	}
}

// TestRouteKey pins the shard key per endpoint, including the failure
// modes that must answer 400 instead of guessing a shard.
func TestRouteKey(t *testing.T) {
	cases := []struct {
		path, body, want, wantErr string
	}{
		{"/v1/score", `{"tree":{"name":"r1"}}`, "tree:r1", ""},
		{"/v1/analyze/stream", `{"tree":{"name":"r2"}}`, "tree:r2", ""},
		{"/v1/delta", `{"repo_id":"app","changeset":{}}`, "repo:app", ""},
		{"/v1/delta", `{"changeset":{}}`, "", "repo_id is required"},
		{"/v1/compare", `{"old":{"name":"x"},"new":{"name":"y"}}`, "tree:y", ""},
		{"/v1/query", `{"query":"repo = \"web\" and score > 0.5"}`, "tree:web", ""},
		{"/v1/query", `{"query":"score > 0.5 and repo = \"web\""}`, "tree:web", ""},
		{"/v1/query", `{"query":"score > 0.5"}`, "", "needs a repo"},
		// repo equality under OR or NOT does not pin a shard.
		{"/v1/query", `{"query":"repo = \"a\" or repo = \"b\""}`, "", "needs a repo"},
		{"/v1/query", `{"query":"not repo = \"a\""}`, "", "needs a repo"},
		{"/v1/score", `{bad json`, "", "decode request"},
	}
	for _, c := range cases {
		got, err := routeKey(c.path, []byte(c.body))
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("routeKey(%s, %s) err = %v, want containing %q", c.path, c.body, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("routeKey(%s, %s): %v", c.path, c.body, err)
			continue
		}
		if got != c.want {
			t.Errorf("routeKey(%s, %s) = %q, want %q", c.path, c.body, got, c.want)
		}
	}
}

// echoBackend answers /healthz with 200 and any /v1/ POST with a JSON body
// identifying itself, so tests can see which backend served a key.
func echoBackend(t *testing.T, name string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"backend": name, "echo": string(body)})
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func post(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestProxyPinsRepoToBackend: many requests for one tree all hit one
// backend, and different trees spread across the fleet.
func TestProxyPinsRepoToBackend(t *testing.T) {
	b1, h1 := echoBackend(t, "b1")
	b2, h2 := echoBackend(t, "b2")
	b3, h3 := echoBackend(t, "b3")
	_, ts := newTestRouter(t, Config{Backends: []string{b1.URL, b2.URL, b3.URL}})

	var home string
	for i := 0; i < 5; i++ {
		resp, body := post(t, ts.URL+"/v1/score", `{"tree":{"name":"pinned-repo"}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var got struct{ Backend string }
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}
		if home == "" {
			home = got.Backend
		} else if got.Backend != home {
			t.Fatalf("request %d for one repo served by %s, earlier by %s", i, got.Backend, home)
		}
	}

	for i := 0; i < 60; i++ {
		post(t, ts.URL+"/v1/score", fmt.Sprintf(`{"tree":{"name":"spread-%d"}}`, i))
	}
	for name, h := range map[string]*atomic.Int64{"b1": h1, "b2": h2, "b3": h3} {
		if h.Load() == 0 {
			t.Errorf("backend %s served nothing across 60 distinct repos", name)
		}
	}
}

// TestProxyForwardsApplicationErrors: backend 429/504/409 envelopes cross
// the router verbatim — status, Retry-After, and body — with no retry.
func TestProxyForwardsApplicationErrors(t *testing.T) {
	var calls atomic.Int64
	ts429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.Error{Code: api.CodeQueueFull, Error: "queue full"})
	}))
	t.Cleanup(ts429.Close)
	_, ts := newTestRouter(t, Config{Backends: []string{ts429.URL}})

	resp, body := post(t, ts.URL+"/v1/score", `{"tree":{"name":"busy"}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After %q did not cross the router", got)
	}
	var e api.Error
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Code != api.CodeQueueFull {
		t.Errorf("body %q, want the backend's queue_full envelope", body)
	}
	if calls.Load() != 1 {
		t.Errorf("backend saw %d calls, want 1 (application errors are never retried)", calls.Load())
	}
}

// TestProxyFailsOverOnTransportError: a dead backend is ejected on first
// contact and its keys slide to the ring successor; the client still gets
// an answer.
func TestProxyFailsOverOnTransportError(t *testing.T) {
	alive, _ := echoBackend(t, "alive")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	deadAddr := dead.URL
	dead.Close() // nothing listens here any more

	rt, ts := newTestRouter(t, Config{
		Backends:       []string{alive.URL, deadAddr},
		HealthInterval: time.Hour, // probes stay out of this test
	})

	// Every key gets served regardless of which backend it hashes to.
	for i := 0; i < 20; i++ {
		resp, body := post(t, ts.URL+"/v1/score", fmt.Sprintf(`{"tree":{"name":"r%d"}}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("key r%d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	// The dead backend was ejected on the first failed dial.
	for _, b := range rt.backends {
		if b.addr == strings.TrimRight(deadAddr, "/") && b.healthy.Load() {
			t.Error("dead backend still marked healthy after a failed proxy")
		}
	}

	// Router health reflects it.
	resp, body := post(t, ts.URL+"/v1/score", `{"tree":{"name":"final"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final: %d %s", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health api.RouterHealth
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	healthyCount := 0
	for _, b := range health.Backends {
		if b.Healthy {
			healthyCount++
		}
	}
	if healthyCount != 1 {
		t.Errorf("healthz reports %d healthy backends, want 1: %+v", healthyCount, health.Backends)
	}
}

// TestHealthProbeEjectsAndReadmits: a backend that starts failing probes
// is ejected after FailThreshold consecutive failures and re-admitted
// after one success.
func TestHealthProbeEjectsAndReadmits(t *testing.T) {
	var down atomic.Bool
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(b.Close)

	rt, _ := newTestRouter(t, Config{
		Backends:       []string{b.URL},
		HealthInterval: 5 * time.Millisecond,
		FailThreshold:  2,
	})
	be := rt.backends[0]

	waitHealthy := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for be.healthy.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("backend never became %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	down.Store(true)
	waitHealthy(false, "ejected")
	down.Store(false)
	waitHealthy(true, "re-admitted")
}

// TestNoBackendAnswers503: with the whole fleet ejected the router says
// so, with the stable no_backend code.
func TestNoBackendAnswers503(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := dead.URL
	dead.Close()
	_, ts := newTestRouter(t, Config{Backends: []string{addr}, HealthInterval: time.Hour})

	// First request ejects on the transport error; walk exhausts the ring.
	resp, body := post(t, ts.URL+"/v1/score", `{"tree":{"name":"x"}}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d body %s, want 503", resp.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Code != api.CodeNoBackend {
		t.Errorf("body %q, want code %q", body, api.CodeNoBackend)
	}
}

// TestBodyCapAnswers413 and bad keys answer 400.
func TestProxyRequestValidation(t *testing.T) {
	b, _ := echoBackend(t, "b")
	_, ts := newTestRouter(t, Config{Backends: []string{b.URL}, MaxBodyBytes: 64})

	resp, body := post(t, ts.URL+"/v1/score", `{"tree":{"name":"`+strings.Repeat("x", 200)+`"}}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d %s, want 413", resp.StatusCode, body)
	}

	resp, body = post(t, ts.URL+"/v1/delta", `{"changeset":{}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing repo_id: status %d %s, want 400", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/v1/query", `{"query":"score > 0"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unrouteable query: status %d %s, want 400", resp.StatusCode, body)
	}
}

// TestReloadBroadcasts: reload hits every healthy backend, not just the
// key's shard.
func TestReloadBroadcasts(t *testing.T) {
	var r1, r2 atomic.Int64
	mk := func(hits *atomic.Int64) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/models/reload" {
				hits.Add(1)
			}
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok"}`)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	b1, b2 := mk(&r1), mk(&r2)
	_, ts := newTestRouter(t, Config{Backends: []string{b1.URL, b2.URL}})

	resp, body := post(t, ts.URL+"/v1/models/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	if r1.Load() != 1 || r2.Load() != 1 {
		t.Errorf("reload reached (%d, %d) backends, want (1, 1)", r1.Load(), r2.Load())
	}
}

// TestRouterMetricsConformance: every family on the router's /metrics has
// HELP and TYPE, and the per-backend series are present.
func TestRouterMetricsConformance(t *testing.T) {
	b, _ := echoBackend(t, "b")
	_, ts := newTestRouter(t, Config{Backends: []string{b.URL}})
	post(t, ts.URL+"/v1/score", `{"tree":{"name":"m"}}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(data)

	seen := map[string]map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "# ") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) < 3 {
			continue
		}
		kind, name := parts[1], parts[2]
		if seen[name] == nil {
			seen[name] = map[string]bool{}
		}
		seen[name][kind] = true
	}
	for _, fam := range []string{
		"secmetric_router_backend_up",
		"secmetric_router_backend_requests_total",
		"secmetric_router_backend_errors_total",
		"secmetric_router_uptime_seconds",
	} {
		if !seen[fam]["HELP"] || !seen[fam]["TYPE"] {
			t.Errorf("family %s missing HELP/TYPE", fam)
		}
		if !strings.Contains(body, fam) {
			t.Errorf("metrics missing %s", fam)
		}
	}
	if !strings.Contains(body, "secmetric_router_backend_requests_total{backend=") {
		t.Error("no per-backend request series")
	}
}
