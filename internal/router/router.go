package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store/query"
	"repro/pkg/api"
)

// Config tunes the router.
type Config struct {
	// Backends are the secmetricd base URLs forming the ring; at least one
	// is required.
	Backends []string
	// HealthInterval spaces the active /healthz probes per backend;
	// <= 0 uses 2 seconds.
	HealthInterval time.Duration
	// FailThreshold is how many consecutive probe failures eject a backend
	// from the ring; <= 0 uses 2. One probe success re-admits it.
	FailThreshold int
	// MaxBodyBytes caps a request body (the router buffers the body to
	// extract the routing key); <= 0 uses the daemon's 32 MiB default.
	MaxBodyBytes int64
}

// DefaultHealthInterval spaces active backend probes when
// Config.HealthInterval is unset.
const DefaultHealthInterval = 2 * time.Second

// backend is one fleet member and its live accounting.
type backend struct {
	addr     string
	healthy  atomic.Bool
	fails    atomic.Int64
	requests atomic.Uint64
	errors   atomic.Uint64
}

// Router is the consistent-hash front door. Construct with New, mount
// Handler, Close when done (stops the health probes).
type Router struct {
	cfg      Config
	backends []*backend
	ring     ring
	// hc carries proxied requests; no client-side timeout, the caller's
	// request context (and the backend's own deadline discipline) bounds
	// the round-trip — a streaming response must be able to run long.
	hc    *http.Client
	probe *http.Client
	start time.Time

	quit     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once
}

// New validates the backend list and starts one health loop per backend.
// Backends start healthy: the fleet booting in any order must not bounce
// early requests off a router that has not probed yet.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	addrs := make([]string, len(cfg.Backends))
	for i, a := range cfg.Backends {
		addrs[i] = strings.TrimRight(a, "/")
		if addrs[i] == "" {
			return nil, fmt.Errorf("router: backend %d is empty", i)
		}
	}
	rt := &Router{
		cfg:   cfg,
		ring:  buildRing(addrs),
		hc:    &http.Client{},
		probe: &http.Client{Timeout: cfg.HealthInterval},
		start: time.Now(),
		quit:  make(chan struct{}),
	}
	for _, a := range addrs {
		b := &backend{addr: a}
		b.healthy.Store(true)
		rt.backends = append(rt.backends, b)
	}
	for _, b := range rt.backends {
		rt.wg.Add(1)
		go rt.healthLoop(b)
	}
	return rt, nil
}

// Close stops the health probes. In-flight proxied requests finish on
// their own contexts.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.quit) })
	rt.wg.Wait()
}

// healthLoop actively probes one backend. A backend that fails
// FailThreshold consecutive probes is ejected (its keys slide to the ring
// successor); a single success re-admits it — recovery should be fast,
// ejection deliberate.
func (rt *Router) healthLoop(b *backend) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
			rt.probeOnce(b)
		}
	}
}

func (rt *Router) probeOnce(b *backend) {
	resp, err := rt.probe.Get(b.addr + "/healthz")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		if b.fails.Add(1) >= int64(rt.cfg.FailThreshold) {
			b.healthy.Store(false)
		}
		return
	}
	b.fails.Store(0)
	b.healthy.Store(true)
}

// Handler mounts the router's routes: its own health and metrics, the
// reload broadcast, and the keyed proxy for every analysis endpoint.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("POST /v1/models/reload", rt.handleReload)
	mux.HandleFunc("POST /v1/", rt.handleProxy)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, api.Error{Code: code, Error: msg})
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := api.RouterHealth{Status: "ok"}
	for _, b := range rt.backends {
		out.Backends = append(out.Backends, api.RouterBackend{
			Addr:     b.addr,
			Healthy:  b.healthy.Load(),
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintln(w, "# HELP secmetric_router_backend_up Whether the ring currently routes to this backend.")
	fmt.Fprintln(w, "# TYPE secmetric_router_backend_up gauge")
	for _, b := range rt.backends {
		up := 0
		if b.healthy.Load() {
			up = 1
		}
		fmt.Fprintf(w, "secmetric_router_backend_up{backend=%q} %d\n", b.addr, up)
	}
	fmt.Fprintln(w, "# HELP secmetric_router_backend_requests_total Requests proxied to this backend (whatever status it answered).")
	fmt.Fprintln(w, "# TYPE secmetric_router_backend_requests_total counter")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "secmetric_router_backend_requests_total{backend=%q} %d\n", b.addr, b.requests.Load())
	}
	fmt.Fprintln(w, "# HELP secmetric_router_backend_errors_total Transport-level proxy failures against this backend (failed dials, bodies dead mid-copy).")
	fmt.Fprintln(w, "# TYPE secmetric_router_backend_errors_total counter")
	for _, b := range rt.backends {
		fmt.Fprintf(w, "secmetric_router_backend_errors_total{backend=%q} %d\n", b.addr, b.errors.Load())
	}
	fmt.Fprintln(w, "# HELP secmetric_router_uptime_seconds Seconds since the router started.")
	fmt.Fprintln(w, "# TYPE secmetric_router_uptime_seconds gauge")
	fmt.Fprintf(w, "secmetric_router_uptime_seconds %g\n", time.Since(rt.start).Seconds())
}

// handleReload broadcasts the model reload to every healthy backend: a
// reload must take effect fleet-wide or report that it did not. Any
// backend failure answers 502 naming the backend; the caller retries once
// the fleet is whole.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	var firstBody []byte
	var firstStatus int
	for _, b := range rt.backends {
		if !b.healthy.Load() {
			continue
		}
		b.requests.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.addr+"/v1/models/reload", nil)
		if err != nil {
			writeErr(w, http.StatusBadGateway, api.CodeInternal, err.Error())
			return
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			b.errors.Add(1)
			b.healthy.Store(false)
			writeErr(w, http.StatusBadGateway, api.CodeInternal,
				fmt.Sprintf("reload on %s failed: %v", b.addr, err))
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if firstBody == nil {
			firstBody, firstStatus = body, resp.StatusCode
		}
		if resp.StatusCode != http.StatusOK {
			// Forward the failing backend's own envelope; a partial reload
			// is the caller's signal to retry.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			w.Write(body)
			return
		}
	}
	if firstBody == nil {
		writeErr(w, http.StatusServiceUnavailable, api.CodeNoBackend, "no healthy backend to reload")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(firstStatus)
	w.Write(firstBody)
}

// routeKey extracts the shard key for one endpoint from the buffered
// request body. The key is the repository identity — whatever names the
// state the request touches — so every request about one repo converges
// on one backend:
//
//	/v1/delta            repo_id (the session registry is shard-local)
//	/v1/compare          the new tree's name (the gate's subject)
//	/v1/query            the repo = "..." equality in the filter
//	everything else      the tree's name
//
// A query without a top-level repo equality cannot be routed — runs for
// different repos live in different shard-local -db stores — and answers
// 400 rather than silently returning one shard's partial view.
func routeKey(path string, body []byte) (string, error) {
	var probe struct {
		RepoID string `json:"repo_id"`
		Tree   struct {
			Name string `json:"name"`
		} `json:"tree"`
		New struct {
			Name string `json:"name"`
		} `json:"new"`
		Query string `json:"query"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return "", fmt.Errorf("decode request: %w", err)
	}
	switch path {
	case "/v1/delta":
		if probe.RepoID == "" {
			return "", errors.New("repo_id is required")
		}
		return "repo:" + probe.RepoID, nil
	case "/v1/compare":
		return "tree:" + probe.New.Name, nil
	case "/v1/query":
		repo, err := repoFromQuery(probe.Query)
		if err != nil {
			return "", err
		}
		return "tree:" + repo, nil
	default:
		return "tree:" + probe.Tree.Name, nil
	}
}

// repoFromQuery finds the repo = "..." equality in the top-level AND chain
// of a parsed query. Equality under OR or NOT does not pin the query to
// one repo, so only the AND spine counts.
func repoFromQuery(src string) (string, error) {
	q, err := query.Parse(src)
	if err != nil {
		return "", err
	}
	var find func(e query.Expr) (string, bool)
	find = func(e query.Expr) (string, bool) {
		switch n := e.(type) {
		case *query.And:
			if repo, ok := find(n.L); ok {
				return repo, true
			}
			return find(n.R)
		case *query.Cmp:
			if n.Field == query.FieldRepo && n.Op == query.OpEq && !n.Val.IsNum {
				return n.Val.Str, true
			}
		}
		return "", false
	}
	if q.Where != nil {
		if repo, ok := find(q.Where); ok {
			return repo, nil
		}
	}
	return "", errors.New(`fleet query needs a repo = "..." filter to pick its shard (history is shard-local)`)
}

// handleProxy routes one analysis request: buffer the body (bounded),
// extract the shard key, walk the ring from the key's home backend, and
// stream the first reachable backend's response back verbatim. Backend
// application errors (429, 504, 409, 4xx) are forwarded, not retried —
// they are the contract. Only transport failures fail over, and a backend
// that fails a proxied request is ejected immediately rather than waiting
// for the probe loop to notice.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return
		}
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	key, err := routeKey(r.URL.Path, body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}

	served := false
	rt.ring.walk(key, func(i int) bool {
		b := rt.backends[i]
		if !b.healthy.Load() {
			return false
		}
		b.requests.Add(1)
		req, rerr := http.NewRequestWithContext(r.Context(), r.Method, b.addr+r.URL.RequestURI(), bytes.NewReader(body))
		if rerr != nil {
			err = rerr
			return true
		}
		req.Header = r.Header.Clone()
		resp, derr := rt.hc.Do(req)
		if derr != nil {
			// Unreachable: eject now and let the walk try the successor.
			// The health loop re-admits it when probes succeed again.
			b.errors.Add(1)
			b.healthy.Store(false)
			return false
		}
		defer resp.Body.Close()
		rt.copyResponse(w, resp, b)
		served = true
		return true
	})
	if served {
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadGateway, api.CodeInternal, err.Error())
		return
	}
	writeErr(w, http.StatusServiceUnavailable, api.CodeNoBackend,
		fmt.Sprintf("no healthy backend for key %q", key))
}

// copyResponse relays status, headers, and body. The body copy flushes
// every chunk so a streaming backend's NDJSON records cross the router
// with the same liveness they left the backend with.
func (rt *Router) copyResponse(w http.ResponseWriter, resp *http.Response, b *backend) {
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fw := &flushWriter{w: w, rc: http.NewResponseController(w)}
	if _, err := io.Copy(fw, resp.Body); err != nil {
		// Mid-copy death: the client sees a truncated body; the counter
		// sees the backend.
		b.errors.Add(1)
	}
}

type flushWriter struct {
	w  io.Writer
	rc *http.ResponseController
}

func (f *flushWriter) Write(p []byte) (int, error) {
	n, err := f.w.Write(p)
	if err == nil {
		if ferr := f.rc.Flush(); ferr != nil && !errors.Is(ferr, http.ErrNotSupported) {
			return n, ferr
		}
	}
	return n, err
}

// Backends reports the configured backend addresses in ring-build order
// (primarily for logs and tests).
func (rt *Router) Backends() []string {
	out := make([]string, len(rt.backends))
	for i, b := range rt.backends {
		out[i] = b.addr
	}
	sort.Strings(out)
	return out
}
