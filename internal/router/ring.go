// Package router implements secmetricd's scale-out front door: a
// consistent-hash shard router that spreads repositories across a fleet of
// secmetricd backends. Every request that names a repository — a tree name,
// a delta session's repo_id, a query's repo filter — hashes onto a ring of
// virtual nodes, so the same repository always lands on the same backend.
// That is what makes the stateful serving features shard-local instead of
// fleet-global: a repo's incremental delta session lives in exactly one
// backend's session registry, its findings history accumulates in exactly
// one backend's -db store, and its feature-cache locality survives scale-out.
//
// The router holds no analysis state of its own. Backends are actively
// health-checked and ejected from the ring while down (their keys slide to
// the clockwise successor), then re-admitted when probes succeed again;
// backend responses — including 429 backpressure, 504 deadlines, and 409
// stale-session conflicts — are forwarded transparently so clients speak
// the exact same wire contract through the router as against one daemon.
package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodesPerBackend is the virtual-node multiplier of the hash ring. 64
// points per backend keeps the expected load imbalance across a small
// fleet within a few percent while the ring stays tiny (a binary search
// over n*64 entries).
const vnodesPerBackend = 64

type vnode struct {
	hash    uint64
	backend int
}

// ring is a fixed consistent-hash ring over backend indices. It is built
// once at construction: membership changes are expressed by skipping
// unhealthy backends during the clockwise walk, not by rebuilding, so a
// backend bounce moves only the keys that had to move.
type ring struct {
	vnodes []vnode
}

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// buildRing places vnodesPerBackend points per backend, keyed by the
// backend's address (not its index), so the mapping is stable under
// reordering of the -route list.
func buildRing(addrs []string) ring {
	r := ring{vnodes: make([]vnode, 0, len(addrs)*vnodesPerBackend)}
	for i, addr := range addrs {
		for v := 0; v < vnodesPerBackend; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", addr, v)), backend: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
	return r
}

// walk yields backend indices in ring order starting at key's successor,
// deduplicated, until each backend appeared once. The first yielded index
// is the key's home; the rest are the failover order.
func (r ring) walk(key string, visit func(backend int) (stop bool)) {
	if len(r.vnodes) == 0 {
		return
	}
	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	seen := map[int]bool{}
	for i := 0; i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[v.backend] {
			continue
		}
		seen[v.backend] = true
		if visit(v.backend) {
			return
		}
	}
}
