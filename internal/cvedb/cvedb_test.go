package cvedb

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cvss"
	"repro/internal/cwe"
	"repro/internal/lang"
)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func rec(id, app string, t time.Time, cweID cwe.ID, v3 string) Record {
	v, err := cvss.ParseV3(v3)
	if err != nil {
		panic(err)
	}
	return Record{
		ID: id, App: app, Published: t, CWE: cweID,
		V3: v3, Score: v.MustBaseScore(),
	}
}

func testDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	if err := db.AddApp(App{Name: "httpd", Language: lang.C, KLoC: 500}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddApp(App{Name: "parser", Language: lang.Java, KLoC: 80}); err != nil {
		t.Fatal(err)
	}
	records := []Record{
		rec("CVE-2010-0001", "httpd", date(2010, 1, 1), 121, "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
		rec("CVE-2016-0002", "httpd", date(2016, 6, 1), 79, "AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N"),
		rec("CVE-2013-0003", "httpd", date(2013, 3, 1), 476, "AV:L/AC:L/PR:L/UI:N/S:U/C:N/I:N/A:H"),
		rec("CVE-2015-0004", "parser", date(2015, 5, 1), 20, "AV:N/AC:H/PR:N/UI:N/S:U/C:L/I:N/A:N"),
	}
	for _, r := range records {
		if err := db.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAddAndCount(t *testing.T) {
	db := testDB(t)
	if db.NumApps() != 2 {
		t.Fatalf("NumApps = %d", db.NumApps())
	}
	if db.NumRecords() != 4 {
		t.Fatalf("NumRecords = %d", db.NumRecords())
	}
}

func TestRecordsSortedByDate(t *testing.T) {
	db := testDB(t)
	recs := db.Records("httpd")
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Published.Before(recs[i-1].Published) {
			t.Fatalf("records out of order: %v", recs)
		}
	}
	if recs[0].ID != "CVE-2010-0001" || recs[2].ID != "CVE-2016-0002" {
		t.Fatalf("unexpected order: %s .. %s", recs[0].ID, recs[2].ID)
	}
}

func TestAddRecordValidation(t *testing.T) {
	db := New()
	if err := db.AddRecord(Record{ID: "CVE-1", App: "ghost", V3: "x"}); err == nil {
		t.Fatal("record for unknown app accepted")
	}
	if err := db.AddApp(App{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRecord(Record{ID: "", App: "a", V3: "x"}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := db.AddRecord(Record{ID: "CVE-2", App: "a"}); err == nil {
		t.Fatal("record without vector accepted")
	}
	if err := db.AddApp(App{}); err == nil {
		t.Fatal("empty app name accepted")
	}
}

func TestHistorySpanAndSelection(t *testing.T) {
	db := testDB(t)
	span := db.HistorySpan("httpd")
	if span < 6*365*24*time.Hour {
		t.Fatalf("httpd span = %v", span)
	}
	if db.HistorySpan("parser") != 0 {
		t.Fatal("single-record app should have zero span")
	}
	sel := db.SelectConverging(FiveYears)
	if len(sel) != 1 || sel[0].Name != "httpd" {
		t.Fatalf("SelectConverging = %v", sel)
	}
	// A zero threshold admits every app with >= 2 records at distinct dates;
	// parser has a single record so still only httpd qualifies... with 0 span
	// it qualifies too (0 >= 0).
	all := db.SelectConverging(0)
	if len(all) != 2 {
		t.Fatalf("SelectConverging(0) = %v", all)
	}
}

func TestStatsFor(t *testing.T) {
	db := testDB(t)
	s, err := db.StatsFor("httpd")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 3 {
		t.Fatalf("Count = %d", s.Count)
	}
	if s.HighSeverity != 1 { // only the 9.8
		t.Fatalf("HighSeverity = %d", s.HighSeverity)
	}
	if s.NetworkVector != 2 {
		t.Fatalf("NetworkVector = %d", s.NetworkVector)
	}
	if s.StackOverflow != 1 {
		t.Fatalf("StackOverflow = %d", s.StackOverflow)
	}
	if s.MemorySafety != 2 { // CWE-121 and CWE-476
		t.Fatalf("MemorySafety = %d", s.MemorySafety)
	}
	if s.MaxScore != 9.8 {
		t.Fatalf("MaxScore = %v", s.MaxScore)
	}
	if s.FirstPublished != date(2010, 1, 1) || s.LastPublished != date(2016, 6, 1) {
		t.Fatalf("history endpoints wrong: %v %v", s.FirstPublished, s.LastPublished)
	}
}

func TestStatsForUnknown(t *testing.T) {
	if _, err := testDB(t).StatsFor("nope"); err == nil {
		t.Fatal("unknown app stats succeeded")
	}
}

func TestStatsForEmptyApp(t *testing.T) {
	db := New()
	if err := db.AddApp(App{Name: "fresh"}); err != nil {
		t.Fatal(err)
	}
	s, err := db.StatsFor("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 0 || s.MeanScore != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestNetworkAttackableV2Fallback(t *testing.T) {
	r := Record{V2: "AV:N/AC:L/Au:N/C:P/I:P/A:P"}
	if !r.NetworkAttackable() {
		t.Fatal("v2 network vector not detected")
	}
	r = Record{V2: "AV:L/AC:L/Au:N/C:P/I:P/A:P"}
	if r.NetworkAttackable() {
		t.Fatal("v2 local vector misdetected")
	}
	if (Record{}).NetworkAttackable() {
		t.Fatal("vectorless record misdetected")
	}
}

func TestSeverityHelper(t *testing.T) {
	r := Record{Score: 9.8}
	if r.Severity() != cvss.SeverityCritical {
		t.Fatalf("Severity = %v", r.Severity())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumApps() != db.NumApps() || loaded.NumRecords() != db.NumRecords() {
		t.Fatalf("round trip lost data: %d/%d apps, %d/%d records",
			loaded.NumApps(), db.NumApps(), loaded.NumRecords(), db.NumRecords())
	}
	a, ok := loaded.App("httpd")
	if !ok || a.Language != lang.C || a.KLoC != 500 {
		t.Fatalf("app metadata lost: %+v", a)
	}
	orig := db.Records("httpd")
	got := loaded.Records("httpd")
	for i := range orig {
		if got[i].ID != orig[i].ID || got[i].Score != orig[i].Score {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	// Records referencing unknown apps must be rejected.
	bad := `{"apps":[],"records":[{"id":"CVE-1","app":"ghost","v3":"AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"}]}`
	if _, err := Load(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("dangling record accepted")
	}
}

func TestRecordsReturnsCopy(t *testing.T) {
	db := testDB(t)
	recs := db.Records("httpd")
	recs[0].ID = "MUTATED"
	if db.Records("httpd")[0].ID == "MUTATED" {
		t.Fatal("Records exposed internal slice")
	}
}
