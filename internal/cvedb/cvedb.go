// Package cvedb models the CVE (Common Vulnerabilities and Exposures)
// database slice the paper trains on: vulnerability records with CVSS
// vectors and CWE classifications, per-application histories, and the
// "converging history" selection rule (applications with at least five years
// between their oldest and newest report).
package cvedb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cvss"
	"repro/internal/cwe"
	"repro/internal/lang"
)

// Record is a single CVE entry.
type Record struct {
	ID        string    `json:"id"`  // "CVE-2016-5195"
	App       string    `json:"app"` // owning application name
	Published time.Time `json:"published"`
	CWE       cwe.ID    `json:"cwe"`
	// V3 is the CVSS v3.0 vector string; V2 the v2.0 vector string for
	// records predating v3 adoption. At least one is always present.
	V3          string  `json:"v3,omitempty"`
	V2          string  `json:"v2,omitempty"`
	Score       float64 `json:"score"` // base score of the preferred vector
	Description string  `json:"description,omitempty"`
}

// Vector3 parses the record's v3 vector, if present.
func (r Record) Vector3() (cvss.V3, bool) {
	if r.V3 == "" {
		return cvss.V3{}, false
	}
	v, err := cvss.ParseV3(r.V3)
	if err != nil {
		return cvss.V3{}, false
	}
	return v, true
}

// Severity returns the qualitative band of the record's score.
func (r Record) Severity() cvss.Severity {
	return cvss.SeverityOf(r.Score)
}

// NetworkAttackable reports whether the record's attack vector is Network
// (the paper's "AV = N?" hypothesis). Records with only a v2 vector use the
// v2 access vector.
func (r Record) NetworkAttackable() bool {
	if v, ok := r.Vector3(); ok {
		return v.AV == cvss.AVNetwork
	}
	if r.V2 != "" {
		if v, err := cvss.ParseV2(r.V2); err == nil {
			return v.AV == cvss.V2AVNetwork
		}
	}
	return false
}

// App is an application tracked in the database.
type App struct {
	Name     string        `json:"name"`
	Language lang.Language `json:"language"` // primary implementation language
	KLoC     float64       `json:"kloc"`     // thousands of lines of code
	// Cyclomatic is the whole-program cyclomatic complexity (Figure 3's
	// x-axis), as measured by the testbed or supplied by the corpus model.
	Cyclomatic float64 `json:"cyclomatic"`
}

// DB is an in-memory CVE database with per-application indexes.
type DB struct {
	apps    map[string]App
	records map[string][]Record // app name -> records, kept sorted by date
	total   int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		apps:    map[string]App{},
		records: map[string][]Record{},
	}
}

// AddApp registers an application. Re-adding replaces the metadata but keeps
// existing records.
func (db *DB) AddApp(a App) error {
	if a.Name == "" {
		return fmt.Errorf("cvedb: app with empty name")
	}
	db.apps[a.Name] = a
	return nil
}

// AddRecord inserts a CVE record. The owning app must already be registered.
func (db *DB) AddRecord(r Record) error {
	if r.ID == "" {
		return fmt.Errorf("cvedb: record with empty ID")
	}
	if _, ok := db.apps[r.App]; !ok {
		return fmt.Errorf("cvedb: record %s references unknown app %q", r.ID, r.App)
	}
	if r.V3 == "" && r.V2 == "" {
		return fmt.Errorf("cvedb: record %s has no CVSS vector", r.ID)
	}
	recs := db.records[r.App]
	i := sort.Search(len(recs), func(i int) bool { return recs[i].Published.After(r.Published) })
	recs = append(recs, Record{})
	copy(recs[i+1:], recs[i:])
	recs[i] = r
	db.records[r.App] = recs
	db.total++
	return nil
}

// Apps returns all registered applications, sorted by name.
func (db *DB) Apps() []App {
	out := make([]App, 0, len(db.apps))
	for _, a := range db.apps {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// App returns the application metadata by name.
func (db *DB) App(name string) (App, bool) {
	a, ok := db.apps[name]
	return a, ok
}

// Records returns the records of one application, sorted by publication date.
func (db *DB) Records(app string) []Record {
	return append([]Record(nil), db.records[app]...)
}

// NumRecords returns the total number of CVE records in the database.
func (db *DB) NumRecords() int { return db.total }

// NumApps returns the number of registered applications.
func (db *DB) NumApps() int { return len(db.apps) }

// HistorySpan returns the duration between the oldest and newest record of
// the application, or zero if it has fewer than two records.
func (db *DB) HistorySpan(app string) time.Duration {
	recs := db.records[app]
	if len(recs) < 2 {
		return 0
	}
	return recs[len(recs)-1].Published.Sub(recs[0].Published)
}

// FiveYears is the paper's converging-history threshold.
const FiveYears = 5 * 365 * 24 * time.Hour

// SelectConverging returns the applications whose CVE history spans at least
// minSpan (the paper uses five years), sorted by name. This implements the
// "select applications with converging history" stage of Figure 4.
func (db *DB) SelectConverging(minSpan time.Duration) []App {
	var out []App
	for name, a := range db.apps {
		if db.HistorySpan(name) >= minSpan {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SelectEstablished returns the applications whose *oldest* CVE report is
// at least minAge before asOf, sorted by name. Figure 2 plots applications
// with a single vulnerability, so the paper's "5-year history" filter must
// admit single-report applications; this is the age-since-first-report
// reading used by the corpus.
func (db *DB) SelectEstablished(minAge time.Duration, asOf time.Time) []App {
	var out []App
	for name, a := range db.apps {
		recs := db.records[name]
		if len(recs) == 0 {
			continue
		}
		if asOf.Sub(recs[0].Published) >= minAge {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats summarizes one application's vulnerability history; these are the
// per-app quantities Figures 2 and 3 plot and the hypotheses label.
type Stats struct {
	App            App
	Count          int // total vulnerabilities (regardless of severity)
	HighSeverity   int // CVSS > 7
	NetworkVector  int // AV = N
	StackOverflow  int // CWE-121 (or descendant)
	MemorySafety   int // any memory-safety-class CWE
	MeanScore      float64
	MaxScore       float64
	FirstPublished time.Time
	LastPublished  time.Time
}

// StatsFor computes the per-application summary.
func (db *DB) StatsFor(app string) (Stats, error) {
	a, ok := db.apps[app]
	if !ok {
		return Stats{}, fmt.Errorf("cvedb: unknown app %q", app)
	}
	s := Stats{App: a}
	recs := db.records[app]
	s.Count = len(recs)
	if len(recs) == 0 {
		return s, nil
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.Score
		if r.Score > s.MaxScore {
			s.MaxScore = r.Score
		}
		if r.Score > 7 {
			s.HighSeverity++
		}
		if r.NetworkAttackable() {
			s.NetworkVector++
		}
		if cwe.IsA(r.CWE, 121) {
			s.StackOverflow++
		}
		if e, ok := cwe.Lookup(r.CWE); ok && e.Class == cwe.ClassMemory {
			s.MemorySafety++
		}
	}
	s.MeanScore = sum / float64(len(recs))
	s.FirstPublished = recs[0].Published
	s.LastPublished = recs[len(recs)-1].Published
	return s, nil
}

// snapshot is the JSON wire format.
type snapshot struct {
	Apps    []App    `json:"apps"`
	Records []Record `json:"records"`
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	snap := snapshot{Apps: db.Apps()}
	for _, a := range snap.Apps {
		snap.Records = append(snap.Records, db.records[a.Name]...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load reads a JSON snapshot written by Save into a fresh database.
func Load(r io.Reader) (*DB, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cvedb: decode: %w", err)
	}
	db := New()
	for _, a := range snap.Apps {
		if err := db.AddApp(a); err != nil {
			return nil, err
		}
	}
	for _, rec := range snap.Records {
		if err := db.AddRecord(rec); err != nil {
			return nil, err
		}
	}
	return db, nil
}
