package cvedb

import (
	"sort"
	"time"

	"repro/internal/cvss"
	"repro/internal/cwe"
)

// Query is a composable record filter. Zero fields match everything.
type Query struct {
	// App restricts to one application ("" = all).
	App string
	// CWE restricts to records whose weakness is the given CWE or one of
	// its descendants (0 = all).
	CWE cwe.ID
	// Class restricts to a weakness class (cwe.ClassOther = all).
	Class cwe.Class
	// MinScore / MaxScore bound the CVSS base score (MaxScore 0 = no cap).
	MinScore, MaxScore float64
	// From / To bound the publication date (zero values = unbounded).
	From, To time.Time
	// NetworkOnly keeps only AV=N records.
	NetworkOnly bool
}

// matches reports whether r satisfies q.
func (q Query) matches(r Record) bool {
	if q.App != "" && r.App != q.App {
		return false
	}
	if q.CWE != 0 && !cwe.IsA(r.CWE, q.CWE) {
		return false
	}
	if q.Class != cwe.ClassOther {
		e, ok := cwe.Lookup(r.CWE)
		if !ok || e.Class != q.Class {
			return false
		}
	}
	if r.Score < q.MinScore {
		return false
	}
	if q.MaxScore > 0 && r.Score > q.MaxScore {
		return false
	}
	if !q.From.IsZero() && r.Published.Before(q.From) {
		return false
	}
	if !q.To.IsZero() && r.Published.After(q.To) {
		return false
	}
	if q.NetworkOnly && !r.NetworkAttackable() {
		return false
	}
	return true
}

// Select returns every record matching q, ordered by (app, date).
func (db *DB) Select(q Query) []Record {
	var out []Record
	apps := db.Apps()
	for _, a := range apps {
		if q.App != "" && a.Name != q.App {
			continue
		}
		for _, r := range db.records[a.Name] {
			if q.matches(r) {
				out = append(out, r)
			}
		}
	}
	return out
}

// Count returns the number of matching records without materializing them.
func (db *DB) Count(q Query) int {
	n := 0
	for name := range db.apps {
		if q.App != "" && name != q.App {
			continue
		}
		for _, r := range db.records[name] {
			if q.matches(r) {
				n++
			}
		}
	}
	return n
}

// SeverityHistogram buckets matching records by qualitative severity band.
func (db *DB) SeverityHistogram(q Query) map[cvss.Severity]int {
	out := map[cvss.Severity]int{}
	for name := range db.apps {
		if q.App != "" && name != q.App {
			continue
		}
		for _, r := range db.records[name] {
			if q.matches(r) {
				out[r.Severity()]++
			}
		}
	}
	return out
}

// YearHistogram buckets matching records by publication year, sorted.
type YearCount struct {
	Year  int
	Count int
}

// YearHistogram returns per-year counts for matching records.
func (db *DB) YearHistogram(q Query) []YearCount {
	counts := map[int]int{}
	for name := range db.apps {
		if q.App != "" && name != q.App {
			continue
		}
		for _, r := range db.records[name] {
			if q.matches(r) {
				counts[r.Published.Year()]++
			}
		}
	}
	out := make([]YearCount, 0, len(counts))
	for y, c := range counts {
		out = append(out, YearCount{Year: y, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// TopCWEs returns the most frequent weakness types among matching records,
// most frequent first (ties by ID).
type CWECount struct {
	CWE   cwe.ID
	Count int
}

// TopCWEs returns up to n entries.
func (db *DB) TopCWEs(q Query, n int) []CWECount {
	counts := map[cwe.ID]int{}
	for name := range db.apps {
		if q.App != "" && name != q.App {
			continue
		}
		for _, r := range db.records[name] {
			if q.matches(r) {
				counts[r.CWE]++
			}
		}
	}
	out := make([]CWECount, 0, len(counts))
	for id, c := range counts {
		out = append(out, CWECount{CWE: id, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].CWE < out[j].CWE
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Trend summarizes an application's vulnerability discovery rate: the OLS
// slope of yearly report counts over the app's active years. A negative
// slope is the "converging history" §5.1 looks for — reporting that has
// peaked and is tapering — while a positive slope marks still-diverging
// codebases.
type Trend struct {
	// Slope is reports-per-year change per year.
	Slope float64
	// PeakYear is the year with the most reports (earliest on ties).
	PeakYear int
	// Converging is true when the post-peak mean rate is below the
	// peak-year rate and the overall slope is non-positive.
	Converging bool
	// Years is the number of calendar years with at least one report.
	Years int
}

// TrendFor computes the discovery trend of one application. Apps with
// fewer than two active years report a zero slope and are not converging.
func (db *DB) TrendFor(app string) Trend {
	ys := db.YearHistogram(Query{App: app})
	t := Trend{Years: len(ys)}
	if len(ys) == 0 {
		return t
	}
	t.PeakYear = ys[0].Year
	peak := ys[0].Count
	for _, yc := range ys[1:] {
		if yc.Count > peak {
			peak = yc.Count
			t.PeakYear = yc.Year
		}
	}
	if len(ys) < 2 {
		return t
	}
	// OLS over (year, count), including zero-count years inside the span.
	first, last := ys[0].Year, ys[len(ys)-1].Year
	counts := map[int]int{}
	for _, yc := range ys {
		counts[yc.Year] = yc.Count
	}
	var xs, vals []float64
	for y := first; y <= last; y++ {
		xs = append(xs, float64(y))
		vals = append(vals, float64(counts[y]))
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += vals[i]
	}
	mx /= float64(len(xs))
	my /= float64(len(xs))
	var sxx, sxy float64
	for i := range xs {
		sxx += (xs[i] - mx) * (xs[i] - mx)
		sxy += (xs[i] - mx) * (vals[i] - my)
	}
	if sxx > 0 {
		t.Slope = sxy / sxx
	}
	// Post-peak mean rate.
	postYears, postSum := 0, 0
	for y := t.PeakYear + 1; y <= last; y++ {
		postYears++
		postSum += counts[y]
	}
	if postYears > 0 {
		postMean := float64(postSum) / float64(postYears)
		t.Converging = postMean < float64(peak) && t.Slope <= 0
	}
	return t
}
