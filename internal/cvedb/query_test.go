package cvedb

import (
	"testing"
	"time"

	"repro/internal/cvss"
	"repro/internal/cwe"
)

func TestSelectByApp(t *testing.T) {
	db := testDB(t)
	recs := db.Select(Query{App: "httpd"})
	if len(recs) != 3 {
		t.Fatalf("httpd records = %d", len(recs))
	}
	all := db.Select(Query{})
	if len(all) != 4 {
		t.Fatalf("all records = %d", len(all))
	}
}

func TestSelectByCWEHierarchy(t *testing.T) {
	db := testDB(t)
	// CWE-121 is-a CWE-119: querying the parent matches the child record.
	recs := db.Select(Query{CWE: 119})
	if len(recs) != 1 || recs[0].CWE != 121 {
		t.Fatalf("CWE-119 query = %+v", recs)
	}
}

func TestSelectByClass(t *testing.T) {
	db := testDB(t)
	recs := db.Select(Query{Class: cwe.ClassMemory})
	if len(recs) != 2 { // CWE-121 and CWE-476
		t.Fatalf("memory-class records = %d", len(recs))
	}
}

func TestSelectByScoreBand(t *testing.T) {
	db := testDB(t)
	high := db.Select(Query{MinScore: 9})
	if len(high) != 1 {
		t.Fatalf("high records = %d", len(high))
	}
	mid := db.Select(Query{MinScore: 3, MaxScore: 7})
	for _, r := range mid {
		if r.Score < 3 || r.Score > 7 {
			t.Fatalf("score band leak: %v", r.Score)
		}
	}
}

func TestSelectByDateWindow(t *testing.T) {
	db := testDB(t)
	recs := db.Select(Query{
		From: date(2012, 1, 1),
		To:   date(2014, 12, 31),
	})
	if len(recs) != 1 || recs[0].ID != "CVE-2013-0003" {
		t.Fatalf("window = %+v", recs)
	}
}

func TestSelectNetworkOnly(t *testing.T) {
	db := testDB(t)
	recs := db.Select(Query{NetworkOnly: true})
	for _, r := range recs {
		if !r.NetworkAttackable() {
			t.Fatalf("non-network record: %s", r.ID)
		}
	}
	if len(recs) != 3 {
		t.Fatalf("network records = %d", len(recs))
	}
}

func TestCountMatchesSelect(t *testing.T) {
	db := testDB(t)
	queries := []Query{
		{}, {App: "httpd"}, {MinScore: 7}, {Class: cwe.ClassMemory},
		{NetworkOnly: true}, {CWE: 20},
	}
	for _, q := range queries {
		if db.Count(q) != len(db.Select(q)) {
			t.Fatalf("Count/Select disagree for %+v", q)
		}
	}
}

func TestSeverityHistogram(t *testing.T) {
	db := testDB(t)
	h := db.SeverityHistogram(Query{})
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram mass = %d", total)
	}
	if h[cvss.SeverityCritical] != 1 { // the 9.8
		t.Fatalf("critical = %d", h[cvss.SeverityCritical])
	}
}

func TestYearHistogramSorted(t *testing.T) {
	db := testDB(t)
	ys := db.YearHistogram(Query{App: "httpd"})
	if len(ys) != 3 {
		t.Fatalf("years = %+v", ys)
	}
	for i := 1; i < len(ys); i++ {
		if ys[i].Year <= ys[i-1].Year {
			t.Fatalf("unsorted: %+v", ys)
		}
	}
	if ys[0].Year != 2010 || ys[0].Count != 1 {
		t.Fatalf("first year = %+v", ys[0])
	}
}

func TestTopCWEs(t *testing.T) {
	db := New()
	if err := db.AddApp(App{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	mk := func(id string, c cwe.ID, tm time.Time) Record {
		return Record{ID: id, App: "a", Published: tm, CWE: c,
			V3: "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", Score: 9.8}
	}
	for i, c := range []cwe.ID{79, 79, 79, 121, 121, 20} {
		if err := db.AddRecord(mk(time.Now().Format("CVE-2006")+string(rune('a'+i)), c, date(2010+i, 1, 1))); err != nil {
			t.Fatal(err)
		}
	}
	top := db.TopCWEs(Query{}, 2)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].CWE != 79 || top[0].Count != 3 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].CWE != 121 || top[1].Count != 2 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	all := db.TopCWEs(Query{}, 0)
	if len(all) != 3 {
		t.Fatalf("all = %+v", all)
	}
}

func trendDB(t *testing.T, counts map[int]int) *DB {
	t.Helper()
	db := New()
	if err := db.AddApp(App{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	i := 0
	for year, n := range counts {
		for k := 0; k < n; k++ {
			i++
			rec := Record{
				ID:  "CVE-" + string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10)),
				App: "x", Published: date(year, 1+k%12, 1), CWE: 20,
				V3: "AV:N/AC:L/PR:N/UI:N/S:U/C:L/I:N/A:N", Score: 5.3,
			}
			rec.ID = rec.ID + string(rune('0'+(i/10)%10))
			if err := db.AddRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestTrendConverging(t *testing.T) {
	db := trendDB(t, map[int]int{2008: 2, 2009: 8, 2010: 5, 2011: 3, 2012: 1})
	tr := db.TrendFor("x")
	if tr.PeakYear != 2009 {
		t.Fatalf("peak = %d", tr.PeakYear)
	}
	if !tr.Converging {
		t.Fatalf("should converge: %+v", tr)
	}
	if tr.Slope >= 0 {
		t.Fatalf("slope = %v, want negative", tr.Slope)
	}
	if tr.Years != 5 {
		t.Fatalf("years = %d", tr.Years)
	}
}

func TestTrendDiverging(t *testing.T) {
	db := trendDB(t, map[int]int{2010: 1, 2011: 3, 2012: 6, 2013: 10})
	tr := db.TrendFor("x")
	if tr.Converging {
		t.Fatalf("rising history marked converging: %+v", tr)
	}
	if tr.Slope <= 0 {
		t.Fatalf("slope = %v, want positive", tr.Slope)
	}
	if tr.PeakYear != 2013 {
		t.Fatalf("peak = %d", tr.PeakYear)
	}
}

func TestTrendGapsCountAsZero(t *testing.T) {
	// 2010: 6, silence, 2014: 1 — the gap years pull the slope negative.
	db := trendDB(t, map[int]int{2010: 6, 2014: 1})
	tr := db.TrendFor("x")
	if tr.Slope >= 0 {
		t.Fatalf("slope with gap = %v", tr.Slope)
	}
	if !tr.Converging {
		t.Fatalf("tapering history not converging: %+v", tr)
	}
}

func TestTrendDegenerate(t *testing.T) {
	db := trendDB(t, map[int]int{2012: 4})
	tr := db.TrendFor("x")
	if tr.Slope != 0 || tr.Converging || tr.Years != 1 {
		t.Fatalf("single-year trend = %+v", tr)
	}
	empty := New()
	if err := empty.AddApp(App{Name: "y"}); err != nil {
		t.Fatal(err)
	}
	if tr := empty.TrendFor("y"); tr.Years != 0 || tr.Slope != 0 {
		t.Fatalf("empty trend = %+v", tr)
	}
}
