// Package experiments regenerates every evaluation artifact of the paper —
// Figures 1-4 and the in-text corpus statistics — plus the ablations called
// out in DESIGN.md. Each experiment returns both a rendered text table (what
// cmd/experiments prints and EXPERIMENTS.md records) and the structured
// numbers (what the tests and benchmarks assert against).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lang"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/survey"
)

// sharedCorpus memoizes the default corpus; generation involves a
// calibration search worth doing once per process.
var sharedCorpus *corpus.Corpus

// Corpus returns the process-wide default corpus.
func Corpus() (*corpus.Corpus, error) {
	if sharedCorpus == nil {
		c, err := corpus.Generate(corpus.DefaultParams())
		if err != nil {
			return nil, err
		}
		sharedCorpus = c
	}
	return sharedCorpus, nil
}

// ---------------------------------------------------------------------------
// Figure 1: the evaluation-method survey.

// Figure1Result carries the survey counts and rendering.
type Figure1Result struct {
	Counts survey.Counts
	Table  string
}

// Figure1 generates the synthetic proceedings and classifies them.
func Figure1() Figure1Result {
	papers := survey.GenerateCorpus(1)
	counts := survey.Run(papers)
	var sb strings.Builder
	sb.WriteString("Figure 1: papers in top systems proceedings by security-evaluation method\n")
	sb.WriteString(counts.Render())
	fmt.Fprintf(&sb, "Paper totals: LoC=%d  CVE=%d  formal=%d\n",
		survey.TotalLoC, survey.TotalCVE, survey.TotalFormal)
	return Figure1Result{Counts: counts, Table: sb.String()}
}

// ---------------------------------------------------------------------------
// Figure 2 and 3: weak single-metric correlations.

// ScatterResult carries one log-log correlation experiment.
type ScatterResult struct {
	Fit     stats.LinearFit
	PerLang map[lang.Language]int
	Table   string
}

// Figure2 reproduces the LoC-vs-vulnerabilities regression.
func Figure2() (ScatterResult, error) {
	c, err := Corpus()
	if err != nil {
		return ScatterResult{}, err
	}
	kloc, vulns := c.LoCVulnSeries()
	fit := stats.FitLinear(stats.Log10(kloc), stats.Log10(vulns))
	var sb strings.Builder
	sb.WriteString("Figure 2: lines of code vs. number of vulnerabilities (164 apps)\n")
	sb.WriteString(renderScatter(stats.Log10(kloc), stats.Log10(vulns),
		"log10(kLoC)", "log10(#vuln)"))
	fmt.Fprintf(&sb, "Fit: Log10(#vuln) = %.2f + %.2f Log10(kLoC), R^2 = %.2f%%\n",
		fit.Intercept, fit.Slope, fit.R2*100)
	fmt.Fprintf(&sb, "Paper: Log10(#vuln) = 0.17 + 0.39 Log10(kLoC), R^2 = 24.66%%\n")
	counts := c.LanguageCounts()
	fmt.Fprintf(&sb, "Primary languages: C=%d C++=%d Python=%d Java=%d (paper: 126/20/6/12)\n",
		counts[lang.C], counts[lang.CPP], counts[lang.Python], counts[lang.Java])
	return ScatterResult{Fit: fit, PerLang: counts, Table: sb.String()}, nil
}

// Figure3 reproduces the cyclomatic-complexity correlation.
func Figure3() (ScatterResult, error) {
	c, err := Corpus()
	if err != nil {
		return ScatterResult{}, err
	}
	cyclo, vulns := c.CyclomaticVulnSeries()
	fit := stats.FitLinear(stats.Log10(cyclo), stats.Log10(vulns))
	var sb strings.Builder
	sb.WriteString("Figure 3: cyclomatic complexity vs. number of vulnerabilities\n")
	sb.WriteString(renderScatter(stats.Log10(cyclo), stats.Log10(vulns),
		"log10(cyclomatic)", "log10(#vuln)"))
	fmt.Fprintf(&sb, "Fit: Log10(#vuln) = %.2f + %.2f Log10(cyclomatic), R^2 = %.2f%%\n",
		fit.Intercept, fit.Slope, fit.R2*100)
	sb.WriteString("Paper: \"similar to LoC, cyclomatic complexity is also weakly correlated\"\n")
	return ScatterResult{Fit: fit, PerLang: c.LanguageCounts(), Table: sb.String()}, nil
}

// renderScatter draws an ASCII density grid of the scatter.
func renderScatter(xs, ys []float64, xlabel, ylabel string) string {
	const w, h = 48, 12
	if len(xs) == 0 {
		return "(empty)\n"
	}
	minX, maxX := stats.Min(xs), stats.Max(xs)
	minY, maxY := stats.Min(ys), stats.Max(ys)
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]int, h)
	for i := range grid {
		grid[i] = make([]int, w)
	}
	for i := range xs {
		cx := int((xs[i] - minX) / (maxX - minX) * float64(w-1))
		cy := int((ys[i] - minY) / (maxY - minY) * float64(h-1))
		grid[h-1-cy][cx]++
	}
	marks := []byte(" .:oO@")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (y: %.1f..%.1f)\n", ylabel, minY, maxY)
	for _, row := range grid {
		sb.WriteString("  |")
		for _, n := range row {
			idx := n
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			sb.WriteByte(marks[idx])
		}
		sb.WriteString("\n")
	}
	sb.WriteString("  +" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&sb, "   %s (x: %.1f..%.1f)\n", xlabel, minX, maxX)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 4: the training pipeline.

// HypothesisRow is one row of the Figure 4 evaluation table.
type HypothesisRow struct {
	Hypothesis string
	BaseRate   float64
	Accuracy   float64
	Precision  float64
	Recall     float64
	F1         float64
	AUC        float64
	// LoCOnlyAccuracy is the same classifier trained on kLoC alone.
	LoCOnlyAccuracy float64
	LoCOnlyAUC      float64
}

// Figure4Result carries the pipeline evaluation.
type Figure4Result struct {
	Kind  core.ModelKind
	Folds int
	Rows  []HypothesisRow
	Table string
}

// Figure4 trains and cross-validates every hypothesis with the given
// classifier kind, alongside the LoC-only straw man.
func Figure4(kind core.ModelKind, folds int, seed uint64) (Figure4Result, error) {
	c, err := Corpus()
	if err != nil {
		return Figure4Result{}, err
	}
	tb := core.NewTestbed(c)
	rng := stats.NewRNG(seed)
	hyps := append(core.StandardHypotheses(), core.HypManyVulns)
	res := Figure4Result{Kind: kind, Folds: folds}
	for _, h := range hyps {
		cfg := core.TrainConfig{Kind: kind, Folds: folds, Seed: seed}
		hm, err := core.TrainHypothesis(tb, h, cfg, rng.Split())
		if err != nil {
			return Figure4Result{}, err
		}
		row := HypothesisRow{
			Hypothesis: h.Name,
			BaseRate:   hm.BaseRate,
			Accuracy:   hm.CV.Accuracy,
			Precision:  hm.CV.Precision,
			Recall:     hm.CV.Recall,
			F1:         hm.CV.F1,
			AUC:        hm.CV.AUC,
		}
		// The LoC-only comparison.
		locDS, err := tb.LoCOnlyDataset(h)
		if err != nil {
			return Figure4Result{}, err
		}
		locCV, err := crossValidateKind(kind, locDS, folds, rng.Split())
		if err != nil {
			return Figure4Result{}, err
		}
		row.LoCOnlyAccuracy = locCV.Accuracy
		row.LoCOnlyAUC = locCV.AUC
		res.Rows = append(res.Rows, row)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 pipeline: %s, %d-fold cross validation\n", kind, folds)
	fmt.Fprintf(&sb, "%-14s %6s | %6s %6s %6s %6s %6s | %9s %8s\n",
		"hypothesis", "base", "acc", "prec", "rec", "f1", "auc", "LoC-acc", "LoC-auc")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-14s %6.2f | %6.3f %6.3f %6.3f %6.3f %6.3f | %9.3f %8.3f\n",
			r.Hypothesis, r.BaseRate, r.Accuracy, r.Precision, r.Recall, r.F1, r.AUC,
			r.LoCOnlyAccuracy, r.LoCOnlyAUC)
	}
	sb.WriteString("Claim under test: multi-property models beat both the majority baseline and LoC alone.\n")
	res.Table = sb.String()
	return res, nil
}

func crossValidateKind(kind core.ModelKind, ds *ml.Dataset, folds int, rng *stats.RNG) (*ml.CVResult, error) {
	return ml.CrossValidate(func() ml.Classifier {
		c, err := core.NewClassifier(kind)
		if err != nil {
			panic(err)
		}
		return c
	}, ds, folds, rng)
}

// ---------------------------------------------------------------------------
// Table 1: corpus statistics (§5.1 in-text numbers).

// Table1Result carries the corpus statistics.
type Table1Result struct {
	Apps      int
	TotalCVEs int
	PerLang   map[lang.Language]int
	MeanScore float64
	HighFrac  float64
	Table     string
}

// Table1 summarizes the corpus against §5.1.
func Table1() (Table1Result, error) {
	c, err := Corpus()
	if err != nil {
		return Table1Result{}, err
	}
	res := Table1Result{
		Apps:      len(c.Apps),
		TotalCVEs: c.TotalCVEs(),
		PerLang:   c.LanguageCounts(),
	}
	var scores []float64
	high := 0
	for _, a := range c.Apps {
		for _, r := range c.DB.Records(a.App.Name) {
			scores = append(scores, r.Score)
			if r.Score > 7 {
				high++
			}
		}
	}
	res.MeanScore = stats.Mean(scores)
	res.HighFrac = float64(high) / float64(len(scores))
	var sb strings.Builder
	sb.WriteString("Table 1 (in-text, §5.1): training corpus statistics\n")
	fmt.Fprintf(&sb, "  applications            %6d   (paper: 164)\n", res.Apps)
	fmt.Fprintf(&sb, "  vulnerabilities         %6d   (paper: 5,975)\n", res.TotalCVEs)
	fmt.Fprintf(&sb, "  primarily C             %6d   (paper: 126)\n", res.PerLang[lang.C])
	fmt.Fprintf(&sb, "  primarily C++           %6d   (paper: 20)\n", res.PerLang[lang.CPP])
	fmt.Fprintf(&sb, "  primarily Python        %6d   (paper: 6)\n", res.PerLang[lang.Python])
	fmt.Fprintf(&sb, "  primarily Java          %6d   (paper: 12)\n", res.PerLang[lang.Java])
	fmt.Fprintf(&sb, "  mean CVSS base score    %6.2f\n", res.MeanScore)
	fmt.Fprintf(&sb, "  CVSS > 7 fraction       %6.2f\n", res.HighFrac)
	res.Table = sb.String()
	return res, nil
}
