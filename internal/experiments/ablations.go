package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/langgen"
	"repro/internal/minic"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/symexec"
)

// AblationLoCOnly quantifies the paper's central claim hypothesis by
// hypothesis: full feature vector vs. kLoC alone, same classifier.
type AblationLoCOnlyResult struct {
	Rows  []HypothesisRow // reuses Figure 4's row shape
	Table string
}

// AblationLoCOnly runs the comparison with the default forest.
func AblationLoCOnly(seed uint64) (AblationLoCOnlyResult, error) {
	f4, err := Figure4(core.KindForest, 10, seed)
	if err != nil {
		return AblationLoCOnlyResult{}, err
	}
	var sb strings.Builder
	sb.WriteString("Ablation A1: full feature vector vs. LoC-only (random forest, 10-fold CV)\n")
	fmt.Fprintf(&sb, "%-14s %8s %8s %8s %8s\n", "hypothesis", "full-auc", "loc-auc", "full-acc", "loc-acc")
	for _, r := range f4.Rows {
		fmt.Fprintf(&sb, "%-14s %8.3f %8.3f %8.3f %8.3f\n",
			r.Hypothesis, r.AUC, r.LoCOnlyAUC, r.Accuracy, r.LoCOnlyAccuracy)
	}
	return AblationLoCOnlyResult{Rows: f4.Rows, Table: sb.String()}, nil
}

// AblationClassifiers compares every classifier family on one hypothesis.
type ClassifierRow struct {
	Kind     core.ModelKind
	Accuracy float64
	AUC      float64
	F1       float64
}

// AblationClassifiersResult carries the family comparison.
type AblationClassifiersResult struct {
	Hypothesis string
	Rows       []ClassifierRow
	Table      string
}

// AblationClassifiers cross-validates every family on HypManyVulns.
func AblationClassifiers(seed uint64) (AblationClassifiersResult, error) {
	c, err := Corpus()
	if err != nil {
		return AblationClassifiersResult{}, err
	}
	tb := core.NewTestbed(c)
	ds, err := tb.DatasetFor(core.HypManyVulns)
	if err != nil {
		return AblationClassifiersResult{}, err
	}
	rng := stats.NewRNG(seed)
	res := AblationClassifiersResult{Hypothesis: core.HypManyVulns.Name}
	for _, kind := range core.AllKinds {
		cv, err := crossValidateKind(kind, ds, 10, rng.Split())
		if err != nil {
			return AblationClassifiersResult{}, err
		}
		res.Rows = append(res.Rows, ClassifierRow{
			Kind: kind, Accuracy: cv.Accuracy, AUC: cv.AUC, F1: cv.F1,
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation A2: classifier families on %q (10-fold CV)\n", res.Hypothesis)
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s\n", "kind", "acc", "auc", "f1")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-12s %8.3f %8.3f %8.3f\n", r.Kind, r.Accuracy, r.AUC, r.F1)
	}
	res.Table = sb.String()
	return res, nil
}

// AblationFeatureSelection sweeps the information-gain top-k filter.
type FeatureSelRow struct {
	TopK     int
	Accuracy float64
	AUC      float64
}

// AblationFeatureSelectionResult carries the sweep.
type AblationFeatureSelectionResult struct {
	Rows  []FeatureSelRow
	Table string
}

// AblationFeatureSelection sweeps k over the naive Bayes model, where
// irrelevant features hurt most.
func AblationFeatureSelection(seed uint64) (AblationFeatureSelectionResult, error) {
	c, err := Corpus()
	if err != nil {
		return AblationFeatureSelectionResult{}, err
	}
	tb := core.NewTestbed(c)
	rng := stats.NewRNG(seed)
	var res AblationFeatureSelectionResult
	for _, k := range []int{0, 3, 5, 10, 20} {
		cfg := core.TrainConfig{Kind: core.KindNaiveBayes, Folds: 10, TopFeatures: k, Seed: seed}
		hm, err := core.TrainHypothesis(tb, core.HypManyVulns, cfg, rng.Split())
		if err != nil {
			return AblationFeatureSelectionResult{}, err
		}
		res.Rows = append(res.Rows, FeatureSelRow{TopK: k, Accuracy: hm.CV.Accuracy, AUC: hm.CV.AUC})
	}
	var sb strings.Builder
	sb.WriteString("Ablation A3: information-gain feature selection (naive Bayes, 10-fold CV)\n")
	fmt.Fprintf(&sb, "%-8s %8s %8s\n", "top-k", "acc", "auc")
	for _, r := range res.Rows {
		label := fmt.Sprintf("%d", r.TopK)
		if r.TopK == 0 {
			label = "all"
		}
		fmt.Fprintf(&sb, "%-8s %8.3f %8.3f\n", label, r.Accuracy, r.AUC)
	}
	res.Table = sb.String()
	return res, nil
}

// AblationSymexecBound sweeps the symbolic executor's loop bound against
// path yield and truncation, the precision/cost trade DESIGN.md calls out.
type SymexecRow struct {
	LoopBound int
	Feasible  int
	Truncated int
	Models    float64
}

// AblationSymexecBoundResult carries the sweep.
type AblationSymexecBoundResult struct {
	Rows  []SymexecRow
	Table string
}

// AblationSymexecBound explores a generated program under varying bounds.
func AblationSymexecBound(seed uint64) (AblationSymexecBoundResult, error) {
	spec := langgen.DefaultSpec()
	spec.Seed = seed
	spec.Files = 2
	spec.LoopProb = 0.3
	tree := langgen.Generate(spec)
	var progs []*ir.Program
	for _, f := range tree.Files {
		ast, err := minic.Parse(f.Content)
		if err != nil {
			return AblationSymexecBoundResult{}, err
		}
		p, err := ir.Lower(ast)
		if err != nil {
			return AblationSymexecBoundResult{}, err
		}
		progs = append(progs, p)
	}
	var res AblationSymexecBoundResult
	for _, bound := range []int{1, 2, 3, 5, 8} {
		cfg := symexec.DefaultConfig()
		cfg.LoopBound = bound
		row := SymexecRow{LoopBound: bound}
		for _, p := range progs {
			for _, fn := range p.Funcs {
				r := symexec.Explore(fn, cfg)
				row.Feasible += r.FeasiblePaths
				row.Truncated += r.TruncatedPaths
				row.Models += r.ModelCount
			}
		}
		res.Rows = append(res.Rows, row)
	}
	var sb strings.Builder
	sb.WriteString("Ablation A4: symbolic-execution loop bound vs. path yield\n")
	fmt.Fprintf(&sb, "%-10s %10s %10s %14s\n", "loopbound", "feasible", "truncated", "models")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-10d %10d %10d %14.0f\n", r.LoopBound, r.Feasible, r.Truncated, r.Models)
	}
	res.Table = sb.String()
	return res, nil
}

// CrossValidateRegression evaluates the vulnerability-count regressor with
// held-out folds, reporting out-of-sample R² for the full feature set and
// for kLoC alone (the Figure 2 straw man).
type RegressionResult struct {
	FullR2 float64
	LoCR2  float64
	Table  string
}

// Regression runs the count-model comparison.
func Regression(seed uint64) (RegressionResult, error) {
	c, err := Corpus()
	if err != nil {
		return RegressionResult{}, err
	}
	tb := core.NewTestbed(c)
	ds, err := tb.RegressionDataset()
	if err != nil {
		return RegressionResult{}, err
	}
	rng := stats.NewRNG(seed)
	full := regressionCVR2(ds, rng.Split())
	locIdx := -1
	for i, n := range ds.AttrNames {
		if n == "kloc" {
			locIdx = i
		}
	}
	loc := regressionCVR2(ml.ProjectColumns(ds, []int{locIdx}), rng.Split())
	res := RegressionResult{FullR2: full, LoCR2: loc}
	var sb strings.Builder
	sb.WriteString("Vulnerability-count regression (ridge, 5-fold out-of-sample R^2)\n")
	fmt.Fprintf(&sb, "  full feature vector  R^2 = %.3f\n", res.FullR2)
	fmt.Fprintf(&sb, "  kLoC alone           R^2 = %.3f  (Figure 2's in-sample fit: 0.247)\n", res.LoCR2)
	res.Table = sb.String()
	return res, nil
}

// regressionCVR2 computes pooled out-of-sample R² over 5 folds.
func regressionCVR2(ds *ml.Dataset, rng *stats.RNG) float64 {
	folds := ds.Folds(5, rng)
	var preds, actual []float64
	for fi := range folds {
		var trainIdx []int
		for fj := range folds {
			if fj != fi {
				trainIdx = append(trainIdx, folds[fj]...)
			}
		}
		train := ds.Subset(trainIdx)
		test := ds.Subset(folds[fi])
		lr := &ml.LinearRegressor{Lambda: 1.0}
		if err := lr.Fit(train); err != nil {
			continue
		}
		for i, row := range test.X {
			preds = append(preds, lr.Predict(row))
			actual = append(actual, test.Y[i])
		}
	}
	if len(actual) == 0 {
		return 0
	}
	my := stats.Mean(actual)
	var ssRes, ssTot float64
	for i := range actual {
		ssRes += (actual[i] - preds[i]) * (actual[i] - preds[i])
		ssTot += (actual[i] - my) * (actual[i] - my)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
