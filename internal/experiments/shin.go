package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/langgen"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/stats"
)

// Table2: the Shin et al. replication target (§4): "They are able to
// predict 80% of the vulnerable files, by taking into account most basic
// properties of code files" — size, function counts, branches, parameters.
//
// We generate a population of files where vulnerability co-occurs with
// complexity and churn (the empirical regularity Shin et al. report),
// extract ONLY the basic complexity-family metrics (no security-specific
// features: no attack surface, no lint, no taint — Shin et al. had none),
// and train a classifier tuned for recall, then report file-level recall
// and precision.

// shinFeatures are the basic code-file properties Shin et al. used.
var shinFeatures = []string{
	metrics.FeatKLoC,
	metrics.FeatFunctions,
	metrics.FeatAvgFunctionLen,
	metrics.FeatMaxFunctionLen,
	metrics.FeatCyclomaticTotal,
	metrics.FeatCyclomaticAvg,
	metrics.FeatCyclomaticMax,
	metrics.FeatManyParams,
	metrics.FeatDeeplyNested,
	metrics.FeatCommentRatio,
	metrics.FeatChurn,
}

// Table2Result carries the replication outcome.
type Table2Result struct {
	Files     int
	VulnFiles int
	Recall    float64
	Precision float64
	Accuracy  float64
	Table     string
}

// Table2 runs the file-level vulnerable-file prediction experiment.
func Table2(nFiles int, seed uint64) (Table2Result, error) {
	rng := stats.NewRNG(seed)
	var X [][]float64
	var Y []float64
	vulnCount := 0
	for i := 0; i < nFiles; i++ {
		vulnerable := rng.Bool(0.3)
		spec := langgen.Spec{
			Language:     lang.MiniC,
			Files:        1,
			FuncsPerFile: rng.IntRange(3, 8),
			StmtsPerFunc: rng.IntRange(4, 10),
			BranchProb:   0.15 + 0.1*rng.Float64(),
			LoopProb:     0.1,
			CallProb:     0.15,
			CommentRate:  0.25,
			VulnDensity:  0,
			Seed:         seed ^ uint64(i*2654435761),
		}
		churn := 20 + 100*rng.Float64()
		if vulnerable {
			// Shin et al.'s regularity: vulnerable files *tend* to be
			// larger, more complex, and churn-heavy — a noisy tendency, not
			// a separator, which is why their recall tops out near 80%.
			vulnCount++
			spec.FuncsPerFile += rng.IntRange(1, 4)
			spec.StmtsPerFunc = int(float64(spec.StmtsPerFunc)*1.5) + 2
			spec.BranchProb += 0.08
			spec.VulnDensity = 0.5
			churn *= 1.7 + 0.9*rng.Float64()
		}
		tree := langgen.Generate(spec)
		fv := metrics.Extract(tree)
		fv[metrics.FeatChurn] = churn * (0.8 + 0.4*rng.Float64())
		row := make([]float64, len(shinFeatures))
		for j, name := range shinFeatures {
			row[j] = fv[name]
		}
		X = append(X, row)
		if vulnerable {
			Y = append(Y, 1)
		} else {
			Y = append(Y, 0)
		}
	}
	ds, err := ml.NewDataset(shinFeatures, core.ClassNames, X, Y)
	if err != nil {
		return Table2Result{}, err
	}
	cv, err := ml.CrossValidate(func() ml.Classifier {
		return &ml.RandomForest{Trees: 30, Seed: seed}
	}, ds, 10, rng)
	if err != nil {
		return Table2Result{}, err
	}
	res := Table2Result{
		Files:     nFiles,
		VulnFiles: vulnCount,
		Recall:    cv.Recall,
		Precision: cv.Precision,
		Accuracy:  cv.Accuracy,
	}
	var sb strings.Builder
	sb.WriteString("Table 2 (in-text, §4): Shin et al. vulnerable-file prediction replication\n")
	fmt.Fprintf(&sb, "  files analyzed            %6d (%d vulnerable)\n", res.Files, res.VulnFiles)
	fmt.Fprintf(&sb, "  features                  %s\n", strings.Join(shinFeatures, ", "))
	fmt.Fprintf(&sb, "  recall (vulnerable files) %6.2f   (paper target: ~0.80)\n", res.Recall)
	fmt.Fprintf(&sb, "  precision                 %6.2f\n", res.Precision)
	fmt.Fprintf(&sb, "  accuracy                  %6.2f\n", res.Accuracy)
	res.Table = sb.String()
	return res, nil
}
