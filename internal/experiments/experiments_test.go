package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/survey"
)

func TestFigure1MatchesPaper(t *testing.T) {
	r := Figure1()
	if got := r.Counts.Total(survey.MethodLoC); got != 384 {
		t.Errorf("LoC total = %d", got)
	}
	if got := r.Counts.Total(survey.MethodCVECount); got != 116 {
		t.Errorf("CVE total = %d", got)
	}
	if got := r.Counts.Total(survey.MethodFormal); got != 31 {
		t.Errorf("formal total = %d", got)
	}
	if !strings.Contains(r.Table, "Figure 1") {
		t.Error("table header missing")
	}
}

func TestFigure2MatchesPaper(t *testing.T) {
	r, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Fit.Slope-0.39) > 0.03 {
		t.Errorf("slope = %v", r.Fit.Slope)
	}
	if math.Abs(r.Fit.Intercept-0.17) > 0.08 {
		t.Errorf("intercept = %v", r.Fit.Intercept)
	}
	if math.Abs(r.Fit.R2-0.2466) > 0.04 {
		t.Errorf("R2 = %v", r.Fit.R2)
	}
	if r.PerLang[lang.C] != 126 {
		t.Errorf("C apps = %d", r.PerLang[lang.C])
	}
	if !strings.Contains(r.Table, "R^2") {
		t.Error("fit line missing from table")
	}
}

func TestFigure3WeakCorrelation(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// "Similarly weak": R² in the same band as Figure 2, far below strong.
	if r.Fit.R2 < 0.05 || r.Fit.R2 > 0.45 {
		t.Errorf("cyclomatic R2 = %v, want weak correlation", r.Fit.R2)
	}
}

func TestFigure4ModelsBeatBaselines(t *testing.T) {
	r, err := Figure4(core.KindForest, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	beatLoC := 0
	for _, row := range r.Rows {
		base := row.BaseRate
		if base < 0.5 {
			base = 1 - base
		}
		// Multi-feature models must stay at or above the majority-class
		// baseline (a small tolerance for the heavily imbalanced
		// hypotheses, where accuracy is a blunt instrument)...
		if row.Accuracy < base-0.05 {
			t.Errorf("%s: acc %.3f below baseline %.3f", row.Hypothesis, row.Accuracy, base)
		}
		// ...and must clearly rank positives above negatives.
		if row.AUC <= 0.6 {
			t.Errorf("%s: AUC %.3f is near chance", row.Hypothesis, row.AUC)
		}
		// ...and usually beat LoC alone (count the wins below).
		if row.AUC > row.LoCOnlyAUC {
			beatLoC++
		}
	}
	if beatLoC < 4 {
		t.Errorf("full features beat LoC-only on only %d/5 hypotheses", beatLoC)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Apps != 164 || r.TotalCVEs != 5975 {
		t.Fatalf("corpus = %d apps, %d CVEs", r.Apps, r.TotalCVEs)
	}
	if r.MeanScore < 3 || r.MeanScore > 9 {
		t.Errorf("mean score = %v", r.MeanScore)
	}
	if !strings.Contains(r.Table, "5,975") {
		t.Error("paper reference missing")
	}
}

func TestTable2ShinReplication(t *testing.T) {
	r, err := Table2(150, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's target: ~80% of vulnerable files predicted.
	if r.Recall < 0.6 || r.Recall > 1.0 {
		t.Errorf("recall = %v, want in the vicinity of 0.80", r.Recall)
	}
	if r.Precision < 0.5 {
		t.Errorf("precision = %v collapsed", r.Precision)
	}
	if r.VulnFiles == 0 || r.VulnFiles == r.Files {
		t.Errorf("degenerate labels: %d/%d", r.VulnFiles, r.Files)
	}
}

func TestAblationLoCOnly(t *testing.T) {
	r, err := AblationLoCOnly(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Table, "LoC-only") && !strings.Contains(r.Table, "loc-auc") {
		t.Errorf("table = %q", r.Table)
	}
}

func TestAblationClassifiers(t *testing.T) {
	r, err := AblationClassifiers(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(core.AllKinds) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// ZeroR must be the floor on AUC.
	var zeroAUC, bestAUC float64
	for _, row := range r.Rows {
		if row.Kind == core.KindZeroR {
			zeroAUC = row.AUC
		}
		if row.AUC > bestAUC {
			bestAUC = row.AUC
		}
	}
	if bestAUC <= zeroAUC {
		t.Errorf("no classifier beats ZeroR: best %.3f vs %.3f", bestAUC, zeroAUC)
	}
}

func TestAblationFeatureSelection(t *testing.T) {
	r, err := AblationFeatureSelection(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.AUC < 0.5 {
			t.Errorf("top-%d AUC = %v", row.TopK, row.AUC)
		}
	}
}

func TestAblationSymexecBound(t *testing.T) {
	r, err := AblationSymexecBound(13)
	if err != nil {
		t.Fatal(err)
	}
	// Feasible path count is non-decreasing in the loop bound.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Feasible < r.Rows[i-1].Feasible {
			t.Errorf("path yield decreased: %+v", r.Rows)
		}
	}
}

func TestRegressionFullBeatsLoC(t *testing.T) {
	r, err := Regression(17)
	if err != nil {
		t.Fatal(err)
	}
	if r.FullR2 <= r.LoCR2 {
		t.Errorf("full R2 %.3f does not beat LoC-only %.3f — the paper's thesis fails", r.FullR2, r.LoCR2)
	}
	if r.LoCR2 > 0.4 {
		t.Errorf("LoC-only out-of-sample R2 %.3f suspiciously strong", r.LoCR2)
	}
}

func TestFuncRankReplication(t *testing.T) {
	r, err := FuncRank(40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.VulnFuncs == 0 || r.VulnFuncs == r.Functions {
		t.Fatalf("degenerate labels: %d/%d", r.VulnFuncs, r.Functions)
	}
	if len(r.Cutoffs) == 0 {
		t.Fatal("no cutoffs reported")
	}
	// The LEOPARD claim: a small inspection budget catches vulnerable
	// functions far above the base rate. At top-10 the precision must beat
	// the population density by a wide margin.
	base := float64(r.VulnFuncs) / float64(r.Functions)
	first := r.Cutoffs[0]
	if first.Precision < 2*base {
		t.Errorf("top-%d precision %.2f does not beat base rate %.2f by 2x",
			first.TopN, first.Precision, base)
	}
	// Recall must grow monotonically with the budget and get substantial by
	// the widest cutoff.
	last := r.Cutoffs[len(r.Cutoffs)-1]
	for i := 1; i < len(r.Cutoffs); i++ {
		if r.Cutoffs[i].Recall < r.Cutoffs[i-1].Recall {
			t.Errorf("recall not monotone at cutoff %d", i)
		}
	}
	if last.Recall < 0.7 {
		t.Errorf("recall at top-%d = %.2f, want >= 0.7", last.TopN, last.Recall)
	}
}
