package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/funcrank"
	"repro/internal/lang"
	"repro/internal/langgen"
	"repro/internal/vcsgen"
)

// FuncRank: the function-level companion to Table2's file-level Shin et al.
// replication. LEOPARD (Du et al.) showed that binning functions by
// complexity and ranking within bins by vulnerability metrics surfaces
// vulnerable functions in the top of the list without any training data;
// Viszkok et al. showed process metrics (churn, authors, commit frequency)
// sharpen function-level prediction further. We generate a tree whose
// injected source→sink functions are the ground truth, rank it with the
// funcrank engine (with synthetic VCS history attached), and report the
// recall and precision of the top-N prefix at several inspection budgets.

// FuncRankCutoff is one row of the replication table: how much of the
// injected-vulnerable population an inspection budget of TopN functions
// catches.
type FuncRankCutoff struct {
	TopN      int
	Hits      int
	Recall    float64
	Precision float64
}

// FuncRankResult carries the function-level replication outcome.
type FuncRankResult struct {
	Functions int
	VulnFuncs int
	Cutoffs   []FuncRankCutoff
	Table     string
}

// FuncRank runs the function-level vulnerable-function ranking experiment
// over a generated tree of nFiles files.
func FuncRank(nFiles int, seed uint64) (FuncRankResult, error) {
	spec := langgen.Spec{
		Language:     lang.MiniC,
		Files:        nFiles,
		FuncsPerFile: 6,
		StmtsPerFunc: 8,
		BranchProb:   0.22,
		LoopProb:     0.12,
		CallProb:     0.18,
		CommentRate:  0.2,
		VulnDensity:  0.18,
		Seed:         seed,
	}
	tree, _, funcLabels := langgen.GenerateFuncLabeled(spec)
	ranking, err := funcrank.Rank(context.Background(), tree, funcrank.Config{
		VCS: vcsgen.New(seed),
	})
	if err != nil {
		return FuncRankResult{}, err
	}
	vuln := 0
	for _, v := range funcLabels {
		if v {
			vuln++
		}
	}
	res := FuncRankResult{Functions: ranking.Functions, VulnFuncs: vuln}
	// Inspection budgets: LEOPARD's framing is "inspect the top N% of the
	// ranked list"; we report fixed prefixes spanning roughly 5-40% of the
	// population.
	for _, topN := range []int{10, 20, 40, 80} {
		if topN > len(ranking.Ranked) {
			topN = len(ranking.Ranked)
		}
		hits := 0
		for _, e := range ranking.Ranked[:topN] {
			if funcLabels[e.Name] {
				hits++
			}
		}
		c := FuncRankCutoff{TopN: topN, Hits: hits}
		if vuln > 0 {
			c.Recall = float64(hits) / float64(vuln)
		}
		if topN > 0 {
			c.Precision = float64(hits) / float64(topN)
		}
		res.Cutoffs = append(res.Cutoffs, c)
		if topN == len(ranking.Ranked) {
			break
		}
	}
	var sb strings.Builder
	sb.WriteString("Function-level ranking (§4): LEOPARD-style vulnerable-function replication\n")
	fmt.Fprintf(&sb, "  functions ranked          %6d (%d with injected source→sink flaw)\n",
		res.Functions, res.VulnFuncs)
	fmt.Fprintf(&sb, "  complexity bins           %6d\n", ranking.Bins)
	fmt.Fprintf(&sb, "  %6s %6s %8s %10s\n", "top-N", "hits", "recall", "precision")
	for _, c := range res.Cutoffs {
		fmt.Fprintf(&sb, "  %6d %6d %8.2f %10.2f\n", c.TopN, c.Hits, c.Recall, c.Precision)
	}
	res.Table = sb.String()
	return res, nil
}
