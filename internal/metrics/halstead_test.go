package metrics

import (
	"math"
	"testing"
)

func TestHalsteadSmallProgram(t *testing.T) {
	// Operators: int(2), =(2), ;(2), +(1)      -> n1=4, N1=7
	// Operands:  a(2), b(1), 1(1), 2(1)        -> n2=4, N2=5
	src := "int a = 1; int b = a + 2;"
	h := HalsteadOf(cFile(src))
	if h.DistinctOperators != 4 {
		t.Errorf("n1 = %d, want 4", h.DistinctOperators)
	}
	if h.DistinctOperands != 4 {
		t.Errorf("n2 = %d, want 4", h.DistinctOperands)
	}
	if h.TotalOperators != 7 {
		t.Errorf("N1 = %d, want 7", h.TotalOperators)
	}
	if h.TotalOperands != 5 {
		t.Errorf("N2 = %d, want 5", h.TotalOperands)
	}
	if h.Vocabulary != 8 || h.Length != 12 {
		t.Errorf("n=%d N=%d", h.Vocabulary, h.Length)
	}
	wantVol := 12 * math.Log2(8)
	if math.Abs(h.Volume-wantVol) > 1e-9 {
		t.Errorf("Volume = %v, want %v", h.Volume, wantVol)
	}
	wantDiff := 4.0 / 2 * 5.0 / 4
	if math.Abs(h.Difficulty-wantDiff) > 1e-9 {
		t.Errorf("Difficulty = %v, want %v", h.Difficulty, wantDiff)
	}
	if math.Abs(h.Effort-h.Volume*h.Difficulty) > 1e-9 {
		t.Errorf("Effort inconsistent")
	}
	if math.Abs(h.EstimatedBugs-h.Volume/3000) > 1e-12 {
		t.Errorf("EstimatedBugs inconsistent")
	}
}

func TestHalsteadEmpty(t *testing.T) {
	h := HalsteadOf(cFile(""))
	if h.Volume != 0 || h.Difficulty != 0 || h.Effort != 0 {
		t.Fatalf("empty Halstead = %+v", h)
	}
}

func TestHalsteadCommentsExcluded(t *testing.T) {
	with := HalsteadOf(cFile("int a = 1; // a comment full of words\n"))
	without := HalsteadOf(cFile("int a = 1;\n"))
	if with.Length != without.Length {
		t.Fatalf("comments leaked into Halstead: %d vs %d", with.Length, without.Length)
	}
}

func TestHalsteadMonotoneInCode(t *testing.T) {
	small := HalsteadOf(cFile("int a = 1;"))
	large := HalsteadOf(cFile("int a = 1; int b = 2; int c = a + b; if (c) { c = c * 2; }"))
	if large.Volume <= small.Volume {
		t.Fatalf("volume not monotone: %v vs %v", small.Volume, large.Volume)
	}
	if large.Length <= small.Length {
		t.Fatalf("length not monotone")
	}
}

func TestHalsteadTreePoolsVocabulary(t *testing.T) {
	a := File{Path: "a.c", Content: "int x = 1;"}
	b := File{Path: "b.c", Content: "int x = 1;"}
	tree := NewTree("t", a, b)
	h := HalsteadTree(tree)
	single := HalsteadOf(NewTree("s", a).Files[0])
	// Pooled distinct counts equal the single file's (same vocabulary),
	// totals double.
	if h.DistinctOperands != single.DistinctOperands {
		t.Fatalf("pooled n2 = %d, want %d", h.DistinctOperands, single.DistinctOperands)
	}
	if h.TotalOperands != 2*single.TotalOperands {
		t.Fatalf("pooled N2 = %d, want %d", h.TotalOperands, 2*single.TotalOperands)
	}
}
