package metrics

import (
	"sort"

	"repro/internal/lexer"
)

// Hotspot ranks one function by its concentration of risk-correlated
// properties — §6's "identify individual code metrics that contribute to
// this risk and work from there", at function granularity.
type Hotspot struct {
	Function   FunctionMetrics
	UnsafeHits int // unsafe/format API call sites inside the body
	// Score combines complexity, length, nesting, and unsafe usage into a
	// single ranking key (weights match the smell thresholds' relative
	// severities; the absolute value is only meaningful for ordering).
	Score float64
}

// Hotspots returns every function in the tree ranked by score, highest
// first.
func Hotspots(t *Tree) []Hotspot {
	var out []Hotspot
	buf := scanPool.Get().(*scanBuf)
	defer scanPool.Put(buf)
	for _, f := range t.Files {
		buf.all = lexer.TokenizeInto(buf.all[:0], f.Content, f.Language)
		buf.code = lexer.CodeInto(buf.code[:0], buf.all)
		fns := CyclomaticTokens(f, buf.code)
		if len(fns) == 0 {
			continue
		}
		// Count unsafe/format call sites per function by token position:
		// functions are non-overlapping and sorted by starting line.
		toks := buf.code
		unsafeLines := make([]int, 0, 8)
		for i, tok := range toks {
			if tok.Kind != lexer.Ident {
				continue
			}
			if i+1 < len(toks) && toks[i+1].Text() == "(" &&
				(unsafeAPIs[tok.Text()] || formatAPIs[tok.Text()]) {
				unsafeLines = append(unsafeLines, int(tok.Line))
			}
		}
		for idx, fn := range fns {
			endLine := int(^uint(0) >> 1) // last function runs to EOF
			if idx+1 < len(fns) {
				endLine = fns[idx+1].Line
			}
			hits := 0
			for _, l := range unsafeLines {
				if l >= fn.Line && l < endLine {
					hits++
				}
			}
			h := Hotspot{Function: fn, UnsafeHits: hits}
			h.Score = float64(fn.Cyclomatic)*2 +
				float64(fn.Length)*0.05 +
				float64(fn.MaxNesting)*3 +
				float64(fn.Params)*1 +
				float64(hits)*10
			out = append(out, h)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// TopHotspots returns at most n entries.
func TopHotspots(t *Tree, n int) []Hotspot {
	all := Hotspots(t)
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
