package metrics

import (
	"strings"

	"repro/internal/lang"
)

// LineCount classifies the physical lines of a file the way cloc does:
// every line is exactly one of blank, comment, or code. A line holding both
// code and a comment counts as code.
type LineCount struct {
	Blank   int
	Comment int
	Code    int
}

// Total returns the number of physical lines.
func (c LineCount) Total() int { return c.Blank + c.Comment + c.Code }

// Add accumulates another count.
func (c *LineCount) Add(o LineCount) {
	c.Blank += o.Blank
	c.Comment += o.Comment
	c.Code += o.Code
}

// CountLines classifies every line of the file. The classifier is a small
// state machine over raw text (not the token stream) so it is exact about
// blank lines and mixed code/comment lines, matching cloc's semantics.
func CountLines(f File) LineCount {
	syn := lang.SyntaxOf(f.Language)
	var out LineCount
	inBlock := false  // inside a /* ... */ block comment
	inTriple := false // inside a Python triple-quoted string
	tripleQuote := "" // the active triple delimiter

	lines := splitLines(f.Content)
	for _, line := range lines {
		hasCode := false
		hasComment := false
		i := 0
		if inBlock {
			hasComment = true
			end := strings.Index(line, syn.BlockEnd)
			if end < 0 {
				out.bump(line, hasCode, hasComment)
				continue
			}
			inBlock = false
			i = end + len(syn.BlockEnd)
		}
		if inTriple {
			// The string is code (it is a value), matching cloc's treatment
			// of continued string literals.
			hasCode = true
			end := strings.Index(line, tripleQuote)
			if end < 0 {
				out.bump(line, hasCode, hasComment)
				continue
			}
			inTriple = false
			i = end + len(tripleQuote)
		}
	scan:
		for i < len(line) {
			c := line[i]
			if c == ' ' || c == '\t' || c == '\r' {
				i++
				continue
			}
			// Line comments.
			for _, lc := range syn.LineComment {
				if strings.HasPrefix(line[i:], lc) {
					hasComment = true
					break scan
				}
			}
			// Block comments.
			if syn.BlockStart != "" && strings.HasPrefix(line[i:], syn.BlockStart) {
				hasComment = true
				end := strings.Index(line[i+len(syn.BlockStart):], syn.BlockEnd)
				if end < 0 {
					inBlock = true
					break scan
				}
				i += len(syn.BlockStart) + end + len(syn.BlockEnd)
				continue
			}
			// Triple-quoted strings.
			if syn.RawTripleQuote && (strings.HasPrefix(line[i:], `"""`) || strings.HasPrefix(line[i:], "'''")) {
				hasCode = true
				q := line[i : i+3]
				end := strings.Index(line[i+3:], q)
				if end < 0 {
					inTriple = true
					tripleQuote = q
					break scan
				}
				i += 3 + end + 3
				continue
			}
			// Quoted strings: skip to the closing quote so comment markers
			// inside strings do not count.
			isQuote := false
			for _, q := range syn.StringQuotes {
				if c == q {
					isQuote = true
					hasCode = true
					i++
					for i < len(line) {
						if line[i] == '\\' && i+1 < len(line) {
							i += 2
							continue
						}
						if line[i] == q {
							i++
							break
						}
						i++
					}
					break
				}
			}
			if isQuote {
				continue
			}
			hasCode = true
			i++
		}
		out.bump(line, hasCode, hasComment)
	}
	return out
}

// bump classifies one line given what the scan found.
func (c *LineCount) bump(line string, hasCode, hasComment bool) {
	switch {
	case hasCode:
		c.Code++
	case hasComment:
		c.Comment++
	case strings.TrimSpace(line) == "":
		c.Blank++
	default:
		// Unreachable: a non-blank line without code or comment would have
		// set hasCode. Kept for totality.
		c.Code++
	}
}

// splitLines splits content into physical lines without the trailing
// newline. A trailing newline does not create a phantom empty line.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}

// CountTree sums line counts over an entire tree, and per language.
func CountTree(t *Tree) (total LineCount, perLang map[lang.Language]LineCount) {
	perLang = map[lang.Language]LineCount{}
	for _, f := range t.Files {
		c := CountLines(f)
		total.Add(c)
		pl := perLang[f.Language]
		pl.Add(c)
		perLang[f.Language] = pl
	}
	return total, perLang
}
