package metrics

import (
	"repro/internal/lang"
	"repro/internal/lexer"
)

// FunctionMetrics summarizes one function definition.
type FunctionMetrics struct {
	Name       string
	File       string
	Line       int
	Length     int // token count of the body
	Cyclomatic int // McCabe complexity: 1 + decision points
	MaxNesting int // deepest brace/indent nesting inside the body
	Params     int // number of parameters
}

// Cyclomatic computes McCabe complexity for every function in the file.
// For brace languages, function bodies are found structurally (an identifier
// followed by a parenthesized parameter list followed by '{' at top level);
// for Python, bodies are found from "def" and indentation.
//
// Complexity is 1 plus the number of decision points: branching keywords
// (if/for/while/case/catch/elif/except), the ternary '?', and short-circuit
// operators '&&'/'||' (or Python's and/or), following the counting rule the
// common tools (CCCC, Metrix++, lizard) use.
func Cyclomatic(f File) []FunctionMetrics {
	return CyclomaticTokens(f, lexer.Code(lexer.Tokenize(f.Content, f.Language)))
}

// CyclomaticTokens is Cyclomatic over a pre-scanned semantic token stream
// (the lexer.Code tokens of f.Content). Callers that already hold the file's
// tokens avoid re-tokenizing; results are identical to Cyclomatic.
func CyclomaticTokens(f File, code []lexer.Token) []FunctionMetrics {
	return cyclomaticTokens(f, code, nil)
}

// cyclomaticTokens dispatches on block style; lines, when non-nil, must be
// splitLines(f.Content) (indent languages only consult it).
func cyclomaticTokens(f File, code []lexer.Token, lines []string) []FunctionMetrics {
	syn := lang.SyntaxOf(f.Language)
	if syn.IndentBlocks {
		if lines == nil {
			lines = splitLines(f.Content)
		}
		return cyclomaticIndent(f, code, syn, lines)
	}
	return cyclomaticBraces(f, code, syn)
}

// cyclomaticBraces scans a C/C++/Java token stream.
func cyclomaticBraces(f File, toks []lexer.Token, syn lang.Syntax) []FunctionMetrics {
	var out []FunctionMetrics
	depth := 0
	i := 0
	for i < len(toks) {
		t := toks[i]
		switch t.Text() {
		case "{":
			depth++
			i++
			continue
		case "}":
			depth--
			i++
			continue
		}
		// A function definition at top level (or class level for Java/C++:
		// depth <= 1 tolerates methods inside one class/namespace block).
		if depth <= 1 && (t.Kind == lexer.Ident || t.Kind == lexer.Keyword) {
			if name, params, bodyStart, ok := matchFunctionHeader(toks, i); ok {
				fm := FunctionMetrics{Name: name, File: f.Path, Line: int(t.Line), Params: params, Cyclomatic: 1}
				end := scanBody(toks, bodyStart, syn, &fm)
				out = append(out, fm)
				i = end
				continue
			}
		}
		i++
	}
	return out
}

// matchFunctionHeader tries to match "ident ( ... ) {" starting near i.
// It returns the function name, parameter count, the index of the '{', and
// whether a definition was found. The name is the identifier immediately
// before '('.
func matchFunctionHeader(toks []lexer.Token, i int) (string, int, int, bool) {
	// Find the '(' within a few tokens (return type + name).
	j := i
	lastIdent := -1
	for j < len(toks) && j < i+8 {
		t := toks[j]
		if t.Kind == lexer.Ident {
			lastIdent = j
		} else if t.Kind != lexer.Keyword {
			if s := t.Text(); s != "*" && s != "&" && s != "::" {
				break
			}
		}
		j++
	}
	if lastIdent < 0 || j >= len(toks) || toks[j].Text() != "(" {
		return "", 0, 0, false
	}
	if controlKeyword(toks[lastIdent].Text()) {
		return "", 0, 0, false
	}
	name := toks[lastIdent].Text()
	// Scan the parameter list.
	depth := 0
	params := 0
	sawAny := false
	k := j
	for k < len(toks) {
		switch toks[k].Text() {
		case "(":
			depth++
		case ")":
			depth--
			if depth == 0 {
				if sawAny {
					params++
				}
				k++
				goto closed
			}
		case ",":
			if depth == 1 {
				params++
			}
		default:
			if depth == 1 && toks[k].Text() != "void" {
				sawAny = true
			}
		}
		k++
	}
	return "", 0, 0, false
closed:
	// Skip qualifiers between ')' and '{' (const, throws X, noexcept...).
	for k < len(toks) && toks[k].Text() != "{" {
		if s := toks[k].Text(); s == ";" || s == "(" || s == "}" {
			return "", 0, 0, false // declaration, not definition
		}
		k++
	}
	if k >= len(toks) {
		return "", 0, 0, false
	}
	return name, params, k, true
}

func controlKeyword(s string) bool {
	switch s {
	case "if", "for", "while", "switch", "return", "sizeof", "catch", "do", "else":
		return true
	}
	return false
}

// scanBody walks the brace-delimited body starting at the '{' at index
// start, accumulating metrics, and returns the index just past the matching
// '}'.
func scanBody(toks []lexer.Token, start int, syn lang.Syntax, fm *FunctionMetrics) int {
	depth := 0
	nesting := 0
	i := start
	for i < len(toks) {
		t := toks[i]
		text := t.Text()
		switch {
		case text == "{":
			depth++
			if depth-1 > nesting {
				nesting = depth - 1
			}
		case text == "}":
			depth--
			if depth == 0 {
				fm.MaxNesting = nesting
				return i + 1
			}
		case t.Kind == lexer.Keyword && syn.DecisionKeywords[text]:
			// "do" pairs with "while"; avoid double counting do-while by
			// not counting "do" when "while" is also a decision keyword.
			if text != "do" {
				fm.Cyclomatic++
			}
		case text == "&&" || text == "||" || text == "?":
			fm.Cyclomatic++
		}
		fm.Length++
		i++
	}
	fm.MaxNesting = nesting
	return i
}

// cyclomaticIndent scans a Python token stream using def/indentation.
// Token streams do not carry column information, so nesting is tracked by
// re-scanning source lines (passed in by the caller, split once per file).
func cyclomaticIndent(f File, toks []lexer.Token, syn lang.Syntax, lines []string) []FunctionMetrics {
	indentOf := func(lineNo int) int {
		if lineNo-1 < 0 || lineNo-1 >= len(lines) {
			return 0
		}
		n := 0
		for _, c := range lines[lineNo-1] {
			switch c {
			case ' ':
				n++
			case '\t':
				n += 8
			default:
				return n
			}
		}
		return n
	}
	var out []FunctionMetrics
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != lexer.Keyword || !syn.FunctionKeywords[t.Text()] {
			continue
		}
		if i+1 >= len(toks) || toks[i+1].Kind != lexer.Ident {
			continue
		}
		fm := FunctionMetrics{Name: toks[i+1].Text(), File: f.Path, Line: int(t.Line), Cyclomatic: 1}
		defIndent := indentOf(int(t.Line))
		// Count parameters inside the def's parentheses.
		j := i + 2
		if j < len(toks) && toks[j].Text() == "(" {
			depth := 0
			sawAny := false
			for ; j < len(toks); j++ {
				switch toks[j].Text() {
				case "(":
					depth++
				case ")":
					depth--
				case ",":
					if depth == 1 {
						fm.Params++
					}
				default:
					if depth == 1 {
						sawAny = true
					}
				}
				if depth == 0 && toks[j].Text() == ")" {
					break
				}
			}
			if sawAny {
				fm.Params++
			}
		}
		// Body: tokens on lines more indented than the def, until a token at
		// or below the def's indentation on a later line.
		maxIndent := defIndent
		for k := j + 1; k < len(toks); k++ {
			tk := toks[k]
			if tk.Line == t.Line {
				continue
			}
			ind := indentOf(int(tk.Line))
			if ind <= defIndent {
				break
			}
			if ind > maxIndent {
				maxIndent = ind
			}
			fm.Length++
			if tk.Kind == lexer.Keyword && syn.DecisionKeywords[tk.Text()] {
				fm.Cyclomatic++
			}
		}
		// Nesting levels are indentation steps of 4 below the body's first
		// level.
		if maxIndent > defIndent {
			fm.MaxNesting = (maxIndent - defIndent - 4) / 4
			if fm.MaxNesting < 0 {
				fm.MaxNesting = 0
			}
		}
		out = append(out, fm)
	}
	return out
}

// CyclomaticTree returns the per-function metrics of every file plus the
// whole-tree total (the sum of per-function complexities, which is what
// Figure 3's x-axis plots).
func CyclomaticTree(t *Tree) ([]FunctionMetrics, int) {
	sc := scanTree(t)
	return sc.fns, sc.cycloTotal
}
