package metrics

import (
	"math"

	"repro/internal/lexer"
)

// Halstead holds the Halstead software-science measures of a file or tree.
// Operators are keywords, operators, and punctuation; operands are
// identifiers, numbers, and string literals.
type Halstead struct {
	DistinctOperators int     // n1
	DistinctOperands  int     // n2
	TotalOperators    int     // N1
	TotalOperands     int     // N2
	Vocabulary        int     // n = n1 + n2
	Length            int     // N = N1 + N2
	Volume            float64 // N * log2(n)
	Difficulty        float64 // (n1/2) * (N2/n2)
	Effort            float64 // Difficulty * Volume
	// EstimatedBugs is Halstead's delivered-bugs estimate Volume/3000,
	// one of the classic "expected defect" code properties.
	EstimatedBugs float64
}

// HalsteadOf computes the measures for one file.
func HalsteadOf(f File) Halstead {
	return halsteadOfTokens(lexer.Code(lexer.Tokenize(f.Content, f.Language)))
}

func halsteadOfTokens(toks []lexer.Token) Halstead {
	operators := map[string]int{}
	operands := map[string]int{}
	countHalstead(toks, operators, operands)
	return halsteadFromMaps(operators, operands)
}

// countHalstead tallies each semantic token into the vocabulary maps.
func countHalstead(toks []lexer.Token, operators, operands map[string]int) {
	for _, t := range toks {
		switch t.Kind {
		case lexer.Keyword, lexer.Operator, lexer.Punct:
			operators[t.Text()]++
		case lexer.Ident, lexer.Number, lexer.String:
			operands[t.Text()]++
		case lexer.Preproc:
			operators["#"]++
		}
	}
}

// halsteadFromMaps derives the measures from accumulated vocabulary maps.
func halsteadFromMaps(operators, operands map[string]int) Halstead {
	var h Halstead
	h.DistinctOperators = len(operators)
	h.DistinctOperands = len(operands)
	for _, c := range operators {
		h.TotalOperators += c
	}
	for _, c := range operands {
		h.TotalOperands += c
	}
	h.Vocabulary = h.DistinctOperators + h.DistinctOperands
	h.Length = h.TotalOperators + h.TotalOperands
	if h.Vocabulary > 0 {
		h.Volume = float64(h.Length) * math.Log2(float64(h.Vocabulary))
	}
	if h.DistinctOperands > 0 {
		h.Difficulty = float64(h.DistinctOperators) / 2 *
			float64(h.TotalOperands) / float64(h.DistinctOperands)
	}
	h.Effort = h.Difficulty * h.Volume
	h.EstimatedBugs = h.Volume / 3000
	return h
}

// HalsteadTree computes the measures over a whole tree with shared
// vocabulary maps, so distinct counts reflect cross-file vocabulary reuse.
func HalsteadTree(t *Tree) Halstead {
	return scanTree(t).halstead
}
