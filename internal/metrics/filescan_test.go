package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lang"
)

// genSource builds a random C-ish source file exercising every metric
// family: functions with branching (cyclomatic), duplicated lines, long
// lines, TODO markers, magic numbers, attack-surface calls, comments.
func genSource(rng *rand.Rand) string {
	var out string
	stock := []string{
		"int shared_buffer_fill(char *dst, const char *src);",
		"static int counter_value = 4711;",
		"// TODO clean this up before release",
		"/* FIXME boundary handling is wrong for n == 0 */",
	}
	calls := []string{"socket", "fopen", "getenv", "system", "strcpy", "printf", "setuid"}
	nfn := 1 + rng.Intn(4)
	for i := 0; i < nfn; i++ {
		name := fmt.Sprintf("fn_%d", rng.Intn(6))
		if rng.Intn(4) == 0 {
			name = "handle_request"
		}
		out += fmt.Sprintf("int %s(int a, int b, int c) {\n", name)
		for j, n := 0, rng.Intn(8); j < n; j++ {
			switch rng.Intn(5) {
			case 0:
				out += fmt.Sprintf("    if (a > %d) { b = b + %d; }\n", rng.Intn(100), rng.Intn(100))
			case 1:
				out += fmt.Sprintf("    %s(a, b);\n", calls[rng.Intn(len(calls))])
			case 2:
				out += "    " + stock[rng.Intn(len(stock))] + "\n"
			case 3:
				out += fmt.Sprintf("    while (b < %d) { b = b * 3 + a; c = c - 1; }\n", rng.Intn(50))
			case 4:
				out += "    long_accumulator_value = long_accumulator_value + another_fairly_long_identifier_name + yet_one_more_operand_to_push_this_line_far_past_the_limit;\n"
			}
		}
		out += "    return a + b + c;\n}\n"
	}
	return out
}

func randFile(rng *rand.Rand, path string) File {
	langs := []lang.Language{lang.C, lang.MiniC, lang.CPP, lang.Python}
	return File{Path: path, Language: langs[rng.Intn(len(langs))], Content: genSource(rng)}
}

func treeOf(files map[string]File) *Tree {
	t := &Tree{Name: "prop"}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		t.Files = append(t.Files, files[p])
	}
	return t
}

func assertSameVector(t *testing.T, step int, got, want FeatureVector) {
	t.Helper()
	g, w := got.Slice(), want.Slice()
	for i, name := range FeatureNames {
		if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
			t.Fatalf("step %d: feature %s: incremental %v != batch %v", step, name, g[i], w[i])
		}
	}
}

// TestTreeStatsMatchesExtract drives TreeStats through random
// add/modify/remove sequences and asserts Features() is bit-identical to a
// fresh batch Extract of the same file set after every step.
func TestTreeStatsMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed7))
	files := map[string]File{}
	scans := map[string]*FileScan{}
	ts := NewTreeStats()

	// Seed with a handful of files.
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("src/f%02d.c", i)
		f := randFile(rng, p)
		files[p] = f
		scans[p] = ScanFile(f)
		ts.Add(scans[p])
	}
	assertSameVector(t, -1, ts.Features(), Extract(treeOf(files)))

	paths := func() []string {
		out := make([]string, 0, len(files))
		for p := range files {
			out = append(out, p)
		}
		sort.Strings(out)
		return out
	}

	for step := 0; step < 60; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(files) <= 1: // add
			p := fmt.Sprintf("src/g%03d.c", step)
			f := randFile(rng, p)
			files[p] = f
			scans[p] = ScanFile(f)
			ts.Add(scans[p])
		case op == 1: // modify
			p := paths()[rng.Intn(len(files))]
			ts.Remove(scans[p])
			f := randFile(rng, p)
			files[p] = f
			scans[p] = ScanFile(f)
			ts.Add(scans[p])
		default: // remove
			p := paths()[rng.Intn(len(files))]
			ts.Remove(scans[p])
			delete(files, p)
			delete(scans, p)
		}
		assertSameVector(t, step, ts.Features(), Extract(treeOf(files)))
		if ts.Len() != len(files) {
			t.Fatalf("step %d: Len() = %d, want %d", step, ts.Len(), len(files))
		}
	}
}

// TestTreeStatsEmpty checks the degenerate everything-removed state
// matches a batch scan of an empty tree.
func TestTreeStatsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := NewTreeStats()
	f := randFile(rng, "a.c")
	fs := ScanFile(f)
	ts.Add(fs)
	ts.Remove(fs)
	assertSameVector(t, 0, ts.Features(), Extract(&Tree{Name: "empty"}))
	if ts.dupLines != 0 || len(ts.lineSeen) != 0 || len(ts.operators) != 0 || len(ts.operands) != 0 {
		t.Fatalf("aggregate state not empty after full removal: dup=%d lines=%d ops=%d opnds=%d",
			ts.dupLines, len(ts.lineSeen), len(ts.operators), len(ts.operands))
	}
}
