package metrics

import (
	"strings"
	"testing"
)

func TestSmellsCommentRatio(t *testing.T) {
	tree := NewTree("t", File{Path: "a.c", Content: "// one\n// two\nint x;\nint y;\n"})
	s := SmellsOf(tree)
	if s.CommentRatio != 0.5 {
		t.Fatalf("CommentRatio = %v, want 0.5", s.CommentRatio)
	}
}

func TestSmellsTodoCount(t *testing.T) {
	src := "// TODO fix\n/* FIXME: later XXX */\nint x; // also: HACK\n"
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.TodoCount != 4 {
		t.Fatalf("TodoCount = %d, want 4", s.TodoCount)
	}
}

func TestSmellsMagicNumbers(t *testing.T) {
	src := "int a = 0; int b = 1; int c = 2; int d = 42; int e = 1337;\n"
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.MagicNumbers != 2 {
		t.Fatalf("MagicNumbers = %d, want 2", s.MagicNumbers)
	}
}

func TestSmellsManyParams(t *testing.T) {
	src := "int f(int a, int b, int c, int d, int e, int g) { return 0; }\nint h(int a) { return a; }\n"
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.ManyParams != 1 {
		t.Fatalf("ManyParams = %d, want 1", s.ManyParams)
	}
	if s.FunctionCount != 2 {
		t.Fatalf("FunctionCount = %d", s.FunctionCount)
	}
}

func TestSmellsLongFunction(t *testing.T) {
	var b strings.Builder
	b.WriteString("void f(void) {\n")
	for i := 0; i < LongFunctionTokens; i++ {
		b.WriteString("x = x + 1;\n") // 6 tokens per line
	}
	b.WriteString("}\n")
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: b.String()}))
	if s.LongFunctions != 1 {
		t.Fatalf("LongFunctions = %d, want 1", s.LongFunctions)
	}
	if s.MaxFunctionLen <= LongFunctionTokens {
		t.Fatalf("MaxFunctionLen = %d", s.MaxFunctionLen)
	}
}

func TestSmellsDeepNesting(t *testing.T) {
	src := `void f(void) { if(a){ if(b){ if(c){ if(d){ if(e){ x(); } } } } } }`
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.DeeplyNested != 1 {
		t.Fatalf("DeeplyNested = %d, want 1", s.DeeplyNested)
	}
}

func TestSmellsGodFile(t *testing.T) {
	var b strings.Builder
	for i := 0; i <= GodFileLines; i++ {
		b.WriteString("int x;\n")
	}
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: b.String()}))
	if s.GodFiles != 1 {
		t.Fatalf("GodFiles = %d, want 1", s.GodFiles)
	}
}

func TestSmellsDuplicateLines(t *testing.T) {
	line := "result = compute(a, b, c);\n"
	src := strings.Repeat(line, 5)
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.DuplicateLines != 5 {
		t.Fatalf("DuplicateLines = %d, want 5", s.DuplicateLines)
	}
	// Under the threshold: no smell.
	s = SmellsOf(NewTree("t", File{Path: "a.c", Content: strings.Repeat(line, 3)}))
	if s.DuplicateLines != 0 {
		t.Fatalf("DuplicateLines below threshold = %d", s.DuplicateLines)
	}
}

func TestSmellsLongLines(t *testing.T) {
	src := "int x; // " + strings.Repeat("y", 150) + "\nint z;\n"
	s := SmellsOf(NewTree("t", File{Path: "a.c", Content: src}))
	if s.LongLines != 1 {
		t.Fatalf("LongLines = %d, want 1", s.LongLines)
	}
}

func TestSmellsEmptyTree(t *testing.T) {
	s := SmellsOf(NewTree("empty"))
	if s.FunctionCount != 0 || s.CommentRatio != 0 || s.AvgCyclomatic != 0 {
		t.Fatalf("empty smells = %+v", s)
	}
}
