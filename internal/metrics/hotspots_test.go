package metrics

import "testing"

func TestHotspotsRanking(t *testing.T) {
	tree := NewTree("t", File{Path: "a.c", Content: `
int trivial(int a) { return a + 1; }

int scary(int fd, int n) {
	char buf[16];
	if (n > 0) {
		if (fd > 0) {
			while (n > 0) {
				strcpy(buf, fd);
				sprintf(buf, n);
				n--;
			}
		}
	}
	printf(buf);
	return n;
}

int middling(int a) {
	if (a > 0) { a = a * 2; }
	return a;
}
`})
	hs := Hotspots(tree)
	if len(hs) != 3 {
		t.Fatalf("hotspots = %d", len(hs))
	}
	if hs[0].Function.Name != "scary" {
		t.Fatalf("top hotspot = %s", hs[0].Function.Name)
	}
	if hs[0].UnsafeHits != 3 { // strcpy, sprintf, printf
		t.Fatalf("unsafe hits = %d", hs[0].UnsafeHits)
	}
	if hs[len(hs)-1].Function.Name != "trivial" {
		t.Fatalf("bottom hotspot = %s", hs[len(hs)-1].Function.Name)
	}
	for i := 1; i < len(hs); i++ {
		if hs[i].Score > hs[i-1].Score {
			t.Fatal("not sorted by score")
		}
	}
}

func TestHotspotsAttributionBoundaries(t *testing.T) {
	// The unsafe call in g must not be attributed to f.
	tree := NewTree("t", File{Path: "a.c", Content: `
int f(int a) { return a; }
int g(int a) { gets(a); return a; }
`})
	hs := Hotspots(tree)
	for _, h := range hs {
		switch h.Function.Name {
		case "f":
			if h.UnsafeHits != 0 {
				t.Fatalf("f charged with g's call: %+v", h)
			}
		case "g":
			if h.UnsafeHits != 1 {
				t.Fatalf("g hits = %d", h.UnsafeHits)
			}
		}
	}
}

func TestTopHotspotsBounds(t *testing.T) {
	tree := NewTree("t", File{Path: "a.c", Content: `
int a(void) { return 1; }
int b(void) { return 2; }
int c(void) { return 3; }
`})
	if got := TopHotspots(tree, 2); len(got) != 2 {
		t.Fatalf("top 2 = %d", len(got))
	}
	if got := TopHotspots(tree, 0); len(got) != 3 {
		t.Fatalf("top 0 (all) = %d", len(got))
	}
	if got := TopHotspots(NewTree("empty"), 5); len(got) != 0 {
		t.Fatalf("empty = %d", len(got))
	}
}
