package metrics

import (
	"strings"

	"repro/internal/lexer"
)

// Smells aggregates the "code smell" indicators (§3: lines of comments,
// numbers of long methods, and similar symptoms of bad practice) for a tree.
type Smells struct {
	LongFunctions  int     // functions with > LongFunctionTokens body tokens
	DeeplyNested   int     // functions with nesting depth > DeepNesting
	ManyParams     int     // functions with > ManyParams parameters
	GodFiles       int     // files with > GodFileLines code lines
	CommentRatio   float64 // comment lines / (comment + code) lines
	MagicNumbers   int     // numeric literals other than 0, 1, 2
	TodoCount      int     // TODO/FIXME/XXX/HACK markers in comments
	DuplicateLines int     // identical non-trivial code lines appearing > 3 times
	LongLines      int     // physical lines over 120 characters
	FunctionCount  int
	AvgFunctionLen float64
	MaxFunctionLen int
	AvgCyclomatic  float64
	MaxCyclomatic  int
}

// Thresholds used by the smell detectors; exported so experiments can sweep
// them.
const (
	LongFunctionTokens = 300
	DeepNesting        = 4
	ManyParamsLimit    = 5
	GodFileLines       = 1000
	LongLineChars      = 120
)

// SmellsOf computes every smell indicator for a tree.
func SmellsOf(t *Tree) Smells {
	var s Smells
	var commentLines, codeLines int
	lineSeen := map[string]int{}
	var totalLen, totalCyclo int

	for _, f := range t.Files {
		lc := CountLines(f)
		commentLines += lc.Comment
		codeLines += lc.Code
		if lc.Code > GodFileLines {
			s.GodFiles++
		}
		for _, line := range splitLines(f.Content) {
			if len(line) > LongLineChars {
				s.LongLines++
			}
			trimmed := strings.TrimSpace(line)
			if len(trimmed) > 10 && !strings.HasPrefix(trimmed, "//") && !strings.HasPrefix(trimmed, "#") {
				lineSeen[trimmed]++
			}
		}
		for _, tok := range lexer.Tokenize(f.Content, f.Language) {
			switch tok.Kind {
			case lexer.Comment:
				up := strings.ToUpper(tok.Text)
				for _, marker := range []string{"TODO", "FIXME", "XXX", "HACK"} {
					s.TodoCount += strings.Count(up, marker)
				}
			case lexer.Number:
				if tok.Text != "0" && tok.Text != "1" && tok.Text != "2" {
					s.MagicNumbers++
				}
			}
		}
		for _, fn := range Cyclomatic(f) {
			s.FunctionCount++
			totalLen += fn.Length
			totalCyclo += fn.Cyclomatic
			if fn.Length > LongFunctionTokens {
				s.LongFunctions++
			}
			if fn.MaxNesting > DeepNesting {
				s.DeeplyNested++
			}
			if fn.Params > ManyParamsLimit {
				s.ManyParams++
			}
			if fn.Length > s.MaxFunctionLen {
				s.MaxFunctionLen = fn.Length
			}
			if fn.Cyclomatic > s.MaxCyclomatic {
				s.MaxCyclomatic = fn.Cyclomatic
			}
		}
	}
	for _, n := range lineSeen {
		if n > 3 {
			s.DuplicateLines += n
		}
	}
	if commentLines+codeLines > 0 {
		s.CommentRatio = float64(commentLines) / float64(commentLines+codeLines)
	}
	if s.FunctionCount > 0 {
		s.AvgFunctionLen = float64(totalLen) / float64(s.FunctionCount)
		s.AvgCyclomatic = float64(totalCyclo) / float64(s.FunctionCount)
	}
	return s
}
