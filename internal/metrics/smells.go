package metrics

// Smells aggregates the "code smell" indicators (§3: lines of comments,
// numbers of long methods, and similar symptoms of bad practice) for a tree.
type Smells struct {
	LongFunctions  int     // functions with > LongFunctionTokens body tokens
	DeeplyNested   int     // functions with nesting depth > DeepNesting
	ManyParams     int     // functions with > ManyParams parameters
	GodFiles       int     // files with > GodFileLines code lines
	CommentRatio   float64 // comment lines / (comment + code) lines
	MagicNumbers   int     // numeric literals other than 0, 1, 2
	TodoCount      int     // TODO/FIXME/XXX/HACK markers in comments
	DuplicateLines int     // identical non-trivial code lines appearing > 3 times
	LongLines      int     // physical lines over 120 characters
	FunctionCount  int
	AvgFunctionLen float64
	MaxFunctionLen int
	AvgCyclomatic  float64
	MaxCyclomatic  int
}

// Thresholds used by the smell detectors; exported so experiments can sweep
// them.
const (
	LongFunctionTokens = 300
	DeepNesting        = 4
	ManyParamsLimit    = 5
	GodFileLines       = 1000
	LongLineChars      = 120
)

// SmellsOf computes every smell indicator for a tree.
func SmellsOf(t *Tree) Smells {
	return scanTree(t).smells
}
