package metrics

import "testing"

func TestMaintainabilitySmallClean(t *testing.T) {
	tree := NewTree("clean", File{Path: "a.c", Content: `
// a tiny well-factored helper
int add(int a, int b) { return a + b; }
`})
	mi := Maintainability(tree)
	if mi.Rescaled < 50 {
		t.Fatalf("tiny clean code MI = %v, want high", mi.Rescaled)
	}
	if mi.Band != "high" {
		t.Fatalf("band = %q", mi.Band)
	}
	if mi.WithBonus < mi.Rescaled {
		t.Fatalf("comment bonus lowered the index: %v < %v", mi.WithBonus, mi.Rescaled)
	}
}

func TestMaintainabilityDecreasesWithComplexity(t *testing.T) {
	simple := NewTree("s", File{Path: "a.c", Content: "int f(void) { return 1; }\n"})
	var big string
	big = "int f(int a) {\n"
	for i := 0; i < 200; i++ {
		big += "\tif (a > " + itoa(i) + ") { a = a * 2 + " + itoa(i) + "; }\n"
	}
	big += "\treturn a;\n}\n"
	complexTree := NewTree("c", File{Path: "a.c", Content: big})
	miS := Maintainability(simple)
	miC := Maintainability(complexTree)
	if miC.Rescaled >= miS.Rescaled {
		t.Fatalf("MI not decreasing: simple %v vs complex %v", miS.Rescaled, miC.Rescaled)
	}
}

func TestMaintainabilityBounds(t *testing.T) {
	empty := NewTree("e")
	mi := Maintainability(empty)
	if mi.Rescaled < 0 || mi.Rescaled > 100 || mi.WithBonus < 0 || mi.WithBonus > 100 {
		t.Fatalf("MI out of bounds: %+v", mi)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
