// Package metrics implements the code-property extractors the paper feeds
// into its prediction model: a cloc-equivalent line classifier, McCabe
// cyclomatic complexity, Halstead software-science measures, code-smell
// detectors, an attack-surface estimator, and the assembly of all of them
// into a named feature vector.
package metrics

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lang"
)

// File is one source file to analyze.
type File struct {
	Path     string
	Language lang.Language
	Content  string
}

// Tree is a source tree: the unit of analysis for an application.
type Tree struct {
	Name  string
	Files []File
}

// NewTree builds a tree from in-memory files, inferring languages from
// paths where unset.
func NewTree(name string, files ...File) *Tree {
	t := &Tree{Name: name}
	for _, f := range files {
		if f.Language == lang.Unknown {
			f.Language = lang.FromPath(f.Path)
		}
		t.Files = append(t.Files, f)
	}
	return t
}

// LoadTree walks dir and loads every file with a recognized source
// extension. Hidden entries (dot-prefixed directories and files alike) are
// skipped.
func LoadTree(dir string) (*Tree, error) {
	t := &Tree{Name: filepath.Base(dir)}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != dir {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		l := lang.FromPath(path)
		if l == lang.Unknown {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("metrics: read %s: %w", path, err)
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		t.Files = append(t.Files, File{Path: rel, Language: l, Content: string(data)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(t.Files, func(i, j int) bool { return t.Files[i].Path < t.Files[j].Path })
	return t, nil
}

// PrimaryLanguage returns the language with the most code lines in the tree,
// mirroring how the paper buckets applications ("primarily C", etc.).
func (t *Tree) PrimaryLanguage() lang.Language {
	counts := map[lang.Language]int{}
	for _, f := range t.Files {
		c := CountLines(f)
		counts[f.Language] += c.Code
	}
	return primaryFromCounts(counts)
}
