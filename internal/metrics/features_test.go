package metrics

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lang"
)

func sampleTree() *Tree {
	return NewTree("sample",
		File{Path: "main.c", Content: `
#include <stdio.h>
// entry point
int main(int argc, char **argv) {
	char buf[16];
	if (argc > 1) {
		strcpy(buf, argv[1]);
	}
	printf(buf);
	return 0;
}
`},
		File{Path: "util.c", Content: `
int helper(int x) {
	while (x > 100) { x = x / 2; }
	return x;
}
`},
	)
}

func TestExtractPopulatesCoreFeatures(t *testing.T) {
	fv := Extract(sampleTree())
	if fv[FeatKLoC] <= 0 {
		t.Error("kloc not set")
	}
	if fv[FeatFiles] != 2 {
		t.Errorf("files = %v", fv[FeatFiles])
	}
	if fv[FeatLanguageUnsafe] != 1 {
		t.Error("C tree should be language_unsafe")
	}
	if fv[FeatFunctions] != 2 {
		t.Errorf("functions = %v", fv[FeatFunctions])
	}
	if fv[FeatCyclomaticTotal] < 3 {
		t.Errorf("cyclomatic_total = %v", fv[FeatCyclomaticTotal])
	}
	if fv[FeatUnsafeCalls] != 1 {
		t.Errorf("unsafe_calls = %v", fv[FeatUnsafeCalls])
	}
	if fv[FeatEntryPoints] != 1 {
		t.Errorf("entry_points = %v", fv[FeatEntryPoints])
	}
	if fv[FeatHalsteadVolume] <= 0 {
		t.Error("halstead_volume not set")
	}
	// Enrichment features default to zero.
	if fv[FeatChurn] != 0 || fv[FeatTaintedSinks] != 0 {
		t.Error("enrichment features should default to 0")
	}
}

func TestExtractManagedLanguage(t *testing.T) {
	tree := NewTree("j", File{Path: "A.java", Content: "class A { int f() { return 1; } }"})
	fv := Extract(tree)
	if fv[FeatLanguageUnsafe] != 0 {
		t.Error("Java tree marked unsafe")
	}
}

func TestFeatureVectorCompleteness(t *testing.T) {
	fv := Extract(NewTree("empty"))
	if len(fv) != len(FeatureNames) {
		t.Fatalf("vector has %d features, want %d", len(fv), len(FeatureNames))
	}
	for _, n := range FeatureNames {
		if _, ok := fv[n]; !ok {
			t.Errorf("missing feature %q", n)
		}
	}
}

func TestFeatureSliceOrder(t *testing.T) {
	fv := FeatureVector{}
	for i, n := range FeatureNames {
		fv[n] = float64(i)
	}
	s := fv.Slice()
	for i := range s {
		if s[i] != float64(i) {
			t.Fatalf("Slice order broken at %d", i)
		}
	}
}

func TestFeatureSetValidation(t *testing.T) {
	fv := Extract(NewTree("x"))
	if err := fv.Set(FeatChurn, 12); err != nil {
		t.Fatal(err)
	}
	if fv[FeatChurn] != 12 {
		t.Fatal("Set did not apply")
	}
	if err := fv.Set("no_such_feature", 1); err == nil {
		t.Fatal("unknown feature accepted")
	}
}

func TestFeatureClone(t *testing.T) {
	fv := Extract(sampleTree())
	c := fv.Clone()
	c[FeatKLoC] = 999
	if fv[FeatKLoC] == 999 {
		t.Fatal("Clone aliases original")
	}
}

func TestFeatureDiff(t *testing.T) {
	a := FeatureVector{FeatKLoC: 1, FeatUnsafeCalls: 2}
	b := FeatureVector{FeatKLoC: 1, FeatUnsafeCalls: 10}
	deltas := a.Diff(b, 1e-9)
	if len(deltas) != 1 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Name != FeatUnsafeCalls || deltas[0].Old != 2 || deltas[0].New != 10 {
		t.Fatalf("delta = %+v", deltas[0])
	}
}

func TestFeatureDiffSorted(t *testing.T) {
	a := FeatureVector{FeatKLoC: 0, FeatUnsafeCalls: 0, FeatFiles: 0}
	b := FeatureVector{FeatKLoC: 1, FeatUnsafeCalls: 100, FeatFiles: 10}
	deltas := a.Diff(b, 0)
	if len(deltas) < 3 {
		t.Fatalf("deltas = %+v", deltas)
	}
	if deltas[0].Name != FeatUnsafeCalls {
		t.Fatalf("largest delta first, got %+v", deltas[0])
	}
}

func TestLoadTree(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"main.c":        "int main(void) { return 0; }\n",
		"sub/helper.py": "def f():\n    return 1\n",
		"README.md":     "not source\n",
		".git/config":   "hidden\n",
	}
	for p, content := range files {
		full := filepath.Join(dir, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := LoadTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Files) != 2 {
		t.Fatalf("loaded %d files: %+v", len(tree.Files), tree.Files)
	}
	if tree.Files[0].Path != "main.c" {
		t.Fatalf("files not sorted: %v", tree.Files[0].Path)
	}
	if tree.Files[1].Language != lang.Python {
		t.Fatalf("language = %v", tree.Files[1].Language)
	}
}

func TestLoadTreeMissingDir(t *testing.T) {
	if _, err := LoadTree("/nonexistent/path/xyz"); err == nil {
		t.Fatal("missing dir loaded")
	}
}
