package metrics

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadTreeSkipsHiddenEntries is the satellite fix for dot-files: editor
// swap files and tooling droppings like .hidden.c must be skipped exactly as
// dot-directories already are.
func TestLoadTreeSkipsHiddenEntries(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("main.c", "int main(void) { return 0; }\n")
	write(".hidden.c", "int should_not_load(void) { return 1; }\n")
	write(".git/trap.c", "int inside_dot_dir(void) { return 2; }\n")
	write("sub/util.c", "int util(void) { return 3; }\n")
	write("sub/.swap.c", "int editor_swap(void) { return 4; }\n")

	tree, err := LoadTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"main.c", filepath.Join("sub", "util.c")}
	if len(tree.Files) != len(want) {
		var got []string
		for _, f := range tree.Files {
			got = append(got, f.Path)
		}
		t.Fatalf("loaded %v, want %v", got, want)
	}
	for i, f := range tree.Files {
		if f.Path != want[i] {
			t.Fatalf("file %d = %s, want %s", i, f.Path, want[i])
		}
	}
}

// TestExtractEmptyTreeFinite: the per-file averages in the feature assembly
// must not divide by zero — an empty tree yields an all-finite vector.
func TestExtractEmptyTreeFinite(t *testing.T) {
	fv := Extract(NewTree("empty"))
	for _, n := range FeatureNames {
		v, ok := fv[n]
		if !ok {
			t.Fatalf("feature %s missing", n)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("feature %s = %v on empty tree", n, v)
		}
	}
}
