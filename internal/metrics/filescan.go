package metrics

import "repro/internal/lang"

// This file is the incremental counterpart of scan.go: ScanFile runs the
// same per-file pass as the batch extractor but keeps the file's
// contribution mergeable (its duplicate-line and Halstead-vocabulary maps
// stay private instead of folding into tree-wide shared maps), and
// TreeStats maintains the tree-level aggregate under Add/Remove so a
// changeset only pays for the files it touches.
//
// The correctness contract is byte parity: for any set of files, a
// TreeStats reached through any sequence of Add/Remove calls yields
// Features() identical — bit-for-bit on every float — to
// Extract(&Tree{Files: ...}) over the same final set. That holds because
//   - every counter is an exact integer sum (order-independent),
//   - maxima are kept as value multisets (maxTracker) so removals
//     recompute exactly,
//   - duplicate-line and Halstead state are maintained as the same
//     multiset maps the batch scan builds, with derived floats computed
//     from them by the shared finishDerived/halsteadFromMaps code, and
//   - every float the vector carries is derived at Features() time from
//     those integer totals by the exact expressions the batch path uses.

// FileScan is one file's mergeable scan summary: the per-file counters a
// batch scan would have folded into the tree plus the maps (duplicate-line
// candidates, Halstead vocabulary) whose tree-level form is a multiset
// union. It is immutable after ScanFile returns and safe to retain.
type FileScan struct {
	scan      treeScan
	lines     map[string]int // trimmed non-trivial line -> occurrences
	operators map[string]int
	operands  map[string]int
}

// ScanFile runs the single-pass extractor over one file.
func ScanFile(f File) *FileScan {
	fs := &FileScan{
		lines:     map[string]int{},
		operators: map[string]int{},
		operands:  map[string]int{},
	}
	fs.scan.codePerLang = make(map[lang.Language]int, 1)
	buf := scanPool.Get().(*scanBuf)
	fs.scan.scanFile(f, buf, fs.lines, fs.operators, fs.operands)
	scanPool.Put(buf)
	// The function list is the one per-file product the aggregate never
	// reads (FunctionCount and the max/total counters carry everything the
	// feature vector needs); drop it so long-lived sessions don't retain
	// every function of every file.
	fs.scan.fns = nil
	return fs
}

// maxTracker maintains the maximum of a multiset of ints under insert and
// remove. Values are reference-counted so removing the current maximum
// recomputes the next one exactly instead of guessing.
type maxTracker struct {
	counts map[int]int
	max    int
}

func newMaxTracker() *maxTracker { return &maxTracker{counts: map[int]int{}} }

func (t *maxTracker) add(v int) {
	t.counts[v]++
	if v > t.max {
		t.max = v
	}
}

func (t *maxTracker) remove(v int) {
	n := t.counts[v] - 1
	if n > 0 {
		t.counts[v] = n
		return
	}
	delete(t.counts, v)
	if v == t.max {
		m := 0
		for k := range t.counts {
			if k > m {
				m = k
			}
		}
		t.max = m
	}
}

// Max returns the current maximum, or 0 for an empty tracker (matching the
// batch scan, whose maxima start at zero).
func (t *maxTracker) Max() int { return t.max }

// TreeStats is the tree-level aggregate of a set of FileScans, maintained
// incrementally. The zero value is not usable; construct with
// NewTreeStats.
type TreeStats struct {
	nfiles int
	// agg holds the exact-integer sums (line counts, smell counters,
	// attack-surface counts, function totals). Its max/derived/halstead
	// fields stay zero; Features() fills them from the trackers and maps.
	agg        treeScan
	maxFnLen   *maxTracker
	maxFnCyclo *maxTracker
	// lineSeen is the tree-wide duplicate-line multiset; dupLines caches
	// sum(n for n in lineSeen if n > 3) and is updated by
	// threshold-crossing deltas as counts move.
	lineSeen map[string]int
	dupLines int
	// operators/operands are the tree-wide Halstead vocabulary multisets.
	operators map[string]int
	operands  map[string]int
}

// NewTreeStats returns an empty aggregate.
func NewTreeStats() *TreeStats {
	ts := &TreeStats{
		maxFnLen:   newMaxTracker(),
		maxFnCyclo: newMaxTracker(),
		lineSeen:   map[string]int{},
		operators:  map[string]int{},
		operands:   map[string]int{},
	}
	ts.agg.codePerLang = make(map[lang.Language]int, 4)
	return ts
}

// Len returns the number of files currently aggregated.
func (ts *TreeStats) Len() int { return ts.nfiles }

// Add folds one file's scan into the aggregate.
func (ts *TreeStats) Add(fs *FileScan) { ts.apply(fs, 1) }

// Remove subtracts a previously added scan. The caller must pass the same
// FileScan (or an identical re-scan of the same content) that was added.
func (ts *TreeStats) Remove(fs *FileScan) { ts.apply(fs, -1) }

func (ts *TreeStats) apply(fs *FileScan, sign int) {
	ts.nfiles += sign
	src := &fs.scan

	ts.agg.total.Blank += sign * src.total.Blank
	ts.agg.total.Comment += sign * src.total.Comment
	ts.agg.total.Code += sign * src.total.Code
	for l, n := range src.codePerLang {
		ts.agg.codePerLang[l] += sign * n
		if ts.agg.codePerLang[l] == 0 {
			delete(ts.agg.codePerLang, l)
		}
	}
	ts.agg.cycloTotal += sign * src.cycloTotal
	ts.agg.commentLines += sign * src.commentLines
	ts.agg.codeLines += sign * src.codeLines
	ts.agg.fnLenTotal += sign * src.fnLenTotal
	ts.agg.fnCycloTotal += sign * src.fnCycloTotal

	dst, s := &ts.agg.smells, &src.smells
	dst.LongFunctions += sign * s.LongFunctions
	dst.DeeplyNested += sign * s.DeeplyNested
	dst.ManyParams += sign * s.ManyParams
	dst.GodFiles += sign * s.GodFiles
	dst.MagicNumbers += sign * s.MagicNumbers
	dst.TodoCount += sign * s.TodoCount
	dst.LongLines += sign * s.LongLines
	dst.FunctionCount += sign * s.FunctionCount

	a, b := &ts.agg.surface, &src.surface
	a.NetworkEndpoints += sign * b.NetworkEndpoints
	a.FileInputs += sign * b.FileInputs
	a.EnvInputs += sign * b.EnvInputs
	a.ProcessSpawns += sign * b.ProcessSpawns
	a.PrivilegeOps += sign * b.PrivilegeOps
	a.UnsafeAPIs += sign * b.UnsafeAPIs
	a.FormatCalls += sign * b.FormatCalls
	a.EntryPoints += sign * b.EntryPoints

	if sign > 0 {
		ts.maxFnLen.add(s.MaxFunctionLen)
		ts.maxFnCyclo.add(s.MaxCyclomatic)
	} else {
		ts.maxFnLen.remove(s.MaxFunctionLen)
		ts.maxFnCyclo.remove(s.MaxCyclomatic)
	}

	ts.applyCounts(ts.lineSeen, fs.lines, sign, true)
	ts.applyCounts(ts.operators, fs.operators, sign, false)
	ts.applyCounts(ts.operands, fs.operands, sign, false)
}

// applyCounts merges (or un-merges) a per-file count map into a tree-wide
// multiset, deleting keys that reach zero so len(map) stays the distinct
// count the batch scan would report. When dup is set, the duplicate-line
// cache is adjusted by each key's threshold-crossing delta.
func (ts *TreeStats) applyCounts(total, delta map[string]int, sign int, dup bool) {
	for k, n := range delta {
		old := total[k]
		nw := old + sign*n
		if nw == 0 {
			delete(total, k)
		} else {
			total[k] = nw
		}
		if dup {
			ts.dupLines += dupContribution(nw) - dupContribution(old)
		}
	}
}

// dupContribution is one line's contribution to Smells.DuplicateLines:
// lines appearing more than three times count every occurrence.
func dupContribution(n int) int {
	if n > 3 {
		return n
	}
	return 0
}

// Features assembles the feature vector of the current aggregate,
// byte-identical to Extract over the same file set.
func (ts *TreeStats) Features() FeatureVector {
	sc := ts.agg // shallow copy: maps are shared but only read below
	sc.smells.MaxFunctionLen = ts.maxFnLen.Max()
	sc.smells.MaxCyclomatic = ts.maxFnCyclo.Max()
	sc.smells.DuplicateLines = ts.dupLines
	sc.halstead = halsteadFromMaps(ts.operators, ts.operands)
	sc.finishDerived()
	return sc.features(ts.nfiles)
}
