package metrics

import "math"

// MaintainabilityIndex is the classic composite metric (Oman & Hagemeister,
// as used by Visual Studio and the SEI): a 0-100 rescaling of
// 171 - 5.2·ln(HalsteadVolume) - 0.23·CyclomaticComplexity - 16.2·ln(LoC),
// optionally with the comment bonus term. §3's point is precisely that such
// composites exist and are still one-dimensional; the index is provided for
// completeness and comparison, not as the prediction target.
type MaintainabilityIndex struct {
	Raw        float64 // unclamped three-factor value
	Rescaled   float64 // max(0, Raw)*100/171, the Visual Studio convention
	WithBonus  float64 // rescaled value including the comment bonus
	Band       string  // "high" (>=20), "moderate" (>=10), "low"
	PerKLoCFix float64 // deprecated-style per-kLoC normalization, kept at 0
}

// Maintainability computes the index for a tree.
func Maintainability(t *Tree) MaintainabilityIndex {
	total, _ := CountTree(t)
	h := HalsteadTree(t)
	_, cyclo := CyclomaticTree(t)

	loc := float64(total.Code)
	if loc < 1 {
		loc = 1
	}
	vol := h.Volume
	if vol < 1 {
		vol = 1
	}
	raw := 171 - 5.2*math.Log(vol) - 0.23*float64(cyclo) - 16.2*math.Log(loc)

	mi := MaintainabilityIndex{Raw: raw}
	rescaled := raw * 100 / 171
	if rescaled < 0 {
		rescaled = 0
	}
	if rescaled > 100 {
		rescaled = 100
	}
	mi.Rescaled = rescaled

	// Comment bonus: 50*sin(sqrt(2.4*perCM)) with perCM the comment ratio.
	perCM := 0.0
	if total.Code+total.Comment > 0 {
		perCM = float64(total.Comment) / float64(total.Code+total.Comment)
	}
	withBonus := raw + 50*math.Sin(math.Sqrt(2.4*perCM))
	withBonus = withBonus * 100 / 171
	if withBonus < 0 {
		withBonus = 0
	}
	if withBonus > 100 {
		withBonus = 100
	}
	mi.WithBonus = withBonus

	switch {
	case mi.Rescaled >= 20:
		mi.Band = "high"
	case mi.Rescaled >= 10:
		mi.Band = "moderate"
	default:
		mi.Band = "low"
	}
	return mi
}
