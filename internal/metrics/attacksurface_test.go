package metrics

import (
	"testing"
)

func TestAttackSurfaceCounts(t *testing.T) {
	src := `
int main(int argc, char **argv) {
	int fd = socket(AF_INET, SOCK_STREAM, 0);
	bind(fd, addr, len);
	listen(fd, 5);
	char *home = getenv("HOME");
	FILE *f = fopen(home, "r");
	char buf[64];
	strcpy(buf, argv[1]);
	system(argv[2]);
	setuid(0);
	printf(buf);
	return 0;
}`
	as := AttackSurfaceOf(NewTree("t", File{Path: "a.c", Content: src}))
	if as.NetworkEndpoints != 3 {
		t.Errorf("NetworkEndpoints = %d, want 3", as.NetworkEndpoints)
	}
	if as.FileInputs != 1 {
		t.Errorf("FileInputs = %d, want 1", as.FileInputs)
	}
	if as.EnvInputs != 1 {
		t.Errorf("EnvInputs = %d, want 1", as.EnvInputs)
	}
	if as.ProcessSpawns != 1 {
		t.Errorf("ProcessSpawns = %d, want 1", as.ProcessSpawns)
	}
	if as.PrivilegeOps != 1 {
		t.Errorf("PrivilegeOps = %d, want 1", as.PrivilegeOps)
	}
	if as.UnsafeAPIs != 1 {
		t.Errorf("UnsafeAPIs = %d, want 1", as.UnsafeAPIs)
	}
	if as.FormatCalls != 1 {
		t.Errorf("FormatCalls = %d, want 1", as.FormatCalls)
	}
	if as.EntryPoints != 1 {
		t.Errorf("EntryPoints = %d, want 1", as.EntryPoints)
	}
	if as.Quotient <= 0 {
		t.Errorf("Quotient = %v", as.Quotient)
	}
}

func TestAttackSurfaceRequiresCall(t *testing.T) {
	// Mentioning "socket" without calling it is not a channel.
	src := "int socket_count;\nchar *strcpy_docs;\n"
	as := AttackSurfaceOf(NewTree("t", File{Path: "a.c", Content: src}))
	if as.NetworkEndpoints != 0 || as.UnsafeAPIs != 0 {
		t.Fatalf("non-call identifiers counted: %+v", as)
	}
}

func TestAttackSurfaceHandlers(t *testing.T) {
	src := `
void handle_request(int fd) { }
void serve_client(int fd) { }
void on_message(int fd) { }
void helper(void) { }
`
	as := AttackSurfaceOf(NewTree("t", File{Path: "a.c", Content: src}))
	if as.EntryPoints != 3 {
		t.Fatalf("EntryPoints = %d, want 3", as.EntryPoints)
	}
}

func TestAttackSurfaceQuotientMonotone(t *testing.T) {
	small := AttackSurfaceOf(NewTree("t", File{Path: "a.c", Content: "int f(void){ return recv(s, b, n, 0); }"}))
	big := AttackSurfaceOf(NewTree("t", File{Path: "a.c",
		Content: "int f(void){ recv(s,b,n,0); recv(s,b,n,0); strcpy(a,b); system(c); return 0; }"}))
	if big.Quotient <= small.Quotient {
		t.Fatalf("quotient not monotone: %v vs %v", small.Quotient, big.Quotient)
	}
}

func TestAttackSurfaceEmptyTree(t *testing.T) {
	as := AttackSurfaceOf(NewTree("empty"))
	if as.Quotient != 0 {
		t.Fatalf("empty quotient = %v", as.Quotient)
	}
}
