package metrics

import (
	"strings"
	"sync"

	"repro/internal/lang"
	"repro/internal/lexer"
)

// This file is the single-pass extraction engine. The seed implementation
// tokenized every file once per metric family (lines, cyclomatic, smells,
// Halstead, attack surface — seven scans per file in a full Extract);
// scanTree tokenizes each file exactly once into pooled scratch buffers and
// feeds every family from the same token stream. Each public per-family
// function (SmellsOf, HalsteadTree, AttackSurfaceOf, CyclomaticTree) is a
// view over the same scan, so all of them — and Extract — emit values
// identical to the per-family originals.
//
// The per-file body lives in treeScan.scanFile so the batch extractor and
// the incremental per-file scanner (ScanFile, filescan.go) run the exact
// same code; only the lifetime of the vocabulary/duplicate-line maps
// differs (whole-tree shared vs. per-file).

// scanBuf is the pooled per-file scratch: the full token stream and its
// semantic (comment/newline-free) filtering. Buffers are reset, not freed,
// between files, so steady-state tokenization does not allocate.
type scanBuf struct {
	all  []lexer.Token
	code []lexer.Token
}

var scanPool = sync.Pool{New: func() any { return new(scanBuf) }}

// todoMarkers are the comment annotations counted as TODO debt.
var todoMarkers = []string{"TODO", "FIXME", "XXX", "HACK"}

// treeScan is everything Extract derives from token streams and line
// counts, computed in one pass over the tree. The raw-total fields
// (commentLines … fnCycloTotal) stay attached to the scan rather than
// living as scanTree locals so an incremental aggregator can maintain them
// by delta and re-derive the ratio/average fields with finishDerived.
type treeScan struct {
	total       LineCount
	codePerLang map[lang.Language]int
	fns         []FunctionMetrics
	cycloTotal  int
	smells      Smells
	halstead    Halstead
	surface     AttackSurface

	// Raw totals behind the derived smell fields.
	commentLines int
	codeLines    int
	fnLenTotal   int
	fnCycloTotal int
}

// scanFile folds one file into the scan. The lineSeen/operators/operands
// maps are caller-provided: the batch extractor shares one set across the
// whole tree (so distinct counts reflect cross-file reuse), while the
// per-file scanner passes fresh maps and merges them later.
func (sc *treeScan) scanFile(f File, buf *scanBuf, lineSeen, operators, operands map[string]int) {
	lc := CountLines(f)
	sc.total.Add(lc)
	sc.codePerLang[f.Language] += lc.Code
	sc.commentLines += lc.Comment
	sc.codeLines += lc.Code
	if lc.Code > GodFileLines {
		sc.smells.GodFiles++
	}

	lines := splitLines(f.Content)
	for _, line := range lines {
		if len(line) > LongLineChars {
			sc.smells.LongLines++
		}
		trimmed := strings.TrimSpace(line)
		if len(trimmed) > 10 && !strings.HasPrefix(trimmed, "//") && !strings.HasPrefix(trimmed, "#") {
			lineSeen[trimmed]++
		}
	}

	buf.all = lexer.TokenizeInto(buf.all[:0], f.Content, f.Language)
	buf.code = lexer.CodeInto(buf.code[:0], buf.all)

	// Smells over the full stream (comments carry TODO markers).
	for _, tok := range buf.all {
		switch tok.Kind {
		case lexer.Comment:
			up := strings.ToUpper(tok.Text())
			for _, marker := range todoMarkers {
				sc.smells.TodoCount += strings.Count(up, marker)
			}
		case lexer.Number:
			if txt := tok.Text(); txt != "0" && txt != "1" && txt != "2" {
				sc.smells.MagicNumbers++
			}
		}
	}

	// Halstead vocabulary over the semantic stream; the shared maps make
	// distinct counts reflect cross-file reuse exactly as pooling all
	// files' tokens did.
	countHalstead(buf.code, operators, operands)

	// Attack-surface call sites: a classified identifier followed by '('.
	for i, tok := range buf.code {
		if tok.Kind != lexer.Ident {
			continue
		}
		if i+1 >= len(buf.code) || buf.code[i+1].Text() != "(" {
			continue
		}
		name := tok.Text()
		switch {
		case networkAPIs[name]:
			sc.surface.NetworkEndpoints++
		case fileAPIs[name]:
			sc.surface.FileInputs++
		case envAPIs[name]:
			sc.surface.EnvInputs++
		case procAPIs[name]:
			sc.surface.ProcessSpawns++
		case privAPIs[name]:
			sc.surface.PrivilegeOps++
		case unsafeAPIs[name]:
			sc.surface.UnsafeAPIs++
		case formatAPIs[name]:
			sc.surface.FormatCalls++
		}
	}

	// Function structure, computed once and shared by the cyclomatic,
	// smell, and entry-point views.
	fns := cyclomaticTokens(f, buf.code, lines)
	for _, fn := range fns {
		sc.cycloTotal += fn.Cyclomatic
		sc.smells.FunctionCount++
		sc.fnLenTotal += fn.Length
		sc.fnCycloTotal += fn.Cyclomatic
		if fn.Length > LongFunctionTokens {
			sc.smells.LongFunctions++
		}
		if fn.MaxNesting > DeepNesting {
			sc.smells.DeeplyNested++
		}
		if fn.Params > ManyParamsLimit {
			sc.smells.ManyParams++
		}
		if fn.Length > sc.smells.MaxFunctionLen {
			sc.smells.MaxFunctionLen = fn.Length
		}
		if fn.Cyclomatic > sc.smells.MaxCyclomatic {
			sc.smells.MaxCyclomatic = fn.Cyclomatic
		}
		if fn.Name == "main" || hasPrefixAny(fn.Name, "handle", "serve", "on_") {
			sc.surface.EntryPoints++
		}
	}
	sc.fns = append(sc.fns, fns...)
}

// finishDerived computes every ratio/average/weighted field from the raw
// totals. DuplicateLines and halstead are set by the caller first (their
// inputs — the duplicate-line and vocabulary maps — live outside the scan).
func (sc *treeScan) finishDerived() {
	if sc.commentLines+sc.codeLines > 0 {
		sc.smells.CommentRatio = float64(sc.commentLines) / float64(sc.commentLines+sc.codeLines)
	}
	if sc.smells.FunctionCount > 0 {
		sc.smells.AvgFunctionLen = float64(sc.fnLenTotal) / float64(sc.smells.FunctionCount)
		sc.smells.AvgCyclomatic = float64(sc.fnCycloTotal) / float64(sc.smells.FunctionCount)
	}

	sc.surface.Quotient = rasqWeights.network*float64(sc.surface.NetworkEndpoints) +
		rasqWeights.file*float64(sc.surface.FileInputs) +
		rasqWeights.env*float64(sc.surface.EnvInputs) +
		rasqWeights.proc*float64(sc.surface.ProcessSpawns) +
		rasqWeights.priv*float64(sc.surface.PrivilegeOps) +
		rasqWeights.unsafe*float64(sc.surface.UnsafeAPIs) +
		rasqWeights.format*float64(sc.surface.FormatCalls) +
		rasqWeights.entry*float64(sc.surface.EntryPoints)
}

// scanTree runs the single-pass extractor over every file of the tree.
func scanTree(t *Tree) treeScan {
	sc := treeScan{codePerLang: make(map[lang.Language]int, 4)}
	lineSeen := map[string]int{}
	operators := map[string]int{}
	operands := map[string]int{}

	buf := scanPool.Get().(*scanBuf)
	defer scanPool.Put(buf)

	for _, f := range t.Files {
		sc.scanFile(f, buf, lineSeen, operators, operands)
	}

	for _, n := range lineSeen {
		if n > 3 {
			sc.smells.DuplicateLines += n
		}
	}
	sc.halstead = halsteadFromMaps(operators, operands)
	sc.finishDerived()
	return sc
}

// features assembles the feature vector of a finished scan. nfiles is the
// tree's file count, which the scan itself does not retain.
func (sc *treeScan) features(nfiles int) FeatureVector {
	fv := FeatureVector{}
	for _, name := range FeatureNames {
		fv[name] = 0
	}

	total := sc.total
	fv[FeatKLoC] = float64(total.Code) / 1000
	fv[FeatFiles] = float64(nfiles)

	primary := primaryFromCounts(sc.codePerLang)
	if primary == lang.C || primary == lang.CPP || primary == lang.MiniC {
		fv[FeatLanguageUnsafe] = 1
	}

	fv[FeatFunctions] = float64(sc.smells.FunctionCount)
	fv[FeatCyclomaticTotal] = float64(sc.cycloTotal)

	s := sc.smells
	fv[FeatCommentRatio] = s.CommentRatio
	fv[FeatAvgFunctionLen] = s.AvgFunctionLen
	fv[FeatMaxFunctionLen] = float64(s.MaxFunctionLen)
	fv[FeatCyclomaticAvg] = s.AvgCyclomatic
	fv[FeatCyclomaticMax] = float64(s.MaxCyclomatic)
	fv[FeatLongFunctions] = float64(s.LongFunctions)
	fv[FeatDeeplyNested] = float64(s.DeeplyNested)
	fv[FeatManyParams] = float64(s.ManyParams)
	fv[FeatGodFiles] = float64(s.GodFiles)
	fv[FeatMagicNumbers] = float64(s.MagicNumbers)
	if total.Code > 0 {
		fv[FeatTodoDensity] = float64(s.TodoCount) / (float64(total.Code) / 1000)
	}
	fv[FeatDupLines] = float64(s.DuplicateLines)

	h := sc.halstead
	fv[FeatHalsteadVolume] = h.Volume
	fv[FeatHalsteadEffort] = h.Effort
	fv[FeatHalsteadBugs] = h.EstimatedBugs

	as := sc.surface
	fv[FeatNetworkCalls] = float64(as.NetworkEndpoints)
	fv[FeatFileInputs] = float64(as.FileInputs)
	fv[FeatEnvInputs] = float64(as.EnvInputs)
	fv[FeatProcessSpawns] = float64(as.ProcessSpawns)
	fv[FeatPrivilegeOps] = float64(as.PrivilegeOps)
	fv[FeatUnsafeCalls] = float64(as.UnsafeAPIs)
	fv[FeatFormatCalls] = float64(as.FormatCalls)
	fv[FeatEntryPoints] = float64(as.EntryPoints)
	fv[FeatRASQ] = as.Quotient

	return fv
}

// primaryFromCounts picks the language with the most code lines, scanning
// lang.All() in order so ties resolve deterministically.
func primaryFromCounts(counts map[lang.Language]int) lang.Language {
	best := lang.Unknown
	bestN := -1
	for _, l := range lang.All() {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	if bestN <= 0 {
		return lang.Unknown
	}
	return best
}
