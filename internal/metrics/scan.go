package metrics

import (
	"strings"
	"sync"

	"repro/internal/lang"
	"repro/internal/lexer"
)

// This file is the single-pass extraction engine. The seed implementation
// tokenized every file once per metric family (lines, cyclomatic, smells,
// Halstead, attack surface — seven scans per file in a full Extract);
// scanTree tokenizes each file exactly once into pooled scratch buffers and
// feeds every family from the same token stream. Each public per-family
// function (SmellsOf, HalsteadTree, AttackSurfaceOf, CyclomaticTree) is a
// view over the same scan, so all of them — and Extract — emit values
// identical to the per-family originals.

// scanBuf is the pooled per-file scratch: the full token stream and its
// semantic (comment/newline-free) filtering. Buffers are reset, not freed,
// between files, so steady-state tokenization does not allocate.
type scanBuf struct {
	all  []lexer.Token
	code []lexer.Token
}

var scanPool = sync.Pool{New: func() any { return new(scanBuf) }}

// todoMarkers are the comment annotations counted as TODO debt.
var todoMarkers = []string{"TODO", "FIXME", "XXX", "HACK"}

// treeScan is everything Extract derives from token streams and line
// counts, computed in one pass over the tree.
type treeScan struct {
	total       LineCount
	codePerLang map[lang.Language]int
	fns         []FunctionMetrics
	cycloTotal  int
	smells      Smells
	halstead    Halstead
	surface     AttackSurface
}

// scanTree runs the single-pass extractor over every file of the tree.
func scanTree(t *Tree) treeScan {
	sc := treeScan{codePerLang: make(map[lang.Language]int, 4)}
	var commentLines, codeLines int
	lineSeen := map[string]int{}
	var totalLen, totalCyclo int
	operators := map[string]int{}
	operands := map[string]int{}

	buf := scanPool.Get().(*scanBuf)
	defer scanPool.Put(buf)

	for _, f := range t.Files {
		lc := CountLines(f)
		sc.total.Add(lc)
		sc.codePerLang[f.Language] += lc.Code
		commentLines += lc.Comment
		codeLines += lc.Code
		if lc.Code > GodFileLines {
			sc.smells.GodFiles++
		}

		lines := splitLines(f.Content)
		for _, line := range lines {
			if len(line) > LongLineChars {
				sc.smells.LongLines++
			}
			trimmed := strings.TrimSpace(line)
			if len(trimmed) > 10 && !strings.HasPrefix(trimmed, "//") && !strings.HasPrefix(trimmed, "#") {
				lineSeen[trimmed]++
			}
		}

		buf.all = lexer.TokenizeInto(buf.all[:0], f.Content, f.Language)
		buf.code = lexer.CodeInto(buf.code[:0], buf.all)

		// Smells over the full stream (comments carry TODO markers).
		for _, tok := range buf.all {
			switch tok.Kind {
			case lexer.Comment:
				up := strings.ToUpper(tok.Text())
				for _, marker := range todoMarkers {
					sc.smells.TodoCount += strings.Count(up, marker)
				}
			case lexer.Number:
				if txt := tok.Text(); txt != "0" && txt != "1" && txt != "2" {
					sc.smells.MagicNumbers++
				}
			}
		}

		// Halstead vocabulary over the semantic stream; the shared maps make
		// distinct counts reflect cross-file reuse exactly as pooling all
		// files' tokens did.
		countHalstead(buf.code, operators, operands)

		// Attack-surface call sites: a classified identifier followed by '('.
		for i, tok := range buf.code {
			if tok.Kind != lexer.Ident {
				continue
			}
			if i+1 >= len(buf.code) || buf.code[i+1].Text() != "(" {
				continue
			}
			name := tok.Text()
			switch {
			case networkAPIs[name]:
				sc.surface.NetworkEndpoints++
			case fileAPIs[name]:
				sc.surface.FileInputs++
			case envAPIs[name]:
				sc.surface.EnvInputs++
			case procAPIs[name]:
				sc.surface.ProcessSpawns++
			case privAPIs[name]:
				sc.surface.PrivilegeOps++
			case unsafeAPIs[name]:
				sc.surface.UnsafeAPIs++
			case formatAPIs[name]:
				sc.surface.FormatCalls++
			}
		}

		// Function structure, computed once and shared by the cyclomatic,
		// smell, and entry-point views.
		fns := cyclomaticTokens(f, buf.code, lines)
		for _, fn := range fns {
			sc.cycloTotal += fn.Cyclomatic
			sc.smells.FunctionCount++
			totalLen += fn.Length
			totalCyclo += fn.Cyclomatic
			if fn.Length > LongFunctionTokens {
				sc.smells.LongFunctions++
			}
			if fn.MaxNesting > DeepNesting {
				sc.smells.DeeplyNested++
			}
			if fn.Params > ManyParamsLimit {
				sc.smells.ManyParams++
			}
			if fn.Length > sc.smells.MaxFunctionLen {
				sc.smells.MaxFunctionLen = fn.Length
			}
			if fn.Cyclomatic > sc.smells.MaxCyclomatic {
				sc.smells.MaxCyclomatic = fn.Cyclomatic
			}
			if fn.Name == "main" || hasPrefixAny(fn.Name, "handle", "serve", "on_") {
				sc.surface.EntryPoints++
			}
		}
		sc.fns = append(sc.fns, fns...)
	}

	for _, n := range lineSeen {
		if n > 3 {
			sc.smells.DuplicateLines += n
		}
	}
	if commentLines+codeLines > 0 {
		sc.smells.CommentRatio = float64(commentLines) / float64(commentLines+codeLines)
	}
	if sc.smells.FunctionCount > 0 {
		sc.smells.AvgFunctionLen = float64(totalLen) / float64(sc.smells.FunctionCount)
		sc.smells.AvgCyclomatic = float64(totalCyclo) / float64(sc.smells.FunctionCount)
	}

	sc.halstead = halsteadFromMaps(operators, operands)

	sc.surface.Quotient = rasqWeights.network*float64(sc.surface.NetworkEndpoints) +
		rasqWeights.file*float64(sc.surface.FileInputs) +
		rasqWeights.env*float64(sc.surface.EnvInputs) +
		rasqWeights.proc*float64(sc.surface.ProcessSpawns) +
		rasqWeights.priv*float64(sc.surface.PrivilegeOps) +
		rasqWeights.unsafe*float64(sc.surface.UnsafeAPIs) +
		rasqWeights.format*float64(sc.surface.FormatCalls) +
		rasqWeights.entry*float64(sc.surface.EntryPoints)

	return sc
}

// primaryFromCounts picks the language with the most code lines, scanning
// lang.All() in order so ties resolve deterministically.
func primaryFromCounts(counts map[lang.Language]int) lang.Language {
	best := lang.Unknown
	bestN := -1
	for _, l := range lang.All() {
		if counts[l] > bestN {
			best, bestN = l, counts[l]
		}
	}
	if bestN <= 0 {
		return lang.Unknown
	}
	return best
}
