package metrics

import (
	"strings"
	"testing"
)

// benchTree builds a mid-size synthetic file inline (no langgen dependency
// to keep the package graph acyclic).
func benchTree() *Tree {
	var sb strings.Builder
	for fn := 0; fn < 40; fn++ {
		sb.WriteString("// helper routine\n")
		sb.WriteString("int fn_")
		sb.WriteByte(byte('a' + fn%26))
		sb.WriteString("(int a, int b) {\n")
		for s := 0; s < 25; s++ {
			sb.WriteString("\tif (a > b) { a = a - b; } else { b = b - a; }\n")
			sb.WriteString("\ta = a * 3 + 7;\n")
		}
		sb.WriteString("\treturn a + b;\n}\n\n")
	}
	return NewTree("bench", File{Path: "bench.c", Content: sb.String()})
}

func BenchmarkCountLines(b *testing.B) {
	tree := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CountTree(tree)
	}
}

func BenchmarkCyclomatic(b *testing.B) {
	tree := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CyclomaticTree(tree)
	}
}

func BenchmarkHalstead(b *testing.B) {
	tree := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HalsteadTree(tree)
	}
}

func BenchmarkExtractFeatureVector(b *testing.B) {
	tree := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(tree)
	}
}

func BenchmarkScanFunctions(b *testing.B) {
	tree := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, f := range tree.Files {
			ScanFunctions(f)
		}
	}
}
