package metrics

import (
	"testing"

	"repro/internal/lang"
)

const funcScanSrc = `int first(int a, int b) {
	int x = 42;
	if (a > b) {
		strcpy(a, b);
	}
	return x;
}

int second(void) {
	int data = recv();
	printf(data);
	system(data);
	return 0;
}
`

func TestScanFunctions(t *testing.T) {
	f := File{Path: "t.mc", Language: lang.MiniC, Content: funcScanSrc}
	scans := ScanFunctions(f)
	if len(scans) != 2 {
		t.Fatalf("found %d functions, want 2", len(scans))
	}
	first, second := scans[0], scans[1]
	if first.Name != "first" || second.Name != "second" {
		t.Fatalf("names = %s, %s", first.Name, second.Name)
	}
	// Attribution: first owns [its line, second's line); second runs to EOF.
	if first.EndLine != second.Line {
		t.Errorf("first.EndLine = %d, want %d", first.EndLine, second.Line)
	}
	if first.Lines <= 0 || second.Lines <= 0 {
		t.Errorf("line counts: first=%d second=%d", first.Lines, second.Lines)
	}
	// API classification lands in the right function.
	if first.UnsafeCalls != 1 || first.FormatCalls != 0 || first.ProcessCalls != 0 {
		t.Errorf("first call counts = %+v", first)
	}
	if second.UnsafeCalls != 0 || second.FormatCalls != 1 || second.ProcessCalls != 1 || second.InputCalls != 1 {
		t.Errorf("second call counts = %+v", second)
	}
	// Magic numbers: 42 counts, 0 does not.
	if first.MagicNumbers != 1 {
		t.Errorf("first.MagicNumbers = %d, want 1", first.MagicNumbers)
	}
	// Halstead is per-function: both bodies are non-trivial.
	if first.Halstead.Volume <= 0 || second.Halstead.Volume <= 0 {
		t.Errorf("Halstead volumes: %f, %f", first.Halstead.Volume, second.Halstead.Volume)
	}
	// Structural metrics ride along from the cyclomatic pass.
	if first.Cyclomatic < 2 || first.Params != 2 {
		t.Errorf("first structural = %+v", first.FunctionMetrics)
	}
}

func TestScanFunctionsEmpty(t *testing.T) {
	f := File{Path: "t.mc", Language: lang.MiniC, Content: "// nothing here\nint x = 1;\n"}
	if scans := ScanFunctions(f); len(scans) != 0 {
		t.Fatalf("found %d functions in a function-free file", len(scans))
	}
}
