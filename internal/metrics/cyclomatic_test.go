package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/stats"
)

func TestCyclomaticStraightLine(t *testing.T) {
	src := `int add(int a, int b) { return a + b; }`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 {
		t.Fatalf("found %d functions", len(fns))
	}
	fn := fns[0]
	if fn.Name != "add" {
		t.Errorf("name = %q", fn.Name)
	}
	if fn.Cyclomatic != 1 {
		t.Errorf("cyclomatic = %d, want 1", fn.Cyclomatic)
	}
	if fn.Params != 2 {
		t.Errorf("params = %d, want 2", fn.Params)
	}
}

func TestCyclomaticDecisionPoints(t *testing.T) {
	src := `
int classify(int x) {
	if (x > 0 && x < 10) { return 1; }
	for (int i = 0; i < x; i++) {
		while (x > 0) { x--; }
	}
	switch (x) {
	case 0: return 0;
	case 1: return 1;
	}
	return x > 5 ? 2 : 3;
}`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 {
		t.Fatalf("found %d functions", len(fns))
	}
	// 1 + if + && + for + while + case + case + ? = 8
	if fns[0].Cyclomatic != 8 {
		t.Errorf("cyclomatic = %d, want 8", fns[0].Cyclomatic)
	}
}

func TestCyclomaticMultipleFunctions(t *testing.T) {
	src := `
int f(void) { return 1; }
int g(int a) { if (a) return 1; return 0; }
static int h(int a, int b, int c) { return a; }
`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 3 {
		t.Fatalf("found %d functions: %+v", len(fns), fns)
	}
	if fns[0].Name != "f" || fns[0].Params != 0 {
		t.Errorf("f = %+v", fns[0])
	}
	if fns[1].Name != "g" || fns[1].Cyclomatic != 2 {
		t.Errorf("g = %+v", fns[1])
	}
	if fns[2].Name != "h" || fns[2].Params != 3 {
		t.Errorf("h = %+v", fns[2])
	}
}

func TestCyclomaticSkipsDeclarations(t *testing.T) {
	src := `
int declared_only(int a);
int defined(int a) { return a; }
`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 || fns[0].Name != "defined" {
		t.Fatalf("fns = %+v", fns)
	}
}

func TestCyclomaticSkipsControlStatements(t *testing.T) {
	// "if (x) { ... }" at top level must not be mistaken for a function.
	src := `
int main(void) {
	if (x) { y(); }
	while (z) { w(); }
	return 0;
}`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 || fns[0].Name != "main" {
		t.Fatalf("fns = %+v", fns)
	}
}

func TestCyclomaticNesting(t *testing.T) {
	src := `
void deep(void) {
	if (a) {
		if (b) {
			if (c) {
				x();
			}
		}
	}
}`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 {
		t.Fatalf("fns = %+v", fns)
	}
	if fns[0].MaxNesting != 3 {
		t.Errorf("nesting = %d, want 3", fns[0].MaxNesting)
	}
}

func TestCyclomaticJavaMethods(t *testing.T) {
	src := `
public class Foo {
	public int bar(int x) {
		if (x > 0) { return 1; }
		return 0;
	}
	private void baz() { }
}`
	fns := Cyclomatic(File{Path: "Foo.java", Language: lang.Java, Content: src})
	if len(fns) != 2 {
		t.Fatalf("found %d functions: %+v", len(fns), fns)
	}
	if fns[0].Name != "bar" || fns[0].Cyclomatic != 2 {
		t.Errorf("bar = %+v", fns[0])
	}
}

func TestCyclomaticPython(t *testing.T) {
	src := `def simple():
    return 1

def branchy(x, y):
    if x > 0:
        return 1
    elif x < 0:
        return -1
    for i in range(y):
        pass
    return 0

def after():
    return 2
`
	fns := Cyclomatic(pyFile(src))
	if len(fns) != 3 {
		t.Fatalf("found %d functions: %+v", len(fns), fns)
	}
	if fns[0].Name != "simple" || fns[0].Cyclomatic != 1 {
		t.Errorf("simple = %+v", fns[0])
	}
	// 1 + if + elif + for = 4
	if fns[1].Name != "branchy" || fns[1].Cyclomatic != 4 {
		t.Errorf("branchy = %+v", fns[1])
	}
	if fns[1].Params != 2 {
		t.Errorf("branchy params = %d", fns[1].Params)
	}
	if fns[2].Name != "after" || fns[2].Cyclomatic != 1 {
		t.Errorf("after = %+v", fns[2])
	}
}

func TestCyclomaticPythonNestedDef(t *testing.T) {
	src := `def outer():
    def inner(a):
        if a:
            return 1
        return 0
    return inner
`
	fns := Cyclomatic(pyFile(src))
	if len(fns) != 2 {
		t.Fatalf("found %d functions", len(fns))
	}
}

// Property: complexity is always >= 1 and equals 1 for bodies without
// decision tokens, on generated straight-line functions.
func TestCyclomaticAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		src := "int f(void) {\n"
		for i := 0; i < r.Intn(20); i++ {
			src += "\tx = x + 1;\n"
		}
		src += "}\n"
		fns := Cyclomatic(cFile(src))
		return len(fns) == 1 && fns[0].Cyclomatic == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclomaticTreeTotals(t *testing.T) {
	tree := NewTree("app",
		File{Path: "a.c", Content: "int f(void){ if(a) x(); }\nint g(void){ return 0; }"},
		File{Path: "b.c", Content: "int h(int q){ while(q) q--; return q; }"},
	)
	fns, total := CyclomaticTree(tree)
	if len(fns) != 3 {
		t.Fatalf("fns = %d", len(fns))
	}
	if total != 2+1+2 {
		t.Fatalf("total = %d, want 5", total)
	}
}

func TestCyclomaticDoWhileNotDoubleCounted(t *testing.T) {
	src := `void f(void) { do { x(); } while (y); }`
	fns := Cyclomatic(cFile(src))
	if len(fns) != 1 || fns[0].Cyclomatic != 2 {
		t.Fatalf("do-while = %+v", fns)
	}
}
