package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/lang"
	"repro/internal/stats"
)

func cFile(src string) File {
	return File{Path: "t.c", Language: lang.C, Content: src}
}

func pyFile(src string) File {
	return File{Path: "t.py", Language: lang.Python, Content: src}
}

func TestCountLinesBasic(t *testing.T) {
	src := `// header comment
int x = 1;

/* block */
int y = 2; // trailing
`
	c := CountLines(cFile(src))
	if c.Code != 2 {
		t.Errorf("Code = %d, want 2", c.Code)
	}
	if c.Comment != 2 {
		t.Errorf("Comment = %d, want 2", c.Comment)
	}
	if c.Blank != 1 {
		t.Errorf("Blank = %d, want 1", c.Blank)
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
}

func TestCountLinesMultiLineBlock(t *testing.T) {
	src := `/*
 * big banner
 */
int main() {}
`
	c := CountLines(cFile(src))
	if c.Comment != 3 || c.Code != 1 {
		t.Fatalf("count = %+v", c)
	}
}

func TestCountLinesCodeBeforeBlock(t *testing.T) {
	src := "int x; /* starts here\nstill comment */ int y;\n"
	c := CountLines(cFile(src))
	// Line 1 has code then comment -> code. Line 2 ends comment then code -> code.
	if c.Code != 2 || c.Comment != 0 {
		t.Fatalf("count = %+v", c)
	}
}

func TestCountLinesCommentMarkerInString(t *testing.T) {
	src := `char *s = "// not a comment";` + "\n" + `char *u = "/* nor this";` + "\n"
	c := CountLines(cFile(src))
	if c.Code != 2 || c.Comment != 0 {
		t.Fatalf("count = %+v", c)
	}
}

func TestCountLinesPython(t *testing.T) {
	src := `# leading comment
x = 1

def f():
    """docstring
    second line"""
    return x
`
	c := CountLines(pyFile(src))
	if c.Comment != 1 {
		t.Errorf("Comment = %d, want 1", c.Comment)
	}
	// x=1, def, docstring(2 lines: they are string values -> code), return
	if c.Code != 5 {
		t.Errorf("Code = %d, want 5 (%+v)", c.Code, c)
	}
	if c.Blank != 1 {
		t.Errorf("Blank = %d", c.Blank)
	}
}

func TestCountLinesEmptyFile(t *testing.T) {
	c := CountLines(cFile(""))
	if c.Total() != 0 {
		t.Fatalf("empty file count = %+v", c)
	}
}

func TestCountLinesNoTrailingNewline(t *testing.T) {
	c := CountLines(cFile("int x;"))
	if c.Code != 1 || c.Total() != 1 {
		t.Fatalf("count = %+v", c)
	}
}

// Property: blank + comment + code always equals the number of physical
// lines, for random content in every language. This is the cloc invariant.
func TestCountLinesPartitionProperty(t *testing.T) {
	chars := []byte("abc {}();/*#\"'\n\n\n \t=+-")
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := r.Intn(400)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = chars[r.Intn(len(chars))]
		}
		src := string(buf)
		physical := len(splitLines(src))
		for _, l := range lang.All() {
			c := CountLines(File{Path: "x", Language: l, Content: src})
			if c.Total() != physical {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountTreePerLanguage(t *testing.T) {
	tree := NewTree("app",
		File{Path: "a.c", Content: "int a;\nint b;\n"},
		File{Path: "b.py", Content: "x = 1\n"},
	)
	total, perLang := CountTree(tree)
	if total.Code != 3 {
		t.Fatalf("total code = %d", total.Code)
	}
	if perLang[lang.C].Code != 2 || perLang[lang.Python].Code != 1 {
		t.Fatalf("perLang = %v", perLang)
	}
}

func TestPrimaryLanguage(t *testing.T) {
	tree := NewTree("app",
		File{Path: "a.c", Content: "int a;\n"},
		File{Path: "b.py", Content: "x = 1\ny = 2\nz = 3\n"},
	)
	if got := tree.PrimaryLanguage(); got != lang.Python {
		t.Fatalf("PrimaryLanguage = %v", got)
	}
	empty := NewTree("none")
	if got := empty.PrimaryLanguage(); got != lang.Unknown {
		t.Fatalf("empty tree primary = %v", got)
	}
}

func TestNewTreeInfersLanguage(t *testing.T) {
	tree := NewTree("x", File{Path: "m.java", Content: "class A {}"})
	if tree.Files[0].Language != lang.Java {
		t.Fatalf("language = %v", tree.Files[0].Language)
	}
}

func TestSplitLines(t *testing.T) {
	if got := splitLines(""); got != nil {
		t.Fatalf("splitLines(\"\") = %v", got)
	}
	if got := splitLines("a\nb\n"); len(got) != 2 {
		t.Fatalf("splitLines = %v", got)
	}
	if got := splitLines("a\nb"); len(got) != 2 {
		t.Fatalf("splitLines no-trailing = %v", got)
	}
	if got := splitLines("\n"); len(got) != 1 || strings.TrimSpace(got[0]) != "" {
		t.Fatalf("splitLines single newline = %q", got)
	}
}
