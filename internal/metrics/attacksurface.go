package metrics

// AttackSurface is a RASQ-style (Relative Attack Surface Quotient, Howard et
// al.) estimate: a weighted count of the resources an attacker can reach.
// Each dimension is a count of syntactic evidence in the source; the Quotient
// is the weighted sum. As the paper (and Howard et al.) note, the score is
// only meaningful relative to another measurement of the same kind.
type AttackSurface struct {
	NetworkEndpoints int // socket/bind/listen/accept/recv/connect call sites
	FileInputs       int // fopen/open/read/fread/ifstream call sites
	EnvInputs        int // getenv/environment accesses
	ProcessSpawns    int // system/exec/popen call sites
	PrivilegeOps     int // setuid/seteuid/chmod/chown call sites
	UnsafeAPIs       int // strcpy/gets/sprintf/strcat/scanf call sites
	FormatCalls      int // printf-family call sites (format-string channel)
	EntryPoints      int // main functions and exported handlers
	Quotient         float64
}

// Channel weights follow the RASQ intuition: remotely reachable channels
// weigh most, local privilege operations least.
var rasqWeights = struct {
	network, file, env, proc, priv, unsafe, format, entry float64
}{
	network: 1.0,
	file:    0.6,
	env:     0.4,
	proc:    0.8,
	priv:    0.7,
	unsafe:  0.9,
	format:  0.5,
	entry:   0.3,
}

// classification tables: identifier -> dimension.
var (
	networkAPIs = set("socket", "bind", "listen", "accept", "recv", "recvfrom",
		"connect", "send", "sendto", "ServerSocket", "DatagramSocket", "urlopen",
		"requests", "listen_and_serve")
	fileAPIs = set("fopen", "open", "read", "fread", "fgets", "ifstream",
		"FileInputStream", "FileReader", "readlines")
	envAPIs  = set("getenv", "environ", "getProperty", "osenviron")
	procAPIs = set("system", "exec", "execl", "execv", "execve", "popen",
		"fork", "ProcessBuilder", "subprocess", "Runtime")
	privAPIs   = set("setuid", "seteuid", "setgid", "chmod", "chown", "chroot")
	unsafeAPIs = set("strcpy", "strcat", "gets", "sprintf", "vsprintf",
		"scanf", "sscanf", "memcpy", "alloca", "strtok", "realpath")
	formatAPIs = set("printf", "fprintf", "snprintf", "syslog", "format")
)

func set(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

// AttackSurfaceOf scans the tree's token streams for channel evidence. A hit
// is an identifier from a class table immediately followed by '(' (a call),
// except entry points, which are function definitions named "main" or
// prefixed "handle"/"serve".
func AttackSurfaceOf(t *Tree) AttackSurface {
	return scanTree(t).surface
}

func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
