package metrics

import (
	"repro/internal/lexer"
)

// This file is the per-function slice of the single-pass extraction engine:
// the same token-level families FileScan computes for a whole file
// (Halstead, smell counts, API call-site classification), attributed to
// individual function bodies. The function-level ranking engine
// (internal/funcrank) builds its base feature vectors from these scans, so
// every file — whether or not it parses as MiniC — contributes ranked
// functions.

// FunctionScan couples one function's structural metrics with the
// token-content statistics of its body.
type FunctionScan struct {
	FunctionMetrics
	// EndLine is the first line past the function's attribution range: the
	// next function's starting line, or one past the file's last line for
	// the final function. Token-level counts cover [Line, EndLine).
	EndLine int
	// Lines is the attribution range's size in source lines.
	Lines int
	// Halstead is computed over the body's own operator/operand vocabulary
	// (per-function distinct counts, not the file-shared ones).
	Halstead Halstead
	// Call-site counts by API classification, matching the attack-surface
	// families: unsafe copy/format-string/process-spawn calls mark risk,
	// input calls (network + file + env) mark attacker-reachable entry.
	UnsafeCalls  int
	FormatCalls  int
	ProcessCalls int
	InputCalls   int
	MagicNumbers int
}

// ScanFunctions tokenizes the file once and returns one scan per function,
// in source order. Attribution is by line range: a function owns the lines
// from its own start to the next function's start (the last function runs
// to EOF), the same rule the whole-file smell counters use.
func ScanFunctions(f File) []FunctionScan {
	buf := scanPool.Get().(*scanBuf)
	defer scanPool.Put(buf)
	buf.all = lexer.TokenizeInto(buf.all[:0], f.Content, f.Language)
	buf.code = lexer.CodeInto(buf.code[:0], buf.all)

	fns := cyclomaticTokens(f, buf.code, nil)
	if len(fns) == 0 {
		return nil
	}
	lastLine := 1
	for _, t := range buf.all {
		if int(t.Line) > lastLine {
			lastLine = int(t.Line)
		}
	}
	out := make([]FunctionScan, len(fns))
	// Functions are in source order with contiguous attribution ranges, and
	// token lines are non-decreasing, so one cursor sweeps buf.code exactly
	// once across all functions instead of rescanning it per function.
	cursor := 0
	for i, fn := range fns {
		end := lastLine + 1
		if i+1 < len(fns) {
			end = fns[i+1].Line
		}
		fs := FunctionScan{FunctionMetrics: fn, EndLine: end}
		if end > fn.Line {
			fs.Lines = end - fn.Line
		}
		operators := map[string]int{}
		operands := map[string]int{}
		for cursor < len(buf.code) && int(buf.code[cursor].Line) < fn.Line {
			cursor++
		}
		j := cursor
		for ; j < len(buf.code) && int(buf.code[j].Line) < end; j++ {
			tok := buf.code[j]
			switch tok.Kind {
			case lexer.Keyword, lexer.Operator, lexer.Punct:
				operators[tok.Text()]++
			case lexer.Number:
				operands[tok.Text()]++
				if txt := tok.Text(); txt != "0" && txt != "1" && txt != "2" {
					fs.MagicNumbers++
				}
			case lexer.Ident:
				operands[tok.Text()]++
				if j+1 < len(buf.code) && buf.code[j+1].Text() == "(" {
					name := tok.Text()
					switch {
					case unsafeAPIs[name]:
						fs.UnsafeCalls++
					case formatAPIs[name]:
						fs.FormatCalls++
					case procAPIs[name]:
						fs.ProcessCalls++
					case networkAPIs[name], fileAPIs[name], envAPIs[name]:
						fs.InputCalls++
					}
				}
			case lexer.String:
				operands[tok.Text()]++
			}
		}
		cursor = j
		fs.Halstead = halsteadFromMaps(operators, operands)
		out[i] = fs
	}
	return out
}
