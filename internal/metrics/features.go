package metrics

import (
	"fmt"
	"math"
	"sort"
)

// FeatureVector is the named code-property vector the prediction model
// consumes (Figure 4's "Code properties" box). Keys are stable names;
// values are raw (untransformed) measurements.
type FeatureVector map[string]float64

// Feature names, grouped as in the paper's §3-§4 discussion. The canonical
// ordering of FeatureNames is the column order of generated datasets.
const (
	FeatKLoC            = "kloc" // thousands of code lines
	FeatCommentRatio    = "comment_ratio"
	FeatFiles           = "files"
	FeatLanguageUnsafe  = "language_unsafe" // 1 for C/C++, 0 for managed
	FeatFunctions       = "functions"
	FeatAvgFunctionLen  = "avg_function_len"
	FeatMaxFunctionLen  = "max_function_len"
	FeatCyclomaticTotal = "cyclomatic_total"
	FeatCyclomaticAvg   = "cyclomatic_avg"
	FeatCyclomaticMax   = "cyclomatic_max"
	FeatHalsteadVolume  = "halstead_volume"
	FeatHalsteadEffort  = "halstead_effort"
	FeatHalsteadBugs    = "halstead_bugs"
	FeatLongFunctions   = "long_functions"
	FeatDeeplyNested    = "deeply_nested"
	FeatManyParams      = "many_params"
	FeatGodFiles        = "god_files"
	FeatMagicNumbers    = "magic_numbers"
	FeatTodoDensity     = "todo_density"
	FeatDupLines        = "duplicate_lines"
	FeatNetworkCalls    = "net_endpoints"
	FeatFileInputs      = "file_inputs"
	FeatEnvInputs       = "env_inputs"
	FeatProcessSpawns   = "process_spawns"
	FeatPrivilegeOps    = "privilege_ops"
	FeatUnsafeCalls     = "unsafe_calls"
	FeatFormatCalls     = "format_calls"
	FeatEntryPoints     = "entry_points"
	FeatRASQ            = "rasq"
	// Development-history features (Shin et al.'s churn/developer-activity
	// family); populated by the corpus model or version control, zero when
	// unavailable.
	FeatChurn      = "churn"
	FeatDevelopers = "developers"
	FeatAgeYears   = "age_years"
	// Deep-analysis features supplied by the dataflow/symexec substrates via
	// Enrich; zero until enriched.
	FeatTaintedSinks  = "tainted_sinks"
	FeatFeasiblePaths = "feasible_paths_log10"
	FeatLintWarnings  = "lint_warnings"
	FeatAttackDepth   = "attack_graph_depth"
	// Call-graph shape (§4.1: "numbers of calling and returning targets").
	FeatCallFanOut = "call_fanout_max"
	FeatCallDepth  = "call_graph_depth"
	// Dynamic-trace features (§5.3's "collect dynamic traces" improvement):
	// sampled branch coverage and executed path diversity.
	FeatDynBranchCov   = "dyn_branch_cov"
	FeatDynUniquePaths = "dyn_unique_paths_log10"
	// Interprocedural taint (summary propagation over the call graph) and
	// the CWE-mapped findings layer: per-weakness-class evidence counts,
	// the signals the per-hypothesis classifiers ("does this app contain
	// CWE-121?") actually discriminate on.
	FeatInterTaintedSinks = "interproc_tainted_sinks"
	FeatTaintDepthMax     = "taint_path_depth_max" // functions on the longest source->sink chain
	FeatCWE121Findings    = "cwe121_findings"      // stack-overflow evidence (unchecked copies)
	FeatCWE134Findings    = "cwe134_findings"      // format-string evidence
	FeatCWE78Findings     = "cwe78_findings"       // command-injection evidence (tainted spawns)
)

// FeatureNames is the canonical ordered list of every feature.
var FeatureNames = []string{
	FeatKLoC, FeatCommentRatio, FeatFiles, FeatLanguageUnsafe,
	FeatFunctions, FeatAvgFunctionLen, FeatMaxFunctionLen,
	FeatCyclomaticTotal, FeatCyclomaticAvg, FeatCyclomaticMax,
	FeatHalsteadVolume, FeatHalsteadEffort, FeatHalsteadBugs,
	FeatLongFunctions, FeatDeeplyNested, FeatManyParams, FeatGodFiles,
	FeatMagicNumbers, FeatTodoDensity, FeatDupLines,
	FeatNetworkCalls, FeatFileInputs, FeatEnvInputs, FeatProcessSpawns,
	FeatPrivilegeOps, FeatUnsafeCalls, FeatFormatCalls, FeatEntryPoints,
	FeatRASQ,
	FeatChurn, FeatDevelopers, FeatAgeYears,
	FeatTaintedSinks, FeatFeasiblePaths, FeatLintWarnings, FeatAttackDepth,
	FeatCallFanOut, FeatCallDepth, FeatDynBranchCov, FeatDynUniquePaths,
	FeatInterTaintedSinks, FeatTaintDepthMax,
	FeatCWE121Findings, FeatCWE134Findings, FeatCWE78Findings,
}

// Extract runs every static extractor over the tree and assembles the
// feature vector. History and deep-analysis features default to zero; use
// Set to enrich the vector afterwards. Internally the tree is scanned in a
// single pass — each file is tokenized exactly once and every extractor
// family reads the shared token stream.
func Extract(t *Tree) FeatureVector {
	sc := scanTree(t)
	return sc.features(len(t.Files))
}

// Set assigns a feature value, validating the name.
func (fv FeatureVector) Set(name string, v float64) error {
	if _, ok := fv[name]; !ok {
		known := false
		for _, n := range FeatureNames {
			if n == name {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("metrics: unknown feature %q", name)
		}
	}
	fv[name] = v
	return nil
}

// Slice returns the values in canonical FeatureNames order.
func (fv FeatureVector) Slice() []float64 {
	out := make([]float64, len(FeatureNames))
	for i, n := range FeatureNames {
		out[i] = fv[n]
	}
	return out
}

// Clone deep-copies the vector.
func (fv FeatureVector) Clone() FeatureVector {
	out := make(FeatureVector, len(fv))
	for k, v := range fv {
		out[k] = v
	}
	return out
}

// Diff returns the features whose values differ between fv and other by more
// than epsilon, sorted by absolute delta, largest first. It is the substrate
// of the "did this change raise or lower risk" report.
type FeatureDelta struct {
	Name     string
	Old, New float64
}

// Diff compares two vectors.
func (fv FeatureVector) Diff(newer FeatureVector, epsilon float64) []FeatureDelta {
	var out []FeatureDelta
	for _, n := range FeatureNames {
		o, nw := fv[n], newer[n]
		if math.Abs(nw-o) > epsilon {
			out = append(out, FeatureDelta{Name: n, Old: o, New: nw})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].New-out[i].Old) > math.Abs(out[j].New-out[j].Old)
	})
	return out
}
